//! Explore the orbital substrate: constellation coverage and bent-pipe
//! latency as a function of latitude — the physics under every number in
//! the study.
//!
//! ```sh
//! cargo run --release --example constellation_coverage
//! ```

use sno_dissect::geo::GeoPoint;
use sno_dissect::orbit::geostationary::GeoSlot;
use sno_dissect::orbit::meo::O3B_RING;
use sno_dissect::orbit::{ecef_of, BentPipe, GeoAccess, MeoAccess, ONEWEB_SHELL, STARLINK_SHELL};

fn main() {
    println!("shell geometry:");
    for (name, shell) in [
        ("Starlink 550km/53°", STARLINK_SHELL),
        ("OneWeb 1200km/87.4°", ONEWEB_SHELL),
    ] {
        println!(
            "  {name}: {} satellites, period {:.1} min",
            shell.num_sats(),
            shell.period_secs() / 60.0
        );
    }
    println!(
        "  O3b ring: {} satellites at 8062 km, period {:.1} min",
        O3B_RING.sats,
        O3B_RING.period_secs() / 60.0
    );

    println!("\ncoverage and bent-pipe propagation RTT vs latitude (longitude 0):");
    println!(
        "{:>5} {:>14} {:>14} {:>12} {:>12}",
        "lat", "Starlink", "OneWeb", "O3b MEO", "GEO slot 0°"
    );
    for lat in (-80..=80).step_by(10) {
        let user = GeoPoint::new(f64::from(lat), 0.0);
        let gateway = GeoPoint::new(f64::from(lat).clamp(-60.0, 60.0), 5.0);

        // Sample several instants: LEO coverage is time-varying.
        let sample_leo = |shell| {
            let pipe = BentPipe::new(shell, user, gateway);
            let mut seen = Vec::new();
            for t in (0..20).map(|k| f64::from(k) * 300.0) {
                if let Some(rtt) = pipe.propagation_rtt(t) {
                    seen.push(rtt.0);
                }
            }
            if seen.is_empty() {
                "no coverage".to_string()
            } else {
                let avail = 100.0 * seen.len() as f64 / 20.0;
                let mean = seen.iter().sum::<f64>() / seen.len() as f64;
                format!("{mean:>5.1}ms {avail:>3.0}%")
            }
        };
        let starlink = sample_leo(STARLINK_SHELL);
        let oneweb = sample_leo(ONEWEB_SHELL);

        let meo = MeoAccess::new(O3B_RING, user, gateway)
            .propagation_rtt(0.0)
            .map(|r| format!("{:>7.1}ms", r.0))
            .unwrap_or_else(|| "   --".into());
        let geo = GeoAccess::new(GeoSlot { lon_deg: 0.0 }, user, gateway)
            .propagation_rtt()
            .map(|r| format!("{:>7.1}ms", r.0))
            .unwrap_or_else(|| "   --".into());
        println!("{lat:>4}° {starlink:>14} {oneweb:>14} {meo:>12} {geo:>12}");
    }

    // How often does a mid-latitude user hand off?
    println!("\nStarlink handoffs for a Berlin user over one hour (15 s epochs):");
    let berlin = GeoPoint::new(52.52, 13.40);
    let obs = ecef_of(berlin);
    let mut last = None;
    let mut handoffs = 0;
    let mut outages = 0;
    for epoch in 0..240 {
        let t = f64::from(epoch) * 15.0;
        match STARLINK_SHELL.best_visible(obs, t, 25.0) {
            Some(v) => {
                let id = (v.plane, v.index);
                if last.is_some() && last != Some(id) {
                    handoffs += 1;
                }
                last = Some(id);
            }
            None => outages += 1,
        }
    }
    println!("  {handoffs} satellite changes, {outages} outage epochs in 240 epochs");
    println!("  (the 15-second reconfiguration cadence is what drives LEO jitter in Figure 4b)");
}
