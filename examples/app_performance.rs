//! Application performance on real subscriber lines (Section 6):
//! fast.com, CDN fetches, H1 vs H2, DNS, and adaptive video.
//!
//! ```sh
//! cargo run --release --example app_performance
//! ```

use sno_dissect::apps::{
    cdn_fetch, dns_lookups, page_load, panel, speedtest, video_session, Cdn, HttpVersion,
};
use sno_dissect::prelude::*;
use sno_dissect::stats::median;

fn main() {
    let seed = 0x5A7E_1117;
    let testers = panel(seed);
    let mut rng = Rng::new(seed).substream_named("example-apps");
    let ops = [Operator::Starlink, Operator::Viasat, Operator::Hughes];

    println!("== fast.com (Figure 9) ==");
    for op in ops {
        let runs: Vec<_> = testers
            .iter()
            .filter(|t| t.operator == op)
            .flat_map(|t| (0..4).map(|_| speedtest(t, &mut rng)).collect::<Vec<_>>())
            .collect();
        let down: Vec<f64> = runs.iter().map(|r| r.download.0).collect();
        let lat: Vec<f64> = runs.iter().map(|r| r.latency.0).collect();
        println!(
            "  {:<10} down {:>6.1} Mbps, latency {:>6.1} ms",
            op.name(),
            median(&down).unwrap(),
            median(&lat).unwrap()
        );
    }

    println!("\n== jquery.min.js fetch via CDN (Figure 10a) ==");
    for op in ops {
        print!("  {:<10}", op.name());
        for cdn in Cdn::ALL {
            let v: Vec<f64> = testers
                .iter()
                .filter(|t| t.operator == op)
                .map(|t| cdn_fetch(t, cdn, true, &mut rng).time.0)
                .collect();
            print!("  {} {:>5.0}ms", cdn.name(), median(&v).unwrap());
        }
        println!();
    }

    println!("\n== Akamai demo page, H1 vs H2 (Figure 10b) ==");
    for op in ops {
        for version in [HttpVersion::H1, HttpVersion::H2] {
            let v: Vec<f64> = testers
                .iter()
                .filter(|t| t.operator == op)
                .flat_map(|t| {
                    (0..4)
                        .map(|_| page_load(t, version, &mut rng).plt.0)
                        .collect::<Vec<_>>()
                })
                .collect();
            println!(
                "  {:<10} {version}: {:>7.0} ms",
                op.name(),
                median(&v).unwrap()
            );
        }
    }

    println!("\n== DNS lookups (Figure 10c) ==");
    for op in ops {
        let v: Vec<f64> = testers
            .iter()
            .filter(|t| t.operator == op)
            .flat_map(|t| dns_lookups(t, 40, &mut rng))
            .map(|m| m.0)
            .collect();
        println!("  {:<10} {:>6.1} ms median", op.name(), median(&v).unwrap());
    }

    println!("\n== YouTube 60 s session (Figure 11) ==");
    for op in ops {
        let sessions: Vec<_> = testers
            .iter()
            .filter(|t| t.operator == op)
            .flat_map(|t| {
                (0..4)
                    .map(|_| video_session(t, &mut rng))
                    .collect::<Vec<_>>()
            })
            .collect();
        let mp: Vec<f64> = sessions.iter().map(|s| s.quality.megapixels()).collect();
        let buf: Vec<f64> = sessions.iter().map(|s| s.buffer_secs).collect();
        println!(
            "  {:<10} quality {:>5.2} MP, buffer {:>5.1} s",
            op.name(),
            median(&mp).unwrap(),
            median(&buf).unwrap()
        );
    }
}
