//! Walk the identification methodology stage by stage (Figure 1),
//! narrating what each stage keeps, flags and rejects.
//!
//! ```sh
//! cargo run --release --example identify_snos
//! ```

use sno_dissect::core::prefix_filter::{relaxed_thresholds, strict_filter};
use sno_dissect::core::validate::{validate_asns, AsnVerdict, LatencyBands};
use sno_dissect::core::{asn_map, pipeline::Pipeline};
use sno_dissect::synth::{MlabGenerator, SynthConfig};

fn main() {
    let corpus = MlabGenerator::new(SynthConfig::default_corpus()).generate();
    println!("corpus: {} NDT speed tests\n", corpus.records.len());

    // Stage 1-2: registry mapping + manual curation.
    let mapping = asn_map::map_asns();
    println!("== stage 1-2: ASN-to-SNO mapping ==");
    println!(
        "candidates (ASdb + HE search): {}",
        mapping.candidates.len()
    );
    println!(
        "curated: {} SNOs over {} ASNs; rejected lookalikes:",
        mapping.operator_count(),
        mapping.asn_count()
    );
    for (asn, why) in &mapping.rejected {
        println!("  {asn}: {why}");
    }

    // Stage 3: KDE validation against the advertised technology.
    println!("\n== stage 3: KDE latency-profile validation ==");
    let profiles = validate_asns(&mapping, &corpus.records, LatencyBands::default());
    for p in &profiles {
        match &p.verdict {
            AsnVerdict::Outlier(reason) => {
                println!("  {} / {}: OUTLIER — {reason}", p.operator.name(), p.asn)
            }
            AsnVerdict::MixedWithinAsn(foreign) => println!(
                "  {} / {}: mixed within ASN ({:.0}% foreign mass) — prefix stage needed",
                p.operator.name(),
                p.asn,
                foreign * 100.0
            ),
            _ => {}
        }
    }

    // Stage 3b: the strict per-/24 filter.
    println!("\n== stage 3b: strict prefix filter ==");
    let strict = strict_filter(&mapping, &profiles, &corpus.records);
    println!(
        "retained {} /24s across {} SNOs (examined {}, thin {}, band-violations {})",
        strict.retained.len(),
        strict.covered().len(),
        strict.examined,
        strict.rejected_thin,
        strict.rejected_band
    );

    // Stage 3c: relax using the observed minima.
    let (thresholds, default) = relaxed_thresholds(&strict);
    println!("\n== stage 3c: relaxed thresholds ==");
    for (op, t) in &thresholds {
        println!("  {:<12} accept latency >= {t:.1} ms", op.name());
    }
    println!("  (others)     accept latency >= {default:.1} ms  [paper: 527 ms]");

    // Stage 4: the catalog.
    let report = Pipeline::new().run(&corpus.records);
    println!("\n== stage 4: the SNO catalog (Table 1) ==");
    for (op, n) in &report.catalog {
        println!("  {:<12} {n}", op.name());
    }
}
