//! The Starlink deep dive (Section 5): probe→PoP latencies, reverse-DNS
//! PoP geolocation, and the detection of historical PoP changes.
//!
//! ```sh
//! cargo run --release --example starlink_pops
//! ```

use sno_dissect::atlas::{
    detect_pop_changes, pop_history, pop_rtt_by_country, pop_rtt_by_state, ProbeInfo,
};
use sno_dissect::synth::{atlas::reverse_dns, AtlasGenerator, SynthConfig};

fn main() {
    let corpus = AtlasGenerator::new(SynthConfig::default_corpus()).generate();
    let infos: Vec<ProbeInfo> = corpus
        .probes
        .iter()
        .map(|p| ProbeInfo {
            id: p.id,
            country: p.country,
            state: p.state,
        })
        .collect();
    println!(
        "{} probes, {} traceroutes, {} SSLCert observations\n",
        corpus.probes.len(),
        corpus.traceroutes.len(),
        corpus.sslcerts.len()
    );

    println!("== probe -> PoP RTT, rest of the world (Figure 6a) ==");
    for (country, s) in pop_rtt_by_country(&corpus.traceroutes, &infos) {
        println!("  {country}: median {:>6.1} ms  (n={})", s.median, s.count);
    }

    println!("\n== probe -> PoP RTT, US states (Figure 8a) ==");
    for (state, s) in pop_rtt_by_state(&corpus.traceroutes, &infos) {
        println!("  {state}: median {:>6.1} ms  (n={})", s.median, s.count);
    }

    println!("\n== PoP-change events (Figure 8b) ==");
    for probe in &corpus.probes {
        let history = pop_history(&corpus.sslcerts, probe.id, reverse_dns);
        for change in detect_pop_changes(&corpus.traceroutes, probe.id, &history, 8.0, 8) {
            let pops = change
                .pops
                .map(|(a, b)| format!("{a} -> {b}"))
                .unwrap_or_else(|| "cause unknown".into());
            println!(
                "  {} [{}{}] on {}: {:.1} -> {:.1} ms  ({pops})",
                probe.id,
                probe.country,
                probe.state.map(|s| format!("/{s}")).unwrap_or_default(),
                change.at.date(),
                change.before_ms,
                change.after_ms
            );
        }
    }
    println!("\npaper's events: NZ Sydney->Auckland (-20 ms, July 2022);");
    println!("NL Frankfurt->London (-10 ms); NV LA->Denver (2x) then reverted.");
}
