//! Quickstart: generate a synthetic M-Lab corpus, run the paper's SNO
//! identification pipeline over it, and print the headline results.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use sno_dissect::core::analysis;
use sno_dissect::core::pipeline::Pipeline;
use sno_dissect::synth::{MlabGenerator, SynthConfig};
use sno_dissect::types::OrbitClass;

fn main() {
    // 1. A deterministic synthetic NDT corpus (1/1000 of the paper's
    //    M-Lab volume; tweak `scale` for denser statistics).
    let config = SynthConfig::default_corpus();
    println!(
        "generating corpus (seed {:#x}, scale {:.0e})...",
        config.seed, config.scale
    );
    let corpus = MlabGenerator::new(config).generate();
    println!("  {} speed tests", corpus.records.len());

    // 2. Run the identification pipeline (Figure 1 of the paper).
    let report = Pipeline::new().run(&corpus.records);
    println!("\nidentified {} SNOs (paper: 18):", report.sno_count());
    for (op, n) in report.catalog.iter().take(8) {
        println!("  {:<12} {:>8} tests", op.name(), n);
    }
    println!("  ...");

    // 3. The bird's-eye comparison: latency per orbit.
    println!("\naccess latency (p5) medians:");
    for (op, summary) in analysis::latency_by_operator(&corpus.records, &report) {
        println!(
            "  {:<12} {:>7.1} ms  (n={})",
            op.name(),
            summary.median,
            summary.count
        );
    }

    // 4. Jitter: LEO is fast but relatively unstable.
    let jitter = analysis::jitter_by_orbit(&corpus.records, &report);
    println!("\njitter variation (jitter_p95 / latency_p5) medians:");
    for orbit in OrbitClass::ALL {
        if let Some(v) = jitter.median_variation(orbit) {
            println!("  {orbit}: {v:.2}");
        }
    }
    println!("\npaper's finding: LEO ~0.5 vs GEO ~0.28 — low latency, high relative jitter.");
}
