//! Bit-reproducibility: every generator and every analysis must produce
//! identical output for identical seeds, and different output for
//! different seeds. This is what makes the whole study auditable.

use sno_dissect::core::pipeline::Pipeline;
use sno_dissect::synth::{AtlasGenerator, MlabGenerator, SynthConfig};

fn cfg(seed: u64) -> SynthConfig {
    SynthConfig {
        seed,
        ..SynthConfig::test_corpus()
    }
}

#[test]
fn mlab_corpus_is_bit_reproducible() {
    let a = MlabGenerator::new(cfg(1)).generate();
    let b = MlabGenerator::new(cfg(1)).generate();
    assert_eq!(a.records, b.records);
}

#[test]
fn different_seeds_differ() {
    let a = MlabGenerator::new(cfg(1)).generate();
    let b = MlabGenerator::new(cfg(2)).generate();
    assert_ne!(a.records, b.records);
}

#[test]
fn pipeline_report_is_reproducible() {
    let corpus = MlabGenerator::new(cfg(3)).generate();
    let r1 = Pipeline::new().run(&corpus.records);
    let r2 = Pipeline::new().run(&corpus.records);
    assert_eq!(r1.accepted, r2.accepted);
    assert_eq!(r1.catalog, r2.catalog);
    assert_eq!(r1.default_threshold, r2.default_threshold);
}

#[test]
fn atlas_corpus_is_bit_reproducible() {
    let a = AtlasGenerator::new(cfg(4)).generate();
    let b = AtlasGenerator::new(cfg(4)).generate();
    assert_eq!(a.traceroutes, b.traceroutes);
    assert_eq!(a.sslcerts, b.sslcerts);
}

#[test]
fn census_and_bgp_are_seed_stable() {
    assert_eq!(
        sno_dissect::synth::census_responses(5),
        sno_dissect::synth::census_responses(5)
    );
    let a = sno_dissect::synth::bgp::snapshots();
    let b = sno_dissect::synth::bgp::snapshots();
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.edges, y.edges);
    }
}

#[test]
fn experiment_outputs_are_reproducible() {
    use sno_dissect::types::Operator;
    // The apps panel and a couple of analyses, run twice.
    let p1 = sno_dissect::apps::panel(9);
    let p2 = sno_dissect::apps::panel(9);
    assert_eq!(p1, p2);
    let mut rng1 = sno_dissect::types::Rng::new(1);
    let mut rng2 = sno_dissect::types::Rng::new(1);
    let t = p1.iter().find(|t| t.operator == Operator::Viasat).unwrap();
    assert_eq!(
        sno_dissect::apps::speedtest(t, &mut rng1),
        sno_dissect::apps::speedtest(t, &mut rng2)
    );
}
