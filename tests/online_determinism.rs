//! The online identification service's correctness anchor: an
//! [`OnlineIdentifier`] fed the corpus in arrival order must produce
//! verdicts — and a rendered report — byte-identical to the batch
//! streamed pipeline, at every chunk length × thread count, whether the
//! state was built serially or sharded and merged. The same contract is
//! pinned one layer down for the mergeable sketches.

use sno_bench::streamed_report_text;
use sno_dissect::core::pipeline::Pipeline;
use sno_dissect::core::stream::{StreamOptions, StreamedReport};
use sno_dissect::core::OnlineIdentifier;
use sno_dissect::stats::QuantileSketch;
use sno_dissect::synth::{MlabGenerator, SynthConfig};
use sno_dissect::types::chunk::RecordChunks;
use sno_dissect::types::par;

/// A chunk length larger than any corpus here: one chunk per stream.
const WHOLE: usize = 1 << 30;

/// The small-but-sharded corpus of `tests/par_determinism.rs`.
fn cfg(seed: u64, threads: usize) -> SynthConfig {
    SynthConfig {
        seed,
        threads,
        scale: 5e-5,
        min_sessions: 40,
        ..SynthConfig::test_corpus()
    }
}

/// The snapshot options every comparison here runs under.
fn opts() -> StreamOptions {
    StreamOptions {
        operator_latencies: true,
        ..StreamOptions::default()
    }
}

/// Assert two streamed reports agree on every field the report path
/// exposes, including the per-record acceptance bits.
fn assert_reports_identical(got: &StreamedReport, want: &StreamedReport, label: &str) {
    assert_eq!(got.records, want.records, "{label}: record count");
    assert_eq!(got.catalog, want.catalog, "{label}: catalog");
    assert_eq!(got.thresholds, want.thresholds, "{label}: thresholds");
    assert_eq!(
        got.default_threshold, want.default_threshold,
        "{label}: default threshold"
    );
    assert_eq!(
        got.latencies_by_operator, want.latencies_by_operator,
        "{label}: per-operator latencies"
    );
    assert_eq!(got.bitmap.len(), want.bitmap.len(), "{label}: bitmap len");
    for i in 0..want.bitmap.len() {
        assert_eq!(got.bitmap.get(i), want.bitmap.get(i), "{label}: bit {i}");
    }
}

#[test]
fn online_verdicts_match_batch_across_chunk_thread_and_seed_matrix() {
    for seed in [0x5A7E_1117u64, 7, 42] {
        let baseline_gen = MlabGenerator::new(cfg(seed, 1));
        let batch =
            Pipeline::with_threads(1).run_streamed(|| baseline_gen.generate_chunks(1024), opts());
        let batch_text = streamed_report_text(&batch, cfg(seed, 1).scale);
        for chunk in [1024usize, WHOLE] {
            for threads in [1usize, 2, 8] {
                let generator = MlabGenerator::new(cfg(seed, threads));
                let mut online = OnlineIdentifier::new(Pipeline::with_threads(threads));
                let mut stream = generator.generate_chunks(chunk);
                while let Some(records) = stream.next_chunk() {
                    online.ingest(&records);
                }
                let snapshot = online.snapshot(opts());
                let label = format!("seed {seed} chunk {chunk} threads {threads}");
                assert_reports_identical(&snapshot, &batch, &label);
                assert_eq!(
                    streamed_report_text(&snapshot, cfg(seed, threads).scale),
                    batch_text,
                    "{label}: rendered report"
                );
            }
        }
    }
}

#[test]
fn sharded_identifiers_merged_in_order_match_serial_ingest() {
    let corpus = MlabGenerator::new(cfg(7, 0)).generate();
    let mut serial = OnlineIdentifier::new(Pipeline::with_threads(1));
    serial.ingest(&corpus.records);
    let want = serial.snapshot(opts());
    let want_text = streamed_report_text(&want, cfg(7, 0).scale);

    // Fixed shard boundaries (uneven on purpose); only the build-side
    // thread count varies. Shards build on the worker pool via `par`,
    // then merge left-to-right in shard order.
    let n = corpus.records.len();
    let bounds = [0, n / 5, n / 2, (3 * n) / 4, n];
    for threads in [1usize, 2, 8] {
        let mut shards = par::shard_map(bounds.len() - 1, threads, |s| {
            let mut shard = OnlineIdentifier::new(Pipeline::with_threads(1));
            shard.ingest(&corpus.records[bounds[s]..bounds[s + 1]]);
            shard
        });
        let mut merged = shards.remove(0);
        for shard in shards {
            merged.merge(shard);
        }
        assert_eq!(merged.ingested(), n, "threads {threads}: ingested");
        let got = merged.snapshot(opts());
        let label = format!("sharded threads {threads}");
        assert_reports_identical(&got, &want, &label);
        assert_eq!(
            streamed_report_text(&got, cfg(7, 0).scale),
            want_text,
            "{label}: rendered report"
        );
    }
}

#[test]
fn sketch_shard_merge_is_byte_identical_to_serial_ingest() {
    // The sketch-level half of the anchor: merging per-shard sketches
    // built on the worker pool must reproduce the serial sketch state
    // exactly (not approximately) at every thread count.
    let corpus = MlabGenerator::new(cfg(0x5A7E_1117, 0)).generate();
    let latencies: Vec<f64> = corpus.records.iter().map(|r| r.latency_p5.0).collect();
    let mut serial = QuantileSketch::new();
    serial.extend(latencies.iter().copied());

    let ranges = par::shard_ranges(latencies.len(), 512);
    for threads in [1usize, 2, 8] {
        let shards = par::shard_map(ranges.len(), threads, |i| {
            let mut s = QuantileSketch::new();
            s.extend(latencies[ranges[i].clone()].iter().copied());
            s
        });
        let mut merged = QuantileSketch::new();
        for shard in shards {
            merged.merge(&shard);
        }
        assert_eq!(merged, serial, "threads {threads}");
    }
}
