//! The online identification service's correctness anchor: an
//! [`OnlineIdentifier`] fed the corpus in arrival order must produce
//! verdicts — and a rendered report — byte-identical to the batch
//! streamed pipeline, at every chunk length × thread count, whether the
//! state was built serially or sharded and merged. The same contract is
//! pinned one layer down for the mergeable sketches.

use sno_bench::streamed_report_text;
use sno_dissect::core::pipeline::Pipeline;
use sno_dissect::core::stream::{StreamOptions, StreamedReport};
use sno_dissect::core::OnlineIdentifier;
use sno_dissect::stats::QuantileSketch;
use sno_dissect::synth::{MlabGenerator, SynthConfig};
use sno_dissect::types::chunk::{slice_chunks, RecordChunks};
use sno_dissect::types::par;

/// A chunk length larger than any corpus here: one chunk per stream.
const WHOLE: usize = 1 << 30;

/// The small-but-sharded corpus of `tests/par_determinism.rs`.
fn cfg(seed: u64, threads: usize) -> SynthConfig {
    SynthConfig {
        seed,
        threads,
        scale: 5e-5,
        min_sessions: 40,
        ..SynthConfig::test_corpus()
    }
}

/// The snapshot options every comparison here runs under.
fn opts() -> StreamOptions {
    StreamOptions {
        operator_latencies: true,
        ..StreamOptions::default()
    }
}

/// Assert two streamed reports agree on every field the report path
/// exposes, including the per-record acceptance bits.
fn assert_reports_identical(got: &StreamedReport, want: &StreamedReport, label: &str) {
    assert_eq!(got.records, want.records, "{label}: record count");
    assert_eq!(got.catalog, want.catalog, "{label}: catalog");
    assert_eq!(got.thresholds, want.thresholds, "{label}: thresholds");
    assert_eq!(
        got.default_threshold, want.default_threshold,
        "{label}: default threshold"
    );
    assert_eq!(
        got.latencies_by_operator, want.latencies_by_operator,
        "{label}: per-operator latencies"
    );
    assert_eq!(got.bitmap.len(), want.bitmap.len(), "{label}: bitmap len");
    for i in 0..want.bitmap.len() {
        assert_eq!(got.bitmap.get(i), want.bitmap.get(i), "{label}: bit {i}");
    }
}

#[test]
fn online_verdicts_match_batch_across_chunk_thread_and_seed_matrix() {
    for seed in [0x5A7E_1117u64, 7, 42] {
        let baseline_gen = MlabGenerator::new(cfg(seed, 1));
        let batch =
            Pipeline::with_threads(1).run_streamed(|| baseline_gen.generate_chunks(1024), opts());
        let batch_text = streamed_report_text(&batch, cfg(seed, 1).scale);
        for chunk in [1024usize, WHOLE] {
            for threads in [1usize, 2, 8] {
                let generator = MlabGenerator::new(cfg(seed, threads));
                let mut online = OnlineIdentifier::new(Pipeline::with_threads(threads));
                let mut stream = generator.generate_chunks(chunk);
                while let Some(records) = stream.next_chunk() {
                    online.ingest(&records);
                }
                let snapshot = online.snapshot(opts());
                let label = format!("seed {seed} chunk {chunk} threads {threads}");
                assert_reports_identical(&snapshot, &batch, &label);
                assert_eq!(
                    streamed_report_text(&snapshot, cfg(seed, threads).scale),
                    batch_text,
                    "{label}: rendered report"
                );
            }
        }
    }
}

#[test]
fn sharded_identifiers_merged_in_order_match_serial_ingest() {
    let corpus = MlabGenerator::new(cfg(7, 0)).generate();
    let mut serial = OnlineIdentifier::new(Pipeline::with_threads(1));
    serial.ingest(&corpus.records);
    let want = serial.snapshot(opts());
    let want_text = streamed_report_text(&want, cfg(7, 0).scale);

    // Fixed shard boundaries (uneven on purpose); only the build-side
    // thread count varies. Shards build on the worker pool via `par`,
    // then merge left-to-right in shard order.
    let n = corpus.records.len();
    let bounds = [0, n / 5, n / 2, (3 * n) / 4, n];
    for threads in [1usize, 2, 8] {
        let mut shards = par::shard_map(bounds.len() - 1, threads, |s| {
            let mut shard = OnlineIdentifier::new(Pipeline::with_threads(1));
            shard.ingest(&corpus.records[bounds[s]..bounds[s + 1]]);
            shard
        });
        let mut merged = shards.remove(0);
        for shard in shards {
            merged.merge(shard);
        }
        assert_eq!(merged.ingested(), n, "threads {threads}: ingested");
        let got = merged.snapshot(opts());
        let label = format!("sharded threads {threads}");
        assert_reports_identical(&got, &want, &label);
        assert_eq!(
            streamed_report_text(&got, cfg(7, 0).scale),
            want_text,
            "{label}: rendered report"
        );
    }
}

#[test]
fn interleaved_snapshot_compact_schedules_match_batch() {
    // The incremental anchor: whatever cadence snapshots and compactions
    // interleave at, every snapshot answers exactly like the batch
    // streamed pipeline over everything ingested so far.
    let corpus = MlabGenerator::new(cfg(42, 0)).generate();
    let records = &corpus.records;
    let batch = Pipeline::with_threads(1).run_streamed(|| slice_chunks(records, 1024), opts());
    let batch_text = streamed_report_text(&batch, cfg(42, 0).scale);

    for (chunk_len, snap_every, compact_every) in [
        (97usize, 1usize, 1usize), // snapshot+compact on every chunk
        (512, 2, 1),               // snapshot every 2nd chunk, compact each time
        (256, 3, 2),               // sparser compaction than snapshots
        (1024, 1, 0),              // snapshot every chunk, never compact
    ] {
        for threads in [1usize, 4] {
            let mut online = OnlineIdentifier::new(Pipeline::with_threads(threads));
            let mut snapshots = 0usize;
            for (i, chunk) in records.chunks(chunk_len).enumerate() {
                online.ingest(chunk);
                if (i + 1) % snap_every == 0 {
                    let _ = online.snapshot(opts());
                    snapshots += 1;
                    if compact_every > 0 && snapshots.is_multiple_of(compact_every) {
                        online.compact();
                    }
                }
            }
            let got = online.snapshot(opts());
            let label = format!(
                "chunk {chunk_len} snap {snap_every} compact {compact_every} threads {threads}"
            );
            assert_reports_identical(&got, &batch, &label);
            assert_eq!(
                streamed_report_text(&got, cfg(42, 0).scale),
                batch_text,
                "{label}: rendered report"
            );
            if compact_every > 0 {
                // Fold everything decided so far and make sure the
                // compacted representation both bounds the log and still
                // answers identically.
                online.compact();
                assert_eq!(online.resident_frames(), 0, "{label}: frames after compact");
                assert!(
                    online.resident_log_bytes() < records.len() * 52 / 4,
                    "{label}: compaction left {} resident bytes for {} records",
                    online.resident_log_bytes(),
                    records.len()
                );
                assert_reports_identical(&online.snapshot(opts()), &batch, &label);
            }
        }
    }
}

#[test]
fn merge_then_compact_schedules_match_serial_ingest() {
    // Merge-then-compact determinism: a raw shard may arrive after the
    // accumulating side has already snapshotted *and* compacted, and a
    // further compact + epoch replay over the merged stream must still
    // answer byte-identically. (Compact-then-merge of the *shard* is
    // forbidden by the merge contract — its frames could no longer be
    // re-decided mid-stream.)
    let corpus = MlabGenerator::new(cfg(7, 0)).generate();
    let records = &corpus.records;
    let n = records.len();
    let mut serial = OnlineIdentifier::new(Pipeline::with_threads(1));
    serial.ingest(records);
    let want = serial.snapshot(opts());
    let want_text = streamed_report_text(&want, cfg(7, 0).scale);

    for split in [n / 4, n / 2, (3 * n) / 4] {
        let mut acc = OnlineIdentifier::new(Pipeline::with_threads(1));
        acc.ingest(&records[..split]);
        let _ = acc.snapshot(opts());
        acc.compact();
        let mut shard = OnlineIdentifier::new(Pipeline::with_threads(1));
        shard.ingest(&records[split..]);
        acc.merge(shard);
        assert_eq!(acc.ingested(), n, "split {split}: ingested");
        let got = acc.snapshot(opts());
        let label = format!("merge after compact, split {split}");
        assert_reports_identical(&got, &want, &label);
        // Compact the merged stream too and force another answer from
        // fully folded state.
        acc.compact();
        let again = acc.snapshot(opts());
        assert_reports_identical(&again, &want, &label);
        assert_eq!(
            streamed_report_text(&again, cfg(7, 0).scale),
            want_text,
            "{label}: rendered report"
        );
    }
}

#[test]
fn windowed_eviction_keeps_resident_log_within_the_window() {
    // Time-ordered arrivals: after every snapshot, the resident log
    // holds exactly the in-window suffix (no epoch slack needed for
    // ordered streams) while reports keep matching a batch run over
    // the same window.
    let mut records = MlabGenerator::new(cfg(7, 0)).generate().records;
    records.sort_by_key(|r| r.timestamp.0);
    let span = records.last().unwrap().timestamp.0 - records[0].timestamp.0;
    let window = span / 3;
    let mut online = OnlineIdentifier::with_window(Pipeline::with_threads(1), window);
    for chunk in records.chunks(257) {
        online.ingest(chunk);
        let report = online.snapshot(opts());
        let latest = online.latest().unwrap().0;
        let cutoff = latest.saturating_sub(window);
        let in_window = records
            .iter()
            .filter(|r| r.timestamp.0 >= cutoff && r.timestamp.0 <= latest)
            .count();
        assert_eq!(
            online.resident_frames(),
            in_window,
            "cutoff {cutoff}: resident vs window"
        );
        assert_eq!(report.records, in_window, "cutoff {cutoff}: report records");
    }
    // And the final windowed report equals a batch run over the window.
    let cutoff = online.latest().unwrap().0.saturating_sub(window);
    let kept: Vec<_> = records
        .iter()
        .filter(|r| r.timestamp.0 >= cutoff)
        .cloned()
        .collect();
    let want = Pipeline::with_threads(1).run_streamed(|| slice_chunks(&kept, 1024), opts());
    assert_reports_identical(&online.snapshot(opts()), &want, "final window");
}

mod schedule_properties {
    use super::*;
    use sno_check::prelude::*;
    use std::sync::OnceLock;

    fn fixture() -> &'static Vec<sno_dissect::types::records::NdtRecord> {
        static FIXTURE: OnceLock<Vec<sno_dissect::types::records::NdtRecord>> = OnceLock::new();
        FIXTURE.get_or_init(|| MlabGenerator::new(cfg(7, 0)).generate().records)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// Any interleaving of (ingest batch sizes × snapshot cadence ×
        /// compaction × window length) answers exactly like a fresh
        /// identifier that ingested everything in one go — the
        /// incremental state machine never leaks into the reports.
        #[test]
        fn arbitrary_schedules_match_fresh_full_replay(
            batch_sizes in prop::collection::vec(1usize..600, 1..5),
            cadence in 1usize..4,
            compact in any::<bool>(),
            window_divisor in 0u64..5,
        ) {
            let records = fixture();
            let span = records.iter().map(|r| r.timestamp.0).max().unwrap()
                - records.iter().map(|r| r.timestamp.0).min().unwrap();
            // Divisors 0/1 mean "unwindowed"; 2..5 pick a window length.
            let window = (window_divisor >= 2).then(|| span / window_divisor);
            let build = || match window {
                Some(w) => OnlineIdentifier::with_window(Pipeline::with_threads(1), w),
                None => OnlineIdentifier::new(Pipeline::with_threads(1)),
            };

            let mut online = build();
            let mut offset = 0usize;
            let mut step = 0usize;
            while offset < records.len() {
                let len = batch_sizes[step % batch_sizes.len()].min(records.len() - offset);
                online.ingest(&records[offset..offset + len]);
                offset += len;
                step += 1;
                if step.is_multiple_of(cadence) {
                    let _ = online.snapshot(opts());
                    if compact {
                        online.compact();
                    }
                }
            }
            let got = online.snapshot(opts());

            let mut fresh = build();
            fresh.ingest(records);
            let want = fresh.snapshot(opts());

            prop_assert_eq!(got.records, want.records);
            prop_assert_eq!(&got.catalog, &want.catalog);
            prop_assert_eq!(&got.thresholds, &want.thresholds);
            prop_assert_eq!(got.default_threshold, want.default_threshold);
            prop_assert_eq!(&got.latencies_by_operator, &want.latencies_by_operator);
            prop_assert_eq!(got.bitmap.len(), want.bitmap.len());
            for i in 0..want.bitmap.len() {
                prop_assert_eq!(got.bitmap.get(i), want.bitmap.get(i), "bit {}", i);
            }
            prop_assert_eq!(
                streamed_report_text(&got, cfg(7, 0).scale),
                streamed_report_text(&want, cfg(7, 0).scale)
            );
        }
    }
}

#[test]
fn sketch_shard_merge_is_byte_identical_to_serial_ingest() {
    // The sketch-level half of the anchor: merging per-shard sketches
    // built on the worker pool must reproduce the serial sketch state
    // exactly (not approximately) at every thread count.
    let corpus = MlabGenerator::new(cfg(0x5A7E_1117, 0)).generate();
    let latencies: Vec<f64> = corpus.records.iter().map(|r| r.latency_p5.0).collect();
    let mut serial = QuantileSketch::new();
    serial.extend(latencies.iter().copied());

    let ranges = par::shard_ranges(latencies.len(), 512);
    for threads in [1usize, 2, 8] {
        let shards = par::shard_map(ranges.len(), threads, |i| {
            let mut s = QuantileSketch::new();
            s.extend(latencies[ranges[i].clone()].iter().copied());
            s
        });
        let mut merged = QuantileSketch::new();
        for shard in shards {
            merged.merge(&shard);
        }
        assert_eq!(merged, serial, "threads {threads}");
    }
}
