//! Chunk-length and thread-count independence of the streaming corpus
//! path: chunked generation must yield exactly the records the
//! materialized generators yield, and the streamed pipeline (and the
//! experiment text built on it) must be byte-identical to the
//! materialized run at every chunk length × thread count.

use sno_bench::{run_experiment, ReproContext};
use sno_check::prelude::*;
use sno_dissect::atlas::{pop_rtt_series_by_probe, pop_rtt_series_from_chunks};
use sno_dissect::core::pipeline::Pipeline;
use sno_dissect::core::stream::StreamOptions;
use sno_dissect::synth::{AtlasGenerator, MlabGenerator, SynthConfig};
use sno_dissect::types::chunk::RecordChunks;

/// A chunk length larger than any corpus here: one chunk per stream.
const WHOLE: usize = 1 << 30;

/// The small-but-sharded corpus of `tests/par_determinism.rs`.
fn cfg(seed: u64, threads: usize) -> SynthConfig {
    SynthConfig {
        seed,
        threads,
        scale: 5e-5,
        min_sessions: 40,
        ..SynthConfig::test_corpus()
    }
}

#[test]
fn experiment_text_identical_streamed_and_materialized() {
    // The baseline: materialized corpora, serial.
    let baseline = ReproContext::with_config(cfg(0x5A7E_1117, 1));
    let table1 = run_experiment(&baseline, "table1").expect("known id");
    let fig3c = run_experiment(&baseline, "fig3c").expect("known id");
    for chunk in [1usize, 1024, WHOLE] {
        for threads in [1usize, 2, 8] {
            let ctx = ReproContext::with_chunk(cfg(0x5A7E_1117, threads), chunk);
            assert_eq!(
                run_experiment(&ctx, "table1").expect("known id"),
                table1,
                "table1 at chunk {chunk} threads {threads}"
            );
            assert_eq!(
                run_experiment(&ctx, "fig3c").expect("known id"),
                fig3c,
                "fig3c at chunk {chunk} threads {threads}"
            );
        }
    }
}

#[test]
fn streamed_pipeline_identical_across_chunk_and_thread_matrix() {
    let corpus = MlabGenerator::new(cfg(7, 0)).generate();
    let materialized = Pipeline::with_threads(1).run(&corpus.records);
    for chunk in [1usize, 1024, WHOLE] {
        for threads in [1usize, 2, 8] {
            let generator = MlabGenerator::new(cfg(7, threads));
            let streamed = Pipeline::with_threads(threads).run_streamed(
                || generator.generate_chunks(chunk),
                StreamOptions {
                    dense_acceptance: true,
                    ..StreamOptions::default()
                },
            );
            let label = format!("chunk {chunk} threads {threads}");
            assert_eq!(streamed.records, corpus.records.len(), "{label}");
            assert_eq!(streamed.catalog, materialized.catalog, "{label}");
            assert_eq!(streamed.thresholds, materialized.thresholds, "{label}");
            assert_eq!(
                streamed.default_threshold, materialized.default_threshold,
                "{label}"
            );
            assert_eq!(
                streamed.accepted.as_deref(),
                Some(materialized.accepted.as_slice()),
                "{label}"
            );
        }
    }
}

#[test]
fn encoded_replay_identical_across_chunk_and_thread_matrix() {
    // `replay_encoded` swaps pass 2's regeneration for a decode of the
    // compact binary corpus buffered in pass 1; the report must not
    // change by a bit anywhere in the matrix.
    let corpus = MlabGenerator::new(cfg(7, 0)).generate();
    let materialized = Pipeline::with_threads(1).run(&corpus.records);
    for chunk in [1usize, 1024, WHOLE] {
        for threads in [1usize, 2, 8] {
            let generator = MlabGenerator::new(cfg(7, threads));
            let streamed = Pipeline::with_threads(threads).run_streamed(
                || generator.generate_chunks(chunk),
                StreamOptions {
                    dense_acceptance: true,
                    replay_encoded: true,
                    ..StreamOptions::default()
                },
            );
            let label = format!("replay chunk {chunk} threads {threads}");
            assert_eq!(streamed.records, corpus.records.len(), "{label}");
            assert_eq!(streamed.catalog, materialized.catalog, "{label}");
            assert_eq!(streamed.thresholds, materialized.thresholds, "{label}");
            assert_eq!(
                streamed.default_threshold, materialized.default_threshold,
                "{label}"
            );
            assert_eq!(
                streamed.accepted.as_deref(),
                Some(materialized.accepted.as_slice()),
                "{label}"
            );
        }
    }
}

#[test]
fn fig4a_text_identical_across_chunk_and_thread_matrix() {
    // Regression: fig4a used to materialize its own corpus with a bare
    // `Pipeline::new()`, so `repro --threads/--chunk` silently did not
    // apply to it. It now routes through the context like every other
    // experiment; the rendered text must be byte-identical everywhere.
    let baseline = ReproContext::with_config(cfg(0x5A7E_1117, 1));
    let fig4a = run_experiment(&baseline, "fig4a").expect("known id");
    for chunk in [1024usize, WHOLE] {
        for threads in [1usize, 2, 8] {
            let ctx = ReproContext::with_chunk(cfg(0x5A7E_1117, threads), chunk);
            assert_eq!(
                run_experiment(&ctx, "fig4a").expect("known id"),
                fig4a,
                "fig4a at chunk {chunk} threads {threads}"
            );
        }
    }
}

#[test]
fn atlas_series_identical_streamed_and_materialized() {
    let corpus = AtlasGenerator::new(cfg(1, 1)).generate();
    let series = pop_rtt_series_by_probe(&corpus.traceroutes);
    for chunk in [251usize, WHOLE] {
        for threads in [1usize, 2, 8] {
            let generator = AtlasGenerator::new(cfg(1, threads));
            let streamed = pop_rtt_series_from_chunks(generator.traceroute_chunks(chunk));
            assert_eq!(streamed, series, "chunk {chunk} threads {threads}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Chunked generation yields exactly the materialized records for
    /// *any* (seed, chunk length, thread count), not just the pinned
    /// matrix.
    #[test]
    fn any_seed_chunked_generation_matches_materialized(
        seed in any::<u64>(),
        chunk in prop_oneof![4 => 1..2_048usize, 1 => WHOLE..WHOLE + 1],
        threads in 1..9usize,
    ) {
        let generator = MlabGenerator::new(cfg(seed, threads));
        let streamed = generator.generate_chunks(*chunk).collect_records();
        let materialized = generator.generate();
        prop_assert_eq!(streamed.len(), materialized.records.len());
        prop_assert_eq!(streamed, materialized.records);
    }
}
