//! Chunk-length and thread-count independence of the streaming corpus
//! path: chunked generation must yield exactly the records the
//! materialized generators yield, and the streamed pipeline (and the
//! experiment text built on it) must be byte-identical to the
//! materialized run at every chunk length × thread count.

use sno_bench::{run_experiment, ReproContext};
use sno_check::prelude::*;
use sno_dissect::atlas::{pop_rtt_series_by_probe, pop_rtt_series_from_chunks};
use sno_dissect::core::pipeline::Pipeline;
use sno_dissect::core::stream::StreamOptions;
use sno_dissect::synth::{AtlasGenerator, MlabGenerator, SynthConfig};
use sno_dissect::types::chunk::RecordChunks;

/// A chunk length larger than any corpus here: one chunk per stream.
const WHOLE: usize = 1 << 30;

/// The small-but-sharded corpus of `tests/par_determinism.rs`.
fn cfg(seed: u64, threads: usize) -> SynthConfig {
    SynthConfig {
        seed,
        threads,
        scale: 5e-5,
        min_sessions: 40,
        ..SynthConfig::test_corpus()
    }
}

#[test]
fn experiment_text_identical_streamed_and_materialized() {
    // The baseline: materialized corpora, serial.
    let baseline = ReproContext::with_config(cfg(0x5A7E_1117, 1));
    let table1 = run_experiment(&baseline, "table1").expect("known id");
    let fig3c = run_experiment(&baseline, "fig3c").expect("known id");
    for chunk in [1usize, 1024, WHOLE] {
        for threads in [1usize, 2, 8] {
            let ctx = ReproContext::with_chunk(cfg(0x5A7E_1117, threads), chunk);
            assert_eq!(
                run_experiment(&ctx, "table1").expect("known id"),
                table1,
                "table1 at chunk {chunk} threads {threads}"
            );
            assert_eq!(
                run_experiment(&ctx, "fig3c").expect("known id"),
                fig3c,
                "fig3c at chunk {chunk} threads {threads}"
            );
        }
    }
}

#[test]
fn streamed_pipeline_identical_across_chunk_and_thread_matrix() {
    // Both passes of the streamed pipeline run chunk-parallel now, so
    // this matrix also pins the parallel fold: partials must merge in
    // chunk order at every thread count (bitmap bits, dense verdicts,
    // and per-operator latency sample order included).
    let corpus = MlabGenerator::new(cfg(7, 0)).generate();
    let materialized = Pipeline::with_threads(1).run(&corpus.records);
    let opts = StreamOptions {
        dense_acceptance: true,
        operator_latencies: true,
        ..StreamOptions::default()
    };
    let serial_gen = MlabGenerator::new(cfg(7, 1));
    let serial = Pipeline::with_threads(1).run_streamed(|| serial_gen.generate_chunks(WHOLE), opts);
    for chunk in [1usize, 1024, WHOLE] {
        for threads in [1usize, 2, 8] {
            let generator = MlabGenerator::new(cfg(7, threads));
            let streamed = Pipeline::with_threads(threads)
                .run_streamed(|| generator.generate_chunks(chunk), opts);
            let label = format!("chunk {chunk} threads {threads}");
            assert_eq!(streamed.records, corpus.records.len(), "{label}");
            assert_eq!(streamed.catalog, materialized.catalog, "{label}");
            assert_eq!(streamed.thresholds, materialized.thresholds, "{label}");
            assert_eq!(
                streamed.default_threshold, materialized.default_threshold,
                "{label}"
            );
            assert_eq!(
                streamed.accepted.as_deref(),
                Some(materialized.accepted.as_slice()),
                "{label}"
            );
            assert_eq!(
                streamed.latencies_by_operator, serial.latencies_by_operator,
                "{label}"
            );
            let bits: Vec<bool> = (0..streamed.bitmap.len())
                .map(|i| streamed.bitmap.get(i))
                .collect();
            let serial_bits: Vec<bool> = (0..serial.bitmap.len())
                .map(|i| serial.bitmap.get(i))
                .collect();
            assert_eq!(bits, serial_bits, "{label}");
        }
    }
}

#[test]
fn encoded_replay_identical_across_chunk_and_thread_matrix() {
    // `replay_encoded` swaps pass 2's regeneration for a decode of the
    // compact binary corpus buffered in pass 1; the report must not
    // change by a bit anywhere in the matrix.
    let corpus = MlabGenerator::new(cfg(7, 0)).generate();
    let materialized = Pipeline::with_threads(1).run(&corpus.records);
    for chunk in [1usize, 1024, WHOLE] {
        for threads in [1usize, 2, 8] {
            let generator = MlabGenerator::new(cfg(7, threads));
            let streamed = Pipeline::with_threads(threads).run_streamed(
                || generator.generate_chunks(chunk),
                StreamOptions {
                    dense_acceptance: true,
                    replay_encoded: true,
                    ..StreamOptions::default()
                },
            );
            let label = format!("replay chunk {chunk} threads {threads}");
            assert_eq!(streamed.records, corpus.records.len(), "{label}");
            assert_eq!(streamed.catalog, materialized.catalog, "{label}");
            assert_eq!(streamed.thresholds, materialized.thresholds, "{label}");
            assert_eq!(
                streamed.default_threshold, materialized.default_threshold,
                "{label}"
            );
            assert_eq!(
                streamed.accepted.as_deref(),
                Some(materialized.accepted.as_slice()),
                "{label}"
            );
        }
    }
}

#[test]
fn fig4a_text_identical_across_chunk_and_thread_matrix() {
    // Regression: fig4a used to materialize its own corpus with a bare
    // `Pipeline::new()`, so `repro --threads/--chunk` silently did not
    // apply to it. It now routes through the context like every other
    // experiment; the rendered text must be byte-identical everywhere.
    let baseline = ReproContext::with_config(cfg(0x5A7E_1117, 1));
    let fig4a = run_experiment(&baseline, "fig4a").expect("known id");
    for chunk in [1024usize, WHOLE] {
        for threads in [1usize, 2, 8] {
            let ctx = ReproContext::with_chunk(cfg(0x5A7E_1117, threads), chunk);
            assert_eq!(
                run_experiment(&ctx, "fig4a").expect("known id"),
                fig4a,
                "fig4a at chunk {chunk} threads {threads}"
            );
        }
    }
}

#[test]
fn atlas_series_identical_streamed_and_materialized() {
    let corpus = AtlasGenerator::new(cfg(1, 1)).generate();
    let series = pop_rtt_series_by_probe(&corpus.traceroutes);
    for chunk in [251usize, WHOLE] {
        for threads in [1usize, 2, 8] {
            let generator = AtlasGenerator::new(cfg(1, threads));
            let streamed = pop_rtt_series_from_chunks(generator.traceroute_chunks(chunk));
            assert_eq!(streamed, series, "chunk {chunk} threads {threads}");
        }
    }
}

#[test]
fn probes_identical_streamed_and_materialized() {
    let serial = AtlasGenerator::new(cfg(3, 1)).probes();
    for chunk in [1usize, 1024, WHOLE] {
        for threads in [1usize, 2, 8] {
            let got = AtlasGenerator::new(cfg(3, threads))
                .probe_chunks(chunk)
                .collect_records();
            assert_eq!(got, serial, "chunk {chunk} threads {threads}");
        }
    }
}

#[test]
fn sslcerts_identical_streamed_and_materialized() {
    // The chunked stream is per-probe chronological in probe-id order;
    // `sslcerts()` interleaves globally with a *stable* sort by
    // (timestamp, probe). The same stable sort over the chunked records
    // must reproduce it exactly — which also proves every per-probe
    // subsequence matches, the property the PoP-change detector needs.
    let serial = AtlasGenerator::new(cfg(3, 1)).sslcerts();
    for chunk in [1usize, 1024, WHOLE] {
        for threads in [1usize, 2, 8] {
            let mut got = AtlasGenerator::new(cfg(3, threads))
                .sslcert_chunks(chunk)
                .collect_records();
            got.sort_by_key(|s| (s.timestamp, s.probe.0));
            assert_eq!(got, serial, "chunk {chunk} threads {threads}");
        }
    }
}

#[test]
fn census_identical_streamed_and_materialized() {
    let serial = sno_dissect::synth::census_responses(11);
    for chunk in [1usize, 7, WHOLE] {
        let got = sno_dissect::synth::census_chunks(11, chunk).collect_records();
        assert_eq!(got, serial, "chunk {chunk}");
    }
}

#[test]
fn path_samples_identical_streamed_and_materialized() {
    use sno_dissect::synth::paths::PathSampler;
    use sno_dissect::types::Operator;
    let ops = [
        Operator::Starlink,
        Operator::Oneweb,
        Operator::O3b,
        Operator::Viasat,
        Operator::Hughes,
    ];
    let serial_sampler = PathSampler::new(cfg(5, 1));
    let serial: Vec<_> = ops
        .iter()
        .flat_map(|&op| serial_sampler.samples_for(op))
        .collect();
    assert!(!serial.is_empty());
    for chunk in [1usize, 1024, WHOLE] {
        for threads in [1usize, 2, 8] {
            let sampler = PathSampler::new(cfg(5, threads));
            let got = sampler.sample_chunks(&ops, chunk).collect_records();
            assert_eq!(got, serial, "chunk {chunk} threads {threads}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Chunked generation yields exactly the materialized records for
    /// *any* (seed, chunk length, thread count), not just the pinned
    /// matrix.
    #[test]
    fn any_seed_chunked_generation_matches_materialized(
        seed in any::<u64>(),
        chunk in prop_oneof![4 => 1..2_048usize, 1 => WHOLE..WHOLE + 1],
        threads in 1..9usize,
    ) {
        let generator = MlabGenerator::new(cfg(seed, threads));
        let streamed = generator.generate_chunks(*chunk).collect_records();
        let materialized = generator.generate();
        prop_assert_eq!(streamed.len(), materialized.records.len());
        prop_assert_eq!(streamed, materialized.records);
    }
}
