//! Row/column equivalence over a full generated corpus: the columnar
//! batch builders, the batch pipeline, the binary corpus codec, and
//! the grouped stability analysis must reproduce the row-at-a-time
//! results bit for bit.

use sno_bench::FIG4A_OPS;
use sno_dissect::core::analysis;
use sno_dissect::core::pipeline::Pipeline;
use sno_dissect::synth::{MlabGenerator, SynthConfig};
use sno_dissect::types::chunk::RecordChunks;
use sno_dissect::types::{codec, RecordBatch};

/// The small-but-sharded corpus of `tests/par_determinism.rs`.
fn cfg() -> SynthConfig {
    SynthConfig {
        scale: 5e-5,
        min_sessions: 40,
        ..SynthConfig::test_corpus()
    }
}

#[test]
fn batch_builders_agree_with_row_records() {
    let corpus = MlabGenerator::new(cfg()).generate();
    let from_records = RecordBatch::from_records(&corpus.records);
    assert_eq!(from_records.len(), corpus.records.len());
    // Every column round-trips back into the source record.
    for (i, rec) in corpus.records.iter().enumerate() {
        assert_eq!(&from_records.record(i), rec, "record {i}");
    }
    // The chunked builder lands on the same batch at any chunk length.
    let generator = MlabGenerator::new(cfg());
    for chunk in [1usize, 1024, 1 << 30] {
        let from_chunks = RecordBatch::from_chunks(generator.generate_chunks(chunk));
        assert_eq!(from_chunks, from_records, "chunk {chunk}");
    }
}

#[test]
fn batch_pipeline_matches_row_pipeline() {
    let corpus = MlabGenerator::new(cfg()).generate();
    let row = Pipeline::with_threads(1).run(&corpus.records);
    let batch = RecordBatch::from_records(&corpus.records);
    for threads in [1usize, 2, 8] {
        let col = Pipeline::with_threads(threads).run_batch(&batch);
        assert_eq!(col.accepted, row.accepted, "threads {threads}");
        assert_eq!(col.catalog, row.catalog, "threads {threads}");
        assert_eq!(col.thresholds, row.thresholds, "threads {threads}");
        assert_eq!(
            col.default_threshold, row.default_threshold,
            "threads {threads}"
        );
    }
}

#[test]
fn codec_round_trips_a_generated_corpus() {
    let corpus = MlabGenerator::new(cfg()).generate();
    let encoded = codec::encode_records(&corpus.records);
    assert_eq!(encoded.len(), corpus.records.len());
    // Whole-buffer decode, chunked decode, and a byte-level round trip
    // all land on the source records.
    assert_eq!(encoded.decode_records(), corpus.records);
    for chunk in [1usize, 4096, 1 << 30] {
        assert_eq!(
            encoded.chunks(chunk).collect_records(),
            corpus.records,
            "chunk {chunk}"
        );
    }
    let reparsed = codec::EncodedCorpus::from_bytes(encoded.bytes().to_vec())
        .expect("self-produced bytes parse");
    assert_eq!(reparsed.decode_records(), corpus.records);
}

#[test]
fn columnar_stability_matches_row_stability() {
    let corpus = MlabGenerator::new(cfg()).generate();
    let report = Pipeline::with_threads(1).run(&corpus.records);
    let batch = RecordBatch::from_records(&corpus.records);
    let ops = FIG4A_OPS.to_vec();
    let row = analysis::stability_by_operator(&corpus.records, &report, &ops);
    let col = analysis::stability_by_operator_batch(&batch, &report.accepted, &ops);
    assert_eq!(col, row);
}
