//! Thread-count independence: the worker pool must never change any
//! output. Shard boundaries are a pure function of the work size and
//! every shard draws from its own RNG substream (`sno_types::par`), so
//! corpus generation and the identification pipeline must be
//! byte-identical whether they run on one thread or many.

use sno_check::prelude::*;
use sno_dissect::core::pipeline::Pipeline;
use sno_dissect::synth::{MlabGenerator, SynthConfig};

/// A corpus small enough for many debug-mode generations but large
/// enough that the big operators span several shards
/// (`par::DEFAULT_CHUNK` = 128 sessions).
fn cfg(seed: u64, threads: usize) -> SynthConfig {
    SynthConfig {
        seed,
        threads,
        scale: 5e-5,
        min_sessions: 40,
        ..SynthConfig::test_corpus()
    }
}

#[test]
fn mlab_corpus_identical_at_any_thread_count() {
    for seed in [1, 7, 0x5A7E_1117] {
        let serial = MlabGenerator::new(cfg(seed, 1)).generate();
        for threads in [2, 8] {
            let pooled = MlabGenerator::new(cfg(seed, threads)).generate();
            assert_eq!(
                serial.records, pooled.records,
                "seed {seed} threads {threads}"
            );
        }
    }
}

#[test]
fn pipeline_identical_at_any_thread_count() {
    for seed in [1, 7, 0x5A7E_1117] {
        let corpus = MlabGenerator::new(cfg(seed, 0)).generate();
        let serial = Pipeline::with_threads(1).run(&corpus.records);
        for threads in [2, 8] {
            let pooled = Pipeline::with_threads(threads).run(&corpus.records);
            assert_eq!(
                serial.accepted, pooled.accepted,
                "seed {seed} threads {threads}"
            );
            assert_eq!(
                serial.catalog, pooled.catalog,
                "seed {seed} threads {threads}"
            );
            assert_eq!(serial.thresholds, pooled.thresholds);
            assert_eq!(serial.default_threshold, pooled.default_threshold);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Generation and identification agree between one worker and a
    /// pool for *any* seed, not just the committed ones.
    #[test]
    fn any_seed_is_thread_count_independent(
        seed in any::<u64>(),
        threads in 2..9usize,
    ) {
        let serial = MlabGenerator::new(cfg(seed, 1)).generate();
        let pooled = MlabGenerator::new(cfg(seed, threads)).generate();
        prop_assert_eq!(&serial.records, &pooled.records);
        let a = Pipeline::with_threads(1).run(&serial.records);
        let b = Pipeline::with_threads(threads).run(&pooled.records);
        prop_assert_eq!(a.accepted, b.accepted);
        prop_assert_eq!(a.catalog, b.catalog);
        prop_assert_eq!(a.default_threshold, b.default_threshold);
    }
}
