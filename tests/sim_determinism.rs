//! The sim-sweep determinism contract: the rendered campaign report is
//! a pure function of the seed list — worker-thread count, scheduling,
//! and repetition must never leak into a single byte of it. This is
//! what makes `repro --sim-sweep --seed <S>` a complete reproduction
//! recipe for any failure CI prints.

use sno_netsim::sim::{run_seed, run_sweep, SweepConfig};

/// A fixed seed list mixing small and adversarial bit patterns.
const SEEDS: [u64; 6] = [0, 1, 7, 0x5A7E_1117, u64::MAX, 0x8000_0000_0000_0000];

#[test]
fn sweep_report_is_byte_identical_across_thread_counts() {
    let render = |threads: usize| {
        run_sweep(&SweepConfig {
            seeds: SEEDS.to_vec(),
            threads,
            quick: true,
        })
        .render()
    };
    let serial = render(1);
    for threads in [2, 8] {
        assert_eq!(
            serial,
            render(threads),
            "sweep report diverged at {threads} threads"
        );
    }
    assert!(serial.contains(&format!("{}/{} seeds passed", SEEDS.len(), SEEDS.len())));
}

#[test]
fn seed_reports_replay_identically() {
    for seed in SEEDS {
        let a = run_seed(seed, true);
        let b = run_seed(seed, true);
        assert_eq!(a, b, "seed {seed} did not replay identically");
        assert!(a.passed(), "seed {seed}: {:?}", a.violations);
    }
}

#[test]
fn fresh_seed_derivation_is_machine_independent() {
    // Campaign 0's first fresh seeds are pinned: `repro --sim-sweep`
    // must explore the same seed list on every machine and platform.
    let seeds = SweepConfig::fresh_seeds(0, 3);
    assert_eq!(seeds, SweepConfig::fresh_seeds(0, 3));
    assert_eq!(seeds.len(), 3);
    assert!(seeds.iter().all(|&s| s != 0));
}
