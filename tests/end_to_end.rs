//! End-to-end integration: generate the corpora, run the pipeline and
//! analyses across crates, and check the paper's headline claims hold
//! together — not just within each crate's unit tests.

use sno_dissect::core::analysis::{self, OrbitGroup};
use sno_dissect::core::pipeline::{Pipeline, PipelineReport};
use sno_dissect::synth::{MlabCorpus, MlabGenerator, SynthConfig};
use sno_dissect::types::{Operator, OrbitClass};
use std::sync::OnceLock;

fn fixture() -> &'static (MlabCorpus, PipelineReport) {
    static FIXTURE: OnceLock<(MlabCorpus, PipelineReport)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let corpus = MlabGenerator::new(SynthConfig::test_corpus()).generate();
        let report = Pipeline::new().run(&corpus.records);
        (corpus, report)
    })
}

#[test]
fn the_full_story_holds_together() {
    let (corpus, report) = fixture();

    // Table 1: 18 SNOs, Starlink dominant.
    assert_eq!(report.sno_count(), 18);
    assert_eq!(report.catalog[0].0, Operator::Starlink);
    let starlink_share =
        report.catalog[0].1 as f64 / report.accepted.iter().flatten().count() as f64;
    // At the default scale Starlink carries ~75% of accepted records; at
    // the down-scaled test corpus the operator floors dilute it, but it
    // must still be the plurality by a wide margin.
    assert!(starlink_share > 0.35, "Starlink share {starlink_share}");

    // Figure 3c: the latency ladder LEO < MEO < GEO.
    let ladder = analysis::latency_by_operator(&corpus.records, report);
    let med = |op: Operator| {
        ladder
            .iter()
            .find(|(o, _)| *o == op)
            .map(|(_, s)| s.median)
            .unwrap()
    };
    assert!(med(Operator::Starlink) < med(Operator::Oneweb));
    assert!(med(Operator::Oneweb) < med(Operator::O3b));
    assert!(med(Operator::O3b) < med(Operator::Ssi));

    // Figure 4b: relative jitter inverts the latency ordering...
    let jitter = analysis::jitter_by_orbit(&corpus.records, report);
    let leo_var = jitter.median_variation(OrbitClass::Leo).unwrap();
    let geo_var = jitter.median_variation(OrbitClass::Geo).unwrap();
    assert!(leo_var > geo_var, "LEO {leo_var} vs GEO {geo_var}");
    // ...while absolute jitter does not.
    let leo_abs = jitter.tail_at_least(OrbitClass::Leo, 100.0).unwrap();
    let geo_abs = jitter.tail_at_least(OrbitClass::Geo, 100.0).unwrap();
    assert!(geo_abs > 0.6 && leo_abs < 0.2);

    // Figure 4c: PEPs flatten GEO retransmissions down to LEO levels.
    let retrans = analysis::retransmissions(&corpus.records, report);
    let med_of = |g: OrbitGroup| sno_dissect::stats::median(&retrans[&g]).unwrap();
    assert!(med_of(OrbitGroup::GeoOther) > 0.03);
    assert!(med_of(OrbitGroup::GeoPep) < med_of(OrbitGroup::Leo) + 0.01);
    assert!(med_of(OrbitGroup::Leo) < med_of(OrbitGroup::Meo));
}

#[test]
fn pipeline_accuracy_against_ground_truth() {
    // The identification pipeline never sees the generator's ground
    // truth; score it like a classifier.
    let (corpus, truth) = MlabGenerator::new(SynthConfig::test_corpus()).generate_with_truth();
    let report = Pipeline::new().run(&corpus.records);

    let mut tp = 0usize; // satellite accepted
    let mut fn_ = 0usize; // satellite rejected
    let mut fp = 0usize; // non-satellite accepted
    let mut tn = 0usize; // non-satellite rejected
    for (t, acc) in truth.iter().zip(&report.accepted) {
        let is_sat = matches!(t.kind, sno_dissect::types::LinkKind::Satellite(_));
        match (is_sat, acc.is_some()) {
            (true, true) => tp += 1,
            (true, false) => fn_ += 1,
            (false, true) => fp += 1,
            (false, false) => tn += 1,
        }
    }
    let recall = tp as f64 / (tp + fn_) as f64;
    // Precision over the records whose satellite-ness is in question:
    // hybrid-backup satellite sessions count as satellite in `truth`,
    // so the only false positives are terrestrial/degraded lines.
    let precision = tp as f64 / (tp + fp) as f64;
    assert!(recall > 0.9, "recall {recall} (tp {tp}, fn {fn_})");
    assert!(precision > 0.95, "precision {precision} (fp {fp}, tn {tn})");
}

#[test]
fn atlas_and_mlab_agree_on_starlink_latency() {
    // Two independent vantage systems measure the same network: the
    // RIPE probes' PoP RTT and the NDT p5 latency must land in the same
    // regime (NDT adds the server tail, so it sits a bit higher).
    let (corpus, report) = fixture();
    let ladder = analysis::latency_by_operator(&corpus.records, report);
    let ndt_median = ladder
        .iter()
        .find(|(o, _)| *o == Operator::Starlink)
        .map(|(_, s)| s.median)
        .unwrap();

    let atlas = sno_dissect::synth::AtlasGenerator::new(SynthConfig::test_corpus()).generate();
    let infos: Vec<_> = atlas
        .probes
        .iter()
        .map(|p| sno_dissect::atlas::ProbeInfo {
            id: p.id,
            country: p.country,
            state: p.state,
        })
        .collect();
    let rows = sno_dissect::atlas::pop_rtt_by_country(&atlas.traceroutes, &infos);
    let atlas_median =
        sno_dissect::stats::median(&rows.iter().map(|(_, s)| s.median).collect::<Vec<_>>())
            .unwrap();
    assert!(
        ndt_median > atlas_median * 0.8 && ndt_median < atlas_median * 2.5,
        "NDT {ndt_median} vs Atlas {atlas_median}"
    );
}

#[test]
fn catalog_correlates_with_table1_ranking() {
    // Spearman-style sanity: the measured catalog ordering must agree
    // with the paper's Table 1 ordering for the operators whose scaled
    // volumes are not flattened by the generator floor.
    let (_, report) = fixture();
    let rank = |op: Operator| {
        report
            .catalog
            .iter()
            .position(|&(o, _)| o == op)
            .expect("in catalog")
    };
    assert!(rank(Operator::Starlink) < rank(Operator::Ssi));
    assert!(rank(Operator::Ssi) < rank(Operator::Kacific));
    assert!(rank(Operator::Eutelsat) < rank(Operator::Isotropic));
    assert!(rank(Operator::Globalsat) < rank(Operator::HellasSat));
}
