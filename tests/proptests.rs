//! Property-based tests over the core data structures and invariants.

use sno_check::prelude::*;
use sno_dissect::netsim::path::{PathDynamics, StaticPath, SteppedPath};
use sno_dissect::netsim::tcp::{TcpConfig, TcpFlow};
use sno_dissect::stats::{detect_mean_shifts, Ecdf, FiveNumber, Kde};
use sno_dissect::types::{Ipv4, Rng};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Quantiles are monotone in q and bounded by the sample range.
    #[test]
    fn quantiles_monotone_and_bounded(
        mut data in prop::collection::vec(-1e6..1e6f64, 1..200),
        qa in 0.0..=1.0f64,
        qb in 0.0..=1.0f64,
    ) {
        let (lo, hi) = (qa.min(qb), qa.max(qb));
        let va = sno_dissect::stats::quantile(&data, lo).unwrap();
        let vb = sno_dissect::stats::quantile(&data, hi).unwrap();
        prop_assert!(va <= vb);
        data.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert!(va >= data[0] && vb <= *data.last().unwrap());
    }

    /// Five-number summaries are always ordered.
    #[test]
    fn five_number_is_ordered(data in prop::collection::vec(-1e4..1e4f64, 1..100)) {
        let s = FiveNumber::of(&data).unwrap();
        prop_assert!(s.min <= s.q1 && s.q1 <= s.median);
        prop_assert!(s.median <= s.q3 && s.q3 <= s.max);
        let (wl, wh) = s.whiskers();
        prop_assert!(s.min <= wl && wh <= s.max);
    }

    /// ECDF is monotone, within [0,1], and its inverse is consistent.
    #[test]
    fn ecdf_invariants(
        data in prop::collection::vec(-1e3..1e3f64, 1..100),
        x in -2e3..2e3f64,
        q in 0.01..=1.0f64,
    ) {
        let e = Ecdf::new(&data).unwrap();
        let f = e.eval(x);
        prop_assert!((0.0..=1.0).contains(&f));
        prop_assert!(e.eval(x + 1.0) >= f);
        // P(X <= inverse(q)) >= q.
        let v = e.inverse(q);
        prop_assert!(e.eval(v) + 1e-12 >= q);
        // tail + cdf(open complement) == 1.
        let t = e.tail_at_least(x);
        let below = e.eval(x) - data.iter().filter(|&&d| (d - x).abs() == 0.0).count() as f64
            / data.len() as f64;
        prop_assert!((t + below - 1.0).abs() < 1e-9);
    }

    /// KDE sample mass over the full range is 1, and band masses add up.
    #[test]
    fn kde_mass_partitions(data in prop::collection::vec(0.0..1000.0f64, 2..150)) {
        let kde = Kde::fit(&data).unwrap();
        let total = kde.mass_in(-1.0, 1001.0);
        prop_assert!((total - 1.0).abs() < 1e-12);
        let a = kde.mass_in(-1.0, 500.0);
        let b = kde.mass_in(500.0, 1001.0);
        prop_assert!((a + b - 1.0).abs() < 1e-12);
    }

    /// Changepoint indices are interior and respect min_segment.
    #[test]
    fn changepoints_are_interior(
        data in prop::collection::vec(0.0..100.0f64, 20..200),
        min_shift in 1.0..50.0f64,
    ) {
        let shifts = detect_mean_shifts(&data, min_shift, 5);
        for s in &shifts {
            prop_assert!(s.index >= 5);
            prop_assert!(s.index <= data.len() - 5);
            prop_assert!(s.magnitude() >= min_shift);
        }
    }

    /// IPv4/prefix round trips.
    #[test]
    fn prefix_contains_its_hosts(a in any::<u8>(), b in any::<u8>(), c in any::<u8>(), h in any::<u8>()) {
        let p = sno_dissect::types::Prefix24::new(a, b, c);
        let addr = p.addr(h);
        prop_assert!(p.contains(addr));
        prop_assert_eq!(addr.prefix24(), p);
        prop_assert_eq!(addr.host(), h);
        prop_assert_eq!(Ipv4::new(a, b, c, h), addr);
    }

    /// RNG bounded draws stay in range; binomial never exceeds n.
    #[test]
    fn rng_bounds(seed in any::<u64>(), n in 1..10_000u64, p in 0.0..=1.0f64) {
        let mut rng = Rng::new(seed);
        prop_assert!(rng.below(n) < n);
        prop_assert!(rng.binomial(n, p) <= n);
        let x = rng.range_u64(3, 9);
        prop_assert!((3..=9).contains(&x));
        let f = rng.f64();
        prop_assert!((0.0..1.0).contains(&f));
    }

    /// TCP flow conservation: acked + retransmitted <= sent (in bytes),
    /// retrans fraction in [0,1], and throughput never exceeds the
    /// bottleneck.
    #[test]
    fn tcp_flow_conservation(
        rtt in 5.0..800.0f64,
        loss in 0.0..0.2f64,
        rate in 1.0..200.0f64,
        seed in any::<u64>(),
    ) {
        let path = StaticPath { rtt_ms: rtt, loss, rate_mbps: rate, buffer_ms: 150.0 };
        let stats = TcpFlow::new(TcpConfig::ndt()).run(&path, 0.0, &mut Rng::new(seed));
        prop_assert!(stats.bytes_acked + stats.bytes_retrans <= stats.bytes_sent + 1);
        let f = stats.retrans_fraction();
        prop_assert!((0.0..=1.0).contains(&f));
        // Mean goodput cannot beat the bottleneck (with slack for the
        // fluid model's rounding).
        prop_assert!(stats.mean_throughput().0 <= rate * 1.15 + 1.0);
        // RTT samples are at least half the base (noise floor).
        for &s in &stats.rtt_samples {
            prop_assert!(s >= rtt * 0.5 - 1e-9);
        }
    }

    /// Orbit geometry: satellites stay on their shell, visible
    /// satellites respect the elevation mask.
    #[test]
    fn orbit_invariants(
        lat in -60.0..60.0f64,
        lon in -180.0..180.0f64,
        t in 0.0..20_000.0f64,
    ) {
        use sno_dissect::orbit::{ecef_of, STARLINK_SHELL};
        use sno_dissect::geo::GeoPoint;
        let obs = ecef_of(GeoPoint::new(lat, lon));
        if let Some(v) = STARLINK_SHELL.best_visible(obs, t, 25.0) {
            prop_assert!(v.elevation_deg >= 25.0);
            prop_assert!(v.slant.0 >= STARLINK_SHELL.altitude_km - 1.0);
            let sat = STARLINK_SHELL.sat_position(v.plane, v.index, t);
            prop_assert!((sat.norm() - STARLINK_SHELL.orbit_radius_km()).abs() < 1e-6);
        }
    }

    /// Daily medians: one point per day, medians bounded by the day's
    /// samples, chronological order.
    #[test]
    fn daily_medians_invariants(
        samples in prop::collection::vec((0u32..50, 0.0..1000.0f64), 1..300),
    ) {
        use sno_dissect::types::{Timestamp, UtcDay};
        let ts: Vec<(Timestamp, f64)> = samples
            .iter()
            .map(|&(d, v)| (Timestamp::from_day(UtcDay(d)), v))
            .collect();
        let daily = sno_dissect::stats::daily_medians(&ts);
        for w in daily.windows(2) {
            prop_assert!(w[0].day < w[1].day);
        }
        let total: usize = daily.iter().map(|d| d.count).sum();
        prop_assert_eq!(total, samples.len());
    }

    /// TCP throughput is finite and non-negative under random path and
    /// flow configurations, and byte accounting stays consistent.
    #[test]
    fn tcp_throughput_finite_nonnegative(
        rtt in 1.0..1000.0f64,
        loss in 0.0..0.5f64,
        rate in 0.5..500.0f64,
        buffer in 1.0..500.0f64,
        mss in 500u32..3000,
        init_cwnd in 1.0..20.0f64,
        seed in any::<u64>(),
    ) {
        let path = StaticPath { rtt_ms: rtt, loss, rate_mbps: rate, buffer_ms: buffer };
        let config = TcpConfig {
            mss,
            initial_cwnd: init_cwnd,
            max_duration_secs: 3.0,
            ..TcpConfig::ndt()
        };
        let stats = TcpFlow::new(config).run(&path, 0.0, &mut Rng::new(seed));
        let tput = stats.mean_throughput().0;
        prop_assert!(tput.is_finite(), "throughput {tput}");
        prop_assert!(tput >= 0.0, "throughput {tput}");
        prop_assert!(stats.duration_secs.is_finite() && stats.duration_secs >= 0.0);
        prop_assert!(stats.bytes_acked <= stats.bytes_sent);
        prop_assert!(stats.rtt_samples.iter().all(|s| s.is_finite() && *s >= 0.0));
    }

    /// The TCP simulation is deterministic given a seed (the
    /// FoundationDB-style property every netsim invariant leans on).
    #[test]
    fn tcp_is_deterministic_given_seed(
        rtt in 5.0..600.0f64,
        loss in 0.0..0.1f64,
        rate in 1.0..100.0f64,
        seed in any::<u64>(),
    ) {
        let path = StaticPath { rtt_ms: rtt, loss, rate_mbps: rate, buffer_ms: 100.0 };
        let config = TcpConfig { max_duration_secs: 2.0, ..TcpConfig::ndt() };
        let a = TcpFlow::new(config.clone()).run(&path, 0.0, &mut Rng::new(seed));
        let b = TcpFlow::new(config).run(&path, 0.0, &mut Rng::new(seed));
        prop_assert_eq!(a.bytes_sent, b.bytes_sent);
        prop_assert_eq!(a.bytes_acked, b.bytes_acked);
        prop_assert_eq!(a.bytes_retrans, b.bytes_retrans);
        prop_assert_eq!(a.rtt_samples, b.rtt_samples);
    }

    /// A static path reports the same dynamics at every instant: its RTT
    /// is the whole (single-hop) delay budget, loss and rate are fixed,
    /// and no handoffs ever happen.
    #[test]
    fn static_path_dynamics_are_constant(
        rtt in 1.0..1000.0f64,
        loss in 0.0..=1.0f64,
        rate in 0.1..1000.0f64,
        t in 0.0..1e6f64,
    ) {
        let p = StaticPath { rtt_ms: rtt, loss, rate_mbps: rate, buffer_ms: 80.0 };
        prop_assert_eq!(p.base_rtt_ms(t), Some(rtt));
        prop_assert_eq!(p.loss_prob(t), loss);
        prop_assert_eq!(p.bottleneck_mbps(), rate);
        prop_assert_eq!(p.generation(t), p.generation(0.0));
        prop_assert_eq!(p.handoff_loss_prob(), 0.0);
    }

    /// A stepped path's RTT at time `t` equals the schedule segment
    /// containing `t`, and its generation counts exactly the boundaries
    /// crossed (so it is monotone in `t`).
    #[test]
    fn stepped_path_follows_its_schedule(
        rtts in prop::collection::vec(10.0..200.0f64, 1..10),
        dt in 1.0..30.0f64,
        t in 0.0..400.0f64,
    ) {
        let steps: Vec<(f64, f64)> = rtts
            .iter()
            .enumerate()
            .map(|(k, &r)| ((k as f64 + 1.0) * dt, r))
            .collect();
        let p = SteppedPath {
            steps: steps.clone(),
            loss: 0.0,
            rate_mbps: 50.0,
            handoff_loss: 0.0,
        };
        let expected = steps
            .iter()
            .find(|&&(until, _)| t < until)
            .map(|&(_, r)| r)
            .unwrap_or(steps.last().unwrap().1);
        prop_assert_eq!(p.base_rtt_ms(t), Some(expected));
        let crossed = steps.iter().filter(|&&(until, _)| t >= until).count() as u64;
        prop_assert_eq!(p.generation(t), crossed);
        prop_assert!(p.generation(t + dt) >= p.generation(t));
    }

    /// The binary corpus codec round-trips arbitrary records — field
    /// values are carried as raw bits, so NaNs and negative zeros
    /// survive too. Compared via a re-encode (bytes are total-ordered
    /// where `f64` equality is not).
    #[test]
    fn codec_round_trips_arbitrary_records(
        fields in prop::collection::vec(
            (any::<u64>(), any::<u32>(), any::<u32>(),
             any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
            0..64,
        ),
    ) {
        use sno_dissect::types::records::NdtRecord;
        use sno_dissect::types::{codec, Asn, Ipv4, Millis, Mbps, Timestamp};
        // Floats from raw bit patterns: exercises NaNs, infinities, and
        // negative zero, which value-space generators never produce.
        let records: Vec<NdtRecord> = fields
            .iter()
            .map(|&(ts, client, asn, lat, jit, retrans, down)| NdtRecord {
                timestamp: Timestamp(ts),
                client: Ipv4::new(
                    (client >> 24) as u8,
                    (client >> 16) as u8,
                    (client >> 8) as u8,
                    client as u8,
                ),
                asn: Asn(asn),
                latency_p5: Millis(f64::from_bits(lat)),
                jitter_p95: Millis(f64::from_bits(jit)),
                retrans_fraction: f64::from_bits(retrans),
                download: Mbps(f64::from_bits(down)),
            })
            .collect();
        let encoded = codec::encode_records(&records);
        prop_assert_eq!(encoded.len(), records.len());
        let decoded = encoded.decode_records();
        let reencoded = codec::encode_records(&decoded);
        prop_assert_eq!(reencoded.bytes(), encoded.bytes());
        let reparsed = codec::EncodedCorpus::from_bytes(encoded.bytes().to_vec());
        prop_assert!(reparsed.is_ok());
    }

    /// The batched (windowed) KDE grid is bitwise-identical to the
    /// naive pointwise density at every grid point: skipped kernel
    /// terms underflow to +0.0, which is an exact no-op in the sum.
    #[test]
    fn kde_grid_is_bitwise_pointwise(
        data in prop::collection::vec(0.0..1000.0f64, 2..150),
        lo in -100.0..400.0f64,
        span in 1.0..800.0f64,
        points in 2..200usize,
    ) {
        let kde = Kde::fit(&data).unwrap();
        let hi = lo + span;
        let grid = kde.density_grid(lo, hi, points);
        prop_assert_eq!(grid.len(), points);
        let step = (hi - lo) / (points - 1) as f64;
        for (k, &(x, d)) in grid.iter().enumerate() {
            let expected_x = lo + k as f64 * step;
            prop_assert_eq!(x.to_bits(), expected_x.to_bits(), "x at {k}");
            prop_assert_eq!(
                d.to_bits(),
                kde.density(x).to_bits(),
                "density at {k} (x {x})"
            );
        }
    }

    /// Changepoint detection finds no shifts in a constant series, no
    /// matter its level, length, or the threshold.
    #[test]
    fn no_shifts_in_constant_series(
        level in -1e3..1e3f64,
        n in 10..300usize,
        min_shift in 0.5..100.0f64,
    ) {
        let series = vec![level; n];
        let shifts = detect_mean_shifts(&series, min_shift, 5);
        prop_assert!(shifts.is_empty(), "found {} shifts", shifts.len());
    }
}
