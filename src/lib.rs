//! `sno-dissect`: a reproduction of *Dissecting the Performance of
//! Satellite Network Operators* (CoNEXT 2023).
//!
//! This umbrella crate re-exports the workspace: the shared types, the
//! orbital and network simulators, the synthetic public-dataset
//! generators, and the paper's identification pipeline and analyses.
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record of every table and figure.

pub use sno_apps as apps;
pub use sno_atlas as atlas;
pub use sno_bgp as bgp;
pub use sno_core as core;
pub use sno_geo as geo;
pub use sno_netsim as netsim;
pub use sno_orbit as orbit;
pub use sno_registry as registry;
pub use sno_stats as stats;
pub use sno_synth as synth;
pub use sno_types as types;

/// Commonly used items for examples and quick experiments.
pub mod prelude {
    pub use sno_types::{
        Asn, Date, Ipv4, Mbps, Millis, Operator, OrbitClass, Prefix24, Rng, Timestamp,
    };
}
