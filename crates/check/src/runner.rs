//! The property-test runner: deterministic case seeding, panic capture,
//! greedy shrinking, and reproducible failure reports.
//!
//! Every case is generated from a seed derived *only* from the test name
//! and the case index, so a run is bit-reproducible across machines. On
//! failure the runner shrinks the counterexample greedily and prints the
//! case seed; re-running the same test with `SNO_CHECK_SEED=<seed>`
//! regenerates the identical input and replays the identical
//! (deterministic) shrink sequence, arriving at the same counterexample.

use crate::corpus;
use crate::strategy::Strategy;
use sno_types::Rng;
use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Once;

/// Environment variable that pins the runner to a single seeded case.
pub const SEED_ENV: &str = "SNO_CHECK_SEED";

/// Upper bound on shrink-candidate evaluations per failure. Candidates
/// are strictly simplifying so shrinking terminates on its own; this
/// only caps pathological bisection tails.
const SHRINK_BUDGET: usize = 4_096;

/// A failed property assertion (what `prop_assert!` returns).
#[derive(Debug, Clone)]
pub struct PropError {
    message: String,
}

impl PropError {
    /// Wrap an assertion message.
    pub fn new(message: impl Into<String>) -> PropError {
        PropError {
            message: message.into(),
        }
    }

    /// The assertion message.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl std::fmt::Display for PropError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Runner configuration (the `proptest_config` subset we support).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` random cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// One SplitMix64 output step, used to decorrelate case seeds.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a, hashing the test name into the base seed.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The seed of case `case` of the property named `name`.
fn case_seed(name: &str, case: u32) -> u64 {
    mix64(fnv1a(name.as_bytes()) ^ u64::from(case).wrapping_mul(0xA076_1D64_78BD_642F))
}

fn seed_from_env() -> Option<u64> {
    let raw = std::env::var(SEED_ENV).ok()?;
    let raw = raw.trim();
    let parsed = if let Some(hex) = raw.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        raw.parse()
    };
    match parsed {
        Ok(seed) => Some(seed),
        Err(_) => panic!("{SEED_ENV}={raw:?} is not a u64 seed"),
    }
}

thread_local! {
    /// True while the runner executes a case body, so the global panic
    /// hook stays quiet for panics we catch and turn into shrink fuel.
    static IN_CASE: Cell<bool> = const { Cell::new(false) };
}

/// Install (once) a panic hook that suppresses output for panics raised
/// inside a property body — the runner reports them itself, after
/// shrinking, with the seed attached.
fn install_quiet_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !IN_CASE.with(Cell::get) {
                previous(info);
            }
        }));
    });
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panic: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panic: {s}")
    } else {
        "panic: <non-string payload>".to_string()
    }
}

/// Run the body on one value, converting panics into `PropError`s.
fn run_case<V, F>(test: &F, value: V) -> Result<(), PropError>
where
    V: Clone,
    F: Fn(V) -> Result<(), PropError>,
{
    IN_CASE.with(|flag| flag.set(true));
    let outcome = catch_unwind(AssertUnwindSafe(|| test(value)));
    IN_CASE.with(|flag| flag.set(false));
    match outcome {
        Ok(result) => result,
        Err(payload) => Err(PropError::new(panic_message(payload))),
    }
}

/// Greedily walk the shrink tree: take the first simpler candidate that
/// still fails, repeat until none does.
fn shrink_to_minimal<S, F>(
    strategy: &S,
    test: &F,
    mut value: S::Value,
    mut error: PropError,
) -> (S::Value, PropError, usize)
where
    S: Strategy,
    F: Fn(S::Value) -> Result<(), PropError>,
{
    let mut steps = 0usize;
    let mut budget = SHRINK_BUDGET;
    'outer: loop {
        for candidate in strategy.shrink(&value) {
            if budget == 0 {
                break 'outer;
            }
            budget -= 1;
            if let Err(e) = run_case(test, candidate.clone()) {
                value = candidate;
                error = e;
                steps += 1;
                continue 'outer;
            }
        }
        break;
    }
    (value, error, steps)
}

/// Run `config.cases` random cases of a property (or exactly one when
/// [`SEED_ENV`] is set), shrinking and reporting on failure.
///
/// This is what the `proptest!` macro expands to; call it directly for
/// properties that need a custom harness.
pub fn run_property<S, F>(name: &str, config: &ProptestConfig, strategy: &S, test: F)
where
    S: Strategy,
    F: Fn(S::Value) -> Result<(), PropError>,
{
    install_quiet_hook();
    if let Some(seed) = seed_from_env() {
        run_seeded(name, strategy, &test, seed, 0, 1);
        eprintln!("sno-check: '{name}' passed the single case {SEED_ENV}={seed}");
        return;
    }
    // Regressions first: seeds that ever failed this property replay
    // before any fresh generation, so a fixed bug that resurfaces is
    // caught by case 0, not by luck.
    for (i, seed) in corpus::load_seeds(name).into_iter().enumerate() {
        run_seeded(name, strategy, &test, seed, i as u32, 0);
    }
    for case in 0..config.cases {
        run_seeded(
            name,
            strategy,
            &test,
            case_seed(name, case),
            case,
            config.cases,
        );
    }
}

/// Run the single case with RNG seed `seed`; panic with a reproducible
/// report if it fails.
fn run_seeded<S, F>(name: &str, strategy: &S, test: &F, seed: u64, case: u32, cases: u32)
where
    S: Strategy,
    F: Fn(S::Value) -> Result<(), PropError>,
{
    let mut rng = Rng::new(seed);
    let original = strategy.generate(&mut rng);
    if let Err(error) = run_case(test, original.clone()) {
        let (minimal, minimal_error, steps) =
            shrink_to_minimal(strategy, test, original.clone(), error);
        let recorded = match corpus::record_seed(name, seed) {
            Some(path) => format!("recorded in corpus: {}", path.display()),
            None => format!("corpus persistence off (set {})", corpus::CORPUS_DIR_ENV),
        };
        let which = if cases == 0 {
            format!("replaying corpus seed {case}")
        } else {
            format!("at case {case}/{cases}")
        };
        panic!(
            "property '{name}' failed {which}\n\
             \x20 reproduce with: {SEED_ENV}={seed} cargo test {short}\n\
             \x20 {recorded}\n\
             \x20 original input: {original:?}\n\
             \x20 counterexample (after {steps} shrink steps): {minimal:?}\n\
             \x20 {minimal_error}",
            short = name.rsplit("::").next().unwrap_or(name),
        );
    }
}
