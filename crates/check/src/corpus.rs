//! Persistent failure corpora for the property-test runner.
//!
//! A printed `SNO_CHECK_SEED` is only useful to whoever saw it scroll
//! by. A *corpus file* makes the regression durable: when a property
//! fails, its case seed is appended to `tests/corpora/<test>.seeds`,
//! and every later run replays the corpus before generating fresh
//! cases — so a once-found counterexample is retried forever, on every
//! machine, without anyone copying seeds around.
//!
//! Resolution of the corpus directory:
//!
//! 1. `SNO_CHECK_CORPUS_DIR`, if set (empty value disables corpora);
//! 2. otherwise `tests/corpora` relative to the current directory, but
//!    only if it already exists — a crate run from a directory without
//!    one silently skips persistence rather than littering.
//!
//! Files are plain text: one seed per line, decimal or `0x`-hex, `#`
//! comments and blank lines ignored. They are committed to the repo.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Environment variable overriding the corpus directory. An empty value
/// disables corpus persistence and replay entirely.
pub const CORPUS_DIR_ENV: &str = "SNO_CHECK_CORPUS_DIR";

/// The directory picked up by default when it already exists.
pub const DEFAULT_CORPUS_DIR: &str = "tests/corpora";

/// The active corpus directory, if any (see module docs for the rules).
pub fn corpus_dir() -> Option<PathBuf> {
    if let Ok(dir) = std::env::var(CORPUS_DIR_ENV) {
        let dir = dir.trim();
        if dir.is_empty() {
            return None;
        }
        return Some(PathBuf::from(dir));
    }
    let default = Path::new(DEFAULT_CORPUS_DIR);
    default.is_dir().then(|| default.to_path_buf())
}

/// The corpus file for a property, inside `dir`. Uses the test's short
/// name (the last `::` segment) with non-identifier characters mapped
/// to `_`, so module paths never become directory traversal.
pub fn corpus_file_for(dir: &Path, test_name: &str) -> PathBuf {
    let short = test_name.rsplit("::").next().unwrap_or(test_name);
    let safe: String = short
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    dir.join(format!("{safe}.seeds"))
}

/// Parse corpus file contents: one seed per line (decimal or `0x` hex),
/// `#` comments and blank lines skipped, malformed lines ignored.
pub fn parse_seeds(contents: &str) -> Vec<u64> {
    contents
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .filter_map(|l| {
            l.strip_prefix("0x")
                .map_or_else(|| l.parse().ok(), |hex| u64::from_str_radix(hex, 16).ok())
        })
        .collect()
}

/// Seeds recorded for `test_name`, in file order (empty when no corpus
/// directory or file exists).
pub fn load_seeds(test_name: &str) -> Vec<u64> {
    let Some(dir) = corpus_dir() else {
        return Vec::new();
    };
    let path = corpus_file_for(&dir, test_name);
    fs::read_to_string(path).map_or_else(|_| Vec::new(), |s| parse_seeds(&s))
}

/// Append `seed` to `test_name`'s corpus file (deduplicated; the file
/// and directory are created on demand). Returns the file written, or
/// `None` when persistence is disabled or the write failed — recording
/// is best-effort and must never mask the original test failure.
pub fn record_seed(test_name: &str, seed: u64) -> Option<PathBuf> {
    let dir = corpus_dir()?;
    let path = corpus_file_for(&dir, test_name);
    let existing = fs::read_to_string(&path).unwrap_or_default();
    if parse_seeds(&existing).contains(&seed) {
        return Some(path);
    }
    fs::create_dir_all(&dir).ok()?;
    let mut file = fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .ok()?;
    if !existing.is_empty() && !existing.ends_with('\n') {
        writeln!(file).ok()?;
    }
    writeln!(file, "{seed}").ok()?;
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_decimal_hex_comments_and_junk() {
        let seeds = parse_seeds("# header\n42\n0x2a\n\n  7 \nnot-a-seed\n");
        assert_eq!(seeds, vec![42, 42, 7]);
    }

    #[test]
    fn file_names_are_sanitized_short_names() {
        let dir = Path::new("/tmp/corpora");
        assert_eq!(
            corpus_file_for(dir, "suite::mod::prop_holds"),
            dir.join("prop_holds.seeds")
        );
        assert_eq!(
            corpus_file_for(dir, "weird/../name"),
            dir.join("weird____name.seeds")
        );
    }

    #[test]
    fn record_and_load_roundtrip_with_dedupe() {
        // Serialise access to the process-wide env var across tests.
        let dir = std::env::temp_dir().join(format!("sno-corpus-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();

        let name = "corpus_roundtrip_prop";
        let path = corpus_file_for(&dir, name);
        fs::write(&path, "# seeded by hand\n11\n").unwrap();

        // Drive the low-level pieces directly against `dir` rather than
        // mutating the environment (unsafe in multi-threaded tests).
        let existing = fs::read_to_string(&path).unwrap();
        assert_eq!(parse_seeds(&existing), vec![11]);

        let mut file = fs::OpenOptions::new().append(true).open(&path).unwrap();
        writeln!(file, "29").unwrap();
        assert_eq!(
            parse_seeds(&fs::read_to_string(&path).unwrap()),
            vec![11, 29]
        );

        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_corpus_is_empty_not_an_error() {
        assert!(load_seeds("no_such_property_anywhere").is_empty() || corpus_dir().is_some());
    }
}
