//! A minimal Criterion-replacement bench harness.
//!
//! `bench_group("name")` → [`BenchGroup::bench_function`] with a
//! [`Bencher`] closure → warm-up + calibration + N timed samples →
//! median/p10/p90 report on stdout and a [`BenchReport`] that serialises
//! to JSON for `BENCH_*.json` perf-trajectory files. No wall-clock
//! randomness beyond the timings themselves; no dependencies.
//!
//! ```
//! use sno_check::bench::{bench_group, BenchReport};
//! let mut group = bench_group("demo");
//! group.sample_size(5).warm_up_ms(1.0).sample_budget_ms(1.0);
//! group.bench_function("sum", |b| {
//!     b.iter(|| (0..1000u64).sum::<u64>())
//! });
//! let mut report = BenchReport::new();
//! report.push(group.finish());
//! assert!(report.to_json().contains("\"sum\""));
//! ```

use std::time::Instant;

/// Timed samples for one benchmark.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark name within its group.
    pub name: String,
    /// Iterations averaged inside each sample.
    pub iters_per_sample: u64,
    /// Per-iteration mean time of each sample, milliseconds.
    pub sample_ms: Vec<f64>,
}

/// Linear-interpolation percentile of an unsorted sample set.
fn percentile(samples: &[f64], q: f64) -> f64 {
    if samples.is_empty() {
        return f64::NAN;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let pos = q * (sorted.len() - 1) as f64;
    let (lo, hi) = (pos.floor() as usize, pos.ceil() as usize);
    sorted[lo] + (sorted[hi] - sorted[lo]) * (pos - lo as f64)
}

impl BenchResult {
    /// Median per-iteration time, ms.
    pub fn median_ms(&self) -> f64 {
        percentile(&self.sample_ms, 0.5)
    }

    /// 10th-percentile per-iteration time, ms.
    pub fn p10_ms(&self) -> f64 {
        percentile(&self.sample_ms, 0.1)
    }

    /// 90th-percentile per-iteration time, ms.
    pub fn p90_ms(&self) -> f64 {
        percentile(&self.sample_ms, 0.9)
    }

    /// Mean per-iteration time, ms.
    pub fn mean_ms(&self) -> f64 {
        self.sample_ms.iter().sum::<f64>() / self.sample_ms.len() as f64
    }
}

/// Hands the routine to the timing loop inside
/// [`BenchGroup::bench_function`].
pub struct Bencher {
    warmup_ms: f64,
    sample_budget_ms: f64,
    sample_size: usize,
    iters_per_sample: u64,
    sample_ms: Vec<f64>,
}

impl Bencher {
    /// Time `routine`: warm up (which also calibrates how many
    /// iterations fit the per-sample budget), then record the configured
    /// number of samples.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // sno-lint: allow(wall-clock): the bench harness measures wall time by design
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        loop {
            std::hint::black_box(routine());
            warm_iters += 1;
            if warm_start.elapsed().as_secs_f64() * 1e3 >= self.warmup_ms {
                break;
            }
        }
        let per_iter_ms = warm_start.elapsed().as_secs_f64() * 1e3 / warm_iters as f64;
        let iters = ((self.sample_budget_ms / per_iter_ms).ceil() as u64).max(1);
        self.iters_per_sample = iters;
        self.sample_ms.clear();
        for _ in 0..self.sample_size {
            // sno-lint: allow(wall-clock): timed sample measurement is the harness's purpose
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            self.sample_ms
                .push(start.elapsed().as_secs_f64() * 1e3 / iters as f64);
        }
    }
}

/// A named collection of benchmarks sharing sampling settings.
pub struct BenchGroup {
    name: String,
    sample_size: usize,
    warmup_ms: f64,
    sample_budget_ms: f64,
    results: Vec<BenchResult>,
}

/// Start a benchmark group.
pub fn bench_group(name: impl Into<String>) -> BenchGroup {
    BenchGroup {
        name: name.into(),
        sample_size: 20,
        warmup_ms: 300.0,
        sample_budget_ms: 100.0,
        results: Vec::new(),
    }
}

impl BenchGroup {
    /// Samples per benchmark (default 20).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size(0)");
        self.sample_size = n;
        self
    }

    /// Warm-up duration, ms (default 300).
    pub fn warm_up_ms(&mut self, ms: f64) -> &mut Self {
        self.warmup_ms = ms;
        self
    }

    /// Target wall time per sample, ms (default 100); slow routines
    /// still run at least one iteration per sample.
    pub fn sample_budget_ms(&mut self, ms: f64) -> &mut Self {
        self.sample_budget_ms = ms;
        self
    }

    /// Run one benchmark and print its summary line.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        mut routine: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut bencher = Bencher {
            warmup_ms: self.warmup_ms,
            sample_budget_ms: self.sample_budget_ms,
            sample_size: self.sample_size,
            iters_per_sample: 0,
            sample_ms: Vec::new(),
        };
        routine(&mut bencher);
        assert!(
            !bencher.sample_ms.is_empty(),
            "bench_function closure never called Bencher::iter"
        );
        let result = BenchResult {
            name: name.into(),
            iters_per_sample: bencher.iters_per_sample,
            sample_ms: bencher.sample_ms,
        };
        println!(
            "{}/{:<32} median {:>10.4} ms   p10 {:>10.4}   p90 {:>10.4}   ({} samples x {} iters)",
            self.name,
            result.name,
            result.median_ms(),
            result.p10_ms(),
            result.p90_ms(),
            result.sample_ms.len(),
            result.iters_per_sample,
        );
        self.results.push(result);
        self
    }

    /// Close the group, yielding its results for a [`BenchReport`].
    pub fn finish(&mut self) -> GroupReport {
        GroupReport {
            name: self.name.clone(),
            results: std::mem::take(&mut self.results),
        }
    }
}

/// The finished results of one group.
#[derive(Debug, Clone)]
pub struct GroupReport {
    /// Group name.
    pub name: String,
    /// One entry per `bench_function` call.
    pub results: Vec<BenchResult>,
}

/// A full bench run, serialisable to the `BENCH_*.json` trajectory
/// format.
#[derive(Debug, Clone, Default)]
pub struct BenchReport {
    /// All finished groups.
    pub groups: Vec<GroupReport>,
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

impl BenchReport {
    /// An empty report.
    pub fn new() -> BenchReport {
        BenchReport::default()
    }

    /// Append a finished group.
    pub fn push(&mut self, group: GroupReport) {
        self.groups.push(group);
    }

    /// Serialise to pretty-printed JSON (hand-rolled; no dependencies).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"schema\": \"sno-bench-v1\",\n  \"groups\": [\n");
        for (gi, group) in self.groups.iter().enumerate() {
            out.push_str(&format!(
                "    {{\n      \"name\": \"{}\",\n      \"benches\": [\n",
                json_escape(&group.name)
            ));
            for (bi, b) in group.results.iter().enumerate() {
                out.push_str(&format!(
                    "        {{\"name\": \"{}\", \"median_ms\": {:.6}, \"p10_ms\": {:.6}, \
                     \"p90_ms\": {:.6}, \"mean_ms\": {:.6}, \"samples\": {}, \
                     \"iters_per_sample\": {}}}{}\n",
                    json_escape(&b.name),
                    b.median_ms(),
                    b.p10_ms(),
                    b.p90_ms(),
                    b.mean_ms(),
                    b.sample_ms.len(),
                    b.iters_per_sample,
                    if bi + 1 < group.results.len() {
                        ","
                    } else {
                        ""
                    },
                ));
            }
            out.push_str(&format!(
                "      ]\n    }}{}\n",
                if gi + 1 < self.groups.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Write the JSON report to `path`.
    pub fn write_json(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Parse the summary lines back out of a `sno-bench-v1` JSON file
    /// (the inverse of [`BenchReport::to_json`], up to the per-sample
    /// timings the summary format does not carry). This is what lets
    /// `repro --bench-diff` compare two committed `BENCH_*.json`
    /// trajectory files without a JSON dependency.
    pub fn parse_json(text: &str) -> Result<Vec<ParsedBench>, String> {
        let root = json::parse(text)?;
        if root.get("schema").and_then(json::Value::as_str) != Some("sno-bench-v1") {
            return Err("not a sno-bench-v1 report".into());
        }
        let mut out = Vec::new();
        let groups = root
            .get("groups")
            .and_then(json::Value::as_array)
            .ok_or("missing \"groups\" array")?;
        for group in groups {
            let gname = group
                .get("name")
                .and_then(json::Value::as_str)
                .ok_or("group without a name")?;
            let benches = group
                .get("benches")
                .and_then(json::Value::as_array)
                .ok_or("group without a \"benches\" array")?;
            for bench in benches {
                let name = bench
                    .get("name")
                    .and_then(json::Value::as_str)
                    .ok_or("bench without a name")?;
                let median_ms = bench
                    .get("median_ms")
                    .and_then(json::Value::as_f64)
                    .ok_or("bench without a median_ms")?;
                out.push(ParsedBench {
                    group: gname.to_string(),
                    name: name.to_string(),
                    median_ms,
                });
            }
        }
        Ok(out)
    }
}

/// One benchmark's summary parsed back from a trajectory file by
/// [`BenchReport::parse_json`].
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedBench {
    /// Group name.
    pub group: String,
    /// Benchmark name within the group.
    pub name: String,
    /// Median per-iteration time, ms.
    pub median_ms: f64,
}

/// The no-dependency JSON reader behind [`BenchReport::parse_json`]:
/// the standard value grammar, minus the string escapes `to_json`
/// never emits (`\uXXXX` and control shorthands).
mod json {
    /// A parsed JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        Null,
        Bool(bool),
        Num(f64),
        Str(String),
        Arr(Vec<Value>),
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        /// Object field lookup.
        pub fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }

        /// The string payload, if this is a string.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        /// The numeric payload, if this is a number.
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Num(n) => Some(*n),
                _ => None,
            }
        }

        /// The elements, if this is an array.
        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(items) => Some(items),
                _ => None,
            }
        }
    }

    /// Parse one JSON document; trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing input at byte {pos}"));
        }
        Ok(value)
    }

    fn skip_ws(bytes: &[u8], pos: &mut usize) {
        while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
            *pos += 1;
        }
    }

    fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
        if bytes.get(*pos) == Some(&b) {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, *pos))
        }
    }

    fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b'{') => parse_obj(bytes, pos),
            Some(b'[') => parse_arr(bytes, pos),
            Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
            Some(b't') => parse_lit(bytes, pos, "true", Value::Bool(true)),
            Some(b'f') => parse_lit(bytes, pos, "false", Value::Bool(false)),
            Some(b'n') => parse_lit(bytes, pos, "null", Value::Null),
            Some(_) => parse_num(bytes, pos),
            None => Err("unexpected end of input".into()),
        }
    }

    fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, String> {
        if bytes[*pos..].starts_with(lit.as_bytes()) {
            *pos += lit.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", *pos))
        }
    }

    fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        let start = *pos;
        while *pos < bytes.len()
            && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        {
            *pos += 1;
        }
        std::str::from_utf8(&bytes[start..*pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Value::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
        expect(bytes, pos, b'"')?;
        let mut out = Vec::new();
        loop {
            match bytes.get(*pos) {
                Some(b'"') => {
                    *pos += 1;
                    return String::from_utf8(out).map_err(|e| e.to_string());
                }
                Some(b'\\') => {
                    match bytes.get(*pos + 1) {
                        Some(b'"') => out.push(b'"'),
                        Some(b'\\') => out.push(b'\\'),
                        Some(b'/') => out.push(b'/'),
                        other => return Err(format!("unsupported escape {other:?}")),
                    }
                    *pos += 2;
                }
                Some(&b) => {
                    out.push(b);
                    *pos += 1;
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(bytes, pos, b'[')?;
        let mut items = Vec::new();
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(parse_value(bytes, pos)?);
            skip_ws(bytes, pos);
            match bytes.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
            }
        }
    }

    fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(bytes, pos, b'{')?;
        let mut fields = Vec::new();
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            skip_ws(bytes, pos);
            let key = parse_string(bytes, pos)?;
            skip_ws(bytes, pos);
            expect(bytes, pos, b':')?;
            fields.push((key, parse_value(bytes, pos)?));
            skip_ws(bytes, pos);
            match bytes.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
            }
        }
    }
}
