//! Input strategies: how to generate a random value of a type and how to
//! shrink a failing one toward a simpler counterexample.
//!
//! This is the `proptest`-compatible subset the workspace's property
//! tests actually use: numeric range strategies (`-1e6..1e6f64`,
//! `0.0..=1.0f64`, `1..200usize`, `0u32..72`), `any::<T>()` for small
//! primitives, tuples of strategies, and `prop::collection::vec`. All
//! generation is driven by the workspace's deterministic
//! [`sno_types::Rng`], so a single 64-bit seed reproduces a case
//! bit-for-bit.
//!
//! Shrinking is greedy and *strictly simplifying*: every candidate a
//! strategy proposes is closer to zero (scalars) or shorter (vectors)
//! than the current value, so the shrink loop terminates without a
//! global step budget doing the real work.

use sno_types::Rng;
use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A generator-and-shrinker for values of one type.
pub trait Strategy {
    /// The values this strategy produces.
    type Value: Clone + Debug;

    /// Draw one value from `rng`.
    fn generate(&self, rng: &mut Rng) -> Self::Value;

    /// Propose strictly simpler variants of a failing `value`, simplest
    /// first. An empty vector means the value cannot shrink further.
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let _ = value;
        Vec::new()
    }

    /// Transform generated values with `f`, as in proptest's
    /// `prop_map`. The produced [`Mapped`] value keeps the source value
    /// it came from, so shrinking simplifies the *source* and re-maps —
    /// a mapped strategy shrinks exactly as well as its input does.
    fn prop_map<T, F>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
        T: Clone + Debug,
        F: Fn(Self::Value) -> T,
    {
        MapStrategy { source: self, f }
    }

    /// Build a *dependent* strategy from each generated value, as in
    /// proptest's `prop_flat_map` — e.g. draw a length, then a vector
    /// of exactly that length. The produced [`FlatMapped`] value keeps
    /// both the source value and the RNG seed the inner draw used, so
    /// shrinking can simplify the inner value under a fixed source *or*
    /// simplify the source and re-draw the inner value from the same
    /// seed. Both directions strictly simplify (lexicographically on
    /// `(source, value)`), so the shrink loop still terminates.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMapStrategy<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMapStrategy { source: self, f }
    }

    /// Keep only values satisfying `pred`, as in proptest's
    /// `prop_filter`. `reason` names the constraint in the panic raised
    /// when the predicate rejects too many consecutive draws. Shrink
    /// candidates are filtered through the same predicate, so shrinking
    /// never leaves the accepted region.
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> FilterStrategy<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        FilterStrategy {
            source: self,
            reason,
            pred,
        }
    }
}

/// A value produced by [`Strategy::prop_map`]: the mapped output plus
/// the source value it was computed from (so shrinking can simplify the
/// source and re-map). Dereferences to the mapped output.
#[derive(Clone)]
pub struct Mapped<V, T> {
    /// The source value the map was applied to.
    pub source: V,
    /// The mapped output.
    pub value: T,
}

impl<V, T> std::ops::Deref for Mapped<V, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

impl<V: Debug, T: Debug> Debug for Mapped<V, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?} (from {:?})", self.value, self.source)
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct MapStrategy<S, F> {
    source: S,
    f: F,
}

impl<S, T, F> Strategy for MapStrategy<S, F>
where
    S: Strategy,
    T: Clone + Debug,
    F: Fn(S::Value) -> T,
{
    type Value = Mapped<S::Value, T>;

    fn generate(&self, rng: &mut Rng) -> Self::Value {
        let source = self.source.generate(rng);
        let value = (self.f)(source.clone());
        Mapped { source, value }
    }

    fn shrink(&self, v: &Self::Value) -> Vec<Self::Value> {
        self.source
            .shrink(&v.source)
            .into_iter()
            .map(|source| {
                let value = (self.f)(source.clone());
                Mapped { source, value }
            })
            .collect()
    }
}

/// A value produced by [`Strategy::prop_flat_map`]: the source value,
/// the seed the dependent draw consumed, and the dependent output.
/// Dereferences to the output.
#[derive(Clone)]
pub struct FlatMapped<V, T> {
    /// The source value the inner strategy was built from.
    pub source: V,
    /// Seed of the substream the inner generation drew from; kept so
    /// source-side shrinks can re-draw a comparable inner value.
    seed: u64,
    /// The dependent output.
    pub value: T,
}

impl<V, T> std::ops::Deref for FlatMapped<V, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

impl<V: Debug, T: Debug> Debug for FlatMapped<V, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?} (via {:?})", self.value, self.source)
    }
}

/// The strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMapStrategy<S, F> {
    source: S,
    f: F,
}

impl<S, F> FlatMapStrategy<S, F> {
    /// The dedicated substream for dependent draws: a pure function of
    /// the recorded seed, so a shrunk source re-draws reproducibly.
    fn inner_rng(seed: u64) -> Rng {
        Rng::new(seed).substream_named("flat-map")
    }
}

impl<S, S2, F> Strategy for FlatMapStrategy<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = FlatMapped<S::Value, S2::Value>;

    fn generate(&self, rng: &mut Rng) -> Self::Value {
        let source = self.source.generate(rng);
        let seed = rng.next_u64();
        let value = (self.f)(source.clone()).generate(&mut Self::inner_rng(seed));
        FlatMapped {
            source,
            seed,
            value,
        }
    }

    fn shrink(&self, v: &Self::Value) -> Vec<Self::Value> {
        let mut out = Vec::new();
        // Inner shrinks first: the source (and thus the dependent
        // strategy) stays fixed, only the output simplifies.
        let inner = (self.f)(v.source.clone());
        for value in inner.shrink(&v.value) {
            out.push(FlatMapped {
                source: v.source.clone(),
                seed: v.seed,
                value,
            });
        }
        // Then source shrinks: rebuild the dependent strategy and
        // re-draw from the recorded seed, so the inner value stays
        // comparable to the failing one (same randomness, simpler
        // constraint).
        for source in self.source.shrink(&v.source) {
            let value = (self.f)(source.clone()).generate(&mut Self::inner_rng(v.seed));
            out.push(FlatMapped {
                source,
                seed: v.seed,
                value,
            });
        }
        out
    }
}

/// How many consecutive rejected draws [`Strategy::prop_filter`]
/// tolerates before concluding the predicate is unsatisfiable.
pub const FILTER_RETRY_BUDGET: usize = 1_000;

/// The strategy returned by [`Strategy::prop_filter`].
pub struct FilterStrategy<S, F> {
    source: S,
    reason: &'static str,
    pred: F,
}

impl<S, F> Strategy for FilterStrategy<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut Rng) -> S::Value {
        for _ in 0..FILTER_RETRY_BUDGET {
            let v = self.source.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter({:?}): predicate rejected {FILTER_RETRY_BUDGET} consecutive draws",
            self.reason
        );
    }

    fn shrink(&self, v: &S::Value) -> Vec<S::Value> {
        // A rejected candidate is not a dead end: its own shrinks are
        // still simpler than `v`, and one of them may satisfy the
        // predicate (e.g. shrinking an even value whose midpoint is
        // odd). Walk the candidate tree breadth-first under a budget;
        // every node is strictly simpler than its parent, so this
        // terminates and stays strictly simplifying.
        let mut out = Vec::new();
        let mut queue: std::collections::VecDeque<S::Value> = self.source.shrink(v).into();
        let mut budget = 64;
        while let Some(c) = queue.pop_front() {
            budget -= 1;
            if budget == 0 {
                break;
            }
            if (self.pred)(&c) {
                out.push(c);
            } else {
                queue.extend(self.source.shrink(&c));
            }
        }
        out
    }
}

/// A value produced by a [`OneOf`] strategy: the branch that produced
/// it, the seed its draw consumed, and the value itself. Dereferences
/// to the value.
#[derive(Clone)]
pub struct Selected<V> {
    /// Index of the branch that produced the value.
    pub branch: usize,
    /// Seed of the substream the branch drew from; kept so shrinking
    /// can re-draw earlier (simpler) branches comparably.
    seed: u64,
    /// The produced value.
    pub value: V,
}

impl<V> std::ops::Deref for Selected<V> {
    type Target = V;

    fn deref(&self) -> &V {
        &self.value
    }
}

impl<V: Debug> Debug for Selected<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?} (branch {})", self.value, self.branch)
    }
}

/// Boxing adapter so heterogeneous strategies with a common value type
/// can share a `Vec` (what [`oneof`]/[`weighted`] and `prop_oneof!`
/// take).
pub fn boxed<S>(strategy: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(strategy)
}

impl<V: Clone + Debug> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;

    fn generate(&self, rng: &mut Rng) -> V {
        (**self).generate(rng)
    }

    fn shrink(&self, v: &V) -> Vec<V> {
        (**self).shrink(v)
    }
}

/// The enum strategy returned by [`oneof`], [`weighted`] and the
/// `prop_oneof!` macro: pick one branch (optionally with bias), then
/// draw from it.
pub struct OneOf<V> {
    branches: Vec<(f64, Box<dyn Strategy<Value = V>>)>,
}

impl<V: Clone + Debug> OneOf<V> {
    /// The dedicated substream branch `branch` draws from: a pure
    /// function of the recorded seed, so shrinking re-draws earlier
    /// branches reproducibly.
    fn branch_rng(seed: u64, branch: usize) -> Rng {
        Rng::new(seed)
            .substream_named("one-of")
            .substream(branch as u64)
    }

    /// Draw branch `branch` from the substream of `seed`.
    fn draw(&self, branch: usize, seed: u64) -> Selected<V> {
        let value = self.branches[branch]
            .1
            .generate(&mut Self::branch_rng(seed, branch));
        Selected {
            branch,
            seed,
            value,
        }
    }
}

/// `prop_oneof![a, b, c]`: draw from one of several strategies with
/// equal probability. Order the branches simplest-first — shrinking
/// moves toward *earlier* branches (as in proptest).
pub fn oneof<V: Clone + Debug>(branches: Vec<Box<dyn Strategy<Value = V>>>) -> OneOf<V> {
    weighted(branches.into_iter().map(|b| (1.0, b)).collect())
}

/// `prop_oneof![3 => a, 1 => b]`: draw from one of several strategies
/// with probability proportional to its weight. Weights must be
/// positive and finite.
pub fn weighted<V: Clone + Debug>(branches: Vec<(f64, Box<dyn Strategy<Value = V>>)>) -> OneOf<V> {
    assert!(!branches.is_empty(), "one-of strategy needs a branch");
    for (w, _) in &branches {
        assert!(w.is_finite() && *w > 0.0, "branch weight {w} must be > 0");
    }
    OneOf { branches }
}

impl<V: Clone + Debug> Strategy for OneOf<V> {
    type Value = Selected<V>;

    fn generate(&self, rng: &mut Rng) -> Selected<V> {
        let weights: Vec<f64> = self.branches.iter().map(|&(w, _)| w).collect();
        let branch = rng.choose_weighted(&weights);
        let seed = rng.next_u64();
        self.draw(branch, seed)
    }

    fn shrink(&self, v: &Selected<V>) -> Vec<Selected<V>> {
        let mut out = Vec::new();
        // Earlier branches are simpler by convention: re-draw each from
        // the recorded seed, earliest first. A branch switch strictly
        // decreases the branch index and a within-branch candidate
        // strictly simplifies under the branch's own ordering, so the
        // greedy shrink loop still terminates (lexicographic descent on
        // `(branch, value)`).
        for branch in 0..v.branch {
            out.push(self.draw(branch, v.seed));
        }
        for value in self.branches[v.branch].1.shrink(&v.value) {
            out.push(Selected {
                branch: v.branch,
                seed: v.seed,
                value,
            });
        }
        out
    }
}

/// Shrink candidates for a float: toward the in-range point nearest
/// zero, by bisection, and by truncation. Every candidate has strictly
/// smaller magnitude than `v`, so shrinking cannot cycle.
fn float_candidates(v: f64, contains: impl Fn(f64) -> bool, toward: f64) -> Vec<f64> {
    let mut out = Vec::new();
    for c in [toward, (toward + v) / 2.0, v.trunc()] {
        if c.is_finite() && contains(c) && c.abs() < v.abs() && c != v && !out.contains(&c) {
            out.push(c);
        }
    }
    out
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut Rng) -> f64 {
        rng.range_f64(self.start, self.end)
    }

    fn shrink(&self, v: &f64) -> Vec<f64> {
        let toward = if self.start > 0.0 {
            self.start
        } else if self.end <= 0.0 {
            // Negative-only range: bisect toward the (excluded) upper
            // bound, the in-range direction of smaller magnitude.
            (self.start + self.end) / 2.0
        } else {
            0.0
        };
        float_candidates(*v, |x| x >= self.start && x < self.end, toward)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut Rng) -> f64 {
        // Hit the exact endpoints now and then: inclusive bounds exist
        // to be tested.
        let (lo, hi) = (*self.start(), *self.end());
        match rng.below(64) {
            0 => lo,
            1 => hi,
            _ => rng.range_f64(lo, hi),
        }
    }

    fn shrink(&self, v: &f64) -> Vec<f64> {
        let (lo, hi) = (*self.start(), *self.end());
        let toward = if lo > 0.0 {
            lo
        } else if hi < 0.0 {
            hi
        } else {
            0.0
        };
        float_candidates(*v, |x| x >= lo && x <= hi, toward)
    }
}

/// Unsigned integer ranges (`Range` half-open, `RangeInclusive` closed).
macro_rules! uint_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }

            fn shrink(&self, v: &$t) -> Vec<$t> {
                uint_candidates(*v as u64, self.start as u64)
                    .into_iter()
                    .map(|c| c as $t)
                    .collect()
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut Rng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + rng.below((hi - lo) as u64 + 1) as $t
            }

            fn shrink(&self, v: &$t) -> Vec<$t> {
                uint_candidates(*v as u64, *self.start() as u64)
                    .into_iter()
                    .map(|c| c as $t)
                    .collect()
            }
        }
    )+};
}

uint_range_strategy!(u8, u16, u32, u64, usize);

/// Candidates strictly between `lo` and `v`: the floor, the midpoint,
/// and the predecessor. All strictly smaller than `v`.
fn uint_candidates(v: u64, lo: u64) -> Vec<u64> {
    let mut out = Vec::new();
    for c in [lo, lo + (v - lo) / 2, v.saturating_sub(1)] {
        if c >= lo && c < v && !out.contains(&c) {
            out.push(c);
        }
    }
    out
}

/// Types with a canonical "draw anything" strategy, used via
/// [`any::<T>()`](any).
pub trait Arbitrary: Clone + Debug {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut Rng) -> Self;

    /// Strictly simpler variants, simplest first.
    fn shrink_value(&self) -> Vec<Self> {
        Vec::new()
    }
}

macro_rules! uint_arbitrary {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut Rng) -> $t {
                rng.next_u64() as $t
            }

            fn shrink_value(&self) -> Vec<$t> {
                uint_candidates(*self as u64, 0)
                    .into_iter()
                    .map(|c| c as $t)
                    .collect()
            }
        }
    )+};
}

uint_arbitrary!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut Rng) -> bool {
        rng.chance(0.5)
    }

    fn shrink_value(&self) -> Vec<bool> {
        if *self {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

/// The strategy returned by [`any`].
pub struct AnyStrategy<T>(PhantomData<T>);

/// Draw any value of `T` — `any::<u8>()`, `any::<u64>()`,
/// `any::<bool>()`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut Rng) -> T {
        T::arbitrary(rng)
    }

    fn shrink(&self, v: &T) -> Vec<T> {
        v.shrink_value()
    }
}

/// Tuples of strategies generate tuples of values; shrinking simplifies
/// one component at a time.
macro_rules! tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut Rng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for c in self.$idx.shrink(&value.$idx) {
                        let mut w = value.clone();
                        w.$idx = c;
                        out.push(w);
                    }
                )+
                out
            }
        }
    };
}

tuple_strategy!(A.0);
tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);

/// Strategy for vectors with lengths drawn from a half-open range.
pub struct VecStrategy<S> {
    elem: S,
    len: Range<usize>,
}

/// `prop::collection::vec(elem, 1..200)`: vectors of `elem`-generated
/// values whose length lies in `len`.
pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "empty length range");
    VecStrategy { elem, len }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut Rng) -> Vec<S::Value> {
        let n = self.len.start + rng.below((self.len.end - self.len.start) as u64) as usize;
        (0..n).map(|_| self.elem.generate(rng)).collect()
    }

    fn shrink(&self, v: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
        let mut out: Vec<Vec<S::Value>> = Vec::new();
        let min = self.len.start;
        // Structural shrinks first: shorter vectors are much simpler.
        if v.len() > min {
            let half = (v.len() / 2).max(min);
            if half < v.len() {
                out.push(v[..half].to_vec());
            }
            out.push(v[..v.len() - 1].to_vec());
            out.push(v[1..].to_vec());
        }
        // Then element-wise shrinks, a couple of candidates per slot.
        for i in 0..v.len() {
            for c in self.elem.shrink(&v[i]).into_iter().take(2) {
                let mut w = v.clone();
                w[i] = c;
                out.push(w);
            }
        }
        out
    }
}

/// Strategy for strings drawn from a fixed alphabet, with lengths in a
/// half-open range.
pub struct StringStrategy {
    alphabet: Vec<char>,
    len: Range<usize>,
}

/// `prop::string::string("abc", 0..20)`: strings whose chars are drawn
/// uniformly from `alphabet` and whose char-count lies in `len`.
/// Shrinking shortens the string first (halve, drop last, drop first),
/// then simplifies characters toward the *front* of the alphabet — put
/// the simplest character first (e.g. `"a..."` or `" ..."`) to get
/// readable minimal counterexamples.
pub fn string(alphabet: &str, len: Range<usize>) -> StringStrategy {
    assert!(len.start < len.end, "empty length range");
    let alphabet: Vec<char> = alphabet.chars().collect();
    assert!(!alphabet.is_empty(), "empty alphabet");
    StringStrategy { alphabet, len }
}

impl Strategy for StringStrategy {
    type Value = String;

    fn generate(&self, rng: &mut Rng) -> String {
        let n = self.len.start + rng.below((self.len.end - self.len.start) as u64) as usize;
        (0..n)
            .map(|_| self.alphabet[rng.below(self.alphabet.len() as u64) as usize])
            .collect()
    }

    fn shrink(&self, v: &String) -> Vec<String> {
        let chars: Vec<char> = v.chars().collect();
        let mut out: Vec<String> = Vec::new();
        let min = self.len.start;
        // Structural shrinks first, mirroring VecStrategy.
        if chars.len() > min {
            let half = (chars.len() / 2).max(min);
            if half < chars.len() {
                out.push(chars[..half].iter().collect());
            }
            out.push(chars[..chars.len() - 1].iter().collect());
            out.push(chars[1..].iter().collect());
        }
        // Then per-character shrinks: move each char toward the front
        // of the alphabet, a couple of candidates per slot.
        for i in 0..chars.len() {
            let Some(idx) = self.alphabet.iter().position(|&c| c == chars[i]) else {
                continue;
            };
            for cand in uint_candidates(idx as u64, 0).into_iter().take(2) {
                let mut w = chars.clone();
                w[i] = self.alphabet[cand as usize];
                out.push(w.iter().collect());
            }
        }
        out
    }
}
