//! The `proptest!`-compatible macro surface.
//!
//! `proptest! { #![proptest_config(...)] #[test] fn prop(x in strat, ..) { .. } }`
//! expands each property into a plain `#[test]` that builds a tuple
//! strategy from the argument list and hands body + strategy to
//! [`crate::runner::run_property`]. `prop_assert!`/`prop_assert_eq!`/
//! `prop_assert_ne!` early-return a [`crate::PropError`] so the runner
//! can shrink the failing input instead of unwinding immediately.

/// Define property tests over generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal muncher for [`proptest!`]: one test function per step.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr;) => {};
    (
        config = $config:expr;
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let strategy = ($($strategy,)+);
            $crate::runner::run_property(
                concat!(module_path!(), "::", stringify!($name)),
                &config,
                &strategy,
                |($($pat,)+)| -> ::core::result::Result<(), $crate::PropError> {
                    $body
                    ::core::result::Result::Ok(())
                },
            );
        }
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
}

/// Build a [`OneOf`](crate::strategy::OneOf) enum strategy, as in
/// proptest: `prop_oneof![a, b]` picks a branch uniformly,
/// `prop_oneof![3 => a, 1 => b]` picks with bias. Branches must share a
/// value type; order them simplest-first, because shrinking moves
/// toward earlier branches.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::weighted(::std::vec![
            $(($weight as f64, $crate::strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::oneof(::std::vec![
            $($crate::strategy::boxed($strategy)),+
        ])
    };
}

/// Assert a condition inside a property; on failure the current input is
/// reported (and shrunk) instead of panicking outright.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::PropError::new(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::PropError::new(format!(
                "assertion failed: {} ({})",
                stringify!($cond),
                format!($($fmt)+)
            )));
        }
    };
}

/// Assert equality inside a property (see [`prop_assert!`]).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::core::result::Result::Err($crate::PropError::new(format!(
                "assertion failed: {} == {}\n    left: {:?}\n   right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::core::result::Result::Err($crate::PropError::new(format!(
                "assertion failed: {} == {} ({})\n    left: {:?}\n   right: {:?}",
                stringify!($left),
                stringify!($right),
                format!($($fmt)+),
                left,
                right
            )));
        }
    }};
}

/// Assert inequality inside a property (see [`prop_assert!`]).
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return ::core::result::Result::Err($crate::PropError::new(format!(
                "assertion failed: {} != {}\n    both: {:?}",
                stringify!($left),
                stringify!($right),
                left
            )));
        }
    }};
}
