//! In-tree correctness tooling: a `proptest`-compatible property-testing
//! subset and a Criterion-replacement bench harness, with zero external
//! dependencies.
//!
//! The sandboxed build environment cannot reach crates.io, so the
//! workspace's hermetic-build invariant (see README, "Hermetic builds")
//! forbids registry dependencies even for dev tooling. This crate keeps
//! the QuickCheck-style invariant checking that protects the paper
//! pipeline (KDE validation, prefix filters, quantile/ECDF machinery)
//! and the perf trajectory benches, re-implemented on the workspace's
//! deterministic [`sno_types::Rng`]:
//!
//! * [`proptest!`] — the macro subset the existing property suites use:
//!   `#[test]` blocks, range strategies, `prop::collection::vec`,
//!   `any::<T>()`, `prop::string::string`, the
//!   `prop_map`/`prop_filter`/`prop_flat_map` adapters, `prop_oneof!`
//!   enum strategies (optionally weighted, shrinking toward earlier
//!   branches), `prop_assert!`/`prop_assert_eq!`, and
//!   `ProptestConfig::with_cases(n)`. Failures shrink greedily and print
//!   a seed; `SNO_CHECK_SEED=<seed>` replays the identical
//!   counterexample, and [`corpus`] persists failing seeds to committed
//!   `tests/corpora/*.seeds` files that replay before fresh generation.
//! * [`bench`] — `bench_group`/`bench_function` with warm-up,
//!   calibration, N timed samples, a median/p10/p90 report, and JSON
//!   output for `BENCH_*.json` trajectory files.
//!
//! ```
//! use sno_check::prelude::*;
//!
//! proptest! {
//!     #![proptest_config(ProptestConfig::with_cases(64))]
//!
//!     // In a test file this would also carry `#[test]`.
//!     fn abs_is_nonnegative(x in -1e6..1e6f64) {
//!         prop_assert!(x.abs() >= 0.0);
//!     }
//! }
//! abs_is_nonnegative();
//! ```

pub mod bench;
pub mod corpus;
mod macros;
pub mod runner;
pub mod strategy;

pub use corpus::{CORPUS_DIR_ENV, DEFAULT_CORPUS_DIR};
pub use runner::{run_property, PropError, ProptestConfig, SEED_ENV};
pub use strategy::{
    any, boxed, oneof, weighted, Arbitrary, FlatMapped, Mapped, OneOf, Selected, Strategy,
};

/// `proptest`-style module layout, so `prop::collection::vec(..)` reads
/// the same as upstream.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        pub use crate::strategy::vec;
    }

    /// String strategies.
    pub mod string {
        pub use crate::strategy::string;
    }
}

/// Everything a property-test file needs: `use sno_check::prelude::*;`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::runner::{PropError, ProptestConfig};
    pub use crate::strategy::{
        any, boxed, oneof, weighted, Arbitrary, FlatMapped, Mapped, OneOf, Selected, Strategy,
    };
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}
