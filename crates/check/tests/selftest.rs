//! The harness tests itself: strategies respect their bounds, failures
//! shrink, and a printed seed replays the identical counterexample.

use sno_check::bench::{bench_group, BenchReport};
use sno_check::prelude::*;
use sno_check::runner;
use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Half-open float ranges never produce the excluded end.
    #[test]
    fn float_range_bounds(x in -1e6..1e6f64) {
        prop_assert!((-1e6..1e6).contains(&x));
    }

    /// Inclusive float ranges stay inside both bounds.
    #[test]
    fn float_inclusive_bounds(q in 0.0..=1.0f64) {
        prop_assert!((0.0..=1.0).contains(&q));
    }

    /// Integer range strategies respect their bounds.
    #[test]
    fn int_range_bounds(
        a in 1..200usize,
        b in 0u32..72,
        c in 1..10_000u64,
        d in 5..=9u64,
    ) {
        prop_assert!((1..200).contains(&a));
        prop_assert!(b < 72);
        prop_assert!((1..10_000).contains(&c));
        prop_assert!((5..=9).contains(&d));
    }

    /// Vectors respect the length range and element strategy, including
    /// tuple elements.
    #[test]
    fn vec_bounds(
        data in prop::collection::vec(-50.0..50.0f64, 1..40),
        pairs in prop::collection::vec((0u32..10, 0.0..1.0f64), 2..20),
    ) {
        prop_assert!((1..40).contains(&data.len()));
        prop_assert!(data.iter().all(|x| (-50.0..50.0).contains(x)));
        prop_assert!((2..20).contains(&pairs.len()));
        prop_assert!(pairs.iter().all(|&(k, v)| k < 10 && (0.0..1.0).contains(&v)));
    }

    /// `any` covers the primitive surface the workspace uses.
    #[test]
    fn any_primitives(x in any::<u8>(), y in any::<u64>(), z in any::<bool>()) {
        prop_assert!(u64::from(x) <= 255);
        prop_assert!(y.wrapping_add(1).wrapping_sub(1) == y);
        prop_assert!(u8::from(z) <= 1);
    }

    /// `prop_map` applies the closure to every draw.
    #[test]
    fn prop_map_applies(even in (0..500u32).prop_map(|n| n * 2)) {
        prop_assert!(*even % 2 == 0);
        prop_assert!(*even < 1_000);
        prop_assert_eq!(even.source * 2, even.value);
    }

    /// `prop_filter` only yields accepted values.
    #[test]
    fn prop_filter_respects_predicate(
        odd in (0..1_000u32).prop_filter("odd", |n| n % 2 == 1),
    ) {
        prop_assert!(odd % 2 == 1);
    }

    /// The adapters compose with each other and with collections.
    #[test]
    fn adapters_compose(
        xs in prop::collection::vec(
            (1..100u32).prop_filter("not a multiple of 10", |n| n % 10 != 0),
            1..20,
        ),
        scaled in (0.0..10.0f64).prop_map(|x| x * 100.0),
    ) {
        prop_assert!(xs.iter().all(|n| n % 10 != 0));
        prop_assert!((0.0..1_000.0).contains(&*scaled));
    }

    /// `prop_flat_map` builds the inner strategy from the drawn source:
    /// a length draw really constrains the dependent vector.
    #[test]
    fn flat_map_dependent_generation(
        sized in (1..20usize).prop_flat_map(|n| prop::collection::vec(0..100u32, n..n + 1)),
    ) {
        prop_assert_eq!(sized.value.len(), sized.source);
        prop_assert!(sized.iter().all(|&x| x < 100));
    }

    /// `prop::string::string` respects its alphabet and length range.
    #[test]
    fn string_within_alphabet_and_len(
        s in prop::string::string("abc", 2..10),
    ) {
        prop_assert!((2..10).contains(&s.chars().count()));
        prop_assert!(s.chars().all(|c| "abc".contains(c)));
    }

    /// `prop_oneof!` draws from exactly the branch it reports, and mixes
    /// heterogeneous strategies sharing a value type.
    #[test]
    fn oneof_value_within_its_branch(
        v in prop_oneof![0..10u32, 100..=109u32, (1_000..1_010u32).prop_filter("even", |n| n % 2 == 0)],
    ) {
        let ok = match v.branch {
            0 => (0..10).contains(&*v),
            1 => (100..=109).contains(&*v),
            2 => (1_000..1_010).contains(&*v) && *v % 2 == 0,
            _ => false,
        };
        prop_assert!(ok, "branch {} produced {}", v.branch, *v);
    }
}

/// A property that fails exactly when `x >= 100`, recording the last
/// failing input the runner evaluated (the greedy-shrink minimum).
fn run_failing_property(last_failing: &Cell<f64>) {
    runner::run_property(
        concat!(module_path!(), "::shrink_target"),
        &ProptestConfig::with_cases(64),
        &(0.0..1e6f64,),
        |(x,)| {
            if x >= 100.0 {
                last_failing.set(x);
                return Err(PropError::new("x >= 100"));
            }
            Ok(())
        },
    );
}

fn failure_message(result: std::thread::Result<()>) -> String {
    let payload = result.expect_err("property must fail");
    payload
        .downcast_ref::<String>()
        .cloned()
        .expect("runner panics with a String report")
}

#[test]
fn failing_property_shrinks_and_reports_seed() {
    let last = Cell::new(f64::NAN);
    let msg = failure_message(catch_unwind(AssertUnwindSafe(|| {
        run_failing_property(&last)
    })));
    // Greedy shrinking walks to (just above) the failure boundary.
    assert!(
        (100.0..200.0).contains(&last.get()),
        "shrunk to {} instead of ~100",
        last.get()
    );
    assert!(msg.contains("SNO_CHECK_SEED="), "no seed in report:\n{msg}");
    assert!(msg.contains("counterexample"), "no counterexample:\n{msg}");

    // The whole run is deterministic: a second run produces the
    // identical report.
    let last2 = Cell::new(f64::NAN);
    let msg2 = failure_message(catch_unwind(AssertUnwindSafe(|| {
        run_failing_property(&last2)
    })));
    assert_eq!(msg, msg2);
    assert_eq!(last.get(), last2.get());
}

/// Replay helper for `seed_replays_identical_counterexample`; ignored in
/// normal runs because it fails by design.
#[test]
#[ignore = "replay helper, spawned by seed_replays_identical_counterexample"]
fn replay_shrink_target() {
    run_failing_property(&Cell::new(f64::NAN));
}

#[test]
fn seed_replays_identical_counterexample() {
    let last = Cell::new(f64::NAN);
    let msg = failure_message(catch_unwind(AssertUnwindSafe(|| {
        run_failing_property(&last)
    })));
    let seed: u64 = msg
        .split("SNO_CHECK_SEED=")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|s| s.parse().ok())
        .expect("seed parses from the report");
    let counterexample = msg
        .lines()
        .find(|l| l.contains("counterexample"))
        .expect("counterexample line")
        .trim()
        .to_string();

    // Re-run just the failing property in a child process with the seed
    // pinned; it must fail again with the very same counterexample line.
    let out = std::process::Command::new(std::env::current_exe().expect("test binary path"))
        .args([
            "replay_shrink_target",
            "--ignored",
            "--exact",
            "--nocapture",
        ])
        .env(sno_check::SEED_ENV, seed.to_string())
        .output()
        .expect("spawn replay");
    assert!(!out.status.success(), "replay unexpectedly passed");
    let all = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        all.contains(&counterexample),
        "replay did not reproduce {counterexample:?}:\n{all}"
    );
}

#[test]
fn vec_shrinking_reaches_small_witness() {
    // Fails whenever any element is >= 50; the minimal witness is a
    // single-element vector just past the boundary.
    let smallest_len = Cell::new(usize::MAX);
    let _ = catch_unwind(AssertUnwindSafe(|| {
        runner::run_property(
            concat!(module_path!(), "::vec_shrink_target"),
            &ProptestConfig::with_cases(64),
            &(prop::collection::vec(0.0..1e3f64, 1..60),),
            |(v,)| {
                if v.iter().any(|&x| x >= 50.0) {
                    smallest_len.set(smallest_len.get().min(v.len()));
                    return Err(PropError::new("element >= 50"));
                }
                Ok(())
            },
        );
    }));
    assert!(
        smallest_len.get() <= 2,
        "vector only shrank to length {}",
        smallest_len.get()
    );
}

#[test]
fn mapped_shrinking_simplifies_the_source() {
    // Fails when the mapped value reaches 100; the minimal witness is
    // source 50 → value 100, reachable only by shrinking the source and
    // re-mapping.
    let last = Cell::new(u32::MAX);
    let _ = catch_unwind(AssertUnwindSafe(|| {
        runner::run_property(
            concat!(module_path!(), "::map_shrink_target"),
            &ProptestConfig::with_cases(64),
            &((0..10_000u32).prop_map(|n| n * 2),),
            |(v,)| {
                if *v >= 100 {
                    last.set(last.get().min(*v));
                    return Err(PropError::new("mapped >= 100"));
                }
                Ok(())
            },
        );
    }));
    assert!(
        (100..=104).contains(&last.get()),
        "shrunk to {} instead of ~100",
        last.get()
    );
}

#[test]
fn filtered_shrinking_stays_in_region() {
    // The filter admits only even values; the property fails at 10 and
    // above. No candidate the runner evaluates may be odd, and greedy
    // shrinking must still reach the boundary.
    let saw_odd = Cell::new(false);
    let last = Cell::new(u32::MAX);
    let _ = catch_unwind(AssertUnwindSafe(|| {
        runner::run_property(
            concat!(module_path!(), "::filter_shrink_target"),
            &ProptestConfig::with_cases(64),
            &((0..10_000u32).prop_filter("even", |n| n % 2 == 0),),
            |(v,)| {
                if v % 2 == 1 {
                    saw_odd.set(true);
                }
                if v >= 10 {
                    last.set(last.get().min(v));
                    return Err(PropError::new("even >= 10"));
                }
                Ok(())
            },
        );
    }));
    assert!(!saw_odd.get(), "filter let an odd value through");
    assert!(
        (10..=12).contains(&last.get()),
        "shrunk to {} instead of ~10",
        last.get()
    );
}

#[test]
fn flat_map_shrinking_preserves_dependency() {
    // Fails whenever the dependent vector holds an element >= 50. Every
    // candidate the runner evaluates — including source-side shrinks,
    // which re-draw the vector — must keep the length == source
    // invariant, and greedy shrinking must still reach a short witness.
    let violated = Cell::new(false);
    let smallest_len = Cell::new(usize::MAX);
    let _ = catch_unwind(AssertUnwindSafe(|| {
        runner::run_property(
            concat!(module_path!(), "::flat_map_shrink_target"),
            &ProptestConfig::with_cases(64),
            &((1..40usize).prop_flat_map(|n| prop::collection::vec(0.0..1e3f64, n..n + 1)),),
            |(sized,)| {
                if sized.value.len() != sized.source {
                    violated.set(true);
                }
                if sized.iter().any(|&x| x >= 50.0) {
                    smallest_len.set(smallest_len.get().min(sized.value.len()));
                    return Err(PropError::new("element >= 50"));
                }
                Ok(())
            },
        );
    }));
    assert!(!violated.get(), "a shrink candidate broke len == source");
    assert!(
        smallest_len.get() <= 3,
        "flat-mapped vector only shrank to length {}",
        smallest_len.get()
    );
}

#[test]
fn string_shrinking_reaches_short_witness() {
    // Fails whenever the string contains 'c'; structural shrinks drop
    // characters and per-char shrinks move toward 'a', so the minimal
    // failing witness is a lone 'c' (or close to it).
    let shortest = Cell::new(usize::MAX);
    let _ = catch_unwind(AssertUnwindSafe(|| {
        runner::run_property(
            concat!(module_path!(), "::string_shrink_target"),
            &ProptestConfig::with_cases(64),
            &(prop::string::string("abc", 1..30),),
            |(s,)| {
                if s.contains('c') {
                    shortest.set(shortest.get().min(s.chars().count()));
                    return Err(PropError::new("contains 'c'"));
                }
                Ok(())
            },
        );
    }));
    assert!(
        shortest.get() <= 2,
        "string only shrank to length {}",
        shortest.get()
    );
}

#[test]
fn oneof_covers_every_branch_and_weights_bias_the_draw() {
    use sno_types::Rng;
    let uniform = prop_oneof![0..10u32, 100..110u32];
    let mut rng = Rng::new(0xC0FF_EE01);
    let mut counts = [0usize; 2];
    for _ in 0..2_000 {
        counts[uniform.generate(&mut rng).branch] += 1;
    }
    assert!(
        counts.iter().all(|&c| c > 700),
        "uniform draw skewed: {counts:?}"
    );

    let biased = prop_oneof![9 => 0..10u32, 1 => 100..110u32];
    let mut counts = [0usize; 2];
    for _ in 0..2_000 {
        counts[biased.generate(&mut rng).branch] += 1;
    }
    assert!(
        counts[0] > 1_600 && counts[1] > 50,
        "9:1 bias not honoured: {counts:?}"
    );
}

#[test]
fn oneof_generation_is_deterministic_per_seed() {
    use sno_types::Rng;
    let strat = prop_oneof![2 => 0..1_000u32, 1 => 5_000..6_000u32];
    let a: Vec<(usize, u32)> = {
        let mut rng = Rng::new(42);
        (0..64)
            .map(|_| strat.generate(&mut rng))
            .map(|v| (v.branch, v.value))
            .collect()
    };
    let b: Vec<(usize, u32)> = {
        let mut rng = Rng::new(42);
        (0..64)
            .map(|_| strat.generate(&mut rng))
            .map(|v| (v.branch, v.value))
            .collect()
    };
    assert_eq!(a, b);
    assert!(
        a.iter().any(|&(br, _)| br == 1),
        "second branch never drawn"
    );
}

#[test]
fn oneof_shrinks_toward_the_earliest_branch() {
    // Every draw fails, so greedy shrinking must walk branch switches
    // (toward branch 0) and within-branch candidates (toward the range
    // floor) all the way down to branch 0's simplest value.
    let last_branch = Cell::new(usize::MAX);
    let last_value = Cell::new(u32::MAX);
    let _ = catch_unwind(AssertUnwindSafe(|| {
        runner::run_property(
            concat!(module_path!(), "::oneof_shrink_target"),
            &ProptestConfig::with_cases(16),
            &(prop_oneof![10..20u32, 1_000..1_010u32, 500_000..500_010u32],),
            |(v,)| {
                last_branch.set(v.branch);
                last_value.set(v.value);
                Err(PropError::new("always fails"))
            },
        );
    }));
    assert_eq!(last_branch.get(), 0, "did not shrink to the first branch");
    assert_eq!(last_value.get(), 10, "did not shrink to the branch floor");
}

#[test]
fn oneof_shrink_stays_within_branches() {
    // A failure confined to the *later* branch must shrink within it:
    // branch-0 re-draws pass, so the counterexample stays in branch 1
    // and slides to that branch's failure boundary.
    let last = Cell::new(u32::MAX);
    let saw_invalid = Cell::new(false);
    let _ = catch_unwind(AssertUnwindSafe(|| {
        runner::run_property(
            concat!(module_path!(), "::oneof_branch_confined_target"),
            &ProptestConfig::with_cases(64),
            &(prop_oneof![0..10u32, 100..10_000u32],),
            |(v,)| {
                let in_branch = match v.branch {
                    0 => (0..10).contains(&v.value),
                    1 => (100..10_000).contains(&v.value),
                    _ => false,
                };
                if !in_branch {
                    saw_invalid.set(true);
                }
                if v.branch == 1 && v.value >= 200 {
                    last.set(last.get().min(v.value));
                    return Err(PropError::new("branch 1 >= 200"));
                }
                Ok(())
            },
        );
    }));
    assert!(
        !saw_invalid.get(),
        "a shrink candidate left its branch's range"
    );
    assert!(
        (200..=210).contains(&last.get()),
        "shrunk to {} instead of ~200",
        last.get()
    );
}

#[test]
fn bench_harness_reports_and_serialises() {
    let mut group = bench_group("selftest");
    group.sample_size(5).warm_up_ms(1.0).sample_budget_ms(0.5);
    group.bench_function("sum_1k", |b| b.iter(|| (0..1_000u64).sum::<u64>()));
    group.bench_function("sum_4k", |b| b.iter(|| (0..4_000u64).sum::<u64>()));
    let finished = group.finish();
    assert_eq!(finished.results.len(), 2);
    for r in &finished.results {
        assert_eq!(r.sample_ms.len(), 5);
        assert!(r.median_ms() > 0.0 && r.median_ms().is_finite());
        assert!(r.p10_ms() <= r.median_ms() && r.median_ms() <= r.p90_ms());
        assert!(r.iters_per_sample >= 1);
    }
    let mut report = BenchReport::new();
    report.push(finished);
    let json = report.to_json();
    for needle in ["sno-bench-v1", "selftest", "sum_1k", "sum_4k", "median_ms"] {
        assert!(json.contains(needle), "missing {needle} in:\n{json}");
    }

    // The serialised report parses back with the same names and
    // medians (to the 6 decimal places the format records).
    let parsed = BenchReport::parse_json(&json).expect("round trip");
    assert_eq!(parsed.len(), 2);
    for (p, r) in parsed.iter().zip(&report.groups[0].results) {
        assert_eq!(p.group, "selftest");
        assert_eq!(p.name, r.name);
        assert!((p.median_ms - r.median_ms()).abs() < 1e-6, "{p:?}");
    }
    assert!(BenchReport::parse_json("{}").is_err());
    assert!(BenchReport::parse_json("not json").is_err());
}
