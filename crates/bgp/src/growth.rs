//! Snapshot-over-snapshot peering evolution (Figure 13).

use crate::graph::peering_view;
use sno_types::records::BgpSnapshot;
use sno_types::{Asn, Date, Operator};

/// One operator's peering state in one snapshot.
#[derive(Debug, Clone)]
pub struct GrowthPoint {
    /// Snapshot date.
    pub date: Date,
    /// Peer count (node degree).
    pub degree: usize,
    /// Distinct peer countries.
    pub countries: usize,
    /// The peer ASNs (for set-difference narratives like Marlink's
    /// tier-1 swap).
    pub peers: Vec<Asn>,
}

/// Track one operator across snapshots, chronologically.
pub fn growth_track(snapshots: &[BgpSnapshot], op: Operator) -> Vec<GrowthPoint> {
    let mut points: Vec<GrowthPoint> = snapshots
        .iter()
        .map(|snap| {
            let view = peering_view(snap, op);
            let mut peers: Vec<Asn> = view.peers.iter().map(|p| p.asn).collect();
            peers.sort();
            GrowthPoint {
                date: snap.date,
                degree: view.degree,
                countries: view.peer_countries().len(),
                peers,
            }
        })
        .collect();
    points.sort_by_key(|p| (p.date.year, p.date.month, p.date.day));
    points
}

/// Peers gained and lost between two growth points: `(gained, lost)`.
pub fn peer_churn(before: &GrowthPoint, after: &GrowthPoint) -> (Vec<Asn>, Vec<Asn>) {
    let gained = after
        .peers
        .iter()
        .copied()
        .filter(|p| !before.peers.contains(p))
        .collect();
    let lost = before
        .peers
        .iter()
        .copied()
        .filter(|p| !after.peers.contains(p))
        .collect();
    (gained, lost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sno_synth::bgp::snapshots;

    #[test]
    fn starlink_explodes_hughes_stagnates() {
        let snaps = snapshots();
        let starlink = growth_track(&snaps, Operator::Starlink);
        assert!(starlink[0].degree < starlink[1].degree);
        assert!(starlink[1].degree < starlink[2].degree);
        assert!(starlink[2].countries >= 2 * starlink[0].countries);

        let hughes = growth_track(&snaps, Operator::Hughes);
        assert_eq!(hughes[0].peers, hughes[2].peers, "HughesNet unchanged");
    }

    #[test]
    fn viasat_expands_beyond_the_us() {
        let snaps = snapshots();
        let viasat = growth_track(&snaps, Operator::Viasat);
        assert!(viasat[2].countries > viasat[0].countries);
    }

    #[test]
    fn marlink_swapped_level3_for_cogent() {
        let snaps = snapshots();
        let marlink = growth_track(&snaps, Operator::Marlink);
        let (gained, lost) = peer_churn(&marlink[0], &marlink[2]);
        assert!(gained.contains(&Asn(174)), "gained {gained:?}");
        assert!(lost.contains(&Asn(3549)), "lost {lost:?}");
    }

    #[test]
    fn points_are_chronological() {
        let snaps = snapshots();
        let track = growth_track(&snaps, Operator::Ses);
        assert_eq!(track.len(), 3);
        assert!(track[0].date < track[1].date && track[1].date < track[2].date);
    }
}
