//! Country-level coverage inference and its validation.
//!
//! Inference: the countries where an SNO's ground infrastructure lives
//! are approximated by the registry jurisdictions of its BGP peers.
//! Validation (for the operators with public PoP maps): compare against
//! ground truth and report country recall plus the fraction of
//! city-level PoPs that fall inside discovered countries. The method
//! systematically *underestimates* because continent-wide carriers
//! (Arelion, Sparkle, EdgeUno) register in one country but peer in many
//! — exactly the caveat the paper documents.

use crate::graph::peering_view;
use sno_geo::STARLINK_POPS;
use sno_types::records::{BgpSnapshot, CountryCode};
use sno_types::Operator;

/// One site of ground-truth infrastructure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroundTruthSite {
    pub city: &'static str,
    pub country: &'static str,
}

/// Publicly documented PoP/teleport sites per operator (the paper finds
/// maps for Starlink, SES and Hellas-Sat only).
pub fn ground_truth_sites(op: Operator) -> Vec<GroundTruthSite> {
    match op {
        Operator::Starlink => STARLINK_POPS
            .iter()
            .map(|p| GroundTruthSite {
                city: p.city,
                country: p.country_str,
            })
            .collect(),
        Operator::Ses => vec![
            GroundTruthSite {
                city: "Betzdorf",
                country: "LU",
            },
            GroundTruthSite {
                city: "Gibraltar-ish Madrid",
                country: "ES",
            },
            GroundTruthSite {
                city: "Ashburn",
                country: "US",
            },
            GroundTruthSite {
                city: "Hawaii",
                country: "US",
            },
            GroundTruthSite {
                city: "Singapore",
                country: "SG",
            },
            GroundTruthSite {
                city: "Perth",
                country: "AU",
            },
            GroundTruthSite {
                city: "Dubai",
                country: "AE",
            },
            GroundTruthSite {
                city: "São Paulo",
                country: "BR",
            },
            GroundTruthSite {
                city: "Athens",
                country: "GR",
            },
        ],
        Operator::HellasSat => vec![
            GroundTruthSite {
                city: "Athens",
                country: "GR",
            },
            GroundTruthSite {
                city: "Nicosia",
                country: "CY",
            },
        ],
        _ => Vec::new(),
    }
}

/// The outcome of validating inferred coverage against ground truth.
#[derive(Debug, Clone)]
pub struct CoverageReport {
    pub operator: Operator,
    /// Countries inferred from peer jurisdictions.
    pub inferred: Vec<CountryCode>,
    /// Ground-truth countries.
    pub truth_countries: Vec<CountryCode>,
    /// Ground-truth countries that inference discovered.
    pub discovered: Vec<CountryCode>,
    /// Fraction of city-level sites inside discovered countries.
    pub city_coverage: f64,
}

impl CoverageReport {
    /// Country recall: discovered / truth.
    pub fn country_recall(&self) -> f64 {
        if self.truth_countries.is_empty() {
            return 0.0;
        }
        self.discovered.len() as f64 / self.truth_countries.len() as f64
    }
}

/// Infer and validate coverage for `op` against `snapshot`.
pub fn coverage_report(snapshot: &BgpSnapshot, op: Operator) -> CoverageReport {
    let view = peering_view(snapshot, op);
    let inferred = view.peer_countries();
    let sites = ground_truth_sites(op);
    let mut truth_countries: Vec<CountryCode> =
        sites.iter().map(|s| CountryCode::new(s.country)).collect();
    truth_countries.sort();
    truth_countries.dedup();
    let discovered: Vec<CountryCode> = truth_countries
        .iter()
        .copied()
        .filter(|c| inferred.contains(c))
        .collect();
    let covered_sites = sites
        .iter()
        .filter(|s| discovered.contains(&CountryCode::new(s.country)))
        .count();
    let city_coverage = if sites.is_empty() {
        0.0
    } else {
        covered_sites as f64 / sites.len() as f64
    };
    CoverageReport {
        operator: op,
        inferred,
        truth_countries,
        discovered,
        city_coverage,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sno_synth::bgp::snapshot_for;

    #[test]
    fn starlink_coverage_is_a_useful_underestimate() {
        // Paper: 10 of 30 countries, 74 % of city-level PoPs. Our ground
        // truth holds 11 countries over 18 sites; the peer-country
        // heuristic must find a majority of sites while missing several
        // countries (served via continent-wide carriers).
        let report = coverage_report(&snapshot_for(2023), Operator::Starlink);
        assert!(report.truth_countries.len() >= 10);
        let recall = report.country_recall();
        assert!(
            (0.3..0.9).contains(&recall),
            "country recall {recall} ({:?} of {:?})",
            report.discovered,
            report.truth_countries
        );
        assert!(
            (0.55..0.95).contains(&report.city_coverage),
            "city coverage {}",
            report.city_coverage
        );
        // The misses are real: some PoP countries have no same-country
        // peer.
        assert!(report.discovered.len() < report.truth_countries.len());
    }

    #[test]
    fn hellas_sat_fully_discovered() {
        // Paper: 2 of 2 countries, 100 % of sites.
        let report = coverage_report(&snapshot_for(2023), Operator::HellasSat);
        assert_eq!(report.truth_countries.len(), 2);
        assert_eq!(report.country_recall(), 1.0, "{report:?}");
        assert_eq!(report.city_coverage, 1.0);
    }

    #[test]
    fn ses_partially_discovered() {
        // Paper: 7 of 22 countries, 57 % of city sites — a middling
        // recall with real misses.
        let report = coverage_report(&snapshot_for(2023), Operator::Ses);
        let recall = report.country_recall();
        assert!((0.2..0.8).contains(&recall), "recall {recall}");
        assert!(report.city_coverage < 1.0);
        assert!(report.city_coverage > 0.2, "{}", report.city_coverage);
    }

    #[test]
    fn operators_without_public_maps_report_empty_truth() {
        let report = coverage_report(&snapshot_for(2023), Operator::Kvh);
        assert!(report.truth_countries.is_empty());
        assert_eq!(report.country_recall(), 0.0);
        assert!(!report.inferred.is_empty(), "inference still works");
    }

    #[test]
    fn coverage_grows_with_the_network() {
        let r21 = coverage_report(&snapshot_for(2021), Operator::Starlink);
        let r23 = coverage_report(&snapshot_for(2023), Operator::Starlink);
        assert!(r23.discovered.len() > r21.discovered.len());
        assert!(r23.city_coverage >= r21.city_coverage);
    }
}
