//! BGP-peering-based characterization of SNO ground infrastructure
//! (Section 4's "geographic connectivity characterization", Figures 5,
//! 12, 13 and the coverage validation).
//!
//! The paper's intuition: no SNO is a tier-1, so each must peer upstream
//! to reach the internet; where it peers approximates where its ground
//! infrastructure lives. This crate implements:
//!
//! * [`graph`] — the per-SNO peering view: peers with their registry
//!   country and node degree (the "size" proxy of Figure 5), upstream
//!   detection by relative degree, and tier-1 reachability;
//! * [`coverage`] — country-level coverage inference from peer
//!   jurisdictions, validated against PoP ground truth exactly as the
//!   paper does for Starlink / SES / Hellas-Sat (10 of 30, 7 of 22,
//!   2 of 2 countries; 74 % / 57 % / 100 % of city-level PoPs);
//! * [`growth`] — snapshot-over-snapshot evolution (Figure 13):
//!   Starlink's explosive growth, HughesNet's stagnation, Marlink's
//!   tier-1 swap.

pub mod coverage;
pub mod graph;
pub mod growth;

pub use coverage::{coverage_report, CoverageReport};
pub use graph::{peering_view, PeerView, PeeringView};
pub use growth::{growth_track, GrowthPoint};
