//! Per-SNO peering views over a route-views snapshot.

use sno_types::records::{BgpSnapshot, CountryCode};
use sno_types::{Asn, Operator};

/// The tier-1 club the paper checks SNOs against.
pub const TIER1_ASNS: &[u32] = &[3356, 1299, 174, 6762, 2914, 3257, 3549, 7018, 3320];

/// One peer of an SNO, annotated for the Figure 5 visualization.
#[derive(Debug, Clone, PartialEq)]
pub struct PeerView {
    /// The peer AS.
    pub asn: Asn,
    /// Registered organisation name.
    pub name: String,
    /// Registry (RIR) country of the AS.
    pub country: CountryCode,
    /// Node degree in the snapshot — the "size" of the bubble.
    pub degree: usize,
    /// Heuristic: a peer much bigger than the SNO is its upstream
    /// provider (Gao-style inference by relative size).
    pub likely_upstream: bool,
    /// Member of the tier-1 club?
    pub tier1: bool,
}

/// An SNO's peering neighbourhood in one snapshot.
#[derive(Debug, Clone)]
pub struct PeeringView {
    /// The operator.
    pub operator: Operator,
    /// Its customer-facing ASN.
    pub asn: Asn,
    /// The operator's own degree.
    pub degree: usize,
    /// Its peers.
    pub peers: Vec<PeerView>,
}

impl PeeringView {
    /// Does the operator reach any tier-1 directly?
    pub fn has_tier1(&self) -> bool {
        self.peers.iter().any(|p| p.tier1)
    }

    /// Distinct countries across the peers.
    pub fn peer_countries(&self) -> Vec<CountryCode> {
        let mut countries: Vec<_> = self.peers.iter().map(|p| p.country).collect();
        countries.sort();
        countries.dedup();
        countries
    }
}

/// Build the peering view of `op` in `snapshot`. The operator's primary
/// (first Table-3) ASN is used, matching how route-views sees its
/// customer announcements.
pub fn peering_view(snapshot: &BgpSnapshot, op: Operator) -> PeeringView {
    let asn = Asn(sno_registry::profile::profile_of(op).asns[0]);
    let own_degree = snapshot.degree(asn);
    let peers = snapshot
        .peers(asn)
        .into_iter()
        .map(|peer| {
            let degree = snapshot.degree(peer);
            let info = snapshot.info_for(peer);
            PeerView {
                asn: peer,
                name: info
                    .map(|i| i.name.clone())
                    .unwrap_or_else(|| peer.to_string()),
                country: info.map(|i| i.country).unwrap_or(CountryCode::new("ZZ")),
                degree,
                likely_upstream: degree > own_degree.saturating_mul(2),
                tier1: TIER1_ASNS.contains(&peer.0),
            }
        })
        .collect();
    PeeringView {
        operator: op,
        asn,
        degree: own_degree,
        peers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sno_synth::bgp::snapshot_for;

    #[test]
    fn starlink_peers_are_global_and_upstream_heavy() {
        let snap = snapshot_for(2023);
        let view = peering_view(&snap, Operator::Starlink);
        assert!(view.degree >= 15, "degree {}", view.degree);
        assert!(view.has_tier1());
        // Level3 is much bigger than Starlink → flagged upstream.
        let level3 = view.peers.iter().find(|p| p.asn == Asn(3356)).unwrap();
        assert!(level3.likely_upstream);
        assert!(view.peer_countries().len() >= 8);
    }

    #[test]
    fn oneweb_sees_only_us_providers() {
        let snap = snapshot_for(2023);
        let view = peering_view(&snap, Operator::Oneweb);
        assert_eq!(view.peers.len(), 2);
        assert_eq!(view.peer_countries(), vec![CountryCode::new("US")]);
    }

    #[test]
    fn kacific_dwarfs_its_distributors() {
        let snap = snapshot_for(2023);
        let view = peering_view(&snap, Operator::Kacific);
        let small = view
            .peers
            .iter()
            .filter(|p| !p.likely_upstream && p.degree < view.degree)
            .count();
        assert!(small >= 4, "small distributors: {small}");
    }

    #[test]
    fn hellas_and_ultisat_have_no_tier1() {
        let snap = snapshot_for(2023);
        assert!(!peering_view(&snap, Operator::HellasSat).has_tier1());
        assert!(!peering_view(&snap, Operator::Ultisat).has_tier1());
        assert!(peering_view(&snap, Operator::Viasat).has_tier1());
    }

    #[test]
    fn ses_is_well_connected() {
        let snap = snapshot_for(2023);
        let view = peering_view(&snap, Operator::Ses);
        let tier1s = view.peers.iter().filter(|p| p.tier1).count();
        assert!(tier1s >= 3, "SES tier-1 count {tier1s}");
    }
}
