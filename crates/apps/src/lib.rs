//! Section 6: application performance as real subscribers experience it.
//!
//! The paper recruits 20 Prolific testers (Starlink, HughesNet, Viasat)
//! and drives a browser addon through four weekly measurement runs. This
//! crate models the addon's experiments on top of the transport and
//! path substrates:
//!
//! * [`testers`] — the tester panel (operator, continent, access path);
//! * [`mod@speedtest`] — the fast.com run: download / upload / latency
//!   (Figure 9);
//! * [`cdn`] — jquery fetches from five CDNs plus jsDelivr's
//!   pick-the-best indirection (Figure 10a);
//! * [`web`] — the Akamai H1 vs H2 demo-page load model (Figure 10b);
//! * [`dnsperf`] — DNS lookup times under each operator's resolver
//!   placement (Figure 10c);
//! * [`video`] — a 60-second YouTube-style adaptive-bitrate session:
//!   quality, buffer health, dropped frames, stalls (Figure 11).

pub mod cdn;
pub mod dnsperf;
pub mod speedtest;
pub mod testers;
pub mod video;
pub mod web;

pub use cdn::{cdn_fetch, Cdn, CdnFetch};
pub use dnsperf::{dns_lookups, resolver_for};
pub use speedtest::{speedtest, SpeedtestRun};
pub use testers::{panel, Tester};
pub use video::{video_session, VideoSession};
pub use web::{page_load, HttpVersion, PageLoad};
