//! The fast.com speed-test run (Figure 9).
//!
//! fast.com opens several parallel connections, so unlike single-flow
//! NDT it saturates the subscriber plan; the measured download is the
//! plan rate times a parallel-transfer efficiency. Latency is the RTT to
//! the nearest fast.com server — which for Starlink is co-located with
//! the PoP (the paper notices the measured values match the RIPE
//! probe→PoP RTTs).

use crate::testers::Tester;
use sno_geo::world::Continent;
use sno_registry::assets::service_plan_of;
use sno_types::{Mbps, Millis, Operator, Rng};

/// One fast.com run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpeedtestRun {
    pub tester: sno_types::TesterId,
    pub operator: Operator,
    pub continent: Continent,
    pub download: Mbps,
    pub upload: Mbps,
    pub latency: Millis,
}

/// Run one fast.com measurement for `tester`.
pub fn speedtest(tester: &Tester, rng: &mut Rng) -> SpeedtestRun {
    let plan = service_plan_of(tester.operator);
    // Regional capacity differences: European Starlink cells are lightly
    // loaded in the study window (median 150 Mbps vs ~80 in NA/Oceania).
    let regional = match (tester.operator, tester.continent) {
        (Operator::Starlink, Continent::Europe) => 1.55,
        (Operator::Starlink, Continent::Oceania) => 0.95,
        (Operator::Starlink, _) => 0.85,
        _ => 1.0,
    };
    let efficiency = rng.range_f64(0.82, 0.98);
    let down_mid = (plan.down_lo + plan.down_hi) / 2.0;
    let download = Mbps(
        (down_mid * regional * efficiency * rng.lognormal(0.0, 0.18))
            .clamp(plan.down_lo * 0.3, plan.down_hi * 1.6),
    );
    let up_mid = (plan.up_lo + plan.up_hi) / 2.0;
    let up_regional = match (tester.operator, tester.continent) {
        (Operator::Starlink, Continent::Europe) => 1.6,
        (Operator::Starlink, Continent::Oceania) => 1.0,
        (Operator::Starlink, _) => 0.6,
        _ => 1.0,
    };
    let upload = Mbps(
        (up_mid * up_regional * efficiency * rng.lognormal(0.0, 0.15))
            .clamp(plan.up_lo * 0.4, plan.up_hi * 1.4),
    );
    // Latency: access RTT plus a short hop to the co-located server; a
    // flaky local setup adds a fat WiFi tail.
    let wifi = if tester.flaky_wifi {
        rng.range_f64(20.0, 110.0)
    } else {
        rng.range_f64(0.0, 4.0)
    };
    let latency = Millis(tester.access_rtt.0 + rng.range_f64(1.0, 6.0) + wifi);
    SpeedtestRun {
        tester: tester.id,
        operator: tester.operator,
        continent: tester.continent,
        download,
        upload,
        latency,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testers::panel;

    fn runs() -> Vec<SpeedtestRun> {
        let mut rng = Rng::new(7);
        let mut out = Vec::new();
        for t in panel(7) {
            for _ in 0..crate::testers::RUNS_PER_TESTER {
                out.push(speedtest(&t, &mut rng));
            }
        }
        out
    }

    fn median_download(op: Operator, cont: Option<Continent>) -> f64 {
        let r = runs();
        let v: Vec<f64> = r
            .iter()
            .filter(|x| x.operator == op && cont.is_none_or(|c| x.continent == c))
            .map(|x| x.download.0)
            .collect();
        sno_stats::median(&v).unwrap()
    }

    #[test]
    fn starlink_download_ladder_matches_figure9() {
        let eu = median_download(Operator::Starlink, Some(Continent::Europe));
        let na = median_download(Operator::Starlink, Some(Continent::NorthAmerica));
        assert!((110.0..200.0).contains(&eu), "EU {eu}");
        assert!((55.0..115.0).contains(&na), "NA {na}");
        assert!(eu > 1.3 * na);
    }

    #[test]
    fn geo_downloads_match_plans() {
        let viasat = median_download(Operator::Viasat, None);
        let hughes = median_download(Operator::Hughes, None);
        assert!((10.0..42.0).contains(&viasat), "viasat {viasat}");
        assert!(hughes <= 3.5, "hughes {hughes}");
        assert!(viasat > 3.0 * hughes);
    }

    #[test]
    fn hughesnet_never_reaches_advertised() {
        let plan = sno_registry::assets::service_plan_of(Operator::Hughes);
        for r in runs().iter().filter(|r| r.operator == Operator::Hughes) {
            assert!(r.download.0 < plan.advertised_down / 2.0, "{r:?}");
        }
    }

    #[test]
    fn latency_split_matches_figure9c() {
        let r = runs();
        let med = |op: Operator| {
            let v: Vec<f64> = r
                .iter()
                .filter(|x| x.operator == op)
                .map(|x| x.latency.0)
                .collect();
            sno_stats::median(&v).unwrap()
        };
        let starlink = med(Operator::Starlink);
        let viasat = med(Operator::Viasat);
        let hughes = med(Operator::Hughes);
        assert!((30.0..60.0).contains(&starlink), "starlink {starlink}");
        assert!((520.0..700.0).contains(&viasat), "viasat {viasat}");
        assert!(hughes > viasat + 60.0, "hughes {hughes} viasat {viasat}");
    }

    #[test]
    fn london_tester_shows_latency_outliers() {
        let mut rng = Rng::new(11);
        let p = panel(11);
        let flaky = p.iter().find(|t| t.flaky_wifi).unwrap();
        let clean = p
            .iter()
            .find(|t| !t.flaky_wifi && t.operator == Operator::Starlink)
            .unwrap();
        let worst_flaky = (0..30)
            .map(|_| speedtest(flaky, &mut rng).latency.0)
            .fold(0.0, f64::max);
        let worst_clean = (0..30)
            .map(|_| speedtest(clean, &mut rng).latency.0)
            .fold(0.0, f64::max);
        assert!(worst_flaky > 90.0, "flaky worst {worst_flaky}");
        assert!(worst_flaky > worst_clean + 30.0);
    }

    #[test]
    fn uploads_rank_eu_nz_na() {
        let r = runs();
        let med = |c: Continent| {
            let v: Vec<f64> = r
                .iter()
                .filter(|x| x.operator == Operator::Starlink && x.continent == c)
                .map(|x| x.upload.0)
                .collect();
            sno_stats::median(&v).unwrap()
        };
        let eu = med(Continent::Europe);
        let nz = med(Continent::Oceania);
        let na = med(Continent::NorthAmerica);
        assert!(eu > nz, "eu {eu} nz {nz}");
        assert!(nz > na, "nz {nz} na {na}");
    }
}
