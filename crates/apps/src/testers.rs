//! The recruited tester panel.
//!
//! Twenty testers: ten on Starlink (four in North America, five in
//! Europe — Italy, UK, Netherlands, Czech Republic — and one in New
//! Zealand), five on HughesNet and five on Viasat (all US). Each tester
//! has a stable access path used by every experiment.

use sno_geo::world::Continent;
use sno_geo::GeoPoint;
use sno_types::{Millis, Operator, Rng, TesterId};

/// One recruited tester.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tester {
    /// Identifier.
    pub id: TesterId,
    /// Operator subscription.
    pub operator: Operator,
    /// Continent, for Figure 9's grouping.
    pub continent: Continent,
    /// Location.
    pub location: GeoPoint,
    /// Access RTT to the operator's PoP/teleport, ms — the base every
    /// application measurement rides on.
    pub access_rtt: Millis,
    /// Whether this tester has a known-bad local setup (the London
    /// tester's flaky WiFi shows as latency outliers in Figure 9c).
    pub flaky_wifi: bool,
}

/// Build the 20-tester panel (deterministic given `seed`, which only
/// perturbs the access RTTs within realistic bounds).
pub fn panel(seed: u64) -> Vec<Tester> {
    let mut rng = Rng::new(seed).substream_named("testers");
    let mut testers = Vec::new();
    let mut id = 1u32;
    let mut push = |op: Operator,
                    cont: Continent,
                    lat: f64,
                    lon: f64,
                    rtt: f64,
                    flaky: bool,
                    testers: &mut Vec<Tester>,
                    rng: &mut Rng| {
        testers.push(Tester {
            id: TesterId(id),
            operator: op,
            continent: cont,
            location: GeoPoint::new(lat, lon),
            access_rtt: Millis(rtt * rng.lognormal(0.0, 0.08).clamp(0.85, 1.25)),
            flaky_wifi: flaky,
        });
        id += 1;
    };

    use Continent::{Europe, NorthAmerica, Oceania};
    use Operator::{Hughes, Starlink, Viasat};
    // Starlink: North America.
    push(
        Starlink,
        NorthAmerica,
        45.0,
        -93.0,
        35.0,
        false,
        &mut testers,
        &mut rng,
    );
    push(
        Starlink,
        NorthAmerica,
        39.5,
        -105.0,
        36.0,
        false,
        &mut testers,
        &mut rng,
    );
    push(
        Starlink,
        NorthAmerica,
        33.0,
        -97.0,
        37.0,
        false,
        &mut testers,
        &mut rng,
    );
    push(
        Starlink,
        NorthAmerica,
        47.5,
        -122.0,
        34.0,
        false,
        &mut testers,
        &mut rng,
    );
    // Starlink: Europe (the London tester has a bad WiFi setup).
    push(
        Starlink,
        Europe,
        45.46,
        9.19,
        38.0,
        false,
        &mut testers,
        &mut rng,
    ); // Italy
    push(
        Starlink,
        Europe,
        51.51,
        -0.13,
        40.0,
        true,
        &mut testers,
        &mut rng,
    ); // UK
    push(
        Starlink,
        Europe,
        52.37,
        4.90,
        37.0,
        false,
        &mut testers,
        &mut rng,
    ); // NL
    push(
        Starlink,
        Europe,
        50.09,
        14.42,
        39.0,
        false,
        &mut testers,
        &mut rng,
    ); // CZ
    push(
        Starlink,
        Europe,
        48.86,
        2.35,
        38.0,
        false,
        &mut testers,
        &mut rng,
    ); // FR-ish
       // Starlink: Oceania.
    push(
        Starlink,
        Oceania,
        -36.85,
        174.76,
        49.0,
        false,
        &mut testers,
        &mut rng,
    );
    // HughesNet: US.
    for (lat, lon) in [
        (38.0, -84.0),
        (35.0, -92.0),
        (44.0, -70.0),
        (31.0, -90.0),
        (41.0, -100.0),
    ] {
        push(
            Hughes,
            NorthAmerica,
            lat,
            lon,
            720.0,
            false,
            &mut testers,
            &mut rng,
        );
    }
    // Viasat: US.
    for (lat, lon) in [
        (36.0, -115.0),
        (39.0, -77.0),
        (33.0, -112.0),
        (45.0, -69.0),
        (29.0, -98.0),
    ] {
        push(
            Viasat,
            NorthAmerica,
            lat,
            lon,
            600.0,
            false,
            &mut testers,
            &mut rng,
        );
    }
    testers
}

/// The weekly runs each tester performs (the paper collected four).
pub const RUNS_PER_TESTER: u32 = 4;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_testers_in_the_papers_split() {
        let p = panel(1);
        assert_eq!(p.len(), 20);
        let count = |op| p.iter().filter(|t| t.operator == op).count();
        assert_eq!(count(Operator::Starlink), 10);
        assert_eq!(count(Operator::Hughes), 5);
        assert_eq!(count(Operator::Viasat), 5);
    }

    #[test]
    fn starlink_spans_three_continents() {
        let p = panel(1);
        let conts: std::collections::BTreeSet<_> = p
            .iter()
            .filter(|t| t.operator == Operator::Starlink)
            .map(|t| t.continent)
            .collect();
        assert_eq!(conts.len(), 3);
    }

    #[test]
    fn access_rtts_per_operator() {
        let p = panel(2);
        for t in &p {
            match t.operator {
                Operator::Starlink => {
                    assert!((28.0..65.0).contains(&t.access_rtt.0), "{t:?}")
                }
                Operator::Hughes => {
                    assert!((600.0..920.0).contains(&t.access_rtt.0), "{t:?}")
                }
                Operator::Viasat => {
                    assert!((500.0..780.0).contains(&t.access_rtt.0), "{t:?}")
                }
                _ => panic!("unexpected operator"),
            }
        }
    }

    #[test]
    fn exactly_one_flaky_tester() {
        let p = panel(3);
        assert_eq!(p.iter().filter(|t| t.flaky_wifi).count(), 1);
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(panel(9), panel(9));
        assert_ne!(panel(9)[0].access_rtt, panel(10)[0].access_rtt);
    }
}
