//! CDN object-fetch measurements (Figure 10a).
//!
//! The addon fetches `jquery.min.js` (and the unminified `jquery.js`)
//! from five CDNs plus jsDelivr. The mechanisms that shape the figure:
//!
//! * **edge placement** — Fastly peers at Starlink's PoPs, so its
//!   effective RTT is the bare access RTT; other CDNs sit a fraction of
//!   an RTT further;
//! * **resolver-based mapping** — CDNs geolocate clients by their
//!   resolver; Viasat's own resolver mis-maps subscribers to farther
//!   edges (the reason Viasat's Fastly fetch is *slower* than
//!   HughesNet's despite a lower access RTT);
//! * **PEP splicing** — GEO proxies splice the handshake but cannot
//!   remove the first-byte round trip;
//! * **slow start** — each doubling of the congestion window beyond the
//!   initial 10 segments costs one more round trip, which is why
//!   minification (87 KB → 32 KB) saves whole RTTs;
//! * **jsDelivr indirection** — picking the best CDN costs one extra
//!   round trip, which erases the benefit exactly when RTTs are long.

use crate::testers::Tester;
use sno_types::{Millis, Operator, Rng};

/// The measured CDNs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Cdn {
    Cloudflare,
    Google,
    JsDelivr,
    StackPath,
    Fastly,
}

impl Cdn {
    /// All five, in the paper's order.
    pub const ALL: [Cdn; 5] = [
        Cdn::Cloudflare,
        Cdn::Google,
        Cdn::JsDelivr,
        Cdn::StackPath,
        Cdn::Fastly,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Cdn::Cloudflare => "Cloudflare",
            Cdn::Google => "Google",
            Cdn::JsDelivr => "jsDelivr",
            Cdn::StackPath => "StackPath",
            Cdn::Fastly => "Fastly",
        }
    }

    /// Extra one-way-path cost to this CDN's edge in milliseconds, given
    /// how well the operator's resolver maps clients. Starlink hands out
    /// Cloudflare at the PoP, so mapping is near-perfect and the deltas
    /// are terrestrial-scale; the GEO operators' own resolvers mis-place
    /// subscribers, producing continent-scale detours (and Viasat's
    /// resolver even breaks Fastly's mapping).
    fn edge_extra_ms(self, op: Operator) -> f64 {
        let geo_resolver = matches!(op, Operator::Hughes | Operator::Viasat);
        let fastly_penalty = if op == Operator::Viasat { 400.0 } else { 0.0 };
        match self {
            Cdn::Fastly | Cdn::JsDelivr => fastly_penalty,
            Cdn::Google => {
                if geo_resolver {
                    430.0 + fastly_penalty * 0.3
                } else {
                    55.0
                }
            }
            Cdn::Cloudflare => {
                if geo_resolver {
                    480.0 + fastly_penalty * 0.3
                } else {
                    100.0
                }
            }
            Cdn::StackPath => {
                if geo_resolver {
                    590.0 + fastly_penalty * 0.3
                } else {
                    95.0
                }
            }
        }
    }

    /// Object sizes differ per CDN (Cloudflare compresses hardest:
    /// 28 KB minified / 71 KB regular vs 31–33 / 86–89 elsewhere).
    pub fn object_bytes(self, minified: bool) -> u64 {
        match (self, minified) {
            (Cdn::Cloudflare, true) => 28_000,
            (Cdn::Cloudflare, false) => 71_000,
            (_, true) => 32_000,
            (_, false) => 87_000,
        }
    }
}

/// One measured fetch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CdnFetch {
    pub tester: sno_types::TesterId,
    pub operator: Operator,
    pub cdn: Cdn,
    pub minified: bool,
    pub time: Millis,
}

/// Initial congestion window in bytes (10 × 1460).
const INIT_WINDOW_BYTES: f64 = 14_600.0;

/// Fetch one jquery variant from one CDN.
pub fn cdn_fetch(tester: &Tester, cdn: Cdn, minified: bool, rng: &mut Rng) -> CdnFetch {
    let uses_pep = sno_registry::profile::profile_of(tester.operator).uses_pep;
    let rtt = tester.access_rtt.0;
    let edge_extra = cdn.edge_extra_ms(tester.operator);

    let bytes = cdn.object_bytes(minified) as f64;
    // Handshake: TLS1.3 costs one RTT; a PEP splices most of it.
    let handshake = if uses_pep { 0.3 } else { 1.0 };
    // Slow-start rounds beyond the initial window (PEP hubs prefetch).
    let extra_rounds = if uses_pep {
        0.0
    } else {
        (bytes / INIT_WINDOW_BYTES).log2().floor().max(0.0)
    };
    let plan = sno_registry::assets::service_plan_of(tester.operator);
    let rate = (plan.down_lo + plan.down_hi) / 2.0;
    let serialize = bytes * 8.0 / (rate * 1e6) * 1_000.0;
    // jsDelivr's pick-the-best indirection costs one access RTT.
    let indirection = if cdn == Cdn::JsDelivr { rtt } else { 0.0 };

    let noise = rng.lognormal(0.0, 0.06).clamp(0.85, 1.3);
    let time =
        ((handshake + 1.0 + extra_rounds) * rtt + edge_extra + serialize + indirection) * noise;
    CdnFetch {
        tester: tester.id,
        operator: tester.operator,
        cdn,
        minified,
        time: Millis(time),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testers::panel;
    use sno_stats::median;

    fn median_fetch(op: Operator, cdn: Cdn, minified: bool) -> f64 {
        let mut rng = Rng::new(5);
        let p = panel(5);
        let v: Vec<f64> = p
            .iter()
            .filter(|t| t.operator == op)
            .flat_map(|t| {
                (0..4)
                    .map(|_| cdn_fetch(t, cdn, minified, &mut rng).time.0)
                    .collect::<Vec<_>>()
            })
            .collect();
        median(&v).unwrap()
    }

    #[test]
    fn fastly_wins_everywhere() {
        for op in [Operator::Starlink, Operator::Hughes, Operator::Viasat] {
            let fastly = median_fetch(op, Cdn::Fastly, true);
            for cdn in [Cdn::Cloudflare, Cdn::Google, Cdn::StackPath, Cdn::JsDelivr] {
                assert!(
                    fastly < median_fetch(op, cdn, true),
                    "{op}: Fastly must beat {}",
                    cdn.name()
                );
            }
        }
    }

    #[test]
    fn starlink_fastly_around_127ms() {
        let t = median_fetch(Operator::Starlink, Cdn::Fastly, true);
        assert!((95.0..190.0).contains(&t), "got {t}");
    }

    #[test]
    fn geo_fastly_near_one_second() {
        let hughes = median_fetch(Operator::Hughes, Cdn::Fastly, true);
        let viasat = median_fetch(Operator::Viasat, Cdn::Fastly, true);
        assert!((800.0..1_350.0).contains(&hughes), "hughes {hughes}");
        assert!((850.0..1_400.0).contains(&viasat), "viasat {viasat}");
        // Viasat is slower than HughesNet here despite the lower RTT.
        assert!(viasat > hughes, "viasat {viasat} vs hughes {hughes}");
    }

    #[test]
    fn jsdelivr_is_second_for_starlink_but_loses_on_geo() {
        // Starlink: jsDelivr ≈ Fastly + one short RTT — second place.
        let s_jsd = median_fetch(Operator::Starlink, Cdn::JsDelivr, true);
        let s_fast = median_fetch(Operator::Starlink, Cdn::Fastly, true);
        assert!((s_jsd - s_fast) < 70.0, "indirection {} ms", s_jsd - s_fast);
        for cdn in [Cdn::Cloudflare, Cdn::Google, Cdn::StackPath] {
            assert!(s_jsd < median_fetch(Operator::Starlink, cdn, true));
        }
        // HughesNet: the extra RTT makes jsDelivr slower than the other
        // direct CDNs.
        let h_jsd = median_fetch(Operator::Hughes, Cdn::JsDelivr, true);
        for cdn in [Cdn::Cloudflare, Cdn::Google, Cdn::StackPath] {
            assert!(
                h_jsd > median_fetch(Operator::Hughes, cdn, true),
                "jsDelivr should lose to {}",
                cdn.name()
            );
        }
    }

    #[test]
    fn minification_saves_round_trips() {
        for op in [Operator::Starlink, Operator::Hughes, Operator::Viasat] {
            let mini = median_fetch(op, Cdn::Fastly, true);
            let full = median_fetch(op, Cdn::Fastly, false);
            assert!(full > mini, "{op}: full {full} vs mini {mini}");
        }
        // For Starlink the gap is about one extra slow-start round trip.
        let gap = median_fetch(Operator::Starlink, Cdn::Fastly, false)
            - median_fetch(Operator::Starlink, Cdn::Fastly, true);
        assert!((20.0..130.0).contains(&gap), "gap {gap}");
    }

    #[test]
    fn geo_to_leo_ratio_is_large() {
        let ratio = median_fetch(Operator::Hughes, Cdn::Fastly, true)
            / median_fetch(Operator::Starlink, Cdn::Fastly, true);
        assert!(ratio > 5.0, "ratio {ratio}");
    }
}
