//! DNS lookup-time measurements (Figure 10c).
//!
//! Starlink hands subscribers Cloudflare at the PoP (one short RTT away,
//! but a cache miss recurses from there); HughesNet and Viasat run their
//! own resolvers *behind* the satellite hop, so every lookup pays the
//! full access RTT before resolution even starts. The paper further
//! observes that HughesNet's resolver outperforms Viasat's.

use crate::testers::Tester;
use sno_netsim::dns::DnsResolver;
use sno_types::{Millis, Operator, Rng};

/// The resolver a tester's queries hit, parameterised per operator.
pub fn resolver_for(tester: &Tester) -> DnsResolver {
    match tester.operator {
        // Cloudflare at the PoP: short first hop, well-warmed cache for
        // popular names — but the measured names are unpopular with
        // short TTLs, so misses dominate and recursion costs add up.
        Operator::Starlink => DnsResolver {
            rtt_to_resolver: tester.access_rtt,
            cache_hit_prob: 0.45,
            upstream_cost: Millis(90.0),
            noise_ms: 8.0,
        },
        // HughesNet's resolver: behind the satellite, decent hit rate,
        // fast upstream (Germantown sits next to the east-coast roots).
        Operator::Hughes => DnsResolver {
            rtt_to_resolver: tester.access_rtt,
            cache_hit_prob: 0.55,
            upstream_cost: Millis(120.0),
            noise_ms: 15.0,
        },
        // Viasat's resolver: behind the satellite *and* slow to recurse.
        Operator::Viasat => DnsResolver {
            rtt_to_resolver: tester.access_rtt,
            cache_hit_prob: 0.35,
            upstream_cost: Millis(420.0),
            noise_ms: 15.0,
        },
        _ => DnsResolver {
            rtt_to_resolver: tester.access_rtt,
            cache_hit_prob: 0.5,
            upstream_cost: Millis(150.0),
            noise_ms: 10.0,
        },
    }
}

/// Run `n` lookups of unpopular short-TTL names for one tester,
/// filtering out sub-RTT artefacts exactly as the paper does.
pub fn dns_lookups(tester: &Tester, n: usize, rng: &mut Rng) -> Vec<Millis> {
    let resolver = resolver_for(tester);
    (0..n)
        .map(|_| resolver.lookup(rng))
        .filter(|t| t.0 >= tester.access_rtt.0 * 0.9)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testers::panel;
    use sno_stats::median;

    fn median_lookup(op: Operator) -> f64 {
        let mut rng = Rng::new(3);
        let p = panel(3);
        let v: Vec<f64> = p
            .iter()
            .filter(|t| t.operator == op)
            .flat_map(|t| dns_lookups(t, 40, &mut rng))
            .map(|m| m.0)
            .collect();
        median(&v).unwrap()
    }

    #[test]
    fn lookup_medians_match_figure_10c() {
        let starlink = median_lookup(Operator::Starlink);
        let hughes = median_lookup(Operator::Hughes);
        let viasat = median_lookup(Operator::Viasat);
        // Paper: 130 / 755 / 985 ms.
        assert!((80.0..220.0).contains(&starlink), "starlink {starlink}");
        assert!((640.0..900.0).contains(&hughes), "hughes {hughes}");
        assert!((850.0..1_200.0).contains(&viasat), "viasat {viasat}");
    }

    #[test]
    fn hughes_dns_beats_viasat_despite_higher_rtt() {
        // The paper's inference: Viasat's lower access RTT should win if
        // resolvers were equal — it loses, so its resolver is slower.
        let hughes = median_lookup(Operator::Hughes);
        let viasat = median_lookup(Operator::Viasat);
        assert!(hughes < viasat, "hughes {hughes} viasat {viasat}");
    }

    #[test]
    fn no_lookup_beats_the_access_rtt() {
        let mut rng = Rng::new(4);
        for t in panel(4) {
            for lookup in dns_lookups(&t, 50, &mut rng) {
                assert!(lookup.0 >= t.access_rtt.0 * 0.9, "{t:?} {lookup}");
            }
        }
    }
}
