//! The Akamai H1 vs H2 demo-page load model (Figure 10b).
//!
//! The demo page is hundreds of small images. Over HTTP/1.1 the browser
//! opens six parallel connections and each object costs a request round
//! trip on its connection, so the page load is dominated by
//! `objects / 6` round trips. HTTP/2 multiplexes everything over one
//! connection: a handful of round trips plus the bandwidth-limited
//! transfer. That is why H2 on a GEO path lands near H1 on Starlink —
//! the paper's headline observation.

use crate::testers::Tester;
use sno_types::{Millis, Operator, Rng};

/// HTTP protocol version under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HttpVersion {
    H1,
    H2,
}

impl std::fmt::Display for HttpVersion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            HttpVersion::H1 => "HTTP/1.1",
            HttpVersion::H2 => "HTTP/2",
        })
    }
}

/// One measured page load.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PageLoad {
    pub tester: sno_types::TesterId,
    pub operator: Operator,
    pub version: HttpVersion,
    /// Page load time (onload), ms.
    pub plt: Millis,
    /// True when the addon's ~60 s timeout fired first.
    pub timed_out: bool,
}

/// Objects on the demo page.
pub const PAGE_OBJECTS: u32 = 360;
/// Mean object size, bytes.
pub const OBJECT_BYTES: f64 = 1_800.0;
/// H1 parallel connections per origin.
pub const H1_CONNECTIONS: f64 = 6.0;
/// The addon's page-load timeout, ms.
pub const LOAD_TIMEOUT_MS: f64 = 60_000.0;

/// Load the demo page once.
pub fn page_load(tester: &Tester, version: HttpVersion, rng: &mut Rng) -> PageLoad {
    let uses_pep = sno_registry::profile::profile_of(tester.operator).uses_pep;
    let rtt = tester.access_rtt.0 + rng.range_f64(2.0, 10.0);
    let plan = sno_registry::assets::service_plan_of(tester.operator);
    let rate = (plan.down_lo + plan.down_hi) / 2.0;
    let total_bytes = f64::from(PAGE_OBJECTS) * OBJECT_BYTES;
    let transfer = total_bytes * 8.0 / (rate * 1e6) * 1_000.0;

    // Connection setup: DNS + TCP + TLS (PEPs splice part of it).
    let setup_rtts = if uses_pep { 1.6 } else { 2.5 };
    // Browser parse/layout/decode work, protocol-independent.
    let render_ms = 700.0 + f64::from(PAGE_OBJECTS) * 2.0;
    // Occasional weather fade / beam congestion stretches a whole run.
    let weather = if rng.chance(0.08) {
        rng.range_f64(1.5, 2.3)
    } else {
        1.0
    };
    let plt = match version {
        HttpVersion::H1 => {
            // Each connection serves its share of objects, one request
            // round trip each; a PEP's hub-side prefetching pipelines
            // part of that.
            let rounds = (f64::from(PAGE_OBJECTS) / H1_CONNECTIONS).ceil();
            let pipelining = if uses_pep { 0.45 } else { 1.0 };
            setup_rtts * rtt + rounds * rtt * pipelining + transfer + render_ms
        }
        HttpVersion::H2 => {
            // One multiplexed connection: a few window-growth round
            // trips, then bandwidth-bound.
            let growth_rounds = if uses_pep { 2.0 } else { 4.0 };
            setup_rtts * rtt + growth_rounds * rtt + transfer + render_ms
        }
    } * rng.lognormal(0.0, 0.07).clamp(0.85, 1.3)
        * weather;

    PageLoad {
        tester: tester.id,
        operator: tester.operator,
        version,
        plt: Millis(plt.min(LOAD_TIMEOUT_MS + rng.range_f64(0.0, 4_000.0))),
        timed_out: plt > LOAD_TIMEOUT_MS,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testers::panel;
    use sno_stats::median;

    fn median_plt(op: Operator, v: HttpVersion) -> f64 {
        let mut rng = Rng::new(13);
        let p = panel(13);
        let times: Vec<f64> = p
            .iter()
            .filter(|t| t.operator == op)
            .flat_map(|t| {
                (0..4)
                    .map(|_| page_load(t, v, &mut rng).plt.0)
                    .collect::<Vec<_>>()
            })
            .collect();
        median(&times).unwrap()
    }

    #[test]
    fn h2_always_beats_h1() {
        for op in [Operator::Starlink, Operator::Hughes, Operator::Viasat] {
            let h1 = median_plt(op, HttpVersion::H1);
            let h2 = median_plt(op, HttpVersion::H2);
            assert!(h2 < h1, "{op}: H2 {h2} vs H1 {h1}");
        }
    }

    #[test]
    fn h2_gap_is_transformative_on_geo_but_modest_on_leo() {
        let leo_ratio = median_plt(Operator::Starlink, HttpVersion::H1)
            / median_plt(Operator::Starlink, HttpVersion::H2);
        let geo_ratio = median_plt(Operator::Hughes, HttpVersion::H1)
            / median_plt(Operator::Hughes, HttpVersion::H2);
        assert!(geo_ratio > 2.5, "geo ratio {geo_ratio}");
        assert!(geo_ratio > leo_ratio, "geo {geo_ratio} vs leo {leo_ratio}");
    }

    #[test]
    fn geo_h2_comparable_to_starlink_h1() {
        // The paper's headline: H2 lets GEO users load the page about as
        // fast as Starlink users on H1.
        let geo_h2 = median_plt(Operator::Hughes, HttpVersion::H2);
        let leo_h1 = median_plt(Operator::Starlink, HttpVersion::H1);
        let ratio = geo_h2 / leo_h1;
        assert!((0.4..2.6).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn viasat_beats_hughes_on_complex_pages() {
        // The ~100 ms RTT advantage compounds over hundreds of objects.
        let v = median_plt(Operator::Viasat, HttpVersion::H1);
        let h = median_plt(Operator::Hughes, HttpVersion::H1);
        assert!(v < h - 2_000.0, "viasat {v} vs hughes {h}");
    }

    #[test]
    fn hughes_h1_can_hit_the_timeout() {
        // One HughesNet tester hit the 60 s timeout in the paper; our
        // worst-case H1 load must flirt with it.
        let mut rng = Rng::new(17);
        let p = panel(17);
        let worst = p
            .iter()
            .filter(|t| t.operator == Operator::Hughes)
            .flat_map(|t| {
                (0..8)
                    .map(|_| page_load(t, HttpVersion::H1, &mut rng))
                    .collect::<Vec<_>>()
            })
            .map(|l| l.plt.0)
            .fold(0.0, f64::max);
        assert!(worst > 45_000.0, "worst Hughes H1 load {worst}");
    }
}
