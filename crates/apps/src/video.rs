//! A 60-second YouTube-style adaptive-bitrate session (Figure 11).
//!
//! The player measures throughput, picks the highest rung whose bitrate
//! fits under ~80 % of it, and fills a buffer capped at 65 seconds.
//! Starlink's bandwidth reaches 1080p–4K (sacrificing buffer headroom at
//! the top rungs); HughesNet and Viasat hover around 360p. Dropped
//! frames come from link interruptions (LEO handoffs) rather than
//! quality; stalls are rare and happen when the buffer drains to zero.

use crate::testers::Tester;
use sno_types::{Mbps, Operator, Rng};

/// One quality rung of the ladder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualityRung {
    pub name: &'static str,
    pub width: u32,
    pub height: u32,
    /// Required stream bitrate, Mbps.
    pub bitrate: f64,
}

impl QualityRung {
    /// The paper's quality axis: megapixels.
    pub fn megapixels(&self) -> f64 {
        f64::from(self.width) * f64::from(self.height) / 1e6
    }
}

/// The ladder (2160p max — the test video's ceiling).
pub const LADDER: [QualityRung; 7] = [
    QualityRung {
        name: "144p",
        width: 256,
        height: 144,
        bitrate: 0.2,
    },
    QualityRung {
        name: "360p",
        width: 480,
        height: 360,
        bitrate: 0.6,
    },
    QualityRung {
        name: "480p",
        width: 854,
        height: 480,
        bitrate: 1.2,
    },
    QualityRung {
        name: "720p",
        width: 1280,
        height: 720,
        bitrate: 2.8,
    },
    QualityRung {
        name: "1080p",
        width: 1920,
        height: 1080,
        bitrate: 5.5,
    },
    QualityRung {
        name: "1440p",
        width: 2560,
        height: 1440,
        bitrate: 10.0,
    },
    QualityRung {
        name: "2160p",
        width: 3840,
        height: 2160,
        bitrate: 17.0,
    },
];

/// One 60-second playback session.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VideoSession {
    pub tester: sno_types::TesterId,
    pub operator: Operator,
    /// Throughput the player measured.
    pub download: Mbps,
    /// Median quality over the session.
    pub quality: QualityRung,
    /// Median buffer health, seconds.
    pub buffer_secs: f64,
    /// Dropped frames, percent.
    pub dropped_pct: f64,
    /// Fraction of wall-clock time spent stalled.
    pub stall_fraction: f64,
}

/// Playback duration, seconds.
pub const PLAY_SECS: f64 = 60.0;
/// Buffer cap, seconds.
pub const BUFFER_CAP_SECS: f64 = 65.0;

/// Play the test video for one tester.
pub fn video_session(tester: &Tester, rng: &mut Rng) -> VideoSession {
    let plan = sno_registry::assets::service_plan_of(tester.operator);
    let mut bw =
        rng.range_f64(plan.down_lo, plan.down_hi) * rng.lognormal(0.0, 0.12).clamp(0.7, 1.4);
    // GEO operators classify and throttle streaming video to protect
    // transponder capacity (both HughesNet and Viasat document video
    // data-saver modes), so the player sees far less than a speed test.
    if matches!(tester.operator, Operator::Hughes | Operator::Viasat) {
        bw = bw.min(rng.range_f64(1.0, 3.6));
    } else {
        // Even on a fat pipe, a single googlevideo connection is paced;
        // 1080p is routine, 4K takes a lucky cell (the paper: "1080p or
        // higher is hard to achieve also for Starlink testers").
        bw = bw.min(rng.range_f64(3.0, 24.0));
    }
    // Highest rung fitting under 80% of measured throughput.
    let quality = LADDER
        .iter()
        .rev()
        .find(|r| r.bitrate <= bw * 0.8)
        .copied()
        .unwrap_or(LADDER[0]);

    // Buffer: fills at (bw/bitrate − 1) seconds of video per second of
    // wall clock; top rungs leave little headroom, so the buffer settles
    // lower (the Figure 11b effect).
    // Over a 60 s session the buffer accumulates `headroom` seconds of
    // video per wall-clock second, up to the cap.
    let headroom = (bw / quality.bitrate - 1.0).max(0.0);
    let buffer_secs = (headroom * PLAY_SECS).clamp(3.0, BUFFER_CAP_SECS) * rng.range_f64(0.8, 1.0);

    // Stalls: only when the link cannot even sustain the lowest rung, or
    // on unlucky interruption bursts.
    let sustains = bw * 0.8 >= LADDER[0].bitrate;
    let stall_fraction = if !sustains {
        rng.range_f64(0.05, 0.32)
    } else if rng.chance(0.04) && buffer_secs < 20.0 {
        rng.range_f64(0.05, 0.15)
    } else {
        0.0
    };

    // Dropped frames: interruption-driven. LEO handoffs drop bursts of
    // frames independent of quality; full-resolution runs that fit the
    // link drop none.
    let dropped_pct = match tester.operator {
        Operator::Starlink => {
            if quality.megapixels() > 8.0 || rng.chance(0.35) {
                0.0
            } else {
                rng.range_f64(0.1, 3.5)
            }
        }
        _ => {
            if stall_fraction > 0.0 {
                rng.range_f64(1.0, 8.0)
            } else {
                rng.range_f64(0.0, 2.0)
            }
        }
    };

    VideoSession {
        tester: tester.id,
        operator: tester.operator,
        download: Mbps(bw),
        quality,
        buffer_secs,
        dropped_pct,
        stall_fraction,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testers::panel;

    fn sessions() -> Vec<VideoSession> {
        let mut rng = Rng::new(21);
        let mut out = Vec::new();
        for t in panel(21) {
            for _ in 0..crate::testers::RUNS_PER_TESTER {
                out.push(video_session(&t, &mut rng));
            }
        }
        out
    }

    #[test]
    fn only_starlink_reaches_high_resolution() {
        let s = sessions();
        let starlink_best = s
            .iter()
            .filter(|x| x.operator == Operator::Starlink)
            .map(|x| x.quality.megapixels())
            .fold(0.0, f64::max);
        assert!(starlink_best >= 2.0, "starlink best {starlink_best} MP");
        for op in [Operator::Hughes, Operator::Viasat] {
            let best = s
                .iter()
                .filter(|x| x.operator == op)
                .map(|x| x.quality.megapixels())
                .fold(0.0, f64::max);
            assert!(best <= 1.1, "{op} best {best} MP");
        }
    }

    #[test]
    fn geo_operators_hover_near_half_a_megapixel() {
        let s = sessions();
        for op in [Operator::Hughes, Operator::Viasat] {
            let mps: Vec<f64> = s
                .iter()
                .filter(|x| x.operator == op)
                .map(|x| x.quality.megapixels())
                .collect();
            let med = sno_stats::median(&mps).unwrap();
            assert!(med <= 0.6, "{op} median {med} MP");
        }
    }

    #[test]
    fn high_resolution_costs_buffer_health() {
        let s = sessions();
        let starlink: Vec<&VideoSession> = s
            .iter()
            .filter(|x| x.operator == Operator::Starlink)
            .collect();
        let high: Vec<f64> = starlink
            .iter()
            .filter(|x| x.quality.megapixels() >= 2.0)
            .map(|x| x.buffer_secs)
            .collect();
        let low: Vec<f64> = starlink
            .iter()
            .filter(|x| x.quality.megapixels() < 2.0)
            .map(|x| x.buffer_secs)
            .collect();
        if let (Some(h), Some(l)) = (sno_stats::median(&high), sno_stats::median(&low)) {
            assert!(h < l, "high-res buffer {h} vs low-res {l}");
        }
        // Most runs keep a healthy 40–65 s buffer.
        let healthy = s.iter().filter(|x| x.buffer_secs >= 40.0).count();
        assert!(healthy * 2 > s.len(), "healthy {} of {}", healthy, s.len());
    }

    #[test]
    fn full_resolution_runs_drop_no_frames() {
        let s = sessions();
        for x in &s {
            if x.operator == Operator::Starlink && x.quality.megapixels() > 8.0 {
                assert_eq!(x.dropped_pct, 0.0, "{x:?}");
            }
        }
    }

    #[test]
    fn stalls_are_rare_and_bounded() {
        let s = sessions();
        let stalled = s.iter().filter(|x| x.stall_fraction > 0.0).count();
        assert!(stalled * 5 <= s.len(), "stalled {} of {}", stalled, s.len());
        for x in &s {
            assert!(x.stall_fraction <= 0.32);
        }
    }

    #[test]
    fn ladder_megapixels_are_monotone() {
        for w in LADDER.windows(2) {
            assert!(w[0].megapixels() < w[1].megapixels());
            assert!(w[0].bitrate < w[1].bitrate);
        }
        // 1080p ≈ 2 MP, 2160p ≈ 8 MP — the paper's reference points.
        assert!((LADDER[4].megapixels() - 2.07).abs() < 0.05);
        assert!((LADDER[6].megapixels() - 8.29).abs() < 0.05);
    }
}
