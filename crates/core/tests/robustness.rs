//! Failure injection: the pipeline must stay correct — and never panic —
//! on degenerate, hostile or malformed corpora.

use sno_core::pipeline::Pipeline;
use sno_core::validate::{profile_one, AsnVerdict, LatencyBands};
use sno_types::records::NdtRecord;
use sno_types::{Asn, Ipv4, Mbps, Millis, Operator, Timestamp};

fn record(asn: u32, latency: f64) -> NdtRecord {
    NdtRecord {
        timestamp: Timestamp(1_000),
        client: Ipv4::new(61, 0, 0, 10),
        asn: Asn(asn),
        latency_p5: Millis(latency),
        jitter_p95: Millis(latency * 0.3),
        retrans_fraction: 0.01,
        download: Mbps(10.0),
    }
}

#[test]
fn empty_corpus_yields_empty_catalog() {
    let report = Pipeline::new().run(&[]);
    assert_eq!(report.sno_count(), 0);
    assert!(report.accepted.is_empty());
    assert!(report.strict.retained.is_empty());
    assert!(report.default_threshold.is_infinite());
}

#[test]
fn single_record_corpus() {
    let recs = vec![record(14593, 55.0)];
    let report = Pipeline::new().run(&recs);
    assert_eq!(report.accepted.len(), 1);
    // One LEO record from a known ASN with too little data for a
    // verdict: LEO acceptance is ASN-level, so it is kept.
    assert_eq!(report.accepted[0], Some(Operator::Starlink));
}

#[test]
fn unknown_asns_are_ignored_not_fatal() {
    let recs = vec![record(999_999, 60.0), record(0, 700.0), record(14593, 55.0)];
    let report = Pipeline::new().run(&recs);
    assert_eq!(report.accepted[0], None);
    assert_eq!(report.accepted[1], None);
    assert_eq!(report.accepted[2], Some(Operator::Starlink));
    assert_eq!(report.sno_count(), 1);
}

#[test]
fn extreme_latencies_do_not_panic() {
    let mut recs = Vec::new();
    for &lat in &[1e-6, 0.5, 1.0, 1e5, 1e9] {
        recs.push(record(14593, lat));
        recs.push(record(13955, lat));
        recs.push(record(60725, lat));
    }
    let report = Pipeline::new().run(&recs);
    assert_eq!(report.accepted.len(), recs.len());
    // GEO records above the huge thresholds may or may not pass; the
    // point is graceful handling. A 1e9 ms "GEO" record has no sane
    // threshold to compare against because nothing was retained, so the
    // default (infinite) rejects it.
    for acc in &report.accepted {
        let _ = acc;
    }
}

#[test]
fn identical_records_mass_duplicated() {
    // A /24 stuffed with ten thousand byte-identical GEO tests must pass
    // the strict filter without numeric issues (zero variance KDE).
    let recs = vec![record(13955, 650.0); 10_000];
    let report = Pipeline::new().run(&recs);
    let accepted = report.accepted.iter().flatten().count();
    assert_eq!(accepted, 10_000);
    assert_eq!(report.catalog[0], (Operator::Viasat, 10_000));
}

#[test]
fn adversarial_mixture_is_contained() {
    // An attacker-ish ASN profile: a Viasat ASN flooded with terrestrial
    // latencies. The KDE stage must flag it and the pipeline must drop
    // every record rather than pollute the catalog.
    let recs: Vec<NdtRecord> = (0..500).map(|_| record(25222, 12.0)).collect();
    let report = Pipeline::new().run(&recs);
    assert_eq!(report.accepted.iter().flatten().count(), 0);
}

#[test]
fn verdicts_on_degenerate_samples() {
    let bands = LatencyBands::default();
    // Zero-spread sample.
    let p = profile_one(Operator::Viasat, Asn(13955), &vec![600.0; 100], bands);
    assert_eq!(p.verdict, AsnVerdict::Consistent);
    // Two points at the regime edge.
    let p = profile_one(Operator::Viasat, Asn(13955), &[450.0, 450.0], bands);
    assert_eq!(p.verdict, AsnVerdict::Insufficient);
    // Empty sample.
    let p = profile_one(Operator::Viasat, Asn(13955), &[], bands);
    assert_eq!(p.verdict, AsnVerdict::Insufficient);
}

#[test]
fn timestamps_out_of_order_are_fine() {
    // Analyses sort internally; pipeline acceptance is order-free.
    let mut recs: Vec<NdtRecord> = (0..200)
        .map(|i| {
            let mut r = record(14593, 50.0 + (i % 30) as f64);
            r.timestamp = Timestamp(1_000_000 - i * 1_000);
            r
        })
        .collect();
    let report_sorted = {
        let mut sorted = recs.clone();
        sorted.sort_by_key(|r| r.timestamp);
        Pipeline::new().run(&sorted)
    };
    let report_shuffled = Pipeline::new().run(&recs);
    assert_eq!(
        report_sorted.catalog, report_shuffled.catalog,
        "acceptance must not depend on record order"
    );
    recs.reverse();
    let report_reversed = Pipeline::new().run(&recs);
    assert_eq!(report_sorted.catalog, report_reversed.catalog);
}

#[test]
fn all_operators_simultaneously_terrestrial_collapses_catalog() {
    // If every mapped ASN suddenly shows terrestrial traffic, the KDE
    // stage must zero out the whole catalog (fail closed).
    let mut recs = Vec::new();
    for profile in sno_registry::PROFILES {
        for &asn in profile.asns {
            for _ in 0..40 {
                recs.push(record(asn, 15.0));
            }
        }
    }
    let report = Pipeline::new().run(&recs);
    assert_eq!(
        report.accepted.iter().flatten().count(),
        0,
        "terrestrial-everything must be fully rejected"
    );
}
