//! Stage 3b–3c: strict per-`/24` filtering and its relaxation.
//!
//! With LEO operators already identified at ASN granularity, the paper
//! introduces **strict** per-prefix filters for the remaining regimes:
//! keep a `/24` only if it has at least 10 speed tests and *every* test
//! sits above the regime floor (MEO > 200 ms — the 10th percentile of
//! O3b's distribution; GEO > 500 ms, from prior work). This retains 25
//! prefixes across 6 operators but throws away almost everything — pure
//! prefixes die to a handful of outliers (Viasat's `75.105.63.0/24`),
//! and hybrid satellite-backup prefixes mix in terrestrial latencies by
//! design.
//!
//! The **relaxed** filter therefore derives, from the strictly-retained
//! prefixes, each covered operator's minimum plausible satellite
//! latency (548.9 ms for Viasat in the paper) and accepts any test above
//! it; operators not covered by the strict stage use the minimum across
//! covered operators (527 ms in the paper).

use crate::asn_map::AsnMapping;
use crate::validate::{AsnProfile, AsnVerdict};
use sno_stats::FiveNumber;
use sno_types::par;
use sno_types::records::NdtRecord;
use sno_types::{AccessKind, Asn, Operator, OrbitClass, Prefix24};
use std::collections::{BTreeMap, BTreeSet};

/// Minimum tests for a prefix to be considered by the strict filter.
pub const STRICT_MIN_TESTS: usize = 10;

/// MEO regime floor, ms (10th percentile of O3b's latency distribution).
pub const MEO_FLOOR_MS: f64 = 200.0;

/// GEO regime floor, ms (from prior SatCom measurements).
pub const GEO_FLOOR_MS: f64 = 500.0;

/// One strictly-retained prefix.
#[derive(Debug, Clone)]
pub struct PrefixStat {
    pub operator: Operator,
    pub prefix: Prefix24,
    /// Tests observed in this prefix.
    pub tests: usize,
    /// Minimum latency observed (feeds the relaxed thresholds).
    pub min_latency_ms: f64,
    /// Boxplot summary of the prefix's latencies.
    pub summary: FiveNumber,
}

/// Outcome of the strict stage.
#[derive(Debug, Clone)]
pub struct StrictOutcome {
    /// Prefixes that survived.
    pub retained: Vec<PrefixStat>,
    /// `/24`s examined (non-LEO operators, non-outlier ASNs).
    pub examined: usize,
    /// Prefixes that had enough tests but failed the latency-band test.
    pub rejected_band: usize,
    /// Prefixes with fewer than [`STRICT_MIN_TESTS`] tests.
    pub rejected_thin: usize,
}

impl StrictOutcome {
    /// Operators covered by at least one retained prefix.
    pub fn covered(&self) -> BTreeSet<Operator> {
        self.retained.iter().map(|p| p.operator).collect()
    }
}

/// The regime floor for an operator's advertised access.
fn floor_of(access: AccessKind) -> f64 {
    match access {
        AccessKind::Satellite(OrbitClass::Meo) | AccessKind::MeoGeo => MEO_FLOOR_MS,
        _ => GEO_FLOOR_MS,
    }
}

/// How the strict stage ruled on one `(operator, /24)` bucket.
///
/// A bucket's outcome depends only on its own samples and the current
/// outlier-ASN set, which makes it a unit of memoization for the
/// incremental pipeline: buckets are append-only, so an unchanged
/// `(sample count, outlier set)` pair implies an unchanged outcome.
#[derive(Debug, Clone)]
pub(crate) enum BucketOutcome {
    /// Every sample came from an outlier ASN; the bucket was never
    /// examined.
    Empty,
    /// Fewer than [`STRICT_MIN_TESTS`] non-outlier samples.
    Thin,
    /// At least one sample at or below the regime floor.
    Band,
    /// Survived the strict filter.
    Retained(PrefixStat),
}

/// Evaluate the strict filter on a single `(operator, /24)` bucket.
pub(crate) fn strict_eval_bucket(
    op: Operator,
    prefix: Prefix24,
    samples: &[(Asn, f64)],
    outlier_asns: &BTreeSet<Asn>,
) -> BucketOutcome {
    let latencies: Vec<f64> = samples
        .iter()
        .filter(|(asn, _)| !outlier_asns.contains(asn))
        .map(|&(_, l)| l)
        .collect();
    if latencies.is_empty() {
        return BucketOutcome::Empty;
    }
    if latencies.len() < STRICT_MIN_TESTS {
        return BucketOutcome::Thin;
    }
    let floor = floor_of(sno_registry::sources::access_of(op));
    if latencies.iter().all(|&l| l > floor) {
        let min = latencies.iter().cloned().fold(f64::INFINITY, f64::min);
        match FiveNumber::of(&latencies) {
            Some(summary) => BucketOutcome::Retained(PrefixStat {
                operator: op,
                prefix,
                tests: latencies.len(),
                min_latency_ms: min,
                summary,
            }),
            // Unsummarisable means empty, which the thin-prefix gate
            // already counts.
            None => BucketOutcome::Thin,
        }
    } else {
        BucketOutcome::Band
    }
}

/// One borrowed `(key, samples)` entry of a per-`(operator, /24)`
/// bucket map, as sharded by the strict filter and its stage cache.
pub(crate) type PrefixEntry<'a> = (&'a (Operator, Prefix24), &'a Vec<(Asn, f64)>);

/// Fold per-bucket outcomes (in bucket order) into a [`StrictOutcome`].
pub(crate) fn collect_strict<'a>(
    outcomes: impl IntoIterator<Item = &'a BucketOutcome>,
) -> StrictOutcome {
    let mut retained = Vec::new();
    let mut examined = 0usize;
    let mut rejected_band = 0usize;
    let mut rejected_thin = 0usize;
    for outcome in outcomes {
        match outcome {
            BucketOutcome::Empty => continue,
            BucketOutcome::Thin => rejected_thin += 1,
            BucketOutcome::Band => rejected_band += 1,
            BucketOutcome::Retained(stat) => retained.push(stat.clone()),
        }
        examined += 1;
    }
    StrictOutcome {
        retained,
        examined,
        rejected_band,
        rejected_thin,
    }
}

/// The outlier-ASN set a profile pass implies (the strict stage drops
/// samples originating from these ASNs).
pub(crate) fn outlier_set(profiles: &[AsnProfile]) -> BTreeSet<Asn> {
    profiles
        .iter()
        .filter(|p| matches!(p.verdict, AsnVerdict::Outlier(_)))
        .map(|p| p.asn)
        .collect()
}

/// Run the strict per-prefix filter over non-LEO operators.
pub fn strict_filter(
    mapping: &AsnMapping,
    profiles: &[AsnProfile],
    records: &[NdtRecord],
) -> StrictOutcome {
    strict_filter_threaded(mapping, profiles, records, 0)
}

/// [`strict_filter`] with an explicit worker-thread count (`0` = all
/// cores). Prefix buckets are evaluated in fixed-size shards and the
/// per-shard results merged in prefix order, so the outcome is
/// identical at every thread count.
pub fn strict_filter_threaded(
    mapping: &AsnMapping,
    profiles: &[AsnProfile],
    records: &[NdtRecord],
    threads: usize,
) -> StrictOutcome {
    // Group record latencies by (operator, /24), keeping the source ASN
    // so the bucket stage below can drop outlier-ASN samples.
    let mut by_prefix: BTreeMap<(Operator, Prefix24), Vec<(Asn, f64)>> = BTreeMap::new();
    for rec in records {
        let Some(op) = mapping.operator_of(rec.asn) else {
            continue;
        };
        let access = sno_registry::sources::access_of(op);
        if access.includes(OrbitClass::Leo) {
            continue; // LEO is identified at ASN level
        }
        by_prefix
            .entry((op, rec.client.prefix24()))
            .or_default()
            .push((rec.asn, rec.latency_p5.0));
    }
    strict_filter_from_buckets(profiles, &by_prefix, threads)
}

/// The filtering half of [`strict_filter_threaded`], starting from
/// already-bucketed per-`(operator, /24)` samples (non-LEO operators
/// only, each bucket in record order, tagged with the source ASN).
/// This is the entry point for the streaming pipeline: the buckets are
/// accumulated per chunk *before* the KDE stage has ruled on any ASN,
/// so outlier-ASN samples are dropped here, and buckets left empty by
/// that cut were never examined.
pub fn strict_filter_from_buckets(
    profiles: &[AsnProfile],
    by_prefix: &BTreeMap<(Operator, Prefix24), Vec<(Asn, f64)>>,
    threads: usize,
) -> StrictOutcome {
    let outlier_asns = outlier_set(profiles);
    let entries: Vec<PrefixEntry> = by_prefix.iter().collect();
    let ranges = par::shard_ranges(entries.len(), par::DEFAULT_CHUNK);
    let parts = par::shard_map(ranges.len(), threads, |s| {
        entries[ranges[s].clone()]
            .iter()
            .map(|(&(op, prefix), samples)| strict_eval_bucket(op, prefix, samples, &outlier_asns))
            .collect::<Vec<_>>()
    });
    collect_strict(parts.iter().flatten())
}

/// Per-operator relaxed thresholds plus the default for operators the
/// strict stage did not cover. Returns `(per_operator, default)`.
///
/// Returns an empty map and `f64::INFINITY` when nothing was retained
/// (then nothing can be relaxed either).
pub fn relaxed_thresholds(strict: &StrictOutcome) -> (BTreeMap<Operator, f64>, f64) {
    let mut per_op: BTreeMap<Operator, f64> = BTreeMap::new();
    for stat in &strict.retained {
        per_op
            .entry(stat.operator)
            .and_modify(|m| *m = m.min(stat.min_latency_ms))
            .or_insert(stat.min_latency_ms);
    }
    let default = per_op.values().cloned().fold(f64::INFINITY, f64::min);
    (per_op, default)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asn_map::map_asns;
    use crate::validate::{validate_asns, LatencyBands};
    use sno_synth::{MlabGenerator, SynthConfig};

    fn run_stages() -> (StrictOutcome, BTreeMap<Operator, f64>, f64) {
        let corpus = MlabGenerator::new(SynthConfig::test_corpus()).generate();
        let mapping = map_asns();
        let profiles = validate_asns(&mapping, &corpus.records, LatencyBands::default());
        let strict = strict_filter(&mapping, &profiles, &corpus.records);
        let (per_op, default) = relaxed_thresholds(&strict);
        (strict, per_op, default)
    }

    #[test]
    fn strict_stage_retains_a_handful_of_prefixes() {
        let (strict, ..) = run_stages();
        // Paper: 25 prefixes from 6 SNOs. Shape: a few dozen prefixes,
        // a small set of operators, with plenty rejected.
        assert!(
            (10..=45).contains(&strict.retained.len()),
            "retained {} prefixes",
            strict.retained.len()
        );
        let covered = strict.covered();
        assert!((4..=8).contains(&covered.len()), "covered {covered:?}");
        assert!(strict.rejected_thin > 0, "thin prefixes must exist");
    }

    #[test]
    fn high_volume_geo_operators_are_covered() {
        let (strict, ..) = run_stages();
        let covered = strict.covered();
        assert!(covered.contains(&Operator::Viasat));
        assert!(covered.contains(&Operator::Ses));
        // LEO operators never enter the prefix stage.
        assert!(!covered.contains(&Operator::Starlink));
        assert!(!covered.contains(&Operator::Oneweb));
    }

    #[test]
    fn viasat_outlier_prefix_is_discarded_by_strict() {
        let (strict, ..) = run_stages();
        let has_outlier_prefix = strict
            .retained
            .iter()
            .any(|p| p.prefix == Prefix24::new(75, 105, 63));
        assert!(
            !has_outlier_prefix,
            "75.105.63.0/24 must fall to its low-latency outliers"
        );
        // The hybrid prefixes cannot survive either.
        for c in [115u8, 116, 117] {
            assert!(!strict
                .retained
                .iter()
                .any(|p| p.prefix == Prefix24::new(45, 232, c)));
        }
    }

    #[test]
    fn relaxed_thresholds_sit_above_the_geo_floor() {
        let (_, per_op, default) = run_stages();
        let viasat = per_op[&Operator::Viasat];
        assert!(viasat > GEO_FLOOR_MS, "viasat threshold {viasat}");
        assert!(default.is_finite());
        // The default is the minimum across covered operators — SES's
        // MEO prefixes pull it down toward the MEO floor.
        assert!(default <= viasat);
        assert!(default > MEO_FLOOR_MS);
    }

    #[test]
    fn empty_strict_outcome_yields_infinite_default() {
        let strict = StrictOutcome {
            retained: Vec::new(),
            examined: 0,
            rejected_band: 0,
            rejected_thin: 0,
        };
        let (per_op, default) = relaxed_thresholds(&strict);
        assert!(per_op.is_empty());
        assert!(default.is_infinite());
    }
}
