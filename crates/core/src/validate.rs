//! Stage 3: KDE validation of ASN→SNO mappings.
//!
//! For every (operator, ASN) with enough speed tests, fit a Gaussian KDE
//! to the per-session p5 latencies and compare the mass distribution to
//! the latency regimes the operator's advertised access technology can
//! produce. The checks reproduce Figure 2's findings:
//!
//! * AS27277 (Starlink) has a terrestrial profile → corporate outlier;
//! * AS201554 (SES) lacks the expected MEO+GEO bimodality → outlier;
//! * AS10538 (TelAlaska) mixes a GEO mode with a terrestrial mode inside
//!   one ASN → cannot be resolved at ASN granularity, needs the prefix
//!   stage.

use crate::asn_map::AsnMapping;
use sno_registry::sources::access_of;
use sno_stats::{Kde, QuantileSketch};
use sno_types::par;
use sno_types::records::NdtRecord;
use sno_types::{AccessKind, Asn, Operator, OrbitClass};
use std::collections::BTreeMap;

/// Latency bands (ms) per regime, used to interrogate the KDE mass.
#[derive(Debug, Clone, Copy)]
pub struct LatencyBands {
    /// Anything below this is terrestrial-like.
    pub terrestrial_max: f64,
    /// LEO regime.
    pub leo: (f64, f64),
    /// MEO regime.
    pub meo: (f64, f64),
    /// GEO regime.
    pub geo: (f64, f64),
}

impl Default for LatencyBands {
    fn default() -> Self {
        LatencyBands {
            terrestrial_max: 100.0,
            leo: (35.0, 300.0),
            meo: (150.0, 450.0),
            geo: (450.0, 1_200.0),
        }
    }
}

impl LatencyBands {
    /// The band for one orbit class.
    pub fn band(&self, orbit: OrbitClass) -> (f64, f64) {
        match orbit {
            OrbitClass::Leo => self.leo,
            OrbitClass::Meo => self.meo,
            OrbitClass::Geo => self.geo,
        }
    }
}

/// The verdict on one ASN.
#[derive(Debug, Clone, PartialEq)]
pub enum AsnVerdict {
    /// Latency profile matches the operator's access technology.
    Consistent,
    /// Profile matches, but a minority mass sits in foreign regimes
    /// (hybrid lines or outliers inside the ASN) — the prefix stage has
    /// to sort it out. Carries the fraction of mass outside the
    /// expected bands.
    MixedWithinAsn(f64),
    /// Profile is incompatible with the advertised technology (e.g. a
    /// terrestrial corporate network); exclude the ASN.
    Outlier(&'static str),
    /// Too few tests to judge.
    Insufficient,
}

/// KDE-profile summary for one (operator, ASN).
#[derive(Debug, Clone)]
pub struct AsnProfile {
    pub operator: Operator,
    pub asn: Asn,
    /// Number of speed tests observed.
    pub tests: usize,
    /// Mass below `terrestrial_max`.
    pub terrestrial_mass: f64,
    /// Mass inside each expected band of the operator's access kind.
    pub expected_mass: f64,
    /// Number of KDE modes over the latency grid.
    pub modes: usize,
    /// The verdict.
    pub verdict: AsnVerdict,
}

/// Minimum tests before a verdict is attempted.
pub const MIN_TESTS_FOR_VERDICT: usize = 25;

/// Validate every mapped ASN against the latency profile of its records.
pub fn validate_asns(
    mapping: &AsnMapping,
    records: &[NdtRecord],
    bands: LatencyBands,
) -> Vec<AsnProfile> {
    validate_asns_threaded(mapping, records, bands, 0)
}

/// [`validate_asns`] with an explicit worker-thread count (`0` = all
/// cores). Each (operator, ASN) profile is an independent KDE fit, so
/// the fits fan out across the pool and merge in mapping order — the
/// output is identical at every thread count.
pub fn validate_asns_threaded(
    mapping: &AsnMapping,
    records: &[NdtRecord],
    bands: LatencyBands,
    threads: usize,
) -> Vec<AsnProfile> {
    // Bucket latencies per ASN (serial: one pass over the corpus).
    let mut by_asn: BTreeMap<Asn, Vec<f64>> = BTreeMap::new();
    for rec in records {
        by_asn.entry(rec.asn).or_default().push(rec.latency_p5.0);
    }
    profiles_from_buckets(mapping, &by_asn, bands, threads)
}

/// The KDE-fit half of [`validate_asns_threaded`], starting from
/// already-bucketed per-ASN latency samples (each bucket in record
/// order). This is the entry point for the streaming pipeline, whose
/// per-chunk accumulators build the buckets incrementally; the fits fan
/// out across the pool and merge in mapping order.
pub fn profiles_from_buckets(
    mapping: &AsnMapping,
    by_asn: &BTreeMap<Asn, Vec<f64>>,
    bands: LatencyBands,
    threads: usize,
) -> Vec<AsnProfile> {
    let pairs: Vec<(Operator, Asn)> = mapping
        .mapping
        .iter()
        .flat_map(|(&op, asns)| asns.iter().map(move |&asn| (op, asn)))
        .collect();
    par::shard_map(pairs.len(), threads, |i| {
        let (op, asn) = pairs[i];
        let latencies = by_asn.get(&asn).map(Vec::as_slice).unwrap_or(&[]);
        profile_one(op, asn, latencies, bands)
    })
}

/// Validate one ASN's latency sample.
pub fn profile_one(
    operator: Operator,
    asn: Asn,
    latencies: &[f64],
    bands: LatencyBands,
) -> AsnProfile {
    let tests = latencies.len();
    if tests < MIN_TESTS_FOR_VERDICT {
        return AsnProfile {
            operator,
            asn,
            tests,
            terrestrial_mass: 0.0,
            expected_mass: 0.0,
            modes: 0,
            verdict: AsnVerdict::Insufficient,
        };
    }
    // `tests >= MIN_TESTS_FOR_VERDICT > 0`, but an unfittable sample is
    // an Insufficient verdict, not a panic.
    let Some(kde) = Kde::fit(latencies) else {
        return AsnProfile {
            operator,
            asn,
            tests,
            terrestrial_mass: 0.0,
            expected_mass: 0.0,
            modes: 0,
            verdict: AsnVerdict::Insufficient,
        };
    };
    let access = access_of(operator);
    let terrestrial_mass = kde.mass_in(0.0, bands.terrestrial_max);
    let expected_mass: f64 = access
        .orbits()
        .iter()
        .map(|&orbit| {
            let (lo, hi) = bands.band(orbit);
            kde.mass_in(lo, hi)
        })
        .sum();
    let modes = kde.modes_on_grid(0.0, 1_200.0, 400, 0.2);

    let verdict = judge(access, expected_mass, |lo, hi| kde.mass_in(lo, hi), bands);
    AsnProfile {
        operator,
        asn,
        tests,
        terrestrial_mass,
        expected_mass,
        modes,
        verdict,
    }
}

/// Validate one ASN from its streaming latency sketch instead of a
/// retained sample buffer — the online service's buffer-free verdict
/// path. Band masses come from [`QuantileSketch::mass_in`], whose
/// per-boundary error is one sketch bin (~0.05% relative), so verdicts
/// agree with [`profile_one`] except for samples landing *exactly* on a
/// band edge at bin resolution. `modes` is reported as `0`: the sketch
/// retains no density estimate, and no verdict rule reads the mode
/// count — it is descriptive output only.
pub fn profile_from_sketch(
    operator: Operator,
    asn: Asn,
    sketch: &QuantileSketch,
    bands: LatencyBands,
) -> AsnProfile {
    let tests = sketch.count() as usize;
    if tests < MIN_TESTS_FOR_VERDICT {
        return AsnProfile {
            operator,
            asn,
            tests,
            terrestrial_mass: 0.0,
            expected_mass: 0.0,
            modes: 0,
            verdict: AsnVerdict::Insufficient,
        };
    }
    let access = access_of(operator);
    let terrestrial_mass = sketch.mass_in(0.0, bands.terrestrial_max);
    let expected_mass: f64 = access
        .orbits()
        .iter()
        .map(|&orbit| {
            let (lo, hi) = bands.band(orbit);
            sketch.mass_in(lo, hi)
        })
        .sum();
    let verdict = judge(
        access,
        expected_mass,
        |lo, hi| sketch.mass_in(lo, hi),
        bands,
    );
    AsnProfile {
        operator,
        asn,
        tests,
        terrestrial_mass,
        expected_mass,
        modes: 0,
        verdict,
    }
}

/// The verdict rules, abstracted over the band-mass query so the
/// KDE-backed ([`profile_one`]) and sketch-backed
/// ([`profile_from_sketch`]) paths share one rule set: given the same
/// masses, they return the same verdict by construction.
fn judge(
    access: AccessKind,
    expected_mass: f64,
    mass_in: impl Fn(f64, f64) -> f64,
    bands: LatencyBands,
) -> AsnVerdict {
    // A mapping whose traffic is mostly terrestrial is not satellite
    // subscriber traffic at all. The terrestrial cut-off is the lower
    // edge of the operator's lowest expected band (35 ms for LEO — a
    // bent pipe plus uplink scheduling cannot go faster; 100 ms cap for
    // everything else).
    let lowest_lo = access
        .orbits()
        .iter()
        .map(|&o| bands.band(o).0)
        .fold(f64::INFINITY, f64::min);
    let floor = bands.terrestrial_max.min(lowest_lo);
    if mass_in(0.0, floor) > 0.5 {
        return AsnVerdict::Outlier("terrestrial latency profile");
    }
    // Hybrid MEO+GEO access must actually show both modes.
    if access == AccessKind::MeoGeo {
        let (mlo, mhi) = bands.meo;
        let (glo, ghi) = bands.geo;
        let meo_mass = mass_in(mlo, mhi);
        let geo_mass = mass_in(glo, ghi);
        if meo_mass < 0.10 || geo_mass < 0.10 {
            return AsnVerdict::Outlier("expected bimodal MEO+GEO profile missing");
        }
    }
    if expected_mass >= 0.9 {
        AsnVerdict::Consistent
    } else if expected_mass >= 0.5 {
        AsnVerdict::MixedWithinAsn(1.0 - expected_mass)
    } else {
        AsnVerdict::Outlier("latency mass outside the advertised regime")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asn_map::map_asns;
    use sno_types::Rng;

    fn bands() -> LatencyBands {
        LatencyBands::default()
    }

    fn sample(mut f: impl FnMut(&mut Rng) -> f64, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = Rng::new(seed);
        (0..n).map(|_| f(&mut rng)).collect()
    }

    #[test]
    fn clean_leo_asn_is_consistent() {
        let lat = sample(|r| r.normal_with(56.0, 8.0).max(25.0), 500, 1);
        let p = profile_one(Operator::Starlink, Asn(14593), &lat, bands());
        assert_eq!(p.verdict, AsnVerdict::Consistent);
        assert!(p.expected_mass > 0.9);
    }

    #[test]
    fn corporate_terrestrial_asn_is_outlier() {
        let lat = sample(|r| r.normal_with(18.0, 5.0).max(3.0), 300, 2);
        let p = profile_one(Operator::Starlink, Asn(27277), &lat, bands());
        // A pile of sub-25 ms latencies has little mass in the LEO band.
        assert!(
            matches!(p.verdict, AsnVerdict::Outlier(_)),
            "{:?}",
            p.verdict
        );
    }

    #[test]
    fn geo_with_terrestrial_majority_is_outlier() {
        let lat = sample(|r| r.normal_with(25.0, 6.0).max(5.0), 300, 3);
        let p = profile_one(Operator::Ses, Asn(201554), &lat, bands());
        assert_eq!(
            p.verdict,
            AsnVerdict::Outlier("terrestrial latency profile")
        );
    }

    #[test]
    fn unimodal_hybrid_is_outlier() {
        // SES advertises MEO+GEO but this ASN only shows GEO.
        let lat = sample(|r| r.normal_with(650.0, 40.0), 300, 4);
        let p = profile_one(Operator::Ses, Asn(201554), &lat, bands());
        assert_eq!(
            p.verdict,
            AsnVerdict::Outlier("expected bimodal MEO+GEO profile missing")
        );
    }

    #[test]
    fn genuine_hybrid_is_consistent() {
        let lat = sample(
            |r| {
                if r.chance(0.45) {
                    r.normal_with(280.0, 30.0)
                } else {
                    r.normal_with(680.0, 50.0)
                }
            },
            600,
            5,
        );
        let p = profile_one(Operator::Ses, Asn(12684), &lat, bands());
        assert_eq!(p.verdict, AsnVerdict::Consistent, "{p:?}");
    }

    #[test]
    fn mixed_geo_and_terrestrial_flagged_as_mixed() {
        // TelAlaska-style: 65% GEO, 35% wireline.
        let lat = sample(
            |r| {
                if r.chance(0.35) {
                    r.normal_with(30.0, 8.0).max(5.0)
                } else {
                    r.normal_with(680.0, 50.0)
                }
            },
            600,
            6,
        );
        let p = profile_one(Operator::Telalaska, Asn(10538), &lat, bands());
        match p.verdict {
            AsnVerdict::MixedWithinAsn(foreign) => {
                assert!((0.2..0.5).contains(&foreign), "foreign {foreign}")
            }
            other => panic!("expected Mixed, got {other:?}"),
        }
    }

    #[test]
    fn too_few_tests_is_insufficient() {
        let lat = vec![600.0; 10];
        let p = profile_one(Operator::Kacific, Asn(135409), &lat, bands());
        assert_eq!(p.verdict, AsnVerdict::Insufficient);
    }

    #[test]
    fn sketch_profiles_agree_with_kde_profiles() {
        // The sketch-backed path must reproduce the KDE verdicts on
        // every synthetic profile shape: clean LEO, terrestrial
        // corporate, unimodal hybrid, genuine hybrid, GEO+terrestrial
        // mix, and thin samples.
        let cases: Vec<(Operator, Asn, Vec<f64>)> = vec![
            (
                Operator::Starlink,
                Asn(14593),
                sample(|r| r.normal_with(56.0, 8.0).max(25.0), 500, 1),
            ),
            (
                Operator::Starlink,
                Asn(27277),
                sample(|r| r.normal_with(18.0, 5.0).max(3.0), 300, 2),
            ),
            (
                Operator::Ses,
                Asn(201554),
                sample(|r| r.normal_with(650.0, 40.0), 300, 4),
            ),
            (
                Operator::Ses,
                Asn(12684),
                sample(
                    |r| {
                        if r.chance(0.45) {
                            r.normal_with(280.0, 30.0)
                        } else {
                            r.normal_with(680.0, 50.0)
                        }
                    },
                    600,
                    5,
                ),
            ),
            (
                Operator::Telalaska,
                Asn(10538),
                sample(
                    |r| {
                        if r.chance(0.35) {
                            r.normal_with(30.0, 8.0).max(5.0)
                        } else {
                            r.normal_with(680.0, 50.0)
                        }
                    },
                    600,
                    6,
                ),
            ),
            (Operator::Kacific, Asn(135409), vec![600.0; 10]),
        ];
        for (op, asn, latencies) in cases {
            let kde = profile_one(op, asn, &latencies, bands());
            let mut sketch = sno_stats::QuantileSketch::new();
            sketch.extend(latencies.iter().copied());
            let sk = profile_from_sketch(op, asn, &sketch, bands());
            assert_eq!(sk.tests, kde.tests, "{op:?}/{asn:?}");
            assert_eq!(
                std::mem::discriminant(&sk.verdict),
                std::mem::discriminant(&kde.verdict),
                "{op:?}/{asn:?}: sketch {:?} vs kde {:?}",
                sk.verdict,
                kde.verdict
            );
            // Band masses agree to sketch-bin resolution.
            assert!(
                (sk.expected_mass - kde.expected_mass).abs() < 0.01,
                "{op:?}/{asn:?}: expected mass {} vs {}",
                sk.expected_mass,
                kde.expected_mass
            );
            assert!(
                (sk.terrestrial_mass - kde.terrestrial_mass).abs() < 0.01,
                "{op:?}/{asn:?}: terrestrial mass {} vs {}",
                sk.terrestrial_mass,
                kde.terrestrial_mass
            );
        }
    }

    #[test]
    fn full_corpus_validation_flags_the_planted_anomalies() {
        let corpus =
            sno_synth::MlabGenerator::new(sno_synth::SynthConfig::test_corpus()).generate();
        let mapping = map_asns();
        let profiles = validate_asns(&mapping, &corpus.records, bands());
        let verdict_of = |asn: u32| {
            profiles
                .iter()
                .find(|p| p.asn == Asn(asn))
                .map(|p| p.verdict.clone())
                .unwrap()
        };
        // The subscriber ASNs hold up.
        assert_eq!(verdict_of(14593), AsnVerdict::Consistent);
        // The planted anomalies are caught.
        assert!(matches!(verdict_of(27277), AsnVerdict::Outlier(_)));
        assert!(matches!(verdict_of(201554), AsnVerdict::Outlier(_)));
        // TelAlaska's single ASN is recognisably mixed.
        assert!(matches!(
            verdict_of(10538),
            AsnVerdict::MixedWithinAsn(_) | AsnVerdict::Consistent
        ));
    }
}
