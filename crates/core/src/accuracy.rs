//! Scoring the pipeline against ground truth.
//!
//! The paper cannot quantify its methodology's accuracy ("lack of ground
//! truth", Section 3.4). The simulator can: the generators know each
//! record's true link kind, so the pipeline — which never sees that
//! truth — can be scored like a classifier. This module packages that
//! evaluation for tests, examples and the filtering ablation.

use crate::pipeline::PipelineReport;
use sno_types::{LinkKind, Operator};
use std::fmt;

/// Confusion counts for satellite-vs-not attribution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Confusion {
    /// Satellite record accepted (correct).
    pub true_positive: u64,
    /// Satellite record rejected (missed).
    pub false_negative: u64,
    /// Terrestrial/backup-mode record accepted (contamination).
    pub false_positive: u64,
    /// Terrestrial record rejected (correct).
    pub true_negative: u64,
}

impl Confusion {
    /// Fraction of genuine satellite records recovered.
    pub fn recall(&self) -> f64 {
        let denom = self.true_positive + self.false_negative;
        if denom == 0 {
            return 0.0;
        }
        self.true_positive as f64 / denom as f64
    }

    /// Fraction of accepted records that are genuinely satellite.
    pub fn precision(&self) -> f64 {
        let denom = self.true_positive + self.false_positive;
        if denom == 0 {
            return 0.0;
        }
        self.true_positive as f64 / denom as f64
    }

    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let (p, r) = (self.precision(), self.recall());
        if p + r == 0.0 {
            return 0.0;
        }
        2.0 * p * r / (p + r)
    }

    /// Total records scored.
    pub fn total(&self) -> u64 {
        self.true_positive + self.false_negative + self.false_positive + self.true_negative
    }
}

impl fmt::Display for Confusion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "precision {:.3}, recall {:.3}, f1 {:.3} (tp {}, fp {}, fn {}, tn {})",
            self.precision(),
            self.recall(),
            self.f1(),
            self.true_positive,
            self.false_positive,
            self.false_negative,
            self.true_negative
        )
    }
}

/// Is a ground-truth link kind "satellite traffic the pipeline should
/// keep"? Hybrid-backup lines count per-session: the satellite sessions
/// are generated with `LinkKind::Satellite`, the terrestrial/DSL modes
/// are what the pipeline is supposed to drop — but a `HybridBackup`
/// truth means the *record itself* rode the satellite backup, so it
/// counts as satellite.
pub fn is_satellite_truth(kind: LinkKind) -> bool {
    kind.touches_satellite()
}

/// Per-record ground truth: `(true operator, true link kind)`. Corpus
/// generators provide this (e.g. `sno-synth`'s `SessionTruth` converts
/// via `From`); the pipeline never sees it.
pub type Truth = (Operator, LinkKind);

/// Score a pipeline report against per-record ground truth.
///
/// # Panics
/// Panics if `truth` and `report.accepted` disagree in length (they must
/// describe the same record slice).
pub fn score(truth: &[Truth], report: &PipelineReport) -> Confusion {
    assert_eq!(
        truth.len(),
        report.accepted.len(),
        "truth and report must cover the same records"
    );
    let mut c = Confusion::default();
    for (&(_, kind), acc) in truth.iter().zip(&report.accepted) {
        match (is_satellite_truth(kind), acc.is_some()) {
            (true, true) => c.true_positive += 1,
            (true, false) => c.false_negative += 1,
            (false, true) => c.false_positive += 1,
            (false, false) => c.true_negative += 1,
        }
    }
    c
}

/// Per-operator attribution accuracy: of the records the pipeline
/// accepted, how many were attributed to their true operator?
pub fn attribution_accuracy(truth: &[Truth], report: &PipelineReport) -> f64 {
    let mut correct = 0u64;
    let mut accepted = 0u64;
    for (&(op_true, _), acc) in truth.iter().zip(&report.accepted) {
        if let Some(op) = acc {
            accepted += 1;
            if *op == op_true {
                correct += 1;
            }
        }
    }
    if accepted == 0 {
        0.0
    } else {
        correct as f64 / accepted as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Pipeline;
    use sno_synth::{MlabGenerator, SynthConfig};

    #[test]
    fn confusion_math() {
        let c = Confusion {
            true_positive: 90,
            false_negative: 10,
            false_positive: 5,
            true_negative: 95,
        };
        assert!((c.recall() - 0.9).abs() < 1e-12);
        assert!((c.precision() - 90.0 / 95.0).abs() < 1e-12);
        assert!(c.f1() > 0.9 && c.f1() < 0.95);
        assert_eq!(c.total(), 200);
        let text = c.to_string();
        assert!(text.contains("recall 0.900"), "{text}");
    }

    #[test]
    fn empty_confusion_is_zero_not_nan() {
        let c = Confusion::default();
        assert_eq!(c.recall(), 0.0);
        assert_eq!(c.precision(), 0.0);
        assert_eq!(c.f1(), 0.0);
    }

    fn truths(raw: &[sno_synth::mlab::SessionTruth]) -> Vec<Truth> {
        raw.iter().map(|t| (t.operator, t.kind)).collect()
    }

    #[test]
    fn pipeline_scores_well_on_the_synthetic_corpus() {
        let (corpus, raw) = MlabGenerator::new(SynthConfig::test_corpus()).generate_with_truth();
        let truth = truths(&raw);
        let report = Pipeline::new().run(&corpus.records);
        let c = score(&truth, &report);
        assert!(c.recall() > 0.9, "{c}");
        assert!(c.precision() > 0.95, "{c}");
        assert!(c.f1() > 0.92, "{c}");
        // Attribution: whatever is accepted lands on the right operator
        // (ASNs do not overlap between operators).
        assert_eq!(attribution_accuracy(&truth, &report), 1.0);
    }

    #[test]
    #[should_panic(expected = "same records")]
    fn mismatched_lengths_rejected() {
        let (corpus, raw) = MlabGenerator::new(SynthConfig::test_corpus()).generate_with_truth();
        let truth = truths(&raw);
        let report = Pipeline::new().run(&corpus.records);
        let _ = score(&truth[..truth.len() - 1], &report);
    }
}
