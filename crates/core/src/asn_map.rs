//! Stage 1–2: ASN→SNO mapping and manual curation.
//!
//! The paper starts from ASdb's "Satellite Communication" category (129
//! ASes in the real dataset; our facade carries the subset relevant to
//! the study plus distractors), notices that well-known operators like
//! Starlink and Viasat are missing, and recovers them by searching
//! Hurricane Electric's BGP toolkit by name. Visiting each candidate's
//! website then rejects the operators that are not consumer/enterprise
//! SNOs at all — in the paper more than half the candidates fall here.

use sno_registry::profile::operator_of_asn;
use sno_registry::sources::{asdb, hebgp, is_genuine_sno};
use sno_types::{Asn, Operator};
use std::collections::BTreeMap;

/// Popular operator names the paper searched for in Hurricane Electric
/// after noticing gaps in ASdb.
pub const HE_SEARCH_TERMS: &[&str] = &[
    "starlink", "viasat", "oneweb", "hughes", "intelsat", "eutelsat", "ses",
];

/// The outcome of the mapping stage.
#[derive(Debug, Clone)]
pub struct AsnMapping {
    /// Candidate ASNs before manual curation (ASdb ∪ HE search).
    pub candidates: Vec<Asn>,
    /// ASNs rejected by the website visit, with the business that got
    /// them rejected.
    pub rejected: Vec<(Asn, &'static str)>,
    /// The curated mapping: operator → its ASNs.
    pub mapping: BTreeMap<Operator, Vec<Asn>>,
}

impl AsnMapping {
    /// Total curated ASNs (the paper's 67).
    pub fn asn_count(&self) -> usize {
        self.mapping.values().map(Vec::len).sum()
    }

    /// Operators in the curated mapping (the paper's 41).
    pub fn operator_count(&self) -> usize {
        self.mapping.len()
    }

    /// The operator an ASN was mapped to.
    pub fn operator_of(&self, asn: Asn) -> Option<Operator> {
        self.mapping
            .iter()
            .find(|(_, asns)| asns.contains(&asn))
            .map(|(&op, _)| op)
    }
}

/// Run the mapping stage.
pub fn map_asns() -> AsnMapping {
    // Step 1a: everything ASdb files under Satellite Communication.
    let mut candidates: Vec<Asn> = asdb::satellite_ases().iter().map(|e| e.asn).collect();

    // Step 1b: recover operators ASdb missed via HE name search.
    for term in HE_SEARCH_TERMS {
        for asn in hebgp::search(term) {
            if !candidates.contains(&asn) {
                candidates.push(asn);
            }
        }
    }
    candidates.sort_unstable();
    candidates.dedup();

    // Step 2: manual curation — visit each website and reject
    // non-SNOs.
    let mut rejected = Vec::new();
    let mut mapping: BTreeMap<Operator, Vec<Asn>> = BTreeMap::new();
    for &asn in &candidates {
        match is_genuine_sno(asn) {
            // A registry inconsistency (an ASN one table vouches for and
            // another has never heard of) degrades to "unidentifiable"
            // instead of panicking mid-census.
            Some(true) => match operator_of_asn(asn) {
                Some(op) => mapping.entry(op).or_default().push(asn),
                None => rejected.push((asn, "unidentifiable")),
            },
            Some(false) => {
                let business = sno_registry::sources::DISTRACTORS
                    .iter()
                    .find(|d| d.asn == asn.0)
                    .map_or("unidentifiable", |d| d.actual_business);
                rejected.push((asn, business));
            }
            None => rejected.push((asn, "unidentifiable")),
        }
    }
    AsnMapping {
        candidates,
        rejected,
        mapping,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_the_papers_41_snos_and_67_asns() {
        let m = map_asns();
        assert_eq!(m.operator_count(), 41);
        assert_eq!(m.asn_count(), 67);
    }

    #[test]
    fn candidates_exceed_curated_set() {
        let m = map_asns();
        assert!(
            m.candidates.len() > m.asn_count(),
            "curation must reject something"
        );
        assert_eq!(m.candidates.len(), m.asn_count() + m.rejected.len());
    }

    #[test]
    fn starlink_recovered_despite_asdb_gap() {
        let m = map_asns();
        let starlink = &m.mapping[&Operator::Starlink];
        assert!(starlink.contains(&Asn(14593)));
        assert!(starlink.contains(&Asn(27277)));
        assert_eq!(m.mapping[&Operator::Viasat].len(), 10);
    }

    #[test]
    fn distractors_rejected_with_reasons() {
        let m = map_asns();
        assert!(m
            .rejected
            .iter()
            .any(|(_, why)| *why == "cable TV operator"));
        assert!(m
            .rejected
            .iter()
            .any(|(_, why)| *why == "teleport operator"));
        // No rejected ASN appears in the mapping.
        for (asn, _) in &m.rejected {
            assert!(m.operator_of(*asn).is_none());
        }
    }

    #[test]
    fn reverse_lookup_consistent() {
        let m = map_asns();
        assert_eq!(m.operator_of(Asn(14593)), Some(Operator::Starlink));
        assert_eq!(m.operator_of(Asn(60725)), Some(Operator::O3b));
        assert_eq!(m.operator_of(Asn(398101)), None);
    }
}
