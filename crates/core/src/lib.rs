//! The paper's primary contribution: identifying satellite network
//! operator (SNO) measurements inside public datasets, and the
//! orbit-level analyses built on the identified traffic.
//!
//! The pipeline follows Figure 1 of the paper stage by stage:
//!
//! 1. [`asn_map`] — build the ASN→SNO mapping from an ASdb-style
//!    category search plus Hurricane-Electric-style name search, then
//!    manually curate away the lookalikes (cable TV, teleports, fleet
//!    tracking);
//! 2. [`validate`] — check each ASN's latency KDE against the access
//!    technology its operator sells; flag corporate/terrestrial ASNs
//!    (Starlink AS27277), broken hybrids (SES AS201554) and ASNs mixing
//!    regimes internally (TelAlaska AS10538);
//! 3. [`prefix_filter`] — the strict per-`/24` filter (≥ 10 tests, all
//!    latencies inside the MEO > 200 ms / GEO > 500 ms bands), and the
//!    relaxed filter derived from it (per-operator minimum latency,
//!    527 ms default);
//! 4. [`pipeline`] — the end-to-end orchestration producing the SNO
//!    catalog (Table 1) and per-record acceptance, running columnar
//!    over struct-of-arrays [`sno_types::RecordBatch`]es with the
//!    per-ASN decision tables of [`accept`];
//! 5. [`stream`] — the same stages over a chunked record stream in
//!    bounded memory (per-chunk accumulators, a streamed accept pass,
//!    and a compact acceptance bitmap), byte-identical to the
//!    materialized run;
//! 6. [`online`] — the incremental service on top of [`stream`]: an
//!    [`OnlineIdentifier`] ingests chunks in arrival order, merges
//!    across shards, and snapshots through the same report path with
//!    verdicts byte-identical to the batch pipelines;
//! 7. [`analysis`] — the bird's-eye analyses of Section 4: latency
//!    distributions (Figure 3c), latency-over-time stability (4a),
//!    jitter variation (4b) and retransmissions with/without PEPs (4c).

pub mod accept;
pub mod accuracy;
pub mod analysis;
pub mod asn_map;
pub mod online;
pub mod pipeline;
pub mod prefix_filter;
pub mod stream;
pub mod validate;

pub use accept::{AcceptTable, AsnOps};
pub use accuracy::{attribution_accuracy, score, Confusion};
pub use analysis::{jitter_by_orbit, latency_by_operator, retransmissions, stability, OrbitGroup};
pub use asn_map::{map_asns, AsnMapping};
pub use online::{OnlineIdentifier, PopFlag};
pub use pipeline::{Pipeline, PipelineReport};
pub use prefix_filter::{relaxed_thresholds, strict_filter, StrictOutcome};
pub use stream::{AcceptBitmap, CorpusStats, StreamOptions, StreamedReport};
pub use validate::{validate_asns, AsnVerdict, LatencyBands};
