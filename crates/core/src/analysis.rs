//! Section 4's bird's-eye analyses over the identified traffic.
//!
//! Every function takes the original record slice plus the pipeline
//! report, so nothing here ever sees a record the identification stage
//! rejected.

use crate::pipeline::PipelineReport;
use sno_stats::{
    daily_medians, timeseries::daily_variation_p95, DailyPoint, Ecdf, FiveNumber, QuantileSketch,
};
use sno_types::records::NdtRecord;
use sno_types::{AccessKind, Operator, OrbitClass, RecordBatch};
use std::collections::BTreeMap;

/// The four transport populations of Figure 4c.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OrbitGroup {
    Leo,
    Meo,
    /// GEO operators running Performance Enhancing Proxies.
    GeoPep,
    /// All other GEO operators.
    GeoOther,
}

impl std::fmt::Display for OrbitGroup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            OrbitGroup::Leo => "LEO",
            OrbitGroup::Meo => "MEO",
            OrbitGroup::GeoPep => "GEO (PEP)",
            OrbitGroup::GeoOther => "GEO (others)",
        })
    }
}

/// The orbit a single accepted record rode on. SES records split by
/// latency (its MEO and GEO fleets share ASNs); everyone else follows
/// their advertised access.
pub fn orbit_of(op: Operator, record: &NdtRecord) -> OrbitClass {
    match sno_registry::sources::access_of(op) {
        AccessKind::Satellite(orbit) => orbit,
        AccessKind::MeoGeo => {
            if record.latency_p5.0 < 450.0 {
                OrbitClass::Meo
            } else {
                OrbitClass::Geo
            }
        }
    }
}

/// The Figure 4c population of a record.
pub fn orbit_group_of(op: Operator, record: &NdtRecord) -> OrbitGroup {
    match orbit_of(op, record) {
        OrbitClass::Leo => OrbitGroup::Leo,
        OrbitClass::Meo => OrbitGroup::Meo,
        OrbitClass::Geo => {
            if sno_registry::profile::profile_of(op).uses_pep {
                OrbitGroup::GeoPep
            } else {
                OrbitGroup::GeoOther
            }
        }
    }
}

/// Figure 3c: per-operator boxplot statistics of accepted access
/// latencies, sorted by median ascending.
pub fn latency_by_operator(
    records: &[NdtRecord],
    report: &PipelineReport,
) -> Vec<(Operator, FiveNumber)> {
    let mut by_op: BTreeMap<Operator, Vec<f64>> = BTreeMap::new();
    for (rec, acc) in records.iter().zip(&report.accepted) {
        if let Some(op) = acc {
            by_op.entry(*op).or_default().push(rec.latency_p5.0);
        }
    }
    latency_table(&by_op)
}

/// The Figure 3c table from already-bucketed accepted latencies (the
/// shape the streamed accept pass emits): per-operator boxplot
/// statistics sorted by median ascending.
pub fn latency_table(by_op: &BTreeMap<Operator, Vec<f64>>) -> Vec<(Operator, FiveNumber)> {
    let mut out: Vec<(Operator, FiveNumber)> = by_op
        .iter()
        .filter_map(|(&op, lat)| FiveNumber::of(lat).map(|s| (op, s)))
        .collect();
    out.sort_by(|a, b| a.1.median.total_cmp(&b.1.median));
    out
}

/// [`latency_table`] plus per-operator latency ECDFs from a *single*
/// sort per operator: the samples are sorted once and both the
/// five-number summary and the ECDF are built over the shared sorted
/// vector ([`FiveNumber::from_sorted`] / [`Ecdf::from_sorted`]), instead
/// of each constructor re-sorting its own copy.
pub fn latency_table_with_ecdfs(
    by_op: &BTreeMap<Operator, Vec<f64>>,
) -> (Vec<(Operator, FiveNumber)>, BTreeMap<Operator, Ecdf>) {
    let mut table = Vec::new();
    let mut ecdfs = BTreeMap::new();
    for (&op, lat) in by_op {
        let mut sorted = lat.clone();
        sorted.sort_by(f64::total_cmp);
        let Some(summary) = FiveNumber::from_sorted(&sorted) else {
            continue;
        };
        table.push((op, summary));
        if let Some(ecdf) = Ecdf::from_sorted(sorted) {
            ecdfs.insert(op, ecdf);
        }
    }
    table.sort_by(|a, b| a.1.median.total_cmp(&b.1.median));
    (table, ecdfs)
}

/// The Figure 3c table shape from per-operator streaming sketches (what
/// [`OnlineIdentifier`](crate::online::OnlineIdentifier) maintains):
/// counts, minima and maxima are exact, the quartiles carry the
/// sketch's bounded relative error. Sorted by median ascending, as
/// [`latency_table`].
pub fn latency_table_from_sketches(
    by_op: &BTreeMap<Operator, QuantileSketch>,
) -> Vec<(Operator, FiveNumber)> {
    let mut out: Vec<(Operator, FiveNumber)> = by_op
        .iter()
        .filter_map(|(&op, sketch)| FiveNumber::from_sketch(sketch).map(|s| (op, s)))
        .collect();
    out.sort_by(|a, b| a.1.median.total_cmp(&b.1.median));
    out
}

/// Figure 4a: daily latency medians for one operator, plus the paper's
/// "daily latency variation (95th %ile)" figure.
///
/// One full corpus scan per call — figure paths that need several
/// operators should use [`stability_by_operator`].
pub fn stability(
    records: &[NdtRecord],
    report: &PipelineReport,
    op: Operator,
) -> (Vec<DailyPoint>, Option<f64>) {
    let mut by_op = stability_by_operator(records, report, &[op]);
    by_op.remove(&op).unwrap_or_default()
}

/// [`stability`] for several operators in a single pass over the
/// corpus: samples are grouped per operator while scanning once, then
/// reduced to daily medians and the variation figure per operator.
pub fn stability_by_operator(
    records: &[NdtRecord],
    report: &PipelineReport,
    ops: &[Operator],
) -> BTreeMap<Operator, (Vec<DailyPoint>, Option<f64>)> {
    let mut samples: BTreeMap<Operator, Vec<(sno_types::Timestamp, f64)>> =
        ops.iter().map(|&op| (op, Vec::new())).collect();
    for (rec, acc) in records.iter().zip(&report.accepted) {
        if let Some(op) = acc {
            if let Some(bucket) = samples.get_mut(op) {
                bucket.push((rec.timestamp, rec.latency_p5.0));
            }
        }
    }
    samples
        .into_iter()
        .map(|(op, s)| {
            let daily = daily_medians(&s);
            let variation = daily_variation_p95(&daily);
            (op, (daily, variation))
        })
        .collect()
}

/// [`stability_by_operator`] over a columnar batch: the grouping pass
/// streams the timestamp and latency columns against the acceptance
/// vector instead of walking records. Output is identical to the row
/// variant over the reconstructed records (pinned by the test below
/// and `tests/columnar_determinism.rs`).
pub fn stability_by_operator_batch(
    batch: &RecordBatch,
    accepted: &[Option<Operator>],
    ops: &[Operator],
) -> BTreeMap<Operator, (Vec<DailyPoint>, Option<f64>)> {
    let mut samples: BTreeMap<Operator, Vec<(sno_types::Timestamp, f64)>> =
        ops.iter().map(|&op| (op, Vec::new())).collect();
    let timestamps = batch.timestamps();
    let latencies = batch.latency_p5();
    for ((acc, &ts), &lat) in accepted.iter().zip(timestamps).zip(latencies) {
        if let Some(op) = acc {
            if let Some(bucket) = samples.get_mut(op) {
                bucket.push((ts, lat));
            }
        }
    }
    samples
        .into_iter()
        .map(|(op, s)| {
            let daily = daily_medians(&s);
            let variation = daily_variation_p95(&daily);
            (op, (daily, variation))
        })
        .collect()
}

/// Figure 4b: jitter variation (`jitter_p95 / latency_p5`) samples per
/// orbit, plus the absolute jitter samples for the inset.
#[derive(Debug, Clone)]
pub struct JitterAnalysis {
    /// Relative jitter-variation samples per orbit.
    pub variation: BTreeMap<OrbitClass, Vec<f64>>,
    /// Absolute jitter (ms) samples per orbit.
    pub absolute: BTreeMap<OrbitClass, Vec<f64>>,
}

impl JitterAnalysis {
    /// Median jitter variation of one orbit, if sampled.
    pub fn median_variation(&self, orbit: OrbitClass) -> Option<f64> {
        sno_stats::median(self.variation.get(&orbit)?)
    }

    /// Fraction of one orbit's sessions with absolute jitter at or above
    /// `ms` (the inset's "over 80% of GEO at 100 ms or more").
    pub fn tail_at_least(&self, orbit: OrbitClass, ms: f64) -> Option<f64> {
        Ecdf::new(self.absolute.get(&orbit)?).map(|e| e.tail_at_least(ms))
    }
}

/// Compute Figure 4b's jitter populations.
pub fn jitter_by_orbit(records: &[NdtRecord], report: &PipelineReport) -> JitterAnalysis {
    let mut variation: BTreeMap<OrbitClass, Vec<f64>> = BTreeMap::new();
    let mut absolute: BTreeMap<OrbitClass, Vec<f64>> = BTreeMap::new();
    for (rec, acc) in records.iter().zip(&report.accepted) {
        if let Some(op) = acc {
            let orbit = orbit_of(*op, rec);
            variation
                .entry(orbit)
                .or_default()
                .push(rec.jitter_variation());
            absolute.entry(orbit).or_default().push(rec.jitter_p95.0);
        }
    }
    JitterAnalysis {
        variation,
        absolute,
    }
}

/// Figure 4c: retransmitted-byte fractions per transport population.
pub fn retransmissions(
    records: &[NdtRecord],
    report: &PipelineReport,
) -> BTreeMap<OrbitGroup, Vec<f64>> {
    let mut out: BTreeMap<OrbitGroup, Vec<f64>> = BTreeMap::new();
    for (rec, acc) in records.iter().zip(&report.accepted) {
        if let Some(op) = acc {
            out.entry(orbit_group_of(*op, rec))
                .or_default()
                .push(rec.retrans_fraction);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Pipeline;
    use sno_synth::{MlabCorpus, MlabGenerator, SynthConfig};
    use std::sync::OnceLock;

    fn fixture() -> &'static (MlabCorpus, PipelineReport) {
        static FIXTURE: OnceLock<(MlabCorpus, PipelineReport)> = OnceLock::new();
        FIXTURE.get_or_init(|| {
            let corpus = MlabGenerator::new(SynthConfig::test_corpus()).generate();
            let report = Pipeline::new().run(&corpus.records);
            (corpus, report)
        })
    }

    #[test]
    fn latency_ladder_matches_figure_3c() {
        let (corpus, report) = fixture();
        let table = latency_by_operator(&corpus.records, report);
        let median_of = |op: Operator| {
            table
                .iter()
                .find(|(o, _)| *o == op)
                .map(|(_, s)| s.median)
                .unwrap()
        };
        let starlink = median_of(Operator::Starlink);
        let oneweb = median_of(Operator::Oneweb);
        let o3b = median_of(Operator::O3b);
        let ssi = median_of(Operator::Ssi);
        let kvh = median_of(Operator::Kvh);
        assert!((40.0..80.0).contains(&starlink), "starlink {starlink}");
        assert!(starlink < oneweb, "starlink {starlink} oneweb {oneweb}");
        assert!(oneweb < o3b, "oneweb {oneweb} o3b {o3b}");
        assert!(o3b < ssi, "o3b {o3b} ssi {ssi}");
        assert!(ssi < kvh, "ssi {ssi} kvh {kvh}");
        assert!((550.0..730.0).contains(&ssi), "ssi {ssi}");
        assert!(kvh > 780.0, "kvh {kvh}");
    }

    #[test]
    fn shared_sort_table_matches_per_constructor_sorts() {
        let (corpus, report) = fixture();
        let mut by_op: BTreeMap<Operator, Vec<f64>> = BTreeMap::new();
        for (rec, acc) in corpus.records.iter().zip(&report.accepted) {
            if let Some(op) = acc {
                by_op.entry(*op).or_default().push(rec.latency_p5.0);
            }
        }
        let (table, ecdfs) = latency_table_with_ecdfs(&by_op);
        assert_eq!(table, latency_table(&by_op));
        assert_eq!(ecdfs.len(), by_op.len());
        for (op, lat) in &by_op {
            let fresh = Ecdf::new(lat).unwrap();
            let shared = &ecdfs[op];
            assert_eq!(shared.len(), fresh.len(), "{op:?}");
            assert_eq!(shared.steps(), fresh.steps(), "{op:?}");
        }
    }

    #[test]
    fn sketch_table_tracks_exact_table() {
        let (corpus, report) = fixture();
        let mut by_op: BTreeMap<Operator, Vec<f64>> = BTreeMap::new();
        let mut sketches: BTreeMap<Operator, QuantileSketch> = BTreeMap::new();
        for (rec, acc) in corpus.records.iter().zip(&report.accepted) {
            if let Some(op) = acc {
                by_op.entry(*op).or_default().push(rec.latency_p5.0);
                sketches.entry(*op).or_default().push(rec.latency_p5.0);
            }
        }
        let exact = latency_table(&by_op);
        let approx = latency_table_from_sketches(&sketches);
        assert_eq!(approx.len(), exact.len());
        let exact_of = |op: Operator| exact.iter().find(|(o, _)| *o == op).unwrap().1;
        for &(op, got) in &approx {
            let want = exact_of(op);
            assert_eq!(got.count, want.count, "{op:?}");
            assert_eq!(got.min, want.min, "{op:?}");
            assert_eq!(got.max, want.max, "{op:?}");
            let bound = QuantileSketch::RELATIVE_ERROR * want.max.abs() + 1e-12;
            for (g, w) in [
                (got.q1, want.q1),
                (got.median, want.median),
                (got.q3, want.q3),
            ] {
                assert!((g - w).abs() <= bound, "{op:?}: {g} vs {w} (bound {bound})");
            }
        }
    }

    #[test]
    fn geo_median_near_the_papers_673ms() {
        let (corpus, report) = fixture();
        let geo: Vec<f64> = corpus
            .records
            .iter()
            .zip(&report.accepted)
            .filter_map(|(rec, acc)| {
                let op = (*acc)?;
                (orbit_of(op, rec) == OrbitClass::Geo).then_some(rec.latency_p5.0)
            })
            .collect();
        let med = sno_stats::median(&geo).unwrap();
        assert!((600.0..760.0).contains(&med), "GEO median {med}");
    }

    #[test]
    fn stability_ranking_matches_figure_4a() {
        // Daily medians need daily volume; use a concentrated window so
        // each day holds a few dozen Starlink sessions (the full-scale
        // corpus has thousands per day).
        use sno_types::Date;
        let cfg = sno_synth::SynthConfig {
            mlab_start: Date::new(2022, 12, 1),
            mlab_end: Date::new(2022, 12, 31),
            ..sno_synth::SynthConfig::test_corpus()
        };
        let corpus = MlabGenerator::new(cfg).generate();
        let report = Pipeline::new().run(&corpus.records);
        let var = |op: Operator| stability(&corpus.records, &report, op).1.unwrap();
        let starlink = var(Operator::Starlink);
        let hughes = var(Operator::Hughes);
        assert!(
            starlink < 0.25,
            "Starlink daily variation should be small: {starlink}"
        );
        assert!(
            hughes > 2.0 * starlink,
            "HughesNet {hughes} vs Starlink {starlink}"
        );
    }

    #[test]
    fn grouped_stability_matches_single_operator_scans() {
        let (corpus, report) = fixture();
        let ops = [Operator::Starlink, Operator::Viasat];
        let grouped = stability_by_operator(&corpus.records, report, &ops);
        assert_eq!(grouped.len(), ops.len());
        for op in ops {
            let (daily, variation) = stability(&corpus.records, report, op);
            assert_eq!(grouped[&op].0, daily, "{op:?}");
            assert_eq!(grouped[&op].1, variation, "{op:?}");
        }
    }

    #[test]
    fn columnar_stability_matches_row_stability() {
        let (corpus, report) = fixture();
        let ops = [Operator::Starlink, Operator::Viasat, Operator::Hughes];
        let row = stability_by_operator(&corpus.records, report, &ops);
        let batch = RecordBatch::from_records(&corpus.records);
        let columnar = stability_by_operator_batch(&batch, &report.accepted, &ops);
        assert_eq!(columnar, row);
    }

    #[test]
    fn leo_jitter_variation_exceeds_geo() {
        let (corpus, report) = fixture();
        let j = jitter_by_orbit(&corpus.records, report);
        let leo = j.median_variation(OrbitClass::Leo).unwrap();
        let geo = j.median_variation(OrbitClass::Geo).unwrap();
        assert!(leo > geo, "leo {leo} vs geo {geo}");
        assert!((0.2..1.2).contains(&leo), "leo {leo}");
    }

    #[test]
    fn absolute_jitter_flips_the_comparison() {
        // The Figure 4b inset: GEO dominates in *absolute* jitter.
        let (corpus, report) = fixture();
        let j = jitter_by_orbit(&corpus.records, report);
        let geo_tail = j.tail_at_least(OrbitClass::Geo, 100.0).unwrap();
        let leo_tail = j.tail_at_least(OrbitClass::Leo, 100.0).unwrap();
        assert!(geo_tail > 0.5, "GEO ≥100 ms share {geo_tail}");
        assert!(leo_tail < 0.25, "LEO ≥100 ms share {leo_tail}");
        assert!(geo_tail > leo_tail);
    }

    #[test]
    fn pep_flattens_geo_retransmissions() {
        let (corpus, report) = fixture();
        let groups = retransmissions(&corpus.records, report);
        let med = |g: OrbitGroup| sno_stats::median(&groups[&g]).unwrap();
        let leo = med(OrbitGroup::Leo);
        let geo_pep = med(OrbitGroup::GeoPep);
        let geo_other = med(OrbitGroup::GeoOther);
        assert!(
            geo_other > 4.0 * geo_pep.max(0.002),
            "others {geo_other} vs pep {geo_pep}"
        );
        assert!(geo_pep < leo + 0.02, "pep {geo_pep} vs leo {leo}");
        assert!(
            (0.03..0.20).contains(&geo_other),
            "GEO (others) median {geo_other}"
        );
    }

    #[test]
    fn meo_retransmits_more_than_leo() {
        let (corpus, report) = fixture();
        let groups = retransmissions(&corpus.records, report);
        let leo = sno_stats::median(&groups[&OrbitGroup::Leo]).unwrap();
        let meo = sno_stats::median(&groups[&OrbitGroup::Meo]).unwrap();
        assert!(meo > leo, "meo {meo} vs leo {leo}");
    }
}
