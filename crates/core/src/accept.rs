//! Precomputed per-ASN decision tables for the columnar accept and
//! statistics passes.
//!
//! The row path re-derives the same facts for every record: a linear
//! [`AsnMapping::operator_of`] scan, a verdict lookup, the registry's
//! access kind, and the operator threshold. All of those are functions
//! of the ASN alone — only the final latency comparison needs the
//! record. This module folds the per-ASN work into sorted lookup
//! tables built once per pipeline run, so the per-record cost drops to
//! a binary search over ~67 ASNs plus one comparison, with decisions
//! *identical* to [`Pipeline::accept`](crate::pipeline::Pipeline)'s
//! row-at-a-time logic (pinned by the tests below and the columnar
//! determinism suites).

use crate::asn_map::AsnMapping;
use crate::prefix_filter::MEO_FLOOR_MS;
use crate::stream::{AcceptPass, StreamOptions};
use crate::validate::AsnVerdict;
use sno_types::{AccessKind, Asn, Operator, OrbitClass};
use std::collections::BTreeMap;

/// Sorted ASN→operator index: what [`AsnMapping::operator_of`] answers,
/// without the per-call linear scan. Ties (an ASN listed under two
/// operators) resolve to the first operator in mapping order, exactly
/// as the linear scan does.
#[derive(Debug, Clone)]
pub struct AsnOps {
    asns: Vec<Asn>,
    ops: Vec<Operator>,
    /// The operator for the *prefix-statistics* path: `None` for ASNs
    /// of LEO-including operators (identified at ASN granularity, so
    /// the strict prefix filter never sees them) as well as unmapped
    /// ASNs.
    prefix_ops: Vec<Option<Operator>>,
}

impl AsnOps {
    /// Build the index from a curated mapping.
    pub fn new(mapping: &AsnMapping) -> AsnOps {
        let mut pairs: Vec<(Asn, Operator)> = Vec::new();
        for (&op, asns) in &mapping.mapping {
            for &asn in asns {
                if !pairs.iter().any(|&(a, _)| a == asn) {
                    pairs.push((asn, op));
                }
            }
        }
        pairs.sort_by_key(|&(asn, _)| asn);
        let asns: Vec<Asn> = pairs.iter().map(|&(a, _)| a).collect();
        let ops: Vec<Operator> = pairs.iter().map(|&(_, op)| op).collect();
        let prefix_ops: Vec<Option<Operator>> = ops
            .iter()
            .map(|&op| {
                let access = sno_registry::sources::access_of(op);
                (!access.includes(OrbitClass::Leo)).then_some(op)
            })
            .collect();
        AsnOps {
            asns,
            ops,
            prefix_ops,
        }
    }

    /// The operator an ASN maps to (the indexed `operator_of`).
    pub fn get(&self, asn: Asn) -> Option<Operator> {
        let i = self.asns.binary_search(&asn).ok()?;
        Some(self.ops[i])
    }

    /// The operator an ASN contributes prefix statistics to: `None`
    /// for unmapped ASNs and LEO-including operators.
    pub fn prefix_op(&self, asn: Asn) -> Option<Operator> {
        let i = self.asns.binary_search(&asn).ok()?;
        self.prefix_ops[i]
    }
}

/// What to do with a record from one ASN, given only its latency.
#[derive(Debug, Clone, Copy, PartialEq)]
enum AsnRule {
    /// Unconditionally rejected (KDE outlier verdict).
    Reject,
    /// Unconditionally attributed (LEO: identified at ASN level).
    Accept(Operator),
    /// Attributed when `latency > floor` (the MEO regime cut).
    AboveExclusive(Operator, f64),
    /// Attributed when `latency >= threshold` (the relaxed GEO filter).
    AtLeast(Operator, f64),
}

/// The per-ASN accept table: stage 4's decision logic with everything
/// but the latency comparison precomputed.
///
/// Equality compares every rule bit-for-bit (thresholds included) —
/// the incremental path uses it as the *epoch trigger*: as long as the
/// table derived from the updated statistics equals the one acceptance
/// state was built under, previously decided records would decide the
/// same way today, so the state stays valid and only new frames need
/// deciding.
#[derive(Debug, Clone, PartialEq)]
pub struct AcceptTable {
    asns: Vec<Asn>,
    rules: Vec<AsnRule>,
}

impl AcceptTable {
    /// Build the table from the stage 1–3c outputs. One entry per
    /// curated ASN, rules mirroring `Pipeline::accept` comparison for
    /// comparison (strict `>` for the MEO floor, `>=` for relaxed
    /// thresholds).
    pub fn build(
        mapping: &AsnMapping,
        verdicts: &BTreeMap<Asn, AsnVerdict>,
        thresholds: &BTreeMap<Operator, f64>,
        default_threshold: f64,
    ) -> AcceptTable {
        let index = AsnOps::new(mapping);
        let rules: Vec<AsnRule> = index
            .asns
            .iter()
            .zip(&index.ops)
            .map(|(&asn, &op)| {
                if matches!(verdicts.get(&asn), Some(AsnVerdict::Outlier(_))) {
                    return AsnRule::Reject;
                }
                match sno_registry::sources::access_of(op) {
                    AccessKind::Satellite(OrbitClass::Leo) => AsnRule::Accept(op),
                    AccessKind::Satellite(OrbitClass::Meo) => {
                        AsnRule::AboveExclusive(op, MEO_FLOOR_MS)
                    }
                    _ => {
                        let threshold = thresholds.get(&op).copied().unwrap_or(default_threshold);
                        AsnRule::AtLeast(op, threshold)
                    }
                }
            })
            .collect();
        AcceptTable {
            asns: index.asns,
            rules,
        }
    }

    /// Decide one record from its ASN and p5 latency (ms).
    pub fn decide(&self, asn: Asn, latency_ms: f64) -> Option<Operator> {
        let i = self.asns.binary_search(&asn).ok()?;
        match self.rules[i] {
            AsnRule::Reject => None,
            AsnRule::Accept(op) => Some(op),
            AsnRule::AboveExclusive(op, floor) => (latency_ms > floor).then_some(op),
            AsnRule::AtLeast(op, threshold) => (latency_ms >= threshold).then_some(op),
        }
    }
}

/// Persistent acceptance state for the incremental online path.
///
/// Pass 2 of the streamed pipeline decides every record against the
/// [`AcceptTable`] derived from pass-1 statistics; replaying it per
/// snapshot costs O(corpus). `AcceptState` keeps the pass-2 outputs
/// (per-operator counts, [`AcceptBitmap`], optional dense vector and
/// per-operator samples) *across* snapshots, together with the exact
/// table they were decided under, so a snapshot only has to:
///
/// 1. re-derive the table from the updated statistics;
/// 2. if it equals the stored table ([`AcceptState::compatible`]),
///    absorb just the frames appended since `decided` — O(delta);
/// 3. otherwise bump the epoch ([`AcceptState::reset`]) and re-decide
///    the whole stream — the *bounded re-replay*: compacted frames
///    replay from their retained `(asn)` slots plus the cumulative
///    per-ASN latency buckets ([`AcceptState::replay_compacted`]),
///    resident frames through the normal chunked accept pass.
///
/// Because every row decision goes through
/// [`AcceptPass::decide_into`] in stream order, the state after any
/// schedule of steps 2–3 is byte-identical to one serial accept pass
/// over the full stream — the invariant the online determinism suite
/// pins.
#[derive(Debug, Clone, Default)]
pub struct AcceptState {
    /// Bumps every time the table shifted and the stream was re-decided.
    epoch: u64,
    /// The table the current pass state was decided under; `None` until
    /// the first snapshot (or after an invalidating merge).
    table: Option<AcceptTable>,
    /// The accept-pass outputs accumulated so far.
    pass: Option<AcceptPass>,
    /// Pass options the state was built under (dense vector and
    /// per-operator samples are shape-changing, so a flip invalidates).
    opts: StreamOptions,
    /// Frames decided so far — a high-water index into the record
    /// stream (compacted frames included).
    decided: usize,
}

impl AcceptState {
    /// A state that has decided nothing (first snapshot re-derives).
    pub fn new() -> AcceptState {
        AcceptState::default()
    }

    /// How many times the accept table shifted under this state,
    /// forcing a full re-decide. Starts at 0; the first snapshot
    /// always counts one.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Frames decided so far (high-water index into the stream).
    pub fn decided(&self) -> usize {
        self.decided
    }

    /// Can the current state absorb new frames under `table`, or must
    /// the stream be re-decided? True iff the freshly derived table
    /// equals the stored one and the pass shape (dense / latencies)
    /// matches.
    pub(crate) fn compatible(&self, table: &AcceptTable, opts: StreamOptions) -> bool {
        self.table.as_ref() == Some(table)
            && self.opts.dense_acceptance == opts.dense_acceptance
            && self.opts.operator_latencies == opts.operator_latencies
    }

    /// Start a new epoch under `table`: drop all decisions, keep the
    /// epoch counter monotone. The caller replays the stream from
    /// frame 0 afterwards.
    pub(crate) fn reset(&mut self, table: AcceptTable, opts: StreamOptions) {
        self.epoch += 1;
        self.pass = Some(AcceptPass::empty(opts));
        self.table = Some(table);
        self.opts = opts;
        self.decided = 0;
    }

    /// Forget the table (e.g. after a merge of differently-tabled
    /// shards): the next snapshot re-derives and re-decides.
    pub(crate) fn invalidate(&mut self) {
        self.table = None;
        self.pass = None;
        self.decided = 0;
    }

    /// Absorb an accept pass over `frames` stream frames appended after
    /// the `decided` high-water mark.
    pub(crate) fn absorb(&mut self, pass: AcceptPass, frames: usize) {
        match self.pass.as_mut() {
            Some(acc) => acc.absorb(pass),
            None => self.pass = Some(pass),
        }
        self.decided += frames;
    }

    /// Re-decide compacted frames from their retained ASN slots. The
    /// per-ASN latency buckets (`by_asn`) are cumulative and in record
    /// order, and the compacted slots are exactly the first
    /// `slots.len()` frames of the stream — so walking the slots with a
    /// per-ASN cursor replays the exact `(asn, latency)` sequence those
    /// frames carried, and `decide_into` rebuilds byte-identical pass
    /// state. Must run right after [`AcceptState::reset`], before any
    /// resident frames are absorbed.
    pub(crate) fn replay_compacted(&mut self, slots: &[u32], by_asn: &BTreeMap<Asn, Vec<f64>>) {
        let (Some(table), Some(pass)) = (self.table.as_ref(), self.pass.as_mut()) else {
            return;
        };
        debug_assert_eq!(self.decided, 0, "compacted frames replay first");
        let mut cursors: BTreeMap<Asn, usize> = BTreeMap::new();
        for &raw in slots {
            let asn = Asn(raw);
            let cursor = cursors.entry(asn).or_insert(0);
            // The bucket always covers the cursor by the compaction
            // invariant; NAN (which every rule rejects) keeps the walk
            // total if it ever does not.
            let lat = by_asn
                .get(&asn)
                .and_then(|lats| lats.get(*cursor))
                .copied()
                .unwrap_or(f64::NAN);
            debug_assert!(lat.is_finite(), "compacted slot past its ASN bucket");
            *cursor += 1;
            pass.decide_into(table, asn, lat);
        }
        self.decided = slots.len();
    }

    /// Merge a shard's state after this one (stream order: `self`'s
    /// frames precede `other`'s). Both shards must have been decided
    /// under the same table and pass shape, and both must be fully
    /// caught up with their streams — then concatenating the passes is
    /// exactly the serial pass over the concatenated stream. Returns
    /// `false` (and invalidates) when the tables differ, so the next
    /// snapshot re-derives from the merged statistics.
    pub(crate) fn merge(&mut self, other: AcceptState) -> bool {
        let same_table = match (&self.table, &other.table) {
            (Some(a), Some(b)) => a == b,
            _ => false,
        };
        if !same_table
            || self.opts.dense_acceptance != other.opts.dense_acceptance
            || self.opts.operator_latencies != other.opts.operator_latencies
        {
            self.invalidate();
            return false;
        }
        if let (Some(acc), Some(part)) = (self.pass.as_mut(), other.pass) {
            acc.absorb(part);
        }
        self.decided += other.decided;
        self.epoch = self.epoch.max(other.epoch);
        true
    }

    /// The accumulated pass outputs (None until the first snapshot).
    pub(crate) fn pass(&self) -> Option<&AcceptPass> {
        self.pass.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asn_map::map_asns;
    use sno_types::OrbitClass;

    #[test]
    fn index_matches_linear_operator_of() {
        let mapping = map_asns();
        let index = AsnOps::new(&mapping);
        // Every curated ASN, plus unmapped probes around them.
        for asns in mapping.mapping.values() {
            for &asn in asns {
                assert_eq!(index.get(asn), mapping.operator_of(asn), "{asn:?}");
                assert_eq!(
                    index.get(Asn(asn.0 + 1_000_000)),
                    mapping.operator_of(Asn(asn.0 + 1_000_000))
                );
            }
        }
        assert_eq!(index.get(Asn(398101)), None);
    }

    #[test]
    fn prefix_op_skips_leo_and_unmapped() {
        let mapping = map_asns();
        let index = AsnOps::new(&mapping);
        for asns in mapping.mapping.values() {
            for &asn in asns {
                let op = mapping.operator_of(asn).expect("curated");
                let expect =
                    (!sno_registry::sources::access_of(op).includes(OrbitClass::Leo)).then_some(op);
                assert_eq!(index.prefix_op(asn), expect, "{asn:?}");
            }
        }
        assert_eq!(index.prefix_op(Asn(398101)), None);
    }

    #[test]
    fn table_decisions_match_row_accept_on_a_real_corpus() {
        use crate::pipeline::Pipeline;
        let corpus = sno_synth::MlabGenerator::new(sno_synth::SynthConfig {
            scale: 5e-5,
            min_sessions: 40,
            ..sno_synth::SynthConfig::test_corpus()
        })
        .generate();
        let pipeline = Pipeline::new();
        let report = pipeline.run(&corpus.records);
        let verdict_of: BTreeMap<Asn, AsnVerdict> = report
            .profiles
            .iter()
            .map(|p| (p.asn, p.verdict.clone()))
            .collect();
        let table = AcceptTable::build(
            &report.mapping,
            &verdict_of,
            &report.thresholds,
            report.default_threshold,
        );
        for (rec, want) in corpus.records.iter().zip(&report.accepted) {
            let got = table.decide(rec.asn, rec.latency_p5.0);
            assert_eq!(got, *want, "{rec:?}");
            // And both agree with the row-at-a-time reference.
            let row = pipeline.accept(
                rec,
                &report.mapping,
                &verdict_of,
                &report.thresholds,
                report.default_threshold,
            );
            assert_eq!(got, row, "{rec:?}");
        }
    }

    #[test]
    fn latency_boundaries_follow_the_row_comparisons() {
        let mapping = map_asns();
        let verdicts = BTreeMap::new();
        let mut thresholds = BTreeMap::new();
        thresholds.insert(Operator::Viasat, 548.9);
        let table = AcceptTable::build(&mapping, &verdicts, &thresholds, 527.0);
        // Relaxed GEO thresholds are inclusive (>=).
        let viasat_asn = mapping.mapping[&Operator::Viasat][0];
        assert_eq!(table.decide(viasat_asn, 548.9), Some(Operator::Viasat));
        assert_eq!(table.decide(viasat_asn, 548.89), None);
        // The MEO floor is exclusive (>).
        let o3b_asn = mapping.mapping[&Operator::O3b][0];
        assert_eq!(table.decide(o3b_asn, MEO_FLOOR_MS), None);
        assert_eq!(
            table.decide(o3b_asn, MEO_FLOOR_MS + 0.001),
            Some(Operator::O3b)
        );
        // Unmapped ASNs never match.
        assert_eq!(table.decide(Asn(398101), 600.0), None);
    }
}
