//! Stage 4: the end-to-end pipeline and the SNO catalog (Table 1).

use crate::accept::AcceptTable;
use crate::asn_map::{map_asns, AsnMapping};
use crate::prefix_filter::{
    collect_strict, outlier_set, relaxed_thresholds, strict_eval_bucket,
    strict_filter_from_buckets, BucketOutcome, PrefixEntry, StrictOutcome, MEO_FLOOR_MS,
};
use crate::stream::CorpusStats;
use crate::validate::{profile_one, profiles_from_buckets, AsnProfile, AsnVerdict, LatencyBands};
use sno_types::records::NdtRecord;
use sno_types::{par, AccessKind, Asn, Operator, OrbitClass, Prefix24, RecordBatch};
use std::collections::{BTreeMap, BTreeSet};

/// The configured pipeline.
///
/// ```no_run
/// use sno_core::pipeline::Pipeline;
/// use sno_synth::{MlabGenerator, SynthConfig};
/// let corpus = MlabGenerator::new(SynthConfig::default_corpus()).generate();
/// let report = Pipeline::new().run(&corpus.records);
/// assert_eq!(report.sno_count(), 18); // the paper's Table 1
/// ```
#[derive(Debug, Clone, Default)]
pub struct Pipeline {
    /// Latency bands for the KDE validation stage.
    pub bands: LatencyBands,
    /// Worker threads for the sharded stages (`0` = all cores). The
    /// report is byte-identical at every setting; see `sno_types::par`.
    pub threads: usize,
}

/// Everything the pipeline produced.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// Stage 1–2 output.
    pub mapping: AsnMapping,
    /// Stage 3 output: per-ASN KDE profiles and verdicts.
    pub profiles: Vec<AsnProfile>,
    /// Stage 3b output.
    pub strict: StrictOutcome,
    /// Stage 3c: per-operator relaxed thresholds.
    pub thresholds: BTreeMap<Operator, f64>,
    /// Stage 3c: the default threshold for uncovered operators.
    pub default_threshold: f64,
    /// Per input record: the operator the record was attributed to, or
    /// `None` if rejected. Indexes match the input slice.
    pub accepted: Vec<Option<Operator>>,
    /// Stage 4: the catalog — operators with accepted tests, by volume
    /// descending (Table 1).
    pub catalog: Vec<(Operator, u64)>,
}

impl PipelineReport {
    /// Indices of the records attributed to `op`.
    ///
    /// One full scan per call — callers that need several operators
    /// should use [`PipelineReport::accepted_by_operator`] instead.
    pub fn accepted_indices(&self, op: Operator) -> Vec<usize> {
        self.accepted
            .iter()
            .enumerate()
            .filter_map(|(i, &a)| (a == Some(op)).then_some(i))
            .collect()
    }

    /// Per-operator accepted-record indices, grouped in one pass over
    /// the acceptance vector (each list ascending).
    pub fn accepted_by_operator(&self) -> BTreeMap<Operator, Vec<usize>> {
        let mut by_op: BTreeMap<Operator, Vec<usize>> = BTreeMap::new();
        for (i, acc) in self.accepted.iter().enumerate() {
            if let Some(op) = acc {
                by_op.entry(*op).or_default().push(i);
            }
        }
        by_op
    }

    /// Number of operators in the catalog.
    pub fn sno_count(&self) -> usize {
        self.catalog.len()
    }
}

/// The stage 3–3c outputs plus the per-ASN accept table they determine.
#[derive(Debug, Clone)]
pub(crate) struct DerivedStages {
    pub profiles: Vec<AsnProfile>,
    pub strict: StrictOutcome,
    pub thresholds: BTreeMap<Operator, f64>,
    pub default_threshold: f64,
    pub table: AcceptTable,
}

/// Incremental stage 3–3c derivation for the online path.
///
/// [`Pipeline::derive_stages`] recomputes every KDE profile and every
/// strict prefix bucket from scratch; at snapshot cadence that is the
/// O(corpus) cost the incremental identifier is built to avoid. The
/// cache exploits that both stages decompose into pure per-bucket
/// evaluations over *append-only* buckets:
///
/// - a per-ASN profile depends only on that ASN's latency bucket, so an
///   unchanged sample count means an unchanged profile;
/// - a strict `/24` outcome depends only on that bucket's samples and
///   the outlier-ASN set, so it is keyed on `(sample count, outlier
///   revision)`;
/// - relaxed thresholds and the accept table are cheap folds over the
///   above and are recomputed every call.
///
/// The whole derivation is additionally memoized on the caller's
/// statistics revision, making snapshots of an unchanged corpus O(1).
/// Results are byte-identical to [`Pipeline::derive_stages`] — same
/// bucket order, same per-bucket evaluation — pinned by the test below.
#[derive(Debug, Clone, Default)]
pub(crate) struct StageCache {
    /// Statistics revision the cached `stages` were derived at.
    rev: Option<u64>,
    stages: Option<DerivedStages>,
    /// `(operator, asn)` → (bucket length at profile time, profile).
    profile_memo: BTreeMap<(Operator, Asn), (usize, AsnProfile)>,
    /// `(operator, /24)` → (bucket length, outlier revision, outcome).
    strict_memo: BTreeMap<(Operator, Prefix24), (usize, u64, BucketOutcome)>,
    /// Bumped whenever the outlier-ASN set shifts (invalidates every
    /// strict-bucket memo entry at once).
    outlier_rev: u64,
    outliers: BTreeSet<Asn>,
}

impl StageCache {
    /// Stages 3–3c over `stats`, reusing every per-bucket result whose
    /// inputs did not change since the previous call. `rev` is the
    /// caller's statistics revision (bump it on every mutation).
    pub(crate) fn derive(
        &mut self,
        pipeline: &Pipeline,
        mapping: &AsnMapping,
        stats: &CorpusStats,
        rev: u64,
    ) -> DerivedStages {
        if self.rev == Some(rev) {
            if let Some(stages) = &self.stages {
                return stages.clone();
            }
        }

        // Stage 3: per-(operator, ASN) profiles. Buckets only append,
        // so an unchanged sample count implies an unchanged bucket, and
        // profile_one is a pure function of the bucket.
        let pairs: Vec<(Operator, Asn)> = mapping
            .mapping
            .iter()
            .flat_map(|(&op, asns)| asns.iter().map(move |&asn| (op, asn)))
            .collect();
        let bucket_len = |asn: Asn| stats.by_asn.get(&asn).map_or(0, Vec::len);
        let mut profiles: Vec<Option<AsnProfile>> = pairs
            .iter()
            .map(|&(op, asn)| {
                self.profile_memo
                    .get(&(op, asn))
                    .and_then(|(len, p)| (*len == bucket_len(asn)).then(|| p.clone()))
            })
            .collect();
        let missing: Vec<usize> = profiles
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.is_none().then_some(i))
            .collect();
        let fresh = par::shard_map(missing.len(), pipeline.threads, |k| {
            let (op, asn) = pairs[missing[k]];
            let latencies = stats.by_asn.get(&asn).map(Vec::as_slice).unwrap_or(&[]);
            profile_one(op, asn, latencies, pipeline.bands)
        });
        for (profile, &i) in fresh.into_iter().zip(&missing) {
            let (op, asn) = pairs[i];
            self.profile_memo
                .insert((op, asn), (bucket_len(asn), profile.clone()));
            profiles[i] = Some(profile);
        }
        let profiles: Vec<AsnProfile> = profiles.into_iter().flatten().collect();
        let verdict_of: BTreeMap<_, _> = profiles
            .iter()
            .map(|p| (p.asn, p.verdict.clone()))
            .collect();

        // Stage 3b: strict prefix filter, memoized per bucket. An
        // outcome can change only when its bucket grows or the outlier
        // set shifts.
        let outliers = outlier_set(&profiles);
        if outliers != self.outliers {
            self.outlier_rev += 1;
            self.outliers = outliers.clone();
        }
        let entries: Vec<PrefixEntry> = stats.by_prefix.iter().collect();
        let mut outcomes: Vec<Option<BucketOutcome>> = entries
            .iter()
            .map(|(key, samples)| {
                self.strict_memo.get(key).and_then(|(len, orev, out)| {
                    (*len == samples.len() && *orev == self.outlier_rev).then(|| out.clone())
                })
            })
            .collect();
        let missing: Vec<usize> = outcomes
            .iter()
            .enumerate()
            .filter_map(|(i, o)| o.is_none().then_some(i))
            .collect();
        let fresh = par::shard_map(missing.len(), pipeline.threads, |k| {
            let (&(op, prefix), samples) = entries[missing[k]];
            strict_eval_bucket(op, prefix, samples, &outliers)
        });
        for (outcome, &i) in fresh.into_iter().zip(&missing) {
            let (&key, samples) = entries[i];
            self.strict_memo
                .insert(key, (samples.len(), self.outlier_rev, outcome.clone()));
            outcomes[i] = Some(outcome);
        }
        let outcomes: Vec<BucketOutcome> = outcomes.into_iter().flatten().collect();
        let strict = collect_strict(&outcomes);

        // Stage 3c + accept table: cheap folds, recomputed every call.
        let (thresholds, default_threshold) = relaxed_thresholds(&strict);
        let table = AcceptTable::build(mapping, &verdict_of, &thresholds, default_threshold);
        let stages = DerivedStages {
            profiles,
            strict,
            thresholds,
            default_threshold,
            table,
        };
        self.rev = Some(rev);
        self.stages = Some(stages.clone());
        stages
    }
}

impl Pipeline {
    /// A pipeline with the default latency bands.
    pub fn new() -> Pipeline {
        Pipeline::default()
    }

    /// A pipeline with an explicit worker-thread count (`0` = all
    /// cores).
    pub fn with_threads(threads: usize) -> Pipeline {
        Pipeline {
            threads,
            ..Pipeline::default()
        }
    }

    /// Run all stages over an NDT corpus.
    ///
    /// Columnarizes the slice and delegates to [`Pipeline::run_batch`];
    /// both entry points produce byte-identical reports (pinned by
    /// `tests/columnar_determinism.rs`).
    // sno-lint: allow(panic-reachable): identification is total over validated batches; remaining reachable sites are leaf-justified length invariants in the columnar hot path
    pub fn run(&self, records: &[NdtRecord]) -> PipelineReport {
        self.run_batch(&RecordBatch::from_records(records))
    }

    /// Run all stages over a columnar batch.
    ///
    /// This is the hot path: statistics accumulate over dense columns,
    /// and the accept pass decides each record through a precomputed
    /// per-ASN [`AcceptTable`] instead of re-deriving mapping, verdict
    /// and threshold per row.
    // sno-lint: allow(panic-reachable): identification is total over validated batches; remaining reachable sites are leaf-justified length invariants in the columnar hot path
    pub fn run_batch(&self, batch: &RecordBatch) -> PipelineReport {
        // Stages 1–2: registry mapping + curation.
        let mapping = map_asns();
        // Shared statistics accumulation: one sharded pass builds both
        // the per-ASN and per-prefix buckets the next two stages need
        // (the streaming pipeline folds the same accumulator per chunk).
        let stats = CorpusStats::collect_batch(&mapping, batch, self.threads);
        // Stages 3–3c, folded into the per-ASN decision table.
        let stages = self.derive_stages(&mapping, &stats);

        // Stage 4: per-record acceptance, in record-order shards over
        // the ASN and latency columns.
        let asns = batch.asns();
        let latencies = batch.latency_p5();
        let accepted: Vec<Option<Operator>> =
            par::shard_map_chunks(batch.len(), 1024, self.threads, |_, range| {
                asns[range.clone()]
                    .iter()
                    .zip(&latencies[range])
                    .map(|(&asn, &lat)| stages.table.decide(asn, lat))
                    .collect()
            });

        let mut counts: BTreeMap<Operator, u64> = BTreeMap::new();
        for op in accepted.iter().flatten() {
            *counts.entry(*op).or_default() += 1;
        }
        let mut catalog: Vec<(Operator, u64)> = counts.into_iter().collect();
        catalog.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

        PipelineReport {
            mapping,
            profiles: stages.profiles,
            strict: stages.strict,
            thresholds: stages.thresholds,
            default_threshold: stages.default_threshold,
            accepted,
            catalog,
        }
    }

    /// Stages 3–3c over accumulated statistics, plus the accept table
    /// they determine (shared between the materialized and streamed
    /// paths).
    pub(crate) fn derive_stages(&self, mapping: &AsnMapping, stats: &CorpusStats) -> DerivedStages {
        // Stage 3: KDE validation.
        let profiles = profiles_from_buckets(mapping, &stats.by_asn, self.bands, self.threads);
        let verdict_of: BTreeMap<_, _> = profiles
            .iter()
            .map(|p| (p.asn, p.verdict.clone()))
            .collect();
        // Stage 3b: strict prefix filter.
        let strict = strict_filter_from_buckets(&profiles, &stats.by_prefix, self.threads);
        // Stage 3c: relaxed thresholds.
        let (thresholds, default_threshold) = relaxed_thresholds(&strict);
        let table = AcceptTable::build(mapping, &verdict_of, &thresholds, default_threshold);
        DerivedStages {
            profiles,
            strict,
            thresholds,
            default_threshold,
            table,
        }
    }

    /// Decide one record row-at-a-time: the reference implementation
    /// the per-ASN [`AcceptTable`] is checked against (the hot paths
    /// use the table).
    pub fn accept(
        &self,
        rec: &NdtRecord,
        mapping: &AsnMapping,
        verdicts: &BTreeMap<sno_types::Asn, AsnVerdict>,
        thresholds: &BTreeMap<Operator, f64>,
        default_threshold: f64,
    ) -> Option<Operator> {
        let op = mapping.operator_of(rec.asn)?;
        // ASNs whose latency profile contradicts the technology are out
        // wholesale (corporate networks, broken hybrids).
        if matches!(verdicts.get(&rec.asn), Some(AsnVerdict::Outlier(_))) {
            return None;
        }
        let access = sno_registry::sources::access_of(op);
        match access {
            // LEO operators are identified at ASN granularity; the KDE
            // stage already removed the bad ASNs.
            AccessKind::Satellite(OrbitClass::Leo) => Some(op),
            // The MEO operator likewise, with the regime floor as a
            // sanity cut.
            AccessKind::Satellite(OrbitClass::Meo) => {
                (rec.latency_p5.0 > MEO_FLOOR_MS).then_some(op)
            }
            // GEO and hybrid operators go through the relaxed filter.
            _ => {
                let threshold = thresholds.get(&op).copied().unwrap_or(default_threshold);
                (rec.latency_p5.0 >= threshold).then_some(op)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sno_synth::mlab::SessionTruth;
    use sno_synth::{MlabCorpus, MlabGenerator, SynthConfig};
    use sno_types::{Asn, LinkKind};
    use std::sync::OnceLock;

    fn fixture() -> &'static (MlabCorpus, Vec<SessionTruth>, PipelineReport) {
        static FIXTURE: OnceLock<(MlabCorpus, Vec<SessionTruth>, PipelineReport)> = OnceLock::new();
        FIXTURE.get_or_init(|| {
            let (corpus, truth) =
                MlabGenerator::new(SynthConfig::test_corpus()).generate_with_truth();
            let report = Pipeline::new().run(&corpus.records);
            (corpus, truth, report)
        })
    }

    #[test]
    fn catalog_has_the_papers_18_snos() {
        let (.., report) = fixture();
        assert_eq!(report.sno_count(), 18, "catalog: {:?}", report.catalog);
    }

    #[test]
    fn starlink_tops_the_catalog() {
        let (.., report) = fixture();
        assert_eq!(report.catalog[0].0, Operator::Starlink);
        // The other volume-floored operators cluster behind it; O3b must
        // stay in that leading pack with nearly all its records kept.
        let o3b_rank = report
            .catalog
            .iter()
            .position(|&(op, _)| op == Operator::O3b)
            .unwrap();
        assert!(o3b_rank <= 6, "O3b rank {o3b_rank}: {:?}", report.catalog);
        let (_, o3b_count) = report.catalog[o3b_rank];
        assert!(o3b_count > 250, "O3b kept only {o3b_count}");
    }

    #[test]
    fn corporate_asn_records_all_rejected() {
        let (corpus, _, report) = fixture();
        for (rec, acc) in corpus.records.iter().zip(&report.accepted) {
            if rec.asn == Asn(27277) {
                assert_eq!(*acc, None, "corporate record accepted: {rec:?}");
            }
        }
    }

    #[test]
    fn terrestrial_truth_records_mostly_rejected() {
        let (corpus, truth, report) = fixture();
        let mut wrong = 0usize;
        let mut total = 0usize;
        for ((rec, t), acc) in corpus.records.iter().zip(truth).zip(&report.accepted) {
            if t.kind == LinkKind::Terrestrial {
                total += 1;
                if acc.is_some() {
                    wrong += 1;
                    let _ = rec;
                }
            }
        }
        assert!(total > 50, "fixture should contain terrestrial lines");
        let fpr = wrong as f64 / total as f64;
        assert!(fpr < 0.05, "terrestrial false-accept rate {fpr}");
    }

    #[test]
    fn satellite_truth_records_mostly_accepted() {
        let (corpus, truth, report) = fixture();
        let mut missed = 0usize;
        let mut total = 0usize;
        for ((rec, t), acc) in corpus.records.iter().zip(truth).zip(&report.accepted) {
            if matches!(t.kind, LinkKind::Satellite(_)) && rec.asn != Asn(201554) {
                total += 1;
                if acc.is_none() {
                    missed += 1;
                }
            }
        }
        let fnr = missed as f64 / total as f64;
        assert!(fnr < 0.08, "satellite miss rate {fnr} over {total}");
    }

    #[test]
    fn accepted_operator_matches_truth_operator() {
        let (corpus, truth, report) = fixture();
        for ((rec, t), acc) in corpus.records.iter().zip(truth).zip(&report.accepted) {
            if let Some(op) = acc {
                assert_eq!(*op, t.operator, "record {rec:?} misattributed");
            }
        }
    }

    #[test]
    fn catalog_volumes_track_table1_ordering_at_the_top() {
        let (.., report) = fixture();
        let pos = |op: Operator| {
            report
                .catalog
                .iter()
                .position(|&(o, _)| o == op)
                .unwrap_or(usize::MAX)
        };
        assert!(pos(Operator::Starlink) < pos(Operator::Viasat));
        assert!(pos(Operator::O3b) < pos(Operator::Viasat));
        assert!(pos(Operator::Viasat) < pos(Operator::Kacific));
    }

    #[test]
    fn accepted_indices_helper() {
        let (corpus, _, report) = fixture();
        let idx = report.accepted_indices(Operator::Starlink);
        assert!(!idx.is_empty());
        for i in idx {
            assert_eq!(report.accepted[i], Some(Operator::Starlink));
            assert!(i < corpus.records.len());
        }
    }

    #[test]
    fn stage_cache_matches_fresh_derivation_at_every_step() {
        let corpus = MlabGenerator::new(SynthConfig {
            scale: 5e-5,
            min_sessions: 40,
            ..SynthConfig::test_corpus()
        })
        .generate();
        let mapping = map_asns();
        let pipeline = Pipeline::new();
        let mut cache = StageCache::default();
        let mut stats = CorpusStats::new();
        let mut rev = 0u64;
        let step = corpus.records.len() / 5 + 1;
        for chunk in corpus.records.chunks(step) {
            for rec in chunk {
                stats.observe(&mapping, rec);
            }
            rev += 1;
            let cached = cache.derive(&pipeline, &mapping, &stats, rev);
            let fresh = pipeline.derive_stages(&mapping, &stats);
            assert_eq!(cached.table, fresh.table);
            assert_eq!(cached.thresholds, fresh.thresholds);
            assert_eq!(
                cached.default_threshold.to_bits(),
                fresh.default_threshold.to_bits()
            );
            assert_eq!(
                format!("{:?}", cached.profiles),
                format!("{:?}", fresh.profiles)
            );
            assert_eq!(
                format!("{:?}", cached.strict),
                format!("{:?}", fresh.strict)
            );
            // Unchanged revision: the whole-derivation memo answers.
            let again = cache.derive(&pipeline, &mapping, &stats, rev);
            assert_eq!(again.table, cached.table);
            assert_eq!(
                format!("{:?}", again.strict),
                format!("{:?}", cached.strict)
            );
        }
    }

    #[test]
    fn grouped_indices_match_per_operator_scans() {
        let (.., report) = fixture();
        let grouped = report.accepted_by_operator();
        assert_eq!(grouped.len(), report.catalog.len());
        for &(op, count) in &report.catalog {
            assert_eq!(grouped[&op].len() as u64, count, "{op:?}");
            assert_eq!(grouped[&op], report.accepted_indices(op), "{op:?}");
        }
    }
}
