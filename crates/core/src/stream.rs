//! The streaming pipeline: bounded-memory identification over chunked
//! corpora.
//!
//! [`Pipeline::run`](crate::pipeline::Pipeline::run) materializes the
//! whole corpus and a dense per-record `Vec<Option<Operator>>`; at
//! paper scale (11.92 M sessions) neither fits comfortably in memory.
//! [`Pipeline::run_streamed`] reproduces the exact same report from a
//! re-streamable chunked source in two passes:
//!
//! 1. **Statistics pass** — every chunk is columnarized into a
//!    [`RecordBatch`] and folded into a [`CorpusStats`] accumulator
//!    (per-ASN latency samples for the KDE stage, per-`(operator, /24)`
//!    samples for the strict filter). Accumulators merge in shard
//!    order, so every bucket holds its samples in record order —
//!    byte-identical to the serial bucketing the materialized path
//!    performs.
//! 2. **Accept pass** — the records are streamed again and each is
//!    decided through the per-ASN [`AcceptTable`](crate::accept)
//!    derived from pass 1, emitting per-operator counts plus a compact
//!    [`AcceptBitmap`] (one bit per record) instead of the dense
//!    vector, unless the caller opts into it via [`StreamOptions`].
//!
//! By default pass 2 re-streams `source` (paying generation twice but
//! holding nothing). With [`StreamOptions::replay_encoded`] the first
//! pass also encodes every chunk into the compact binary corpus format
//! ([`sno_types::codec`], 52 bytes/record) and pass 2 replays those
//! bytes instead of regenerating — a memory-for-time trade the
//! bounded-corpus benchmarks opt into.
//!
//! Peak memory is the per-bucket statistics (latency samples, not
//! records) plus one generation wave — the corpus itself is never
//! resident (unless replay is requested). Equivalence with the
//! materialized path is pinned by `tests/stream_determinism.rs` at
//! chunk sizes {1, 1024, whole} × threads {1, 2, 8}, with and without
//! replay.

use crate::accept::{AcceptTable, AsnOps};
use crate::asn_map::{map_asns, AsnMapping};
use crate::pipeline::Pipeline;
use crate::prefix_filter::StrictOutcome;
use crate::validate::AsnProfile;
use sno_types::chunk::{self, RecordChunks};
use sno_types::codec;
use sno_types::records::NdtRecord;
use sno_types::{Asn, Operator, OrbitClass, Prefix24, RecordBatch};
use std::collections::BTreeMap;
use std::ops::Range;

/// Chunk length pass 2 decodes at when replaying an encoded corpus
/// (shared with the online identifier's snapshot replay).
pub(crate) const REPLAY_CHUNK_LEN: usize = 4096;

/// Per-chunk accumulator for the statistics pass: everything stages
/// 3–3c need, with the records themselves discarded.
#[derive(Debug, Clone, Default)]
pub struct CorpusStats {
    /// Records observed.
    pub records: usize,
    /// Per-ASN p5 latencies, in record order (KDE validation input).
    pub by_asn: BTreeMap<Asn, Vec<f64>>,
    /// Per-`(operator, /24)` samples for non-LEO operators, tagged with
    /// the source ASN so the strict filter can drop outlier ASNs after
    /// the KDE stage rules (strict-filter input).
    pub by_prefix: BTreeMap<(Operator, Prefix24), Vec<(Asn, f64)>>,
}

impl CorpusStats {
    /// An empty accumulator.
    pub fn new() -> CorpusStats {
        CorpusStats::default()
    }

    /// Fold one record in.
    pub fn observe(&mut self, mapping: &AsnMapping, rec: &NdtRecord) {
        self.records += 1;
        self.by_asn
            .entry(rec.asn)
            .or_default()
            .push(rec.latency_p5.0);
        let Some(op) = mapping.operator_of(rec.asn) else {
            return;
        };
        let access = sno_registry::sources::access_of(op);
        if access.includes(OrbitClass::Leo) {
            return; // LEO is identified at ASN level
        }
        self.by_prefix
            .entry((op, rec.client.prefix24()))
            .or_default()
            .push((rec.asn, rec.latency_p5.0));
    }

    /// Merge `other` (the later shard) into `self`, appending per-key
    /// samples so bucket order equals record order when accumulators
    /// merge in shard order.
    pub fn merge(mut self, other: CorpusStats) -> CorpusStats {
        self.records += other.records;
        for (asn, mut latencies) in other.by_asn {
            self.by_asn.entry(asn).or_default().append(&mut latencies);
        }
        for (key, mut samples) in other.by_prefix {
            self.by_prefix.entry(key).or_default().append(&mut samples);
        }
        self
    }

    /// Fold a range of batch rows in, column-wise. Buckets come out
    /// identical to row-at-a-time [`CorpusStats::observe`] calls over
    /// the same rows; the per-ASN mapping/access lookups go through the
    /// prebuilt sorted [`AsnOps`] index instead of a linear scan per
    /// record.
    pub fn observe_batch(&mut self, index: &AsnOps, batch: &RecordBatch, range: Range<usize>) {
        let asns = &batch.asns()[range.clone()];
        let latencies = &batch.latency_p5()[range.clone()];
        let clients = &batch.clients()[range];
        self.records += asns.len();
        for ((&asn, &lat), client) in asns.iter().zip(latencies).zip(clients) {
            self.by_asn.entry(asn).or_default().push(lat);
            if let Some(op) = index.prefix_op(asn) {
                self.by_prefix
                    .entry((op, client.prefix24()))
                    .or_default()
                    .push((asn, lat));
            }
        }
    }

    /// Accumulate over a materialized slice, in parallel shards merged
    /// in shard order — the same buckets a serial pass would build.
    pub fn collect(mapping: &AsnMapping, records: &[NdtRecord], threads: usize) -> CorpusStats {
        chunk::accumulate(
            records.len(),
            1024,
            threads,
            CorpusStats::new(),
            |_, range| {
                let mut stats = CorpusStats::new();
                for rec in &records[range] {
                    stats.observe(mapping, rec);
                }
                stats
            },
            CorpusStats::merge,
        )
    }

    /// Accumulate over a columnar batch, in parallel shards merged in
    /// shard order — the same buckets [`CorpusStats::collect`] builds
    /// from the equivalent row slice.
    pub fn collect_batch(mapping: &AsnMapping, batch: &RecordBatch, threads: usize) -> CorpusStats {
        let index = AsnOps::new(mapping);
        chunk::accumulate(
            batch.len(),
            1024,
            threads,
            CorpusStats::new(),
            |_, range| {
                let mut stats = CorpusStats::new();
                stats.observe_batch(&index, batch, range);
                stats
            },
            CorpusStats::merge,
        )
    }
}

/// What the accept pass should keep beyond the catalog.
#[derive(Debug, Clone, Copy, Default)]
pub struct StreamOptions {
    /// Also keep the dense per-record `Vec<Option<Operator>>` (as the
    /// materialized report carries). Off by default — the bitmap plus
    /// counts serve the catalog paths.
    pub dense_acceptance: bool,
    /// Collect accepted latency samples per operator (the Figure 3c
    /// input) during the accept pass.
    pub operator_latencies: bool,
    /// Encode the statistics pass into the compact binary corpus format
    /// and replay those bytes in the accept pass instead of re-running
    /// `source`. Trades ~52 bytes/record of resident memory for paying
    /// generation once — off by default so the constant-memory
    /// guarantee holds; benchmarks and bounded corpora opt in.
    pub replay_encoded: bool,
    /// Emit a heartbeat line to stderr every this many records per pass
    /// (`0` = silent). Heartbeats are record-count based — never
    /// wall-clock — so they cannot perturb determinism; they make a
    /// multi-minute `--scale 1` run observable.
    pub progress_every: usize,
}

/// A compact per-record acceptance map: one bit per record, in stream
/// order.
#[derive(Debug, Clone, Default)]
pub struct AcceptBitmap {
    words: Vec<u64>,
    len: usize,
}

impl AcceptBitmap {
    /// An empty bitmap.
    pub fn new() -> AcceptBitmap {
        AcceptBitmap::default()
    }

    /// Append one record's accept/reject bit.
    pub fn push(&mut self, accepted: bool) {
        let word = self.len / 64;
        if word == self.words.len() {
            self.words.push(0);
        }
        if accepted {
            self.words[word] |= 1 << (self.len % 64);
        }
        self.len += 1;
    }

    /// Was record `i` accepted?
    pub fn get(&self, i: usize) -> bool {
        i < self.len && self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Records recorded.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no records were recorded.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Accepted records.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Append `other`'s bits after this bitmap's, preserving order —
    /// the merge step when per-chunk bitmaps fold in chunk order. The
    /// result is bit-for-bit what pushing `other`'s bits one at a time
    /// would build, including at non-word-aligned boundaries.
    pub fn append(&mut self, other: &AcceptBitmap) {
        let shift = self.len % 64;
        if shift == 0 {
            self.words.extend_from_slice(&other.words);
            self.len += other.len;
            return;
        }
        for (i, &w) in other.words.iter().enumerate() {
            // shift != 0 implies a last word exists; `if let` keeps the
            // merge total instead of aborting on a broken invariant.
            if let Some(last) = self.words.last_mut() {
                *last |= w << shift;
            }
            // The high `shift` bits overflow into a fresh word — but
            // only when `other` actually has bits past this boundary.
            if i * 64 + (64 - shift) < other.len {
                self.words.push(w >> (64 - shift));
            }
        }
        self.len += other.len;
    }
}

/// Everything [`Pipeline::run_streamed`] produced. Field-for-field the
/// materialized [`PipelineReport`](crate::pipeline::PipelineReport),
/// except the dense acceptance vector is opt-in and the record count /
/// bitmap stand in for it.
#[derive(Debug, Clone)]
pub struct StreamedReport {
    /// Stage 1–2 output.
    pub mapping: AsnMapping,
    /// Stage 3 output: per-ASN KDE profiles and verdicts.
    pub profiles: Vec<AsnProfile>,
    /// Stage 3b output.
    pub strict: StrictOutcome,
    /// Stage 3c: per-operator relaxed thresholds.
    pub thresholds: BTreeMap<Operator, f64>,
    /// Stage 3c: the default threshold for uncovered operators.
    pub default_threshold: f64,
    /// Records streamed.
    pub records: usize,
    /// Stage 4: the catalog — operators with accepted tests, by volume
    /// descending (Table 1).
    pub catalog: Vec<(Operator, u64)>,
    /// Per-record accept bit, in stream order.
    pub bitmap: AcceptBitmap,
    /// The dense acceptance vector, when
    /// [`StreamOptions::dense_acceptance`] asked for it.
    pub accepted: Option<Vec<Option<Operator>>>,
    /// Accepted latency samples per operator, when
    /// [`StreamOptions::operator_latencies`] asked for them.
    pub latencies_by_operator: Option<BTreeMap<Operator, Vec<f64>>>,
}

impl StreamedReport {
    /// Number of operators in the catalog.
    pub fn sno_count(&self) -> usize {
        self.catalog.len()
    }

    /// Records the accept pass kept.
    pub fn accepted_count(&self) -> usize {
        self.bitmap.count_ones()
    }
}

impl Pipeline {
    /// Run all stages over a re-streamable chunked source in bounded
    /// memory. `source` is called once per pass (statistics, then
    /// accept) and must yield the same record stream both times —
    /// chunked generators rebuilt from a seed satisfy this by
    /// construction.
    ///
    /// The report is byte-identical to [`Pipeline::run`] over the
    /// materialized stream, at any chunk length and thread count.
    // sno-lint: allow(panic-reachable): identification is total over validated batches; remaining reachable sites are leaf-justified length invariants in the columnar hot path
    pub fn run_streamed<C, F>(&self, source: F, opts: StreamOptions) -> StreamedReport
    where
        C: RecordChunks<Item = NdtRecord>,
        F: Fn() -> C,
    {
        // Stages 1–2: registry mapping + curation.
        let mapping = map_asns();
        let index = AsnOps::new(&mapping);

        // Pass 1: columnarize each chunk and fold it into the
        // statistics accumulator, optionally encoding the stream for
        // replay. Chunks are mapped to per-chunk partials on the worker
        // pool and merged in chunk order on this thread, so every
        // bucket holds its samples in record order — byte-identical to
        // the serial fold at any thread count.
        let mut progress = Progress::new(opts.progress_every, "stats pass");
        let (stats, encoder) = chunk::par_fold_chunks(
            source(),
            self.threads,
            (
                CorpusStats::new(),
                opts.replay_encoded.then(codec::Encoder::new),
            ),
            |chunk| {
                let batch = RecordBatch::from_records(chunk);
                let mut part = CorpusStats::new();
                part.observe_batch(&index, &batch, 0..batch.len());
                let encoded = opts.replay_encoded.then(|| {
                    let mut enc = codec::Encoder::new();
                    enc.extend_records(chunk);
                    enc
                });
                (part, encoded)
            },
            |(stats, mut encoder), (part, part_enc)| {
                progress.advance(part.records);
                if let (Some(enc), Some(part_enc)) = (encoder.as_mut(), part_enc.as_ref()) {
                    enc.append(part_enc);
                }
                (stats.merge(part), encoder)
            },
        );

        // Stages 3–3c over the accumulated buckets, folded into the
        // per-ASN decision table. The buckets (one f64 per record) are
        // the dominant resident set at paper scale — release them
        // before pass 2 runs.
        let stages = self.derive_stages(&mapping, &stats);
        let total_records = stats.records;
        drop(stats);

        // Pass 2: decide each record — replaying the encoded bytes, or
        // re-streaming the source.
        let encoded = encoder.map(codec::Encoder::finish);
        let pass = match &encoded {
            Some(corpus) => accept_pass(
                &stages.table,
                corpus.chunks(REPLAY_CHUNK_LEN),
                opts,
                self.threads,
            ),
            None => accept_pass(&stages.table, source(), opts, self.threads),
        };
        debug_assert_eq!(pass.bitmap.len(), total_records, "source must re-stream");

        let mut catalog: Vec<(Operator, u64)> = pass.counts.into_iter().collect();
        catalog.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

        StreamedReport {
            mapping,
            profiles: stages.profiles,
            strict: stages.strict,
            thresholds: stages.thresholds,
            default_threshold: stages.default_threshold,
            records: total_records,
            catalog,
            bitmap: pass.bitmap,
            accepted: pass.dense,
            latencies_by_operator: pass.latencies,
        }
    }
}

/// Record-count heartbeat state for one streaming pass: prints to
/// stderr every `every` records (never wall-clock, so the lint's
/// determinism rules hold), silent when `every == 0`.
struct Progress {
    every: usize,
    label: &'static str,
    done: usize,
}

impl Progress {
    fn new(every: usize, label: &'static str) -> Progress {
        Progress {
            every,
            label,
            done: 0,
        }
    }

    fn advance(&mut self, records: usize) {
        if self.every == 0 {
            self.done += records;
            return;
        }
        let before = self.done / self.every;
        self.done += records;
        if self.done / self.every > before {
            eprintln!("    [{}] {} records", self.label, self.done);
        }
    }
}

/// What one accept pass over a chunked stream produced (shared with the
/// online identifier's snapshot path).
#[derive(Debug, Clone)]
pub(crate) struct AcceptPass {
    pub(crate) counts: BTreeMap<Operator, u64>,
    pub(crate) bitmap: AcceptBitmap,
    pub(crate) dense: Option<Vec<Option<Operator>>>,
    pub(crate) latencies: Option<BTreeMap<Operator, Vec<f64>>>,
}

impl AcceptPass {
    pub(crate) fn empty(opts: StreamOptions) -> AcceptPass {
        AcceptPass {
            counts: BTreeMap::new(),
            bitmap: AcceptBitmap::new(),
            dense: opts.dense_acceptance.then(Vec::new),
            latencies: opts
                .operator_latencies
                .then(BTreeMap::<Operator, Vec<f64>>::new),
        }
    }

    /// Fold `other` (the later chunk) in after `self`, preserving record
    /// order in the bitmap, dense vector, and per-operator samples.
    pub(crate) fn absorb(&mut self, other: AcceptPass) {
        for (op, n) in other.counts {
            *self.counts.entry(op).or_default() += n;
        }
        self.bitmap.append(&other.bitmap);
        if let (Some(dense), Some(mut other)) = (self.dense.as_mut(), other.dense) {
            dense.append(&mut other);
        }
        if let (Some(by_op), Some(other)) = (self.latencies.as_mut(), other.latencies) {
            for (op, mut samples) in other {
                by_op.entry(op).or_default().append(&mut samples);
            }
        }
    }

    /// Decide one record into this pass — the row body of
    /// [`accept_pass`], shared with the compacted-slot replay so both
    /// build byte-identical state.
    pub(crate) fn decide_into(&mut self, table: &AcceptTable, asn: Asn, lat: f64) {
        let decision = table.decide(asn, lat);
        self.bitmap.push(decision.is_some());
        if let Some(op) = decision {
            *self.counts.entry(op).or_default() += 1;
            if let Some(by_op) = self.latencies.as_mut() {
                by_op.entry(op).or_default().push(lat);
            }
        }
        if let Some(dense) = self.dense.as_mut() {
            dense.push(decision);
        }
    }

    /// Merge `other` (the later chunk) after `self` by value (the
    /// fold-step shape).
    fn merge(mut self, other: AcceptPass) -> AcceptPass {
        self.absorb(other);
        self
    }
}

/// Decide every record of a chunked stream through the per-ASN table,
/// column-wise per chunk. Chunks are decided on the worker pool and the
/// per-chunk partials merge in chunk order, so counts, bitmap, dense
/// vector, and per-operator samples are byte-identical to a serial pass
/// at every thread count.
pub(crate) fn accept_pass<C>(
    table: &AcceptTable,
    stream: C,
    opts: StreamOptions,
    threads: usize,
) -> AcceptPass
where
    C: RecordChunks<Item = NdtRecord>,
    C::Item: Sync,
{
    let mut progress = Progress::new(opts.progress_every, "accept pass");
    chunk::par_fold_chunks(
        stream,
        threads,
        AcceptPass::empty(opts),
        |chunk| {
            let batch = RecordBatch::from_records(chunk);
            let mut part = AcceptPass::empty(opts);
            for (&asn, &lat) in batch.asns().iter().zip(batch.latency_p5()) {
                part.decide_into(table, asn, lat);
            }
            part
        },
        |acc, part| {
            progress.advance(part.bitmap.len());
            acc.merge(part)
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sno_synth::{MlabGenerator, SynthConfig};
    use sno_types::chunk::slice_chunks;

    fn small_config() -> SynthConfig {
        SynthConfig {
            scale: 5e-5,
            min_sessions: 40,
            ..SynthConfig::test_corpus()
        }
    }

    #[test]
    fn bitmap_round_trips_bits() {
        let mut bitmap = AcceptBitmap::new();
        let pattern: Vec<bool> = (0..200).map(|i| i % 3 == 0 || i % 7 == 0).collect();
        for &bit in &pattern {
            bitmap.push(bit);
        }
        assert_eq!(bitmap.len(), pattern.len());
        assert!(!bitmap.is_empty());
        for (i, &bit) in pattern.iter().enumerate() {
            assert_eq!(bitmap.get(i), bit, "bit {i}");
        }
        assert!(!bitmap.get(pattern.len()));
        assert_eq!(bitmap.count_ones(), pattern.iter().filter(|&&b| b).count());
    }

    #[test]
    fn bitmap_append_matches_bitwise_push_at_any_alignment() {
        let pattern: Vec<bool> = (0..300).map(|i| i % 3 == 0 || i % 11 == 0).collect();
        // Split the pattern at every alignment class and a few long
        // tails; appending the halves must equal pushing every bit.
        for split in [0, 1, 5, 63, 64, 65, 128, 200, 300] {
            let mut left = AcceptBitmap::new();
            for &bit in &pattern[..split] {
                left.push(bit);
            }
            let mut right = AcceptBitmap::new();
            for &bit in &pattern[split..] {
                right.push(bit);
            }
            left.append(&right);
            assert_eq!(left.len(), pattern.len(), "split {split}");
            for (i, &bit) in pattern.iter().enumerate() {
                assert_eq!(left.get(i), bit, "split {split} bit {i}");
            }
            assert_eq!(
                left.count_ones(),
                pattern.iter().filter(|&&b| b).count(),
                "split {split}"
            );
        }
        // Repeated small appends (the per-chunk merge shape).
        let mut acc = AcceptBitmap::new();
        for piece in pattern.chunks(7) {
            let mut part = AcceptBitmap::new();
            for &bit in piece {
                part.push(bit);
            }
            acc.append(&part);
        }
        for (i, &bit) in pattern.iter().enumerate() {
            assert_eq!(acc.get(i), bit, "chunked bit {i}");
        }
    }

    #[test]
    fn corpus_stats_parallel_collect_matches_serial() {
        let corpus = MlabGenerator::new(small_config()).generate();
        let mapping = map_asns();
        let mut serial = CorpusStats::new();
        for rec in &corpus.records {
            serial.observe(&mapping, rec);
        }
        for threads in [1, 2, 8] {
            let par = CorpusStats::collect(&mapping, &corpus.records, threads);
            assert_eq!(par.records, serial.records, "threads {threads}");
            assert_eq!(par.by_asn, serial.by_asn, "threads {threads}");
            assert_eq!(par.by_prefix, serial.by_prefix, "threads {threads}");
        }
    }

    #[test]
    fn corpus_stats_batch_collect_matches_row_collect() {
        let corpus = MlabGenerator::new(small_config()).generate();
        let mapping = map_asns();
        let serial = CorpusStats::collect(&mapping, &corpus.records, 1);
        let batch = sno_types::RecordBatch::from_records(&corpus.records);
        for threads in [1, 2, 8] {
            let columnar = CorpusStats::collect_batch(&mapping, &batch, threads);
            assert_eq!(columnar.records, serial.records, "threads {threads}");
            assert_eq!(columnar.by_asn, serial.by_asn, "threads {threads}");
            assert_eq!(columnar.by_prefix, serial.by_prefix, "threads {threads}");
        }
    }

    #[test]
    fn encoded_replay_matches_restreamed_pass() {
        let corpus = MlabGenerator::new(small_config()).generate();
        let opts_base = StreamOptions {
            dense_acceptance: true,
            operator_latencies: true,
            ..StreamOptions::default()
        };
        let restreamed =
            Pipeline::new().run_streamed(|| slice_chunks(&corpus.records, 512), opts_base);
        let replayed = Pipeline::new().run_streamed(
            || slice_chunks(&corpus.records, 512),
            StreamOptions {
                replay_encoded: true,
                ..opts_base
            },
        );
        assert_eq!(replayed.records, restreamed.records);
        assert_eq!(replayed.catalog, restreamed.catalog);
        assert_eq!(replayed.accepted, restreamed.accepted);
        assert_eq!(
            replayed.latencies_by_operator,
            restreamed.latencies_by_operator
        );
        for i in 0..restreamed.records {
            assert_eq!(replayed.bitmap.get(i), restreamed.bitmap.get(i), "bit {i}");
        }
    }

    #[test]
    fn streamed_report_matches_materialized_run() {
        let corpus = MlabGenerator::new(small_config()).generate();
        let materialized = Pipeline::new().run(&corpus.records);
        for chunk_len in [1usize, 1024, corpus.records.len()] {
            let streamed = Pipeline::new().run_streamed(
                || slice_chunks(&corpus.records, chunk_len),
                StreamOptions {
                    dense_acceptance: true,
                    ..StreamOptions::default()
                },
            );
            assert_eq!(streamed.records, corpus.records.len());
            assert_eq!(streamed.catalog, materialized.catalog, "chunk {chunk_len}");
            assert_eq!(
                streamed.default_threshold, materialized.default_threshold,
                "chunk {chunk_len}"
            );
            assert_eq!(
                streamed.thresholds, materialized.thresholds,
                "chunk {chunk_len}"
            );
            assert_eq!(
                streamed.strict.examined, materialized.strict.examined,
                "chunk {chunk_len}"
            );
            assert_eq!(
                streamed.accepted.as_deref(),
                Some(materialized.accepted.as_slice()),
                "chunk {chunk_len}"
            );
            for (i, acc) in materialized.accepted.iter().enumerate() {
                assert_eq!(streamed.bitmap.get(i), acc.is_some(), "bit {i}");
            }
        }
    }

    #[test]
    fn streamed_chunked_generation_matches_materialized_run() {
        let config = small_config();
        let corpus = MlabGenerator::new(config.clone()).generate();
        let materialized = Pipeline::new().run(&corpus.records);
        let generator = MlabGenerator::new(config);
        let streamed = Pipeline::new().run_streamed(
            || generator.generate_chunks(512),
            StreamOptions {
                operator_latencies: true,
                ..StreamOptions::default()
            },
        );
        assert_eq!(streamed.catalog, materialized.catalog);
        assert!(streamed.accepted.is_none());
        // The per-operator latency samples match a dense-scan rebuild.
        let by_op = streamed.latencies_by_operator.expect("requested");
        let mut expect: BTreeMap<Operator, Vec<f64>> = BTreeMap::new();
        for (rec, acc) in corpus.records.iter().zip(&materialized.accepted) {
            if let Some(op) = acc {
                expect.entry(*op).or_default().push(rec.latency_p5.0);
            }
        }
        assert_eq!(by_op, expect);
    }
}
