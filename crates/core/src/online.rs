//! The online identification service: incremental ingest with
//! snapshot-on-demand reporting.
//!
//! The batch pipelines ([`Pipeline::run`] and [`Pipeline::run_streamed`])
//! assume the corpus is complete before stage 3 runs. A continuously
//! operating service instead receives measurement chunks in arrival-time
//! order and must answer "who are the SNOs right now?" at any point. The
//! [`OnlineIdentifier`] supports exactly that:
//!
//! * **Ingest** — each arriving chunk is columnarized and folded into the
//!   same [`CorpusStats`] accumulator the streamed pipeline uses (per-ASN
//!   latency buckets for KDE validation, per-`(operator, /24)` buckets
//!   for the strict filter), appended to a compact codec replay log
//!   (~52 bytes/record), and tracked in per-operator latency sketches and
//!   `(timestamp, latency)` buckets for the PoP-change flags. Every
//!   ingest step is O(chunk), never O(corpus).
//! * **Merge** — identifiers built over disjoint shards of a stream merge
//!   in shard order into the exact state serial ingest would have built:
//!   `CorpusStats::merge` appends buckets, the replay logs concatenate
//!   byte-wise, and the [`QuantileSketch`]es are ingest-order-invariant
//!   by construction. This is what lets `sno_types::par` shard the ingest
//!   across threads without changing a single output byte.
//! * **Snapshot** — [`OnlineIdentifier::snapshot`] derives stages 3–3c
//!   from the accumulated statistics (the KDE validation and latency
//!   filters over the current window) and replays the log through the
//!   shared accept pass, producing a [`StreamedReport`] byte-identical to
//!   [`Pipeline::run_streamed`] over the same records — online verdicts
//!   *are* batch verdicts, pinned by `tests/online_determinism.rs`.
//!
//! With a sliding window ([`OnlineIdentifier::with_window`]), snapshots
//! first drop records older than `window_secs` behind the newest
//! timestamp seen, re-deriving the statistics from the retained log —
//! the unwindowed default keeps the whole stream and therefore matches
//! the batch report exactly.

use crate::accept::AsnOps;
use crate::asn_map::{map_asns, AsnMapping};
use crate::pipeline::Pipeline;
use crate::stream::{accept_pass, CorpusStats, StreamOptions, StreamedReport, REPLAY_CHUNK_LEN};
use sno_stats::{daily_medians, OnlineShiftDetector, QuantileSketch, Shift};
use sno_types::records::NdtRecord;
use sno_types::{codec, Operator, RecordBatch, Timestamp, UtcDay};
use std::collections::BTreeMap;

/// An incrementally flagged PoP-style level shift in one operator's
/// daily-median latency series.
#[derive(Debug, Clone, PartialEq)]
pub struct PopFlag {
    /// The operator whose series shifted.
    pub operator: Operator,
    /// The first day after the change.
    pub day: UtcDay,
    /// The underlying mean shift (indices into the daily-median series).
    pub shift: Shift,
}

/// Incremental SNO identification over an arriving measurement stream.
/// See the module docs for the state layout and merge contract.
#[derive(Debug, Clone)]
pub struct OnlineIdentifier {
    pipeline: Pipeline,
    mapping: AsnMapping,
    index: AsnOps,
    stats: CorpusStats,
    log: codec::Encoder,
    window_secs: Option<u64>,
    latest: Option<Timestamp>,
    by_operator: BTreeMap<Operator, Vec<(Timestamp, f64)>>,
    sketches: BTreeMap<Operator, QuantileSketch>,
}

impl OnlineIdentifier {
    /// An identifier that keeps the whole stream (snapshots equal batch
    /// reports over everything ingested).
    pub fn new(pipeline: Pipeline) -> OnlineIdentifier {
        let mapping = map_asns();
        let index = AsnOps::new(&mapping);
        OnlineIdentifier {
            pipeline,
            mapping,
            index,
            stats: CorpusStats::new(),
            log: codec::Encoder::new(),
            window_secs: None,
            latest: None,
            by_operator: BTreeMap::new(),
            sketches: BTreeMap::new(),
        }
    }

    /// An identifier whose snapshots only consider records within
    /// `window_secs` of the newest timestamp ingested (a sliding
    /// window over near-time-ordered arrivals).
    pub fn with_window(pipeline: Pipeline, window_secs: u64) -> OnlineIdentifier {
        OnlineIdentifier {
            window_secs: Some(window_secs),
            ..OnlineIdentifier::new(pipeline)
        }
    }

    /// Ingest one chunk of records in arrival order.
    // sno-lint: allow(panic-reachable): identification is total over validated batches; remaining reachable sites are leaf-justified length invariants in the columnar hot path
    pub fn ingest(&mut self, records: &[NdtRecord]) {
        let batch = RecordBatch::from_records(records);
        self.stats
            .observe_batch(&self.index, &batch, 0..batch.len());
        self.log.extend_records(records);
        self.track(&batch);
    }

    /// Ingest one columnar batch in arrival order.
    // sno-lint: allow(panic-reachable): identification is total over validated batches; remaining reachable sites are leaf-justified length invariants in the columnar hot path
    pub fn ingest_batch(&mut self, batch: &RecordBatch) {
        self.stats.observe_batch(&self.index, batch, 0..batch.len());
        for i in 0..batch.len() {
            self.log.push(&batch.record(i));
        }
        self.track(batch);
    }

    /// Per-record tracking shared by the ingest paths: newest timestamp,
    /// per-operator PoP-flag samples and latency sketches.
    fn track(&mut self, batch: &RecordBatch) {
        let timestamps = batch.timestamps();
        let latencies = batch.latency_p5();
        for ((&ts, &asn), &lat) in timestamps.iter().zip(batch.asns()).zip(latencies) {
            if self.latest.is_none_or(|t| ts > t) {
                self.latest = Some(ts);
            }
            if let Some(op) = self.index.get(asn) {
                self.by_operator.entry(op).or_default().push((ts, lat));
                self.sketches.entry(op).or_default().push(lat);
            }
        }
    }

    /// Merge another identifier (built over the *following* shard of the
    /// stream) into this one. Merging per-shard identifiers in shard
    /// order reproduces serial ingest exactly — state and snapshots are
    /// byte-identical.
    // sno-lint: allow(panic-reachable): identification is total over validated batches; remaining reachable sites are leaf-justified length invariants in the columnar hot path
    pub fn merge(&mut self, other: OnlineIdentifier) {
        debug_assert_eq!(
            self.window_secs, other.window_secs,
            "merged identifiers must share a window"
        );
        self.stats = std::mem::take(&mut self.stats).merge(other.stats);
        self.log.append(&other.log);
        if let Some(ts) = other.latest {
            if self.latest.is_none_or(|t| ts > t) {
                self.latest = Some(ts);
            }
        }
        for (op, mut samples) in other.by_operator {
            self.by_operator.entry(op).or_default().append(&mut samples);
        }
        for (op, sketch) in other.sketches {
            self.sketches.entry(op).or_default().merge(&sketch);
        }
    }

    /// Records ingested so far (the replay log's length).
    pub fn ingested(&self) -> usize {
        self.log.len()
    }

    /// True when nothing has been ingested.
    pub fn is_empty(&self) -> bool {
        self.log.is_empty()
    }

    /// The newest timestamp ingested.
    pub fn latest(&self) -> Option<Timestamp> {
        self.latest
    }

    /// Per-operator streaming latency sketches over every *mapped*
    /// record (stage 1–2 attribution, before per-record filtering) —
    /// the input to `analysis::latency_table_from_sketches`.
    pub fn latency_sketches(&self) -> &BTreeMap<Operator, QuantileSketch> {
        &self.sketches
    }

    /// Render the current state through the standard report path. The
    /// report is byte-identical to [`Pipeline::run_streamed`] over the
    /// same records (the whole stream, or the sliding window if one was
    /// configured). `opts.replay_encoded` is moot here — snapshots
    /// always replay the internal log.
    // sno-lint: allow(panic-reachable): identification is total over validated batches; remaining reachable sites are leaf-justified length invariants in the columnar hot path
    pub fn snapshot(&self, opts: StreamOptions) -> StreamedReport {
        let (stats, corpus) = match self.window_cutoff() {
            None => (self.stats.clone(), self.log.clone().finish()),
            Some(cutoff) => self.windowed_state(cutoff),
        };
        let stages = self.pipeline.derive_stages(&self.mapping, &stats);
        let pass = accept_pass(
            &stages.table,
            corpus.chunks(REPLAY_CHUNK_LEN),
            opts,
            self.pipeline.threads,
        );
        let mut catalog: Vec<(Operator, u64)> = pass.counts.into_iter().collect();
        catalog.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        StreamedReport {
            mapping: self.mapping.clone(),
            profiles: stages.profiles,
            strict: stages.strict,
            thresholds: stages.thresholds,
            default_threshold: stages.default_threshold,
            records: stats.records,
            catalog,
            bitmap: pass.bitmap,
            accepted: pass.dense,
            latencies_by_operator: pass.latencies,
        }
    }

    /// The oldest timestamp a windowed snapshot keeps, if a window is
    /// configured and anything has been ingested.
    fn window_cutoff(&self) -> Option<u64> {
        let window = self.window_secs?;
        let latest = self.latest?;
        Some(latest.0.saturating_sub(window))
    }

    /// Rebuild statistics and replay log from the records at or after
    /// `cutoff` — the sliding-window view of the stream.
    fn windowed_state(&self, cutoff: u64) -> (CorpusStats, codec::EncodedCorpus) {
        use sno_types::chunk::RecordChunks;
        let full = self.log.clone().finish();
        let mut enc = codec::Encoder::new();
        let mut stats = CorpusStats::new();
        let mut chunks = full.chunks(REPLAY_CHUNK_LEN);
        while let Some(chunk) = chunks.next_chunk() {
            let kept: Vec<NdtRecord> = chunk
                .into_iter()
                .filter(|r| r.timestamp.0 >= cutoff)
                .collect();
            if kept.is_empty() {
                continue;
            }
            let batch = RecordBatch::from_records(&kept);
            stats.observe_batch(&self.index, &batch, 0..batch.len());
            enc.extend_records(&kept);
        }
        (stats, enc.finish())
    }

    /// Incrementally flagged PoP-style level shifts: per operator, the
    /// daily-median latency series of every mapped record is replayed
    /// through the online changepoint detector with the given
    /// thresholds. Flags are sorted by operator, then day.
    pub fn pop_flags(&self, min_shift_ms: f64, min_segment: usize) -> Vec<PopFlag> {
        let mut flags = Vec::new();
        for (&op, samples) in &self.by_operator {
            let daily = daily_medians(samples);
            if daily.len() < 2 * min_segment {
                continue;
            }
            let mut detector = OnlineShiftDetector::new(min_shift_ms, min_segment);
            for point in &daily {
                detector.push(point.median);
            }
            for shift in detector.shifts() {
                flags.push(PopFlag {
                    operator: op,
                    day: daily[shift.index].day,
                    shift,
                });
            }
        }
        flags
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sno_types::chunk::{slice_chunks, RecordChunks};
    use sno_types::{Asn, Ipv4, Mbps, Millis};

    fn small_config() -> sno_synth::SynthConfig {
        sno_synth::SynthConfig {
            scale: 5e-5,
            min_sessions: 40,
            ..sno_synth::SynthConfig::test_corpus()
        }
    }

    fn corpus() -> Vec<NdtRecord> {
        sno_synth::MlabGenerator::new(small_config())
            .generate()
            .records
    }

    fn assert_reports_equal(a: &StreamedReport, b: &StreamedReport) {
        assert_eq!(a.records, b.records);
        assert_eq!(a.catalog, b.catalog);
        assert_eq!(a.thresholds, b.thresholds);
        assert_eq!(a.default_threshold, b.default_threshold);
        assert_eq!(a.accepted, b.accepted);
        assert_eq!(a.latencies_by_operator, b.latencies_by_operator);
        assert_eq!(a.strict.examined, b.strict.examined);
        for i in 0..a.records {
            assert_eq!(a.bitmap.get(i), b.bitmap.get(i), "bit {i}");
        }
    }

    #[test]
    fn snapshot_matches_streamed_pipeline() {
        let records = corpus();
        let opts = StreamOptions {
            dense_acceptance: true,
            operator_latencies: true,
            ..StreamOptions::default()
        };
        let batch_report = Pipeline::new().run_streamed(|| slice_chunks(&records, 512), opts);
        let mut online = OnlineIdentifier::new(Pipeline::new());
        let mut stream = slice_chunks(&records, 512);
        while let Some(chunk) = stream.next_chunk() {
            online.ingest(&chunk);
        }
        assert_eq!(online.ingested(), records.len());
        assert_reports_equal(&online.snapshot(opts), &batch_report);
    }

    #[test]
    fn batch_ingest_matches_row_ingest() {
        let records = corpus();
        let mut rows = OnlineIdentifier::new(Pipeline::new());
        let mut batches = OnlineIdentifier::new(Pipeline::new());
        for chunk in records.chunks(777) {
            rows.ingest(chunk);
            batches.ingest_batch(&RecordBatch::from_records(chunk));
        }
        let opts = StreamOptions::default();
        assert_reports_equal(&rows.snapshot(opts), &batches.snapshot(opts));
        assert_eq!(rows.latency_sketches(), batches.latency_sketches());
        assert_eq!(rows.latest(), batches.latest());
    }

    #[test]
    fn sharded_merge_matches_serial_ingest() {
        let records = corpus();
        let mut serial = OnlineIdentifier::new(Pipeline::new());
        serial.ingest(&records);

        let bounds = [0, records.len() / 3, records.len() / 2, records.len()];
        let shards: Vec<OnlineIdentifier> = sno_types::par::shard_map(3, 2, |i| {
            let mut shard = OnlineIdentifier::new(Pipeline::new());
            shard.ingest(&records[bounds[i]..bounds[i + 1]]);
            shard
        });
        let mut merged = OnlineIdentifier::new(Pipeline::new());
        for shard in shards {
            merged.merge(shard);
        }
        assert_eq!(merged.ingested(), serial.ingested());
        assert_eq!(merged.latency_sketches(), serial.latency_sketches());
        let opts = StreamOptions {
            dense_acceptance: true,
            ..StreamOptions::default()
        };
        assert_reports_equal(&merged.snapshot(opts), &serial.snapshot(opts));
    }

    #[test]
    fn window_drops_old_records() {
        let records = corpus();
        let latest = records.iter().map(|r| r.timestamp.0).max().unwrap();
        let earliest = records.iter().map(|r| r.timestamp.0).min().unwrap();
        let window = (latest - earliest) / 2;
        let mut windowed = OnlineIdentifier::with_window(Pipeline::new(), window);
        windowed.ingest(&records);
        let report = windowed.snapshot(StreamOptions::default());
        // The windowed snapshot equals a batch run over the retained
        // suffix of the stream.
        let cutoff = latest - window;
        let kept: Vec<NdtRecord> = records
            .iter()
            .filter(|r| r.timestamp.0 >= cutoff)
            .cloned()
            .collect();
        assert!(kept.len() < records.len(), "window must drop something");
        let expect =
            Pipeline::new().run_streamed(|| slice_chunks(&kept, 512), StreamOptions::default());
        assert_reports_equal(&report, &expect);
    }

    #[test]
    fn pop_flags_catch_a_level_shift() {
        // A synthetic Starlink series: 60 days at 53 ms, 60 at 33 ms,
        // ten sessions per day.
        let mut records = Vec::new();
        for day in 0..120u64 {
            let ms = if day < 60 { 53.0 } else { 33.0 };
            for s in 0..10u64 {
                records.push(NdtRecord {
                    timestamp: Timestamp(day * 86_400 + s * 600),
                    client: Ipv4::new(98, 97, (day % 200) as u8, (s + 1) as u8),
                    asn: Asn(14593),
                    latency_p5: Millis(ms + s as f64 * 0.01),
                    jitter_p95: Millis(12.0),
                    retrans_fraction: 0.01,
                    download: Mbps(100.0),
                });
            }
        }
        let mut online = OnlineIdentifier::new(Pipeline::new());
        online.ingest(&records);
        let flags = online.pop_flags(10.0, 10);
        assert_eq!(flags.len(), 1, "{flags:?}");
        assert_eq!(flags[0].operator, Operator::Starlink);
        assert_eq!(flags[0].shift.index, 60);
        assert_eq!(flags[0].day, UtcDay(60));
        assert!((flags[0].shift.magnitude() - 20.0).abs() < 1.0);
        // Below the detection floor: no flags.
        assert!(online.pop_flags(30.0, 10).is_empty());
    }

    #[test]
    fn empty_identifier_snapshot() {
        let online = OnlineIdentifier::new(Pipeline::new());
        assert!(online.is_empty());
        assert_eq!(online.latest(), None);
        let report = online.snapshot(StreamOptions::default());
        assert_eq!(report.records, 0);
        assert!(report.catalog.is_empty());
        assert!(online.pop_flags(8.0, 8).is_empty());
    }
}
