//! The online identification service: incremental ingest with
//! snapshot-on-demand reporting in O(delta), not O(corpus).
//!
//! The batch pipelines ([`Pipeline::run`] and [`Pipeline::run_streamed`])
//! assume the corpus is complete before stage 3 runs. A continuously
//! operating service instead receives measurement chunks in arrival-time
//! order and must answer "who are the SNOs right now?" at any point. The
//! [`OnlineIdentifier`] supports exactly that:
//!
//! * **Ingest** — each arriving chunk is columnarized and folded into the
//!   same [`CorpusStats`] accumulator the streamed pipeline uses (per-ASN
//!   latency buckets for KDE validation, per-`(operator, /24)` buckets
//!   for the strict filter), appended to a compact codec replay log
//!   (~52 bytes/record), and tracked in per-operator latency sketches and
//!   `(timestamp, latency)` buckets for the PoP-change flags. Every
//!   ingest step is O(chunk), never O(corpus).
//! * **Merge** — identifiers built over disjoint shards of a stream merge
//!   in shard order into the exact state serial ingest would have built:
//!   `CorpusStats::merge` appends buckets, the replay logs concatenate
//!   byte-wise, and the [`QuantileSketch`]es are ingest-order-invariant
//!   by construction. This is what lets `sno_types::par` shard the ingest
//!   across threads without changing a single output byte. The absorbed
//!   shard must be *raw* — never compacted or evicted — because its
//!   frames land in the middle of the merged stream, where dropped bytes
//!   could no longer be re-decided on an epoch bump (merge-then-compact
//!   is sound; compact-then-merge is not — see DESIGN §7).
//! * **Snapshot** — [`OnlineIdentifier::snapshot`] re-derives stages
//!   3–3c through a memoizing [`StageCache`] (only buckets that grew
//!   since the last snapshot are re-evaluated) and compares the
//!   resulting [`AcceptTable`](crate::accept::AcceptTable) with the one
//!   the persistent [`AcceptState`] was decided under. *Unchanged* →
//!   only the frames appended since the last snapshot replay through
//!   the accept pass (O(delta)). *Shifted* → the *epoch* bumps and the
//!   whole stream is re-decided: compacted frames from their retained
//!   ASN slots plus the cumulative per-ASN latency buckets, resident
//!   frames from the log (the bounded re-replay).
//!   Either way the report is byte-identical to [`Pipeline::run_streamed`]
//!   over the same records — online verdicts *are* batch verdicts,
//!   pinned by `tests/online_determinism.rs` across interleaved
//!   ingest/snapshot/merge/compact schedules.
//! * **Compaction** — [`OnlineIdentifier::compact`] drops the decided
//!   prefix of the replay log, retaining only each dropped frame's ASN
//!   (4 bytes instead of 52). An accept decision is a function of
//!   `(asn, latency_p5)` alone, and the cumulative per-ASN buckets
//!   already hold every latency in record order — so an epoch bump can
//!   replay compacted frames exactly, via per-ASN cursors into the
//!   buckets. Resident log size stays bounded by the frames ingested
//!   since the last `compact()`.
//!
//! With a sliding window ([`OnlineIdentifier::with_window`]), snapshots
//! first *evict* the leading run of frames older than `window_secs`
//! behind the newest timestamp seen — sound because the cutoff only
//! moves forward, so an expired frame can never re-enter a later
//! window — then re-derive statistics from the retained log. The
//! unwindowed default keeps the whole stream (resident or compacted)
//! and therefore matches the batch report exactly.

use crate::accept::{AcceptState, AsnOps};
use crate::asn_map::{map_asns, AsnMapping};
use crate::pipeline::{Pipeline, StageCache};
use crate::stream::{
    accept_pass, AcceptBitmap, CorpusStats, StreamOptions, StreamedReport, REPLAY_CHUNK_LEN,
};
use crate::validate::{profile_from_sketch, AsnProfile};
use sno_stats::{daily_medians, OnlineShiftDetector, QuantileSketch, Shift};
use sno_types::records::NdtRecord;
use sno_types::{codec, Asn, Operator, RecordBatch, Timestamp, UtcDay};
use std::collections::BTreeMap;

/// An incrementally flagged PoP-style level shift in one operator's
/// daily-median latency series.
#[derive(Debug, Clone, PartialEq)]
pub struct PopFlag {
    /// The operator whose series shifted.
    pub operator: Operator,
    /// The first day after the change.
    pub day: UtcDay,
    /// The underlying mean shift (indices into the daily-median series).
    pub shift: Shift,
}

/// Incremental SNO identification over an arriving measurement stream.
/// See the module docs for the state layout and merge contract.
#[derive(Debug, Clone)]
pub struct OnlineIdentifier {
    pipeline: Pipeline,
    mapping: AsnMapping,
    index: AsnOps,
    stats: CorpusStats,
    /// Bumped on every statistics mutation — the stage cache's
    /// whole-derivation key.
    stats_rev: u64,
    log: codec::Encoder,
    /// Records ingested over the identifier's lifetime (the log shrinks
    /// under compaction and eviction, so this is tracked explicitly).
    ingested: usize,
    /// ASNs of compacted frames, in stream order (unwindowed only): all
    /// an epoch-bump replay needs, since the cumulative per-ASN buckets
    /// hold the latencies.
    compacted_slots: Vec<u32>,
    /// Frames dropped by windowed eviction (windowed only).
    evicted: usize,
    window_secs: Option<u64>,
    latest: Option<Timestamp>,
    by_operator: BTreeMap<Operator, Vec<(Timestamp, f64)>>,
    sketches: BTreeMap<Operator, QuantileSketch>,
    /// Per-ASN latency sketches for buffer-free verdict validation,
    /// when [`OnlineIdentifier::track_asn_sketches`] opted in.
    asn_sketches: Option<BTreeMap<Asn, QuantileSketch>>,
    cache: StageCache,
    accept: AcceptState,
}

impl OnlineIdentifier {
    /// An identifier that keeps the whole stream (snapshots equal batch
    /// reports over everything ingested).
    pub fn new(pipeline: Pipeline) -> OnlineIdentifier {
        let mapping = map_asns();
        let index = AsnOps::new(&mapping);
        OnlineIdentifier {
            pipeline,
            mapping,
            index,
            stats: CorpusStats::new(),
            stats_rev: 0,
            log: codec::Encoder::new(),
            ingested: 0,
            compacted_slots: Vec::new(),
            evicted: 0,
            window_secs: None,
            latest: None,
            by_operator: BTreeMap::new(),
            sketches: BTreeMap::new(),
            asn_sketches: None,
            cache: StageCache::default(),
            accept: AcceptState::new(),
        }
    }

    /// An identifier whose snapshots only consider records within
    /// `window_secs` of the newest timestamp ingested (a sliding
    /// window over near-time-ordered arrivals).
    pub fn with_window(pipeline: Pipeline, window_secs: u64) -> OnlineIdentifier {
        OnlineIdentifier {
            window_secs: Some(window_secs),
            ..OnlineIdentifier::new(pipeline)
        }
    }

    /// Also maintain per-ASN latency sketches at ingest — the input to
    /// [`OnlineIdentifier::sketch_profiles`]. Call before the first
    /// ingest (records already absorbed are not back-filled).
    pub fn track_asn_sketches(&mut self) {
        if self.asn_sketches.is_none() {
            self.asn_sketches = Some(BTreeMap::new());
        }
    }

    /// Ingest one chunk of records in arrival order.
    // sno-lint: allow(panic-reachable): identification is total over validated batches; remaining reachable sites are leaf-justified length invariants in the columnar hot path
    pub fn ingest(&mut self, records: &[NdtRecord]) {
        let batch = RecordBatch::from_records(records);
        if self.window_secs.is_none() {
            self.stats
                .observe_batch(&self.index, &batch, 0..batch.len());
            self.stats_rev += 1;
        }
        self.log.extend_records(records);
        self.ingested += records.len();
        self.track(&batch);
    }

    /// Ingest one columnar batch in arrival order.
    // sno-lint: allow(panic-reachable): identification is total over validated batches; remaining reachable sites are leaf-justified length invariants in the columnar hot path
    pub fn ingest_batch(&mut self, batch: &RecordBatch) {
        // A windowed identifier never reads the cumulative statistics
        // (every snapshot re-derives from the retained log), so it
        // skips accumulating them — the buckets would otherwise grow
        // with the whole stream, defeating the window's memory bound.
        if self.window_secs.is_none() {
            self.stats.observe_batch(&self.index, batch, 0..batch.len());
            self.stats_rev += 1;
        }
        for i in 0..batch.len() {
            self.log.push(&batch.record(i));
        }
        self.ingested += batch.len();
        self.track(batch);
    }

    /// Per-record tracking shared by the ingest paths: newest timestamp,
    /// per-operator PoP-flag samples and latency sketches.
    fn track(&mut self, batch: &RecordBatch) {
        let timestamps = batch.timestamps();
        let latencies = batch.latency_p5();
        for ((&ts, &asn), &lat) in timestamps.iter().zip(batch.asns()).zip(latencies) {
            if self.latest.is_none_or(|t| ts > t) {
                self.latest = Some(ts);
            }
            if let Some(op) = self.index.get(asn) {
                self.by_operator.entry(op).or_default().push((ts, lat));
                self.sketches.entry(op).or_default().push(lat);
                if let Some(by_asn) = self.asn_sketches.as_mut() {
                    by_asn.entry(asn).or_default().push(lat);
                }
            }
        }
    }

    /// Merge another identifier (built over the *following* shard of the
    /// stream) into this one. Merging per-shard identifiers in shard
    /// order reproduces serial ingest exactly — state and snapshots are
    /// byte-identical.
    ///
    /// The absorbed shard must be raw: never compacted, never evicted.
    /// Its frames land in the middle of the merged stream, where an
    /// epoch bump must still be able to re-decide them from the log —
    /// so compact (and evict) only the accumulating side, *after* the
    /// merge. `self` may already be compacted: its decided prefix stays
    /// a prefix of the merged stream, so its accept state stays valid.
    // sno-lint: allow(panic-reachable): identification is total over validated batches; remaining reachable sites are leaf-justified length invariants in the columnar hot path
    pub fn merge(&mut self, other: OnlineIdentifier) {
        debug_assert_eq!(
            self.window_secs, other.window_secs,
            "merged identifiers must share a window"
        );
        debug_assert!(
            other.compacted_slots.is_empty() && other.evicted == 0,
            "merge absorbs raw shards; compact/evict only the accumulating side"
        );
        let caught_up = self.accept.decided() == self.ingested;
        self.stats = std::mem::take(&mut self.stats).merge(other.stats);
        self.stats_rev += 1;
        self.log.append(&other.log);
        self.ingested += other.ingested;
        if let Some(ts) = other.latest {
            if self.latest.is_none_or(|t| ts > t) {
                self.latest = Some(ts);
            }
        }
        for (op, mut samples) in other.by_operator {
            self.by_operator.entry(op).or_default().append(&mut samples);
        }
        for (op, sketch) in other.sketches {
            self.sketches.entry(op).or_default().merge(&sketch);
        }
        if let (Some(mine), Some(theirs)) = (self.asn_sketches.as_mut(), other.asn_sketches) {
            for (asn, sketch) in theirs {
                mine.entry(asn).or_default().merge(&sketch);
            }
        }
        if other.accept.decided() > 0 {
            // Both sides have decided frames. Concatenating the accept
            // passes equals the serial pass only when self was fully
            // caught up (no undecided gap between the two decided runs)
            // and both decided under the same table — otherwise the
            // next snapshot re-decides from scratch.
            if !caught_up {
                self.accept.invalidate();
            } else {
                let _ = self.accept.merge(other.accept);
            }
        }
        // other.accept.decided() == 0: the shard contributes fresh
        // frames only; self's decided prefix is still a stream prefix.
    }

    /// Records ingested over the identifier's lifetime (compacted and
    /// evicted frames included).
    pub fn ingested(&self) -> usize {
        self.ingested
    }

    /// Frames currently resident in the replay log.
    pub fn resident_frames(&self) -> usize {
        self.log.len()
    }

    /// Bytes held by the replay log plus the compacted-slot store — the
    /// gauge the compaction bound is asserted on.
    pub fn resident_log_bytes(&self) -> usize {
        self.log.byte_len() + self.compacted_slots.len() * std::mem::size_of::<u32>()
    }

    /// How many times the accept table shifted under a snapshot,
    /// forcing a full re-decide (0 until the first snapshot).
    pub fn accept_epoch(&self) -> u64 {
        self.accept.epoch()
    }

    /// True when nothing has been ingested.
    pub fn is_empty(&self) -> bool {
        self.ingested == 0
    }

    /// The newest timestamp ingested.
    pub fn latest(&self) -> Option<Timestamp> {
        self.latest
    }

    /// Per-operator streaming latency sketches over every *mapped*
    /// record (stage 1–2 attribution, before per-record filtering) —
    /// the input to `analysis::latency_table_from_sketches`.
    pub fn latency_sketches(&self) -> &BTreeMap<Operator, QuantileSketch> {
        &self.sketches
    }

    /// Per-ASN profiles validated against the streaming sketches
    /// instead of retained latency buffers — `None` unless
    /// [`OnlineIdentifier::track_asn_sketches`] was enabled. Verdicts
    /// agree with the buffer-backed KDE stage up to the sketch's bin
    /// resolution (see `validate::profile_from_sketch`).
    pub fn sketch_profiles(&self) -> Option<Vec<AsnProfile>> {
        let by_asn = self.asn_sketches.as_ref()?;
        let empty = QuantileSketch::default();
        Some(
            self.mapping
                .mapping
                .iter()
                .flat_map(|(&op, asns)| asns.iter().map(move |&asn| (op, asn)))
                .map(|(op, asn)| {
                    let sketch = by_asn.get(&asn).unwrap_or(&empty);
                    profile_from_sketch(op, asn, sketch, self.pipeline.bands)
                })
                .collect(),
        )
    }

    /// Render the current state through the standard report path. The
    /// report is byte-identical to [`Pipeline::run_streamed`] over the
    /// same records (the whole stream, or the sliding window if one was
    /// configured). `opts.replay_encoded` is moot here — snapshots
    /// always replay the internal log.
    ///
    /// Unwindowed, the cost is O(frames since the last snapshot) while
    /// the derived accept table is stable, and O(stream) on the rare
    /// epoch bump. Windowed, expired frames are evicted first and the
    /// retained window replays in full.
    // sno-lint: allow(panic-reachable): identification is total over validated batches; remaining reachable sites are leaf-justified length invariants in the columnar hot path
    pub fn snapshot(&mut self, opts: StreamOptions) -> StreamedReport {
        match self.window_cutoff() {
            Some(cutoff) => self.windowed_snapshot(cutoff, opts),
            None => self.incremental_snapshot(opts),
        }
    }

    /// The unwindowed path: maintain the persistent accept state,
    /// deciding only what the current epoch has not decided yet.
    fn incremental_snapshot(&mut self, opts: StreamOptions) -> StreamedReport {
        let stages = self
            .cache
            .derive(&self.pipeline, &self.mapping, &self.stats, self.stats_rev);
        if !self.accept.compatible(&stages.table, opts) {
            // Epoch bump: the table shifted (or this is the first
            // snapshot / the pass shape changed) — re-decide the whole
            // stream. Compacted frames replay from their ASN slots,
            // resident frames from the log.
            self.accept.reset(stages.table.clone(), opts);
            self.accept
                .replay_compacted(&self.compacted_slots, &self.stats.by_asn);
            let pass = accept_pass(
                &stages.table,
                self.log.chunks(REPLAY_CHUNK_LEN),
                opts,
                self.pipeline.threads,
            );
            let frames = pass.bitmap.len();
            self.accept.absorb(pass, frames);
        } else if self.accept.decided() < self.ingested {
            // O(delta): only the frames appended since the last
            // snapshot. `decided` indexes the whole stream; the log
            // starts at frame `compacted_slots.len()`.
            let from = self.accept.decided() - self.compacted_slots.len();
            let pass = accept_pass(
                &stages.table,
                self.log.tail_chunks(from, REPLAY_CHUNK_LEN),
                opts,
                self.pipeline.threads,
            );
            let frames = pass.bitmap.len();
            self.accept.absorb(pass, frames);
        }
        debug_assert_eq!(self.accept.decided(), self.ingested);

        let (counts, bitmap, dense, latencies) = match self.accept.pass() {
            Some(pass) => (
                pass.counts.clone(),
                pass.bitmap.clone(),
                pass.dense.clone(),
                pass.latencies.clone(),
            ),
            None => (BTreeMap::new(), AcceptBitmap::new(), None, None),
        };
        let mut catalog: Vec<(Operator, u64)> = counts.into_iter().collect();
        catalog.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        StreamedReport {
            mapping: self.mapping.clone(),
            profiles: stages.profiles,
            strict: stages.strict,
            thresholds: stages.thresholds,
            default_threshold: stages.default_threshold,
            records: self.ingested,
            catalog,
            bitmap,
            accepted: dense,
            latencies_by_operator: latencies,
        }
    }

    /// The full-replay reference snapshot: re-derive every stage from
    /// scratch and replay the entire resident log, ignoring (and not
    /// touching) the persistent accept state — what `snapshot()` cost
    /// before incremental acceptance, minus the log clone. Kept as the
    /// oracle the incremental path is tested and benchmarked against.
    /// Unwindowed, uncompacted identifiers only: the whole stream must
    /// still be resident.
    // sno-lint: allow(panic-reachable): identification is total over validated batches; remaining reachable sites are leaf-justified length invariants in the columnar hot path
    pub fn snapshot_full(&self, opts: StreamOptions) -> StreamedReport {
        debug_assert!(
            self.window_secs.is_none() && self.compacted_slots.is_empty(),
            "snapshot_full replays the resident log; use snapshot() after compaction/windowing"
        );
        let stages = self.pipeline.derive_stages(&self.mapping, &self.stats);
        let pass = accept_pass(
            &stages.table,
            self.log.chunks(REPLAY_CHUNK_LEN),
            opts,
            self.pipeline.threads,
        );
        let mut catalog: Vec<(Operator, u64)> = pass.counts.into_iter().collect();
        catalog.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        StreamedReport {
            mapping: self.mapping.clone(),
            profiles: stages.profiles,
            strict: stages.strict,
            thresholds: stages.thresholds,
            default_threshold: stages.default_threshold,
            records: self.ingested,
            catalog,
            bitmap: pass.bitmap,
            accepted: pass.dense,
            latencies_by_operator: pass.latencies,
        }
    }

    /// Fold the decided prefix of the replay log into the persistent
    /// accept state and drop its frames, keeping only their ASN slots.
    /// Bounds the resident log to the frames ingested since the last
    /// snapshot-then-compact, at 4 bytes per compacted frame. No-op for
    /// windowed identifiers (they evict instead) and before the first
    /// snapshot (nothing is decided yet).
    // sno-lint: allow(panic-reachable): identification is total over validated batches; remaining reachable sites are leaf-justified length invariants in the columnar hot path
    pub fn compact(&mut self) {
        use sno_types::chunk::RecordChunks;
        if self.window_secs.is_some() {
            return;
        }
        let decided_resident = self
            .accept
            .decided()
            .saturating_sub(self.compacted_slots.len());
        if decided_resident == 0 {
            return;
        }
        let mut remaining = decided_resident;
        let mut chunks = self.log.chunks(REPLAY_CHUNK_LEN);
        while remaining > 0 {
            let Some(chunk) = chunks.next_chunk() else {
                break;
            };
            for rec in chunk.iter().take(remaining) {
                self.compacted_slots.push(rec.asn.0);
            }
            remaining = remaining.saturating_sub(chunk.len());
        }
        self.log.drop_front(decided_resident);
    }

    /// The oldest timestamp a windowed snapshot keeps, if a window is
    /// configured and anything has been ingested.
    fn window_cutoff(&self) -> Option<u64> {
        let window = self.window_secs?;
        let latest = self.latest?;
        Some(latest.0.saturating_sub(window))
    }

    /// The windowed path: evict the expired leading run of the log,
    /// then re-derive statistics over the retained window and replay
    /// it. Eviction is sound because `latest` (hence the cutoff) only
    /// moves forward: a frame older than today's cutoff is older than
    /// every future cutoff too, so dropping it can never change a later
    /// snapshot. Out-of-order stragglers *behind* newer frames are
    /// filtered per snapshot and evicted once the run ahead of them
    /// expires.
    fn windowed_snapshot(&mut self, cutoff: u64, opts: StreamOptions) -> StreamedReport {
        use sno_types::chunk::RecordChunks;
        self.evict(cutoff);
        // Rebuild the window's statistics and record set from the
        // retained log, filtering the stragglers eviction could not
        // reach (no clone of the encoder — chunks borrow its bytes).
        let mut stats = CorpusStats::new();
        let mut kept: Vec<NdtRecord> = Vec::new();
        let mut chunks = self.log.chunks(REPLAY_CHUNK_LEN);
        while let Some(chunk) = chunks.next_chunk() {
            let in_window: Vec<NdtRecord> = chunk
                .into_iter()
                .filter(|r| r.timestamp.0 >= cutoff)
                .collect();
            if in_window.is_empty() {
                continue;
            }
            let batch = RecordBatch::from_records(&in_window);
            stats.observe_batch(&self.index, &batch, 0..batch.len());
            kept.extend(in_window);
        }
        let stages = self.pipeline.derive_stages(&self.mapping, &stats);
        let pass = accept_pass(
            &stages.table,
            sno_types::chunk::slice_chunks(&kept, REPLAY_CHUNK_LEN),
            opts,
            self.pipeline.threads,
        );
        let mut catalog: Vec<(Operator, u64)> = pass.counts.into_iter().collect();
        catalog.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        StreamedReport {
            mapping: self.mapping.clone(),
            profiles: stages.profiles,
            strict: stages.strict,
            thresholds: stages.thresholds,
            default_threshold: stages.default_threshold,
            records: stats.records,
            catalog,
            bitmap: pass.bitmap,
            accepted: pass.dense,
            latencies_by_operator: pass.latencies,
        }
    }

    /// Drop the leading run of frames older than `cutoff` from the
    /// replay log (windowed identifiers only).
    fn evict(&mut self, cutoff: u64) {
        use sno_types::chunk::RecordChunks;
        let mut expired = 0usize;
        let mut chunks = self.log.chunks(REPLAY_CHUNK_LEN);
        'scan: while let Some(chunk) = chunks.next_chunk() {
            for rec in &chunk {
                if rec.timestamp.0 >= cutoff {
                    break 'scan;
                }
                expired += 1;
            }
        }
        if expired > 0 {
            self.log.drop_front(expired);
            self.evicted += expired;
        }
    }

    /// Incrementally flagged PoP-style level shifts: per operator, the
    /// daily-median latency series of every mapped record is replayed
    /// through the online changepoint detector with the given
    /// thresholds. Flags are sorted by operator, then day.
    pub fn pop_flags(&self, min_shift_ms: f64, min_segment: usize) -> Vec<PopFlag> {
        let mut flags = Vec::new();
        for (&op, samples) in &self.by_operator {
            let daily = daily_medians(samples);
            if daily.len() < 2 * min_segment {
                continue;
            }
            let mut detector = OnlineShiftDetector::new(min_shift_ms, min_segment);
            for point in &daily {
                detector.push(point.median);
            }
            for shift in detector.shifts() {
                flags.push(PopFlag {
                    operator: op,
                    day: daily[shift.index].day,
                    shift,
                });
            }
        }
        flags
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sno_types::chunk::{slice_chunks, RecordChunks};
    use sno_types::{Asn, Ipv4, Mbps, Millis};

    fn small_config() -> sno_synth::SynthConfig {
        sno_synth::SynthConfig {
            scale: 5e-5,
            min_sessions: 40,
            ..sno_synth::SynthConfig::test_corpus()
        }
    }

    fn corpus() -> Vec<NdtRecord> {
        sno_synth::MlabGenerator::new(small_config())
            .generate()
            .records
    }

    fn assert_reports_equal(a: &StreamedReport, b: &StreamedReport) {
        assert_eq!(a.records, b.records);
        assert_eq!(a.catalog, b.catalog);
        assert_eq!(a.thresholds, b.thresholds);
        assert_eq!(a.default_threshold, b.default_threshold);
        assert_eq!(a.accepted, b.accepted);
        assert_eq!(a.latencies_by_operator, b.latencies_by_operator);
        assert_eq!(a.strict.examined, b.strict.examined);
        for i in 0..a.records {
            assert_eq!(a.bitmap.get(i), b.bitmap.get(i), "bit {i}");
        }
    }

    #[test]
    fn snapshot_matches_streamed_pipeline() {
        let records = corpus();
        let opts = StreamOptions {
            dense_acceptance: true,
            operator_latencies: true,
            ..StreamOptions::default()
        };
        let batch_report = Pipeline::new().run_streamed(|| slice_chunks(&records, 512), opts);
        let mut online = OnlineIdentifier::new(Pipeline::new());
        let mut stream = slice_chunks(&records, 512);
        while let Some(chunk) = stream.next_chunk() {
            online.ingest(&chunk);
        }
        assert_eq!(online.ingested(), records.len());
        assert_reports_equal(&online.snapshot_full(opts), &batch_report);
        assert_reports_equal(&online.snapshot(opts), &batch_report);
    }

    #[test]
    fn repeated_snapshots_are_stable_and_tail_incremental() {
        let records = corpus();
        let opts = StreamOptions::default();
        let mut online = OnlineIdentifier::new(Pipeline::new());
        let (head, tail) = records.split_at(records.len() / 2);
        online.ingest(head);
        let first = online.snapshot(opts);
        assert_eq!(online.accept_epoch(), 1, "first snapshot opens epoch 1");
        // Unchanged corpus: the snapshot is answered from state alone.
        let again = online.snapshot(opts);
        assert_reports_equal(&first, &again);
        assert_eq!(online.accept_epoch(), 1);
        // Growing the corpus re-decides either just the tail (epoch
        // stable) or everything (epoch bump) — both must equal batch.
        online.ingest(tail);
        let full = online.snapshot(opts);
        let expect = Pipeline::new().run_streamed(|| slice_chunks(&records, 512), opts);
        assert_reports_equal(&full, &expect);
    }

    #[test]
    fn compaction_preserves_snapshots_and_bounds_the_log() {
        let records = corpus();
        let opts = StreamOptions::default();
        let expect = Pipeline::new().run_streamed(|| slice_chunks(&records, 512), opts);

        let mut online = OnlineIdentifier::new(Pipeline::new());
        let step = records.len() / 4 + 1;
        for chunk in records.chunks(step) {
            online.ingest(chunk);
            online.snapshot(opts);
            online.compact();
            // Everything decided is compacted away: the resident log
            // holds only the not-yet-snapshotted suffix (here: nothing).
            assert_eq!(online.resident_frames(), 0);
        }
        // Compacted slots cost 4 bytes/frame vs 52 resident.
        assert!(online.resident_log_bytes() < records.len() * 52 / 10);
        let report = online.snapshot(opts);
        assert_reports_equal(&report, &expect);
        assert_eq!(report.records, records.len());
    }

    #[test]
    fn compact_before_any_snapshot_is_a_noop() {
        let records = corpus();
        let mut online = OnlineIdentifier::new(Pipeline::new());
        online.ingest(&records);
        online.compact();
        assert_eq!(online.resident_frames(), records.len());
        let expect =
            Pipeline::new().run_streamed(|| slice_chunks(&records, 512), StreamOptions::default());
        assert_reports_equal(&online.snapshot(StreamOptions::default()), &expect);
    }

    #[test]
    fn batch_ingest_matches_row_ingest() {
        let records = corpus();
        let mut rows = OnlineIdentifier::new(Pipeline::new());
        let mut batches = OnlineIdentifier::new(Pipeline::new());
        for chunk in records.chunks(777) {
            rows.ingest(chunk);
            batches.ingest_batch(&RecordBatch::from_records(chunk));
        }
        let opts = StreamOptions::default();
        assert_reports_equal(&rows.snapshot(opts), &batches.snapshot(opts));
        assert_eq!(rows.latency_sketches(), batches.latency_sketches());
        assert_eq!(rows.latest(), batches.latest());
    }

    #[test]
    fn sharded_merge_matches_serial_ingest() {
        let records = corpus();
        let mut serial = OnlineIdentifier::new(Pipeline::new());
        serial.ingest(&records);

        let bounds = [0, records.len() / 3, records.len() / 2, records.len()];
        let shards: Vec<OnlineIdentifier> = sno_types::par::shard_map(3, 2, |i| {
            let mut shard = OnlineIdentifier::new(Pipeline::new());
            shard.ingest(&records[bounds[i]..bounds[i + 1]]);
            shard
        });
        let mut merged = OnlineIdentifier::new(Pipeline::new());
        for shard in shards {
            merged.merge(shard);
        }
        assert_eq!(merged.ingested(), serial.ingested());
        assert_eq!(merged.latency_sketches(), serial.latency_sketches());
        let opts = StreamOptions {
            dense_acceptance: true,
            ..StreamOptions::default()
        };
        assert_reports_equal(&merged.snapshot(opts), &serial.snapshot(opts));
    }

    #[test]
    fn merge_into_snapshotted_and_compacted_identifier() {
        let records = corpus();
        let opts = StreamOptions::default();
        let (head, tail) = records.split_at(records.len() / 2);
        // Accumulating side: snapshot + compact before the merge.
        let mut acc = OnlineIdentifier::new(Pipeline::new());
        acc.ingest(head);
        acc.snapshot(opts);
        acc.compact();
        // Raw shard arrives and merges in.
        let mut shard = OnlineIdentifier::new(Pipeline::new());
        shard.ingest(tail);
        acc.merge(shard);
        assert_eq!(acc.ingested(), records.len());
        let expect = Pipeline::new().run_streamed(|| slice_chunks(&records, 512), opts);
        assert_reports_equal(&acc.snapshot(opts), &expect);
    }

    #[test]
    fn window_drops_old_records() {
        let records = corpus();
        let latest = records.iter().map(|r| r.timestamp.0).max().unwrap();
        let earliest = records.iter().map(|r| r.timestamp.0).min().unwrap();
        let window = (latest - earliest) / 2;
        let mut windowed = OnlineIdentifier::with_window(Pipeline::new(), window);
        windowed.ingest(&records);
        let report = windowed.snapshot(StreamOptions::default());
        // The windowed snapshot equals a batch run over the retained
        // suffix of the stream.
        let cutoff = latest - window;
        let kept: Vec<NdtRecord> = records
            .iter()
            .filter(|r| r.timestamp.0 >= cutoff)
            .cloned()
            .collect();
        assert!(kept.len() < records.len(), "window must drop something");
        let expect =
            Pipeline::new().run_streamed(|| slice_chunks(&kept, 512), StreamOptions::default());
        assert_reports_equal(&report, &expect);
    }

    #[test]
    fn windowed_eviction_bounds_the_resident_log() {
        // Time-ordered records: after a snapshot, everything older than
        // the cutoff must have left the log, not just the report.
        let mut records = corpus();
        records.sort_by_key(|r| r.timestamp.0);
        let latest = records.last().unwrap().timestamp.0;
        let earliest = records[0].timestamp.0;
        let window = (latest - earliest) / 4;
        let cutoff = latest - window;
        let in_window = records.iter().filter(|r| r.timestamp.0 >= cutoff).count();
        let mut windowed = OnlineIdentifier::with_window(Pipeline::new(), window);
        for chunk in records.chunks(512) {
            windowed.ingest(chunk);
        }
        assert_eq!(windowed.resident_frames(), records.len());
        windowed.snapshot(StreamOptions::default());
        assert_eq!(windowed.resident_frames(), in_window);
        assert_eq!(windowed.ingested(), records.len());
        assert!(windowed.resident_log_bytes() < records.len() * 52);
    }

    #[test]
    fn sketch_profiles_cover_the_curated_pairs() {
        let records = corpus();
        let mut online = OnlineIdentifier::new(Pipeline::new());
        assert!(online.sketch_profiles().is_none(), "opt-in only");
        online.track_asn_sketches();
        online.ingest(&records);
        let sketched = online.sketch_profiles().expect("tracking enabled");
        let report = online.snapshot(StreamOptions::default());
        assert_eq!(sketched.len(), report.profiles.len());
        let mut disagreements = 0usize;
        for (s, k) in sketched.iter().zip(&report.profiles) {
            assert_eq!((s.operator, s.asn), (k.operator, k.asn));
            assert_eq!(s.tests, k.tests, "{:?}/{:?}", s.operator, s.asn);
            if std::mem::discriminant(&s.verdict) != std::mem::discriminant(&k.verdict) {
                disagreements += 1;
            }
        }
        // Sketch-backed verdicts may wobble only at band boundaries.
        assert!(disagreements <= 2, "{disagreements} verdicts disagree");
    }

    #[test]
    fn pop_flags_catch_a_level_shift() {
        // A synthetic Starlink series: 60 days at 53 ms, 60 at 33 ms,
        // ten sessions per day.
        let mut records = Vec::new();
        for day in 0..120u64 {
            let ms = if day < 60 { 53.0 } else { 33.0 };
            for s in 0..10u64 {
                records.push(NdtRecord {
                    timestamp: Timestamp(day * 86_400 + s * 600),
                    client: Ipv4::new(98, 97, (day % 200) as u8, (s + 1) as u8),
                    asn: Asn(14593),
                    latency_p5: Millis(ms + s as f64 * 0.01),
                    jitter_p95: Millis(12.0),
                    retrans_fraction: 0.01,
                    download: Mbps(100.0),
                });
            }
        }
        let mut online = OnlineIdentifier::new(Pipeline::new());
        online.ingest(&records);
        let flags = online.pop_flags(10.0, 10);
        assert_eq!(flags.len(), 1, "{flags:?}");
        assert_eq!(flags[0].operator, Operator::Starlink);
        assert_eq!(flags[0].shift.index, 60);
        assert_eq!(flags[0].day, UtcDay(60));
        assert!((flags[0].shift.magnitude() - 20.0).abs() < 1.0);
        // Below the detection floor: no flags.
        assert!(online.pop_flags(30.0, 10).is_empty());
    }

    #[test]
    fn empty_identifier_snapshot() {
        let mut online = OnlineIdentifier::new(Pipeline::new());
        assert!(online.is_empty());
        assert_eq!(online.latest(), None);
        let report = online.snapshot(StreamOptions::default());
        assert_eq!(report.records, 0);
        assert!(report.catalog.is_empty());
        assert!(online.pop_flags(8.0, 8).is_empty());
    }
}
