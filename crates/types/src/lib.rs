//! Shared vocabulary for the `sno-dissect` workspace.
//!
//! This crate defines the types every other crate speaks in:
//!
//! * a simulation [`time`] axis anchored at 2021-01-01 UTC (the start of
//!   the paper's M-Lab observation window),
//! * physical [`units`] (milliseconds, megabits per second, kilometres),
//! * network [`net`] primitives (IPv4 addresses and `/24` prefixes),
//! * operator [`ids`] (ASNs, probe ids, the closed set of 41 satellite
//!   network operators from Table 3 of the paper),
//! * the [`orbit`] classification (LEO / MEO / GEO) and per-link access
//!   kinds,
//! * deterministic random number generation ([`rng`]), sharded
//!   execution ([`par`]) whose output is thread-count independent,
//!   chunked record streams ([`chunk`]) for bounded-memory corpus
//!   processing,
//! * columnar struct-of-arrays [`batch`]es and the compact binary
//!   corpus [`codec`] the hot analysis paths run on, and
//! * the dataset [`records`] exchanged between the synthetic-trace
//!   generators and the analysis pipeline (NDT speed tests, RIPE Atlas
//!   traceroutes, BGP snapshots, census responses).
//!
//! Everything here is plain data with no I/O; the whole workspace is
//! deterministic given a seed.

pub mod batch;
pub mod chunk;
pub mod codec;
pub mod ids;
pub mod net;
pub mod orbit;
pub mod par;
pub mod records;
pub mod rng;
pub mod time;
pub mod units;

pub use batch::RecordBatch;
pub use ids::{Asn, Operator, ProbeId, TesterId};
pub use net::{Ipv4, Prefix24};
pub use orbit::{AccessKind, LinkKind, OrbitClass};
pub use rng::Rng;
pub use time::{Date, Timestamp, UtcDay};
pub use units::{Kilometers, Mbps, Millis};
