//! Pull-based chunked record streams.
//!
//! The corpus generators can materialize millions of records; at paper
//! scale (11.92 M M-Lab sessions) a materialize-then-analyze pass does
//! not fit in bounded memory. This module defines the streaming
//! contract the rest of the workspace builds on: a [`RecordChunks`]
//! pull iterator that yields records in batches, plus fold/merge
//! combinators layered on the sharded execution in [`par`].
//!
//! The determinism contract mirrors [`par`]: **chunk boundaries and
//! `Rng` substreams derive from record/shard index, never from the
//! requested chunk length or the thread count.** `chunk_len` is purely
//! a delivery granularity — a consumer that concatenates every chunk
//! sees the exact record sequence the materialized path produces, for
//! any `chunk_len >= 1` and any thread count.
//!
//! ```
//! use sno_types::chunk::{sharded, RecordChunks};
//!
//! // Three shards of squares, delivered two records at a time.
//! let stream = sharded(3, 1, 2, |s| vec![s * s; 2]);
//! assert_eq!(stream.collect_records(), vec![0, 0, 1, 1, 4, 4]);
//! ```

use crate::par;
use std::collections::VecDeque;
use std::ops::Range;

/// A pull iterator over record chunks.
///
/// `next_chunk` yields `Some(chunk)` with `1..=chunk_len` records until
/// the stream is exhausted, then `None`. Concatenating every chunk must
/// reproduce the materialized record sequence exactly, independent of
/// chunk length and thread count (see the module docs).
pub trait RecordChunks {
    /// The record type this stream yields.
    type Item;

    /// Pull the next chunk, or `None` once the stream is exhausted.
    fn next_chunk(&mut self) -> Option<Vec<Self::Item>>;

    /// Fold every chunk in stream order into an accumulator.
    fn fold_chunks<Acc, F>(mut self, init: Acc, mut f: F) -> Acc
    where
        Self: Sized,
        F: FnMut(Acc, Vec<Self::Item>) -> Acc,
    {
        let mut acc = init;
        while let Some(chunk) = self.next_chunk() {
            acc = f(acc, chunk);
        }
        acc
    }

    /// Fold every record in stream order into an accumulator.
    fn fold_records<Acc, F>(self, init: Acc, mut f: F) -> Acc
    where
        Self: Sized,
        F: FnMut(Acc, Self::Item) -> Acc,
    {
        self.fold_chunks(init, |acc, chunk| chunk.into_iter().fold(acc, &mut f))
    }

    /// Drain the stream into one vector (the materialized sequence).
    fn collect_records(self) -> Vec<Self::Item>
    where
        Self: Sized,
    {
        self.fold_chunks(Vec::new(), |mut out, chunk| {
            out.extend(chunk);
            out
        })
    }

    /// Count the records remaining in the stream.
    fn count_records(self) -> usize
    where
        Self: Sized,
    {
        self.fold_chunks(0, |n, chunk| n + chunk.len())
    }
}

/// Stream an in-memory slice as chunks of `chunk_len` clones. Bridges
/// materialized corpora into streaming consumers (and equivalence
/// tests).
pub struct SliceChunks<'a, T> {
    items: &'a [T],
    chunk_len: usize,
    next: usize,
}

/// Stream `items` in chunks of at most `chunk_len` records.
///
/// # Panics
/// Panics if `chunk_len == 0`.
pub fn slice_chunks<T: Clone>(items: &[T], chunk_len: usize) -> SliceChunks<'_, T> {
    assert!(chunk_len > 0, "slice_chunks: chunk_len must be positive");
    SliceChunks {
        items,
        chunk_len,
        next: 0,
    }
}

impl<T: Clone> RecordChunks for SliceChunks<'_, T> {
    type Item = T;

    fn next_chunk(&mut self) -> Option<Vec<T>> {
        if self.next >= self.items.len() {
            return None;
        }
        let end = (self.next + self.chunk_len).min(self.items.len());
        let chunk = self.items[self.next..end].to_vec();
        self.next = end;
        Some(chunk)
    }
}

/// The workhorse streaming source: a producer function over a fixed
/// shard list, evaluated a few shards at a time ("waves") on the [`par`]
/// pool and re-buffered into caller-sized chunks.
///
/// The shard list — and therefore every per-shard `Rng` substream — is
/// fixed up front by the caller, exactly as [`par::shard_map_chunks`]
/// fixes it for the materialized path. Only the *delivery* is chunked:
/// shard outputs are appended to a pending buffer **in shard order** and
/// drained `chunk_len` records at a time, so producers whose shards
/// emit variable-length batches (e.g. rejection sampling) still stream
/// correctly across shard boundaries. Peak memory is one wave of shard
/// outputs plus the pending buffer, not the whole corpus.
pub struct ShardedChunks<T, F> {
    produce: F,
    shards: usize,
    next_shard: usize,
    threads: usize,
    chunk_len: usize,
    pending: VecDeque<T>,
}

/// Stream the concatenation of `produce(0), produce(1), …,
/// produce(shards - 1)` in chunks of at most `chunk_len` records,
/// running up to `threads` shard producers at a time (`0` = auto).
///
/// Equivalent to `par::shard_map_chunks` over the same shard list, but
/// with bounded buffering.
///
/// # Panics
/// Panics if `chunk_len == 0`.
pub fn sharded<T, F>(
    shards: usize,
    threads: usize,
    chunk_len: usize,
    produce: F,
) -> ShardedChunks<T, F>
where
    T: Send,
    F: Fn(usize) -> Vec<T> + Sync,
{
    assert!(chunk_len > 0, "sharded: chunk_len must be positive");
    ShardedChunks {
        produce,
        shards,
        next_shard: 0,
        threads,
        chunk_len,
        pending: VecDeque::new(),
    }
}

impl<T, F> RecordChunks for ShardedChunks<T, F>
where
    T: Send,
    F: Fn(usize) -> Vec<T> + Sync,
{
    type Item = T;

    fn next_chunk(&mut self) -> Option<Vec<T>> {
        while self.pending.len() < self.chunk_len && self.next_shard < self.shards {
            // One wave: enough shards to keep the pool busy, merged in
            // shard order so the stream matches the serial sequence.
            let wave =
                (par::resolve_threads(self.threads).max(1) * 2).min(self.shards - self.next_shard);
            let base = self.next_shard;
            let produce = &self.produce;
            let batches = par::shard_map(wave, self.threads, |i| produce(base + i));
            for batch in batches {
                self.pending.extend(batch);
            }
            self.next_shard += wave;
        }
        if self.pending.is_empty() {
            return None;
        }
        let take = self.chunk_len.min(self.pending.len());
        Some(self.pending.drain(..take).collect())
    }
}

/// Fold a chunked stream through a parallel per-chunk `map`, merging
/// the partial results **in chunk order** on the calling thread.
///
/// Chunks are pulled in waves (two per worker, mirroring
/// [`sharded`]'s wave size), mapped on the [`par`] pool, and folded
/// left-to-right — so any accumulator whose merge appends per-key
/// samples sees them in exactly the order a serial
/// [`RecordChunks::fold_chunks`] pass would produce, at every thread
/// count. Peak memory is one wave of chunks plus one wave of partials,
/// never the whole stream.
pub fn par_fold_chunks<C, Part, Acc, M, G>(
    mut stream: C,
    threads: usize,
    init: Acc,
    map: M,
    mut fold: G,
) -> Acc
where
    C: RecordChunks,
    C::Item: Sync,
    Part: Send,
    M: Fn(&[C::Item]) -> Part + Sync,
    G: FnMut(Acc, Part) -> Acc,
{
    let wave_len = par::resolve_threads(threads).max(1) * 2;
    let mut acc = init;
    loop {
        let mut wave: Vec<Vec<C::Item>> = Vec::with_capacity(wave_len);
        while wave.len() < wave_len {
            match stream.next_chunk() {
                Some(chunk) => wave.push(chunk),
                None => break,
            }
        }
        let exhausted = wave.len() < wave_len;
        if !wave.is_empty() {
            let parts = par::shard_map(wave.len(), threads, |i| map(&wave[i]));
            for part in parts {
                acc = fold(acc, part);
            }
        }
        if exhausted {
            return acc;
        }
    }
}

/// Parallel in-shard-order accumulation over `0..len`: build one
/// accumulator per shard (boundaries from [`par::shard_ranges`], so
/// thread-count independent) and merge them left-to-right in shard
/// order. The merge runs on the calling thread, mirroring
/// [`par::shard_reduce`], so per-key orderings inside the accumulators
/// match a serial pass over `0..len`.
pub fn accumulate<Acc, F, G>(
    len: usize,
    chunk: usize,
    threads: usize,
    init: Acc,
    per_shard: F,
    merge: G,
) -> Acc
where
    Acc: Send,
    F: Fn(usize, Range<usize>) -> Acc + Sync,
    G: FnMut(Acc, Acc) -> Acc,
{
    let ranges = par::shard_ranges(len, chunk);
    par::shard_map(ranges.len(), threads, |i| per_shard(i, ranges[i].clone()))
        .into_iter()
        .fold(init, merge)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A shard producer with variable-length output, like the rejection
    /// sampler in the M-Lab generator.
    fn ragged(shard: usize) -> Vec<usize> {
        (0..(shard % 3) + 1).map(|k| shard * 10 + k).collect()
    }

    #[test]
    fn sharded_matches_concatenation_at_any_chunk_and_threads() {
        let serial: Vec<usize> = (0..13).flat_map(ragged).collect();
        for chunk_len in [1, 2, 7, 64, 1024] {
            for threads in [1, 2, 8] {
                let got = sharded(13, threads, chunk_len, ragged).collect_records();
                assert_eq!(got, serial, "chunk_len {chunk_len} threads {threads}");
            }
        }
    }

    #[test]
    fn sharded_chunk_sizes_are_bounded_and_full() {
        let mut stream = sharded(13, 2, 5, ragged);
        let mut total = 0;
        let mut chunks = Vec::new();
        while let Some(chunk) = stream.next_chunk() {
            assert!(!chunk.is_empty());
            assert!(chunk.len() <= 5);
            total += chunk.len();
            chunks.push(chunk.len());
        }
        assert_eq!(total, (0..13).flat_map(ragged).count());
        // Every chunk except the last is exactly chunk_len.
        for &len in &chunks[..chunks.len() - 1] {
            assert_eq!(len, 5);
        }
    }

    #[test]
    fn sharded_empty_stream() {
        let mut stream = sharded(0, 4, 16, |_| -> Vec<u32> { unreachable!() });
        assert!(stream.next_chunk().is_none());
        assert!(stream.next_chunk().is_none());
    }

    #[test]
    fn slice_chunks_round_trips() {
        let items: Vec<u32> = (0..97).collect();
        for chunk_len in [1, 8, 97, 1000] {
            assert_eq!(slice_chunks(&items, chunk_len).collect_records(), items);
        }
        let empty: Vec<u32> = Vec::new();
        assert!(slice_chunks(&empty, 4).next_chunk().is_none());
    }

    #[test]
    fn fold_records_and_count() {
        let items: Vec<u64> = (1..=10).collect();
        let sum = slice_chunks(&items, 3).fold_records(0u64, |acc, x| acc + x);
        assert_eq!(sum, 55);
        assert_eq!(slice_chunks(&items, 4).count_records(), 10);
    }

    #[test]
    fn par_fold_chunks_preserves_chunk_order() {
        // Identity map: the folded concatenation must equal the serial
        // stream at every thread count, even with ragged chunks.
        let serial: Vec<usize> = (0..37).flat_map(ragged).collect();
        for threads in [1, 2, 8] {
            for chunk_len in [1, 3, 64] {
                let got = par_fold_chunks(
                    sharded(37, 1, chunk_len, ragged),
                    threads,
                    Vec::new(),
                    |chunk: &[usize]| chunk.to_vec(),
                    |mut acc, part| {
                        acc.extend(part);
                        acc
                    },
                );
                assert_eq!(got, serial, "threads {threads} chunk {chunk_len}");
            }
        }
    }

    #[test]
    fn par_fold_chunks_empty_stream_returns_init() {
        let got = par_fold_chunks(
            sharded(0, 2, 8, |_| -> Vec<u32> { unreachable!() }),
            4,
            41u64,
            |chunk: &[u32]| chunk.len() as u64,
            |acc, part| acc + part,
        );
        assert_eq!(got, 41);
    }

    #[test]
    fn accumulate_matches_serial_bucketing() {
        use std::collections::BTreeMap;
        let items: Vec<usize> = (0..500).map(|i| i * 7 % 100).collect();
        let mut serial: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (i, &v) in items.iter().enumerate() {
            serial.entry(v % 5).or_default().push(i);
        }
        for threads in [1, 2, 8] {
            let got = accumulate(
                items.len(),
                64,
                threads,
                BTreeMap::<usize, Vec<usize>>::new(),
                |_, range| {
                    let mut acc: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
                    for i in range {
                        acc.entry(items[i] % 5).or_default().push(i);
                    }
                    acc
                },
                |mut left, right| {
                    for (k, mut v) in right {
                        left.entry(k).or_default().append(&mut v);
                    }
                    left
                },
            );
            assert_eq!(got, serial, "threads {threads}");
        }
    }
}
