//! Dataset record schemas.
//!
//! These are the rows exchanged between the synthetic-trace generators
//! (`sno-synth`) and the analysis crates (`sno-core`, `sno-atlas`,
//! `sno-bgp`). They mirror the shape of the public datasets the paper
//! mines: M-Lab NDT7 speed tests (one row per download test, with the
//! TCP_Info-derived aggregates the paper actually uses), RIPE Atlas
//! built-in traceroutes and SSLCert source addresses, BGP route-views
//! snapshots, and Prolific census answers.

use crate::ids::{Asn, ProbeId, TesterId};
use crate::net::Ipv4;
use crate::time::{Date, Timestamp};
use crate::units::{Mbps, Millis};
use std::fmt;

/// A two-letter ISO 3166 country code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CountryCode(pub [u8; 2]);

impl CountryCode {
    /// Construct from a two-ASCII-letter string, uppercasing.
    ///
    /// # Panics
    /// Panics if `code` is not exactly two ASCII letters.
    pub const fn new(code: &str) -> Self {
        let b = code.as_bytes();
        assert!(b.len() == 2, "country code must be two letters");
        assert!(b[0].is_ascii_alphabetic() && b[1].is_ascii_alphabetic());
        CountryCode([b[0].to_ascii_uppercase(), b[1].to_ascii_uppercase()])
    }

    /// The code as a string slice. The constructor asserts both bytes
    /// are ASCII letters; a corrupted value degrades to `"??"` instead
    /// of aborting the pipeline.
    pub fn as_str(&self) -> &str {
        std::str::from_utf8(&self.0).unwrap_or("??")
    }
}

impl fmt::Display for CountryCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One M-Lab NDT7 download speed test, reduced to the per-session
/// aggregates the paper derives from the server-side `TCP_Info` polls.
#[derive(Debug, Clone, PartialEq)]
pub struct NdtRecord {
    /// When the test ran.
    pub timestamp: Timestamp,
    /// The client's public IPv4 address (post-NAT).
    pub client: Ipv4,
    /// Originating autonomous system, as annotated by M-Lab.
    pub asn: Asn,
    /// 5th-percentile RTT over the session's TCP_Info polls — the
    /// paper's access-latency estimate.
    pub latency_p5: Millis,
    /// 95th-percentile jitter (RTT variation) over the session.
    pub jitter_p95: Millis,
    /// Fraction of bytes that were retransmitted, in `[0, 1]`.
    pub retrans_fraction: f64,
    /// Mean delivery rate of the download.
    pub download: Mbps,
}

impl NdtRecord {
    /// The paper's *jitter variation*: `jitter_p95 / latency_p5`
    /// (dimensionless, Section 3.1).
    pub fn jitter_variation(&self) -> f64 {
        self.jitter_p95 / self.latency_p5
    }
}

/// The 13 root DNS server letters (anycast targets of RIPE Atlas
/// built-in traceroute measurements).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)]
pub enum RootServer {
    A,
    B,
    C,
    D,
    E,
    F,
    G,
    H,
    I,
    J,
    K,
    L,
    M,
}

impl RootServer {
    /// All 13 letters in order.
    pub const ALL: [RootServer; 13] = [
        RootServer::A,
        RootServer::B,
        RootServer::C,
        RootServer::D,
        RootServer::E,
        RootServer::F,
        RootServer::G,
        RootServer::H,
        RootServer::I,
        RootServer::J,
        RootServer::K,
        RootServer::L,
        RootServer::M,
    ];

    /// Index `0..13`.
    pub fn index(self) -> usize {
        self as usize
    }

    /// The letter as text, e.g. `"K"`.
    pub fn letter(self) -> &'static str {
        match self {
            RootServer::A => "A",
            RootServer::B => "B",
            RootServer::C => "C",
            RootServer::D => "D",
            RootServer::E => "E",
            RootServer::F => "F",
            RootServer::G => "G",
            RootServer::H => "H",
            RootServer::I => "I",
            RootServer::J => "J",
            RootServer::K => "K",
            RootServer::L => "L",
            RootServer::M => "M",
        }
    }
}

impl fmt::Display for RootServer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-root", self.letter())
    }
}

/// One hop of a traceroute.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceHop {
    /// The responding address (private, CGNAT or public).
    pub addr: Ipv4,
    /// Round-trip time to this hop.
    pub rtt: Millis,
}

/// One RIPE-Atlas-style built-in traceroute from a probe to a root DNS
/// server.
#[derive(Debug, Clone, PartialEq)]
pub struct TracerouteRecord {
    /// The measuring probe.
    pub probe: ProbeId,
    /// When the measurement ran.
    pub timestamp: Timestamp,
    /// The anycast root target.
    pub target: RootServer,
    /// Hops in order; the Starlink CGNAT gateway (`100.64.0.1`) appears
    /// early on satellite paths and carries the probe→PoP RTT.
    pub hops: Vec<TraceHop>,
    /// Whether the destination answered.
    pub reached: bool,
}

impl TracerouteRecord {
    /// RTT at the Starlink carrier-grade NAT gateway hop, if present —
    /// the paper's probe→PoP latency estimate.
    pub fn cgnat_rtt(&self) -> Option<Millis> {
        self.hops
            .iter()
            .find(|h| h.addr == Ipv4::CGNAT_GATEWAY)
            .map(|h| h.rtt)
    }

    /// End-to-end RTT (last hop), if the destination was reached.
    pub fn end_to_end_rtt(&self) -> Option<Millis> {
        if self.reached {
            self.hops.last().map(|h| h.rtt)
        } else {
            None
        }
    }

    /// Number of hops to the destination, if reached.
    pub fn hop_count(&self) -> Option<usize> {
        self.reached.then_some(self.hops.len())
    }
}

/// One SSLCert built-in measurement observation: the probe's public
/// source address at a point in time (runs every 12 h; the paper uses it
/// to track probes' public IPs for reverse-DNS PoP geolocation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SslCertRecord {
    /// The measuring probe.
    pub probe: ProbeId,
    /// When the measurement ran.
    pub timestamp: Timestamp,
    /// The probe's public source address at that time.
    pub src_addr: Ipv4,
}

/// Descriptive info about one AS in a BGP snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct AsInfo {
    /// The AS number.
    pub asn: Asn,
    /// Registered organisation name.
    pub name: String,
    /// Country of registration (RIR jurisdiction).
    pub country: CountryCode,
}

/// A route-views-style AS-level snapshot: who peers with whom on a given
/// date, plus registry info for each AS seen.
#[derive(Debug, Clone, PartialEq)]
pub struct BgpSnapshot {
    /// Snapshot capture date (the paper uses 2021-01-01, 2022-01-01,
    /// 2023-01-01).
    pub date: Date,
    /// Undirected peering edges (each pair appears once, lower ASN
    /// first).
    pub edges: Vec<(Asn, Asn)>,
    /// Registry info for every AS appearing in `edges`.
    pub info: Vec<AsInfo>,
}

impl BgpSnapshot {
    /// Degree (number of distinct peers) of `asn` in this snapshot.
    pub fn degree(&self, asn: Asn) -> usize {
        self.edges
            .iter()
            .filter(|&&(a, b)| a == asn || b == asn)
            .count()
    }

    /// Peers of `asn` in this snapshot.
    pub fn peers(&self, asn: Asn) -> Vec<Asn> {
        self.edges
            .iter()
            .filter_map(|&(a, b)| {
                if a == asn {
                    Some(b)
                } else if b == asn {
                    Some(a)
                } else {
                    None
                }
            })
            .collect()
    }

    /// Look up registry info for an AS.
    pub fn info_for(&self, asn: Asn) -> Option<&AsInfo> {
        self.info.iter().find(|i| i.asn == asn)
    }
}

/// A Prolific census answer: service-quality score from 1 (very poor) to
/// 5 (very good).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CensusResponse {
    /// Who answered.
    pub tester: TesterId,
    /// Their operator.
    pub operator: crate::ids::Operator,
    /// Satisfaction score, `1..=5`.
    pub score: u8,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Operator;

    #[test]
    fn country_code_normalises() {
        let us = CountryCode::new("us");
        assert_eq!(us.as_str(), "US");
        assert_eq!(us, CountryCode::new("US"));
        assert_eq!(us.to_string(), "US");
    }

    #[test]
    fn jitter_variation_matches_definition() {
        let rec = NdtRecord {
            timestamp: Timestamp(0),
            client: Ipv4::new(1, 2, 3, 4),
            asn: Asn(14593),
            latency_p5: Millis(50.0),
            jitter_p95: Millis(25.0),
            retrans_fraction: 0.01,
            download: Mbps(100.0),
        };
        assert!((rec.jitter_variation() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn thirteen_roots() {
        assert_eq!(RootServer::ALL.len(), 13);
        assert_eq!(RootServer::M.index(), 12);
        assert_eq!(RootServer::K.to_string(), "K-root");
    }

    fn sample_trace(reached: bool) -> TracerouteRecord {
        TracerouteRecord {
            probe: ProbeId(1),
            timestamp: Timestamp(100),
            target: RootServer::K,
            hops: vec![
                TraceHop {
                    addr: Ipv4::new(192, 168, 1, 1),
                    rtt: Millis(1.0),
                },
                TraceHop {
                    addr: Ipv4::CGNAT_GATEWAY,
                    rtt: Millis(35.0),
                },
                TraceHop {
                    addr: Ipv4::new(206, 224, 64, 1),
                    rtt: Millis(37.0),
                },
                TraceHop {
                    addr: Ipv4::new(193, 0, 14, 129),
                    rtt: Millis(52.0),
                },
            ],
            reached,
        }
    }

    #[test]
    fn traceroute_cgnat_extraction() {
        let t = sample_trace(true);
        assert_eq!(t.cgnat_rtt(), Some(Millis(35.0)));
        assert_eq!(t.end_to_end_rtt(), Some(Millis(52.0)));
        assert_eq!(t.hop_count(), Some(4));
    }

    #[test]
    fn unreached_traceroute_has_no_rtt() {
        let t = sample_trace(false);
        assert_eq!(t.end_to_end_rtt(), None);
        assert_eq!(t.hop_count(), None);
        // CGNAT hop is still measurable even when the target dropped.
        assert_eq!(t.cgnat_rtt(), Some(Millis(35.0)));
    }

    #[test]
    fn bgp_snapshot_degree_and_peers() {
        let snap = BgpSnapshot {
            date: Date::new(2023, 1, 1),
            edges: vec![
                (Asn(100), Asn(14593)),
                (Asn(3356), Asn(14593)),
                (Asn(100), Asn(3356)),
            ],
            info: vec![AsInfo {
                asn: Asn(14593),
                name: "SpaceX Starlink".into(),
                country: CountryCode::new("US"),
            }],
        };
        assert_eq!(snap.degree(Asn(14593)), 2);
        let mut peers = snap.peers(Asn(14593));
        peers.sort();
        assert_eq!(peers, vec![Asn(100), Asn(3356)]);
        assert_eq!(snap.info_for(Asn(14593)).unwrap().country.as_str(), "US");
        assert!(snap.info_for(Asn(1)).is_none());
        let _ = Operator::Starlink; // schema ties back to operators
    }
}
