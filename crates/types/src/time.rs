//! Simulation time axis.
//!
//! All timestamps in the workspace are anchored at **2021-01-01 00:00:00
//! UTC**, the first day of the paper's M-Lab observation window. Two
//! granularities are used:
//!
//! * [`Timestamp`] — whole seconds since the epoch; the resolution of
//!   individual measurements (speed tests, traceroutes).
//! * [`UtcDay`] — whole days since the epoch; the resolution of daily
//!   aggregates (Figure 4a) and of BGP snapshots.
//!
//! Calendar arithmetic uses the proleptic Gregorian calendar via Howard
//! Hinnant's `days_from_civil` algorithm, so dates round-trip exactly
//! over the whole window (and far beyond).

use std::fmt;
use std::ops::{Add, Sub};

/// Seconds in one day.
pub const SECS_PER_DAY: u64 = 86_400;

/// The calendar date of the epoch (day 0).
pub const EPOCH: Date = Date {
    year: 2021,
    month: 1,
    day: 1,
};

/// Whole seconds since 2021-01-01 00:00:00 UTC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// Timestamp at the very start of `day`.
    pub fn from_day(day: UtcDay) -> Self {
        Timestamp(u64::from(day.0) * SECS_PER_DAY)
    }

    /// Construct from a calendar date and an offset within the day.
    ///
    /// # Panics
    /// Panics if `date` precedes the epoch or `sec_of_day >= 86_400`.
    pub fn from_date(date: Date, sec_of_day: u64) -> Self {
        assert!(sec_of_day < SECS_PER_DAY, "second-of-day out of range");
        Timestamp::from_day(date.to_day()) + sec_of_day
    }

    /// The day this timestamp falls on.
    pub fn day(self) -> UtcDay {
        UtcDay((self.0 / SECS_PER_DAY) as u32)
    }

    /// Seconds elapsed since the start of the day.
    pub fn sec_of_day(self) -> u64 {
        self.0 % SECS_PER_DAY
    }

    /// The calendar date this timestamp falls on.
    pub fn date(self) -> Date {
        self.day().to_date()
    }

    /// Seconds since the epoch as `f64` (for plotting / binning).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64
    }
}

impl Add<u64> for Timestamp {
    type Output = Timestamp;
    fn add(self, rhs: u64) -> Timestamp {
        Timestamp(self.0 + rhs)
    }
}

impl Sub<Timestamp> for Timestamp {
    type Output = u64;
    /// Seconds from `rhs` to `self`.
    ///
    /// # Panics
    /// Panics in debug builds if `rhs` is later than `self`.
    fn sub(self, rhs: Timestamp) -> u64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.sec_of_day();
        write!(
            f,
            "{}T{:02}:{:02}:{:02}Z",
            self.date(),
            s / 3600,
            (s % 3600) / 60,
            s % 60
        )
    }
}

/// Whole days since 2021-01-01 (day 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct UtcDay(pub u32);

impl UtcDay {
    /// The calendar date for this day number.
    pub fn to_date(self) -> Date {
        Date::from_rata_die(EPOCH.rata_die() + i64::from(self.0))
    }

    /// Iterate over days `self..end` (half-open).
    pub fn range_to(self, end: UtcDay) -> impl Iterator<Item = UtcDay> {
        (self.0..end.0).map(UtcDay)
    }
}

impl Add<u32> for UtcDay {
    type Output = UtcDay;
    fn add(self, rhs: u32) -> UtcDay {
        UtcDay(self.0 + rhs)
    }
}

impl Sub<UtcDay> for UtcDay {
    type Output = i64;
    fn sub(self, rhs: UtcDay) -> i64 {
        i64::from(self.0) - i64::from(rhs.0)
    }
}

impl fmt::Display for UtcDay {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.to_date().fmt(f)
    }
}

/// A proleptic-Gregorian calendar date.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Date {
    pub year: i32,
    /// 1..=12
    pub month: u8,
    /// 1..=31
    pub day: u8,
}

impl Date {
    /// Construct a date, validating month and day-of-month.
    ///
    /// # Panics
    /// Panics if the month or day is out of range for the given month
    /// (leap years are honoured).
    pub fn new(year: i32, month: u8, day: u8) -> Self {
        assert!((1..=12).contains(&month), "month out of range: {month}");
        let dim = days_in_month(year, month);
        assert!(
            (1..=dim).contains(&day),
            "day out of range: {year:04}-{month:02}-{day:02}"
        );
        Date { year, month, day }
    }

    /// Days since 0000-03-01 shifted so that 1970-01-01 is 719468 — the
    /// standard `days_from_civil` rata die.
    fn rata_die(self) -> i64 {
        let y = i64::from(self.year) - i64::from(self.month <= 2);
        let era = if y >= 0 { y } else { y - 399 } / 400;
        let yoe = y - era * 400; // [0, 399]
        let mp = i64::from((self.month + 9) % 12); // [0, 11], March = 0
        let doy = (153 * mp + 2) / 5 + i64::from(self.day) - 1; // [0, 365]
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
        era * 146_097 + doe
    }

    /// Inverse of [`Date::rata_die`] (`civil_from_days`).
    fn from_rata_die(z: i64) -> Self {
        let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
        let doe = z - era * 146_097; // [0, 146096]
        let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146_096) / 365;
        let y = yoe + era * 400;
        let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
        let mp = (5 * doy + 2) / 153; // [0, 11]
        let day = (doy - (153 * mp + 2) / 5 + 1) as u8;
        let month = if mp < 10 { mp + 3 } else { mp - 9 } as u8;
        Date {
            year: (y + i64::from(month <= 2)) as i32,
            month,
            day,
        }
    }

    /// Day number relative to the 2021-01-01 epoch.
    ///
    /// # Panics
    /// Panics if the date precedes the epoch.
    pub fn to_day(self) -> UtcDay {
        let delta = self.rata_die() - EPOCH.rata_die();
        assert!(delta >= 0, "date {self} precedes the 2021-01-01 epoch");
        UtcDay(delta as u32)
    }

    /// Timestamp at midnight on this date.
    pub fn midnight(self) -> Timestamp {
        Timestamp::from_day(self.to_day())
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

/// Is `year` a Gregorian leap year?
pub fn is_leap_year(year: i32) -> bool {
    year % 4 == 0 && (year % 100 != 0 || year % 400 == 0)
}

/// Number of days in `month` of `year`.
pub fn days_in_month(year: i32, month: u8) -> u8 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 if is_leap_year(year) => 29,
        2 => 28,
        _ => panic!("invalid month {month}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_day_zero() {
        assert_eq!(EPOCH.to_day(), UtcDay(0));
        assert_eq!(UtcDay(0).to_date(), EPOCH);
    }

    #[test]
    fn known_dates_round_trip() {
        // Dates that matter to the paper.
        let cases = [
            (Date::new(2021, 1, 1), 0),
            (Date::new(2021, 12, 31), 364),
            (Date::new(2022, 1, 1), 365),
            (Date::new(2022, 7, 12), 365 + 192), // NZ PoP change
            (Date::new(2023, 3, 31), 365 + 365 + 89),
            (Date::new(2023, 5, 3), 365 + 365 + 122), // Atlas window end
        ];
        for (date, day) in cases {
            assert_eq!(date.to_day(), UtcDay(day), "{date}");
            assert_eq!(UtcDay(day).to_date(), date, "{day}");
        }
    }

    #[test]
    fn all_days_in_window_round_trip() {
        for d in 0..1200u32 {
            let day = UtcDay(d);
            assert_eq!(day.to_date().to_day(), day);
        }
    }

    #[test]
    fn leap_year_handling() {
        assert!(is_leap_year(2024));
        assert!(!is_leap_year(2023));
        assert!(!is_leap_year(2100));
        assert!(is_leap_year(2000));
        assert_eq!(days_in_month(2024, 2), 29);
        assert_eq!(days_in_month(2023, 2), 28);
        // 2024-02-29 exists and round-trips.
        let d = Date::new(2024, 2, 29);
        assert_eq!(d.to_day().to_date(), d);
    }

    #[test]
    #[should_panic(expected = "day out of range")]
    fn invalid_date_rejected() {
        let _ = Date::new(2023, 2, 29);
    }

    #[test]
    fn timestamp_components() {
        let t = Timestamp::from_date(Date::new(2022, 7, 12), 3661);
        assert_eq!(t.date(), Date::new(2022, 7, 12));
        assert_eq!(t.sec_of_day(), 3661);
        assert_eq!(t.to_string(), "2022-07-12T01:01:01Z");
    }

    #[test]
    fn timestamp_ordering_and_arithmetic() {
        let a = Timestamp::from_date(Date::new(2021, 6, 1), 0);
        let b = a + 7200;
        assert!(b > a);
        assert_eq!(b - a, 7200);
        assert_eq!(b.day(), a.day());
    }

    #[test]
    fn day_range_iteration() {
        let start = Date::new(2021, 1, 1).to_day();
        let end = Date::new(2021, 1, 5).to_day();
        let days: Vec<_> = start.range_to(end).collect();
        assert_eq!(days.len(), 4);
        assert_eq!(days[3].to_date(), Date::new(2021, 1, 4));
    }
}
