//! Deterministic sharded execution on `std::thread::scope`.
//!
//! Every hot layer in the workspace (corpus generators, the
//! identification pipeline, per-probe analyses) is expressed as a map
//! over an index range. This module splits such a range into *shards*
//! whose boundaries depend only on the size of the work — never on the
//! number of worker threads — runs the shards on a small scoped worker
//! pool, and reassembles the results **in shard order**. Because each
//! shard draws from its own [`Rng`](crate::Rng) substream (see
//! [`Rng::substream_shard`](crate::Rng::substream_shard)) and the merge
//! order is fixed, output is byte-identical to the serial run regardless
//! of thread count.
//!
//! With `threads == 1` (or a single shard) the map runs inline on the
//! calling thread with no pool, no channel, and no allocation beyond the
//! result vector, so the serial path pays nothing for the abstraction.
//!
//! ```
//! use sno_types::par::{shard_map, shard_ranges};
//!
//! // Shard boundaries are a function of (len, chunk) only.
//! let shards = shard_ranges(10, 4);
//! assert_eq!(shards, vec![0..4, 4..8, 8..10]);
//!
//! // Results come back in shard order at any thread count.
//! let serial: Vec<usize> = shard_map(8, 1, |i| i * i);
//! let parallel: Vec<usize> = shard_map(8, 4, |i| i * i);
//! assert_eq!(serial, parallel);
//! ```

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Default shard granularity for record-level work (sessions, probes,
/// prefixes). Small enough to load-balance across a pool, large enough
/// that per-shard overhead (one `Rng` derivation, one channel send) is
/// negligible.
pub const DEFAULT_CHUNK: usize = 128;

/// Resolve a thread-count setting: `0` means "auto" (all available
/// cores); any other value is taken literally.
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        threads
    }
}

/// Split `0..len` into contiguous ranges of at most `chunk` items.
///
/// The split depends only on `(len, chunk)`, so shard boundaries — and
/// therefore any per-shard RNG substreams — are identical at every
/// thread count.
///
/// # Panics
/// Panics if `chunk == 0`.
pub fn shard_ranges(len: usize, chunk: usize) -> Vec<Range<usize>> {
    assert!(chunk > 0, "shard_ranges: chunk must be positive");
    (0..len.div_ceil(chunk))
        .map(|i| i * chunk..((i + 1) * chunk).min(len))
        .collect()
}

/// Run `f(0), f(1), …, f(shards - 1)` on up to `threads` workers
/// (`0` = auto) and return the results **in shard index order**.
///
/// Work is distributed dynamically through an atomic counter, so slow
/// shards do not stall fast workers, but the returned vector is always
/// `[f(0), f(1), …]` — the schedule never leaks into the output. If a
/// shard panics the panic is propagated to the caller once all workers
/// have stopped (via `std::thread::scope`'s implicit join).
pub fn shard_map<T, F>(shards: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = resolve_threads(threads).min(shards);
    if workers <= 1 {
        return (0..shards).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= shards {
                    break;
                }
                let value = f(i);
                if tx.send((i, value)).is_err() {
                    break;
                }
            });
        }
    });
    drop(tx);
    let mut results: Vec<(usize, T)> = rx.into_iter().collect();
    results.sort_unstable_by_key(|&(i, _)| i);
    results.into_iter().map(|(_, value)| value).collect()
}

/// [`shard_map`] followed by an **in-shard-order** fold. The fold runs
/// on the calling thread, so `fold` sees results exactly as a serial
/// loop would.
pub fn shard_reduce<T, Acc, F, G>(shards: usize, threads: usize, f: F, init: Acc, fold: G) -> Acc
where
    T: Send,
    F: Fn(usize) -> T + Sync,
    G: FnMut(Acc, T) -> Acc,
{
    shard_map(shards, threads, f).into_iter().fold(init, fold)
}

/// Map `f` over fixed-size chunks of `0..len` (see [`shard_ranges`])
/// and concatenate the per-chunk vectors in shard order. The workhorse
/// for record generators: each chunk derives its own RNG substream from
/// its shard index and emits a batch of records.
pub fn shard_map_chunks<T, F>(len: usize, chunk: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, Range<usize>) -> Vec<T> + Sync,
{
    let ranges = shard_ranges(len, chunk);
    let batches = shard_map(ranges.len(), threads, |i| f(i, ranges[i].clone()));
    let mut out = Vec::with_capacity(len);
    for batch in batches {
        out.extend(batch);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_threads_zero_is_auto() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(1), 1);
        assert_eq!(resolve_threads(7), 7);
    }

    #[test]
    fn shard_ranges_cover_exactly() {
        for len in [0usize, 1, 5, 127, 128, 129, 1000] {
            for chunk in [1usize, 4, 128] {
                let ranges = shard_ranges(len, chunk);
                let mut expect = 0;
                for r in &ranges {
                    assert_eq!(r.start, expect);
                    assert!(r.end - r.start <= chunk);
                    assert!(!r.is_empty());
                    expect = r.end;
                }
                assert_eq!(expect, len);
            }
        }
        assert!(shard_ranges(0, 16).is_empty());
    }

    #[test]
    fn shard_boundaries_do_not_depend_on_threads() {
        // The ranges are computed before any pool exists; this pins the
        // contract that they are a pure function of (len, chunk).
        assert_eq!(shard_ranges(300, 128), vec![0..128, 128..256, 256..300]);
    }

    #[test]
    fn shard_map_matches_serial_at_any_thread_count() {
        let serial: Vec<u64> = (0..97).map(|i| (i as u64).wrapping_mul(0x9E37)).collect();
        for threads in [1, 2, 3, 8] {
            let got = shard_map(97, threads, |i| (i as u64).wrapping_mul(0x9E37));
            assert_eq!(got, serial, "threads {threads}");
        }
    }

    #[test]
    fn shard_map_empty_and_single() {
        let empty: Vec<u32> = shard_map(0, 4, |_| unreachable!());
        assert!(empty.is_empty());
        assert_eq!(shard_map(1, 8, |i| i + 10), vec![10]);
    }

    #[test]
    fn shard_reduce_folds_in_order() {
        let joined = shard_reduce(5, 4, |i| i.to_string(), String::new(), |acc, s| acc + &s);
        assert_eq!(joined, "01234");
    }

    #[test]
    fn shard_map_chunks_concatenates_in_order() {
        let serial: Vec<usize> = (0..1000).collect();
        for threads in [1, 2, 8] {
            let got = shard_map_chunks(1000, 128, threads, |_shard, range| range.collect());
            assert_eq!(got, serial, "threads {threads}");
        }
    }

    #[test]
    fn worker_panic_propagates() {
        let caught = std::panic::catch_unwind(|| {
            shard_map(16, 4, |i| {
                if i == 7 {
                    panic!("shard failed");
                }
                i
            })
        });
        assert!(caught.is_err());
    }
}
