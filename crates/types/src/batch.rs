//! Columnar (struct-of-arrays) record batches.
//!
//! The hot analysis stages — statistics accumulation, the accept pass,
//! the stability grouping — touch only one or two fields of every
//! [`NdtRecord`], but the row layout walks 56-byte structs and drags
//! the unused fields through the cache with them. A [`RecordBatch`]
//! stores the same records as parallel columns, so a pass over ASNs and
//! latencies streams two dense `Vec`s instead.
//!
//! Layout (one row per record, columns contiguous):
//!
//! ```text
//! row i:   timestamps[i]  clients[i]  asns[i]  latency_p5[i]  jitter_p95[i]  retrans[i]  download[i]
//!          Vec<Timestamp> Vec<Ipv4>   Vec<Asn> Vec<f64>       Vec<f64>       Vec<f64>    Vec<f64>
//! ```
//!
//! Batches are built per chunk from any [`RecordChunks`] stream (the
//! streamed pipeline) or in one shot from a slice (the materialized
//! pipeline). Column order is record order; [`RecordBatch::record`]
//! reconstructs row `i` exactly, so the columnar and row paths are
//! interchangeable bit for bit.

use crate::chunk::RecordChunks;
use crate::records::NdtRecord;
use crate::{Asn, Ipv4, Prefix24, Timestamp};

/// A struct-of-arrays batch of NDT records. All columns always have the
/// same length; `push` is the only way rows enter, so the invariant
/// holds by construction.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecordBatch {
    timestamps: Vec<Timestamp>,
    clients: Vec<Ipv4>,
    asns: Vec<Asn>,
    latency_p5: Vec<f64>,
    jitter_p95: Vec<f64>,
    retrans_fraction: Vec<f64>,
    download: Vec<f64>,
}

impl RecordBatch {
    /// An empty batch.
    pub fn new() -> RecordBatch {
        RecordBatch::default()
    }

    /// An empty batch with room for `capacity` rows per column.
    pub fn with_capacity(capacity: usize) -> RecordBatch {
        RecordBatch {
            timestamps: Vec::with_capacity(capacity),
            clients: Vec::with_capacity(capacity),
            asns: Vec::with_capacity(capacity),
            latency_p5: Vec::with_capacity(capacity),
            jitter_p95: Vec::with_capacity(capacity),
            retrans_fraction: Vec::with_capacity(capacity),
            download: Vec::with_capacity(capacity),
        }
    }

    /// Append one record as a row.
    pub fn push(&mut self, rec: &NdtRecord) {
        self.timestamps.push(rec.timestamp);
        self.clients.push(rec.client);
        self.asns.push(rec.asn);
        self.latency_p5.push(rec.latency_p5.0);
        self.jitter_p95.push(rec.jitter_p95.0);
        self.retrans_fraction.push(rec.retrans_fraction);
        self.download.push(rec.download.0);
    }

    /// Append every record of a slice, in order.
    pub fn extend_from_records(&mut self, records: &[NdtRecord]) {
        self.timestamps.reserve(records.len());
        for rec in records {
            self.push(rec);
        }
    }

    /// Columnarize a materialized slice.
    pub fn from_records(records: &[NdtRecord]) -> RecordBatch {
        let mut batch = RecordBatch::with_capacity(records.len());
        batch.extend_from_records(records);
        batch
    }

    /// Drain a chunked stream into one batch (rows in stream order —
    /// the same order [`RecordChunks::collect_records`] yields).
    pub fn from_chunks<C>(stream: C) -> RecordBatch
    where
        C: RecordChunks<Item = NdtRecord>,
    {
        stream.fold_chunks(RecordBatch::new(), |mut batch, chunk| {
            batch.extend_from_records(&chunk);
            batch
        })
    }

    /// Rows in the batch.
    pub fn len(&self) -> usize {
        self.timestamps.len()
    }

    /// True when the batch has no rows.
    pub fn is_empty(&self) -> bool {
        self.timestamps.is_empty()
    }

    /// Reconstruct row `i` as the record it came from.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    pub fn record(&self, i: usize) -> NdtRecord {
        NdtRecord {
            timestamp: self.timestamps[i],
            client: self.clients[i],
            asn: self.asns[i],
            latency_p5: crate::Millis(self.latency_p5[i]),
            jitter_p95: crate::Millis(self.jitter_p95[i]),
            retrans_fraction: self.retrans_fraction[i],
            download: crate::Mbps(self.download[i]),
        }
    }

    /// The `/24` prefix of row `i`'s client address.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    pub fn prefix24(&self, i: usize) -> Prefix24 {
        self.clients[i].prefix24()
    }

    /// The timestamp column.
    pub fn timestamps(&self) -> &[Timestamp] {
        &self.timestamps
    }

    /// The client-address column.
    pub fn clients(&self) -> &[Ipv4] {
        &self.clients
    }

    /// The ASN column.
    pub fn asns(&self) -> &[Asn] {
        &self.asns
    }

    /// The p5-latency column (ms).
    pub fn latency_p5(&self) -> &[f64] {
        &self.latency_p5
    }

    /// The p95-jitter column (ms).
    pub fn jitter_p95(&self) -> &[f64] {
        &self.jitter_p95
    }

    /// The retransmitted-byte-fraction column.
    pub fn retrans_fraction(&self) -> &[f64] {
        &self.retrans_fraction
    }

    /// The mean-download-rate column (Mbps).
    pub fn download(&self) -> &[f64] {
        &self.download
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::slice_chunks;
    use crate::{Mbps, Millis};

    fn sample(n: usize) -> Vec<NdtRecord> {
        (0..n)
            .map(|i| NdtRecord {
                timestamp: Timestamp(1_000 * i as u64),
                client: Ipv4::new(45, 232, (i % 256) as u8, (i % 200) as u8 + 1),
                asn: Asn(14593 + (i % 3) as u32),
                latency_p5: Millis(50.0 + i as f64 * 0.25),
                jitter_p95: Millis(10.0 + i as f64 * 0.125),
                retrans_fraction: (i % 10) as f64 / 100.0,
                download: Mbps(100.0 - i as f64 * 0.5),
            })
            .collect()
    }

    #[test]
    fn round_trips_rows() {
        let records = sample(37);
        let batch = RecordBatch::from_records(&records);
        assert_eq!(batch.len(), records.len());
        assert!(!batch.is_empty());
        for (i, rec) in records.iter().enumerate() {
            assert_eq!(&batch.record(i), rec, "row {i}");
            assert_eq!(batch.prefix24(i), rec.client.prefix24(), "row {i}");
        }
    }

    #[test]
    fn from_chunks_matches_from_records_at_any_chunk_len() {
        let records = sample(101);
        let whole = RecordBatch::from_records(&records);
        for chunk_len in [1usize, 7, 101, 4096] {
            let chunked = RecordBatch::from_chunks(slice_chunks(&records, chunk_len));
            assert_eq!(chunked, whole, "chunk_len {chunk_len}");
        }
    }

    #[test]
    fn columns_are_parallel() {
        let records = sample(16);
        let batch = RecordBatch::from_records(&records);
        assert_eq!(batch.timestamps().len(), batch.len());
        assert_eq!(batch.clients().len(), batch.len());
        assert_eq!(batch.asns().len(), batch.len());
        assert_eq!(batch.latency_p5().len(), batch.len());
        assert_eq!(batch.jitter_p95().len(), batch.len());
        assert_eq!(batch.retrans_fraction().len(), batch.len());
        assert_eq!(batch.download().len(), batch.len());
        for (i, rec) in records.iter().enumerate() {
            assert_eq!(batch.asns()[i], rec.asn);
            assert_eq!(batch.latency_p5()[i], rec.latency_p5.0);
        }
    }

    #[test]
    fn empty_batch() {
        let batch = RecordBatch::new();
        assert_eq!(batch.len(), 0);
        assert!(batch.is_empty());
        let from_empty = RecordBatch::from_records(&[]);
        assert_eq!(from_empty, batch);
    }
}
