//! IPv4 addresses and `/24` prefixes.
//!
//! The paper's prefix-filtering stage (Section 3.2, step 3) groups M-Lab
//! speed tests by `/24` IPv4 prefix — the smallest and most common block
//! in the M-Lab annotations. [`Prefix24`] is the key type of that stage.

use std::fmt;

/// An IPv4 address stored as a big-endian `u32`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ipv4(pub u32);

impl Ipv4 {
    /// Build from dotted-quad octets.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Self {
        Ipv4(u32::from_be_bytes([a, b, c, d]))
    }

    /// The four octets, most significant first.
    pub const fn octets(self) -> [u8; 4] {
        self.0.to_be_bytes()
    }

    /// The `/24` prefix containing this address.
    pub const fn prefix24(self) -> Prefix24 {
        Prefix24(self.0 & 0xFFFF_FF00)
    }

    /// The host byte (last octet).
    pub const fn host(self) -> u8 {
        (self.0 & 0xFF) as u8
    }

    /// The Starlink carrier-grade-NAT gateway address `100.64.0.1`, the
    /// hop the paper uses to measure probe→PoP RTT.
    pub const CGNAT_GATEWAY: Ipv4 = Ipv4::new(100, 64, 0, 1);

    /// Is this address inside the RFC 6598 shared space `100.64.0.0/10`?
    pub const fn is_cgnat(self) -> bool {
        (self.0 >> 22) == (0x6440_0000u32 >> 22)
    }

    /// Is this address inside RFC 1918 private space?
    pub const fn is_private(self) -> bool {
        let o = self.octets();
        o[0] == 10 || (o[0] == 172 && o[1] >= 16 && o[1] <= 31) || (o[0] == 192 && o[1] == 168)
    }
}

impl fmt::Display for Ipv4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = self.octets();
        write!(f, "{}.{}.{}.{}", o[0], o[1], o[2], o[3])
    }
}

/// A `/24` IPv4 prefix (network address with the last octet zero).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Prefix24(u32);

impl Prefix24 {
    /// Build from the three network octets.
    pub const fn new(a: u8, b: u8, c: u8) -> Self {
        Prefix24(u32::from_be_bytes([a, b, c, 0]))
    }

    /// Does `addr` fall inside this prefix?
    pub const fn contains(self, addr: Ipv4) -> bool {
        (addr.0 & 0xFFFF_FF00) == self.0
    }

    /// The `host`-th address inside the prefix.
    pub const fn addr(self, host: u8) -> Ipv4 {
        Ipv4(self.0 | host as u32)
    }

    /// The network address (host byte zero).
    pub const fn network(self) -> Ipv4 {
        Ipv4(self.0)
    }

    /// The `i`-th consecutive `/24` after this one (wrapping within the
    /// 32-bit space; generators use small offsets only).
    pub const fn offset(self, i: u32) -> Prefix24 {
        Prefix24(self.0.wrapping_add(i << 8))
    }
}

impl fmt::Display for Prefix24 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/24", Ipv4(self.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dotted_quad_round_trip() {
        let a = Ipv4::new(75, 105, 63, 17);
        assert_eq!(a.to_string(), "75.105.63.17");
        assert_eq!(a.octets(), [75, 105, 63, 17]);
        assert_eq!(a.host(), 17);
    }

    #[test]
    fn prefix_membership() {
        let p = Prefix24::new(45, 232, 115);
        assert_eq!(p.to_string(), "45.232.115.0/24");
        assert!(p.contains(Ipv4::new(45, 232, 115, 0)));
        assert!(p.contains(Ipv4::new(45, 232, 115, 255)));
        assert!(!p.contains(Ipv4::new(45, 232, 116, 0)));
        assert_eq!(Ipv4::new(45, 232, 115, 9).prefix24(), p);
    }

    #[test]
    fn prefix_addressing() {
        let p = Prefix24::new(10, 0, 0);
        assert_eq!(p.addr(42), Ipv4::new(10, 0, 0, 42));
        assert_eq!(p.network(), Ipv4::new(10, 0, 0, 0));
        assert_eq!(p.offset(3), Prefix24::new(10, 0, 3));
        assert_eq!(p.offset(256), Prefix24::new(10, 1, 0));
    }

    #[test]
    fn cgnat_detection() {
        assert!(Ipv4::CGNAT_GATEWAY.is_cgnat());
        assert!(Ipv4::new(100, 127, 255, 255).is_cgnat());
        assert!(!Ipv4::new(100, 128, 0, 0).is_cgnat());
        assert!(!Ipv4::new(100, 63, 255, 255).is_cgnat());
    }

    #[test]
    fn private_detection() {
        assert!(Ipv4::new(10, 1, 2, 3).is_private());
        assert!(Ipv4::new(172, 16, 0, 1).is_private());
        assert!(Ipv4::new(172, 31, 255, 1).is_private());
        assert!(!Ipv4::new(172, 32, 0, 1).is_private());
        assert!(Ipv4::new(192, 168, 1, 1).is_private());
        assert!(!Ipv4::new(8, 8, 8, 8).is_private());
        // CGNAT space is *not* RFC 1918.
        assert!(!Ipv4::CGNAT_GATEWAY.is_private());
    }
}
