//! Compact binary corpus format: length-prefixed little-endian record
//! frames behind a versioned header.
//!
//! The two-pass streamed pipeline re-streams its source once per pass;
//! when the source is a generator, the second pass pays full generation
//! again. Encoding the first pass's chunks into an in-memory byte
//! buffer turns the second pass into a replay: ~52 bytes per record,
//! decoded back bit-for-bit (floats travel as raw IEEE-754 bits, so
//! even NaN payloads survive).
//!
//! Wire layout, all integers little-endian:
//!
//! ```text
//! header   "SNOC"  version:u16  reserved:u16  count:u64            (16 bytes)
//! frame    len:u32  timestamp:u64  client:u32  asn:u32
//!          latency_p5:f64  jitter_p95:f64  retrans:f64  download:f64 (4 + 48 bytes)
//! ```
//!
//! `len` names the frame body length so later versions can grow frames
//! without breaking old readers; version-1 bodies are always 48 bytes.
//! [`EncodedCorpus::from_bytes`] validates the whole buffer up front,
//! which is why [`EncodedCorpus::chunks`] can decode infallibly.

use crate::chunk::RecordChunks;
use crate::records::NdtRecord;
use crate::{Asn, Ipv4, Mbps, Millis, Timestamp};
use std::fmt;

/// File magic: the first four header bytes.
pub const MAGIC: [u8; 4] = *b"SNOC";

/// The format version this module writes.
pub const VERSION: u16 = 1;

const HEADER_LEN: usize = 16;
const FRAME_BODY_LEN: usize = 48;
const FRAME_LEN: usize = 4 + FRAME_BODY_LEN;

/// Why a byte buffer was rejected as an encoded corpus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer is shorter than a header or ends mid-frame.
    Truncated,
    /// The first four bytes are not [`MAGIC`].
    BadMagic([u8; 4]),
    /// The header names a version this reader does not speak.
    UnsupportedVersion(u16),
    /// A frame's length prefix disagrees with the version-1 body size.
    BadFrameLength {
        /// Frame index (0-based).
        index: u64,
        /// The length the prefix claimed.
        len: u32,
    },
    /// The header count disagrees with the frames actually present.
    CountMismatch {
        /// What the header promised.
        header: u64,
        /// Frames found in the buffer.
        actual: u64,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "buffer truncated mid-header or mid-frame"),
            CodecError::BadMagic(m) => write!(f, "bad magic {m:?} (want {MAGIC:?})"),
            CodecError::UnsupportedVersion(v) => {
                write!(f, "unsupported version {v} (this reader speaks {VERSION})")
            }
            CodecError::BadFrameLength { index, len } => {
                write!(
                    f,
                    "frame {index}: body length {len} (want {FRAME_BODY_LEN})"
                )
            }
            CodecError::CountMismatch { header, actual } => {
                write!(f, "header promises {header} records, buffer holds {actual}")
            }
        }
    }
}

impl std::error::Error for CodecError {}

fn read_u32(bytes: &[u8]) -> u32 {
    let mut buf = [0u8; 4];
    buf.copy_from_slice(&bytes[..4]);
    u32::from_le_bytes(buf)
}

fn read_u64(bytes: &[u8]) -> u64 {
    let mut buf = [0u8; 8];
    buf.copy_from_slice(&bytes[..8]);
    u64::from_le_bytes(buf)
}

fn read_u16(bytes: &[u8]) -> u16 {
    let mut buf = [0u8; 2];
    buf.copy_from_slice(&bytes[..2]);
    u16::from_le_bytes(buf)
}

fn decode_body(body: &[u8]) -> NdtRecord {
    NdtRecord {
        timestamp: Timestamp(read_u64(&body[0..8])),
        client: Ipv4(read_u32(&body[8..12])),
        asn: Asn(read_u32(&body[12..16])),
        latency_p5: Millis(f64::from_bits(read_u64(&body[16..24]))),
        jitter_p95: Millis(f64::from_bits(read_u64(&body[24..32]))),
        retrans_fraction: f64::from_bits(read_u64(&body[32..40])),
        download: Mbps(f64::from_bits(read_u64(&body[40..48]))),
    }
}

/// A validated encoded corpus: header plus `len()` record frames.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodedCorpus {
    bytes: Vec<u8>,
    count: u64,
}

impl EncodedCorpus {
    /// Records in the corpus.
    pub fn len(&self) -> usize {
        self.count as usize
    }

    /// True when no records are encoded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The raw wire bytes (header included).
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Validate `bytes` as a version-1 corpus: magic, version, every
    /// frame length, and the header count.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<EncodedCorpus, CodecError> {
        if bytes.len() < HEADER_LEN {
            return Err(CodecError::Truncated);
        }
        let mut magic = [0u8; 4];
        magic.copy_from_slice(&bytes[..4]);
        if magic != MAGIC {
            return Err(CodecError::BadMagic(magic));
        }
        let version = read_u16(&bytes[4..6]);
        if version != VERSION {
            return Err(CodecError::UnsupportedVersion(version));
        }
        let header_count = read_u64(&bytes[8..16]);
        let mut offset = HEADER_LEN;
        let mut actual = 0u64;
        while offset < bytes.len() {
            if bytes.len() - offset < 4 {
                return Err(CodecError::Truncated);
            }
            let len = read_u32(&bytes[offset..offset + 4]);
            if len as usize != FRAME_BODY_LEN {
                return Err(CodecError::BadFrameLength { index: actual, len });
            }
            if bytes.len() - offset < FRAME_LEN {
                return Err(CodecError::Truncated);
            }
            offset += FRAME_LEN;
            actual += 1;
        }
        if actual != header_count {
            return Err(CodecError::CountMismatch {
                header: header_count,
                actual,
            });
        }
        Ok(EncodedCorpus {
            bytes,
            count: actual,
        })
    }

    /// Stream the records back in chunks of at most `chunk_len`.
    ///
    /// # Panics
    /// Panics if `chunk_len == 0`.
    pub fn chunks(&self, chunk_len: usize) -> DecodeChunks<'_> {
        assert!(chunk_len > 0, "chunks: chunk_len must be positive");
        DecodeChunks {
            bytes: &self.bytes,
            offset: HEADER_LEN,
            chunk_len,
        }
    }

    /// Decode every record at once.
    pub fn decode_records(&self) -> Vec<NdtRecord> {
        self.chunks(self.len().max(1)).collect_records()
    }
}

/// Encode records (a slice, or streamed with [`Encoder`]) into an
/// [`EncodedCorpus`].
pub fn encode_records(records: &[NdtRecord]) -> EncodedCorpus {
    let mut enc = Encoder::new();
    enc.extend_records(records);
    enc.finish()
}

/// Incremental encoder: push chunks as they stream by, then `finish`.
#[derive(Debug, Clone)]
pub struct Encoder {
    bytes: Vec<u8>,
    count: u64,
}

impl Encoder {
    /// An encoder holding an empty corpus.
    pub fn new() -> Encoder {
        let mut bytes = Vec::with_capacity(HEADER_LEN);
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.extend_from_slice(&0u16.to_le_bytes()); // reserved
        bytes.extend_from_slice(&0u64.to_le_bytes()); // count, patched by finish
        Encoder { bytes, count: 0 }
    }

    /// Append one record frame.
    pub fn push(&mut self, rec: &NdtRecord) {
        self.bytes.reserve(FRAME_LEN);
        self.bytes
            .extend_from_slice(&(FRAME_BODY_LEN as u32).to_le_bytes());
        self.bytes.extend_from_slice(&rec.timestamp.0.to_le_bytes());
        self.bytes.extend_from_slice(&rec.client.0.to_le_bytes());
        self.bytes.extend_from_slice(&rec.asn.0.to_le_bytes());
        self.bytes
            .extend_from_slice(&rec.latency_p5.0.to_bits().to_le_bytes());
        self.bytes
            .extend_from_slice(&rec.jitter_p95.0.to_bits().to_le_bytes());
        self.bytes
            .extend_from_slice(&rec.retrans_fraction.to_bits().to_le_bytes());
        self.bytes
            .extend_from_slice(&rec.download.0.to_bits().to_le_bytes());
        self.count += 1;
    }

    /// Append every record of a slice, in order.
    pub fn extend_records(&mut self, records: &[NdtRecord]) {
        self.bytes.reserve(records.len() * FRAME_LEN);
        for rec in records {
            self.push(rec);
        }
    }

    /// Append every frame of another encoder, in order — how sharded
    /// online ingest merges per-shard replay logs. Byte-wise this equals
    /// having pushed the other encoder's records after this one's.
    pub fn append(&mut self, other: &Encoder) {
        self.bytes.extend_from_slice(&other.bytes[HEADER_LEN..]);
        self.count += other.count;
    }

    /// Records encoded so far.
    pub fn len(&self) -> usize {
        self.count as usize
    }

    /// True when nothing has been pushed.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Resident wire bytes (header included) — the replay log's memory
    /// footprint, what compaction is bounding.
    pub fn byte_len(&self) -> usize {
        self.bytes.len()
    }

    /// Stream the frames encoded so far in chunks of at most
    /// `chunk_len`, without sealing or cloning the buffer. Frames are
    /// fixed-size, so the un-patched header count is irrelevant to
    /// decoding — the stream simply runs to the end of the buffer.
    ///
    /// # Panics
    /// Panics if `chunk_len == 0`.
    pub fn chunks(&self, chunk_len: usize) -> DecodeChunks<'_> {
        self.tail_chunks(0, chunk_len)
    }

    /// Stream only the frames at index `from` and later (0-based, in
    /// push order) — how an incremental snapshot replays just the
    /// frames appended since its high-water mark. `from` past the end
    /// yields an empty stream. Fixed-size frames make the seek a
    /// constant-time offset computation.
    ///
    /// # Panics
    /// Panics if `chunk_len == 0`.
    pub fn tail_chunks(&self, from: usize, chunk_len: usize) -> DecodeChunks<'_> {
        assert!(chunk_len > 0, "tail_chunks: chunk_len must be positive");
        let start = from.min(self.count as usize);
        DecodeChunks {
            bytes: &self.bytes,
            offset: HEADER_LEN + start * FRAME_LEN,
            chunk_len,
        }
    }

    /// Drop the first `n` frames (truncation-safe compaction): the
    /// remaining frames keep their relative order and re-validate as a
    /// well-formed corpus, byte-identical to re-encoding the surviving
    /// suffix. Dropping more frames than exist clears the log.
    pub fn drop_front(&mut self, n: usize) {
        let n = n.min(self.count as usize);
        if n == 0 {
            return;
        }
        self.bytes.drain(HEADER_LEN..HEADER_LEN + n * FRAME_LEN);
        self.count -= n as u64;
    }

    /// Patch the header count and seal the corpus.
    pub fn finish(mut self) -> EncodedCorpus {
        self.bytes[8..16].copy_from_slice(&self.count.to_le_bytes());
        EncodedCorpus {
            bytes: self.bytes,
            count: self.count,
        }
    }
}

impl Default for Encoder {
    fn default() -> Encoder {
        Encoder::new()
    }
}

/// A pull stream over an encoded corpus's frames. Constructed only from
/// a validated [`EncodedCorpus`], so decoding never fails mid-stream.
pub struct DecodeChunks<'a> {
    bytes: &'a [u8],
    offset: usize,
    chunk_len: usize,
}

impl RecordChunks for DecodeChunks<'_> {
    type Item = NdtRecord;

    fn next_chunk(&mut self) -> Option<Vec<NdtRecord>> {
        if self.offset >= self.bytes.len() {
            return None;
        }
        let mut chunk = Vec::with_capacity(self.chunk_len);
        while chunk.len() < self.chunk_len && self.offset + FRAME_LEN <= self.bytes.len() {
            let body = &self.bytes[self.offset + 4..self.offset + FRAME_LEN];
            chunk.push(decode_body(body));
            self.offset += FRAME_LEN;
        }
        if chunk.is_empty() {
            None
        } else {
            Some(chunk)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize) -> Vec<NdtRecord> {
        (0..n)
            .map(|i| NdtRecord {
                timestamp: Timestamp(86_400 * i as u64),
                client: Ipv4::new(75, 105, 63, (i % 250) as u8 + 1),
                asn: Asn(7155 + i as u32),
                latency_p5: Millis(600.0 + i as f64 * 0.125),
                jitter_p95: Millis(120.0 - i as f64 * 0.0625),
                retrans_fraction: i as f64 / 1_000.0,
                download: Mbps(20.0 + i as f64),
            })
            .collect()
    }

    #[test]
    fn round_trip_is_exact() {
        let records = sample(53);
        let corpus = encode_records(&records);
        assert_eq!(corpus.len(), records.len());
        assert_eq!(corpus.decode_records(), records);
    }

    #[test]
    fn chunked_decode_matches_at_any_chunk_len() {
        let records = sample(101);
        let corpus = encode_records(&records);
        for chunk_len in [1usize, 13, 101, 4096] {
            assert_eq!(
                corpus.chunks(chunk_len).collect_records(),
                records,
                "chunk_len {chunk_len}"
            );
        }
    }

    #[test]
    fn float_bit_patterns_survive() {
        // NaN payloads, signed zero and infinities travel as raw bits.
        let mut rec = sample(1).remove(0);
        rec.latency_p5 = Millis(f64::from_bits(0x7FF8_0000_DEAD_BEEF));
        rec.jitter_p95 = Millis(-0.0);
        rec.retrans_fraction = f64::INFINITY;
        let corpus = encode_records(std::slice::from_ref(&rec));
        let back = corpus.decode_records().remove(0);
        assert_eq!(back.latency_p5.0.to_bits(), rec.latency_p5.0.to_bits());
        assert_eq!(back.jitter_p95.0.to_bits(), (-0.0f64).to_bits());
        assert_eq!(back.retrans_fraction, f64::INFINITY);
    }

    #[test]
    fn wire_bytes_validate_back() {
        let records = sample(17);
        let corpus = encode_records(&records);
        let reparsed = EncodedCorpus::from_bytes(corpus.bytes().to_vec()).expect("valid");
        assert_eq!(reparsed, corpus);
        assert_eq!(reparsed.decode_records(), records);
    }

    #[test]
    fn empty_corpus_round_trips() {
        let corpus = encode_records(&[]);
        assert!(corpus.is_empty());
        assert!(corpus.decode_records().is_empty());
        assert!(corpus.chunks(8).next_chunk().is_none());
        assert_eq!(
            EncodedCorpus::from_bytes(corpus.bytes().to_vec()),
            Ok(corpus)
        );
    }

    #[test]
    fn incremental_encoder_matches_one_shot() {
        let records = sample(40);
        let mut enc = Encoder::new();
        assert!(enc.is_empty());
        for half in records.chunks(7) {
            enc.extend_records(half);
        }
        assert_eq!(enc.len(), records.len());
        assert_eq!(enc.finish(), encode_records(&records));
    }

    #[test]
    fn appended_encoders_match_serial() {
        let records = sample(31);
        let mut serial = Encoder::new();
        serial.extend_records(&records);

        let mut left = Encoder::new();
        let mut right = Encoder::new();
        left.extend_records(&records[..11]);
        right.extend_records(&records[11..]);
        left.append(&right);
        assert_eq!(left.len(), records.len());
        assert_eq!(left.finish(), serial.finish());

        // Appending an empty shard is a no-op.
        let mut enc = Encoder::new();
        enc.extend_records(&records);
        enc.append(&Encoder::new());
        assert_eq!(enc.finish(), encode_records(&records));
    }

    #[test]
    fn encoder_chunks_match_sealed_corpus_without_cloning() {
        let records = sample(90);
        let mut enc = Encoder::new();
        enc.extend_records(&records);
        for chunk_len in [1usize, 7, 90, 4096] {
            assert_eq!(
                enc.chunks(chunk_len).collect_records(),
                records,
                "chunk_len {chunk_len}"
            );
        }
        // Un-sealed iteration leaves the encoder usable.
        assert_eq!(enc.len(), records.len());
        assert_eq!(enc.finish(), encode_records(&records));
    }

    #[test]
    fn tail_chunks_decode_the_suffix_at_any_offset() {
        let records = sample(61);
        let mut enc = Encoder::new();
        enc.extend_records(&records);
        for from in [0usize, 1, 13, 60, 61, 99] {
            for chunk_len in [1usize, 8, 4096] {
                let tail = enc.tail_chunks(from, chunk_len).collect_records();
                let want = &records[from.min(records.len())..];
                assert_eq!(tail, want, "from {from} chunk_len {chunk_len}");
            }
        }
        assert!(enc.tail_chunks(61, 16).next_chunk().is_none());
    }

    #[test]
    fn drop_front_equals_reencoding_the_suffix() {
        let records = sample(37);
        for n in [0usize, 1, 17, 36, 37, 50] {
            let mut enc = Encoder::new();
            enc.extend_records(&records);
            enc.drop_front(n);
            let kept = &records[n.min(records.len())..];
            assert_eq!(enc.len(), kept.len(), "n {n}");
            assert_eq!(enc.chunks(8).collect_records(), kept, "n {n}");
            // The compacted log seals into a corpus that validates and
            // byte-equals a fresh encoding of the surviving suffix.
            let sealed = enc.finish();
            assert_eq!(sealed, encode_records(kept), "n {n}");
            assert_eq!(
                EncodedCorpus::from_bytes(sealed.bytes().to_vec()),
                Ok(sealed),
                "n {n}"
            );
        }
    }

    #[test]
    fn drop_front_then_push_keeps_framing() {
        let records = sample(20);
        let mut enc = Encoder::new();
        enc.extend_records(&records[..12]);
        let before = enc.byte_len();
        enc.drop_front(5);
        assert_eq!(before - enc.byte_len(), 5 * FRAME_LEN);
        for rec in &records[12..] {
            enc.push(rec);
        }
        let mut want: Vec<NdtRecord> = records[5..12].to_vec();
        want.extend_from_slice(&records[12..]);
        assert_eq!(enc.chunks(4096).collect_records(), want);
        assert_eq!(enc.finish(), encode_records(&want));
    }

    #[test]
    fn corrupt_buffers_are_rejected() {
        let good = encode_records(&sample(3)).bytes().to_vec();

        assert_eq!(
            EncodedCorpus::from_bytes(Vec::new()),
            Err(CodecError::Truncated)
        );

        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert_eq!(
            EncodedCorpus::from_bytes(bad_magic),
            Err(CodecError::BadMagic(*b"XNOC"))
        );

        let mut bad_version = good.clone();
        bad_version[4] = 9;
        assert_eq!(
            EncodedCorpus::from_bytes(bad_version),
            Err(CodecError::UnsupportedVersion(9))
        );

        let mut truncated = good.clone();
        truncated.truncate(good.len() - 5);
        assert_eq!(
            EncodedCorpus::from_bytes(truncated),
            Err(CodecError::Truncated)
        );

        let mut bad_len = good.clone();
        bad_len[HEADER_LEN] = 7; // first frame's length prefix
        assert_eq!(
            EncodedCorpus::from_bytes(bad_len),
            Err(CodecError::BadFrameLength { index: 0, len: 7 })
        );

        let mut bad_count = good.clone();
        bad_count[8] = 99;
        assert_eq!(
            EncodedCorpus::from_bytes(bad_count),
            Err(CodecError::CountMismatch {
                header: 99,
                actual: 3
            })
        );

        // Error values render.
        let rendered = CodecError::BadFrameLength { index: 0, len: 7 }.to_string();
        assert!(rendered.contains("48"), "{rendered}");
    }
}
