//! Orbit classes and access-link kinds.

use std::fmt;

/// The three orbital regimes the paper compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OrbitClass {
    /// Low Earth Orbit (Starlink ≈ 550 km, OneWeb ≈ 1200 km).
    Leo,
    /// Medium Earth Orbit (O3b ≈ 8062 km equatorial).
    Meo,
    /// Geosynchronous orbit (≈ 35 786 km).
    Geo,
}

impl OrbitClass {
    /// All classes, nearest orbit first.
    pub const ALL: [OrbitClass; 3] = [OrbitClass::Leo, OrbitClass::Meo, OrbitClass::Geo];

    /// Nominal altitude of the regime in kilometres (used for sanity
    /// checks and docs; precise per-shell altitudes live in `sno-orbit`).
    pub fn nominal_altitude_km(self) -> f64 {
        match self {
            OrbitClass::Leo => 550.0,
            OrbitClass::Meo => 8_062.0,
            OrbitClass::Geo => 35_786.0,
        }
    }
}

impl fmt::Display for OrbitClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            OrbitClass::Leo => "LEO",
            OrbitClass::Meo => "MEO",
            OrbitClass::Geo => "GEO",
        })
    }
}

/// The access technology an operator sells, as curated from its website
/// in the ASN-to-SNO mapping stage (step 2 of Figure 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Single-orbit satellite access.
    Satellite(OrbitClass),
    /// Mixed MEO + GEO access (SES after the O3b acquisition).
    MeoGeo,
}

impl AccessKind {
    /// Orbit classes this access kind may legitimately exhibit.
    pub fn orbits(self) -> &'static [OrbitClass] {
        match self {
            AccessKind::Satellite(OrbitClass::Leo) => &[OrbitClass::Leo],
            AccessKind::Satellite(OrbitClass::Meo) => &[OrbitClass::Meo],
            AccessKind::Satellite(OrbitClass::Geo) => &[OrbitClass::Geo],
            AccessKind::MeoGeo => &[OrbitClass::Meo, OrbitClass::Geo],
        }
    }

    /// Does this access kind include `orbit`?
    pub fn includes(self, orbit: OrbitClass) -> bool {
        self.orbits().contains(&orbit)
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Satellite(o) => o.fmt(f),
            AccessKind::MeoGeo => f.write_str("MEO+GEO"),
        }
    }
}

/// What a *single subscriber line* actually rides on.
///
/// The paper's central identification difficulty is that an SNO's ASN can
/// carry traffic that is not satellite at all: corporate offices on
/// wireline, and hybrid subscribers whose satellite link is only a backup
/// for a terrestrial line. `LinkKind` is the per-line ground truth the
/// generators use — and that the identification pipeline must recover
/// without seeing it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkKind {
    /// A pure satellite subscriber on the given orbit.
    Satellite(OrbitClass),
    /// A terrestrial line (corporate network, e.g. Starlink AS27277).
    Terrestrial,
    /// A terrestrial primary with a satellite backup on the given orbit;
    /// measurements mix both latency regimes (Figure 3b).
    HybridBackup(OrbitClass),
}

impl LinkKind {
    /// Is any part of this line satellite-borne?
    pub fn touches_satellite(self) -> bool {
        !matches!(self, LinkKind::Terrestrial)
    }
}

impl fmt::Display for LinkKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkKind::Satellite(o) => write!(f, "satellite/{o}"),
            LinkKind::Terrestrial => f.write_str("terrestrial"),
            LinkKind::HybridBackup(o) => write!(f, "hybrid-backup/{o}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orbit_altitudes_ordered() {
        assert!(OrbitClass::Leo.nominal_altitude_km() < OrbitClass::Meo.nominal_altitude_km());
        assert!(OrbitClass::Meo.nominal_altitude_km() < OrbitClass::Geo.nominal_altitude_km());
    }

    #[test]
    fn access_kind_orbit_membership() {
        assert!(AccessKind::MeoGeo.includes(OrbitClass::Meo));
        assert!(AccessKind::MeoGeo.includes(OrbitClass::Geo));
        assert!(!AccessKind::MeoGeo.includes(OrbitClass::Leo));
        assert!(AccessKind::Satellite(OrbitClass::Leo).includes(OrbitClass::Leo));
        assert!(!AccessKind::Satellite(OrbitClass::Leo).includes(OrbitClass::Geo));
    }

    #[test]
    fn link_kind_satellite_touch() {
        assert!(LinkKind::Satellite(OrbitClass::Geo).touches_satellite());
        assert!(LinkKind::HybridBackup(OrbitClass::Geo).touches_satellite());
        assert!(!LinkKind::Terrestrial.touches_satellite());
    }

    #[test]
    fn display_strings() {
        assert_eq!(OrbitClass::Leo.to_string(), "LEO");
        assert_eq!(AccessKind::MeoGeo.to_string(), "MEO+GEO");
        assert_eq!(
            LinkKind::HybridBackup(OrbitClass::Geo).to_string(),
            "hybrid-backup/GEO"
        );
    }
}
