//! Deterministic random number generation.
//!
//! The whole workspace must be bit-reproducible from a single seed, so we
//! implement a small, well-understood generator (SplitMix64 for seeding,
//! xoshiro256++ for the stream) instead of depending on an external crate
//! whose algorithm could change across versions. Substreams are derived
//! by hashing a label into the seed, so independent subsystems never
//! contend for draws and adding draws in one subsystem does not perturb
//! another.

/// A deterministic PRNG (xoshiro256++ seeded via SplitMix64).
///
/// ```
/// use sno_types::Rng;
/// let mut a = Rng::new(7).substream_named("mlab");
/// let mut b = Rng::new(7).substream_named("mlab");
/// assert_eq!(a.next_u64(), b.next_u64()); // bit-reproducible
/// let draw = a.range_f64(10.0, 20.0);
/// assert!((10.0..20.0).contains(&draw));
/// ```
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

/// One SplitMix64 step: advances `x` and returns the next output.
fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Create a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut x = seed;
        let s = [
            splitmix64(&mut x),
            splitmix64(&mut x),
            splitmix64(&mut x),
            splitmix64(&mut x),
        ];
        Rng { s }
    }

    /// Derive an independent substream labelled by `label`.
    ///
    /// The same `(seed, label)` pair always yields the same substream;
    /// distinct labels yield streams that do not collide in practice.
    pub fn substream(&self, label: u64) -> Rng {
        // Mix the current state with the label through SplitMix64 so the
        // substream depends on both.
        let mut x = self.s[0] ^ label.wrapping_mul(0xA076_1D64_78BD_642F);
        let _ = splitmix64(&mut x);
        Rng::new(x)
    }

    /// Derive a substream labelled by a string (e.g. a subsystem name).
    pub fn substream_named(&self, name: &str) -> Rng {
        self.substream(fnv1a(name.as_bytes()))
    }

    /// Derive the substream for shard `index` of a sharded computation.
    ///
    /// This is the one sanctioned way for the [`par`](crate::par) layer
    /// to obtain per-shard randomness: shard boundaries are a pure
    /// function of the work size (see
    /// [`par::shard_ranges`](crate::par::shard_ranges)), so the stream a
    /// shard draws from depends only on `(seed, shard index)` — never on
    /// how many threads executed the map. Sharded and serial runs
    /// therefore consume identical randomness.
    pub fn substream_shard(&self, index: usize) -> Rng {
        self.substream(index as u64)
    }

    /// Derive a substream through a chain of labels in one call:
    /// `rng.substream_chain(&[a, b, c])` is
    /// `rng.substream(a).substream(b).substream(c)`.
    ///
    /// The simulation layers use this to address deeply nested
    /// randomness (campaign seed → scenario → flow → round) without
    /// building intermediate generators by hand; like every substream
    /// derivation it is a pure function of `(seed, labels)`.
    pub fn substream_chain(&self, labels: &[u64]) -> Rng {
        let mut rng = self.clone();
        for &label in labels {
            rng = rng.substream(label);
        }
        rng
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics in debug builds if `lo > hi`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi, "range_f64: {lo} > {hi}");
        lo + (hi - lo) * self.f64()
    }

    /// Uniform integer in `[0, n)` via Lemire's method.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        // Widening multiply rejection sampling (unbiased).
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (n as u128);
            let low = m as u64;
            if low >= n {
                return (m >> 64) as u64;
            }
            // low < n: possibly biased region; accept only above threshold.
            let threshold = n.wrapping_neg() % n;
            if low >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform integer in `[lo, hi]` inclusive.
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "range_u64: {lo} > {hi}");
        lo + self.below(hi - lo + 1)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Standard normal deviate (Box–Muller, one value per call).
    pub fn normal(&mut self) -> f64 {
        // Avoid log(0).
        let u1 = loop {
            let u = self.f64();
            if u > 0.0 {
                break u;
            }
        };
        let u2 = self.f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal deviate with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.normal()
    }

    /// Log-normal deviate with the given parameters of the underlying
    /// normal (`mu`, `sigma`).
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.normal()).exp()
    }

    /// Exponential deviate with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        let u = loop {
            let u = self.f64();
            if u > 0.0 {
                break u;
            }
        };
        -mean * u.ln()
    }

    /// Number of successes in `n` Bernoulli trials with probability `p`.
    ///
    /// Exact (per-trial) for small `n`; for large `n` uses the Poisson
    /// approximation when `n·p` is small and the normal approximation
    /// otherwise. Always returns a value in `[0, n]`.
    pub fn binomial(&mut self, n: u64, p: f64) -> u64 {
        if n == 0 || p <= 0.0 {
            return 0;
        }
        if p >= 1.0 {
            return n;
        }
        if n <= 16 {
            return (0..n).filter(|_| self.chance(p)).count() as u64;
        }
        let mean = n as f64 * p;
        if mean < 10.0 {
            // Poisson approximation via inversion, capped at n.
            let l = (-mean).exp();
            let mut k = 0u64;
            let mut prod = self.f64();
            while prod > l && k < n {
                k += 1;
                prod *= self.f64();
            }
            k.min(n)
        } else {
            let sd = (n as f64 * p * (1.0 - p)).sqrt();
            let x = self.normal_with(mean, sd).round();
            x.clamp(0.0, n as f64) as u64
        }
    }

    /// Pick a uniformly random element of `items`.
    ///
    /// # Panics
    /// Panics if `items` is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose from empty slice");
        &items[self.below(items.len() as u64) as usize]
    }

    /// Pick an index according to non-negative `weights`.
    ///
    /// # Panics
    /// Panics if `weights` is empty or sums to zero.
    pub fn choose_weighted(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "choose_weighted: weights sum to zero");
        let mut x = self.f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            x -= w;
            if x < 0.0 {
                return i;
            }
        }
        weights.len() - 1 // floating-point slack lands on the last bucket
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

/// FNV-1a over bytes, used to hash substream names.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn substreams_are_independent_and_stable() {
        let root = Rng::new(7);
        let mut s1 = root.substream_named("mlab");
        let mut s1b = root.substream_named("mlab");
        let mut s2 = root.substream_named("atlas");
        assert_eq!(s1.next_u64(), s1b.next_u64());
        assert_ne!(s1.next_u64(), s2.next_u64());
    }

    #[test]
    fn substream_chain_matches_nested_derivation() {
        let root = Rng::new(0x5A7E_1117);
        let mut chained = root.substream_chain(&[3, 1, 4]);
        let mut nested = root.substream(3).substream(1).substream(4);
        for _ in 0..8 {
            assert_eq!(chained.next_u64(), nested.next_u64());
        }
        // An empty chain is the generator itself.
        let mut same = root.substream_chain(&[]);
        let mut orig = root.clone();
        assert_eq!(same.next_u64(), orig.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::new(3);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_is_bounded_and_covers() {
        let mut r = Rng::new(9);
        let mut seen = [false; 7];
        for _ in 0..10_000 {
            let x = r.below(7) as usize;
            assert!(x < 7);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn normal_moments_roughly_standard() {
        let mut r = Rng::new(11);
        let n = 50_000;
        let (mut sum, mut sumsq) = (0.0, 0.0);
        for _ in 0..n {
            let x = r.normal();
            sum += x;
            sumsq += x * x;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn exponential_mean_matches() {
        let mut r = Rng::new(13);
        let n = 50_000;
        let mean_target = 4.0;
        let mean: f64 = (0..n).map(|_| r.exponential(mean_target)).sum::<f64>() / n as f64;
        assert!((mean - mean_target).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn weighted_choice_respects_weights() {
        let mut r = Rng::new(17);
        let weights = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[r.choose_weighted(&weights)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng::new(19);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn binomial_bounds_and_mean() {
        let mut r = Rng::new(29);
        // Small-n exact path.
        for _ in 0..200 {
            let k = r.binomial(10, 0.3);
            assert!(k <= 10);
        }
        // Poisson path: n large, mean small.
        let trials = 20_000;
        let mean_small: f64 = (0..trials)
            .map(|_| r.binomial(1_000, 0.002) as f64)
            .sum::<f64>()
            / trials as f64;
        assert!((mean_small - 2.0).abs() < 0.1, "mean {mean_small}");
        // Normal path: large mean.
        let mean_large: f64 = (0..trials)
            .map(|_| r.binomial(400, 0.25) as f64)
            .sum::<f64>()
            / trials as f64;
        assert!((mean_large - 100.0).abs() < 1.0, "mean {mean_large}");
        // Edge cases.
        assert_eq!(r.binomial(0, 0.5), 0);
        assert_eq!(r.binomial(100, 0.0), 0);
        assert_eq!(r.binomial(100, 1.0), 100);
    }

    #[test]
    fn chance_extremes() {
        let mut r = Rng::new(23);
        assert!(!(0..100).any(|_| r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }
}
