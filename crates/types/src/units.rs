//! Physical units used throughout the workspace.
//!
//! Thin `f64` newtypes that keep milliseconds, megabits per second and
//! kilometres from being mixed up in function signatures. Arithmetic is
//! provided only where it is dimensionally meaningful.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// Speed of light in vacuum, km/s.
pub const SPEED_OF_LIGHT_KM_S: f64 = 299_792.458;

/// A duration in milliseconds (may be fractional).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Millis(pub f64);

impl Millis {
    pub const ZERO: Millis = Millis(0.0);

    /// One-way light propagation time over `distance` in free space.
    pub fn light_over(distance: Kilometers) -> Millis {
        Millis(distance.0 / SPEED_OF_LIGHT_KM_S * 1_000.0)
    }

    pub fn as_secs(self) -> f64 {
        self.0 / 1_000.0
    }

    /// Clamp to a non-negative value (useful after subtracting noise).
    pub fn max_zero(self) -> Millis {
        Millis(self.0.max(0.0))
    }

    pub fn min(self, other: Millis) -> Millis {
        Millis(self.0.min(other.0))
    }

    pub fn max(self, other: Millis) -> Millis {
        Millis(self.0.max(other.0))
    }
}

impl Add for Millis {
    type Output = Millis;
    fn add(self, rhs: Millis) -> Millis {
        Millis(self.0 + rhs.0)
    }
}

impl AddAssign for Millis {
    fn add_assign(&mut self, rhs: Millis) {
        self.0 += rhs.0;
    }
}

impl Sub for Millis {
    type Output = Millis;
    fn sub(self, rhs: Millis) -> Millis {
        Millis(self.0 - rhs.0)
    }
}

impl Mul<f64> for Millis {
    type Output = Millis;
    fn mul(self, rhs: f64) -> Millis {
        Millis(self.0 * rhs)
    }
}

impl Div<f64> for Millis {
    type Output = Millis;
    fn div(self, rhs: f64) -> Millis {
        Millis(self.0 / rhs)
    }
}

impl Div<Millis> for Millis {
    type Output = f64;
    /// Dimensionless ratio of two durations (e.g. jitter variation =
    /// `jitter_p95 / latency_p5`).
    fn div(self, rhs: Millis) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for Millis {
    fn sum<I: Iterator<Item = Millis>>(iter: I) -> Millis {
        Millis(iter.map(|m| m.0).sum())
    }
}

impl fmt::Display for Millis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} ms", self.0)
    }
}

/// A data rate in megabits per second.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Mbps(pub f64);

impl Mbps {
    /// Bytes transferred at this rate over `duration`.
    pub fn bytes_over(self, duration: Millis) -> f64 {
        self.0 * 1e6 / 8.0 * duration.as_secs()
    }

    /// Rate achieved by moving `bytes` in `duration`.
    ///
    /// Returns `Mbps(0.0)` for non-positive durations.
    pub fn from_bytes(bytes: f64, duration: Millis) -> Mbps {
        if duration.0 <= 0.0 {
            return Mbps(0.0);
        }
        Mbps(bytes * 8.0 / 1e6 / duration.as_secs())
    }

    /// Time to serialize `bytes` at this rate.
    ///
    /// # Panics
    /// Panics in debug builds when the rate is zero.
    pub fn transmit_time(self, bytes: f64) -> Millis {
        debug_assert!(self.0 > 0.0, "transmit_time on zero rate");
        Millis(bytes * 8.0 / 1e6 / self.0 * 1_000.0)
    }
}

impl Mul<f64> for Mbps {
    type Output = Mbps;
    fn mul(self, rhs: f64) -> Mbps {
        Mbps(self.0 * rhs)
    }
}

impl fmt::Display for Mbps {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} Mbps", self.0)
    }
}

/// A distance in kilometres.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Kilometers(pub f64);

impl Add for Kilometers {
    type Output = Kilometers;
    fn add(self, rhs: Kilometers) -> Kilometers {
        Kilometers(self.0 + rhs.0)
    }
}

impl Mul<f64> for Kilometers {
    type Output = Kilometers;
    fn mul(self, rhs: f64) -> Kilometers {
        Kilometers(self.0 * rhs)
    }
}

impl fmt::Display for Kilometers {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.0} km", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn light_propagation_matches_physics() {
        // GEO altitude one-way: ~119.3 ms.
        let t = Millis::light_over(Kilometers(35_786.0));
        assert!((t.0 - 119.37).abs() < 0.1, "got {t}");
        // Starlink shell: ~1.83 ms.
        let t = Millis::light_over(Kilometers(550.0));
        assert!((t.0 - 1.834).abs() < 0.01, "got {t}");
    }

    #[test]
    fn rate_round_trips_bytes() {
        let rate = Mbps(100.0);
        let dur = Millis(250.0);
        let bytes = rate.bytes_over(dur);
        assert!((bytes - 3_125_000.0).abs() < 1.0);
        let back = Mbps::from_bytes(bytes, dur);
        assert!((back.0 - rate.0).abs() < 1e-9);
    }

    #[test]
    fn transmit_time_inverse_of_bytes_over() {
        let rate = Mbps(25.0);
        let t = rate.transmit_time(1_000_000.0);
        assert!((rate.bytes_over(t) - 1_000_000.0).abs() < 1e-6);
    }

    #[test]
    fn zero_duration_rate_is_zero() {
        assert_eq!(Mbps::from_bytes(1e6, Millis(0.0)).0, 0.0);
    }

    #[test]
    fn jitter_variation_is_dimensionless() {
        let jitter = Millis(50.0);
        let lat = Millis(100.0);
        assert!((jitter / lat - 0.5).abs() < 1e-12);
    }

    #[test]
    fn millis_arithmetic() {
        let a = Millis(10.0) + Millis(5.0);
        assert_eq!(a.0, 15.0);
        assert_eq!((a - Millis(20.0)).max_zero(), Millis::ZERO);
        assert_eq!((a * 2.0).0, 30.0);
        assert_eq!((a / 3.0).0, 5.0);
        let total: Millis = [Millis(1.0), Millis(2.0)].into_iter().sum();
        assert_eq!(total.0, 3.0);
    }
}
