//! Identifiers: autonomous system numbers, probes, testers, and the
//! closed set of satellite network operators studied by the paper.

use std::fmt;

/// An Autonomous System Number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Asn(pub u32);

impl fmt::Display for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

/// A RIPE-Atlas-style probe identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProbeId(pub u32);

impl fmt::Display for ProbeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "probe#{}", self.0)
    }
}

/// A crowdsourced (Prolific-style) tester identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TesterId(pub u32);

impl fmt::Display for TesterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tester#{}", self.0)
    }
}

/// The 41 satellite network operators of the paper's Table 3.
///
/// This is a *closed* set: the paper curates exactly these operators from
/// ASdb and Hurricane Electric's BGP toolkit, and every downstream stage
/// (prefix filtering, catalog accumulation, application studies) speaks in
/// terms of them. Keeping them as an enum makes analysis code total —
/// `match` exhaustiveness tells us when an operator is unhandled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)]
pub enum Operator {
    Arqiva,
    Avanti,
    Awv,
    Colinanet,
    Comsat,
    ComsatPng,
    Comtech,
    Elara,
    Eutelsat,
    Globalsat,
    Gravity,
    HellasSat,
    Hughes,
    Intelsat,
    Io,
    Isotropic,
    Kacific,
    Kvh,
    Lepton,
    Linkexpress,
    Marlink,
    Maxar,
    Navarino,
    Netsat,
    NetworkInnovations,
    NomadGlobal,
    O3b,
    Oneweb,
    Panasonic,
    Ses,
    SoundAndCellular,
    Speedcast,
    Ssi,
    Starlink,
    Telalaska,
    Telesat,
    Televera,
    Thaicom,
    Ultisat,
    Viasat,
    Worldlink,
}

impl Operator {
    /// All 41 operators, in Table 3 order (alphabetical).
    pub const ALL: [Operator; 41] = [
        Operator::Arqiva,
        Operator::Avanti,
        Operator::Awv,
        Operator::Colinanet,
        Operator::Comsat,
        Operator::ComsatPng,
        Operator::Comtech,
        Operator::Elara,
        Operator::Eutelsat,
        Operator::Globalsat,
        Operator::Gravity,
        Operator::HellasSat,
        Operator::Hughes,
        Operator::Intelsat,
        Operator::Io,
        Operator::Isotropic,
        Operator::Kacific,
        Operator::Kvh,
        Operator::Lepton,
        Operator::Linkexpress,
        Operator::Marlink,
        Operator::Maxar,
        Operator::Navarino,
        Operator::Netsat,
        Operator::NetworkInnovations,
        Operator::NomadGlobal,
        Operator::O3b,
        Operator::Oneweb,
        Operator::Panasonic,
        Operator::Ses,
        Operator::SoundAndCellular,
        Operator::Speedcast,
        Operator::Ssi,
        Operator::Starlink,
        Operator::Telalaska,
        Operator::Telesat,
        Operator::Televera,
        Operator::Thaicom,
        Operator::Ultisat,
        Operator::Viasat,
        Operator::Worldlink,
    ];

    /// Human-readable operator name as the paper prints it.
    pub fn name(self) -> &'static str {
        match self {
            Operator::Arqiva => "Arqiva",
            Operator::Avanti => "Avanti",
            Operator::Awv => "AWV",
            Operator::Colinanet => "ColinaNet",
            Operator::Comsat => "Comsat",
            Operator::ComsatPng => "Comsat (PNG)",
            Operator::Comtech => "Comtech",
            Operator::Elara => "Elara",
            Operator::Eutelsat => "Eutelsat",
            Operator::Globalsat => "GlobalSat",
            Operator::Gravity => "Gravity",
            Operator::HellasSat => "Hellas-Sat",
            Operator::Hughes => "HughesNet",
            Operator::Intelsat => "IntelSat",
            Operator::Io => "IO",
            Operator::Isotropic => "Isotropic",
            Operator::Kacific => "Kacific",
            Operator::Kvh => "KVH",
            Operator::Lepton => "Lepton (Kymeta)",
            Operator::Linkexpress => "LinkExpress",
            Operator::Marlink => "Marlink",
            Operator::Maxar => "Maxar",
            Operator::Navarino => "Navarino",
            Operator::Netsat => "NetSat",
            Operator::NetworkInnovations => "Network Innovations",
            Operator::NomadGlobal => "Nomad Global",
            Operator::O3b => "O3b",
            Operator::Oneweb => "OneWeb",
            Operator::Panasonic => "Panasonic",
            Operator::Ses => "SES",
            Operator::SoundAndCellular => "Sound & Cellular",
            Operator::Speedcast => "Speedcast",
            Operator::Ssi => "SSI",
            Operator::Starlink => "Starlink",
            Operator::Telalaska => "TelAlaska",
            Operator::Telesat => "Telesat",
            Operator::Televera => "Televera",
            Operator::Thaicom => "Thaicom",
            Operator::Ultisat => "UltiSat",
            Operator::Viasat => "Viasat",
            Operator::Worldlink => "WorldLink",
        }
    }

    /// A stable small integer for indexing per-operator arrays. `ALL`
    /// lists the variants in declaration order (pinned by test), so the
    /// discriminant is the position.
    pub fn index(self) -> usize {
        self as usize
    }
}

impl fmt::Display for Operator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn forty_one_distinct_operators() {
        let set: BTreeSet<_> = Operator::ALL.iter().collect();
        assert_eq!(set.len(), 41);
    }

    #[test]
    fn index_is_consistent_with_all() {
        for (i, op) in Operator::ALL.iter().enumerate() {
            assert_eq!(op.index(), i);
        }
    }

    #[test]
    fn names_are_unique_and_nonempty() {
        let names: BTreeSet<_> = Operator::ALL.iter().map(|o| o.name()).collect();
        assert_eq!(names.len(), 41);
        assert!(names.iter().all(|n| !n.is_empty()));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Asn(14593).to_string(), "AS14593");
        assert_eq!(Operator::Hughes.to_string(), "HughesNet");
        assert_eq!(ProbeId(7).to_string(), "probe#7");
    }
}
