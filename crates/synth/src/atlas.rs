//! The synthetic RIPE Atlas deployment (Table 2).
//!
//! 67 Starlink-connected probes across 15 countries, each with the
//! paper's per-country start month and measurement volume. Every probe
//! runs built-in traceroutes to the 13 root DNS letters and 12-hourly
//! SSLCert measurements (which expose its public source address, whose
//! reverse DNS encodes the serving PoP). PoP assignment is
//! nearest-by-geography with the paper's documented exceptions, and
//! three probes carry historical PoP-change events:
//!
//! * New Zealand: Sydney → Auckland on 2022-07-12 (−20 ms);
//! * Netherlands (probe 1): Frankfurt → London on 2022-10-15 (−10 ms);
//! * Nevada (probe 1): Los Angeles → Denver on 2022-09-05 (2× RTT),
//!   reverted on 2022-10-03.

use crate::config::SynthConfig;
use sno_geo::pops::{pop_by_code, PopSite, STARLINK_POPS};
use sno_geo::roots::{instances_of, RootInstance};
use sno_geo::{haversine_km, GeoPoint};
use sno_netsim::terrestrial::terrestrial_rtt;
use sno_orbit::access::BentPipe;
use sno_orbit::shell::STARLINK_SHELL;
use sno_types::chunk::{self, RecordChunks};
use sno_types::par;
use sno_types::records::{CountryCode, RootServer, SslCertRecord, TraceHop, TracerouteRecord};
use sno_types::time::SECS_PER_DAY;
use sno_types::{Date, Ipv4, Millis, Prefix24, ProbeId, Rng, Timestamp, UtcDay};

/// End of the Atlas observation window (exclusive).
pub const ATLAS_END: Date = Date {
    year: 2023,
    month: 5,
    day: 3,
};

/// One deployed probe.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeSpec {
    /// Probe identifier.
    pub id: ProbeId,
    /// Country of deployment.
    pub country: CountryCode,
    /// US state postal code, if in the US.
    pub state: Option<&'static str>,
    /// Probe location.
    pub location: GeoPoint,
    /// First day of measurements.
    pub start: Date,
    /// `(effective_from, pop_code)` entries, chronologically ordered;
    /// the first entry is effective from `start`.
    pub pop_schedule: Vec<(UtcDay, &'static str)>,
}

impl ProbeSpec {
    /// The PoP serving this probe on `day`.
    pub fn pop_on(&self, day: UtcDay) -> &'static PopSite {
        let code = self
            .pop_schedule
            .iter()
            .rev()
            .find(|&&(from, _)| day >= from)
            .map(|&(_, code)| code)
            .unwrap_or(self.pop_schedule[0].1);
        // sno-lint: allow(unwrap-in-lib): pop_schedule codes are drawn from STARLINK_POPS by the generator
        pop_by_code(code).expect("schedule references known PoPs")
    }

    /// The probe's public IPv4 address on `day` (one host in the serving
    /// PoP's subscriber prefix — it changes when the PoP changes, which
    /// is why the paper keeps re-reading SSLCert source addresses).
    pub fn public_addr(&self, day: UtcDay) -> Ipv4 {
        let pop = self.pop_on(day);
        let idx = STARLINK_POPS
            .iter()
            .position(|p| p.code == pop.code)
            // sno-lint: allow(unwrap-in-lib): pop_on returns entries of STARLINK_POPS
            .expect("pop in table") as u8;
        pop_prefix(idx).addr(10 + (self.id.0 % 200) as u8)
    }
}

/// The subscriber `/24` behind PoP number `idx`.
pub fn pop_prefix(idx: u8) -> Prefix24 {
    Prefix24::new(98, 97, idx)
}

/// Reverse DNS for a Starlink subscriber address, if it belongs to a
/// known PoP prefix.
pub fn reverse_dns(addr: Ipv4) -> Option<String> {
    let p = addr.prefix24();
    STARLINK_POPS
        .iter()
        .enumerate()
        .find(|(i, _)| pop_prefix(*i as u8) == p)
        .map(|(_, pop)| pop.reverse_dns())
}

/// The generated Atlas corpus.
#[derive(Debug, Clone)]
pub struct AtlasCorpus {
    /// The probe deployment.
    pub probes: Vec<ProbeSpec>,
    /// All traceroute measurements.
    pub traceroutes: Vec<TracerouteRecord>,
    /// All SSLCert source-address observations.
    pub sslcerts: Vec<SslCertRecord>,
}

impl AtlasCorpus {
    /// The probe with the given id.
    pub fn probe(&self, id: ProbeId) -> Option<&ProbeSpec> {
        self.probes.iter().find(|p| p.id == id)
    }
}

/// Per-country deployment row of Table 2: (country, probes, start
/// year/month, full traceroute volume).
const DEPLOYMENT: &[(&str, u32, (i32, u8), u64)] = &[
    ("AT", 2, (2022, 5), 240_000),
    ("AU", 4, (2022, 5), 460_000),
    ("BE", 1, (2023, 1), 70_000),
    ("CA", 2, (2022, 5), 280_000),
    ("CL", 1, (2023, 2), 50_000),
    ("DE", 5, (2022, 5), 710_000),
    ("ES", 2, (2022, 6), 100_000),
    ("FR", 5, (2022, 11), 350_000),
    ("GB", 5, (2022, 8), 290_000),
    ("IT", 1, (2022, 10), 120_000),
    ("NL", 3, (2022, 5), 380_000),
    ("NZ", 1, (2022, 5), 220_000),
    ("PH", 1, (2023, 3), 20_000),
    ("PL", 1, (2023, 1), 60_000),
    ("US", 33, (2022, 5), 3_080_000),
];

/// Representative probe sites per country (cycled when a country hosts
/// more probes than listed sites).
fn country_sites(country: &str) -> &'static [GeoPoint] {
    match country {
        "AT" => &[
            GeoPoint {
                lat: 48.21,
                lon: 16.37,
            },
            GeoPoint {
                lat: 47.27,
                lon: 11.40,
            },
        ],
        "AU" => &[
            GeoPoint {
                lat: -33.87,
                lon: 151.21,
            },
            GeoPoint {
                lat: -37.81,
                lon: 144.96,
            },
            GeoPoint {
                lat: -27.47,
                lon: 153.03,
            },
            GeoPoint {
                lat: -31.95,
                lon: 115.86,
            },
        ],
        "BE" => &[GeoPoint {
            lat: 50.85,
            lon: 4.35,
        }],
        "CA" => &[
            GeoPoint {
                lat: 43.65,
                lon: -79.38,
            },
            GeoPoint {
                lat: 49.28,
                lon: -123.12,
            },
        ],
        "CL" => &[GeoPoint {
            lat: -33.04,
            lon: -71.37,
        }], // ~75 km from Santiago
        "DE" => &[
            GeoPoint {
                lat: 52.52,
                lon: 13.40,
            },
            GeoPoint {
                lat: 48.14,
                lon: 11.58,
            },
            GeoPoint {
                lat: 50.94,
                lon: 6.96,
            },
            GeoPoint {
                lat: 53.55,
                lon: 9.99,
            },
            GeoPoint {
                lat: 49.45,
                lon: 11.08,
            },
        ],
        "ES" => &[
            GeoPoint {
                lat: 40.42,
                lon: -3.70,
            },
            GeoPoint {
                lat: 41.39,
                lon: 2.17,
            },
        ],
        "FR" => &[
            GeoPoint {
                lat: 48.86,
                lon: 2.35,
            },
            GeoPoint {
                lat: 45.76,
                lon: 4.84,
            },
            GeoPoint {
                lat: 43.30,
                lon: 5.37,
            },
            GeoPoint {
                lat: 47.22,
                lon: -1.55,
            },
            GeoPoint {
                lat: 48.58,
                lon: 7.75,
            },
        ],
        "GB" => &[
            GeoPoint {
                lat: 51.51,
                lon: -0.13,
            },
            GeoPoint {
                lat: 53.48,
                lon: -2.24,
            },
            GeoPoint {
                lat: 55.95,
                lon: -3.19,
            },
            GeoPoint {
                lat: 51.45,
                lon: -2.59,
            },
            GeoPoint {
                lat: 52.49,
                lon: -1.89,
            },
        ],
        "IT" => &[GeoPoint {
            lat: 45.46,
            lon: 9.19,
        }],
        "NL" => &[
            GeoPoint {
                lat: 51.92,
                lon: 4.48,
            }, // Rotterdam (the probe that moved PoPs)
            GeoPoint {
                lat: 52.37,
                lon: 4.90,
            },
            GeoPoint {
                lat: 52.09,
                lon: 5.12,
            },
        ],
        "NZ" => &[GeoPoint {
            lat: -36.85,
            lon: 174.76,
        }],
        "PH" => &[GeoPoint {
            lat: 14.60,
            lon: 120.98,
        }], // Manila
        "PL" => &[GeoPoint {
            lat: 52.23,
            lon: 21.01,
        }],
        _ => &[GeoPoint {
            lat: 39.0,
            lon: -98.0,
        }],
    }
}

/// US states for the 33 US probes, in assignment order.
const US_PROBE_STATES: &[&str] = &[
    "WA", "WA", "OR", "OR", "CA", "CA", "NV", "NV", "AZ", "AZ", "NM", "UT", "CO", "CO", "TX", "TX",
    "OK", "MO", "KS", "MN", "IL", "IL", "OH", "MI", "WI", "NY", "NY", "PA", "MA", "VA", "VA", "FL",
    "AK",
]; // GA dropped to keep exactly 33

/// Builds the probe deployment and generates measurements.
pub struct AtlasGenerator {
    config: SynthConfig,
}

impl AtlasGenerator {
    /// Create a generator.
    pub fn new(config: SynthConfig) -> AtlasGenerator {
        AtlasGenerator { config }
    }

    /// Build the 67-probe deployment (deterministic; no measurements).
    pub fn probes(&self) -> Vec<ProbeSpec> {
        (0..DEPLOYMENT.len()).flat_map(row_probes).collect()
    }

    /// Stream the deployment one country-row shard at a time, delivered
    /// in chunks of at most `chunk_len` probes. Concatenated, the stream
    /// is exactly [`AtlasGenerator::probes`]: probe ids are fixed by the
    /// deployment table (per-row base id + index), so no shard depends
    /// on another, on `chunk_len`, or on `config.threads`.
    pub fn probe_chunks(&self, chunk_len: usize) -> impl RecordChunks<Item = ProbeSpec> {
        chunk::sharded(DEPLOYMENT.len(), self.config.threads, chunk_len, row_probes)
    }

    /// Generate the full corpus (probes + traceroutes + SSLCerts).
    ///
    /// Each probe draws from its own RNG substream (labelled by probe
    /// id), so probes are independent shards: the per-probe batches are
    /// generated on the worker pool, merged in probe order, and the
    /// final stable sort interleaves them chronologically — the output
    /// is byte-identical at every `config.threads` setting.
    pub fn generate(&self) -> AtlasCorpus {
        let probes = self.probes();
        let end_day = ATLAS_END.to_day();
        let quotas = self.quotas(&probes);

        let batches = par::shard_map(probes.len(), self.config.threads, |i| {
            self.probe_batch(&probes[i], quotas[i], end_day)
        });
        let mut traceroutes = Vec::new();
        let mut sslcerts = Vec::new();
        for (traces, certs) in batches {
            traceroutes.extend(traces);
            sslcerts.extend(certs);
        }
        // Interleave chronologically, as a BigQuery export would be.
        traceroutes.sort_by_key(|t| (t.timestamp, t.probe.0));
        sslcerts.sort_by_key(|s| (s.timestamp, s.probe.0));
        AtlasCorpus {
            probes,
            traceroutes,
            sslcerts,
        }
    }

    /// Per-probe traceroute quotas, in deployment (= probe id) order.
    fn quotas(&self, probes: &[ProbeSpec]) -> Vec<u64> {
        let mut quotas: Vec<u64> = Vec::with_capacity(probes.len());
        for &(country, count, _, volume) in DEPLOYMENT {
            let scaled = ((volume as f64 * self.config.scale).ceil() as u64).max(120);
            let per_probe = (scaled / count as u64).max(120);
            debug_assert_eq!(
                probes
                    .iter()
                    .filter(|p| p.country == CountryCode::new(country))
                    .count(),
                count as usize
            );
            quotas.extend(std::iter::repeat_n(per_probe, count as usize));
        }
        debug_assert_eq!(quotas.len(), probes.len());
        quotas
    }

    /// Stream traceroutes one probe-shard at a time, delivered in
    /// chunks of at most `chunk_len` records.
    ///
    /// The stream yields each probe's traceroutes in generation order,
    /// probes in id order — **not** the chronological interleaving of
    /// [`AtlasGenerator::generate`], which sorts globally after
    /// materializing. The per-probe analyses in `sno-atlas` bucket by
    /// probe and re-sort each series by timestamp, so they produce
    /// identical results from either ordering. Per-probe RNG substreams
    /// are labelled by probe id, independent of `chunk_len` and
    /// `config.threads`.
    pub fn traceroute_chunks(
        &self,
        chunk_len: usize,
    ) -> impl RecordChunks<Item = TracerouteRecord> + '_ {
        let probes = self.probes();
        let quotas = self.quotas(&probes);
        let end_day = ATLAS_END.to_day();
        chunk::sharded(probes.len(), self.config.threads, chunk_len, move |i| {
            self.probe_batch(&probes[i], quotas[i], end_day).0
        })
    }

    /// Generate the SSLCert corpus alone, byte-identical to the
    /// `sslcerts` of [`AtlasGenerator::generate`]. The cert schedule
    /// draws nothing from the per-probe RNG (fixed 12 h cadence at
    /// the probe's public address), so it is cheap to produce without
    /// materializing any traceroutes — the streamed PoP-change path
    /// uses this for its attribution index.
    pub fn sslcerts(&self) -> Vec<SslCertRecord> {
        let probes = self.probes();
        let end_day = ATLAS_END.to_day();
        let mut sslcerts = Vec::new();
        for probe in &probes {
            sslcerts.extend(self.cert_batch(probe, end_day));
        }
        sslcerts.sort_by_key(|s| (s.timestamp, s.probe.0));
        sslcerts
    }

    /// Stream the SSLCert corpus one probe-shard at a time, delivered
    /// in chunks of at most `chunk_len` records.
    ///
    /// Like [`AtlasGenerator::traceroute_chunks`], the stream yields
    /// each probe's certs in chronological order with probes in id
    /// order — **not** the global `(timestamp, probe)` interleaving of
    /// [`AtlasGenerator::sslcerts`]. Consumers that bucket per probe
    /// (the PoP-history/attribution path) see identical per-probe
    /// sequences either way, because the global sort is stable and each
    /// probe's schedule is already chronological. Certs draw no
    /// randomness, so the shards are trivially independent.
    pub fn sslcert_chunks(&self, chunk_len: usize) -> impl RecordChunks<Item = SslCertRecord> + '_ {
        let probes = self.probes();
        let end_day = ATLAS_END.to_day();
        chunk::sharded(probes.len(), self.config.threads, chunk_len, move |i| {
            self.cert_batch(&probes[i], end_day)
        })
    }

    /// All measurements of one probe.
    fn probe_batch(
        &self,
        probe: &ProbeSpec,
        per_probe: u64,
        end_day: UtcDay,
    ) -> (Vec<TracerouteRecord>, Vec<SslCertRecord>) {
        let mut traceroutes = Vec::with_capacity(per_probe as usize);
        let mut rng = Rng::new(self.config.seed)
            .substream_named("atlas")
            .substream(u64::from(probe.id.0));
        let start_day = probe.start.to_day();
        let active_days = (end_day - start_day).max(1) as u64;
        for k in 0..per_probe {
            // Spread measurements evenly with jitter, cycling through
            // the 13 roots.
            let day = UtcDay(start_day.0 + (k * active_days / per_probe) as u32);
            let timestamp = Timestamp::from_day(day) + rng.below(SECS_PER_DAY);
            let target = RootServer::ALL[(k % 13) as usize];
            traceroutes.push(self.trace(probe, timestamp, target, &mut rng));
        }
        (traceroutes, self.cert_batch(probe, end_day))
    }

    /// One probe's SSLCert schedule: every 12 h, downsampled with the
    /// corpus scale but at least one per PoP-schedule segment. Draws no
    /// randomness, so it is shared verbatim by [`AtlasGenerator::generate`]
    /// and the standalone [`AtlasGenerator::sslcerts`].
    fn cert_batch(&self, probe: &ProbeSpec, end_day: UtcDay) -> Vec<SslCertRecord> {
        let start_day = probe.start.to_day();
        let active_days = (end_day - start_day).max(1) as u64;
        let ssl_count = ((active_days * 2) as f64 * (self.config.scale * 500.0))
            .ceil()
            .max(8.0) as u64;
        let mut sslcerts = Vec::with_capacity(ssl_count as usize);
        for k in 0..ssl_count {
            let day = UtcDay(start_day.0 + (k * active_days / ssl_count) as u32);
            sslcerts.push(SslCertRecord {
                probe: probe.id,
                timestamp: Timestamp::from_day(day) + 43_200,
                src_addr: probe.public_addr(day),
            });
        }
        sslcerts
    }

    /// One traceroute measurement.
    fn trace(
        &self,
        probe: &ProbeSpec,
        timestamp: Timestamp,
        target: RootServer,
        rng: &mut Rng,
    ) -> TracerouteRecord {
        let day = timestamp.day();
        let pop = probe.pop_on(day);
        let pop_rtt = probe_pop_rtt(probe, pop, timestamp, rng);

        let mut hops = vec![TraceHop {
            addr: Ipv4::new(192, 168, 1, 1),
            rtt: Millis(rng.range_f64(0.3, 2.0)),
        }];
        let Some(pop_rtt) = pop_rtt else {
            // Satellite outage: the probe saw only its LAN hop.
            return TracerouteRecord {
                probe: probe.id,
                timestamp,
                target,
                hops,
                reached: false,
            };
        };
        hops.push(TraceHop {
            addr: Ipv4::CGNAT_GATEWAY,
            rtt: Millis(pop_rtt),
        });
        let pop_idx = STARLINK_POPS
            .iter()
            .position(|p| p.code == pop.code)
            // sno-lint: allow(unwrap-in-lib): the caller resolves pop from STARLINK_POPS
            .expect("pop in table") as u8;
        hops.push(TraceHop {
            addr: Ipv4::new(206, 224, pop_idx, 1),
            rtt: Millis(pop_rtt + rng.range_f64(0.3, 2.0)),
        });

        // Route from the PoP to the chosen root instance.
        let (instance, transit_km) = route_to_root(pop, target);
        let transit_rtt =
            terrestrial_rtt(pop.point, instance.point).0 + extra_transit_ms(transit_km);
        let total = pop_rtt + transit_rtt + rng.normal_with(0.0, 2.0).abs();
        let transit_hops = (((transit_km / 800.0).ceil() as usize) + rng.below(3) as usize).min(18);
        for h in 0..transit_hops {
            let frac = (h + 1) as f64 / (transit_hops + 1) as f64;
            hops.push(TraceHop {
                addr: Ipv4::new(4, 68, pop_idx, 10 + h as u8),
                rtt: Millis(pop_rtt + (total - pop_rtt) * frac),
            });
        }
        let reached = !rng.chance(0.04);
        if reached {
            hops.push(TraceHop {
                addr: root_addr(target),
                rtt: Millis(total),
            });
        }
        TracerouteRecord {
            probe: probe.id,
            timestamp,
            target,
            hops,
            reached,
        }
    }
}

/// Extra delay beyond fibre physics for long transits (peering detours,
/// queuing at IXPs).
fn extra_transit_ms(km: f64) -> f64 {
    2.0 + km / 1_000.0
}

/// Standing congestion at a PoP's egress. Frankfurt ran hot during the
/// study window — the reason Starlink shifted Dutch customers to London
/// for a ~10 ms win.
fn pop_congestion_ms(code: &str) -> f64 {
    match code {
        "frntdeu1" => 6.0,
        _ => 0.0,
    }
}

/// The probe→PoP RTT at `timestamp`: bent-pipe propagation through the
/// 550 km shell, uplink scheduling, gateway→PoP backhaul, and — when the
/// assigned PoP is not the geographically nearest one — a trombone
/// penalty for the detour through the natural gateway region (this is
/// what made the Nevada probe's RTT jump when its PoP moved to Denver,
/// and what the New Zealand probe shed when Auckland opened). `None`
/// during an outage (no satellite above the mask — marginal at Alaskan
/// latitudes).
pub fn probe_pop_rtt(
    probe: &ProbeSpec,
    pop: &PopSite,
    timestamp: Timestamp,
    rng: &mut Rng,
) -> Option<f64> {
    let distance = haversine_km(probe.location, pop.point).0;
    // The serving gateway is near the probe when the PoP is remote.
    let gateway = if distance > 1_200.0 {
        GeoPoint::new(
            (probe.location.lat + 1.5).clamp(-89.0, 89.0),
            probe.location.lon,
        )
    } else {
        pop.point
    };
    let mut pipe = BentPipe::new(STARLINK_SHELL, probe.location, gateway);
    // High-latitude cells sit at the 53° shell's edge: dishes tilt and
    // accept lower elevations (otherwise Alaska would see nothing).
    if probe.location.lat.abs() > 58.0 {
        pipe.min_elevation_deg = 15.0;
    }
    let prop = pipe.propagation_rtt(timestamp.0 as f64)?.0;
    let mut backhaul = terrestrial_rtt(gateway, pop.point).0 * 0.75 + pop_congestion_ms(pop.code);
    // Trombone: traffic still lands near the probe's natural PoP region
    // before riding to the assigned PoP.
    let nearest = STARLINK_POPS
        .iter()
        .min_by(|a, b| {
            let da = haversine_km(probe.location, a.point).0;
            let db = haversine_km(probe.location, b.point).0;
            da.total_cmp(&db)
        })
        // sno-lint: allow(unwrap-in-lib): STARLINK_POPS is a non-empty static table
        .expect("pop table non-empty");
    if nearest.code != pop.code && distance <= 1_200.0 {
        backhaul += terrestrial_rtt(nearest.point, pop.point).0 * 0.5;
    }
    // Uplink scheduling: ~18–30 ms typically; high-latitude cells are
    // near the 53° shell's edge and wait longer for beams.
    let marginal = probe.location.lat.abs() > 58.0;
    let sched_median = if marginal { 35.0 } else { 22.0 };
    let sched = sched_median * rng.lognormal(0.0, 0.22).clamp(0.55, 3.0);
    Some(prop + sched + backhaul)
}

/// Pick the root instance a PoP's egress reaches, and the effective
/// transit distance. Tokyo's PoP peers poorly: only the letters with
/// Tokyo instances resolve locally, everything else crosses the Pacific
/// (the paper's Philippines probe pays ~200 ms to most roots).
fn route_to_root(pop: &PopSite, target: RootServer) -> (&'static RootInstance, f64) {
    let tokyo_limited = pop.code == "tkyojpn1";
    instances_of(target)
        .map(|inst| {
            let mut km = haversine_km(pop.point, inst.point).0;
            if tokyo_limited && inst.country_str != "JP" {
                // Routed via the US West coast.
                km = haversine_km(pop.point, GeoPoint::new(34.05, -118.24)).0
                    + haversine_km(GeoPoint::new(34.05, -118.24), inst.point).0;
            }
            (inst, km)
        })
        .min_by(|a, b| a.1.total_cmp(&b.1))
        // sno-lint: allow(unwrap-in-lib): ROOT_INSTANCES statically covers every root letter
        .expect("every root has instances")
}

/// Anycast IPv4 of a root letter.
pub fn root_addr(root: RootServer) -> Ipv4 {
    match root {
        RootServer::A => Ipv4::new(198, 41, 0, 4),
        RootServer::B => Ipv4::new(170, 247, 170, 2),
        RootServer::C => Ipv4::new(192, 33, 4, 12),
        RootServer::D => Ipv4::new(199, 7, 91, 13),
        RootServer::E => Ipv4::new(192, 203, 230, 10),
        RootServer::F => Ipv4::new(192, 5, 5, 241),
        RootServer::G => Ipv4::new(192, 112, 36, 4),
        RootServer::H => Ipv4::new(198, 97, 190, 53),
        RootServer::I => Ipv4::new(192, 36, 148, 17),
        RootServer::J => Ipv4::new(192, 58, 128, 30),
        RootServer::K => Ipv4::new(193, 0, 14, 129),
        RootServer::M => Ipv4::new(202, 12, 27, 33),
        RootServer::L => Ipv4::new(199, 7, 83, 42),
    }
}

/// Build the probes of one [`DEPLOYMENT`] row. Ids are sequential
/// across the whole table (row base + index within the row), so rows
/// are independent shards producing exactly the probes the serial loop
/// assigned.
fn row_probes(row: usize) -> Vec<ProbeSpec> {
    let (country, count, (year, month), _) = DEPLOYMENT[row];
    let base: u32 = 1 + DEPLOYMENT[..row].iter().map(|&(_, c, _, _)| c).sum::<u32>();
    let sites = country_sites(country);
    let mut probes = Vec::with_capacity(count as usize);
    for i in 0..count {
        let id = ProbeId(base + i);
        let (location, state) = if country == "US" {
            let state = US_PROBE_STATES[i as usize];
            // sno-lint: allow(unwrap-in-lib): US_PROBE_STATES lists valid state codes only
            let s = sno_geo::world::us_state(state).expect("known state");
            // Spread probes within the state deterministically.
            let jitter = (f64::from(id.0 % 7) - 3.0) * 0.35;
            (
                GeoPoint::new(
                    (s.point.lat + jitter).clamp(-89.0, 89.0),
                    s.point.lon + jitter,
                ),
                Some(state),
            )
        } else {
            (sites[i as usize % sites.len()], None)
        };
        let start = Date::new(year, month, 3);
        let pop_schedule = schedule_for(country, i, location, start);
        probes.push(ProbeSpec {
            id,
            country: CountryCode::new(country),
            state,
            location,
            start,
            pop_schedule,
        });
    }
    probes
}

/// The PoP schedule for probe `i` of `country`, starting at `start`.
fn schedule_for(
    country: &str,
    i: u32,
    location: GeoPoint,
    start: Date,
) -> Vec<(UtcDay, &'static str)> {
    let start_day = start.to_day();
    match (country, i) {
        // New Zealand: Sydney until 2022-07-12, Auckland after.
        ("NZ", 0) => vec![
            (start_day, "sydnaus1"),
            (Date::new(2022, 7, 12).to_day(), "aklnnzl1"),
        ],
        // First Netherlands probe: Frankfurt → London.
        ("NL", 0) => vec![
            (start_day, "frntdeu1"),
            (Date::new(2022, 10, 15).to_day(), "lndngbr1"),
        ],
        // First Nevada probe: LA → Denver → LA (the 2× regression and
        // its revert). Nevada probes are US indices 6 and 7.
        ("US", 6) => vec![
            (start_day, "lsancax1"),
            (Date::new(2022, 9, 5).to_day(), "dnvrcox1"),
            (Date::new(2022, 10, 3).to_day(), "lsancax1"),
        ],
        _ => {
            let nearest = STARLINK_POPS
                .iter()
                .min_by(|a, b| {
                    let da = haversine_km(location, a.point).0;
                    let db = haversine_km(location, b.point).0;
                    da.total_cmp(&db)
                })
                // sno-lint: allow(unwrap-in-lib): STARLINK_POPS is a non-empty static table
                .expect("pop table non-empty");
            vec![(start_day, nearest.code)]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sno_stats::median;

    fn corpus() -> AtlasCorpus {
        AtlasGenerator::new(SynthConfig::test_corpus()).generate()
    }

    #[test]
    fn sslcerts_standalone_matches_generate() {
        let gen = AtlasGenerator::new(SynthConfig::test_corpus());
        assert_eq!(gen.sslcerts(), corpus().sslcerts);
    }

    #[test]
    fn traceroute_chunks_stream_probe_batches_in_order() {
        let gen = AtlasGenerator::new(SynthConfig::test_corpus());
        let probes = gen.probes();
        let quotas = gen.quotas(&probes);
        let end_day = ATLAS_END.to_day();
        let mut serial = Vec::new();
        for (i, probe) in probes.iter().enumerate() {
            serial.extend(gen.probe_batch(probe, quotas[i], end_day).0);
        }
        for chunk_len in [997usize, serial.len()] {
            for threads in [1usize, 2] {
                let gen = AtlasGenerator::new(SynthConfig {
                    threads,
                    ..SynthConfig::test_corpus()
                });
                let got = gen.traceroute_chunks(chunk_len).collect_records();
                assert_eq!(got, serial, "chunk_len {chunk_len} threads {threads}");
            }
        }
        // Sorted chronologically, the stream is exactly the
        // materialized corpus.
        let mut sorted = serial;
        sorted.sort_by_key(|t| (t.timestamp, t.probe.0));
        assert_eq!(sorted, corpus().traceroutes);
    }

    #[test]
    fn sixty_seven_probes_in_fifteen_countries() {
        let probes = AtlasGenerator::new(SynthConfig::test_corpus()).probes();
        assert_eq!(probes.len(), 67);
        let countries: std::collections::BTreeSet<_> = probes.iter().map(|p| p.country).collect();
        assert_eq!(countries.len(), 15);
        let us = probes
            .iter()
            .filter(|p| p.country == CountryCode::new("US"))
            .count();
        assert_eq!(us, 33);
    }

    #[test]
    fn nz_probe_switches_to_auckland() {
        let probes = AtlasGenerator::new(SynthConfig::test_corpus()).probes();
        let nz = probes
            .iter()
            .find(|p| p.country == CountryCode::new("NZ"))
            .unwrap();
        assert_eq!(nz.pop_on(Date::new(2022, 6, 1).to_day()).code, "sydnaus1");
        assert_eq!(nz.pop_on(Date::new(2022, 8, 1).to_day()).code, "aklnnzl1");
        // And its public address moves prefixes with the PoP.
        assert_ne!(
            nz.public_addr(Date::new(2022, 6, 1).to_day()).prefix24(),
            nz.public_addr(Date::new(2022, 8, 1).to_day()).prefix24()
        );
    }

    #[test]
    fn philippines_probe_lands_on_tokyo() {
        let probes = AtlasGenerator::new(SynthConfig::test_corpus()).probes();
        let ph = probes
            .iter()
            .find(|p| p.country == CountryCode::new("PH"))
            .unwrap();
        assert_eq!(ph.pop_on(Date::new(2023, 4, 1).to_day()).code, "tkyojpn1");
    }

    #[test]
    fn alaska_probe_lands_on_seattle() {
        let probes = AtlasGenerator::new(SynthConfig::test_corpus()).probes();
        let ak = probes.iter().find(|p| p.state == Some("AK")).unwrap();
        assert_eq!(ak.pop_on(Date::new(2023, 1, 1).to_day()).code, "sttlwax1");
    }

    #[test]
    fn reverse_dns_round_trips_pop() {
        let probes = AtlasGenerator::new(SynthConfig::test_corpus()).probes();
        for p in &probes {
            let day = ATLAS_END.to_day();
            let addr = p.public_addr(UtcDay(day.0 - 1));
            let name = reverse_dns(addr).expect("subscriber address maps");
            assert!(name.contains(p.pop_on(UtcDay(day.0 - 1)).code), "{name}");
        }
        assert_eq!(reverse_dns(Ipv4::new(8, 8, 8, 8)), None);
    }

    #[test]
    fn cgnat_rtt_in_starlink_band() {
        let corpus = corpus();
        let us_eu: Vec<f64> = corpus
            .traceroutes
            .iter()
            .filter_map(|t| {
                let p = corpus.probe(t.probe)?;
                let c = p.country.as_str();
                (c == "DE" || (c == "US" && p.state != Some("AK"))).then_some(())?;
                t.cgnat_rtt().map(|m| m.0)
            })
            .collect();
        let med = median(&us_eu).unwrap();
        assert!((30.0..60.0).contains(&med), "median {med}");
    }

    #[test]
    fn philippines_pays_roughly_double() {
        let corpus = corpus();
        let rtt_of = |cc: &str| -> f64 {
            let v: Vec<f64> = corpus
                .traceroutes
                .iter()
                .filter_map(|t| {
                    let p = corpus.probe(t.probe)?;
                    (p.country == CountryCode::new(cc)).then_some(())?;
                    t.cgnat_rtt().map(|m| m.0)
                })
                .collect();
            median(&v).unwrap()
        };
        let ph = rtt_of("PH");
        let de = rtt_of("DE");
        assert!(ph > 1.6 * de, "PH {ph} vs DE {de}");
        assert!((60.0..110.0).contains(&ph), "PH {ph}");
    }

    #[test]
    fn traceroute_volumes_follow_table2() {
        let corpus = corpus();
        let count_of = |cc: &str| {
            corpus
                .traceroutes
                .iter()
                .filter(|t| corpus.probe(t.probe).map(|p| p.country) == Some(CountryCode::new(cc)))
                .count()
        };
        assert!(count_of("US") > count_of("DE"));
        assert!(count_of("DE") > count_of("PH"));
    }

    #[test]
    fn sslcert_addresses_track_pop_changes() {
        let corpus = corpus();
        let nz = corpus
            .probes
            .iter()
            .find(|p| p.country == CountryCode::new("NZ"))
            .unwrap();
        let prefixes: std::collections::BTreeSet<_> = corpus
            .sslcerts
            .iter()
            .filter(|s| s.probe == nz.id)
            .map(|s| s.src_addr.prefix24())
            .collect();
        assert_eq!(
            prefixes.len(),
            2,
            "NZ probe must appear in two PoP prefixes"
        );
    }

    #[test]
    fn deterministic_generation() {
        let a = corpus();
        let b = corpus();
        assert_eq!(a.traceroutes.len(), b.traceroutes.len());
        assert_eq!(a.traceroutes[0], b.traceroutes[0]);
        let last = a.traceroutes.len() - 1;
        assert_eq!(a.traceroutes[last], b.traceroutes[last]);
    }

    #[test]
    fn traces_are_chronological() {
        let corpus = corpus();
        for w in corpus.traceroutes.windows(2) {
            assert!(w[0].timestamp <= w[1].timestamp);
        }
    }
}
