//! Per-session network paths built on the orbital model.
//!
//! A [`ClientPath`] implements [`PathDynamics`] for one subscriber
//! session: bent-pipe satellite propagation (time-varying for LEO/MEO),
//! access-scheduling overhead, terrestrial backhaul from the operator's
//! egress to the measurement server, random loss, bufferbloat and
//! handoff loss. Hybrid-backup lines and corporate terrestrial lines are
//! built here too, because a session on those is indistinguishable *in
//! shape* from any other — only its latency profile differs, which is
//! the paper's whole identification problem.

use crate::config::{link_quality, LinkQuality, SynthConfig};
use sno_geo::{haversine_km, GeoPoint};
use sno_netsim::path::PathDynamics;
use sno_netsim::terrestrial::terrestrial_rtt;
use sno_orbit::access::{BentPipe, GeoAccess, MeoAccess};
use sno_orbit::geostationary::GeoSlot;
use sno_orbit::meo::O3B_RING;
use sno_orbit::shell::{ONEWEB_SHELL, STARLINK_SHELL};
use sno_registry::assets::{egress_of, geo_slots_of, service_plan_of};
use sno_registry::prefixes::{allocation_for, PrefixSpec};
use sno_registry::profile::profile_of;
use sno_types::chunk::{self, RecordChunks};
use sno_types::par;
use sno_types::time::SECS_PER_DAY;
use sno_types::{Asn, LinkKind, Operator, OrbitClass, Rng, UtcDay};

/// Metro areas hosting NDT measurement servers. The client's flow exits
/// the operator's network at its egress and rides ordinary transit to
/// the server nearest the *client* — which is how a GEO subscriber ends
/// up measured against a server one continent from the teleport.
pub const MLAB_SITES: &[GeoPoint] = &[
    GeoPoint {
        lat: 47.61,
        lon: -122.33,
    }, // Seattle
    GeoPoint {
        lat: 34.05,
        lon: -118.24,
    }, // Los Angeles
    GeoPoint {
        lat: 39.74,
        lon: -104.99,
    }, // Denver
    GeoPoint {
        lat: 41.88,
        lon: -87.63,
    }, // Chicago
    GeoPoint {
        lat: 40.71,
        lon: -74.01,
    }, // New York
    GeoPoint {
        lat: 33.75,
        lon: -84.39,
    }, // Atlanta
    GeoPoint {
        lat: 43.65,
        lon: -79.38,
    }, // Toronto
    GeoPoint {
        lat: 19.43,
        lon: -99.13,
    }, // Mexico City
    GeoPoint {
        lat: -23.55,
        lon: -46.63,
    }, // São Paulo
    GeoPoint {
        lat: -33.45,
        lon: -70.67,
    }, // Santiago
    GeoPoint {
        lat: 51.51,
        lon: -0.13,
    }, // London
    GeoPoint {
        lat: 50.11,
        lon: 8.68,
    }, // Frankfurt
    GeoPoint {
        lat: 40.42,
        lon: -3.70,
    }, // Madrid
    GeoPoint {
        lat: 59.33,
        lon: 18.07,
    }, // Stockholm
    GeoPoint {
        lat: 25.28,
        lon: 55.30,
    }, // Dubai
    GeoPoint {
        lat: 19.08,
        lon: 72.88,
    }, // Mumbai
    GeoPoint {
        lat: 1.35,
        lon: 103.82,
    }, // Singapore
    GeoPoint {
        lat: 35.68,
        lon: 139.69,
    }, // Tokyo
    GeoPoint {
        lat: -33.87,
        lon: 151.21,
    }, // Sydney
    GeoPoint {
        lat: -36.85,
        lon: 174.76,
    }, // Auckland
    GeoPoint {
        lat: -26.20,
        lon: 28.05,
    }, // Johannesburg
];

/// Nearest point of `candidates` to `from`.
pub fn nearest(from: GeoPoint, candidates: &[GeoPoint]) -> GeoPoint {
    *candidates
        .iter()
        .min_by(|a, b| {
            let da = haversine_km(from, **a).0;
            let db = haversine_km(from, **b).0;
            da.total_cmp(&db)
        })
        // sno-lint: allow(unwrap-in-lib): callers pass the static gateway/PoP tables, never empty
        .expect("non-empty candidate list")
}

/// The satellite (or wire) segment of a session path.
enum Segment {
    Leo {
        pipe: BentPipe,
        /// Memo of the last handoff epoch's propagation RTT: the flow
        /// model polls the path every round, but the answer only changes
        /// at 15-second epoch boundaries, and a full constellation scan
        /// per poll would dominate corpus generation.
        memo: std::cell::RefCell<Option<(u64, Option<f64>)>>,
    },
    Meo(MeoAccess),
    /// GEO propagation is constant; precomputed.
    Geo(f64),
    /// Terrestrial line with a fixed RTT.
    Fixed(f64),
}

/// Queueing induced by *other* subscribers sharing the bottleneck
/// (transponder, beam or DSLAM): a slow oscillation the single measured
/// flow cannot control. This is what gives GEO its hundred-millisecond
/// absolute jitter (Figure 4b inset) — consumer satellite gear is both
/// deeply buffered and heavily shared.
#[derive(Debug, Clone, Copy)]
struct CrossTraffic {
    /// Peak-to-trough amplitude, ms.
    amp_ms: f64,
    /// Oscillation period, seconds.
    period_s: f64,
    /// Phase offset, radians.
    phase: f64,
}

impl CrossTraffic {
    fn sample(rng: &mut Rng, amp_lo: f64, amp_hi: f64) -> CrossTraffic {
        CrossTraffic {
            amp_ms: rng.range_f64(amp_lo, amp_hi),
            period_s: rng.range_f64(2.5, 8.0),
            phase: rng.range_f64(0.0, std::f64::consts::TAU),
        }
    }

    fn at(&self, t_secs: f64) -> f64 {
        self.amp_ms
            * 0.5
            * (1.0 + (std::f64::consts::TAU * t_secs / self.period_s + self.phase).sin())
    }
}

/// One subscriber session's end-to-end path to its measurement server.
pub struct ClientPath {
    segment: Segment,
    /// Session-constant overhead: access scheduling plus terrestrial
    /// backhaul/tail, ms.
    overhead_ms: f64,
    cross: CrossTraffic,
    loss: f64,
    buffer_ms: f64,
    handoff_loss: f64,
    rate_mbps: f64,
}

impl ClientPath {
    /// Build the path for one session.
    ///
    /// `day` selects the operator's shared day-of-corpus condition (all
    /// sessions of an operator on one day see the same wander factor —
    /// that is what makes Figure 4a's daily medians move). Returns
    /// `None` when the client sits outside the constellation's coverage
    /// (callers resample the client location).
    pub fn for_session(
        op: Operator,
        kind: LinkKind,
        client: GeoPoint,
        day: UtcDay,
        corpus_seed: u64,
        rng: &mut Rng,
    ) -> Option<ClientPath> {
        let server = nearest(client, MLAB_SITES);
        match kind {
            LinkKind::Terrestrial => Some(ClientPath::terrestrial(client, server, rng)),
            LinkKind::HybridBackup(orbit) => {
                // Three regimes: healthy fibre, degraded DSL, satellite
                // backup — the three latency clusters of Figure 3b. The
                // satellite regime dominates (the paper's hybrid
                // prefixes keep GEO-like medians with ~30% of tests
                // below 70 ms).
                let draw = rng.f64();
                if draw < 0.30 {
                    Some(ClientPath::terrestrial(client, server, rng))
                } else if draw < 0.45 {
                    Some(ClientPath::degraded_dsl(client, server, rng))
                } else {
                    ClientPath::satellite(op, orbit, client, server, day, corpus_seed, rng)
                }
            }
            LinkKind::Satellite(orbit) => {
                ClientPath::satellite(op, orbit, client, server, day, corpus_seed, rng)
            }
        }
    }

    /// A healthy terrestrial line.
    fn terrestrial(client: GeoPoint, server: GeoPoint, rng: &mut Rng) -> ClientPath {
        let wire = terrestrial_rtt(client, server).0;
        ClientPath {
            segment: Segment::Fixed(wire),
            overhead_ms: rng.range_f64(4.0, 20.0), // last-mile
            cross: CrossTraffic::sample(rng, 1.0, 8.0),
            loss: 1e-4,
            buffer_ms: 60.0,
            handoff_loss: 0.0,
            rate_mbps: rng.range_f64(100.0, 600.0),
        }
    }

    /// A degraded DSL line (the 100–150 ms cluster of Figure 3b).
    fn degraded_dsl(client: GeoPoint, server: GeoPoint, rng: &mut Rng) -> ClientPath {
        let wire = terrestrial_rtt(client, server).0;
        ClientPath {
            segment: Segment::Fixed(wire),
            overhead_ms: rng.range_f64(90.0, 140.0), // interleaving
            cross: CrossTraffic::sample(rng, 20.0, 70.0),
            loss: 2e-3,
            buffer_ms: 150.0,
            handoff_loss: 0.0,
            rate_mbps: rng.range_f64(3.0, 12.0),
        }
    }

    /// A satellite line of the given orbit.
    fn satellite(
        op: Operator,
        orbit: OrbitClass,
        client: GeoPoint,
        server: GeoPoint,
        day: UtcDay,
        corpus_seed: u64,
        rng: &mut Rng,
    ) -> Option<ClientPath> {
        let quality = link_quality(op, orbit);
        let plan = service_plan_of(op);
        let egresses = egress_of(op);
        let egress = nearest(client, egresses);
        let day_factor = daily_wander_factor(op, day, corpus_seed, quality);
        // Session overhead: uplink scheduling (lognormal around the
        // operator median, scaled by the day's condition) plus the
        // terrestrial tail egress → server.
        let sched = quality.overhead_ms * day_factor * rng.lognormal(0.0, 0.18).clamp(0.6, 2.5);
        let tail = terrestrial_rtt(egress, server).0;
        let overhead_ms = sched + tail;
        let cross = match orbit {
            OrbitClass::Leo => CrossTraffic::sample(rng, 16.0, 42.0),
            OrbitClass::Meo => CrossTraffic::sample(rng, 45.0, 150.0),
            OrbitClass::Geo => CrossTraffic::sample(rng, 120.0, 320.0),
        };

        let segment = match orbit {
            OrbitClass::Leo => {
                let shell = if op == Operator::Oneweb {
                    ONEWEB_SHELL
                } else {
                    STARLINK_SHELL
                };
                // The downlink gateway sits near the client (gateway
                // networks are dense); backhaul gateway → egress is part
                // of the overhead via `tail` only when the egress is the
                // serving PoP, so add the extra hop here.
                let gateway = nearest(client, egresses);
                let gw = if haversine_km(client, gateway).0 > 1_500.0 {
                    // No nearby egress: gateway lands near the client and
                    // traffic backhauls over fibre (OneWeb's US-only
                    // egress; Starlink Philippines → Tokyo).
                    GeoPoint::new(
                        (client.lat + 2.0).clamp(-89.0, 89.0),
                        (client.lon - 2.0).clamp(-179.9, 179.9),
                    )
                } else {
                    gateway
                };
                let pipe = BentPipe::new(shell, client, gw);
                // Validate coverage at a sample instant.
                pipe.propagation_rtt(0.0)?;
                let backhaul = terrestrial_rtt(gw, egress).0;
                return Some(ClientPath {
                    segment: Segment::Leo {
                        pipe,
                        memo: std::cell::RefCell::new(None),
                    },
                    overhead_ms: overhead_ms + backhaul * 0.75, // cable routes beat the 1.6 default
                    cross,
                    loss: quality.loss,
                    buffer_ms: quality.buffer_ms,
                    handoff_loss: quality.handoff_loss,
                    rate_mbps: rng.range_f64(plan.down_lo, plan.down_hi),
                });
            }
            OrbitClass::Meo => {
                let access = MeoAccess::new(O3B_RING, client, egress);
                access.propagation_rtt(0.0)?;
                Segment::Meo(access)
            }
            OrbitClass::Geo => {
                let prop = geo_slots_of(op)
                    .iter()
                    .filter_map(|&lon| {
                        GeoAccess::new(GeoSlot { lon_deg: lon }, client, egress).propagation_rtt()
                    })
                    .map(|m| m.0)
                    .fold(None::<f64>, |best, rtt| {
                        Some(best.map_or(rtt, |b| b.min(rtt)))
                    })?;
                Segment::Geo(prop)
            }
        };
        Some(ClientPath {
            segment,
            overhead_ms,
            cross,
            loss: quality.loss,
            buffer_ms: quality.buffer_ms,
            handoff_loss: quality.handoff_loss,
            rate_mbps: rng.range_f64(plan.down_lo, plan.down_hi),
        })
    }

    /// The bottleneck rate chosen for this session.
    pub fn rate_mbps(&self) -> f64 {
        self.rate_mbps
    }
}

/// Scatter a client around a home point by roughly `scatter_km`.
pub fn scatter(home: GeoPoint, scatter_km: f64, rng: &mut Rng) -> GeoPoint {
    // Convert a km-scale displacement to degrees (approximate; fine for
    // placing subscribers).
    let dlat = rng.normal_with(0.0, scatter_km / 111.0 / 2.0);
    let lat = (home.lat + dlat).clamp(-65.0, 66.0); // stay in service belts
    let dlon = rng.normal_with(
        0.0,
        scatter_km / 111.0 / 2.0 / lat.to_radians().cos().max(0.2),
    );
    let mut lon = home.lon + dlon;
    while lon > 180.0 {
        lon -= 360.0;
    }
    while lon < -180.0 {
        lon += 360.0;
    }
    GeoPoint::new(lat, lon)
}

/// One session's ground-truth link characterization: what the path
/// itself offers at session start, before any TCP dynamics. This is the
/// corpus the path-model validation experiment consumes — the injected
/// access-latency ground truth the identification pipeline must
/// re-detect through the NDT reductions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathSample {
    /// The operator whose network the session rides.
    pub operator: Operator,
    /// Ground-truth link kind for the drawn prefix.
    pub kind: LinkKind,
    /// Base RTT at session start (propagation + scheduling + backhaul +
    /// cross-traffic), ms.
    pub base_rtt_ms: f64,
    /// The session's bottleneck rate, Mbps.
    pub rate_mbps: f64,
}

/// Generates [`PathSample`] corpora: one sample per would-be session,
/// drawn from the operator's prefix plan exactly like the NDT generator
/// draws its sessions, but reduced to the link-level ground truth.
///
/// Samples are generated in fixed-size shards, each from its own RNG
/// substream (`"paths"` / operator index / shard), so the materialized
/// and chunked paths are byte-identical at every `config.threads`
/// setting and chunk length.
pub struct PathSampler {
    config: SynthConfig,
}

impl PathSampler {
    /// Create a sampler.
    pub fn new(config: SynthConfig) -> PathSampler {
        PathSampler { config }
    }

    /// How many samples [`PathSampler::samples_for`] targets for `op`
    /// (the same scaled session count the NDT generator uses). Sparse
    /// coverage can come in slightly under via the rejection budget.
    pub fn sample_count(&self, op: Operator) -> usize {
        self.config.scaled_sessions(profile_of(op).mlab_tests) as usize
    }

    /// Materialize every sample for one operator.
    pub fn samples_for(&self, op: Operator) -> Vec<PathSample> {
        let n = self.sample_count(op);
        if n == 0 {
            return Vec::new();
        }
        let (table, weights, op_rng) = self.op_inputs(op);
        par::shard_map_chunks(
            n,
            par::DEFAULT_CHUNK,
            self.config.threads,
            |shard, range| {
                let mut rng = op_rng.substream_shard(shard);
                self.sample_batch(op, &table, &weights, range.len(), &mut rng)
            },
        )
    }

    /// Stream the concatenated samples of the listed operators, in list
    /// order — exactly the concatenation of [`PathSampler::samples_for`]
    /// per operator — delivered in chunks of at most `chunk_len`
    /// records, without materializing any operator's corpus.
    pub fn sample_chunks<'a>(
        &'a self,
        ops: &[Operator],
        chunk_len: usize,
    ) -> impl RecordChunks<Item = PathSample> + 'a {
        struct OpPlan {
            op: Operator,
            table: Vec<(Asn, PrefixSpec)>,
            weights: Vec<f64>,
            rng: Rng,
            ranges: Vec<std::ops::Range<usize>>,
        }
        let mut plans: Vec<OpPlan> = Vec::new();
        let mut shard_index: Vec<(usize, usize)> = Vec::new();
        for &op in ops {
            let n = self.sample_count(op);
            if n == 0 {
                continue;
            }
            let (table, weights, rng) = self.op_inputs(op);
            let ranges = par::shard_ranges(n, par::DEFAULT_CHUNK);
            for shard in 0..ranges.len() {
                shard_index.push((plans.len(), shard));
            }
            plans.push(OpPlan {
                op,
                table,
                weights,
                rng,
                ranges,
            });
        }
        chunk::sharded(
            shard_index.len(),
            self.config.threads,
            chunk_len,
            move |global| {
                let (plan_idx, shard) = shard_index[global];
                let plan = &plans[plan_idx];
                let mut rng = plan.rng.substream_shard(shard);
                self.sample_batch(
                    plan.op,
                    &plan.table,
                    &plan.weights,
                    plan.ranges[shard].len(),
                    &mut rng,
                )
            },
        )
    }

    /// The per-operator inputs: the flattened weighted prefix table and
    /// the operator's RNG substream root (its own `"paths"` label, so
    /// the NDT corpus and the path samples never share draws).
    fn op_inputs(&self, op: Operator) -> (Vec<(Asn, PrefixSpec)>, Vec<f64>, Rng) {
        let allocation = allocation_for(op);
        let mut table: Vec<(Asn, PrefixSpec)> = Vec::new();
        for (asn, specs) in &allocation {
            for spec in specs {
                table.push((*asn, *spec));
            }
        }
        let weights: Vec<f64> = table.iter().map(|(_, s)| s.weight).collect();
        let rng = Rng::new(self.config.seed)
            .substream_named("paths")
            .substream(op.index() as u64);
        (table, weights, rng)
    }

    /// Up to `count` samples for one shard, with the NDT generator's
    /// `4 × count` rejection budget for sparse coverage.
    fn sample_batch(
        &self,
        op: Operator,
        table: &[(Asn, PrefixSpec)],
        weights: &[f64],
        count: usize,
        rng: &mut Rng,
    ) -> Vec<PathSample> {
        let start_day = self.config.mlab_start.to_day();
        let end_day = self.config.mlab_end.to_day();
        let span_days = (end_day - start_day) as u64;
        let mut out = Vec::with_capacity(count);
        let mut attempts = 0usize;
        while out.len() < count && attempts < count * 4 {
            attempts += 1;
            let (_, spec) = table[rng.choose_weighted(weights)];
            let day = UtcDay(start_day.0 + rng.below(span_days) as u32);
            let sec_of_day = rng.below(SECS_PER_DAY);
            let kind = spec.kind;
            let client = scatter(spec.home, spec.scatter_km, rng);
            let Some(path) = ClientPath::for_session(op, kind, client, day, self.config.seed, rng)
            else {
                continue; // out of coverage; resample
            };
            let orbital_t = (u64::from(day.0) * SECS_PER_DAY + sec_of_day) as f64;
            let Some(base_rtt_ms) = path.base_rtt_ms(orbital_t) else {
                continue; // outage at session start
            };
            out.push(PathSample {
                operator: op,
                kind,
                base_rtt_ms,
                rate_mbps: path.rate_mbps(),
            });
        }
        out
    }
}

/// The shared day-of-corpus wander factor for an operator: every session
/// of `op` on `day` sees the same multiplicative latency condition.
pub fn daily_wander_factor(
    op: Operator,
    day: UtcDay,
    corpus_seed: u64,
    quality: LinkQuality,
) -> f64 {
    let mut day_rng = Rng::new(corpus_seed)
        .substream_named("daily-wander")
        .substream(op.index() as u64)
        .substream(u64::from(day.0));
    // Half-normal excursions above 1.0: latency degrades, it rarely
    // improves below the engineered floor. The multiplier is sized so a
    // HughesNet-class wander (0.75) can double the access overhead on a
    // bad day — the paper measures day-over-day median swings of up to
    // 72 % for HughesNet and 120 % for OneWeb.
    1.0 + quality.daily_wander * day_rng.normal().abs() * 2.0
}

impl PathDynamics for ClientPath {
    fn base_rtt_ms(&self, t_secs: f64) -> Option<f64> {
        let prop = match &self.segment {
            Segment::Leo { pipe, memo } => {
                let epoch = pipe.generation(t_secs);
                let mut memo = memo.borrow_mut();
                let rtt = match *memo {
                    Some((e, rtt)) if e == epoch => rtt,
                    _ => {
                        let rtt = pipe.propagation_rtt(t_secs).map(|m| m.0);
                        *memo = Some((epoch, rtt));
                        rtt
                    }
                };
                rtt?
            }
            Segment::Meo(access) => access.propagation_rtt(t_secs)?.0,
            Segment::Geo(prop) => *prop,
            Segment::Fixed(rtt) => *rtt,
        };
        Some(prop + self.overhead_ms + self.cross.at(t_secs))
    }

    fn loss_prob(&self, _t: f64) -> f64 {
        self.loss
    }

    fn bottleneck_mbps(&self) -> f64 {
        self.rate_mbps
    }

    fn buffer_ms(&self) -> f64 {
        self.buffer_ms
    }

    fn generation(&self, t_secs: f64) -> u64 {
        match &self.segment {
            Segment::Leo { pipe, .. } => pipe.generation(t_secs),
            Segment::Meo(access) => access.generation(t_secs).unwrap_or(0),
            _ => 0,
        }
    }

    fn handoff_loss_prob(&self) -> f64 {
        self.handoff_loss
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sno_types::Date;

    fn day() -> UtcDay {
        Date::new(2022, 6, 1).to_day()
    }

    fn mk(op: Operator, kind: LinkKind, client: GeoPoint, seed: u64) -> Option<ClientPath> {
        let mut rng = Rng::new(seed);
        ClientPath::for_session(op, kind, client, day(), 7, &mut rng)
    }

    #[test]
    fn starlink_us_session_latency_band() {
        let p = mk(
            Operator::Starlink,
            LinkKind::Satellite(OrbitClass::Leo),
            GeoPoint::new(45.5, -100.0),
            1,
        )
        .unwrap();
        let rtt = p.base_rtt_ms(0.0).unwrap();
        assert!((25.0..110.0).contains(&rtt), "rtt {rtt}");
    }

    #[test]
    fn geo_session_latency_band() {
        let p = mk(
            Operator::Viasat,
            LinkKind::Satellite(OrbitClass::Geo),
            GeoPoint::new(39.0, -98.0),
            2,
        )
        .unwrap();
        let rtt = p.base_rtt_ms(0.0).unwrap();
        assert!((500.0..900.0).contains(&rtt), "rtt {rtt}");
    }

    #[test]
    fn meo_session_latency_band() {
        let p = mk(
            Operator::O3b,
            LinkKind::Satellite(OrbitClass::Meo),
            GeoPoint::new(-3.0, 115.0),
            3,
        )
        .unwrap();
        let rtt = p.base_rtt_ms(0.0).unwrap();
        assert!((200.0..420.0).contains(&rtt), "rtt {rtt}");
    }

    #[test]
    fn terrestrial_session_is_fast() {
        let p = mk(
            Operator::Starlink,
            LinkKind::Terrestrial,
            GeoPoint::new(47.0, -122.0),
            4,
        )
        .unwrap();
        let rtt = p.base_rtt_ms(0.0).unwrap();
        assert!(rtt < 60.0, "rtt {rtt}");
        assert_eq!(p.generation(0.0), p.generation(1e5));
    }

    #[test]
    fn hybrid_sessions_cluster_into_three_regimes() {
        let mut clusters = [0usize; 3]; // fast / mid / satellite
        for seed in 0..300 {
            let p = mk(
                Operator::Viasat,
                LinkKind::HybridBackup(OrbitClass::Geo),
                GeoPoint::new(-20.0, -55.0),
                seed,
            )
            .unwrap();
            let rtt = p.base_rtt_ms(0.0).unwrap();
            if rtt < 90.0 {
                clusters[0] += 1;
            } else if rtt < 300.0 {
                clusters[1] += 1;
            } else {
                clusters[2] += 1;
            }
        }
        assert!(clusters.iter().all(|&c| c > 30), "clusters {clusters:?}");
    }

    #[test]
    fn geo_coverage_hole_returns_none() {
        // Far-north user cannot see any Viasat slot.
        assert!(mk(
            Operator::Viasat,
            LinkKind::Satellite(OrbitClass::Geo),
            GeoPoint::new(83.0, -98.0),
            5,
        )
        .is_none());
    }

    #[test]
    fn oneweb_latency_above_starlink() {
        // Median over several sessions: OneWeb's US-only egress makes it
        // clearly slower than Starlink for comparable users.
        let sample = |op: Operator, client: GeoPoint| -> f64 {
            let rtts: Vec<f64> = (0..40)
                .filter_map(|s| mk(op, LinkKind::Satellite(OrbitClass::Leo), client, 100 + s))
                .filter_map(|p| p.base_rtt_ms(0.0))
                .collect();
            sno_stats::median(&rtts).expect("some sessions in coverage")
        };
        let starlink = sample(Operator::Starlink, GeoPoint::new(49.0, 8.0));
        let oneweb = sample(Operator::Oneweb, GeoPoint::new(49.0, 8.0));
        assert!(
            oneweb > starlink + 40.0,
            "oneweb {oneweb} vs starlink {starlink}"
        );
    }

    #[test]
    fn daily_factor_shared_within_a_day() {
        let q = link_quality(Operator::Hughes, OrbitClass::Geo);
        let a = daily_wander_factor(Operator::Hughes, UtcDay(100), 7, q);
        let b = daily_wander_factor(Operator::Hughes, UtcDay(100), 7, q);
        let c = daily_wander_factor(Operator::Hughes, UtcDay(101), 7, q);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a >= 1.0);
    }

    #[test]
    fn wander_amplitude_ranks_operators() {
        // Across many days, HughesNet's day factors must swing far more
        // than Starlink's.
        let spread = |op: Operator, orbit: OrbitClass| -> f64 {
            let q = link_quality(op, orbit);
            let factors: Vec<f64> = (0..200)
                .map(|d| daily_wander_factor(op, UtcDay(d), 7, q))
                .collect();
            let hi = factors.iter().cloned().fold(f64::MIN, f64::max);
            let lo = factors.iter().cloned().fold(f64::MAX, f64::min);
            hi - lo
        };
        assert!(
            spread(Operator::Hughes, OrbitClass::Geo)
                > 5.0 * spread(Operator::Starlink, OrbitClass::Leo)
        );
    }
}
