//! Synthetic public-dataset generators.
//!
//! This crate stands in for the data the paper mines but that cannot be
//! fetched here: M-Lab's NDT archive, RIPE Atlas built-in measurements,
//! BGP route-views snapshots and the Prolific census. Each generator is
//! seeded and deterministic, and produces records whose *mechanisms*
//! (orbital propagation delay, TCP dynamics, PEP behaviour, PoP
//! reassignment) match what the paper attributes its findings to — the
//! numbers are emergent, not pasted.
//!
//! * [`config`] — corpus seed/scale/window and per-operator link quality;
//! * [`paths`] — [`sno_netsim::PathDynamics`] implementations built on
//!   the orbital model (LEO bent pipe, MEO ring, GEO slot, terrestrial,
//!   hybrid-backup);
//! * [`mlab`] — NDT speed-test corpus (drives Figures 2–4, Tables 1/3);
//! * [`atlas`] — the 67-probe RIPE Atlas deployment with traceroutes to
//!   the 13 roots, SSLCert source addresses, reverse DNS, and the
//!   historical PoP-change events (drives Figures 6–8, Table 2);
//! * [`bgp`] — route-views snapshots for 2021/2022/2023 (Figures 5, 12,
//!   13 and the coverage validation);
//! * [`census`] — Prolific satisfaction scores (Figure 14).

pub mod atlas;
pub mod bgp;
pub mod census;
pub mod config;
pub mod mlab;
pub mod paths;

pub use atlas::{AtlasCorpus, AtlasGenerator, ProbeSpec};
pub use bgp::snapshots;
pub use census::{census_chunks, census_responses};
pub use config::SynthConfig;
pub use mlab::{MlabCorpus, MlabGenerator};
pub use paths::ClientPath;
