//! The synthetic M-Lab NDT corpus.
//!
//! For every operator with Table-1 presence, the generator runs a scaled
//! number of 10-second NDT download flows over paths built from the
//! operator's prefix plan and the orbital model, and reduces each flow's
//! TCP_Info polls to an [`NdtRecord`]. GEO operators that deploy PEPs
//! (HughesNet, Viasat, Eutelsat, Avanti) run their satellite flows
//! through the split-connection model.

use crate::config::SynthConfig;
use crate::paths::{scatter, ClientPath};
use sno_netsim::pep::PepMode;
use sno_netsim::tcp::{TcpConfig, TcpFlow};
use sno_registry::prefixes::{allocation_for, PrefixSpec};
use sno_registry::profile::{profile_of, PROFILES};
use sno_types::chunk::{self, RecordChunks};
use sno_types::par;
use sno_types::records::NdtRecord;
use sno_types::time::SECS_PER_DAY;
use sno_types::{Asn, LinkKind, Operator, OrbitClass, Rng, Timestamp, UtcDay};

/// A generated corpus: the records plus ground truth for validation.
#[derive(Debug, Clone)]
pub struct MlabCorpus {
    /// All NDT records, in generation order (grouped by operator).
    pub records: Vec<NdtRecord>,
}

/// Ground truth of one record (never shown to the pipeline; used by
/// integration tests to score identification accuracy).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionTruth {
    pub operator: Operator,
    pub kind: LinkKind,
}

/// NDT corpus generator.
pub struct MlabGenerator {
    config: SynthConfig,
}

impl MlabGenerator {
    /// Create a generator.
    pub fn new(config: SynthConfig) -> MlabGenerator {
        MlabGenerator { config }
    }

    /// Total sessions [`MlabGenerator::generate`] (and
    /// [`MlabGenerator::generate_chunks`]) targets: the sum of the
    /// scaled per-operator counts. Sparse-coverage shards can come in
    /// slightly under their target via the rejection budget, so treat
    /// this as the progress ceiling, not an exact count.
    pub fn session_count(&self) -> u64 {
        PROFILES
            .iter()
            .filter(|p| p.mlab_tests > 0)
            .map(|p| self.config.scaled_sessions(p.mlab_tests))
            .sum()
    }

    /// Generate records for every Table-1 operator.
    pub fn generate(&self) -> MlabCorpus {
        let mut records = Vec::new();
        for profile in PROFILES {
            if profile.mlab_tests > 0 {
                records.extend(self.generate_for(profile.operator));
            }
        }
        MlabCorpus { records }
    }

    /// Generate the corpus together with per-record ground truth.
    pub fn generate_with_truth(&self) -> (MlabCorpus, Vec<SessionTruth>) {
        let mut records = Vec::new();
        let mut truth = Vec::new();
        for profile in PROFILES {
            if profile.mlab_tests > 0 {
                for (rec, t) in self.sessions_for(profile.operator) {
                    records.push(rec);
                    truth.push(t);
                }
            }
        }
        (MlabCorpus { records }, truth)
    }

    /// Generate records for one operator.
    pub fn generate_for(&self, op: Operator) -> Vec<NdtRecord> {
        self.sessions_for(op)
            .into_iter()
            .map(|(rec, _)| rec)
            .collect()
    }

    /// Generate `(record, truth)` pairs for one operator.
    ///
    /// Sessions are generated in fixed-size shards, each from its own
    /// RNG substream, so the output is byte-identical at every
    /// `config.threads` setting (shard boundaries depend only on the
    /// session count — see `sno_types::par`).
    pub fn sessions_for(&self, op: Operator) -> Vec<(NdtRecord, SessionTruth)> {
        let profile = profile_of(op);
        let n = self.config.scaled_sessions(profile.mlab_tests) as usize;
        if n == 0 {
            return Vec::new();
        }
        let (table, weights, op_rng) = self.op_inputs(op);

        par::shard_map_chunks(
            n,
            par::DEFAULT_CHUNK,
            self.config.threads,
            |shard, range| {
                let mut rng = op_rng.substream_shard(shard);
                self.session_batch(op, &table, &weights, range.len(), &mut rng)
            },
        )
    }

    /// Stream the exact record sequence [`MlabGenerator::generate`]
    /// materializes, in the same order, delivered in chunks of at most
    /// `chunk_len` records.
    ///
    /// The stream runs the same shard plan as the materialized path:
    /// shard boundaries come from `par::DEFAULT_CHUNK` over each
    /// operator's session count, and every shard draws from
    /// `substream_shard(shard)` of the operator substream — neither
    /// `chunk_len` nor `config.threads` can perturb the records. Peak
    /// memory is one wave of shard outputs plus the re-buffer, not the
    /// corpus. Call again for a second pass; the stream is rebuilt from
    /// the seed.
    pub fn generate_chunks(&self, chunk_len: usize) -> impl RecordChunks<Item = NdtRecord> + '_ {
        let ops: Vec<Operator> = PROFILES
            .iter()
            .filter(|p| p.mlab_tests > 0)
            .map(|p| p.operator)
            .collect();
        self.chunked_ops(ops, chunk_len)
    }

    /// Stream the record sequence of the listed operators only, in
    /// list order — exactly the concatenation of
    /// [`MlabGenerator::generate_for`] per operator — delivered in
    /// chunks of at most `chunk_len` records. Shares the shard plan
    /// (and therefore the byte-identical output guarantee) of
    /// [`MlabGenerator::generate_chunks`].
    pub fn generate_chunks_for<'a>(
        &'a self,
        ops: &[Operator],
        chunk_len: usize,
    ) -> impl RecordChunks<Item = NdtRecord> + 'a {
        self.chunked_ops(ops.to_vec(), chunk_len)
    }

    /// The shared chunked-generation plan: one shard list concatenating
    /// the per-operator shard plans, evaluated in deterministic waves.
    fn chunked_ops(
        &self,
        ops: Vec<Operator>,
        chunk_len: usize,
    ) -> impl RecordChunks<Item = NdtRecord> + '_ {
        // One entry per requested operator, in list order; the global
        // shard list concatenates their shard plans.
        struct OpPlan {
            op: Operator,
            table: Vec<(Asn, PrefixSpec)>,
            weights: Vec<f64>,
            rng: Rng,
            ranges: Vec<std::ops::Range<usize>>,
        }
        let mut plans: Vec<OpPlan> = Vec::new();
        let mut shard_index: Vec<(usize, usize)> = Vec::new();
        for op in ops {
            let n = self.config.scaled_sessions(profile_of(op).mlab_tests) as usize;
            if n == 0 {
                continue;
            }
            let (table, weights, rng) = self.op_inputs(op);
            let ranges = par::shard_ranges(n, par::DEFAULT_CHUNK);
            for shard in 0..ranges.len() {
                shard_index.push((plans.len(), shard));
            }
            plans.push(OpPlan {
                op,
                table,
                weights,
                rng,
                ranges,
            });
        }
        chunk::sharded(
            shard_index.len(),
            self.config.threads,
            chunk_len,
            move |global| {
                let (plan_idx, shard) = shard_index[global];
                let plan = &plans[plan_idx];
                let mut rng = plan.rng.substream_shard(shard);
                self.session_batch(
                    plan.op,
                    &plan.table,
                    &plan.weights,
                    plan.ranges[shard].len(),
                    &mut rng,
                )
                .into_iter()
                .map(|(rec, _)| rec)
                .collect()
            },
        )
    }

    /// The per-operator generation inputs shared by the materialized
    /// and chunked paths: the flattened weighted prefix table and the
    /// operator's RNG substream root.
    fn op_inputs(&self, op: Operator) -> (Vec<(Asn, PrefixSpec)>, Vec<f64>, Rng) {
        let allocation = allocation_for(op);
        let mut table: Vec<(Asn, PrefixSpec)> = Vec::new();
        for (asn, specs) in &allocation {
            for spec in specs {
                table.push((*asn, *spec));
            }
        }
        let weights: Vec<f64> = table.iter().map(|(_, s)| s.weight).collect();
        let rng = Rng::new(self.config.seed)
            .substream_named("mlab")
            .substream(op.index() as u64);
        (table, weights, rng)
    }

    /// Generate up to `count` sessions for one shard, drawing from the
    /// shard's own `rng`. A rejection budget of `4 × count` bounds the
    /// work when an operator's coverage is sparse, exactly as the old
    /// whole-operator loop did per session on average.
    fn session_batch(
        &self,
        op: Operator,
        table: &[(Asn, PrefixSpec)],
        weights: &[f64],
        count: usize,
        rng: &mut Rng,
    ) -> Vec<(NdtRecord, SessionTruth)> {
        let profile = profile_of(op);
        let start_day = self.config.mlab_start.to_day();
        let end_day = self.config.mlab_end.to_day();
        let span_days = (end_day - start_day) as u64;

        let mut out = Vec::with_capacity(count);
        let mut attempts = 0usize;
        while out.len() < count && attempts < count * 4 {
            attempts += 1;
            let (asn, spec) = table[rng.choose_weighted(weights)];
            let day = UtcDay(start_day.0 + rng.below(span_days) as u32);
            let sec_of_day = rng.below(SECS_PER_DAY);
            let timestamp = Timestamp::from_day(day) + sec_of_day;

            // Ground-truth link kind; pure prefixes can still carry
            // occasional terrestrial outliers (VPNs, misattribution).
            let kind = if spec.outlier_fraction > 0.0 && rng.chance(spec.outlier_fraction) {
                LinkKind::Terrestrial
            } else {
                spec.kind
            };

            let client = scatter(spec.home, spec.scatter_km, rng);
            let Some(path) = ClientPath::for_session(op, kind, client, day, self.config.seed, rng)
            else {
                continue; // out of coverage; resample
            };

            let pep = if profile.uses_pep && matches!(kind, LinkKind::Satellite(OrbitClass::Geo)) {
                PepMode::typical()
            } else {
                PepMode::None
            };
            let flow = TcpFlow::new(TcpConfig {
                pep,
                ..TcpConfig::ndt()
            });
            // Orbital time: seconds since corpus start, so satellites are
            // in distinct positions across sessions.
            let orbital_t = (u64::from(day.0) * SECS_PER_DAY + sec_of_day) as f64;
            let stats = flow.run(&path, orbital_t, rng);

            let (Some(latency_p5), Some(jitter_p95)) = (stats.latency_p5(), stats.jitter_p95())
            else {
                continue; // total outage; M-Lab would record nothing
            };
            // A limited host pool per prefix makes repeat tests from the
            // same address common; hybrid prefixes are small residential
            // pools, so single IPs accumulate enough history for the
            // Figure 3b inset.
            let pool: u64 = match spec.kind {
                LinkKind::HybridBackup(_) => 5,
                _ => 48,
            };
            let host = 1 + rng.below(pool) as u8;
            out.push((
                NdtRecord {
                    timestamp,
                    client: spec.prefix.addr(host),
                    asn,
                    latency_p5,
                    jitter_p95,
                    retrans_fraction: stats.retrans_fraction(),
                    download: stats.mean_throughput(),
                },
                SessionTruth { operator: op, kind },
            ));
        }
        out
    }
}

/// Convenience: all records of a fresh default corpus (used by examples).
pub fn default_corpus() -> MlabCorpus {
    MlabGenerator::new(SynthConfig::default_corpus()).generate()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sno_stats::median;

    fn test_gen() -> MlabGenerator {
        MlabGenerator::new(SynthConfig::test_corpus())
    }

    #[test]
    fn starlink_records_look_leo() {
        let recs = test_gen().generate_for(Operator::Starlink);
        assert!(recs.len() > 1_000, "got {}", recs.len());
        let lat: Vec<f64> = recs.iter().map(|r| r.latency_p5.0).collect();
        let med = median(&lat).unwrap();
        assert!((40.0..80.0).contains(&med), "median {med}");
        // Mostly AS14593, with some corporate AS27277.
        assert!(recs.iter().any(|r| r.asn == Asn(14593)));
        assert!(recs.iter().any(|r| r.asn == Asn(27277)));
    }

    #[test]
    fn corporate_asn_is_fast() {
        let recs = test_gen().generate_for(Operator::Starlink);
        let corp: Vec<f64> = recs
            .iter()
            .filter(|r| r.asn == Asn(27277))
            .map(|r| r.latency_p5.0)
            .collect();
        assert!(!corp.is_empty());
        let med = median(&corp).unwrap();
        assert!(med < 45.0, "corporate median {med}");
    }

    #[test]
    fn geo_operator_latency_band() {
        let recs = test_gen().generate_for(Operator::Viasat);
        let sat: Vec<f64> = recs
            .iter()
            .map(|r| r.latency_p5.0)
            .filter(|&l| l > 400.0)
            .collect();
        let med = median(&sat).unwrap();
        assert!((540.0..800.0).contains(&med), "median {med}");
    }

    #[test]
    fn viasat_hybrid_prefixes_mix_latencies() {
        let recs = test_gen().generate_for(Operator::Viasat);
        let hybrid: Vec<&NdtRecord> = recs
            .iter()
            .filter(|r| {
                let p = r.client.prefix24();
                [115u8, 116, 117]
                    .iter()
                    .any(|&c| p == sno_types::Prefix24::new(45, 232, c))
            })
            .collect();
        assert!(hybrid.len() >= 5, "only {} hybrid records", hybrid.len());
        let nonsat = hybrid.iter().filter(|r| r.latency_p5.0 < 300.0).count();
        let slow = hybrid.iter().filter(|r| r.latency_p5.0 > 450.0).count();
        assert!(nonsat > 0, "no terrestrial/DSL cluster");
        assert!(slow > 0, "no satellite cluster");
    }

    #[test]
    fn meo_sits_between_leo_and_geo() {
        let gen = test_gen();
        let med_of = |op: Operator| {
            let recs = gen.generate_for(op);
            let lat: Vec<f64> = recs.iter().map(|r| r.latency_p5.0).collect();
            median(&lat).unwrap()
        };
        let leo = med_of(Operator::Starlink);
        let meo = med_of(Operator::O3b);
        let geo = med_of(Operator::Kvh);
        assert!(leo < meo, "leo {leo} meo {meo}");
        assert!(meo < geo, "meo {meo} geo {geo}");
        assert!((200.0..400.0).contains(&meo), "meo {meo}");
    }

    #[test]
    fn pep_operators_retransmit_less_than_bare_geo() {
        let gen = test_gen();
        let retrans_median = |op: Operator| {
            let recs = gen.generate_for(op);
            let r: Vec<f64> = recs
                .iter()
                .filter(|r| r.latency_p5.0 > 400.0) // satellite sessions only
                .map(|r| r.retrans_fraction)
                .collect();
            median(&r).unwrap()
        };
        let viasat = retrans_median(Operator::Viasat); // PEP
        let kvh = retrans_median(Operator::Kvh); // no PEP
        assert!(viasat < kvh / 2.0, "viasat {viasat} vs kvh {kvh}");
    }

    #[test]
    fn scaled_volumes_respect_table1_order() {
        let gen = test_gen();
        let starlink = gen.generate_for(Operator::Starlink).len();
        let viasat = gen.generate_for(Operator::Viasat).len();
        let kacific = gen.generate_for(Operator::Kacific).len();
        assert!(starlink > viasat);
        assert!(viasat > kacific);
        assert!(kacific >= 25, "kacific floored near its 34 tests");
    }

    #[test]
    fn deterministic_generation() {
        let a = test_gen().generate_for(Operator::Oneweb);
        let b = test_gen().generate_for(Operator::Oneweb);
        assert_eq!(a, b);
    }

    #[test]
    fn chunked_generation_matches_materialized() {
        let cfg = SynthConfig {
            scale: 5e-5,
            min_sessions: 40,
            ..SynthConfig::test_corpus()
        };
        let serial = MlabGenerator::new(cfg.clone()).generate().records;
        assert!(!serial.is_empty());
        for chunk_len in [1usize, 137, serial.len()] {
            for threads in [1usize, 2] {
                let gen = MlabGenerator::new(SynthConfig {
                    threads,
                    ..cfg.clone()
                });
                let got = gen.generate_chunks(chunk_len).collect_records();
                assert_eq!(got, serial, "chunk_len {chunk_len} threads {threads}");
            }
        }
    }

    #[test]
    fn chunked_generation_for_ops_matches_concatenated_generate_for() {
        let cfg = SynthConfig {
            scale: 5e-5,
            min_sessions: 40,
            ..SynthConfig::test_corpus()
        };
        let ops = [Operator::Starlink, Operator::Viasat, Operator::O3b];
        let serial: Vec<NdtRecord> = {
            let gen = MlabGenerator::new(cfg.clone());
            ops.iter().flat_map(|&op| gen.generate_for(op)).collect()
        };
        assert!(!serial.is_empty());
        for chunk_len in [1usize, 137, serial.len()] {
            for threads in [1usize, 2, 8] {
                let gen = MlabGenerator::new(SynthConfig {
                    threads,
                    ..cfg.clone()
                });
                let got = gen.generate_chunks_for(&ops, chunk_len).collect_records();
                assert_eq!(got, serial, "chunk_len {chunk_len} threads {threads}");
            }
        }
    }

    #[test]
    fn chunked_generation_is_restreamable() {
        let cfg = SynthConfig {
            scale: 5e-5,
            min_sessions: 40,
            ..SynthConfig::test_corpus()
        };
        let gen = MlabGenerator::new(cfg);
        let first = gen.generate_chunks(256).collect_records();
        let second = gen.generate_chunks(256).collect_records();
        assert_eq!(first, second);
    }

    #[test]
    fn truth_aligns_with_records() {
        let (corpus, truth) = test_gen().generate_with_truth();
        assert_eq!(corpus.records.len(), truth.len());
        // Every Starlink-truth record carries a Starlink ASN.
        for (rec, t) in corpus.records.iter().zip(&truth) {
            if t.operator == Operator::Starlink {
                assert!(rec.asn == Asn(14593) || rec.asn == Asn(27277));
            }
        }
    }
}
