//! Corpus configuration and per-operator link quality.

use sno_types::{Date, Operator, OrbitClass};

/// Configuration shared by all generators.
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// Master seed; every generator derives named substreams from it.
    pub seed: u64,
    /// Fraction of the paper's full M-Lab volume to generate (Table 1's
    /// 11.92 M tests are more than a test suite needs). Low-volume
    /// operators are floored so every Table-1 operator stays present.
    pub scale: f64,
    /// Per-operator session floor: mid-size operators get at least
    /// `min(full_volume, min_sessions)` sessions so per-ASN statistics
    /// stay meaningful at small scales. Raise it (with a narrower
    /// window) for analyses that need dense daily coverage (Figure 4a).
    pub min_sessions: u64,
    /// First day of the M-Lab window.
    pub mlab_start: Date,
    /// One day past the end of the M-Lab window.
    pub mlab_end: Date,
    /// Worker threads for sharded generation (`0` = all available
    /// cores). Output is byte-identical at every setting; see
    /// `sno_types::par`.
    pub threads: usize,
}

impl SynthConfig {
    /// The default corpus: seed `0x5A7E1117`, 1/1000 of full volume,
    /// January 2021 – March 2023 (the paper's M-Lab window).
    pub fn default_corpus() -> SynthConfig {
        SynthConfig {
            seed: 0x5A7E_1117,
            scale: 1e-3,
            min_sessions: 300,
            mlab_start: Date::new(2021, 1, 1),
            mlab_end: Date::new(2023, 4, 1),
            threads: 0,
        }
    }

    /// A smaller corpus for fast unit tests.
    pub fn test_corpus() -> SynthConfig {
        SynthConfig {
            scale: 2e-4,
            ..SynthConfig::default_corpus()
        }
    }

    /// Number of NDT sessions to generate for an operator with
    /// `full_volume` tests at full scale. Floored at
    /// `min(full_volume, min_sessions)`: the tail operators (Kacific's
    /// 34 tests … SSI's 260) keep their exact Table-1 volumes, while
    /// mid-size operators keep enough sessions for per-ASN KDE
    /// statistics.
    pub fn scaled_sessions(&self, full_volume: u64) -> u64 {
        if full_volume == 0 {
            return 0;
        }
        let scaled = (full_volume as f64 * self.scale).ceil() as u64;
        scaled.max(full_volume.min(self.min_sessions))
    }
}

/// Link-quality knobs per orbit regime: random loss, bottleneck buffer
/// depth (bufferbloat), access-scheduling overhead, and handoff loss.
#[derive(Debug, Clone, Copy)]
pub struct LinkQuality {
    /// Per-packet random loss probability.
    pub loss: f64,
    /// Bottleneck buffer depth, ms.
    pub buffer_ms: f64,
    /// Median access overhead added to the propagation RTT
    /// (uplink scheduling, framing), ms.
    pub overhead_ms: f64,
    /// Extra loss applied to the first round after a handoff.
    pub handoff_loss: f64,
    /// Amplitude of the day-to-day latency wander (fraction of the
    /// overhead; drives Figure 4a's per-operator stability).
    pub daily_wander: f64,
}

/// Link quality for one operator's satellite access.
pub fn link_quality(op: Operator, orbit: OrbitClass) -> LinkQuality {
    let uses_pep = sno_registry::profile::profile_of(op).uses_pep;
    match orbit {
        OrbitClass::Leo => {
            if op == Operator::Oneweb {
                // Sparse early constellation: higher loss, wild daily
                // swings (Figure 4a: up to 120% daily variation).
                LinkQuality {
                    loss: 5e-5,
                    buffer_ms: 90.0,
                    overhead_ms: 27.0,
                    handoff_loss: 0.30,
                    daily_wander: 1.2,
                }
            } else {
                // Starlink: dense constellation, stable (3.1% daily).
                LinkQuality {
                    loss: 2e-5,
                    buffer_ms: 45.0,
                    overhead_ms: 43.0,
                    handoff_loss: 0.10,
                    daily_wander: 0.05,
                }
            }
        }
        OrbitClass::Meo => LinkQuality {
            // O3b: 41.4% daily variation, occasional hard handoffs.
            loss: 0.015,
            buffer_ms: 140.0,
            overhead_ms: 84.0,
            handoff_loss: 0.5,
            daily_wander: 0.45,
        },
        OrbitClass::Geo => {
            let (loss, wander) = match op {
                Operator::Viasat => (0.012, 0.08),
                Operator::Hughes => (0.015, 1.0),
                Operator::Eutelsat | Operator::Avanti => (0.015, 0.3),
                Operator::Kvh | Operator::Marlink => (0.075, 0.4),
                _ => (0.055, 0.3),
            };
            LinkQuality {
                loss,
                buffer_ms: if uses_pep { 250.0 } else { 320.0 },
                overhead_ms: geo_overhead(op),
                handoff_loss: 0.0,
                daily_wander: wander,
            }
        }
    }
}

/// Median GEO access overhead per operator, ms. This sets the spread of
/// Figure 3c's GEO boxplots (SSI best at ~620 ms, KVH worst at ~835 ms,
/// overall median ~673 ms).
fn geo_overhead(op: Operator) -> f64 {
    // These are *base* medians; the daily-wander factor multiplies them,
    // so the effective median overhead is roughly 1.4× these values for
    // a typical (0.3) wander.
    match op {
        Operator::Ssi => 68.0,
        Operator::Viasat => 99.0,
        Operator::Hughes => 80.0,
        Operator::Eutelsat => 107.0,
        Operator::Telalaska => 121.0,
        Operator::Avanti => 107.0,
        Operator::Ses => 121.0,
        Operator::Marlink => 149.0,
        Operator::Kvh => 208.0,
        _ => 128.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_sessions_floor_and_scale() {
        let cfg = SynthConfig::default_corpus();
        assert_eq!(cfg.scaled_sessions(0), 0);
        assert_eq!(cfg.scaled_sessions(11_700_000), 11_700);
        // Tail operators survive scaling untouched.
        assert_eq!(cfg.scaled_sessions(34), 34);
        assert_eq!(cfg.scaled_sessions(260), 260);
        // Mid-size operators are floored at 300.
        assert_eq!(cfg.scaled_sessions(2_800), 300);
        assert_eq!(cfg.scaled_sessions(78_100), 300);
    }

    #[test]
    fn leo_overhead_below_geo() {
        let leo = link_quality(Operator::Starlink, OrbitClass::Leo);
        let geo = link_quality(Operator::Viasat, OrbitClass::Geo);
        assert!(leo.overhead_ms < geo.overhead_ms);
        assert!(leo.buffer_ms < geo.buffer_ms);
    }

    #[test]
    fn stability_ranking_matches_figure_4a() {
        let starlink = link_quality(Operator::Starlink, OrbitClass::Leo).daily_wander;
        let viasat = link_quality(Operator::Viasat, OrbitClass::Geo).daily_wander;
        let o3b = link_quality(Operator::O3b, OrbitClass::Meo).daily_wander;
        let hughes = link_quality(Operator::Hughes, OrbitClass::Geo).daily_wander;
        let oneweb = link_quality(Operator::Oneweb, OrbitClass::Leo).daily_wander;
        assert!(starlink < viasat);
        assert!(viasat < o3b);
        assert!(o3b < hughes);
        assert!(hughes < oneweb);
    }

    #[test]
    fn kvh_is_the_slowest_geo_and_ssi_the_fastest() {
        let kvh = link_quality(Operator::Kvh, OrbitClass::Geo).overhead_ms;
        let ssi = link_quality(Operator::Ssi, OrbitClass::Geo).overhead_ms;
        for p in sno_registry::PROFILES {
            if p.mlab_tests == 0 {
                continue;
            }
            let o = link_quality(p.operator, OrbitClass::Geo).overhead_ms;
            assert!(o <= kvh, "{} overhead above KVH", p.operator);
            assert!(o >= ssi, "{} overhead below SSI", p.operator);
        }
    }

    #[test]
    fn only_leo_and_meo_hand_off() {
        assert!(link_quality(Operator::Starlink, OrbitClass::Leo).handoff_loss > 0.0);
        assert!(link_quality(Operator::O3b, OrbitClass::Meo).handoff_loss > 0.0);
        assert_eq!(
            link_quality(Operator::Viasat, OrbitClass::Geo).handoff_loss,
            0.0
        );
    }
}
