//! Synthetic BGP route-views snapshots (2021-01-01, 2022-01-01,
//! 2023-01-01).
//!
//! Each snapshot is an AS-level peering graph containing the SNOs, the
//! transit providers they peer with (with realistic relative degrees —
//! tier-1s carry hundreds of customers), and enough stub ASes to make
//! degree a usable size proxy. The growth patterns follow the paper's
//! Figure 13: Starlink's peering explodes across the globe, HughesNet
//! stays put, Viasat expands out of the US, and Marlink swaps its tier-1
//! from legacy Level3 (AS3549) to Cogent (AS174).
//!
//! The edge list is generated through the [`RecordChunks`] streaming
//! contract: [`edge_chunks`] yields the graph one bounded chunk at a
//! time from independent per-provider / per-profile shards, and
//! [`snapshot_for`] folds those chunks through a sorted-merge
//! accumulator instead of materializing the raw (pre-dedup) edge list.
//! Chunk length and thread count never change the resulting snapshot.

use sno_types::chunk::{self, RecordChunks};
use sno_types::records::{AsInfo, BgpSnapshot, CountryCode};
use sno_types::{Asn, Date, Operator};

/// A transit or regional provider.
#[derive(Debug, Clone, Copy)]
struct Provider {
    asn: u32,
    name: &'static str,
    country: &'static str,
    /// Stub customers attached in every snapshot (degree ballast).
    stubs: u32,
}

/// Tier-1 and large regional providers.
const PROVIDERS: &[Provider] = &[
    Provider {
        asn: 3356,
        name: "Lumen (Level3)",
        country: "US",
        stubs: 90,
    },
    Provider {
        asn: 1299,
        name: "Arelion",
        country: "SE",
        stubs: 80,
    },
    Provider {
        asn: 174,
        name: "Cogent",
        country: "US",
        stubs: 85,
    },
    Provider {
        asn: 6762,
        name: "Telecom Italia Sparkle",
        country: "IT",
        stubs: 55,
    },
    Provider {
        asn: 2914,
        name: "NTT",
        country: "US",
        stubs: 70,
    },
    Provider {
        asn: 3257,
        name: "GTT",
        country: "DE",
        stubs: 50,
    },
    Provider {
        asn: 6939,
        name: "Hurricane Electric",
        country: "US",
        stubs: 75,
    },
    Provider {
        asn: 3549,
        name: "Level3 (legacy)",
        country: "US",
        stubs: 40,
    },
    Provider {
        asn: 7018,
        name: "AT&T",
        country: "US",
        stubs: 45,
    },
    Provider {
        asn: 3320,
        name: "Deutsche Telekom",
        country: "DE",
        stubs: 45,
    },
    Provider {
        asn: 7195,
        name: "EdgeUno",
        country: "CO",
        stubs: 18,
    },
    Provider {
        asn: 4826,
        name: "Vocus",
        country: "AU",
        stubs: 20,
    },
    Provider {
        asn: 2516,
        name: "KDDI",
        country: "JP",
        stubs: 25,
    },
    Provider {
        asn: 4771,
        name: "Spark NZ",
        country: "NZ",
        stubs: 10,
    },
    Provider {
        asn: 6471,
        name: "Entel Chile",
        country: "CL",
        stubs: 10,
    },
    Provider {
        asn: 5511,
        name: "Orange International",
        country: "FR",
        stubs: 30,
    },
    Provider {
        asn: 1136,
        name: "KPN",
        country: "NL",
        stubs: 12,
    },
    Provider {
        asn: 5400,
        name: "BT Global",
        country: "GB",
        stubs: 25,
    },
    Provider {
        asn: 577,
        name: "Bell Canada",
        country: "CA",
        stubs: 15,
    },
    Provider {
        asn: 7473,
        name: "Singtel",
        country: "SG",
        stubs: 20,
    },
    Provider {
        asn: 12956,
        name: "Telxius",
        country: "ES",
        stubs: 18,
    },
    Provider {
        asn: 33891,
        name: "Core-Backbone",
        country: "DE",
        stubs: 10,
    },
    Provider {
        asn: 9304,
        name: "HGC",
        country: "HK",
        stubs: 12,
    },
    Provider {
        asn: 52320,
        name: "GlobeNet",
        country: "BR",
        stubs: 10,
    },
];

/// The tier-1 club (the paper checks which SNOs reach any of them).
pub const TIER1_ASNS: &[u32] = &[3356, 1299, 174, 6762, 2914, 3257, 3549, 7018, 3320];

/// Small regional ISPs (Kacific's distributors, Hellas-Sat's locals...).
const SMALL_ISPS: &[Provider] = &[
    Provider {
        asn: 140504,
        name: "Pacific Isles Net",
        country: "FJ",
        stubs: 0,
    },
    Provider {
        asn: 140505,
        name: "Vanuatu Broadband",
        country: "PG",
        stubs: 0,
    },
    Provider {
        asn: 140506,
        name: "Solomon Telekom",
        country: "PG",
        stubs: 0,
    },
    Provider {
        asn: 140507,
        name: "Tuvalu ICT",
        country: "FJ",
        stubs: 1,
    },
    Provider {
        asn: 140508,
        name: "Kiribati Link",
        country: "FJ",
        stubs: 0,
    },
    Provider {
        asn: 197101,
        name: "Attica Wireless",
        country: "GR",
        stubs: 1,
    },
    Provider {
        asn: 197102,
        name: "Cyclades Net",
        country: "GR",
        stubs: 0,
    },
    Provider {
        asn: 197103,
        name: "Cyprus Rural Broadband",
        country: "CY",
        stubs: 1,
    },
    Provider {
        asn: 398201,
        name: "Beltway Federal Networks",
        country: "US",
        stubs: 1,
    },
    Provider {
        asn: 398202,
        name: "Potomac GovNet",
        country: "US",
        stubs: 0,
    },
];

/// Peers of one SNO in one snapshot year.
fn sno_peers(op: Operator, year: i32) -> Vec<u32> {
    match op {
        Operator::Starlink => match year {
            // Explosive growth across the globe.
            2021 => vec![3356, 174, 6939, 1299],
            2022 => vec![3356, 174, 6939, 1299, 3320, 4826, 2516, 577, 7018],
            _ => vec![
                3356, 174, 6939, 1299, 3320, 4826, 2516, 577, 7018, 6762, 7195, 4771, 6471, 5400,
                2914, 9304, 7473, 52320,
            ],
        },
        Operator::Hughes => vec![3356, 174, 7018], // stagnant: same every year
        Operator::Viasat => match year {
            2021 => vec![3356, 174, 2914, 7018],
            2022 => vec![3356, 174, 2914, 7018, 1299],
            _ => vec![3356, 174, 2914, 7018, 1299, 6762, 52320, 12956],
        },
        Operator::Marlink => match year {
            // Tier-1 swap: legacy Level3 → Cogent.
            2021 => vec![3549, 1136, 5511],
            _ => vec![174, 1136, 5511],
        },
        Operator::Oneweb => vec![3356, 6939], // two US-based providers
        Operator::Ses | Operator::O3b => match year {
            2021 => vec![3356, 1299, 2914, 5511, 7473],
            _ => vec![3356, 1299, 2914, 5511, 7473, 6762, 3257, 52320],
        },
        Operator::Kacific => vec![140504, 140505, 140506, 140507, 140508, 4826],
        Operator::HellasSat => vec![197101, 197102, 197103], // no tier-1s
        Operator::Ultisat => vec![398201, 398202],           // no tier-1s
        Operator::Eutelsat => vec![5511, 1299, 3356],
        Operator::Telalaska => vec![3356, 7018],
        Operator::Kvh => vec![174, 7018],
        Operator::Ssi => vec![577, 174],
        Operator::Intelsat => vec![3356, 2914, 1299],
        Operator::Avanti => vec![5400, 1299],
        Operator::Globalsat => vec![174],
        Operator::Isotropic => vec![6939],
        // Only called for operators with explicit tables (see
        // `peers_or_default`).
        _ => unreachable!("no explicit peering table for {op}"),
    }
}

/// The primary (customer-facing) ASN of an operator in the graph.
fn primary_asn(op: Operator) -> u32 {
    sno_registry::profile::profile_of(op).asns[0]
}

/// Build all three snapshots. Each snapshot is a pure function of its
/// year, so they build on the worker pool and merge in year order.
pub fn snapshots() -> Vec<BgpSnapshot> {
    const YEARS: [i32; 3] = [2021, 2022, 2023];
    sno_types::par::shard_map(YEARS.len(), 0, |i| snapshot_for(YEARS[i]))
}

/// Delivery granularity for [`snapshot_for`]'s internal edge stream.
const EDGE_CHUNK_LEN: usize = 256;

/// Build the snapshot captured on `year`-01-01.
///
/// Runs the chunked build serially; [`snapshots`] already parallelizes
/// across years on the worker pool.
pub fn snapshot_for(year: i32) -> BgpSnapshot {
    snapshot_for_chunked(year, EDGE_CHUNK_LEN, 1)
}

/// Build the `year`-01-01 snapshot by draining [`edge_chunks`] through a
/// sorted-merge accumulator. Peak edge memory is the deduped accumulator
/// plus one chunk — the raw concatenated edge list is never held. The
/// result is identical for every `chunk_len >= 1` and thread count.
pub fn snapshot_for_chunked(year: i32, chunk_len: usize, threads: usize) -> BgpSnapshot {
    let edges = edge_chunks(year, chunk_len, threads).fold_chunks(Vec::new(), merge_sorted_dedup);
    BgpSnapshot {
        date: Date::new(year, 1, 1),
        edges,
        info: info_table(),
    }
}

/// Total shard count of the edge stream: one per provider (stub
/// ballast), one for the tier-1 mesh, one per SNO registry profile.
fn edge_shard_count() -> usize {
    PROVIDERS.len() + SMALL_ISPS.len() + 1 + sno_registry::PROFILES.len()
}

/// The provider at position `i` of the `PROVIDERS ++ SMALL_ISPS` chain.
fn provider_at(i: usize) -> &'static Provider {
    if i < PROVIDERS.len() {
        &PROVIDERS[i]
    } else {
        &SMALL_ISPS[i - PROVIDERS.len()]
    }
}

/// First private-range stub ASN of provider `i`: 64512 plus the block
/// widths of every earlier provider. A pure function of the index, so
/// each provider shard is independently computable.
fn stub_base_for(i: usize) -> u32 {
    let mut base = 64_512u32;
    for p in PROVIDERS.iter().chain(SMALL_ISPS).take(i) {
        base += p.stubs.max(1);
    }
    base
}

/// Edges emitted by one shard of the stream (see [`edge_shard_count`]).
fn edge_shard(year: i32, shard: usize) -> Vec<(Asn, Asn)> {
    let providers = PROVIDERS.len() + SMALL_ISPS.len();
    if shard < providers {
        // Stub ballast hanging off one provider.
        let p = provider_at(shard);
        let base = stub_base_for(shard);
        (0..p.stubs).map(|s| edge(p.asn, base + s)).collect()
    } else if shard == providers {
        // The tier-1 full mesh.
        let mut edges = Vec::new();
        for (i, a) in TIER1_ASNS.iter().enumerate() {
            for b in &TIER1_ASNS[i + 1..] {
                edges.push(edge(*a, *b));
            }
        }
        edges
    } else {
        // One SNO's peerings for this year.
        let profile = &sno_registry::PROFILES[shard - providers - 1];
        let asn = primary_asn(profile.operator);
        peers_or_default(profile.operator, year, profile.country)
            .into_iter()
            .map(|peer| edge(asn, peer))
            .collect()
    }
}

/// Stream the peering graph of `year` as chunks of at most `chunk_len`
/// edges, producing up to `threads` shards at a time (`0` = auto). The
/// concatenated stream is the same edge sequence for every chunk length
/// and thread count; it is *not* deduplicated — fold it through
/// [`merge_sorted_dedup`] (as [`snapshot_for_chunked`] does) to recover
/// the snapshot's canonical sorted edge list.
pub fn edge_chunks(
    year: i32,
    chunk_len: usize,
    threads: usize,
) -> impl RecordChunks<Item = (Asn, Asn)> {
    chunk::sharded(edge_shard_count(), threads, chunk_len, move |s| {
        edge_shard(year, s)
    })
}

/// Fold step for the streamed snapshot build: sort-dedup the incoming
/// chunk, then merge two sorted deduped runs into one. Equivalent to
/// sort + dedup over the concatenation, without ever holding it.
fn merge_sorted_dedup(acc: Vec<(Asn, Asn)>, mut next: Vec<(Asn, Asn)>) -> Vec<(Asn, Asn)> {
    next.sort_unstable();
    next.dedup();
    if acc.is_empty() {
        return next;
    }
    let mut merged = Vec::with_capacity(acc.len() + next.len());
    let (mut i, mut j) = (0, 0);
    while i < acc.len() || j < next.len() {
        let take_acc = j >= next.len() || (i < acc.len() && acc[i] <= next[j]);
        let item = if take_acc {
            let v = acc[i];
            i += 1;
            v
        } else {
            let v = next[j];
            j += 1;
            v
        };
        if merged.last() != Some(&item) {
            merged.push(item);
        }
    }
    merged
}

/// The AS metadata table (year-independent): providers interleaved with
/// their stub blocks, then the SNO profiles, deduplicated by ASN.
fn info_table() -> Vec<AsInfo> {
    let mut info: Vec<AsInfo> = Vec::new();
    let push_info = |asn: u32, name: &str, country: &str, info: &mut Vec<AsInfo>| {
        if !info.iter().any(|i| i.asn == Asn(asn)) {
            info.push(AsInfo {
                asn: Asn(asn),
                name: name.to_string(),
                country: CountryCode::new(country),
            });
        }
    };
    for (i, p) in PROVIDERS.iter().chain(SMALL_ISPS).enumerate() {
        push_info(p.asn, p.name, p.country, &mut info);
        let base = stub_base_for(i);
        for s in 0..p.stubs {
            let stub = base + s;
            push_info(stub, &format!("Stub-{stub}"), p.country, &mut info);
        }
    }
    for profile in sno_registry::PROFILES {
        push_info(
            primary_asn(profile.operator),
            profile.org,
            profile.country,
            &mut info,
        );
    }
    info
}

/// Peers for operators with explicit tables, or a home-country default.
fn peers_or_default(op: Operator, year: i32, country: &str) -> Vec<u32> {
    match op {
        Operator::Starlink
        | Operator::Hughes
        | Operator::Viasat
        | Operator::Marlink
        | Operator::Oneweb
        | Operator::Ses
        | Operator::O3b
        | Operator::Kacific
        | Operator::HellasSat
        | Operator::Ultisat
        | Operator::Eutelsat
        | Operator::Telalaska
        | Operator::Kvh
        | Operator::Ssi
        | Operator::Intelsat
        | Operator::Avanti
        | Operator::Globalsat
        | Operator::Isotropic => sno_peers_safe(op, year),
        _ => match country {
            "US" => vec![174],
            "CA" => vec![577],
            "GB" => vec![5400],
            "FR" => vec![5511],
            "NO" | "SE" => vec![1299],
            "GR" | "CY" => vec![197101],
            "AU" | "PG" | "SG" | "ID" | "TH" => vec![7473],
            "MX" | "BR" => vec![52320],
            "IN" | "HK" => vec![9304],
            "RU" => vec![3257],
            _ => vec![174],
        },
    }
}

fn sno_peers_safe(op: Operator, year: i32) -> Vec<u32> {
    sno_peers(op, year)
}

fn edge(a: u32, b: u32) -> (Asn, Asn) {
    if a <= b {
        (Asn(a), Asn(b))
    } else {
        (Asn(b), Asn(a))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_snapshots() {
        let snaps = snapshots();
        assert_eq!(snaps.len(), 3);
        assert_eq!(snaps[0].date, Date::new(2021, 1, 1));
        assert_eq!(snaps[2].date, Date::new(2023, 1, 1));
    }

    #[test]
    fn starlink_grows_hughes_stagnates() {
        let snaps = snapshots();
        let starlink: Vec<usize> = snaps.iter().map(|s| s.degree(Asn(14593))).collect();
        assert!(starlink[0] < starlink[1] && starlink[1] < starlink[2]);
        assert!(starlink[2] >= 3 * starlink[0], "{starlink:?}");
        let hughes: Vec<usize> = snaps.iter().map(|s| s.degree(Asn(28613))).collect();
        assert_eq!(hughes[0], hughes[2], "{hughes:?}");
    }

    #[test]
    fn marlink_swaps_tier1() {
        let snaps = snapshots();
        let peers_2021 = snaps[0].peers(Asn(5377));
        let peers_2023 = snaps[2].peers(Asn(5377));
        assert!(peers_2021.contains(&Asn(3549)));
        assert!(!peers_2021.contains(&Asn(174)));
        assert!(peers_2023.contains(&Asn(174)));
        assert!(!peers_2023.contains(&Asn(3549)));
    }

    #[test]
    fn oneweb_has_two_us_providers() {
        let snap = snapshot_for(2023);
        let peers = snap.peers(Asn(800));
        assert_eq!(peers.len(), 2);
        for p in peers {
            assert_eq!(snap.info_for(p).unwrap().country.as_str(), "US");
        }
    }

    #[test]
    fn hellas_and_ultisat_lack_tier1s() {
        let snap = snapshot_for(2023);
        for asn in [41697u32, 393439] {
            for p in snap.peers(Asn(asn)) {
                assert!(!TIER1_ASNS.contains(&p.0), "AS{asn} peers tier-1 {p}");
            }
        }
    }

    #[test]
    fn kacific_outweighs_its_distributors() {
        let snap = snapshot_for(2023);
        let kacific = snap.degree(Asn(135409));
        for p in snap.peers(Asn(135409)) {
            if p != Asn(4826) {
                assert!(snap.degree(p) < kacific, "{p} too big");
            }
        }
    }

    #[test]
    fn tier1s_dwarf_snos() {
        let snap = snapshot_for(2023);
        let level3 = snap.degree(Asn(3356));
        let starlink = snap.degree(Asn(14593));
        assert!(
            level3 > 3 * starlink,
            "level3 {level3} vs starlink {starlink}"
        );
    }

    #[test]
    fn every_edge_endpoint_has_info() {
        for snap in snapshots() {
            for &(a, b) in &snap.edges {
                assert!(snap.info_for(a).is_some(), "{a} missing info");
                assert!(snap.info_for(b).is_some(), "{b} missing info");
            }
        }
    }

    #[test]
    fn chunked_build_matches_materialized_at_any_chunk_and_threads() {
        for year in [2021, 2023] {
            // Reference: materialize every shard serially, then one
            // global sort + dedup — the pre-streaming construction.
            let mut reference: Vec<(Asn, Asn)> = (0..edge_shard_count())
                .flat_map(|s| edge_shard(year, s))
                .collect();
            reference.sort_unstable_by_key(|&(a, b)| (a.0, b.0));
            reference.dedup();

            let baseline = snapshot_for(year);
            assert_eq!(baseline.edges, reference, "year {year} baseline");
            for chunk_len in [1, 64, 1 << 20] {
                for threads in [1, 2, 8] {
                    let snap = snapshot_for_chunked(year, chunk_len, threads);
                    assert_eq!(
                        snap.edges, reference,
                        "year {year} chunk {chunk_len} threads {threads}"
                    );
                    assert_eq!(snap.info, baseline.info);
                    assert_eq!(snap.date, baseline.date);
                }
            }
        }
    }

    #[test]
    fn edge_stream_is_chunk_and_thread_invariant() {
        let serial: Vec<(Asn, Asn)> = (0..edge_shard_count())
            .flat_map(|s| edge_shard(2022, s))
            .collect();
        for chunk_len in [1, 7, 512] {
            for threads in [1, 2, 8] {
                let got = edge_chunks(2022, chunk_len, threads).collect_records();
                assert_eq!(got, serial, "chunk {chunk_len} threads {threads}");
            }
        }
    }

    #[test]
    fn edges_are_normalised_and_deduped() {
        let snap = snapshot_for(2022);
        for &(a, b) in &snap.edges {
            assert!(a <= b);
        }
        let mut copy = snap.edges.clone();
        copy.dedup();
        assert_eq!(copy.len(), snap.edges.len());
    }
}
