//! The Prolific census (Figure 14).
//!
//! 56 testers who are genuine SNO subscribers rate their service from 1
//! (very poor) to 5 (very good). The paper's distribution: Starlink
//! users are mostly satisfied (only one of twenty rates it "poor"),
//! while "ok" is the *highest* score anyone gives HughesNet (55 % of its
//! answers) or Viasat (18 %).

use sno_types::chunk::{self, RecordChunks};
use sno_types::records::CensusResponse;
use sno_types::{Operator, Rng, TesterId};

/// Score histogram `[very poor, poor, ok, good, very good]` per operator.
fn score_counts(op: Operator) -> [u32; 5] {
    match op {
        Operator::Starlink => [0, 1, 3, 8, 8],
        Operator::Hughes => [3, 5, 10, 0, 0],
        Operator::Viasat => [7, 8, 3, 0, 0],
        _ => [0; 5],
    }
}

/// Generate the 56 census responses (order shuffled by `seed`).
pub fn census_responses(seed: u64) -> Vec<CensusResponse> {
    let mut out = Vec::new();
    let mut next = 1u32;
    for op in [Operator::Starlink, Operator::Hughes, Operator::Viasat] {
        for (i, &n) in score_counts(op).iter().enumerate() {
            for _ in 0..n {
                out.push(CensusResponse {
                    tester: TesterId(next),
                    operator: op,
                    score: (i + 1) as u8,
                });
                next += 1;
            }
        }
    }
    let mut rng = Rng::new(seed).substream_named("census");
    rng.shuffle(&mut out);
    out
}

/// Stream the census responses in chunks of at most `chunk_len`
/// records, concatenating to exactly [`census_responses`].
///
/// The corpus is 56 records with a *global* shuffle, so it is one shard
/// — the point of the chunked form is the uniform [`RecordChunks`]
/// contract (experiments fold chunks instead of holding a `Vec`), not
/// memory relief this tiny corpus never needed.
pub fn census_chunks(seed: u64, chunk_len: usize) -> impl RecordChunks<Item = CensusResponse> {
    chunk::sharded(1, 1, chunk_len, move |_| census_responses(seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunked_delivery_matches_materialized() {
        let serial = census_responses(3);
        for chunk_len in [1usize, 7, 56, 4096] {
            let got = census_chunks(3, chunk_len).collect_records();
            assert_eq!(got, serial, "chunk_len {chunk_len}");
        }
    }

    #[test]
    fn fifty_six_testers() {
        let responses = census_responses(1);
        assert_eq!(responses.len(), 56);
        let starlink = responses
            .iter()
            .filter(|r| r.operator == Operator::Starlink)
            .count();
        assert_eq!(starlink, 20);
    }

    #[test]
    fn starlink_mostly_satisfied() {
        let responses = census_responses(1);
        let poor_or_worse = responses
            .iter()
            .filter(|r| r.operator == Operator::Starlink && r.score <= 2)
            .count();
        assert_eq!(poor_or_worse, 1, "only one Starlink user rates it poor");
    }

    #[test]
    fn ok_is_the_ceiling_for_geo_operators() {
        let responses = census_responses(1);
        for op in [Operator::Hughes, Operator::Viasat] {
            assert!(
                responses
                    .iter()
                    .filter(|r| r.operator == op)
                    .all(|r| r.score <= 3),
                "{op} must not exceed 'ok'"
            );
        }
        // HughesNet: 10/18 ≈ 55% rate it ok; Viasat: 3/18 ≈ 18%.
        let ok_share = |op: Operator| {
            let all: Vec<_> = responses.iter().filter(|r| r.operator == op).collect();
            all.iter().filter(|r| r.score == 3).count() as f64 / all.len() as f64
        };
        assert!((ok_share(Operator::Hughes) - 0.55).abs() < 0.02);
        assert!((ok_share(Operator::Viasat) - 0.18).abs() < 0.02);
    }

    #[test]
    fn scores_in_range_and_testers_unique() {
        let responses = census_responses(9);
        assert!(responses.iter().all(|r| (1..=5).contains(&r.score)));
        let mut ids: Vec<u32> = responses.iter().map(|r| r.tester.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 56);
    }
}
