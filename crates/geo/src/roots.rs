//! Anycast instance sites of the 13 DNS root servers.
//!
//! RIPE Atlas built-in traceroutes target the root letters; which
//! *instance* answers depends on where the probe's traffic enters the
//! internet (for Starlink: at the PoP). The paper leans on instance
//! geography twice: Chile hosts only 7 of the 13 letters locally (so
//! ~half the Chilean queries take long routes, e.g. to the M root which
//! has no South American presence), while Europe hosts nearly all of
//! them. The deployment below reproduces those facts with a compact,
//! plausible site list per letter.

use crate::point::GeoPoint;
use sno_types::records::{CountryCode, RootServer};

/// One anycast instance of a root letter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RootInstance {
    /// The root letter.
    pub root: RootServer,
    /// Host city.
    pub city: &'static str,
    /// Country of the instance.
    pub country_str: &'static str,
    /// Location.
    pub point: GeoPoint,
}

impl RootInstance {
    /// The instance's country code.
    pub fn country(&self) -> CountryCode {
        CountryCode::new(self.country_str)
    }
}

macro_rules! site {
    ($root:ident, $city:literal, $cc:literal, $lat:literal, $lon:literal) => {
        RootInstance {
            root: RootServer::$root,
            city: $city,
            country_str: $cc,
            point: GeoPoint {
                lat: $lat,
                lon: $lon,
            },
        }
    };
}

/// Every root instance in the synthetic deployment.
///
/// Letters with Santiago instances: A, E, F, I, J, K, L (7 of 13, as the
/// paper reports for Chile). G and H are US-only; M (WIDE) has no South
/// American or Oceanian presence.
pub const ROOT_INSTANCES: &[RootInstance] = &[
    // A — widely deployed.
    site!(A, "Ashburn", "US", 39.04, -77.49),
    site!(A, "Frankfurt", "DE", 50.11, 8.68),
    site!(A, "London", "GB", 51.51, -0.13),
    site!(A, "Tokyo", "JP", 35.68, 139.69),
    site!(A, "Santiago", "CL", -33.45, -70.67),
    // B — few instances.
    site!(B, "Los Angeles", "US", 34.05, -118.24),
    site!(B, "Miami", "US", 25.76, -80.19),
    site!(B, "Singapore", "SG", 1.35, 103.82),
    // C — US + Europe.
    site!(C, "New York", "US", 40.71, -74.01),
    site!(C, "Chicago", "US", 41.88, -87.63),
    site!(C, "Frankfurt", "DE", 50.11, 8.68),
    site!(C, "Madrid", "ES", 40.42, -3.70),
    site!(C, "Paris", "FR", 48.86, 2.35),
    // D — US + Europe.
    site!(D, "Ashburn", "US", 39.04, -77.49),
    site!(D, "Denver", "US", 39.74, -104.99),
    site!(D, "Amsterdam", "NL", 52.37, 4.90),
    site!(D, "Vienna", "AT", 48.21, 16.37),
    // E — broad.
    site!(E, "San Francisco", "US", 37.77, -122.42),
    site!(E, "Dallas", "US", 32.78, -96.80),
    site!(E, "London", "GB", 51.51, -0.13),
    site!(E, "Sydney", "AU", -33.87, 151.21),
    site!(E, "Santiago", "CL", -33.45, -70.67),
    // F — very broad (ISC).
    site!(F, "San Francisco", "US", 37.77, -122.42),
    site!(F, "Atlanta", "US", 33.75, -84.39),
    site!(F, "Frankfurt", "DE", 50.11, 8.68),
    site!(F, "Warsaw", "PL", 52.23, 21.01),
    site!(F, "Tokyo", "JP", 35.68, 139.69),
    site!(F, "Auckland", "NZ", -36.85, 174.76),
    site!(F, "Sydney", "AU", -33.87, 151.21),
    site!(F, "Santiago", "CL", -33.45, -70.67),
    site!(F, "Toronto", "CA", 43.65, -79.38),
    // G — US military, US only.
    site!(G, "Columbus", "US", 39.96, -83.00),
    site!(G, "San Diego", "US", 32.72, -117.16),
    // H — US Army, US only.
    site!(H, "Aberdeen", "US", 39.51, -76.16),
    site!(H, "San Diego", "US", 32.72, -117.16),
    // I — Netnod, broad.
    site!(I, "Stockholm", "SE", 59.33, 18.07),
    site!(I, "Frankfurt", "DE", 50.11, 8.68),
    site!(I, "Chicago", "US", 41.88, -87.63),
    site!(I, "Tokyo", "JP", 35.68, 139.69),
    site!(I, "Sydney", "AU", -33.87, 151.21),
    site!(I, "Santiago", "CL", -33.45, -70.67),
    // J — Verisign, broad.
    site!(J, "Ashburn", "US", 39.04, -77.49),
    site!(J, "Seattle", "US", 47.61, -122.33),
    site!(J, "London", "GB", 51.51, -0.13),
    site!(J, "Tokyo", "JP", 35.68, 139.69),
    site!(J, "Santiago", "CL", -33.45, -70.67),
    // K — RIPE NCC, broad.
    site!(K, "Amsterdam", "NL", 52.37, 4.90),
    site!(K, "London", "GB", 51.51, -0.13),
    site!(K, "Frankfurt", "DE", 50.11, 8.68),
    site!(K, "Miami", "US", 25.76, -80.19),
    site!(K, "Tokyo", "JP", 35.68, 139.69),
    site!(K, "Auckland", "NZ", -36.85, 174.76),
    site!(K, "Santiago", "CL", -33.45, -70.67),
    // L — ICANN, very broad; the paper's Chilean probe reaches the
    // L root in Santiago in 5 hops.
    site!(L, "Los Angeles", "US", 34.05, -118.24),
    site!(L, "Ashburn", "US", 39.04, -77.49),
    site!(L, "London", "GB", 51.51, -0.13),
    site!(L, "Singapore", "SG", 1.35, 103.82),
    site!(L, "Sydney", "AU", -33.87, 151.21),
    site!(L, "Santiago", "CL", -33.45, -70.67),
    // M — WIDE: Asia + Europe + US West, no South America or Oceania.
    site!(M, "Tokyo", "JP", 35.68, 139.69),
    site!(M, "Paris", "FR", 48.86, 2.35),
    site!(M, "San Francisco", "US", 37.77, -122.42),
];

/// All instances of one root letter.
pub fn instances_of(root: RootServer) -> impl Iterator<Item = &'static RootInstance> {
    ROOT_INSTANCES.iter().filter(move |i| i.root == root)
}

/// The instance of `root` closest to `from`, by great-circle distance.
pub fn nearest_instance(root: RootServer, from: GeoPoint) -> &'static RootInstance {
    instances_of(root)
        .min_by(|a, b| {
            let da = crate::point::haversine_km(from, a.point).0;
            let db = crate::point::haversine_km(from, b.point).0;
            da.total_cmp(&db)
        })
        // sno-lint: allow(unwrap-in-lib): ROOT_INSTANCES statically covers every root letter (tested below)
        .expect("every root letter has at least one instance")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_letter_deployed() {
        for root in RootServer::ALL {
            assert!(instances_of(root).count() >= 1, "{root} has no instances");
        }
    }

    #[test]
    fn seven_letters_in_santiago() {
        let in_scl = RootServer::ALL
            .iter()
            .filter(|&&r| instances_of(r).any(|i| i.city == "Santiago"))
            .count();
        assert_eq!(in_scl, 7, "paper: 7 of 13 roots present in Chile");
    }

    #[test]
    fn m_root_absent_from_south_america_and_oceania() {
        for i in instances_of(RootServer::M) {
            assert!(
                !matches!(i.country_str, "CL" | "BR" | "AR" | "PE" | "AU" | "NZ"),
                "M root must not be in {}",
                i.country_str
            );
        }
    }

    #[test]
    fn g_and_h_are_us_only() {
        for root in [RootServer::G, RootServer::H] {
            for i in instances_of(root) {
                assert_eq!(i.country_str, "US");
            }
        }
    }

    #[test]
    fn europe_hosts_most_letters() {
        let eu = ["DE", "GB", "NL", "FR", "ES", "SE", "AT", "PL"];
        let in_eu = RootServer::ALL
            .iter()
            .filter(|&&r| instances_of(r).any(|i| eu.contains(&i.country_str)))
            .count();
        assert!(in_eu >= 10, "only {in_eu} letters in Europe");
    }

    #[test]
    fn nearest_instance_prefers_local() {
        let santiago = GeoPoint::new(-33.45, -70.67);
        assert_eq!(nearest_instance(RootServer::L, santiago).city, "Santiago");
        // M root from Santiago: nearest is US West, thousands of km away.
        let m = nearest_instance(RootServer::M, santiago);
        assert_eq!(m.city, "San Francisco");
        let auckland = GeoPoint::new(-36.85, 174.76);
        assert_eq!(nearest_instance(RootServer::K, auckland).city, "Auckland");
    }
}
