//! Starlink point-of-presence sites.
//!
//! Starlink encodes the serving PoP in subscriber reverse DNS as
//! `customer.<code>.pop.starlinkisp.net` (the paper observes
//! `customer.tkyojpn1.pop.starlinkisp.net` for the Manila probe). This
//! module carries the PoP sites relevant to the RIPE Atlas probe set:
//! code, city, country, and coordinates.

use crate::point::GeoPoint;
use sno_types::records::CountryCode;

/// A Starlink PoP site.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PopSite {
    /// The reverse-DNS code, e.g. `"tkyojpn1"`.
    pub code: &'static str,
    /// City name.
    pub city: &'static str,
    /// Country the PoP sits in.
    pub country_str: &'static str,
    /// Location.
    pub point: GeoPoint,
}

impl PopSite {
    /// The PoP's country code.
    pub fn country(&self) -> CountryCode {
        CountryCode::new(self.country_str)
    }

    /// The reverse-DNS name subscribers behind this PoP resolve to.
    pub fn reverse_dns(&self) -> String {
        format!("customer.{}.pop.starlinkisp.net", self.code)
    }
}

/// The PoP sites used by the synthetic Atlas deployment. US codes follow
/// the `citySTx1` convention, others `cityCCC1`; `tkyojpn1` is attested
/// in the paper.
pub const STARLINK_POPS: &[PopSite] = &[
    // United States
    PopSite {
        code: "sttlwax1",
        city: "Seattle",
        country_str: "US",
        point: GeoPoint {
            lat: 47.61,
            lon: -122.33,
        },
    },
    PopSite {
        code: "lsancax1",
        city: "Los Angeles",
        country_str: "US",
        point: GeoPoint {
            lat: 34.05,
            lon: -118.24,
        },
    },
    PopSite {
        code: "dnvrcox1",
        city: "Denver",
        country_str: "US",
        point: GeoPoint {
            lat: 39.74,
            lon: -104.99,
        },
    },
    PopSite {
        code: "dllstxx1",
        city: "Dallas",
        country_str: "US",
        point: GeoPoint {
            lat: 32.78,
            lon: -96.80,
        },
    },
    PopSite {
        code: "chcgilx1",
        city: "Chicago",
        country_str: "US",
        point: GeoPoint {
            lat: 41.88,
            lon: -87.63,
        },
    },
    PopSite {
        code: "atlngax1",
        city: "Atlanta",
        country_str: "US",
        point: GeoPoint {
            lat: 33.75,
            lon: -84.39,
        },
    },
    PopSite {
        code: "nycmnyx1",
        city: "New York",
        country_str: "US",
        point: GeoPoint {
            lat: 40.71,
            lon: -74.01,
        },
    },
    PopSite {
        code: "ashbvax1",
        city: "Ashburn",
        country_str: "US",
        point: GeoPoint {
            lat: 39.04,
            lon: -77.49,
        },
    },
    // Canada
    PopSite {
        code: "trntcan1",
        city: "Toronto",
        country_str: "CA",
        point: GeoPoint {
            lat: 43.65,
            lon: -79.38,
        },
    },
    // Europe
    PopSite {
        code: "frntdeu1",
        city: "Frankfurt",
        country_str: "DE",
        point: GeoPoint {
            lat: 50.11,
            lon: 8.68,
        },
    },
    PopSite {
        code: "lndngbr1",
        city: "London",
        country_str: "GB",
        point: GeoPoint {
            lat: 51.51,
            lon: -0.13,
        },
    },
    PopSite {
        code: "mdrdesp1",
        city: "Madrid",
        country_str: "ES",
        point: GeoPoint {
            lat: 40.42,
            lon: -3.70,
        },
    },
    PopSite {
        code: "milaita1",
        city: "Milan",
        country_str: "IT",
        point: GeoPoint {
            lat: 45.46,
            lon: 9.19,
        },
    },
    PopSite {
        code: "wrswpol1",
        city: "Warsaw",
        country_str: "PL",
        point: GeoPoint {
            lat: 52.23,
            lon: 21.01,
        },
    },
    // Oceania
    PopSite {
        code: "sydnaus1",
        city: "Sydney",
        country_str: "AU",
        point: GeoPoint {
            lat: -33.87,
            lon: 151.21,
        },
    },
    PopSite {
        code: "aklnnzl1",
        city: "Auckland",
        country_str: "NZ",
        point: GeoPoint {
            lat: -36.85,
            lon: 174.76,
        },
    },
    // Asia
    PopSite {
        code: "tkyojpn1",
        city: "Tokyo",
        country_str: "JP",
        point: GeoPoint {
            lat: 35.68,
            lon: 139.69,
        },
    },
    // South America
    PopSite {
        code: "sntgchl1",
        city: "Santiago",
        country_str: "CL",
        point: GeoPoint {
            lat: -33.45,
            lon: -70.67,
        },
    },
];

/// Look up a PoP by reverse-DNS code.
pub fn pop_by_code(code: &str) -> Option<&'static PopSite> {
    STARLINK_POPS.iter().find(|p| p.code == code)
}

/// Parse a subscriber reverse-DNS name into its PoP, if it matches the
/// `customer.<code>.pop.starlinkisp.net` pattern and the code is known.
pub fn pop_from_reverse_dns(name: &str) -> Option<&'static PopSite> {
    let rest = name.strip_prefix("customer.")?;
    let code = rest.strip_suffix(".pop.starlinkisp.net")?;
    pop_by_code(code)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::haversine_km;

    #[test]
    fn codes_unique() {
        let mut codes: Vec<_> = STARLINK_POPS.iter().map(|p| p.code).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), STARLINK_POPS.len());
    }

    #[test]
    fn tokyo_pop_attested_name() {
        let tokyo = pop_by_code("tkyojpn1").unwrap();
        assert_eq!(tokyo.reverse_dns(), "customer.tkyojpn1.pop.starlinkisp.net");
        assert_eq!(tokyo.country(), CountryCode::new("JP"));
    }

    #[test]
    fn reverse_dns_round_trip() {
        for pop in STARLINK_POPS {
            let parsed = pop_from_reverse_dns(&pop.reverse_dns()).unwrap();
            assert_eq!(parsed.code, pop.code);
        }
    }

    #[test]
    fn reverse_dns_rejects_foreign_names() {
        assert!(pop_from_reverse_dns("customer.nowhere1.pop.starlinkisp.net").is_none());
        assert!(pop_from_reverse_dns("host.example.com").is_none());
        assert!(pop_from_reverse_dns("customer.tkyojpn1.pop.example.net").is_none());
    }

    #[test]
    fn seattle_to_anchorage_distance_plausible() {
        // The Alaska probe connects to Seattle ~2,300 km away great-circle
        // (paper: ~2,697 km network path).
        let seattle = pop_by_code("sttlwax1").unwrap();
        let anchorage = GeoPoint::new(61.22, -149.90);
        let d = haversine_km(seattle.point, anchorage).0;
        assert!((2_200.0..2_500.0).contains(&d), "got {d}");
    }

    #[test]
    fn sydney_auckland_both_present() {
        // The NZ PoP-change event needs both endpoints.
        assert!(pop_by_code("sydnaus1").is_some());
        assert!(pop_by_code("aklnnzl1").is_some());
        assert!(pop_by_code("frntdeu1").is_some());
        assert!(pop_by_code("lndngbr1").is_some());
        assert!(pop_by_code("lsancax1").is_some());
        assert!(pop_by_code("dnvrcox1").is_some());
    }
}
