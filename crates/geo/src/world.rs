//! Countries, continents, and US states.

use sno_types::records::CountryCode;
use std::fmt;

use crate::point::GeoPoint;

/// Continents, for the per-continent groupings of Figures 6a and 9.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Continent {
    NorthAmerica,
    SouthAmerica,
    Europe,
    Asia,
    Oceania,
    Africa,
}

impl fmt::Display for Continent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Continent::NorthAmerica => "North America",
            Continent::SouthAmerica => "South America",
            Continent::Europe => "Europe",
            Continent::Asia => "Asia",
            Continent::Oceania => "Oceania",
            Continent::Africa => "Africa",
        })
    }
}

/// Country → continent table covering every country that appears in the
/// datasets (probe locations, PoP countries, BGP peer jurisdictions).
const COUNTRY_CONTINENTS: &[(&str, Continent)] = &[
    // RIPE Atlas probe countries (Table 2).
    ("AT", Continent::Europe),
    ("AU", Continent::Oceania),
    ("BE", Continent::Europe),
    ("CA", Continent::NorthAmerica),
    ("CL", Continent::SouthAmerica),
    ("DE", Continent::Europe),
    ("ES", Continent::Europe),
    ("FR", Continent::Europe),
    ("GB", Continent::Europe),
    ("IT", Continent::Europe),
    ("NL", Continent::Europe),
    ("NZ", Continent::Oceania),
    ("PH", Continent::Asia),
    ("PL", Continent::Europe),
    ("US", Continent::NorthAmerica),
    // Additional PoP / peering jurisdictions.
    ("JP", Continent::Asia),
    ("SG", Continent::Asia),
    ("IN", Continent::Asia),
    ("HK", Continent::Asia),
    ("TH", Continent::Asia),
    ("ID", Continent::Asia),
    ("PG", Continent::Oceania),
    ("FJ", Continent::Oceania),
    ("MX", Continent::NorthAmerica),
    ("DO", Continent::NorthAmerica),
    ("PR", Continent::NorthAmerica),
    ("BR", Continent::SouthAmerica),
    ("PE", Continent::SouthAmerica),
    ("CO", Continent::SouthAmerica),
    ("AR", Continent::SouthAmerica),
    ("GR", Continent::Europe),
    ("CY", Continent::Europe),
    ("NO", Continent::Europe),
    ("SE", Continent::Europe),
    ("CH", Continent::Europe),
    ("IE", Continent::Europe),
    ("PT", Continent::Europe),
    ("CZ", Continent::Europe),
    ("DK", Continent::Europe),
    ("LU", Continent::Europe),
    ("ZA", Continent::Africa),
    ("NG", Continent::Africa),
    ("KE", Continent::Africa),
    ("EG", Continent::Africa),
    ("AE", Continent::Asia),
    ("SA", Continent::Asia),
    ("IL", Continent::Asia),
    ("TR", Continent::Asia),
    ("KR", Continent::Asia),
    ("MY", Continent::Asia),
    ("VN", Continent::Asia),
    ("TW", Continent::Asia),
    ("RU", Continent::Europe),
    ("UA", Continent::Europe),
];

/// The continent a country belongs to, if known to the gazetteer.
pub fn continent_of(country: CountryCode) -> Option<Continent> {
    COUNTRY_CONTINENTS
        .iter()
        .find(|&&(code, _)| CountryCode::new(code) == country)
        .map(|&(_, cont)| cont)
}

/// The census-style regional grouping of Figure 8a.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum UsRegion {
    Northeast,
    Southeast,
    Central,
    EastNorthCentral,
    South,
    Southwest,
    West,
    Northwest,
    Alaska,
}

impl UsRegion {
    /// All regions in the paper's left-to-right plotting order.
    pub const ALL: [UsRegion; 9] = [
        UsRegion::Northeast,
        UsRegion::Southeast,
        UsRegion::Central,
        UsRegion::EastNorthCentral,
        UsRegion::South,
        UsRegion::Southwest,
        UsRegion::West,
        UsRegion::Northwest,
        UsRegion::Alaska,
    ];
}

impl fmt::Display for UsRegion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            UsRegion::Northeast => "Northeast",
            UsRegion::Southeast => "Southeast",
            UsRegion::Central => "Central",
            UsRegion::EastNorthCentral => "East North Central",
            UsRegion::South => "South",
            UsRegion::Southwest => "Southwest",
            UsRegion::West => "West",
            UsRegion::Northwest => "Northwest",
            UsRegion::Alaska => "Alaska",
        })
    }
}

/// A US state hosting RIPE Atlas probes, with a representative
/// population-weighted coordinate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UsState {
    /// Two-letter postal code.
    pub code: &'static str,
    /// Full name.
    pub name: &'static str,
    /// The Figure 8a regional grouping.
    pub region: UsRegion,
    /// Representative location.
    pub point: GeoPoint,
}

/// The states that host probes in the synthetic Atlas deployment (a
/// superset of those called out in the paper's Figure 8 narrative).
pub const US_STATES: &[UsState] = &[
    UsState {
        code: "NY",
        name: "New York",
        region: UsRegion::Northeast,
        point: GeoPoint {
            lat: 42.9,
            lon: -75.5,
        },
    },
    UsState {
        code: "PA",
        name: "Pennsylvania",
        region: UsRegion::Northeast,
        point: GeoPoint {
            lat: 40.9,
            lon: -77.8,
        },
    },
    UsState {
        code: "MA",
        name: "Massachusetts",
        region: UsRegion::Northeast,
        point: GeoPoint {
            lat: 42.3,
            lon: -71.8,
        },
    },
    UsState {
        code: "VA",
        name: "Virginia",
        region: UsRegion::Southeast,
        point: GeoPoint {
            lat: 37.5,
            lon: -78.9,
        },
    },
    UsState {
        code: "FL",
        name: "Florida",
        region: UsRegion::Southeast,
        point: GeoPoint {
            lat: 28.6,
            lon: -82.4,
        },
    },
    UsState {
        code: "GA",
        name: "Georgia",
        region: UsRegion::Southeast,
        point: GeoPoint {
            lat: 32.6,
            lon: -83.4,
        },
    },
    UsState {
        code: "MO",
        name: "Missouri",
        region: UsRegion::Central,
        point: GeoPoint {
            lat: 38.4,
            lon: -92.5,
        },
    },
    UsState {
        code: "KS",
        name: "Kansas",
        region: UsRegion::Central,
        point: GeoPoint {
            lat: 38.5,
            lon: -98.4,
        },
    },
    UsState {
        code: "MN",
        name: "Minnesota",
        region: UsRegion::Central,
        point: GeoPoint {
            lat: 46.3,
            lon: -94.3,
        },
    },
    UsState {
        code: "IL",
        name: "Illinois",
        region: UsRegion::EastNorthCentral,
        point: GeoPoint {
            lat: 40.0,
            lon: -89.2,
        },
    },
    UsState {
        code: "OH",
        name: "Ohio",
        region: UsRegion::EastNorthCentral,
        point: GeoPoint {
            lat: 40.3,
            lon: -82.8,
        },
    },
    UsState {
        code: "MI",
        name: "Michigan",
        region: UsRegion::EastNorthCentral,
        point: GeoPoint {
            lat: 44.3,
            lon: -85.4,
        },
    },
    UsState {
        code: "WI",
        name: "Wisconsin",
        region: UsRegion::EastNorthCentral,
        point: GeoPoint {
            lat: 44.6,
            lon: -89.9,
        },
    },
    UsState {
        code: "TX",
        name: "Texas",
        region: UsRegion::South,
        point: GeoPoint {
            lat: 31.5,
            lon: -98.5,
        },
    },
    UsState {
        code: "OK",
        name: "Oklahoma",
        region: UsRegion::South,
        point: GeoPoint {
            lat: 35.6,
            lon: -97.5,
        },
    },
    UsState {
        code: "AZ",
        name: "Arizona",
        region: UsRegion::Southwest,
        point: GeoPoint {
            lat: 34.3,
            lon: -111.7,
        },
    },
    UsState {
        code: "NM",
        name: "New Mexico",
        region: UsRegion::Southwest,
        point: GeoPoint {
            lat: 34.4,
            lon: -106.1,
        },
    },
    UsState {
        code: "NV",
        name: "Nevada",
        region: UsRegion::Southwest,
        point: GeoPoint {
            lat: 39.3,
            lon: -116.6,
        },
    },
    UsState {
        code: "CA",
        name: "California",
        region: UsRegion::West,
        point: GeoPoint {
            lat: 37.2,
            lon: -119.3,
        },
    },
    UsState {
        code: "CO",
        name: "Colorado",
        region: UsRegion::West,
        point: GeoPoint {
            lat: 39.0,
            lon: -105.5,
        },
    },
    UsState {
        code: "UT",
        name: "Utah",
        region: UsRegion::West,
        point: GeoPoint {
            lat: 39.3,
            lon: -111.7,
        },
    },
    UsState {
        code: "OR",
        name: "Oregon",
        region: UsRegion::Northwest,
        point: GeoPoint {
            lat: 44.0,
            lon: -120.5,
        },
    },
    UsState {
        code: "WA",
        name: "Washington",
        region: UsRegion::Northwest,
        point: GeoPoint {
            lat: 47.4,
            lon: -120.5,
        },
    },
    UsState {
        code: "ID",
        name: "Idaho",
        region: UsRegion::Northwest,
        point: GeoPoint {
            lat: 44.4,
            lon: -114.6,
        },
    },
    UsState {
        code: "MT",
        name: "Montana",
        region: UsRegion::Northwest,
        point: GeoPoint {
            lat: 47.0,
            lon: -109.6,
        },
    },
    UsState {
        code: "AK",
        name: "Alaska",
        region: UsRegion::Alaska,
        point: GeoPoint {
            lat: 61.2,
            lon: -149.9,
        },
    },
];

/// Look up a US state by postal code.
pub fn us_state(code: &str) -> Option<&'static UsState> {
    US_STATES.iter().find(|s| s.code == code)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_countries_all_mapped() {
        for code in [
            "AT", "AU", "BE", "CA", "CL", "DE", "ES", "FR", "GB", "IT", "NL", "NZ", "PH", "PL",
            "US",
        ] {
            assert!(
                continent_of(CountryCode::new(code)).is_some(),
                "unmapped probe country {code}"
            );
        }
    }

    #[test]
    fn continent_assignments_spot_checks() {
        assert_eq!(
            continent_of(CountryCode::new("NZ")),
            Some(Continent::Oceania)
        );
        assert_eq!(
            continent_of(CountryCode::new("CL")),
            Some(Continent::SouthAmerica)
        );
        assert_eq!(continent_of(CountryCode::new("PH")), Some(Continent::Asia));
        assert_eq!(
            continent_of(CountryCode::new("DE")),
            Some(Continent::Europe)
        );
        assert_eq!(continent_of(CountryCode::new("ZZ")), None);
    }

    #[test]
    fn state_lookup_and_regions() {
        assert_eq!(us_state("AK").unwrap().region, UsRegion::Alaska);
        assert_eq!(us_state("OR").unwrap().region, UsRegion::Northwest);
        assert_eq!(us_state("AZ").unwrap().region, UsRegion::Southwest);
        assert_eq!(us_state("NY").unwrap().region, UsRegion::Northeast);
        assert!(us_state("XX").is_none());
    }

    #[test]
    fn state_codes_unique() {
        let mut codes: Vec<_> = US_STATES.iter().map(|s| s.code).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), US_STATES.len());
    }

    #[test]
    fn every_region_has_a_state() {
        for region in UsRegion::ALL {
            assert!(
                US_STATES.iter().any(|s| s.region == region),
                "no state in {region}"
            );
        }
    }
}
