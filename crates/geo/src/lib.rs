//! Geography: geodesy plus the static gazetteer the analyses need.
//!
//! * [`point`] — latitude/longitude points and great-circle distance;
//! * [`world`] — countries, continents, and the US states (with the
//!   census-style regional grouping Figure 8a uses);
//! * [`pops`] — the Starlink point-of-presence sites observable in
//!   subscriber reverse DNS (`customer.<code>.pop.starlinkisp.net`);
//! * [`roots`] — anycast instance sites of the 13 DNS root servers, the
//!   targets of RIPE Atlas built-in traceroutes.

pub mod point;
pub mod pops;
pub mod roots;
pub mod world;

pub use point::{haversine_km, GeoPoint, EARTH_RADIUS_KM};
pub use pops::{pop_by_code, PopSite, STARLINK_POPS};
pub use roots::{instances_of, RootInstance};
pub use world::{continent_of, Continent, UsRegion, UsState};
