//! Latitude/longitude points and great-circle distance.

use sno_types::Kilometers;

/// Mean Earth radius, kilometres.
pub const EARTH_RADIUS_KM: f64 = 6_371.0;

/// A point on the Earth's surface.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeoPoint {
    /// Latitude in degrees, positive north.
    pub lat: f64,
    /// Longitude in degrees, positive east.
    pub lon: f64,
}

impl GeoPoint {
    /// Construct, validating ranges.
    ///
    /// # Panics
    /// Panics if latitude is outside `[-90, 90]` or longitude outside
    /// `[-180, 180]`.
    pub fn new(lat: f64, lon: f64) -> GeoPoint {
        assert!(
            (-90.0..=90.0).contains(&lat),
            "latitude out of range: {lat}"
        );
        assert!(
            (-180.0..=180.0).contains(&lon),
            "longitude out of range: {lon}"
        );
        GeoPoint { lat, lon }
    }

    /// Great-circle distance to `other`.
    pub fn distance_to(self, other: GeoPoint) -> Kilometers {
        haversine_km(self, other)
    }
}

/// Great-circle (haversine) distance between two points.
pub fn haversine_km(a: GeoPoint, b: GeoPoint) -> Kilometers {
    let (lat1, lon1) = (a.lat.to_radians(), a.lon.to_radians());
    let (lat2, lon2) = (b.lat.to_radians(), b.lon.to_radians());
    let dlat = lat2 - lat1;
    let dlon = lon2 - lon1;
    let h = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
    Kilometers(2.0 * EARTH_RADIUS_KM * h.sqrt().asin())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_distance() {
        let p = GeoPoint::new(47.6, -122.3);
        assert!(haversine_km(p, p).0 < 1e-9);
    }

    #[test]
    fn known_city_pairs() {
        // Manila ↔ Tokyo ≈ 2,997 km (the Philippines PoP detour).
        let manila = GeoPoint::new(14.60, 120.98);
        let tokyo = GeoPoint::new(35.68, 139.69);
        let d = haversine_km(manila, tokyo).0;
        assert!((d - 2_997.0).abs() < 60.0, "got {d}");

        // Anchorage ↔ Seattle ≈ 2,330 km great-circle (the paper quotes
        // 2,697 km surface path; great-circle is shorter).
        let anchorage = GeoPoint::new(61.22, -149.90);
        let seattle = GeoPoint::new(47.61, -122.33);
        let d = haversine_km(anchorage, seattle).0;
        assert!((d - 2_330.0).abs() < 100.0, "got {d}");
    }

    #[test]
    fn symmetric() {
        let a = GeoPoint::new(51.5, -0.12);
        let b = GeoPoint::new(-36.85, 174.76);
        assert!((haversine_km(a, b).0 - haversine_km(b, a).0).abs() < 1e-9);
    }

    #[test]
    fn antipodal_is_half_circumference() {
        let a = GeoPoint::new(0.0, 0.0);
        let b = GeoPoint::new(0.0, 180.0);
        let d = haversine_km(a, b).0;
        let half = std::f64::consts::PI * EARTH_RADIUS_KM;
        assert!((d - half).abs() < 1.0, "got {d}");
    }

    #[test]
    #[should_panic(expected = "latitude out of range")]
    fn invalid_latitude() {
        let _ = GeoPoint::new(91.0, 0.0);
    }
}
