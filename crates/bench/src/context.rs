//! Shared, lazily-built corpora and pipeline state for the experiments.

use sno_core::pipeline::{Pipeline, PipelineReport};
use sno_synth::{AtlasCorpus, AtlasGenerator, MlabCorpus, MlabGenerator, SynthConfig};
use std::sync::OnceLock;

/// Everything the experiments share: the synthetic corpora and the
/// identification pipeline's output, built once on first use.
pub struct ReproContext {
    config: SynthConfig,
    mlab: OnceLock<MlabCorpus>,
    report: OnceLock<PipelineReport>,
    atlas: OnceLock<AtlasCorpus>,
}

impl ReproContext {
    /// Context over the default corpus (seed `0x5A7E1117`, 1/1000 of the
    /// paper's M-Lab volume).
    pub fn new() -> ReproContext {
        ReproContext::with_config(SynthConfig::default_corpus())
    }

    /// Context with an explicit configuration.
    pub fn with_config(config: SynthConfig) -> ReproContext {
        ReproContext {
            config,
            mlab: OnceLock::new(),
            report: OnceLock::new(),
            atlas: OnceLock::new(),
        }
    }

    /// The generator configuration in use.
    pub fn config(&self) -> &SynthConfig {
        &self.config
    }

    /// The NDT corpus (generated on first call).
    pub fn mlab(&self) -> &MlabCorpus {
        self.mlab
            .get_or_init(|| MlabGenerator::new(self.config.clone()).generate())
    }

    /// The pipeline report over the NDT corpus.
    pub fn report(&self) -> &PipelineReport {
        self.report
            .get_or_init(|| Pipeline::with_threads(self.config.threads).run(&self.mlab().records))
    }

    /// The RIPE Atlas corpus.
    pub fn atlas(&self) -> &AtlasCorpus {
        self.atlas
            .get_or_init(|| AtlasGenerator::new(self.config.clone()).generate())
    }

    /// Probe metadata in the shape the atlas analyses take.
    pub fn probe_infos(&self) -> Vec<sno_atlas::ProbeInfo> {
        self.atlas()
            .probes
            .iter()
            .map(|p| sno_atlas::ProbeInfo {
                id: p.id,
                country: p.country,
                state: p.state,
            })
            .collect()
    }
}

impl Default for ReproContext {
    fn default() -> Self {
        ReproContext::new()
    }
}
