//! Shared, lazily-built corpora and pipeline state for the experiments.

use sno_core::pipeline::{Pipeline, PipelineReport};
use sno_core::stream::{StreamOptions, StreamedReport};
use sno_synth::{AtlasCorpus, AtlasGenerator, MlabCorpus, MlabGenerator, SynthConfig};
use sno_types::{Operator, RecordBatch};
use std::sync::OnceLock;

/// The chunk length the streaming paths use when the caller gave none.
pub const DEFAULT_CHUNK_LEN: usize = 4096;

/// The five operators Figure 4a tracks, in render order.
pub const FIG4A_OPS: [Operator; 5] = [
    Operator::Starlink,
    Operator::Viasat,
    Operator::O3b,
    Operator::Hughes,
    Operator::Oneweb,
];

/// The Figure 4a corpus (columnar) and its per-record acceptance.
///
/// The figure regenerates the five operators of interest over a
/// one-year window with a raised session floor, so its corpus differs
/// from the shared [`ReproContext::mlab`] one — cached here the same
/// way, built through the chunked generator and the columnar pipeline.
pub struct Fig4aState {
    /// The regenerated corpus as a struct-of-arrays batch.
    pub batch: RecordBatch,
    /// Per-record acceptance from the columnar pipeline run.
    pub accepted: Vec<Option<Operator>>,
}

/// The Figure 4a generator configuration derived from a base config:
/// daily medians need daily volume, so the window narrows to the
/// figure's year and the session floor rises (the paper has thousands
/// of tests per operator-day).
pub fn fig4a_config(base: &SynthConfig) -> SynthConfig {
    SynthConfig {
        mlab_start: sno_types::Date::new(2022, 4, 1),
        mlab_end: sno_types::Date::new(2023, 4, 1),
        // Keep the fast-test context cheap; the real repro corpus gets
        // ~11 sessions per operator-day.
        min_sessions: if base.scale < 5e-4 { 1_500 } else { 4_000 },
        ..base.clone()
    }
}

/// Everything the experiments share: the synthetic corpora and the
/// identification pipeline's output, built once on first use.
///
/// With a chunk length set ([`ReproContext::with_chunk`]), the
/// experiments that can run over chunked streams do so — the NDT and
/// traceroute corpora are never materialized for those paths. The
/// materialized corpora stay available (and lazy) for the figure paths
/// that still need record slices.
pub struct ReproContext {
    config: SynthConfig,
    chunk: Option<usize>,
    progress_every: usize,
    mlab: OnceLock<MlabCorpus>,
    report: OnceLock<PipelineReport>,
    streamed: OnceLock<StreamedReport>,
    atlas: OnceLock<AtlasCorpus>,
    fig4a: OnceLock<Fig4aState>,
}

impl ReproContext {
    /// Context over the default corpus (seed `0x5A7E1117`, 1/1000 of the
    /// paper's M-Lab volume).
    pub fn new() -> ReproContext {
        ReproContext::with_config(SynthConfig::default_corpus())
    }

    /// Context with an explicit configuration.
    pub fn with_config(config: SynthConfig) -> ReproContext {
        ReproContext {
            config,
            chunk: None,
            progress_every: 0,
            mlab: OnceLock::new(),
            report: OnceLock::new(),
            streamed: OnceLock::new(),
            atlas: OnceLock::new(),
            fig4a: OnceLock::new(),
        }
    }

    /// Context that routes the streamable experiments through chunked
    /// generation with `chunk` records per delivered chunk.
    pub fn with_chunk(config: SynthConfig, chunk: usize) -> ReproContext {
        ReproContext {
            chunk: Some(chunk.max(1)),
            ..ReproContext::with_config(config)
        }
    }

    /// Emit a stderr heartbeat every `every` records inside the streamed
    /// pipeline (0 = silent). Record counts, never wall-clock: paper-scale
    /// runs take minutes and CI logs need liveness, but output stays
    /// deterministic.
    pub fn with_progress(mut self, every: usize) -> ReproContext {
        self.progress_every = every;
        self
    }

    /// The generator configuration in use.
    pub fn config(&self) -> &SynthConfig {
        &self.config
    }

    /// The chunk length, when this context streams.
    pub fn chunk(&self) -> Option<usize> {
        self.chunk
    }

    /// The chunk length the streaming paths should use (set or default).
    pub fn chunk_len(&self) -> usize {
        self.chunk.unwrap_or(DEFAULT_CHUNK_LEN)
    }

    /// The worker-thread setting every pipeline run should honour
    /// (`0` = all cores; output is identical at every setting).
    pub fn threads(&self) -> usize {
        self.config.threads
    }

    /// The NDT corpus (generated on first call).
    pub fn mlab(&self) -> &MlabCorpus {
        self.mlab
            .get_or_init(|| MlabGenerator::new(self.config.clone()).generate())
    }

    /// The pipeline report over the NDT corpus.
    pub fn report(&self) -> &PipelineReport {
        self.report
            .get_or_init(|| Pipeline::with_threads(self.config.threads).run(&self.mlab().records))
    }

    /// The streamed pipeline report: chunked generation, per-chunk
    /// statistics, and a bitmap accept pass — the NDT corpus is never
    /// materialized. Byte-identical catalog/thresholds to
    /// [`ReproContext::report`].
    pub fn streamed(&self) -> &StreamedReport {
        self.streamed.get_or_init(|| {
            let generator = MlabGenerator::new(self.config.clone());
            let chunk_len = self.chunk_len();
            Pipeline::with_threads(self.config.threads).run_streamed(
                || generator.generate_chunks(chunk_len),
                // No encoded replay here: this path backs the
                // constant-memory CI gate, so pass 2 regenerates.
                StreamOptions {
                    operator_latencies: true,
                    progress_every: self.progress_every,
                    ..StreamOptions::default()
                },
            )
        })
    }

    /// The Figure 4a corpus and acceptance (generated and identified on
    /// first call): five operators over the figure's one-year window,
    /// streamed through the chunked generator into a columnar batch and
    /// run through the columnar pipeline at this context's thread and
    /// chunk settings.
    pub fn fig4a(&self) -> &Fig4aState {
        self.fig4a.get_or_init(|| {
            let generator = MlabGenerator::new(fig4a_config(self.config()));
            let batch = RecordBatch::from_chunks(
                generator.generate_chunks_for(&FIG4A_OPS, self.chunk_len()),
            );
            let report = Pipeline::with_threads(self.threads()).run_batch(&batch);
            Fig4aState {
                batch,
                accepted: report.accepted,
            }
        })
    }

    /// The RIPE Atlas corpus.
    pub fn atlas(&self) -> &AtlasCorpus {
        self.atlas
            .get_or_init(|| AtlasGenerator::new(self.config.clone()).generate())
    }

    /// Probe metadata in the shape the atlas analyses take.
    pub fn probe_infos(&self) -> Vec<sno_atlas::ProbeInfo> {
        self.atlas()
            .probes
            .iter()
            .map(|p| sno_atlas::ProbeInfo {
                id: p.id,
                country: p.country,
                state: p.state,
            })
            .collect()
    }
}

impl Default for ReproContext {
    fn default() -> Self {
        ReproContext::new()
    }
}
