//! Shared, lazily-built corpora and pipeline state for the experiments.

use sno_core::pipeline::{Pipeline, PipelineReport};
use sno_core::stream::{StreamOptions, StreamedReport};
use sno_synth::{AtlasCorpus, AtlasGenerator, MlabCorpus, MlabGenerator, SynthConfig};
use std::sync::OnceLock;

/// The chunk length the streaming paths use when the caller gave none.
pub const DEFAULT_CHUNK_LEN: usize = 4096;

/// Everything the experiments share: the synthetic corpora and the
/// identification pipeline's output, built once on first use.
///
/// With a chunk length set ([`ReproContext::with_chunk`]), the
/// experiments that can run over chunked streams do so — the NDT and
/// traceroute corpora are never materialized for those paths. The
/// materialized corpora stay available (and lazy) for the figure paths
/// that still need record slices.
pub struct ReproContext {
    config: SynthConfig,
    chunk: Option<usize>,
    mlab: OnceLock<MlabCorpus>,
    report: OnceLock<PipelineReport>,
    streamed: OnceLock<StreamedReport>,
    atlas: OnceLock<AtlasCorpus>,
}

impl ReproContext {
    /// Context over the default corpus (seed `0x5A7E1117`, 1/1000 of the
    /// paper's M-Lab volume).
    pub fn new() -> ReproContext {
        ReproContext::with_config(SynthConfig::default_corpus())
    }

    /// Context with an explicit configuration.
    pub fn with_config(config: SynthConfig) -> ReproContext {
        ReproContext {
            config,
            chunk: None,
            mlab: OnceLock::new(),
            report: OnceLock::new(),
            streamed: OnceLock::new(),
            atlas: OnceLock::new(),
        }
    }

    /// Context that routes the streamable experiments through chunked
    /// generation with `chunk` records per delivered chunk.
    pub fn with_chunk(config: SynthConfig, chunk: usize) -> ReproContext {
        ReproContext {
            chunk: Some(chunk.max(1)),
            ..ReproContext::with_config(config)
        }
    }

    /// The generator configuration in use.
    pub fn config(&self) -> &SynthConfig {
        &self.config
    }

    /// The chunk length, when this context streams.
    pub fn chunk(&self) -> Option<usize> {
        self.chunk
    }

    /// The chunk length the streaming paths should use (set or default).
    pub fn chunk_len(&self) -> usize {
        self.chunk.unwrap_or(DEFAULT_CHUNK_LEN)
    }

    /// The NDT corpus (generated on first call).
    pub fn mlab(&self) -> &MlabCorpus {
        self.mlab
            .get_or_init(|| MlabGenerator::new(self.config.clone()).generate())
    }

    /// The pipeline report over the NDT corpus.
    pub fn report(&self) -> &PipelineReport {
        self.report
            .get_or_init(|| Pipeline::with_threads(self.config.threads).run(&self.mlab().records))
    }

    /// The streamed pipeline report: chunked generation, per-chunk
    /// statistics, and a bitmap accept pass — the NDT corpus is never
    /// materialized. Byte-identical catalog/thresholds to
    /// [`ReproContext::report`].
    pub fn streamed(&self) -> &StreamedReport {
        self.streamed.get_or_init(|| {
            let generator = MlabGenerator::new(self.config.clone());
            let chunk_len = self.chunk_len();
            Pipeline::with_threads(self.config.threads).run_streamed(
                || generator.generate_chunks(chunk_len),
                StreamOptions {
                    dense_acceptance: false,
                    operator_latencies: true,
                },
            )
        })
    }

    /// The RIPE Atlas corpus.
    pub fn atlas(&self) -> &AtlasCorpus {
        self.atlas
            .get_or_init(|| AtlasGenerator::new(self.config.clone()).generate())
    }

    /// Probe metadata in the shape the atlas analyses take.
    pub fn probe_infos(&self) -> Vec<sno_atlas::ProbeInfo> {
        self.atlas()
            .probes
            .iter()
            .map(|p| sno_atlas::ProbeInfo {
                id: p.id,
                country: p.country,
                state: p.state,
            })
            .collect()
    }
}

impl Default for ReproContext {
    fn default() -> Self {
        ReproContext::new()
    }
}
