//! Process peak-memory introspection for the bench harness.

/// Peak resident set size of this process in MiB, read from the
/// `VmHWM:` line of `/proc/self/status`. `None` when the file is
/// missing or unparsable (non-Linux platforms) — callers simply skip
/// the memory bench entries then.
///
/// VmHWM is monotone over the process lifetime, so phase-by-phase
/// numbers must be sampled lowest-footprint-first.
pub fn peak_rss_mb() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find_map(|l| l.strip_prefix("VmHWM:"))?;
    let kb: f64 = line.trim().trim_end_matches("kB").trim().parse().ok()?;
    Some(kb / 1024.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_rss_is_positive_when_available() {
        if let Some(mb) = peak_rss_mb() {
            assert!(mb > 0.0, "VmHWM {mb} MiB");
            // A test binary plausibly sits between 1 MiB and 100 GiB.
            assert!(mb < 100.0 * 1024.0, "VmHWM {mb} MiB");
        }
    }

    #[test]
    fn peak_rss_never_shrinks() {
        let Some(before) = peak_rss_mb() else { return };
        let sink: Vec<u64> = (0..1_000_000).collect();
        std::hint::black_box(&sink);
        let after = peak_rss_mb().unwrap_or(before);
        assert!(after >= before, "{after} < {before}");
    }
}
