//! One reproduction function per table/figure of the paper.
//!
//! Every function renders the same rows/series the paper reports, with
//! the paper's published values inline for comparison. Absolute numbers
//! come from a simulator, so the *shape* — who wins, by what factor,
//! where crossovers fall — is the comparison target (see
//! EXPERIMENTS.md).

use crate::context::ReproContext;
use sno_core::analysis;
use sno_core::validate::AsnVerdict;
use sno_types::chunk::RecordChunks as _;
use sno_types::records::CountryCode;
use sno_types::{Asn, Operator, OrbitClass, Prefix24, Rng};
use std::fmt::Write as _;

/// An experiment runner.
pub type Runner = fn(&ReproContext) -> String;

/// The experiment registry: `(id, what it reproduces, runner)`.
pub const EXPERIMENTS: &[(&str, &str, Runner)] = &[
    (
        "table1",
        "Table 1: identified SNOs and test volumes",
        table1,
    ),
    ("table2", "Table 2: RIPE Atlas dataset summary", table2),
    ("table3", "Table 3: curated ASN-to-SNO mapping", table3),
    ("fig1", "Figure 1: pipeline stage census", fig1),
    ("fig2", "Figure 2: per-ASN latency KDE profiles", fig2),
    ("fig3a", "Figure 3a: strict prefix-filter outcome", fig3a),
    ("fig3b", "Figure 3b: Viasat prefix dissection", fig3b),
    ("fig3c", "Figure 3c: access latency per SNO", fig3c),
    ("fig4a", "Figure 4a: daily latency stability", fig4a),
    ("fig4b", "Figure 4b: jitter variation per orbit", fig4b),
    ("fig4c", "Figure 4c: retransmissions and PEPs", fig4c),
    ("fig5", "Figure 5: BGP peering views", fig5),
    ("fig6a", "Figure 6a: probe-to-PoP RTT per country", fig6a),
    ("fig6b", "Figure 6b: RTT to root DNS per country", fig6b),
    ("fig6c", "Figure 6c: hops to root DNS per country", fig6c),
    ("fig7", "Figure 7: probe-to-PoP link history", fig7),
    ("fig8a", "Figure 8a: probe-to-PoP RTT per US state", fig8a),
    ("fig8b", "Figure 8b: PoP-change detection", fig8b),
    ("fig9", "Figure 9: fast.com per SNO and continent", fig9),
    ("fig10a", "Figure 10a: CDN fetch times", fig10a),
    ("fig10b", "Figure 10b: H1 vs H2 page loads", fig10b),
    ("fig10c", "Figure 10c: DNS lookup times", fig10c),
    ("fig11", "Figure 11: YouTube adaptive streaming", fig11),
    ("fig12", "Figure 12: more BGP peering views", fig12),
    ("fig13", "Figure 13: peering evolution 2021-2023", fig13),
    ("fig14", "Figure 14: Prolific census scores", fig14),
    (
        "paths",
        "Path model: per-SNO link ground truth feeding Fig. 3c",
        paths,
    ),
    (
        "coverage",
        "Section 4: coverage-inference validation",
        coverage,
    ),
    (
        "ablation-filter",
        "Ablation: strict-only vs relaxed filtering, scored on ground truth",
        ablation_filter,
    ),
];

/// Run one experiment by id. `None` if the id is unknown.
pub fn run_experiment(ctx: &ReproContext, id: &str) -> Option<String> {
    EXPERIMENTS
        .iter()
        .find(|(eid, ..)| *eid == id)
        .map(|(_, _, f)| f(ctx))
}

/// Table 1 rendering shared by the materialized and streamed paths.
fn catalog_table(catalog: &[(Operator, u64)], scale: f64) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<12} {:>10} {:>12}   (scale {:.0e}, floors applied)",
        "SNO", "measured", "paper(full)", scale
    );
    for (op, n) in catalog {
        let paper = sno_registry::profile::profile_of(*op).mlab_tests;
        let _ = writeln!(out, "{:<12} {:>10} {:>12}", op.name(), n, paper);
    }
    let _ = writeln!(out, "SNOs identified: {} (paper: 18)", catalog.len());
    out
}

/// Render a [`sno_core::StreamedReport`] the way `table1` + `fig1` do.
///
/// Shared by the `repro --online` verification path, which renders the
/// incremental snapshot and the batch streamed report through this one
/// function and compares the two byte-for-byte.
pub fn streamed_report_text(report: &sno_core::StreamedReport, scale: f64) -> String {
    let mut out = catalog_table(&report.catalog, scale);
    out.push_str(&census_text(
        &report.mapping,
        &report.profiles,
        &report.strict,
        report.default_threshold,
        report.accepted_count(),
        report.records,
    ));
    out
}

// sno-lint: allow(panic-reachable): repro entry point: reachable sites are leaf-justified invariants (length-guarded hot-path indexing, exhaustive table lookups); aborting beats publishing corrupt figures
fn table1(ctx: &ReproContext) -> String {
    let catalog = if ctx.chunk().is_some() {
        &ctx.streamed().catalog
    } else {
        &ctx.report().catalog
    };
    catalog_table(catalog, ctx.config().scale)
}

// sno-lint: allow(panic-reachable): repro entry point: reachable sites are leaf-justified invariants (length-guarded hot-path indexing, exhaustive table lookups); aborting beats publishing corrupt figures
fn table2(ctx: &ReproContext) -> String {
    let rows = sno_atlas::country_summary(&ctx.atlas().traceroutes, &ctx.probe_infos());
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<4} {:>7} {:>12} {:>12}",
        "CC", "probes", "start", "traceroutes"
    );
    for r in &rows {
        let _ = writeln!(
            out,
            "{:<4} {:>7} {:>12} {:>12}",
            r.country.as_str(),
            r.probes,
            r.first_measurement.date().to_string(),
            r.traceroutes
        );
    }
    let total: usize = rows.iter().map(|r| r.probes).sum();
    let _ = writeln!(out, "total probes: {total} (paper: 67)");
    out
}

// sno-lint: allow(panic-reachable): repro entry point: reachable sites are leaf-justified invariants (length-guarded hot-path indexing, exhaustive table lookups); aborting beats publishing corrupt figures
fn table3(_ctx: &ReproContext) -> String {
    let mapping = sno_core::map_asns();
    let mut out = String::new();
    for (op, asns) in &mapping.mapping {
        let list: Vec<String> = asns.iter().map(|a| a.0.to_string()).collect();
        let _ = writeln!(out, "{:<22} {}", op.name(), list.join(", "));
    }
    let _ = writeln!(
        out,
        "{} SNOs, {} ASNs (paper: 41 SNOs, 67 ASNs); {} lookalikes rejected",
        mapping.operator_count(),
        mapping.asn_count(),
        mapping.rejected.len()
    );
    out
}

/// Figure 1 rendering shared by the materialized and streamed paths.
fn census_text(
    mapping: &sno_core::AsnMapping,
    profiles: &[sno_core::validate::AsnProfile],
    strict: &sno_core::StrictOutcome,
    default_threshold: f64,
    accepted: usize,
    total: usize,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "stage 1-2 candidates: {}", mapping.candidates.len());
    let _ = writeln!(
        out,
        "stage 2  curated:    {} ASNs / {} SNOs",
        mapping.asn_count(),
        mapping.operator_count()
    );
    let outliers = profiles
        .iter()
        .filter(|p| matches!(p.verdict, AsnVerdict::Outlier(_)))
        .count();
    let _ = writeln!(out, "stage 3  KDE outlier ASNs: {outliers}");
    let _ = writeln!(
        out,
        "stage 3b strict prefixes retained: {} over {} SNOs (paper: 25 over 6)",
        strict.retained.len(),
        strict.covered().len()
    );
    let _ = writeln!(
        out,
        "stage 3c default relaxed threshold: {default_threshold:.1} ms (paper: 527 ms)"
    );
    let _ = writeln!(out, "stage 4  records accepted: {accepted} of {total}");
    out
}

// sno-lint: allow(panic-reachable): repro entry point: reachable sites are leaf-justified invariants (length-guarded hot-path indexing, exhaustive table lookups); aborting beats publishing corrupt figures
fn fig1(ctx: &ReproContext) -> String {
    if ctx.chunk().is_some() {
        let report = ctx.streamed();
        census_text(
            &report.mapping,
            &report.profiles,
            &report.strict,
            report.default_threshold,
            report.accepted_count(),
            report.records,
        )
    } else {
        let report = ctx.report();
        census_text(
            &report.mapping,
            &report.profiles,
            &report.strict,
            report.default_threshold,
            report.accepted.iter().flatten().count(),
            report.accepted.len(),
        )
    }
}

// sno-lint: allow(panic-reachable): repro entry point: reachable sites are leaf-justified invariants (length-guarded hot-path indexing, exhaustive table lookups); aborting beats publishing corrupt figures
fn fig2(ctx: &ReproContext) -> String {
    let report = ctx.report();
    let interesting: &[(u32, &str)] = &[
        (14593, "Starlink subscribers (expected LEO)"),
        (27277, "Starlink corporate (planted terrestrial)"),
        (800, "OneWeb (expected LEO)"),
        (60725, "O3b (expected MEO)"),
        (12684, "SES hybrid (expected MEO+GEO)"),
        (201554, "SES anomaly (planted terrestrial)"),
        (10538, "TelAlaska (GEO mixed with wireline)"),
    ];
    let mut out = String::new();
    for &(asn, label) in interesting {
        let Some(p) = report.profiles.iter().find(|p| p.asn == Asn(asn)) else {
            continue;
        };
        let _ = writeln!(
            out,
            "AS{asn:<7} {label}\n         tests {:>6}, mass<100ms {:.2}, expected-band mass {:.2}, modes {}, verdict {:?}",
            p.tests, p.terrestrial_mass, p.expected_mass, p.modes, p.verdict
        );
    }
    out
}

// sno-lint: allow(panic-reachable): repro entry point: reachable sites are leaf-justified invariants (length-guarded hot-path indexing, exhaustive table lookups); aborting beats publishing corrupt figures
fn fig3a(ctx: &ReproContext) -> String {
    let strict = &ctx.report().strict;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "strict filter: MEO > {:.0} ms / GEO > {:.0} ms, >= {} tests per /24",
        sno_core::prefix_filter::MEO_FLOOR_MS,
        sno_core::prefix_filter::GEO_FLOOR_MS,
        sno_core::prefix_filter::STRICT_MIN_TESTS
    );
    for stat in &strict.retained {
        let _ = writeln!(
            out,
            "{:<12} {:<18} tests {:>5}  min {:>6.1}  median {:>6.1}",
            stat.operator.name(),
            stat.prefix.to_string(),
            stat.tests,
            stat.min_latency_ms,
            stat.summary.median
        );
    }
    let _ = writeln!(
        out,
        "retained {} prefixes over {} SNOs (paper: 25 over 6); rejected thin {} / band {}",
        strict.retained.len(),
        strict.covered().len(),
        strict.rejected_thin,
        strict.rejected_band
    );
    out
}

// sno-lint: allow(panic-reachable): repro entry point: reachable sites are leaf-justified invariants (length-guarded hot-path indexing, exhaustive table lookups); aborting beats publishing corrupt figures
fn fig3b(ctx: &ReproContext) -> String {
    let corpus = ctx.mlab();
    let mut out = String::new();
    for c in [63u8, 115, 116, 117] {
        let prefix = if c == 63 {
            Prefix24::new(75, 105, 63)
        } else {
            Prefix24::new(45, 232, c)
        };
        let lat: Vec<f64> = corpus
            .records
            .iter()
            .filter(|r| r.client.prefix24() == prefix)
            .map(|r| r.latency_p5.0)
            .collect();
        let Some(s) = sno_stats::FiveNumber::of(&lat) else {
            continue;
        };
        let below90 = lat.iter().filter(|&&l| l < 90.0).count();
        let _ = writeln!(
            out,
            "{:<18} tests {:>5}  min {:>6.1}  median {:>6.1}  max {:>7.1}  <90ms: {:>4.0}%",
            prefix.to_string(),
            s.count,
            s.min,
            s.median,
            s.max,
            100.0 * below90 as f64 / lat.len() as f64
        );
    }
    // The inset: one hybrid IP over time, clustered.
    let hybrid = Prefix24::new(45, 232, 115);
    let mut per_ip: std::collections::BTreeMap<_, Vec<f64>> = Default::default();
    for r in &corpus.records {
        if r.client.prefix24() == hybrid {
            per_ip.entry(r.client).or_default().push(r.latency_p5.0);
        }
    }
    if let Some((ip, lat)) = per_ip.into_iter().max_by_key(|(_, v)| v.len()) {
        let fast = lat.iter().filter(|&&l| l < 90.0).count();
        let mid = lat.iter().filter(|&&l| (90.0..300.0).contains(&l)).count();
        let sat = lat.iter().filter(|&&l| l >= 450.0).count();
        let _ = writeln!(
            out,
            "inset {ip}: {} tests -> clusters fast {fast} / degraded {mid} / satellite {sat} (paper: 20-40 / 100-150 / ~600 ms)",
            lat.len()
        );
    }
    out
}

// sno-lint: allow(panic-reachable): repro entry point: reachable sites are leaf-justified invariants (length-guarded hot-path indexing, exhaustive table lookups); aborting beats publishing corrupt figures
fn fig3c(ctx: &ReproContext) -> String {
    let table = if ctx.chunk().is_some() {
        // The streamed accept pass collected the samples already; no
        // corpus rescan (or corpus) needed.
        let empty = std::collections::BTreeMap::new();
        let by_op = ctx
            .streamed()
            .latencies_by_operator
            .as_ref()
            .unwrap_or(&empty);
        analysis::latency_table(by_op)
    } else {
        analysis::latency_by_operator(&ctx.mlab().records, ctx.report())
    };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<12} {:>6} {:>8} {:>8} {:>8}   (paper: LEO 56-154, MEO 279, GEO median 673.5; SSI 620 best GEO, KVH 835 worst)",
        "SNO", "n", "q1", "median", "q3"
    );
    for (op, s) in &table {
        let _ = writeln!(
            out,
            "{:<12} {:>6} {:>8.1} {:>8.1} {:>8.1}",
            op.name(),
            s.count,
            s.q1,
            s.median,
            s.q3
        );
    }
    out
}

/// Render one Figure 4a row. An operator with no accepted sessions at
/// this scale gets an explicit marker instead of a silent 0-day row
/// with NaN columns.
fn fig4a_row(
    op: Operator,
    row: Option<(Vec<sno_stats::DailyPoint>, Option<f64>)>,
    paper_var: f64,
) -> String {
    let (daily, var) = row.unwrap_or_default();
    if daily.is_empty() {
        return format!(
            "{:<12} no accepted sessions at this scale (paper {:.1}%)\n",
            op.name(),
            paper_var
        );
    }
    let medians: Vec<f64> = daily.iter().map(|d| d.median).collect();
    let med = sno_stats::median(&medians).unwrap_or(f64::NAN);
    // Too few days for a p95 day-to-day variation is still a real row —
    // mark the statistic unavailable rather than printing NaN.
    let var = var.map_or_else(|| "n/a".to_string(), |v| format!("{:.1}%", v * 100.0));
    format!(
        "{:<12} {:>6} {:>13.1} ms {:>10} (paper {:.1}%)\n",
        op.name(),
        daily.len(),
        med,
        var,
        paper_var
    )
}

// sno-lint: allow(panic-reachable): repro entry point: reachable sites are leaf-justified invariants (length-guarded hot-path indexing, exhaustive table lookups); aborting beats publishing corrupt figures
fn fig4a(ctx: &ReproContext) -> String {
    // The figure's corpus and acceptance are cached on the context
    // (chunked generation into a columnar batch, columnar pipeline at
    // the context's thread setting); see `ReproContext::fig4a`.
    let state = ctx.fig4a();

    let mut out = String::new();
    let paper = [
        (Operator::Starlink, 3.1),
        (Operator::Viasat, 7.2),
        (Operator::O3b, 41.4),
        (Operator::Hughes, 72.0),
        (Operator::Oneweb, 120.0),
    ];
    let _ = writeln!(
        out,
        "{:<12} {:>6} {:>16} {:>14}",
        "SNO", "days", "median-of-day", "p95 daily var"
    );
    // One grouped columnar pass over the batch instead of one full scan
    // per operator.
    let ops: Vec<Operator> = paper.iter().map(|&(op, _)| op).collect();
    let mut by_op = analysis::stability_by_operator_batch(&state.batch, &state.accepted, &ops);
    for (op, paper_var) in paper {
        out.push_str(&fig4a_row(op, by_op.remove(&op), paper_var));
    }
    out
}

// sno-lint: allow(panic-reachable): repro entry point: reachable sites are leaf-justified invariants (length-guarded hot-path indexing, exhaustive table lookups); aborting beats publishing corrupt figures
fn fig4b(ctx: &ReproContext) -> String {
    let j = analysis::jitter_by_orbit(&ctx.mlab().records, ctx.report());
    let mut out = String::new();
    for orbit in OrbitClass::ALL {
        let med = j.median_variation(orbit).unwrap_or(f64::NAN);
        let tail = j.tail_at_least(orbit, 100.0).unwrap_or(f64::NAN);
        let _ = writeln!(
            out,
            "{orbit:<4} median jitter variation {med:>5.2}   share with >=100 ms absolute jitter {:>4.0}%",
            tail * 100.0
        );
    }
    let _ = writeln!(
        out,
        "(paper: LEO 0.5 vs GEO 0.28 relative; inset: >80% of GEO at >=100 ms, <20% of LEO)"
    );
    out
}

// sno-lint: allow(panic-reachable): repro entry point: reachable sites are leaf-justified invariants (length-guarded hot-path indexing, exhaustive table lookups); aborting beats publishing corrupt figures
fn fig4c(ctx: &ReproContext) -> String {
    let groups = analysis::retransmissions(&ctx.mlab().records, ctx.report());
    let mut out = String::new();
    for (group, values) in &groups {
        let med = sno_stats::median(values).unwrap_or(f64::NAN);
        let p90 = sno_stats::quantile(values, 0.9).unwrap_or(f64::NAN);
        let _ = writeln!(
            out,
            "{:<12} n {:>6}  median {:>6.2}%  p90 {:>6.2}%",
            group.to_string(),
            values.len(),
            med * 100.0,
            p90 * 100.0
        );
    }
    let _ = writeln!(
        out,
        "(paper: GEO(others) median 8.74%; GEO(PEP) tracks LEO; LEO < MEO)"
    );
    out
}

fn peering_text(ops: &[Operator]) -> String {
    let snap = sno_synth::bgp::snapshot_for(2023);
    let mut out = String::new();
    for &op in ops {
        let view = sno_bgp::peering_view(&snap, op);
        let _ = writeln!(
            out,
            "{} ({}), degree {} — tier-1 reach: {}",
            op.name(),
            view.asn,
            view.degree,
            if view.has_tier1() { "yes" } else { "no" }
        );
        for p in &view.peers {
            let _ = writeln!(
                out,
                "    {:<9} {:<26} {}  degree {:>3}{}",
                p.asn.to_string(),
                p.name,
                p.country,
                p.degree,
                if p.likely_upstream {
                    "  [upstream]"
                } else {
                    ""
                }
            );
        }
    }
    out
}

fn fig5(_ctx: &ReproContext) -> String {
    peering_text(&[Operator::Starlink, Operator::Oneweb, Operator::Kacific])
}

fn fig12(_ctx: &ReproContext) -> String {
    peering_text(&[
        Operator::Viasat,
        Operator::Hughes,
        Operator::Ses,
        Operator::HellasSat,
        Operator::Ultisat,
        Operator::Marlink,
    ])
}

fn country_table(rows: Vec<(CountryCode, sno_stats::FiveNumber)>) -> String {
    let mut out = String::new();
    for (c, s) in rows {
        let _ = writeln!(
            out,
            "{:<4} n {:>6}  q1 {:>6.1}  median {:>6.1}  q3 {:>6.1}",
            c.as_str(),
            s.count,
            s.q1,
            s.median,
            s.q3
        );
    }
    out
}

// sno-lint: allow(panic-reachable): repro entry point: reachable sites are leaf-justified invariants (length-guarded hot-path indexing, exhaustive table lookups); aborting beats publishing corrupt figures
fn fig6a(ctx: &ReproContext) -> String {
    let rows = sno_atlas::pop_rtt_by_country(&ctx.atlas().traceroutes, &ctx.probe_infos());
    format!(
        "{}(paper: NZ/CL ~33 ms, Europe 35-40, CA/AU ~45, PH ~80)\n",
        country_table(rows)
    )
}

// sno-lint: allow(panic-reachable): repro entry point: reachable sites are leaf-justified invariants (length-guarded hot-path indexing, exhaustive table lookups); aborting beats publishing corrupt figures
fn fig6b(ctx: &ReproContext) -> String {
    let rows = sno_atlas::root_rtt_by_country(&ctx.atlas().traceroutes, &ctx.probe_infos());
    format!(
        "{}(paper: Europe 40-49 ms, ES 58, CL wide, NZ/AU 100-150 tail, PH ~200)\n",
        country_table(rows)
    )
}

// sno-lint: allow(panic-reachable): repro entry point: reachable sites are leaf-justified invariants (length-guarded hot-path indexing, exhaustive table lookups); aborting beats publishing corrupt figures
fn fig6c(ctx: &ReproContext) -> String {
    let rows = sno_atlas::hops_by_country(&ctx.atlas().traceroutes, &ctx.probe_infos());
    format!(
        "{}(paper: 5 hops to local roots, 20+ across continents)\n",
        country_table(rows)
    )
}

// sno-lint: allow(panic-reachable): repro entry point: reachable sites are leaf-justified invariants (length-guarded hot-path indexing, exhaustive table lookups); aborting beats publishing corrupt figures
fn fig7(ctx: &ReproContext) -> String {
    let atlas = ctx.atlas();
    let mut out = String::new();
    for probe in &atlas.probes {
        let history =
            sno_atlas::pop_history(&atlas.sslcerts, probe.id, sno_synth::atlas::reverse_dns);
        if history.len() <= 1 {
            continue; // only probes with link changes are interesting here
        }
        let path: Vec<String> = history
            .iter()
            .map(|l| format!("{}{}", l.pop.code, if l.active { " (active)" } else { "" }))
            .collect();
        let _ = writeln!(
            out,
            "{} [{}{}]: {}",
            probe.id,
            probe.country,
            probe.state.map(|s| format!("/{s}")).unwrap_or_default(),
            path.join(" -> ")
        );
    }
    let _ = writeln!(out, "(all other probes hold a single active PoP link)");
    out
}

// sno-lint: allow(panic-reachable): repro entry point: reachable sites are leaf-justified invariants (length-guarded hot-path indexing, exhaustive table lookups); aborting beats publishing corrupt figures
fn fig8a(ctx: &ReproContext) -> String {
    let rows = sno_atlas::pop_rtt_by_state(&ctx.atlas().traceroutes, &ctx.probe_infos());
    let mut out = String::new();
    for (state, s) in rows {
        let region = sno_geo::world::us_state(state)
            .map(|x| x.region.to_string())
            .unwrap_or_default();
        let _ = writeln!(
            out,
            "{:<3} ({:<18}) n {:>6}  median {:>6.1}  q3 {:>6.1}",
            state, region, s.count, s.median, s.q3
        );
    }
    let _ = writeln!(
        out,
        "(paper: best states ~45 ms, AZ ~55, AK ~80 median / 120 p75)"
    );
    out
}

/// Figure 8b rendering shared by the materialized and streamed paths.
fn pop_change_text(changes: &[sno_atlas::PopChange], probes: &[sno_atlas::ProbeInfo]) -> String {
    let mut out = String::new();
    for ch in changes {
        if let Some(probe) = probes.iter().find(|p| p.id == ch.probe) {
            let pops = ch
                .pops
                .map(|(a, b)| format!("{a} -> {b}"))
                .unwrap_or_else(|| "unattributed".into());
            let _ = writeln!(
                out,
                "{} [{}{}] {}: {:.1} -> {:.1} ms ({})",
                probe.id,
                probe.country,
                probe.state.map(|s| format!("/{s}")).unwrap_or_default(),
                ch.at.date(),
                ch.before_ms,
                ch.after_ms,
                pops
            );
        }
    }
    let _ = writeln!(
        out,
        "(paper: NZ -20 ms on 2022-07-12 Sydney->Auckland; NL -10 ms Frankfurt->London; NV 2x to Denver then reverted)"
    );
    out
}

// sno-lint: allow(panic-reachable): repro entry point: reachable sites are leaf-justified invariants (length-guarded hot-path indexing, exhaustive table lookups); aborting beats publishing corrupt figures
fn fig8b(ctx: &ReproContext) -> String {
    if ctx.chunk().is_some() {
        // Chunked traceroute + SSLCert streams: only the per-probe RTT
        // series and cert histories are ever resident, never a corpus.
        let generator = sno_synth::AtlasGenerator::new(ctx.config().clone());
        let changes = sno_atlas::detect_all_pop_changes_streamed(
            generator.traceroute_chunks(ctx.chunk_len()),
            generator.sslcert_chunks(ctx.chunk_len()),
            sno_synth::atlas::reverse_dns,
            8.0,
            8,
            ctx.config().threads,
        );
        let probes: Vec<sno_atlas::ProbeInfo> = generator
            .probes()
            .iter()
            .map(|p| sno_atlas::ProbeInfo {
                id: p.id,
                country: p.country,
                state: p.state,
            })
            .collect();
        pop_change_text(&changes, &probes)
    } else {
        let atlas = ctx.atlas();
        let changes = sno_atlas::detect_all_pop_changes(
            &atlas.traceroutes,
            &atlas.sslcerts,
            sno_synth::atlas::reverse_dns,
            8.0,
            8,
            ctx.config().threads,
        );
        pop_change_text(&changes, &ctx.probe_infos())
    }
}

// sno-lint: allow(panic-reachable): repro entry point: reachable sites are leaf-justified invariants (length-guarded hot-path indexing, exhaustive table lookups); aborting beats publishing corrupt figures
fn fig9(ctx: &ReproContext) -> String {
    let mut rng = Rng::new(ctx.config().seed).substream_named("apps-speedtest");
    let panel = sno_apps::panel(ctx.config().seed);
    let mut runs = Vec::new();
    for t in &panel {
        for _ in 0..sno_apps::testers::RUNS_PER_TESTER {
            runs.push(sno_apps::speedtest(t, &mut rng));
        }
    }
    let mut out = String::new();
    for op in [Operator::Starlink, Operator::Viasat, Operator::Hughes] {
        let of = |f: &dyn Fn(&sno_apps::SpeedtestRun) -> f64| {
            let v: Vec<f64> = runs.iter().filter(|r| r.operator == op).map(f).collect();
            sno_stats::median(&v).unwrap_or(f64::NAN)
        };
        let _ = writeln!(
            out,
            "{:<10} down {:>6.1} Mbps  up {:>5.1} Mbps  latency {:>6.1} ms",
            op.name(),
            of(&|r| r.download.0),
            of(&|r| r.upload.0),
            of(&|r| r.latency.0)
        );
    }
    for cont in [
        sno_geo::world::Continent::NorthAmerica,
        sno_geo::world::Continent::Europe,
        sno_geo::world::Continent::Oceania,
    ] {
        let v: Vec<f64> = runs
            .iter()
            .filter(|r| r.operator == Operator::Starlink && r.continent == cont)
            .map(|r| r.download.0)
            .collect();
        let _ = writeln!(
            out,
            "Starlink {cont}: median down {:.1} Mbps",
            sno_stats::median(&v).unwrap_or(f64::NAN)
        );
    }
    let _ = writeln!(
        out,
        "(paper: Starlink 70-150 down / 6-21 up, EU median 150; Viasat 10-40/3 at ~600 ms; HughesNet <=3/3 at ~720 ms)"
    );
    out
}

// sno-lint: allow(panic-reachable): repro entry point: reachable sites are leaf-justified invariants (length-guarded hot-path indexing, exhaustive table lookups); aborting beats publishing corrupt figures
fn fig10a(ctx: &ReproContext) -> String {
    let mut rng = Rng::new(ctx.config().seed).substream_named("apps-cdn");
    let panel = sno_apps::panel(ctx.config().seed);
    let mut out = String::new();
    for op in [Operator::Starlink, Operator::Hughes, Operator::Viasat] {
        let _ = writeln!(out, "{}:", op.name());
        for cdn in sno_apps::Cdn::ALL {
            let v: Vec<f64> = panel
                .iter()
                .filter(|t| t.operator == op)
                .flat_map(|t| {
                    (0..4)
                        .map(|_| sno_apps::cdn_fetch(t, cdn, true, &mut rng).time.0)
                        .collect::<Vec<_>>()
                })
                .collect();
            let _ = writeln!(
                out,
                "    {:<11} median {:>7.0} ms",
                cdn.name(),
                sno_stats::median(&v).unwrap_or(f64::NAN)
            );
        }
    }
    let _ = writeln!(
        out,
        "(paper jquery.min.js via Fastly: 127 / 950 / 1036 ms; jsDelivr +1 RTT; Hughes others 1385-1537)"
    );
    out
}

// sno-lint: allow(panic-reachable): repro entry point: reachable sites are leaf-justified invariants (length-guarded hot-path indexing, exhaustive table lookups); aborting beats publishing corrupt figures
fn fig10b(ctx: &ReproContext) -> String {
    let mut rng = Rng::new(ctx.config().seed).substream_named("apps-web");
    let panel = sno_apps::panel(ctx.config().seed);
    let mut out = String::new();
    for op in [Operator::Starlink, Operator::Viasat, Operator::Hughes] {
        for v in [sno_apps::HttpVersion::H1, sno_apps::HttpVersion::H2] {
            let plts: Vec<f64> = panel
                .iter()
                .filter(|t| t.operator == op)
                .flat_map(|t| {
                    (0..4)
                        .map(|_| sno_apps::page_load(t, v, &mut rng).plt.0)
                        .collect::<Vec<_>>()
                })
                .collect();
            let _ = writeln!(
                out,
                "{:<10} {v}: median PLT {:>8.0} ms",
                op.name(),
                sno_stats::median(&plts).unwrap_or(f64::NAN)
            );
        }
    }
    let _ = writeln!(
        out,
        "(paper: H2 on GEO ~ H1 on Starlink; one HughesNet H1 load hit the 60 s timeout)"
    );
    out
}

// sno-lint: allow(panic-reachable): repro entry point: reachable sites are leaf-justified invariants (length-guarded hot-path indexing, exhaustive table lookups); aborting beats publishing corrupt figures
fn fig10c(ctx: &ReproContext) -> String {
    let mut rng = Rng::new(ctx.config().seed).substream_named("apps-dns");
    let panel = sno_apps::panel(ctx.config().seed);
    let mut out = String::new();
    for op in [Operator::Starlink, Operator::Hughes, Operator::Viasat] {
        let v: Vec<f64> = panel
            .iter()
            .filter(|t| t.operator == op)
            .flat_map(|t| sno_apps::dns_lookups(t, 40, &mut rng))
            .map(|m| m.0)
            .collect();
        let _ = writeln!(
            out,
            "{:<10} median DNS lookup {:>7.1} ms",
            op.name(),
            sno_stats::median(&v).unwrap_or(f64::NAN)
        );
    }
    let _ = writeln!(out, "(paper: 130 / 755 / 985 ms)");
    out
}

// sno-lint: allow(panic-reachable): repro entry point: reachable sites are leaf-justified invariants (length-guarded hot-path indexing, exhaustive table lookups); aborting beats publishing corrupt figures
fn fig11(ctx: &ReproContext) -> String {
    let mut rng = Rng::new(ctx.config().seed).substream_named("apps-video");
    let panel = sno_apps::panel(ctx.config().seed);
    let mut out = String::new();
    for op in [Operator::Starlink, Operator::Hughes, Operator::Viasat] {
        let sessions: Vec<sno_apps::VideoSession> = panel
            .iter()
            .filter(|t| t.operator == op)
            .flat_map(|t| {
                (0..4)
                    .map(|_| sno_apps::video_session(t, &mut rng))
                    .collect::<Vec<_>>()
            })
            .collect();
        let mp: Vec<f64> = sessions.iter().map(|s| s.quality.megapixels()).collect();
        let buf: Vec<f64> = sessions.iter().map(|s| s.buffer_secs).collect();
        let drop: Vec<f64> = sessions.iter().map(|s| s.dropped_pct).collect();
        let stalls = sessions.iter().filter(|s| s.stall_fraction > 0.0).count();
        let _ = writeln!(
            out,
            "{:<10} median quality {:>5.2} MP  buffer {:>5.1} s  dropped {:>4.1}%  stalled runs {}/{}",
            op.name(),
            sno_stats::median(&mp).unwrap_or(f64::NAN),
            sno_stats::median(&buf).unwrap_or(f64::NAN),
            sno_stats::median(&drop).unwrap_or(f64::NAN),
            stalls,
            sessions.len()
        );
    }
    let _ = writeln!(
        out,
        "(paper: only Starlink >=2 MP; GEO ~0.5 MP; buffer 40-65 s, 15-30 s at high res; stalls rare)"
    );
    out
}

// sno-lint: allow(panic-reachable): repro entry point: reachable sites are leaf-justified invariants (length-guarded hot-path indexing, exhaustive table lookups); aborting beats publishing corrupt figures
fn fig13(_ctx: &ReproContext) -> String {
    let snaps = sno_synth::bgp::snapshots();
    let mut out = String::new();
    for op in [
        Operator::Starlink,
        Operator::Hughes,
        Operator::Viasat,
        Operator::Marlink,
    ] {
        let track = sno_bgp::growth_track(&snaps, op);
        let line: Vec<String> = track
            .iter()
            .map(|p| format!("{}: deg {} / {} countries", p.date, p.degree, p.countries))
            .collect();
        let _ = writeln!(out, "{:<10} {}", op.name(), line.join("  |  "));
        if op == Operator::Marlink {
            let (gained, lost) = sno_bgp::growth::peer_churn(&track[0], &track[2]);
            let _ = writeln!(
                out,
                "           churn 2021->2023: gained {gained:?}, lost {lost:?} (paper: Level3 -> Cogent)"
            );
        }
    }
    out
}

// sno-lint: allow(panic-reachable): repro entry point: reachable sites are leaf-justified invariants (length-guarded hot-path indexing, exhaustive table lookups); aborting beats publishing corrupt figures
fn fig14(ctx: &ReproContext) -> String {
    // Score histograms accumulate record-by-record, so the chunked form
    // folds the stream into the same tallies the materialized corpus
    // yields — byte-identical output either way.
    let mut tallies: std::collections::BTreeMap<Operator, [usize; 5]> =
        std::collections::BTreeMap::new();
    let mut tally = |r: &sno_types::records::CensusResponse| {
        tallies.entry(r.operator).or_insert([0usize; 5])[usize::from(r.score) - 1] += 1;
    };
    if ctx.chunk().is_some() {
        sno_synth::census_chunks(ctx.config().seed, ctx.chunk_len())
            .fold_records((), |(), r| tally(&r));
    } else {
        for r in sno_synth::census_responses(ctx.config().seed) {
            tally(&r);
        }
    }
    let labels = ["very poor", "poor", "ok", "good", "very good"];
    let mut out = String::new();
    for op in [Operator::Starlink, Operator::Hughes, Operator::Viasat] {
        let counts = tallies.get(&op).copied().unwrap_or_default();
        let cells: Vec<String> = labels
            .iter()
            .zip(counts)
            .map(|(l, c)| format!("{l} {c}"))
            .collect();
        let _ = writeln!(
            out,
            "{:<10} n={:<3} {}",
            op.name(),
            counts.iter().sum::<usize>(),
            cells.join(", ")
        );
    }
    let _ = writeln!(
        out,
        "(paper: 1 of 20 Starlink users says poor; 'ok' is the ceiling for HughesNet (55%) and Viasat (18%))"
    );
    out
}

/// The injected link-level ground truth behind the NDT corpus: base RTT
/// and bottleneck rate per operator, straight from the path model with
/// no TCP dynamics on top. What Fig. 3c's access-latency bands must
/// re-detect through the pipeline.
// sno-lint: allow(panic-reachable): repro entry point: reachable sites are leaf-justified invariants (length-guarded hot-path indexing, exhaustive table lookups); aborting beats publishing corrupt figures
fn paths(ctx: &ReproContext) -> String {
    use sno_synth::paths::{PathSample, PathSampler};
    const OPS: [Operator; 5] = [
        Operator::Starlink,
        Operator::Oneweb,
        Operator::O3b,
        Operator::Viasat,
        Operator::Hughes,
    ];
    let sampler = PathSampler::new(ctx.config().clone());
    // Per-operator buckets fill in stream order; the chunked stream is
    // the exact concatenation of the per-operator corpora, so both
    // branches build identical buckets and render identical text.
    let mut rtts: std::collections::BTreeMap<Operator, Vec<f64>> =
        std::collections::BTreeMap::new();
    let mut rates: std::collections::BTreeMap<Operator, Vec<f64>> =
        std::collections::BTreeMap::new();
    let mut take = |s: &PathSample| {
        rtts.entry(s.operator).or_default().push(s.base_rtt_ms);
        rates.entry(s.operator).or_default().push(s.rate_mbps);
    };
    if ctx.chunk().is_some() {
        sampler
            .sample_chunks(&OPS, ctx.chunk_len())
            .fold_records((), |(), s| take(&s));
    } else {
        for op in OPS {
            for s in sampler.samples_for(op) {
                take(&s);
            }
        }
    }
    let mut out = String::new();
    for op in OPS {
        let Some(summary) = rtts.get(&op).and_then(|v| sno_stats::FiveNumber::of(v)) else {
            let _ = writeln!(out, "{:<10} n=0   (no coverage at this scale)", op.name());
            continue;
        };
        let rate = rates
            .get(&op)
            .and_then(|v| sno_stats::median(v))
            .unwrap_or(f64::NAN);
        let _ = writeln!(
            out,
            "{:<10} n={:<6} base RTT q1 {:>6.1} / med {:>6.1} / q3 {:>6.1} ms (min {:.1}, max {:.1})  med rate {:>6.1} Mbps",
            op.name(),
            summary.count,
            summary.q1,
            summary.median,
            summary.q3,
            summary.min,
            summary.max,
            rate
        );
    }
    let _ = writeln!(
        out,
        "(ground truth before TCP dynamics; paper Fig. 3c bands: LEO tens of ms, MEO ~150-300 ms, GEO >=600 ms)"
    );
    out
}

fn coverage(_ctx: &ReproContext) -> String {
    let snap = sno_synth::bgp::snapshot_for(2023);
    let mut out = String::new();
    for op in [Operator::Starlink, Operator::Ses, Operator::HellasSat] {
        let r = sno_bgp::coverage_report(&snap, op);
        let _ = writeln!(
            out,
            "{:<10} discovered {}/{} countries ({:.0}%), city coverage {:.0}%",
            op.name(),
            r.discovered.len(),
            r.truth_countries.len(),
            r.country_recall() * 100.0,
            r.city_coverage * 100.0
        );
    }
    let _ = writeln!(
        out,
        "(paper: Starlink 10/30 countries covering 74% of cities; SES 7/22 at 57%; Hellas-Sat 2/2 at 100%)"
    );
    out
}

/// The filtering ablation DESIGN.md calls out: how much traffic (and how
/// much accuracy) does the relaxed stage add over strict-only retention?
/// Ground truth comes from the generator, which the pipeline never sees.
// sno-lint: allow(panic-reachable): repro entry point: reachable sites are leaf-justified invariants (length-guarded hot-path indexing, exhaustive table lookups); aborting beats publishing corrupt figures
fn ablation_filter(ctx: &ReproContext) -> String {
    use sno_core::accuracy::{score, Confusion, Truth};
    let (corpus, raw) = sno_synth::MlabGenerator::new(ctx.config().clone()).generate_with_truth();
    let truth: Vec<Truth> = raw.iter().map(|t| (t.operator, t.kind)).collect();
    let report = sno_core::pipeline::Pipeline::new().run(&corpus.records);

    // Arm A: the full pipeline (relaxed filtering), as published.
    let relaxed = score(&truth, &report);

    // Arm B: strict-only — keep LEO/MEO ASN-level acceptance but require
    // GEO records to fall inside a strictly-retained /24.
    let strict_prefixes: std::collections::BTreeSet<_> = report
        .strict
        .retained
        .iter()
        .map(|p| (p.operator, p.prefix))
        .collect();
    let mut strict_acc = Confusion::default();
    let mut strict_kept = 0u64;
    for ((rec, &(op_true, kind)), acc) in corpus.records.iter().zip(&truth).zip(&report.accepted) {
        let keep = match acc {
            None => false,
            Some(op) => {
                let access = sno_registry::sources::access_of(*op);
                match access {
                    sno_types::AccessKind::Satellite(sno_types::OrbitClass::Leo)
                    | sno_types::AccessKind::Satellite(sno_types::OrbitClass::Meo) => true,
                    _ => strict_prefixes.contains(&(*op, rec.client.prefix24())),
                }
            }
        };
        if keep {
            strict_kept += 1;
        }
        let is_sat = kind.touches_satellite();
        match (is_sat, keep) {
            (true, true) => strict_acc.true_positive += 1,
            (true, false) => strict_acc.false_negative += 1,
            (false, true) => strict_acc.false_positive += 1,
            (false, false) => strict_acc.true_negative += 1,
        }
        let _ = op_true;
    }

    let mut out = String::new();
    let relaxed_kept = report.accepted.iter().flatten().count();
    let _ = writeln!(
        out,
        "relaxed (published): kept {relaxed_kept} records; {relaxed}"
    );
    let _ = writeln!(
        out,
        "strict-only:         kept {strict_kept} records; {strict_acc}"
    );
    let _ = writeln!(
        out,
        "relaxation buys {:.1}% more recall at {:.2}% precision cost",
        (relaxed.recall() - strict_acc.recall()) * 100.0,
        (strict_acc.precision() - relaxed.precision()) * 100.0
    );
    let _ = writeln!(
        out,
        "(the paper's rationale for step 3c: strict filtering retains <1% of speed tests)"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sno_synth::SynthConfig;
    use std::sync::OnceLock;

    fn ctx() -> &'static ReproContext {
        static CTX: OnceLock<ReproContext> = OnceLock::new();
        CTX.get_or_init(|| ReproContext::with_config(SynthConfig::test_corpus()))
    }

    #[test]
    fn every_experiment_runs_and_produces_output() {
        for (id, _, _) in EXPERIMENTS {
            let out = run_experiment(ctx(), id).expect("known id");
            assert!(out.len() > 40, "{id} output too short:\n{out}");
        }
    }

    #[test]
    fn unknown_experiment_is_none() {
        assert!(run_experiment(ctx(), "fig99").is_none());
    }

    #[test]
    fn experiment_ids_unique() {
        let mut ids: Vec<_> = EXPERIMENTS.iter().map(|(id, ..)| *id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), EXPERIMENTS.len());
    }

    #[test]
    fn table1_mentions_starlink_and_18_snos() {
        let out = run_experiment(ctx(), "table1").unwrap();
        assert!(out.contains("Starlink"));
        assert!(out.contains("SNOs identified: 18"));
    }

    #[test]
    fn fig4a_row_marks_empty_operators() {
        // Regression: an operator with no accepted sessions used to
        // render a "0 days, NaN ms, NaN%" row.
        let row = fig4a_row(Operator::Oneweb, None, 120.0);
        assert!(row.contains("no accepted sessions"), "{row}");
        assert!(!row.contains("NaN"), "{row}");
        let empty = fig4a_row(Operator::Hughes, Some((Vec::new(), None)), 72.0);
        assert!(empty.contains("no accepted sessions"), "{empty}");
    }

    #[test]
    fn fig4a_marks_operators_lost_at_tiny_scale() {
        // At a tiny scale with no session floor, low-volume operators
        // contribute no accepted sessions; the rendered figure must say
        // so explicitly.
        use crate::context::FIG4A_OPS;
        let cfg = SynthConfig {
            scale: 1e-6,
            min_sessions: 0,
            ..SynthConfig::test_corpus()
        };
        let generator = sno_synth::MlabGenerator::new(cfg);
        let batch =
            sno_types::RecordBatch::from_chunks(generator.generate_chunks_for(&FIG4A_OPS, 512));
        let report = sno_core::pipeline::Pipeline::new().run_batch(&batch);
        let ops = FIG4A_OPS.to_vec();
        let mut by_op = analysis::stability_by_operator_batch(&batch, &report.accepted, &ops);
        let mut rendered = String::new();
        for op in FIG4A_OPS {
            rendered.push_str(&fig4a_row(op, by_op.remove(&op), 0.0));
        }
        assert!(
            rendered.contains("no accepted sessions"),
            "tiny scale should starve at least one operator:\n{rendered}"
        );
        assert!(!rendered.contains("NaN"), "{rendered}");
    }

    #[test]
    fn fig4a_respects_context_thread_and_chunk_settings() {
        // Regression: fig4a used to build its own Pipeline::new() over a
        // hand-materialized Vec, ignoring `repro --threads/--chunk`.
        let base = run_experiment(ctx(), "fig4a").unwrap();
        for threads in [1usize, 2, 8] {
            let cfg = SynthConfig {
                threads,
                ..SynthConfig::test_corpus()
            };
            let chunked = ReproContext::with_chunk(cfg, 1024);
            let out = run_experiment(&chunked, "fig4a").unwrap();
            assert_eq!(out, base, "threads {threads} chunk 1024");
        }
    }

    #[test]
    fn streamed_context_output_is_byte_identical() {
        let chunked = ReproContext::with_chunk(SynthConfig::test_corpus(), 512);
        for id in ["table1", "fig1", "fig3c", "fig8b", "fig14", "paths"] {
            let streamed = run_experiment(&chunked, id).unwrap();
            let materialized = run_experiment(ctx(), id).unwrap();
            assert_eq!(streamed, materialized, "{id}");
        }
    }
}
