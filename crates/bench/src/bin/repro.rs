//! Regenerate the paper's tables and figures from the synthetic corpora.
//!
//! ```text
//! repro                 # run everything
//! repro table1 fig4c    # run selected experiments
//! repro --list          # list experiment ids
//! repro --scale 1e-2    # denser corpus (slower, smoother statistics)
//! ```

use sno_bench::{run_experiment, ReproContext, EXPERIMENTS};
use sno_synth::SynthConfig;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();

    if args.iter().any(|a| a == "--list") {
        for (id, what, _) in EXPERIMENTS {
            println!("{id:<10} {what}");
        }
        return;
    }

    let mut config = SynthConfig::default_corpus();
    if let Some(pos) = args.iter().position(|a| a == "--scale") {
        let value = args
            .get(pos + 1)
            .and_then(|v| v.parse::<f64>().ok())
            .unwrap_or_else(|| {
                eprintln!("--scale needs a number, e.g. --scale 1e-2");
                std::process::exit(2);
            });
        config.scale = value;
        args.drain(pos..=pos + 1);
    }

    let ctx = ReproContext::with_config(config);
    let selected: Vec<&str> = if args.is_empty() {
        EXPERIMENTS.iter().map(|(id, ..)| *id).collect()
    } else {
        args.iter().map(String::as_str).collect()
    };

    for id in selected {
        match run_experiment(&ctx, id) {
            Some(output) => {
                let what = EXPERIMENTS
                    .iter()
                    .find(|(eid, ..)| *eid == id)
                    .map(|(_, w, _)| *w)
                    .unwrap_or("");
                println!("==== {id}: {what} ====");
                println!("{output}");
            }
            None => {
                eprintln!("unknown experiment '{id}' (try --list)");
                std::process::exit(2);
            }
        }
    }
}
