//! Regenerate the paper's tables and figures from the synthetic corpora.
//!
//! ```text
//! repro                 # run everything
//! repro table1 fig4c    # run selected experiments
//! repro --list          # list experiment ids
//! repro --scale 1e-2    # denser corpus (slower, smoother statistics)
//! repro --bench         # time every experiment, write BENCH_1.json
//! ```

use sno_bench::{run_experiment, ReproContext, EXPERIMENTS};
use sno_check::bench::{bench_group, BenchReport};
use sno_synth::SynthConfig;

/// `--bench`: per-experiment median wall time over a shared context,
/// written as a perf-trajectory snapshot (`BENCH_1.json` by default, in
/// the invocation directory — the repo root under `cargo run`).
fn run_bench_mode(config: SynthConfig, out_path: &str) {
    let ctx = ReproContext::with_config(config);
    // Force the corpora and pipeline once, outside the timing loops.
    let _ = ctx.report();
    let _ = ctx.atlas();

    let mut report = BenchReport::new();
    let mut group = bench_group("experiments");
    group.sample_size(5).warm_up_ms(50.0).sample_budget_ms(50.0);
    for (id, ..) in EXPERIMENTS {
        group.bench_function(*id, |b| {
            b.iter(|| std::hint::black_box(run_experiment(&ctx, id).expect("known id")))
        });
    }
    report.push(group.finish());

    let mut group = bench_group("pipeline");
    group.sample_size(5).warm_up_ms(50.0).sample_budget_ms(50.0);
    let records = &ctx.mlab().records;
    group.bench_function("table1_pipeline_full", |b| {
        b.iter(|| std::hint::black_box(sno_core::pipeline::Pipeline::new().run(records)))
    });
    report.push(group.finish());

    report.write_json(out_path).unwrap_or_else(|e| {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    });
    println!("wrote {out_path}");
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();

    if args.iter().any(|a| a == "--list") {
        for (id, what, _) in EXPERIMENTS {
            println!("{id:<10} {what}");
        }
        return;
    }

    let bench = if let Some(pos) = args.iter().position(|a| a == "--bench") {
        args.remove(pos);
        true
    } else {
        false
    };
    let bench_out = if let Some(pos) = args.iter().position(|a| a == "--bench-out") {
        let path = args.get(pos + 1).cloned().unwrap_or_else(|| {
            eprintln!("--bench-out needs a path");
            std::process::exit(2);
        });
        args.drain(pos..=pos + 1);
        path
    } else {
        "BENCH_1.json".to_string()
    };

    // Benches default to the small test corpus so a full sweep stays
    // fast; `--scale` still overrides.
    let mut config = if bench {
        SynthConfig::test_corpus()
    } else {
        SynthConfig::default_corpus()
    };
    if let Some(pos) = args.iter().position(|a| a == "--scale") {
        let value = args
            .get(pos + 1)
            .and_then(|v| v.parse::<f64>().ok())
            .unwrap_or_else(|| {
                eprintln!("--scale needs a number, e.g. --scale 1e-2");
                std::process::exit(2);
            });
        config.scale = value;
        args.drain(pos..=pos + 1);
    }

    if bench {
        run_bench_mode(config, &bench_out);
        return;
    }

    let ctx = ReproContext::with_config(config);
    let selected: Vec<&str> = if args.is_empty() {
        EXPERIMENTS.iter().map(|(id, ..)| *id).collect()
    } else {
        args.iter().map(String::as_str).collect()
    };

    for id in selected {
        match run_experiment(&ctx, id) {
            Some(output) => {
                let what = EXPERIMENTS
                    .iter()
                    .find(|(eid, ..)| *eid == id)
                    .map(|(_, w, _)| *w)
                    .unwrap_or("");
                println!("==== {id}: {what} ====");
                println!("{output}");
            }
            None => {
                eprintln!("unknown experiment '{id}' (try --list)");
                std::process::exit(2);
            }
        }
    }
}
