//! Regenerate the paper's tables and figures from the synthetic corpora.
//!
//! ```text
//! repro                 # run everything
//! repro table1 fig4c    # run selected experiments
//! repro --list          # list experiment ids
//! repro --scale 1e-2    # denser corpus (slower, smoother statistics)
//! repro --threads 4     # worker pool size (0 = all cores; output
//!                       # is byte-identical at every setting)
//! repro --chunk 4096    # stream the streamable experiments through
//!                       # chunked generation (bounded memory; output
//!                       # is byte-identical at every chunk length)
//! repro --progress 500000
//!                       # stderr heartbeat every N records through the
//!                       # streamed pipeline (liveness for paper-scale
//!                       # runs; record counts, never wall-clock, so
//!                       # output stays deterministic)
//! repro --online        # drive the corpus chunk-by-chunk through the
//!                       # incremental OnlineIdentifier and print its
//!                       # snapshot through the shared report renderer
//! repro --online --verify-batch
//!                       # also run the batch streamed pipeline over the
//!                       # same corpus and exit non-zero on any verdict
//!                       # mismatch (the ci.sh online-equivalence gate)
//! repro --bench         # time every experiment, write BENCH_N.json
//! repro --bench-diff BENCH_1.json BENCH_2.json
//!                       # compare two snapshots, fail on >20% median
//!                       # regressions or any absolute budget breach
//!                       # (the ci.sh perf gate)
//! repro --sim-sweep --seeds 32 --quick
//!                       # deterministic fault-injection campaign over
//!                       # 32 seeds (the ci.sh sim gate); failing seeds
//!                       # persist to tests/corpora/sim_sweep.seeds
//! repro --sim-sweep --seed 12345
//!                       # replay one seed verbosely
//! repro --lint          # determinism & hermeticity lint pass (the
//!                       # ci.sh lint gate); --json for machine output
//! ```

use sno_bench::{run_experiment, streamed_report_text, ReproContext, EXPERIMENTS};
use sno_check::bench::{bench_group, BenchReport, BenchResult, GroupReport};
use sno_core::pipeline::Pipeline;
use sno_core::stream::StreamOptions;
use sno_core::OnlineIdentifier;
use sno_netsim::sim::{run_seed, run_sweep, SweepConfig};
use sno_synth::{MlabGenerator, SynthConfig};
use sno_types::chunk::RecordChunks as _;

/// Median regressions beyond this fraction fail `--bench-diff`.
const REGRESSION_LIMIT: f64 = 0.20;

/// Benches with medians below this are dominated by scheduler and
/// code-layout jitter (observed swinging ±30% between sweeps of the
/// *identical* binary on a shared box), so `--bench-diff` skips them
/// rather than gating on noise. The macro benches — corpus generation,
/// the full pipeline, fig4a, the filter ablation — all sit well above
/// the floor and are what the perf trajectory is for.
const NOISE_FLOOR_MS: f64 = 2.0;

/// Absolute per-bench budgets, in ms, checked against the NEW snapshot
/// by `--bench-diff` alongside the relative gate. Relative diffs ratchet
/// slowly — ten successive "only 19% worse" runs compound to 5×; a
/// budget pins the benches whose wall time is itself a deliverable.
const BUDGETS: &[(&str, &str, f64)] = &[
    ("experiments", "fig4a", 100.0),
    // A steady-state snapshot must stay O(frames since the last one) —
    // at the bench corpus that is near-zero work plus report assembly,
    // so the budget is deliberately tight relative to full replay.
    ("online", "online_snapshot_steady", 25.0),
];

/// Groups `--bench-diff` never compares relatively: calibration exists
/// only to estimate machine drift.
const DIFF_SKIP_GROUPS: &[&str] = &["calibration"];

/// Groups whose values are throughputs (sessions/second), not wall
/// times: higher is better, so they regress *downward*. A slower
/// machine depresses throughput by the drift factor, so the gated ratio
/// is `(new/old) × drift` — the mirror image of the wall-time
/// correction — and the noise floor (a wall-time threshold in ms) does
/// not apply.
const THROUGHPUT_GROUPS: &[&str] = &["throughput"];

/// Groups whose values are machine-independent (megabytes, not wall
/// time): compared raw, never drift-corrected.
const RAW_GROUPS: &[&str] = &["memory"];

/// Iterations of the calibration spin (fixed xorshift-mix arithmetic,
/// no memory traffic): ~20–40 ms on current hardware. The absolute
/// time is irrelevant — only the ratio between two snapshots is used,
/// as an estimate of how much faster or slower the recording machine
/// was. Snapshots are taken on whatever box CI lands on, and observed
/// machine-to-machine drift (~1.2× on identical binaries) exceeds the
/// 20% regression limit on its own.
const CALIBRATION_ITERS: u64 = 10_000_000;

/// The fixed workload behind `calibration/spin`.
fn calibration_spin() -> u64 {
    let mut x = std::hint::black_box(0x5A7E_1117_u64);
    for _ in 0..CALIBRATION_ITERS {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        x ^= x >> 33;
    }
    x
}

/// The next free `BENCH_N.json` in the invocation directory, so each
/// `--bench` run extends the perf trajectory instead of clobbering it.
fn next_bench_path() -> String {
    let mut n = 1u32;
    if let Ok(entries) = std::fs::read_dir(".") {
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(num) = name
                .strip_prefix("BENCH_")
                .and_then(|rest| rest.strip_suffix(".json"))
                .and_then(|num| num.parse::<u32>().ok())
            {
                n = n.max(num + 1);
            }
        }
    }
    format!("BENCH_{n}.json")
}

/// `--bench`: per-experiment median wall time over a shared context,
/// written as a perf-trajectory snapshot (next free `BENCH_N.json` by
/// default, in the invocation directory — the repo root under
/// `cargo run`). A `scaling` group records serial (1 thread) against
/// pooled (`--threads`, default all cores) medians for corpus
/// generation and the pipeline.
fn run_bench_mode(config: SynthConfig, chunk: Option<usize>, out_path: &str) {
    let ctx = match chunk {
        Some(c) => ReproContext::with_chunk(config.clone(), c),
        None => ReproContext::with_config(config.clone()),
    };

    // Memory high-water marks. VmHWM is monotone over the process
    // lifetime, so the streamed pipeline must run (and be sampled)
    // before anything materializes a corpus.
    let mut mem_results = Vec::new();
    let mut sample_hwm = |name: &str| {
        if let Some(mb) = sno_bench::mem::peak_rss_mb() {
            mem_results.push(BenchResult {
                name: name.to_string(),
                iters_per_sample: 1,
                sample_ms: vec![mb],
            });
        }
    };
    let _ = ctx.streamed();
    sample_hwm("streamed_peak_rss_mb");
    // Force the corpora and pipeline once, outside the timing loops.
    let _ = ctx.report();
    let _ = ctx.atlas();
    sample_hwm("materialized_peak_rss_mb");

    let mut report = BenchReport::new();
    let mut group = bench_group("experiments");
    group.sample_size(5).warm_up_ms(50.0).sample_budget_ms(50.0);
    for (id, ..) in EXPERIMENTS {
        group.bench_function(*id, |b| {
            // sno-lint: allow(unwrap-in-lib): ids iterate the static EXPERIMENTS table
            b.iter(|| std::hint::black_box(run_experiment(&ctx, id).expect("known id")))
        });
    }
    report.push(group.finish());

    let mut group = bench_group("pipeline");
    group.sample_size(5).warm_up_ms(50.0).sample_budget_ms(50.0);
    let records = &ctx.mlab().records;
    group.bench_function("table1_pipeline_full", |b| {
        b.iter(|| std::hint::black_box(sno_core::pipeline::Pipeline::new().run(records)))
    });
    let generator = MlabGenerator::new(config.clone());
    let chunk_len = ctx.chunk_len();
    group.bench_function("table1_pipeline_streamed", |b| {
        b.iter(|| {
            std::hint::black_box(sno_core::pipeline::Pipeline::new().run_streamed(
                || generator.generate_chunks(chunk_len),
                sno_core::stream::StreamOptions::default(),
            ))
        })
    });
    let pipeline_group = group.finish();

    // Sessions/second through each pipeline path, derived from the
    // medians just measured. Not wall times — higher is better, so
    // `--bench-diff` gates this group in the opposite direction: it
    // fails when a drift-corrected rate drops more than the limit.
    let sessions = records.len() as f64;
    let mut throughput: Vec<BenchResult> = pipeline_group
        .results
        .iter()
        .filter(|r| r.median_ms() > 0.0)
        .map(|r| BenchResult {
            name: format!("{}_sessions_per_sec", r.name),
            iters_per_sample: 1,
            sample_ms: vec![sessions / (r.median_ms() / 1000.0)],
        })
        .collect();
    report.push(pipeline_group);

    // The online identification service: end-to-end chunked ingest into
    // a fresh identifier, full-replay snapshot latency on the loaded
    // state (the pre-incremental reference), and steady-state snapshot
    // latency — what a monitoring poll pays per report once the accept
    // state is warm. The steady/full ratio is the incremental payoff.
    let mut group = bench_group("online");
    group.sample_size(5).warm_up_ms(50.0).sample_budget_ms(50.0);
    group.bench_function("online_ingest", |b| {
        b.iter(|| std::hint::black_box(ingest_corpus(&generator, config.threads, chunk_len, 0).0))
    });
    let (loaded, _) = ingest_corpus(&generator, config.threads, chunk_len, 0);
    let online_opts = StreamOptions {
        operator_latencies: true,
        ..StreamOptions::default()
    };
    group.bench_function("online_snapshot", |b| {
        b.iter(|| std::hint::black_box(loaded.snapshot_full(online_opts)))
    });
    let mut steady = loaded.clone();
    let _ = steady.snapshot(online_opts);
    group.bench_function("online_snapshot_steady", |b| {
        b.iter(|| std::hint::black_box(steady.snapshot(online_opts)))
    });
    let online_group = group.finish();

    // Resident-log gauge: bytes held for replay after a snapshot-then-
    // compact cycle vs the uncompacted log (machine-independent, so it
    // rides in the raw-compared memory group).
    let mut compacted = loaded.clone();
    let _ = compacted.snapshot(online_opts);
    compacted.compact();
    for (name, bytes) in [
        ("online_log_mb", loaded.resident_log_bytes()),
        ("online_log_compacted_mb", compacted.resident_log_bytes()),
    ] {
        mem_results.push(BenchResult {
            name: name.to_string(),
            iters_per_sample: 1,
            sample_ms: vec![bytes as f64 / (1024.0 * 1024.0)],
        });
    }
    if let Some(ms) = online_group
        .results
        .iter()
        .find(|r| r.name == "online_ingest")
        .map(|r| r.median_ms())
        .filter(|&ms| ms > 0.0)
    {
        throughput.push(BenchResult {
            name: "online_ingest_sessions_per_sec".to_string(),
            iters_per_sample: 1,
            sample_ms: vec![sessions / (ms / 1000.0)],
        });
    }
    report.push(online_group);

    report.push(GroupReport {
        name: "throughput".to_string(),
        results: throughput,
    });

    // Serial vs pooled, same work: the pair documents what the worker
    // pool buys on this machine (and that it costs nothing when it
    // cannot help — the outputs are byte-identical by construction).
    let mut group = bench_group("scaling");
    group.sample_size(5).warm_up_ms(50.0).sample_budget_ms(50.0);
    let serial = SynthConfig {
        threads: 1,
        ..config.clone()
    };
    group.bench_function("mlab_generate_serial", |b| {
        b.iter(|| std::hint::black_box(MlabGenerator::new(serial.clone()).generate()))
    });
    group.bench_function("mlab_generate_pooled", |b| {
        b.iter(|| std::hint::black_box(MlabGenerator::new(config.clone()).generate()))
    });
    group.bench_function("pipeline_serial", |b| {
        b.iter(|| std::hint::black_box(sno_core::pipeline::Pipeline::with_threads(1).run(records)))
    });
    group.bench_function("pipeline_pooled", |b| {
        b.iter(|| {
            std::hint::black_box(
                sno_core::pipeline::Pipeline::with_threads(config.threads).run(records),
            )
        })
    });
    report.push(group.finish());

    report.push(GroupReport {
        name: "memory".to_string(),
        results: mem_results,
    });

    // Machine-speed reference for cross-snapshot drift correction; see
    // `run_bench_diff`.
    let mut group = bench_group("calibration");
    group.sample_size(5).warm_up_ms(50.0).sample_budget_ms(50.0);
    group.bench_function("spin", |b| {
        b.iter(|| std::hint::black_box(calibration_spin()))
    });
    report.push(group.finish());

    report.write_json(out_path).unwrap_or_else(|e| {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    });
    println!("wrote {out_path}");
}

/// `--bench-diff OLD NEW`: compare the benches the two snapshots share
/// and exit non-zero when any median regressed by more than
/// [`REGRESSION_LIMIT`] or when the NEW snapshot breaches an absolute
/// [`BUDGETS`] entry.
///
/// Snapshots are recorded on whatever machine CI lands on, so raw
/// medians are only comparable after correcting for machine speed:
/// the `calibration/spin` ratio between the two snapshots estimates
/// the drift, and wall-time changes are gated after dividing it out
/// ([`RAW_GROUPS`] stay raw — megabytes do not scale with the CPU).
/// When the baseline predates the calibration bench the relative
/// changes cannot be drift-corrected, so they are reported as advisory
/// only; the absolute budgets still gate.
fn run_bench_diff(old_path: &str, new_path: &str) -> ! {
    let load = |path: &str| {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        });
        BenchReport::parse_json(&text).unwrap_or_else(|e| {
            eprintln!("cannot parse {path}: {e}");
            std::process::exit(2);
        })
    };
    let old = load(old_path);
    let new = load(new_path);

    let spin_of = |snap: &[sno_check::bench::ParsedBench]| {
        snap.iter()
            .find(|b| b.group == "calibration" && b.name == "spin")
            .map(|b| b.median_ms)
            .filter(|&ms| ms > 0.0)
    };
    let drift = match (spin_of(&old), spin_of(&new)) {
        (Some(o), Some(n)) => {
            let d = n / o;
            println!("machine drift: calibration/spin {o:.4} -> {n:.4} ms (x{d:.3}); wall-time changes gated after dividing it out");
            Some(d)
        }
        _ => {
            println!(
                "note: {old_path} has no calibration bench — raw changes below are advisory \
                 (cross-machine medians are not comparable); budgets still gate"
            );
            None
        }
    };

    let mut compared = 0usize;
    let mut skipped = 0usize;
    let mut regressions = Vec::new();
    for b in &new {
        if DIFF_SKIP_GROUPS.contains(&b.group.as_str()) {
            continue;
        }
        let Some(base) = old.iter().find(|o| o.group == b.group && o.name == b.name) else {
            continue;
        };
        let throughput = THROUGHPUT_GROUPS.contains(&b.group.as_str());
        if !throughput && (base.median_ms < NOISE_FLOOR_MS || b.median_ms < NOISE_FLOOR_MS) {
            skipped += 1;
            continue;
        }
        compared += 1;
        let raw = b.median_ms / base.median_ms;
        // `slowdown` > 1 is worse, whatever the units: wall times divide
        // the drift out, throughputs multiply it in and invert (higher
        // is better), raw groups compare as-is.
        let slowdown = match drift {
            Some(d) if throughput => 1.0 / (raw * d),
            Some(d) if !RAW_GROUPS.contains(&b.group.as_str()) => raw / d,
            _ if throughput => 1.0 / raw,
            _ => raw,
        };
        let change = slowdown - 1.0;
        let units = if throughput { "sessions/s" } else { "ms" };
        println!(
            "{}/{:<32} {:>10.4} -> {:>10.4} {units}  (raw {:+.1}%, gated {:+.1}% {})",
            b.group,
            b.name,
            base.median_ms,
            b.median_ms,
            (raw - 1.0) * 100.0,
            change * 100.0,
            if throughput { "slower" } else { "change" },
        );
        if change > REGRESSION_LIMIT {
            regressions.push(format!(
                "{}/{}: {:.4} -> {:.4} {units} ({:+.1}% gated regression)",
                b.group,
                b.name,
                base.median_ms,
                b.median_ms,
                change * 100.0
            ));
        }
    }
    if skipped > 0 {
        println!("({skipped} sub-{NOISE_FLOOR_MS}ms benches skipped as timer noise)");
    }
    if compared == 0 {
        println!("warning: {old_path} and {new_path} share no comparable benches");
    }

    // Absolute budgets apply to the NEW snapshot regardless of what the
    // baseline looked like.
    let mut over_budget = Vec::new();
    for &(group, name, budget) in BUDGETS {
        let Some(b) = new.iter().find(|b| b.group == group && b.name == name) else {
            continue;
        };
        let within = b.median_ms <= budget;
        println!(
            "{group}/{name:<32} {:>10.4} ms  budget {budget:>7.1} ms  [{}]",
            b.median_ms,
            if within { "ok" } else { "OVER" },
        );
        if !within {
            over_budget.push(format!(
                "{group}/{name}: {:.4} ms exceeds the {budget:.1} ms budget",
                b.median_ms
            ));
        }
    }

    // Without a drift estimate the relative numbers cannot gate — an
    // identical binary on a slower box would "regress" everything — so
    // they stay advisory and only the budgets decide.
    if drift.is_none() && !regressions.is_empty() {
        println!(
            "advisory: {} bench(es) changed more than {:.0}% raw (not gated without calibration):",
            regressions.len(),
            REGRESSION_LIMIT * 100.0
        );
        for r in &regressions {
            println!("  {r}");
        }
        regressions.clear();
    }

    if regressions.is_empty() && over_budget.is_empty() {
        println!(
            "ok: no bench regressed more than {:.0}% and every budget holds",
            REGRESSION_LIMIT * 100.0
        );
        std::process::exit(0);
    }
    if !regressions.is_empty() {
        eprintln!(
            "FAIL: {} bench(es) regressed more than {:.0}%:",
            regressions.len(),
            REGRESSION_LIMIT * 100.0
        );
        for r in &regressions {
            eprintln!("  {r}");
        }
    }
    if !over_budget.is_empty() {
        eprintln!(
            "FAIL: {} bench(es) over their absolute budget:",
            over_budget.len()
        );
        for r in &over_budget {
            eprintln!("  {r}");
        }
    }
    std::process::exit(1);
}

/// The committed corpus of sweep seeds that ever failed. Relative to
/// the invocation directory (the repo root under `cargo run`).
const SWEEP_CORPUS: &str = "tests/corpora/sim_sweep.seeds";

/// `--sim-sweep`: the deterministic fault-injection campaign. Corpus
/// seeds (past failures) replay first, then `--seeds N` fresh seeds
/// derived from the fixed campaign id — the same list on every machine.
/// Any failing seed is appended to the corpus and printed as a replay
/// command; the process exits non-zero.
fn run_sim_sweep(seeds: usize, single: Option<u64>, threads: usize, quick: bool) -> ! {
    if let Some(seed) = single {
        let report = run_seed(seed, quick);
        println!(
            "replaying seed {seed} ({} mode)",
            if quick { "quick" } else { "full" }
        );
        for line in &report.summary {
            println!("  {line}");
        }
        println!("{}", report.render_line());
        for v in &report.violations {
            println!("    {v}");
        }
        std::process::exit(i32::from(!report.passed()));
    }

    let corpus: Vec<u64> = std::fs::read_to_string(SWEEP_CORPUS)
        .map_or_else(|_| Vec::new(), |s| sno_check::corpus::parse_seeds(&s));
    let mut all = corpus.clone();
    for s in SweepConfig::fresh_seeds(0, seeds) {
        if !all.contains(&s) {
            all.push(s);
        }
    }
    println!(
        "sim-sweep: {} corpus + {} fresh seeds, {} mode",
        corpus.len(),
        all.len() - corpus.len(),
        if quick { "quick" } else { "full" }
    );
    let report = run_sweep(&SweepConfig {
        seeds: all,
        threads,
        quick,
    });
    print!("{}", report.render());
    let failing = report.failing_seeds();
    for &s in &failing {
        if !corpus.contains(&s) {
            if let Err(e) = append_sweep_seed(s) {
                eprintln!("cannot record seed {s} in {SWEEP_CORPUS}: {e}");
            } else {
                println!("recorded seed {s} in {SWEEP_CORPUS}");
            }
        }
    }
    std::process::exit(i32::from(!failing.is_empty()));
}

/// Append one failing seed to [`SWEEP_CORPUS`], creating it on demand.
fn append_sweep_seed(seed: u64) -> std::io::Result<()> {
    use std::io::Write as _;
    if let Some(parent) = std::path::Path::new(SWEEP_CORPUS).parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(SWEEP_CORPUS)?;
    writeln!(file, "{seed}")
}

/// `--lint`: run the determinism & hermeticity pass over the workspace
/// rooted at the invocation directory (the repo root under `cargo run`)
/// and exit non-zero on any surviving diagnostic. The replay line makes
/// a CI failure reproducible with one paste.
fn run_lint(json: bool) -> ! {
    let report = match sno_lint::lint_workspace(std::path::Path::new(".")) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("repro --lint: cannot scan the workspace: {e}");
            std::process::exit(2);
        }
    };
    if json {
        print!("{}", report.render_json());
    } else {
        print!("{}", report.render_text());
    }
    if !report.passed() {
        eprintln!("replay locally with: cargo run --release -p sno-bench --bin repro -- --lint");
        std::process::exit(1);
    }
    std::process::exit(0);
}

/// Ingest the whole NDT stream into a fresh [`OnlineIdentifier`],
/// returning it plus the number of chunks delivered. `progress_every`
/// emits a stderr heartbeat each time that many records have been
/// absorbed (0 = silent) — record counts, never wall-clock, matching
/// the batch streamed path's `StreamOptions::progress_every`.
fn ingest_corpus(
    generator: &MlabGenerator,
    threads: usize,
    chunk_len: usize,
    progress_every: usize,
) -> (OnlineIdentifier, usize) {
    let mut online = OnlineIdentifier::new(Pipeline::with_threads(threads));
    let mut stream = generator.generate_chunks(chunk_len);
    let mut chunks = 0usize;
    let mut milestones = 0usize;
    while let Some(records) = stream.next_chunk() {
        online.ingest(&records);
        chunks += 1;
        if progress_every > 0 && online.ingested() / progress_every > milestones {
            milestones = online.ingested() / progress_every;
            eprintln!("    [online ingest] {} records", online.ingested());
        }
    }
    (online, chunks)
}

/// `--online`: drive the corpus chunk-by-chunk through the incremental
/// identifier and print its snapshot through the shared report renderer.
/// With `--verify-batch`, also run the batch streamed pipeline over the
/// same corpus and exit non-zero unless the online verdicts match
/// field-for-field and the two reports render byte-identically.
fn run_online(config: SynthConfig, chunk: Option<usize>, verify: bool, progress: usize) -> ! {
    let chunk_len = chunk.unwrap_or(sno_bench::context::DEFAULT_CHUNK_LEN);
    let opts = StreamOptions {
        operator_latencies: true,
        progress_every: progress,
        ..StreamOptions::default()
    };
    let generator = MlabGenerator::new(config.clone());
    let (mut online, chunks) = ingest_corpus(&generator, config.threads, chunk_len, progress);
    let resident_before = online.resident_log_bytes();
    let snapshot = online.snapshot(opts);
    online.compact();
    let text = streamed_report_text(&snapshot, config.scale);
    println!(
        "==== online: {} sessions ingested in {chunks} chunks of <= {chunk_len} ====",
        online.ingested()
    );
    println!(
        "resident log: {resident_before} bytes ingested -> {} bytes after snapshot+compact (epoch {})",
        online.resident_log_bytes(),
        online.accept_epoch()
    );
    print!("{text}");
    if !verify {
        std::process::exit(0);
    }

    let batch = Pipeline::with_threads(config.threads)
        .run_streamed(|| generator.generate_chunks(chunk_len), opts);
    let mut mismatches = Vec::new();
    if snapshot.records != batch.records {
        mismatches.push(format!(
            "record count: online {} vs batch {}",
            snapshot.records, batch.records
        ));
    }
    if snapshot.catalog != batch.catalog {
        mismatches.push("catalog (operator, sessions) rows differ".to_string());
    }
    if snapshot.thresholds != batch.thresholds
        || snapshot.default_threshold != batch.default_threshold
    {
        mismatches.push("relaxed thresholds differ".to_string());
    }
    if snapshot.latencies_by_operator != batch.latencies_by_operator {
        mismatches.push("per-operator latency samples differ".to_string());
    }
    let bits_differ = snapshot.bitmap.len() != batch.bitmap.len()
        || (0..snapshot.bitmap.len()).any(|i| snapshot.bitmap.get(i) != batch.bitmap.get(i));
    if bits_differ {
        mismatches.push(format!(
            "acceptance bitmap differs ({} vs {} accepted)",
            snapshot.bitmap.count_ones(),
            batch.bitmap.count_ones()
        ));
    }
    let batch_text = streamed_report_text(&batch, config.scale);
    if text != batch_text {
        mismatches.push("rendered reports are not byte-identical".to_string());
    }
    // The compacted identifier must keep answering byte-identically
    // from its folded state (the resident log is gone by now).
    let recompacted = online.snapshot(opts);
    if streamed_report_text(&recompacted, config.scale) != batch_text {
        mismatches.push("post-compaction snapshot diverges from the batch run".to_string());
    }
    if mismatches.is_empty() {
        println!("verify-batch: online == batch (verdicts and rendered report byte-identical)");
        std::process::exit(0);
    }
    eprintln!("FAIL: online snapshot diverges from the batch run:");
    for m in &mismatches {
        eprintln!("  {m}");
    }
    std::process::exit(1);
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();

    if args.iter().any(|a| a == "--lint") {
        run_lint(args.iter().any(|a| a == "--json"));
    }

    if args.iter().any(|a| a == "--list") {
        for (id, what, _) in EXPERIMENTS {
            println!("{id:<10} {what}");
        }
        return;
    }

    if let Some(pos) = args.iter().position(|a| a == "--bench-diff") {
        let (Some(old_path), Some(new_path)) = (args.get(pos + 1), args.get(pos + 2)) else {
            eprintln!("--bench-diff needs two snapshot paths, e.g. BENCH_1.json BENCH_2.json");
            std::process::exit(2);
        };
        run_bench_diff(old_path, new_path);
    }

    if args.iter().any(|a| a == "--sim-sweep") {
        let grab = |flag: &str| {
            args.iter()
                .position(|a| a == flag)
                .and_then(|pos| args.get(pos + 1))
                .map(|v| {
                    v.parse::<u64>().unwrap_or_else(|_| {
                        eprintln!("{flag} needs an unsigned integer, got {v:?}");
                        std::process::exit(2);
                    })
                })
        };
        let seeds = grab("--seeds").map_or(64, |n| n as usize);
        let single = grab("--seed");
        let threads = grab("--threads").map_or(0, |n| n as usize);
        let quick = args.iter().any(|a| a == "--quick");
        run_sim_sweep(seeds, single, threads, quick);
    }

    let bench = if let Some(pos) = args.iter().position(|a| a == "--bench") {
        args.remove(pos);
        true
    } else {
        false
    };
    let online = if let Some(pos) = args.iter().position(|a| a == "--online") {
        args.remove(pos);
        true
    } else {
        false
    };
    let verify_batch = if let Some(pos) = args.iter().position(|a| a == "--verify-batch") {
        args.remove(pos);
        true
    } else {
        false
    };
    if verify_batch && !online {
        eprintln!("--verify-batch only makes sense with --online");
        std::process::exit(2);
    }
    let bench_out = if let Some(pos) = args.iter().position(|a| a == "--bench-out") {
        let path = args.get(pos + 1).cloned().unwrap_or_else(|| {
            eprintln!("--bench-out needs a path");
            std::process::exit(2);
        });
        args.drain(pos..=pos + 1);
        path
    } else {
        next_bench_path()
    };

    // Benches default to the small test corpus so a full sweep stays
    // fast; `--scale` still overrides.
    let mut config = if bench {
        SynthConfig::test_corpus()
    } else {
        SynthConfig::default_corpus()
    };
    if let Some(pos) = args.iter().position(|a| a == "--scale") {
        let value = args
            .get(pos + 1)
            .and_then(|v| v.parse::<f64>().ok())
            .unwrap_or_else(|| {
                eprintln!("--scale needs a number, e.g. --scale 1e-2");
                std::process::exit(2);
            });
        config.scale = value;
        args.drain(pos..=pos + 1);
    }
    if let Some(pos) = args.iter().position(|a| a == "--threads") {
        let value = args
            .get(pos + 1)
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or_else(|| {
                eprintln!("--threads needs a count, e.g. --threads 4 (0 = all cores)");
                std::process::exit(2);
            });
        config.threads = value;
        args.drain(pos..=pos + 1);
    }
    let mut chunk: Option<usize> = None;
    if let Some(pos) = args.iter().position(|a| a == "--chunk") {
        let value = args
            .get(pos + 1)
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                eprintln!("--chunk needs a positive record count, e.g. --chunk 4096");
                std::process::exit(2);
            });
        chunk = Some(value);
        args.drain(pos..=pos + 1);
    }
    let mut progress = 0usize;
    if let Some(pos) = args.iter().position(|a| a == "--progress") {
        let value = args
            .get(pos + 1)
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or_else(|| {
                eprintln!("--progress needs a record count, e.g. --progress 500000 (0 = silent)");
                std::process::exit(2);
            });
        progress = value;
        args.drain(pos..=pos + 1);
    }

    if online {
        run_online(config, chunk, verify_batch, progress);
    }

    if bench {
        run_bench_mode(config, chunk, &bench_out);
        return;
    }

    let ctx = match chunk {
        Some(c) => ReproContext::with_chunk(config, c),
        None => ReproContext::with_config(config),
    }
    .with_progress(progress);
    let selected: Vec<&str> = if args.is_empty() {
        EXPERIMENTS.iter().map(|(id, ..)| *id).collect()
    } else {
        args.iter().map(String::as_str).collect()
    };

    for id in selected {
        match run_experiment(&ctx, id) {
            Some(output) => {
                let what = EXPERIMENTS
                    .iter()
                    .find(|(eid, ..)| *eid == id)
                    .map(|(_, w, _)| *w)
                    .unwrap_or("");
                println!("==== {id}: {what} ====");
                println!("{output}");
            }
            None => {
                eprintln!("unknown experiment '{id}' (try --list)");
                std::process::exit(2);
            }
        }
    }
}
