//! The reproduction harness: one function per table/figure of the paper,
//! each returning the rows/series as printable text. The `repro` binary
//! drives these; the Criterion benches time the underlying computations.

pub mod context;
pub mod experiments;
pub mod mem;

pub use context::{ReproContext, FIG4A_OPS};
pub use experiments::{run_experiment, streamed_report_text, EXPERIMENTS};
