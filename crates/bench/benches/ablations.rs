//! Ablation benches for the design choices DESIGN.md calls out:
//! PEP on/off, LEO handoff cadence, strict vs relaxed filtering, KDE
//! bandwidth rule, H1 vs H2 connection model. Each arm is a separate
//! benchmark so the relative cost (and, via printed summaries in
//! `repro`, the relative *effect*) of the mechanism is visible.
//!
//! Runs under the in-tree `sno-check` harness (`cargo bench -p
//! sno-bench --bench ablations`). Set `SNO_BENCH_JSON=<path>` to also
//! write a `BENCH_*.json`-style report.

use sno_check::bench::{bench_group, BenchReport};
use sno_netsim::path::{StaticPath, SteppedPath};
use sno_netsim::pep::PepMode;
use sno_netsim::tcp::{TcpConfig, TcpFlow};
use sno_stats::Kde;
use sno_types::Rng;
use std::hint::black_box;

fn main() {
    let mut report = BenchReport::new();

    // Figure 4c's mechanism: the same GEO path with and without a PEP.
    let geo = StaticPath {
        rtt_ms: 620.0,
        loss: 0.02,
        rate_mbps: 20.0,
        buffer_ms: 300.0,
    };
    let mut group = bench_group("ablation_pep");
    group
        .sample_size(20)
        .warm_up_ms(300.0)
        .sample_budget_ms(100.0);
    for (label, pep) in [
        ("geo_no_pep", PepMode::None),
        ("geo_with_pep", PepMode::typical()),
    ] {
        group.bench_function(label, |b| {
            let flow = TcpFlow::new(TcpConfig {
                pep,
                ..TcpConfig::ndt()
            });
            let mut rng = Rng::new(42);
            b.iter(|| black_box(flow.run(black_box(&geo), 0.0, &mut rng)))
        });
    }
    report.push(group.finish());

    // Figure 4b's mechanism: LEO with and without the 15-second handoff
    // cadence (a stepped vs a flat RTT schedule).
    let stepped = SteppedPath {
        steps: (1..40)
            .map(|k| (k as f64 * 15.0, 48.0 + ((k * 7) % 5) as f64 * 2.5))
            .collect(),
        loss: 1e-4,
        rate_mbps: 100.0,
        handoff_loss: 0.1,
    };
    let flat = StaticPath {
        rtt_ms: 52.0,
        loss: 1e-4,
        rate_mbps: 100.0,
        buffer_ms: 45.0,
    };
    let mut group = bench_group("ablation_handoff");
    group
        .sample_size(20)
        .warm_up_ms(300.0)
        .sample_budget_ms(100.0);
    group.bench_function("leo_with_handoffs", |b| {
        let flow = TcpFlow::new(TcpConfig::ndt());
        let mut rng = Rng::new(7);
        b.iter(|| black_box(flow.run(black_box(&stepped), 0.0, &mut rng)))
    });
    group.bench_function("leo_without_handoffs", |b| {
        let flow = TcpFlow::new(TcpConfig::ndt());
        let mut rng = Rng::new(7);
        b.iter(|| black_box(flow.run(black_box(&flat), 0.0, &mut rng)))
    });
    report.push(group.finish());

    // KDE bandwidth rule: Silverman vs fixed bandwidths, on a Figure-2
    // style bimodal latency sample.
    let mut rng = Rng::new(11);
    let sample: Vec<f64> = (0..2_000)
        .map(|i| {
            if i % 2 == 0 {
                rng.normal_with(280.0, 25.0)
            } else {
                rng.normal_with(680.0, 45.0)
            }
        })
        .collect();
    let mut group = bench_group("ablation_kde_bandwidth");
    group
        .sample_size(20)
        .warm_up_ms(300.0)
        .sample_budget_ms(100.0);
    group.bench_function("silverman", |b| {
        b.iter(|| {
            let kde = Kde::fit(black_box(&sample)).expect("non-empty");
            black_box(kde.modes_on_grid(0.0, 1_000.0, 400, 0.2))
        })
    });
    for bw in [5.0, 40.0, 120.0] {
        group.bench_function(format!("fixed_{bw}"), |b| {
            b.iter(|| {
                let kde = Kde::fit_with_bandwidth(black_box(&sample), bw).expect("valid");
                black_box(kde.modes_on_grid(0.0, 1_000.0, 400, 0.2))
            })
        });
    }
    report.push(group.finish());

    if let Ok(path) = std::env::var("SNO_BENCH_JSON") {
        report.write_json(&path).expect("write bench JSON");
        println!("wrote {path}");
    }
}
