//! Ablation benches for the design choices DESIGN.md calls out:
//! PEP on/off, LEO handoff cadence, strict vs relaxed filtering, KDE
//! bandwidth rule, H1 vs H2 connection model. Each arm is a separate
//! Criterion benchmark so the relative cost (and, via printed summaries
//! in `repro`, the relative *effect*) of the mechanism is visible.

use criterion::{criterion_group, criterion_main, Criterion};
use sno_netsim::path::StaticPath;
use sno_netsim::pep::PepMode;
use sno_netsim::tcp::{TcpConfig, TcpFlow};
use sno_stats::Kde;
use sno_types::Rng;
use std::hint::black_box;

/// Figure 4c's mechanism: the same GEO path with and without a PEP.
fn pep_ablation(c: &mut Criterion) {
    let geo = StaticPath { rtt_ms: 620.0, loss: 0.02, rate_mbps: 20.0, buffer_ms: 300.0 };
    let mut group = c.benchmark_group("ablation_pep");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(3));
    for (label, pep) in [("geo_no_pep", PepMode::None), ("geo_with_pep", PepMode::typical())] {
        group.bench_function(label, |b| {
            let flow = TcpFlow::new(TcpConfig { pep, ..TcpConfig::ndt() });
            let mut rng = Rng::new(42);
            b.iter(|| black_box(flow.run(black_box(&geo), 0.0, &mut rng)))
        });
    }
    group.finish();
}

/// Figure 4b's mechanism: LEO with and without the 15-second handoff
/// cadence (a stepped vs a flat RTT schedule).
fn handoff_ablation(c: &mut Criterion) {
    use sno_netsim::path::SteppedPath;
    let stepped = SteppedPath {
        steps: (1..40)
            .map(|k| (k as f64 * 15.0, 48.0 + ((k * 7) % 5) as f64 * 2.5))
            .collect(),
        loss: 1e-4,
        rate_mbps: 100.0,
        handoff_loss: 0.1,
    };
    let flat = StaticPath { rtt_ms: 52.0, loss: 1e-4, rate_mbps: 100.0, buffer_ms: 45.0 };
    let mut group = c.benchmark_group("ablation_handoff");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.bench_function("leo_with_handoffs", |b| {
        let flow = TcpFlow::new(TcpConfig::ndt());
        let mut rng = Rng::new(7);
        b.iter(|| black_box(flow.run(black_box(&stepped), 0.0, &mut rng)))
    });
    group.bench_function("leo_without_handoffs", |b| {
        let flow = TcpFlow::new(TcpConfig::ndt());
        let mut rng = Rng::new(7);
        b.iter(|| black_box(flow.run(black_box(&flat), 0.0, &mut rng)))
    });
    group.finish();
}

/// KDE bandwidth rule: Silverman vs fixed bandwidths, on a Figure-2
/// style bimodal latency sample.
fn kde_bandwidth_ablation(c: &mut Criterion) {
    let mut rng = Rng::new(11);
    let sample: Vec<f64> = (0..2_000)
        .map(|i| {
            if i % 2 == 0 {
                rng.normal_with(280.0, 25.0)
            } else {
                rng.normal_with(680.0, 45.0)
            }
        })
        .collect();
    let mut group = c.benchmark_group("ablation_kde_bandwidth");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.bench_function("silverman", |b| {
        b.iter(|| {
            let kde = Kde::fit(black_box(&sample)).expect("non-empty");
            black_box(kde.modes_on_grid(0.0, 1_000.0, 400, 0.2))
        })
    });
    for bw in [5.0, 40.0, 120.0] {
        group.bench_function(format!("fixed_{bw}"), |b| {
            b.iter(|| {
                let kde = Kde::fit_with_bandwidth(black_box(&sample), bw).expect("valid");
                black_box(kde.modes_on_grid(0.0, 1_000.0, 400, 0.2))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, pep_ablation, handoff_ablation, kde_bandwidth_ablation);
criterion_main!(benches);
