//! Per-experiment benches: one per table/figure, timing the computation
//! that regenerates it (corpus generation is amortised into a shared,
//! lazily-built context so each bench measures its own analysis).
//!
//! Runs under the in-tree `sno-check` harness (`cargo bench -p
//! sno-bench --bench experiments`). Set `SNO_BENCH_JSON=<path>` to also
//! write a `BENCH_*.json`-style report.

use sno_bench::{run_experiment, ReproContext};
use sno_check::bench::{bench_group, BenchReport};
use sno_synth::SynthConfig;
use std::hint::black_box;
use std::sync::OnceLock;

fn ctx() -> &'static ReproContext {
    static CTX: OnceLock<ReproContext> = OnceLock::new();
    CTX.get_or_init(|| {
        let ctx = ReproContext::with_config(SynthConfig::test_corpus());
        // Force the corpora and pipeline once, outside the timing loops.
        let _ = ctx.report();
        let _ = ctx.atlas();
        ctx
    })
}

fn main() {
    let mut report = BenchReport::new();

    // One bench per experiment id, named after the table/figure.
    let ids = [
        "table1", "table2", "table3", "fig1", "fig2", "fig3a", "fig3b", "fig3c", "fig4a", "fig4b",
        "fig4c", "fig5", "fig6a", "fig6b", "fig6c", "fig7", "fig8a", "fig8b", "fig9", "fig10a",
        "fig10b", "fig10c", "fig11", "fig12", "fig13", "fig14", "coverage",
    ];
    let mut group = bench_group("experiments");
    group
        .sample_size(10)
        .warm_up_ms(500.0)
        .sample_budget_ms(100.0);
    for id in ids {
        group.bench_function(id, |b| {
            b.iter(|| black_box(run_experiment(ctx(), black_box(id)).expect("known id")))
        });
    }
    report.push(group.finish());

    // The identification pipeline end-to-end (Table 1's engine).
    let records = &ctx().mlab().records;
    let mut group = bench_group("pipeline");
    group
        .sample_size(10)
        .warm_up_ms(500.0)
        .sample_budget_ms(100.0);
    group.bench_function("table1_pipeline_full", |b| {
        b.iter(|| black_box(sno_core::pipeline::Pipeline::new().run(black_box(records))))
    });
    report.push(group.finish());

    if let Ok(path) = std::env::var("SNO_BENCH_JSON") {
        report.write_json(&path).expect("write bench JSON");
        println!("wrote {path}");
    }
}
