//! Criterion benches: one per table/figure, timing the computation that
//! regenerates it (corpus generation is amortised into a shared,
//! lazily-built context so each bench measures its own analysis).

use criterion::{criterion_group, criterion_main, Criterion};
use sno_bench::{run_experiment, ReproContext};
use sno_synth::SynthConfig;
use std::hint::black_box;
use std::sync::OnceLock;

fn ctx() -> &'static ReproContext {
    static CTX: OnceLock<ReproContext> = OnceLock::new();
    CTX.get_or_init(|| {
        let ctx = ReproContext::with_config(SynthConfig::test_corpus());
        // Force the corpora and pipeline once, outside the timing loops.
        let _ = ctx.report();
        let _ = ctx.atlas();
        ctx
    })
}

/// One bench per experiment id, named after the table/figure.
fn experiment_benches(c: &mut Criterion) {
    let ids = [
        "table1", "table2", "table3", "fig1", "fig2", "fig3a", "fig3b", "fig3c",
        "fig4a", "fig4b", "fig4c", "fig5", "fig6a", "fig6b", "fig6c", "fig7",
        "fig8a", "fig8b", "fig9", "fig10a", "fig10b", "fig10c", "fig11", "fig12",
        "fig13", "fig14", "coverage",
    ];
    let mut group = c.benchmark_group("experiments");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    for id in ids {
        group.bench_function(id, |b| {
            b.iter(|| black_box(run_experiment(ctx(), black_box(id)).expect("known id")))
        });
    }
    group.finish();
}

/// The identification pipeline end-to-end (Table 1's engine).
fn pipeline_bench(c: &mut Criterion) {
    let records = &ctx().mlab().records;
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    group.bench_function("table1_pipeline_full", |b| {
        b.iter(|| {
            black_box(sno_core::pipeline::Pipeline::new().run(black_box(records)))
        })
    });
    group.finish();
}

criterion_group!(benches, experiment_benches, pipeline_bench);
criterion_main!(benches);
