//! A hand-rolled Rust lexer, just deep enough for linting.
//!
//! The rules in this crate match *token* patterns, so the lexer's one
//! job is to never confuse code with non-code: line and block comments
//! (nested), string literals (with escapes), raw strings (any number of
//! `#`s), byte and raw-byte strings, char literals, lifetimes, raw
//! identifiers (`r#type`), and a leading shebang line must all be
//! recognised so that `"SystemTime::now"` inside a string or a pragma
//! spelled inside a comment never count as code — and vice versa. It is
//! byte-oriented, never panics on malformed input (unterminated
//! literals simply run to end of file), and tracks both the 1-based
//! line and the byte span of every token so the item parser
//! ([`crate::parse`]) can recover source extents.

/// What a token is. Contents are kept where a rule needs to look at
/// them (identifiers, numeric and string literals).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (raw identifiers lose their `r#` prefix).
    Ident(String),
    /// Integer literal, suffix and underscores included (`0x5A`, `3u64`).
    Int(String),
    /// Float literal (`1.5`, `2.0e3`).
    Float(String),
    /// String literal of any flavour (`".."`, `r#".."#`, `b".."`).
    Str(String),
    /// Char or byte-char literal (`'a'`, `'\n'`, `b'x'`).
    Char(String),
    /// Lifetime (`'a`, `'static`, `'_`), name without the quote.
    Lifetime(String),
    /// Any other single significant character (`.`, `(`, `#`, ...).
    Punct(char),
}

/// One significant token with its source line and byte span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    /// 1-based line the token starts on.
    pub line: u32,
    /// Byte offset of the token's first byte (raw identifiers include
    /// their `r#` prefix).
    pub lo: usize,
    /// Byte offset one past the token's last byte.
    pub hi: usize,
}

impl Token {
    /// Whether this token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        matches!(&self.kind, TokenKind::Ident(s) if s == name)
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }

    /// The identifier text, if this token is one.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }
}

/// One comment with its source position; comments are not tokens (rules
/// never match inside them) but carry the lint pragmas.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// Full comment text including the `//` or `/*` introducer.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Whether the comment is the first non-whitespace on its line
    /// (a pragma on its own line targets the *next* line; a trailing
    /// pragma targets its own).
    pub own_line: bool,
}

/// The lexer's output: significant tokens plus comments, in order.
#[derive(Debug, Clone, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

/// Lex `src`. Total: consumes every byte, never panics, and degrades
/// gracefully on malformed input (an unterminated literal or block
/// comment swallows the rest of the file, which is the safe direction
/// for a linter — nothing after it is misread as code).
pub fn lex(src: &str) -> Lexed {
    Lexer {
        b: src.as_bytes(),
        i: 0,
        line: 1,
        line_has_code: false,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer<'a> {
    b: &'a [u8],
    i: usize,
    line: u32,
    /// Whether any token appeared on the current line so far.
    line_has_code: bool,
    out: Lexed,
}

impl Lexer<'_> {
    fn run(mut self) -> Lexed {
        // A leading shebang (`#!/usr/bin/env ...`) is not Rust tokens;
        // skip to its newline. `#![inner_attr]` is real code and stays.
        if self.b.starts_with(b"#!") && self.peek(2) != Some(b'[') {
            while self.i < self.b.len() && self.b[self.i] != b'\n' {
                self.i += 1;
            }
        }
        while self.i < self.b.len() {
            let c = self.b[self.i];
            match c {
                b'\n' => {
                    self.line += 1;
                    self.line_has_code = false;
                    self.i += 1;
                }
                c if c.is_ascii_whitespace() => self.i += 1,
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string(0),
                b'\'' => self.char_or_lifetime(),
                b'r' | b'b' => {
                    if !self.raw_or_byte_prefix() {
                        self.ident(self.i);
                    }
                }
                c if c.is_ascii_digit() => self.number(),
                c if is_ident_start(c) => self.ident(self.i),
                c => {
                    let lo = self.i;
                    self.i += 1;
                    self.push_token(TokenKind::Punct(c as char), lo);
                }
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.b.get(self.i + ahead).copied()
    }

    /// Push a token spanning `lo..self.i` on the current line.
    fn push_token(&mut self, kind: TokenKind, lo: usize) {
        self.push_token_at(kind, lo, self.line);
    }

    fn push_token_at(&mut self, kind: TokenKind, lo: usize, line: u32) {
        self.out.tokens.push(Token {
            kind,
            line,
            lo,
            hi: self.i.min(self.b.len()),
        });
        self.line_has_code = true;
    }

    /// Slice back out of the source as a (lossily decoded) string.
    fn text(&self, start: usize, end: usize) -> String {
        String::from_utf8_lossy(&self.b[start..end]).into_owned()
    }

    fn line_comment(&mut self) {
        let start = self.i;
        let line = self.line;
        let own_line = !self.line_has_code;
        while self.i < self.b.len() && self.b[self.i] != b'\n' {
            self.i += 1;
        }
        self.out.comments.push(Comment {
            text: self.text(start, self.i),
            line,
            own_line,
        });
    }

    fn block_comment(&mut self) {
        let start = self.i;
        let line = self.line;
        let own_line = !self.line_has_code;
        self.i += 2;
        let mut depth = 1u32;
        while self.i < self.b.len() && depth > 0 {
            if self.b[self.i] == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.i += 2;
            } else if self.b[self.i] == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.i += 2;
            } else {
                if self.b[self.i] == b'\n' {
                    self.line += 1;
                }
                self.i += 1;
            }
        }
        self.out.comments.push(Comment {
            text: self.text(start, self.i),
            line,
            own_line,
        });
    }

    /// A `"`-delimited string starting at `self.i` (which must point at
    /// the opening quote). `prefix_start_back` bytes of prefix (e.g. the
    /// `b` of a byte string) were already consumed by the caller.
    fn string(&mut self, prefix_start_back: usize) {
        let start = self.i - prefix_start_back;
        let line = self.line;
        self.i += 1; // opening quote
        while self.i < self.b.len() {
            match self.b[self.i] {
                b'\\' => self.i += 2, // escape: skip the escaped byte too
                b'"' => {
                    self.i += 1;
                    break;
                }
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                _ => self.i += 1,
            }
        }
        let end = self.i.min(self.b.len());
        let text = self.text(start, end);
        self.push_token_at(TokenKind::Str(text), start, line);
    }

    /// Raw string body: `self.i` points at the first `#` or the `"`.
    /// `start` is where the whole literal began (at the `r`/`b`).
    fn raw_string(&mut self, start: usize) {
        let line = self.line;
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.i += 1;
        }
        self.i += 1; // opening quote (caller guaranteed it)
        loop {
            match self.peek(0) {
                None => break,
                Some(b'"') => {
                    // Close only when followed by exactly `hashes` #s.
                    let mut ok = true;
                    for k in 0..hashes {
                        if self.peek(1 + k) != Some(b'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        self.i += 1 + hashes;
                        break;
                    }
                    self.i += 1;
                }
                Some(b'\n') => {
                    self.line += 1;
                    self.i += 1;
                }
                Some(_) => self.i += 1,
            }
        }
        let end = self.i.min(self.b.len());
        let text = self.text(start, end);
        self.push_token_at(TokenKind::Str(text), start, line);
    }

    /// Dispatch the `r`/`b` prefix forms: raw strings `r".."`/`r#".."#`,
    /// byte strings `b".."`, raw byte strings `br#".."#`, byte chars
    /// `b'x'`, and raw identifiers `r#ident` (lexed as plain identifiers
    /// without the prefix, spanning the whole `r#ident`). Returns false
    /// when the `r`/`b` is just the start of an ordinary identifier.
    fn raw_or_byte_prefix(&mut self) -> bool {
        let start = self.i;
        let c = self.b[self.i];
        if c == b'r' {
            match self.peek(1) {
                Some(b'"') => {
                    self.i += 1;
                    self.raw_string(start);
                    true
                }
                Some(b'#') => {
                    // Count the #s after the `r`: `r##..#"` opens a raw
                    // string; exactly one # followed by an identifier
                    // start is the raw identifier `r#ident`.
                    let mut k = 1;
                    while self.peek(k) == Some(b'#') {
                        k += 1;
                    }
                    if self.peek(k) == Some(b'"') {
                        self.i += 1;
                        self.raw_string(start);
                        return true;
                    }
                    if k == 2 {
                        if let Some(c2) = self.peek(2) {
                            if is_ident_start(c2) {
                                self.i += 2; // past r#
                                self.ident(start);
                                return true;
                            }
                        }
                    }
                    false
                }
                _ => false,
            }
        } else {
            // c == b'b'
            match self.peek(1) {
                Some(b'"') => {
                    self.i += 1;
                    self.string(1);
                    true
                }
                Some(b'\'') => {
                    self.i += 1;
                    self.byte_char(start);
                    true
                }
                Some(b'r') => {
                    let mut k = 2;
                    while self.peek(k) == Some(b'#') {
                        k += 1;
                    }
                    if self.peek(k) == Some(b'"') {
                        self.i += 2; // past br
                        self.raw_string(start);
                        true
                    } else {
                        false
                    }
                }
                _ => false,
            }
        }
    }

    /// `b'x'` — byte char; `self.i` points at the quote.
    fn byte_char(&mut self, start: usize) {
        let line = self.line;
        self.i += 1;
        if self.peek(0) == Some(b'\\') {
            self.i += 2;
        } else if self.peek(0).is_some() {
            self.i += 1;
        }
        if self.peek(0) == Some(b'\'') {
            self.i += 1;
        }
        let end = self.i.min(self.b.len());
        let text = self.text(start, end);
        self.push_token_at(TokenKind::Char(text), start, line);
    }

    /// `'` starts either a char literal or a lifetime. The discriminator
    /// is Rust's own: `'` + escape is a char, `'` + identifier + `'` is
    /// a char (`'a'`), and `'` + identifier *not* followed by a closing
    /// quote is a lifetime (`'a`, `'static`, `'_`).
    fn char_or_lifetime(&mut self) {
        let start = self.i;
        let line = self.line;
        self.i += 1;
        match self.peek(0) {
            Some(b'\\') => {
                // Escaped char literal: skip escape (clamped — the file
                // may end mid-escape), then to closing quote.
                self.i = (self.i + 2).min(self.b.len());
                while self.i < self.b.len() && self.b[self.i] != b'\'' {
                    if self.b[self.i] == b'\n' {
                        // Malformed; don't swallow the file.
                        break;
                    }
                    self.i += 1;
                }
                if self.peek(0) == Some(b'\'') {
                    self.i += 1;
                }
                let text = self.text(start, self.i);
                self.push_token_at(TokenKind::Char(text), start, line);
            }
            Some(c) if is_ident_start(c) => {
                let name_start = self.i;
                while self.i < self.b.len() && is_ident_continue(self.b[self.i]) {
                    self.i += 1;
                }
                if self.peek(0) == Some(b'\'') {
                    // 'a' — char literal.
                    self.i += 1;
                    let text = self.text(start, self.i);
                    self.push_token_at(TokenKind::Char(text), start, line);
                } else {
                    let name = self.text(name_start, self.i);
                    self.push_token_at(TokenKind::Lifetime(name), start, line);
                }
            }
            Some(_) => {
                // 'x' for non-ident x (e.g. '(' as a char literal).
                self.i += 1;
                if self.peek(0) == Some(b'\'') {
                    self.i += 1;
                }
                let text = self.text(start, self.i);
                self.push_token_at(TokenKind::Char(text), start, line);
            }
            None => {
                self.push_token_at(TokenKind::Punct('\''), start, line);
            }
        }
        self.line_has_code = true;
    }

    fn number(&mut self) {
        let start = self.i;
        let mut saw_dot = false;
        while self.i < self.b.len() {
            let c = self.b[self.i];
            if c.is_ascii_alphanumeric() || c == b'_' {
                self.i += 1;
            } else if c == b'.' && !saw_dot && self.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                // `1.5` is a float; `1.max(..)` and `0..n` are not.
                saw_dot = true;
                self.i += 1;
            } else {
                break;
            }
        }
        let text = self.text(start, self.i);
        let kind = if saw_dot {
            TokenKind::Float(text)
        } else {
            TokenKind::Int(text)
        };
        self.push_token(kind, start);
    }

    /// Lex an identifier whose token span starts at `lo` (which differs
    /// from the first name byte only for raw identifiers).
    fn ident(&mut self, lo: usize) {
        let start = self.i;
        while self.i < self.b.len() && is_ident_continue(self.b[self.i]) {
            self.i += 1;
        }
        let text = self.text(start, self.i);
        self.push_token(TokenKind::Ident(text), lo);
    }
}

/// ASCII identifier-start (non-ASCII bytes are accepted as identifier
/// characters so Unicode identifiers lex as one token instead of
/// panicking or splitting).
fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_' || c >= 0x80
}

fn is_ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_' || c >= 0x80
}
