//! The item indexer: a lightweight recursive parser over the lexer's
//! token stream that recovers the item tree of one source file.
//!
//! The token-pattern rules of PR 4 could only see one line at a time;
//! the flow-aware rules (`panic-reachable`, `rng-escape`,
//! `float-fold-order`) need to know *which function* a token belongs
//! to, whether that function is test-gated, and what the file imports.
//! This parser recovers exactly that much structure — `mod` / `fn` /
//! `impl` / `trait` / `use` / type definitions with byte spans,
//! visibility, and `#[cfg(test)]` / `#[test]` attribution — and nothing
//! more: bodies of functions are kept as raw token ranges for the call
//! scanner, expressions are never parsed.
//!
//! Totality contract (property-tested in `tests/selftest.rs`): the
//! parser never panics on any token stream, always terminates, and the
//! byte spans it assigns are well-nested — children inside parents,
//! siblings disjoint and in source order — so the spans plus the gaps
//! between them form a partition of the file ([`span_partition`]).

use crate::lexer::{Lexed, Token, TokenKind};

/// What kind of item a node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    Mod,
    Fn,
    Impl,
    Trait,
    Use,
    Struct,
    Enum,
    Union,
    Const,
    Static,
    TypeAlias,
    MacroDef,
    ExternCrate,
    ExternBlock,
}

/// One item recovered from the token stream.
#[derive(Debug, Clone)]
pub struct Item {
    pub kind: ItemKind,
    /// The item's own name (`fn name`, `mod name`, …). For `impl`
    /// blocks this is the self type's last path segment; empty when the
    /// item is anonymous or the name was unparseable.
    pub name: String,
    /// Whether the item carries any `pub` qualifier.
    pub is_pub: bool,
    /// Whether the item is `#[test]`- or `#[cfg(test)]`-gated, directly
    /// or by inheritance from an enclosing item.
    pub is_test: bool,
    /// 1-based line of the item's name (or introducing keyword).
    pub line: u32,
    /// Byte span: first byte of the leading attribute (or keyword) to
    /// one past the terminating `;` / `}`.
    pub lo: usize,
    pub hi: usize,
    /// Token index span covering the same extent (exclusive hi).
    pub tok_lo: usize,
    pub tok_hi: usize,
    /// For items with a brace-delimited body whose *contents* matter to
    /// a rule (`fn` bodies feed the call scanner): the token index range
    /// strictly inside the braces.
    pub body: Option<(usize, usize)>,
    /// Child items (indices into [`ItemTree::items`]), in source order.
    /// Populated for `mod` / `impl` / `trait` bodies.
    pub children: Vec<usize>,
}

/// One `use` alias the file declares: `use a::b::c;` binds `c`,
/// `use a::b as d;` binds `d`. Globs are recorded with alias `*`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UseAlias {
    /// The name the import binds in this file.
    pub alias: String,
    /// Full path segments as written (`["a", "b", "c"]`).
    pub path: Vec<String>,
}

/// The parsed file: a flat item arena plus the roots, in source order.
#[derive(Debug, Clone, Default)]
pub struct ItemTree {
    pub items: Vec<Item>,
    /// Top-level item indices, in source order.
    pub root: Vec<usize>,
    /// Every `use` alias in the file (any nesting level).
    pub uses: Vec<UseAlias>,
}

impl ItemTree {
    /// Walk every item depth-first in source order.
    pub fn walk(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.items.len());
        let mut stack: Vec<usize> = self.root.iter().rev().copied().collect();
        while let Some(id) = stack.pop() {
            out.push(id);
            for &c in self.items[id].children.iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// Mark every token covered by a test-gated item. This is the
    /// successor of the PR 4 attr-region heuristic: attribution now
    /// follows the item tree, so a `#[cfg(test)]` on a `mod` covers
    /// everything inside it and nothing after it.
    pub fn test_mask(&self, token_count: usize) -> Vec<bool> {
        let mut mask = vec![false; token_count];
        for id in self.walk() {
            let it = &self.items[id];
            if it.is_test {
                for m in mask
                    .iter_mut()
                    .take(it.tok_hi.min(token_count))
                    .skip(it.tok_lo)
                {
                    *m = true;
                }
            }
        }
        mask
    }
}

/// Nesting depth beyond which bodies are consumed without recursing
/// (a backstop for pathological token soup; real code never gets here).
const MAX_DEPTH: usize = 64;

/// Parse the item tree of one lexed file. Total: never panics, and the
/// resulting spans are well-nested (see module docs).
pub fn parse(lexed: &Lexed) -> ItemTree {
    let mut p = Parser {
        toks: &lexed.tokens,
        tree: ItemTree::default(),
    };
    let hi = lexed.tokens.len();
    let root = p.parse_items(0, hi, false, 0);
    p.tree.root = root;
    p.tree
}

struct Parser<'a> {
    toks: &'a [Token],
    tree: ItemTree,
}

impl Parser<'_> {
    fn ident_at(&self, i: usize) -> Option<&str> {
        self.toks.get(i).and_then(|t| t.ident())
    }

    fn punct_at(&self, i: usize, c: char) -> bool {
        self.toks.get(i).is_some_and(|t| t.is_punct(c))
    }

    /// Index one past the delimiter matching `open_c` at `open` (which
    /// must point at an `open_c` token), clamped to `hi`. Unmatched
    /// delimiters consume to `hi`.
    fn after_matching(&self, open: usize, hi: usize, open_c: char, close_c: char) -> usize {
        let mut depth = 0i64;
        let mut i = open;
        while i < hi {
            if self.toks[i].is_punct(open_c) {
                depth += 1;
            } else if self.toks[i].is_punct(close_c) {
                depth -= 1;
                if depth <= 0 {
                    return i + 1;
                }
            }
            i += 1;
        }
        hi
    }

    /// Scan from `pos` for an item terminator: one past a `;` at brace
    /// depth 0, or one past the `}` closing the first brace opened at
    /// depth 0. Returns `(end_exclusive, body_range)` where the body is
    /// the token range strictly inside those braces, if any.
    fn item_extent(&self, pos: usize, hi: usize) -> (usize, Option<(usize, usize)>) {
        let mut i = pos;
        let (mut paren, mut bracket) = (0i64, 0i64);
        while i < hi {
            let t = &self.toks[i];
            match &t.kind {
                TokenKind::Punct('(') => paren += 1,
                TokenKind::Punct('[') => bracket += 1,
                TokenKind::Punct(')') => {
                    paren -= 1;
                    if paren < 0 {
                        return (i.max(pos + 1), None);
                    }
                }
                TokenKind::Punct(']') => {
                    bracket -= 1;
                    if bracket < 0 {
                        return (i.max(pos + 1), None);
                    }
                }
                // `;` inside `[u8; 4]` or a paren group is not a
                // terminator.
                TokenKind::Punct(';') if paren == 0 && bracket == 0 => {
                    return (i + 1, None);
                }
                TokenKind::Punct('{') if paren == 0 && bracket == 0 => {
                    let end = self.after_matching(i, hi, '{', '}');
                    let body_hi = if end > i + 1 { end - 1 } else { i + 1 };
                    return (end, Some((i + 1, body_hi)));
                }
                // A stray closer means the item is malformed; stop
                // before it so the enclosing level can resynchronise.
                TokenKind::Punct('}') if paren == 0 && bracket == 0 => {
                    return (i.max(pos + 1), None);
                }
                _ => {}
            }
            i += 1;
        }
        (hi, None)
    }

    /// Parse the items in `toks[lo..hi]`, returning their indices in
    /// source order. Tokens that do not start an item are skipped (they
    /// become gap bytes in the partition).
    fn parse_items(
        &mut self,
        lo: usize,
        hi: usize,
        inherited_test: bool,
        depth: usize,
    ) -> Vec<usize> {
        let mut out = Vec::new();
        let mut pos = lo;
        while pos < hi {
            match self.parse_item(pos, hi, inherited_test, depth) {
                Some((id, end)) => {
                    out.push(id);
                    pos = end.max(pos + 1);
                }
                None => pos += 1,
            }
        }
        out
    }

    /// Try to parse one item starting at `pos`. Returns the item index
    /// and the exclusive token end, or `None` when `pos` does not start
    /// an item.
    fn parse_item(
        &mut self,
        pos: usize,
        hi: usize,
        inherited_test: bool,
        depth: usize,
    ) -> Option<(usize, usize)> {
        let start = pos;
        let mut i = pos;
        let mut is_test = inherited_test;

        // Leading outer attributes: `#[..]` (inner `#![..]` attributes
        // never introduce an item; the caller skips them as gap).
        while self.punct_at(i, '#') && self.punct_at(i + 1, '[') {
            let end = self.after_matching(i + 1, hi, '[', ']');
            // An unterminated attribute consumes to `hi`; keep the
            // inspected slice well-formed (lo can pass a collapsed end).
            let attr_lo = (i + 2).min(end);
            if attr_is_test(&self.toks[attr_lo..end.saturating_sub(1).max(attr_lo)]) {
                is_test = true;
            }
            i = end;
        }

        // Visibility: `pub`, `pub(crate)`, `pub(in a::b)`.
        let mut is_pub = false;
        if self.ident_at(i) == Some("pub") {
            is_pub = true;
            i += 1;
            if self.punct_at(i, '(') {
                i = self.after_matching(i, hi, '(', ')');
            }
        }

        // Qualifiers that may precede `fn` (or, for `extern`, a block).
        loop {
            match self.ident_at(i) {
                Some("default") | Some("async") | Some("unsafe") => i += 1,
                Some("const") => {
                    // `const fn` is a qualifier; `const NAME: T = ..` is
                    // an item, handled by the dispatcher below.
                    if matches!(
                        self.ident_at(i + 1),
                        Some("fn") | Some("unsafe") | Some("extern") | Some("async")
                    ) {
                        i += 1;
                    } else {
                        break;
                    }
                }
                Some("extern") => {
                    // `extern "C" fn` is a qualifier; `extern "C" {..}`
                    // and `extern crate x;` are items.
                    if matches!(
                        self.toks.get(i + 1).map(|t| &t.kind),
                        Some(TokenKind::Str(_))
                    ) && !self.punct_at(i + 2, '{')
                    {
                        i += 2;
                    } else {
                        break;
                    }
                }
                _ => break,
            }
        }

        let kw = self.ident_at(i)?;
        let kw_line = self.toks[i].line;
        let (kind, name, name_line, end, body, children) = match kw {
            "mod" => {
                let name = self.ident_at(i + 1).unwrap_or_default().to_string();
                let name_line = self.toks.get(i + 1).map_or(kw_line, |t| t.line);
                let (end, body) = self.item_extent(i, hi);
                let children = match body {
                    Some((blo, bhi)) if depth < MAX_DEPTH => {
                        self.parse_items(blo, bhi, is_test, depth + 1)
                    }
                    _ => Vec::new(),
                };
                (ItemKind::Mod, name, name_line, end, None, children)
            }
            "fn" => {
                let name = self.ident_at(i + 1).unwrap_or_default().to_string();
                let name_line = self.toks.get(i + 1).map_or(kw_line, |t| t.line);
                let (end, body) = self.item_extent(i, hi);
                (ItemKind::Fn, name, name_line, end, body, Vec::new())
            }
            "impl" | "trait" => {
                let is_trait = kw == "trait";
                let (end, body) = self.item_extent(i, hi);
                let header_hi = body.map_or(end, |(blo, _)| blo.saturating_sub(1));
                let name = if is_trait {
                    // `trait Name ...`
                    self.ident_at(i + 1).unwrap_or_default().to_string()
                } else {
                    impl_self_type(&self.toks[(i + 1).min(header_hi)..header_hi])
                };
                let name_line = self.toks.get(i + 1).map_or(kw_line, |t| t.line);
                let children = match body {
                    Some((blo, bhi)) if depth < MAX_DEPTH => {
                        self.parse_items(blo, bhi, is_test, depth + 1)
                    }
                    _ => Vec::new(),
                };
                let kind = if is_trait {
                    ItemKind::Trait
                } else {
                    ItemKind::Impl
                };
                (kind, name, name_line, end, None, children)
            }
            "use" => {
                let (end, _) = self.use_extent(i + 1, hi);
                let mut aliases = Vec::new();
                collect_use_aliases(
                    &self.toks[(i + 1).min(end)..end],
                    &mut Vec::new(),
                    &mut aliases,
                );
                self.tree.uses.extend(aliases);
                (ItemKind::Use, String::new(), kw_line, end, None, Vec::new())
            }
            "struct" | "enum" | "union" => {
                // `union` is contextual: only a keyword when followed by
                // a name (otherwise it is an ordinary identifier).
                let name = self.ident_at(i + 1)?.to_string();
                if kw == "union" && !(self.punct_at(i + 2, '{') || self.punct_at(i + 2, '<')) {
                    return None;
                }
                let kind = match kw {
                    "struct" => ItemKind::Struct,
                    "enum" => ItemKind::Enum,
                    _ => ItemKind::Union,
                };
                let name_line = self.toks.get(i + 1).map_or(kw_line, |t| t.line);
                let (end, _) = self.item_extent(i, hi);
                (kind, name, name_line, end, None, Vec::new())
            }
            "const" | "static" => {
                let mut j = i + 1;
                if self.ident_at(j) == Some("mut") {
                    j += 1;
                }
                let name = self.ident_at(j).unwrap_or_default().to_string();
                let name_line = self.toks.get(j).map_or(kw_line, |t| t.line);
                let (end, body) = self.const_extent(i, hi);
                let kind = if kw == "const" {
                    ItemKind::Const
                } else {
                    ItemKind::Static
                };
                (kind, name, name_line, end, body, Vec::new())
            }
            "type" => {
                let name = self.ident_at(i + 1).unwrap_or_default().to_string();
                let name_line = self.toks.get(i + 1).map_or(kw_line, |t| t.line);
                let (end, _) = self.const_extent(i, hi);
                (ItemKind::TypeAlias, name, name_line, end, None, Vec::new())
            }
            "macro_rules" => {
                // `macro_rules ! name { .. }`
                if !self.punct_at(i + 1, '!') {
                    return None;
                }
                let name = self.ident_at(i + 2).unwrap_or_default().to_string();
                let name_line = self.toks.get(i + 2).map_or(kw_line, |t| t.line);
                let (end, _) = self.item_extent(i + 3, hi);
                (ItemKind::MacroDef, name, name_line, end, None, Vec::new())
            }
            "extern" => {
                if self.ident_at(i + 1) == Some("crate") {
                    let name = self.ident_at(i + 2).unwrap_or_default().to_string();
                    let (end, _) = self.item_extent(i, hi);
                    (ItemKind::ExternCrate, name, kw_line, end, None, Vec::new())
                } else if matches!(
                    self.toks.get(i + 1).map(|t| &t.kind),
                    Some(TokenKind::Str(_))
                ) && self.punct_at(i + 2, '{')
                {
                    let end = self.after_matching(i + 2, hi, '{', '}');
                    (
                        ItemKind::ExternBlock,
                        String::new(),
                        kw_line,
                        end,
                        None,
                        Vec::new(),
                    )
                } else {
                    return None;
                }
            }
            _ => return None,
        };

        let end = end.clamp(start + 1, hi);
        let last = end - 1; // end > start, both in bounds
        let item = Item {
            kind,
            name,
            is_pub,
            is_test,
            line: name_line,
            lo: self.toks[start].lo,
            hi: self.toks[last].hi.max(self.toks[start].lo),
            tok_lo: start,
            tok_hi: end,
            body,
            children,
        };
        self.tree.items.push(item);
        Some((self.tree.items.len() - 1, end))
    }

    /// Extent of a `use` tree starting after the `use` keyword: one past
    /// the `;` at brace depth 0 (use-groups nest braces).
    fn use_extent(&self, pos: usize, hi: usize) -> (usize, ()) {
        let mut depth = 0i64;
        let mut i = pos;
        while i < hi {
            let t = &self.toks[i];
            if t.is_punct('{') {
                depth += 1;
            } else if t.is_punct('}') {
                if depth == 0 {
                    return (i.max(pos + 1), ());
                }
                depth -= 1;
            } else if t.is_punct(';') && depth == 0 {
                return (i + 1, ());
            }
            i += 1;
        }
        (hi, ())
    }

    /// Extent of a `const` / `static` / `type` item: one past the `;`
    /// at brace depth 0 (initializers may contain blocks and struct
    /// literals). Returns the token range inside any top-level braces so
    /// the call scanner can look inside table initializers.
    fn const_extent(&self, pos: usize, hi: usize) -> (usize, Option<(usize, usize)>) {
        let mut depth = 0i64;
        let mut i = pos;
        let mut body: Option<(usize, usize)> = None;
        let mut open = 0usize;
        while i < hi {
            let t = &self.toks[i];
            if t.is_punct('{') {
                if depth == 0 {
                    open = i + 1;
                }
                depth += 1;
            } else if t.is_punct('}') {
                depth -= 1;
                if depth == 0 && body.is_none() {
                    body = Some((open, i));
                }
                if depth < 0 {
                    return (i.max(pos + 1), body);
                }
            } else if t.is_punct(';') && depth == 0 {
                return (i + 1, body);
            }
            i += 1;
        }
        (hi, body)
    }
}

/// The self type of an `impl` header: the last path-segment identifier
/// at angle-bracket depth 0, taken after `for` when the impl is a trait
/// impl (`impl<T> Trait for Type<T>` → `Type`).
fn impl_self_type(header: &[Token]) -> String {
    let mut depth = 0i64;
    let mut last_at_top: Option<&str> = None;
    let mut prev_minus = false;
    for t in header {
        match &t.kind {
            TokenKind::Punct('<') => depth += 1,
            TokenKind::Punct('>') if !prev_minus => depth -= 1,
            TokenKind::Ident(name) if depth <= 0 => {
                if name == "for" {
                    last_at_top = None;
                } else if name != "dyn" && name != "where" {
                    last_at_top = Some(name);
                }
                if name == "where" {
                    break;
                }
            }
            _ => {}
        }
        prev_minus = t.is_punct('-');
    }
    last_at_top.unwrap_or_default().to_string()
}

/// Whether attribute tokens (the part inside `#[..]`) gate on test:
/// `test`, `cfg(test)`, `cfg(all(test, ..))` — but not `cfg(not(test))`.
pub(crate) fn attr_is_test(attr: &[Token]) -> bool {
    let mut stack: Vec<String> = Vec::new();
    let mut prev_ident: Option<&str> = None;
    for t in attr {
        match &t.kind {
            TokenKind::Ident(name) => {
                if name == "test" && !stack.iter().any(|s| s == "not") {
                    return true;
                }
                prev_ident = Some(name);
            }
            TokenKind::Punct('(') => {
                stack.push(prev_ident.unwrap_or_default().to_string());
                prev_ident = None;
            }
            TokenKind::Punct(')') => {
                stack.pop();
                prev_ident = None;
            }
            _ => prev_ident = None,
        }
    }
    false
}

/// Collect the aliases a `use` tree binds. `toks` is the token range
/// after the `use` keyword, `prefix` the path accumulated so far.
fn collect_use_aliases(toks: &[Token], prefix: &mut Vec<String>, out: &mut Vec<UseAlias>) {
    let depth_before = prefix.len();
    let mut segments: Vec<String> = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        match &toks[i].kind {
            TokenKind::Ident(name) if name == "as" => {
                // `path as alias`
                if let Some(alias) = toks.get(i + 1).and_then(|t| t.ident()) {
                    let mut path = prefix.clone();
                    path.extend(segments.iter().cloned());
                    out.push(UseAlias {
                        alias: alias.to_string(),
                        path,
                    });
                    segments.clear();
                    i += 2;
                    continue;
                }
                i += 1;
            }
            TokenKind::Ident(name) => {
                segments.push(name.clone());
                i += 1;
            }
            TokenKind::Punct('{') => {
                // Group: recurse over the inside with the accumulated
                // prefix, then skip past the matching brace.
                let mut depth = 1i64;
                let mut j = i + 1;
                while j < toks.len() && depth > 0 {
                    if toks[j].is_punct('{') {
                        depth += 1;
                    } else if toks[j].is_punct('}') {
                        depth -= 1;
                    }
                    j += 1;
                }
                let inner_hi = if depth == 0 { j - 1 } else { j };
                prefix.append(&mut segments);
                collect_use_aliases(&toks[i + 1..inner_hi], prefix, out);
                prefix.truncate(depth_before);
                i = j;
            }
            TokenKind::Punct('*') => {
                let mut path = prefix.clone();
                path.extend(segments.iter().cloned());
                out.push(UseAlias {
                    alias: "*".to_string(),
                    path,
                });
                segments.clear();
                i += 1;
            }
            TokenKind::Punct(',') | TokenKind::Punct(';') => {
                if let Some(last) = segments.last() {
                    let mut path = prefix.clone();
                    path.extend(segments.iter().cloned());
                    out.push(UseAlias {
                        alias: last.clone(),
                        path,
                    });
                }
                segments.clear();
                i += 1;
            }
            _ => i += 1,
        }
    }
    if let Some(last) = segments.last() {
        let mut path = prefix.clone();
        path.extend(segments.iter().cloned());
        out.push(UseAlias {
            alias: last.clone(),
            path,
        });
    }
}

/// The byte partition the item tree induces over a file of `len` bytes:
/// `(lo, hi, inside_item)` segments in source order. Returns `None` if
/// any span is inconsistent (out of order, overlapping, or outside its
/// parent) — the parser never produces such trees, and the property
/// tests assert it.
pub fn span_partition(tree: &ItemTree, len: usize) -> Option<Vec<(usize, usize, bool)>> {
    let mut out = Vec::new();
    if !partition_level(tree, &tree.root, 0, len, false, &mut out) {
        return None;
    }
    Some(out)
}

fn partition_level(
    tree: &ItemTree,
    ids: &[usize],
    lo: usize,
    hi: usize,
    inside: bool,
    out: &mut Vec<(usize, usize, bool)>,
) -> bool {
    let mut pos = lo;
    for &id in ids {
        let Some(it) = tree.items.get(id) else {
            return false;
        };
        if it.lo < pos || it.hi < it.lo || it.hi > hi {
            return false;
        }
        if it.lo > pos {
            out.push((pos, it.lo, inside));
        }
        if !partition_level(tree, &it.children, it.lo, it.hi, true, out) {
            return false;
        }
        pos = it.hi;
    }
    if hi > pos {
        out.push((pos, hi, inside));
    }
    true
}
