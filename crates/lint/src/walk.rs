//! Workspace file discovery, deterministic by construction.
//!
//! Plain `std::fs` recursion (no external walker), visiting entries in
//! sorted order so the diagnostic stream is identical on every
//! filesystem. `target/`, VCS metadata, and hidden directories are
//! skipped; everything else is fair game — a source file the walker
//! missed would be a hole in the gate.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directory names never descended into.
const SKIP_DIRS: [&str; 3] = ["target", ".git", "node_modules"];

/// The files the lint pass covers.
#[derive(Debug, Default)]
pub struct WorkspaceFiles {
    /// Rust sources, workspace-relative, sorted.
    pub sources: Vec<PathBuf>,
    /// `Cargo.toml` manifests, workspace-relative, sorted.
    pub manifests: Vec<PathBuf>,
}

/// Collect every `.rs` file and `Cargo.toml` under `root`.
pub fn discover(root: &Path) -> io::Result<WorkspaceFiles> {
    let mut files = WorkspaceFiles::default();
    visit(root, Path::new(""), &mut files)?;
    files.sources.sort();
    files.manifests.sort();
    Ok(files)
}

fn visit(root: &Path, rel: &Path, files: &mut WorkspaceFiles) -> io::Result<()> {
    let mut entries: Vec<(String, PathBuf, bool)> = Vec::new();
    for entry in fs::read_dir(root.join(rel))? {
        let entry = entry?;
        let name = entry.file_name().to_string_lossy().into_owned();
        let is_dir = entry.file_type()?.is_dir();
        entries.push((name, rel.join(entry.file_name()), is_dir));
    }
    entries.sort();
    for (name, rel_path, is_dir) in entries {
        if is_dir {
            if name.starts_with('.') || SKIP_DIRS.contains(&name.as_str()) {
                continue;
            }
            visit(root, &rel_path, files)?;
        } else if name.ends_with(".rs") {
            files.sources.push(rel_path);
        } else if name == "Cargo.toml" {
            files.manifests.push(rel_path);
        }
    }
    Ok(())
}
