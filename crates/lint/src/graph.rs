//! The workspace call graph and the flow-aware `panic-reachable` rule.
//!
//! Token-pattern rules see one line; the service-readiness invariant of
//! DESIGN §7 — *no panic reachable from a pipeline entry point* — needs
//! to see across functions. This module stitches the per-file item
//! trees ([`crate::parse`]) into a cross-crate call graph and walks it.
//!
//! Resolution is deliberately **conservative in the over-approximating
//! direction**: when a call is ambiguous (a bare method name that
//! several workspace types define), every candidate gets an edge, so a
//! reachable panic is never missed at the cost of occasional spurious
//! edges. The opposite choice — guessing one receiver type — would make
//! the safety claim "no panic reachable" quietly false. Calls that
//! resolve to nothing inside the workspace (std, closures) get no edge:
//! the graph only answers questions about workspace code.
//!
//! Everything is deterministic: files are processed in path order
//! regardless of input order, node ids are stable functions of
//! `(file, nesting path, name)`, and adjacency is sorted — so
//! `sno-lint --graph-json` is byte-identical across runs and under
//! file-order shuffling (property-tested in `tests/selftest.rs`).

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::diag::{escape_json, Diagnostic};
use crate::lexer::{Token, TokenKind};
use crate::parse::ItemKind;
use crate::rules::FileAnalysis;

/// Files whose slice-indexing is treated as a panic site: the columnar
/// hot path, where a stray `v[i]` aborts the whole batch. Everywhere
/// else indexing is too common (and too often length-guarded) to flag.
pub const HOT_PATH_FILES: [&str; 3] = [
    "crates/types/src/batch.rs",
    "crates/core/src/accept.rs",
    "crates/core/src/stream.rs",
];

/// Macros whose expansion unconditionally panics.
const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// Crates outside the service-reachability universe: dev tooling that
/// is never linked into a pipeline or experiment binary (`check` is the
/// property-test harness, `lint` is this linter). Including them would
/// manufacture spurious reachable panics through the conservative
/// method-name resolution.
const GRAPH_EXCLUDED_CRATES: [&str; 2] = ["check", "lint"];

/// Identifiers that are (or can head) expression keywords, never free
/// functions — `if (x)` must not look like a call to `if`.
const EXPR_KEYWORDS: [&str; 24] = [
    "as", "async", "await", "break", "const", "continue", "crate", "else", "fn", "for", "if",
    "impl", "in", "let", "loop", "match", "move", "mut", "ref", "return", "unsafe", "use", "while",
    "yield",
];

/// One function in the workspace graph.
#[derive(Debug, Clone)]
pub struct FnNode {
    /// Stable id: `<path>::<nesting path>::<name>` (`#2`, `#3` … appended
    /// on the rare collision, in path order, so ids stay unique).
    pub id: String,
    /// Workspace-relative `/`-separated path of the defining file.
    pub file: String,
    /// Index into the `FileAnalysis` slice the graph was built from.
    pub file_idx: usize,
    /// The function's own name.
    pub name: String,
    /// Self type of the enclosing `impl`/`trait` block, if any.
    pub self_ty: Option<String>,
    /// 1-based line of the `fn` name.
    pub line: u32,
    /// Whether the function is `#[test]`/`#[cfg(test)]`-gated.
    pub is_test: bool,
    /// Token range of the body in the file's token stream.
    pub body: Option<(usize, usize)>,
    /// Callees (node indices), sorted by callee id, deduplicated.
    pub calls: Vec<usize>,
    /// Panic sites inside this function's own body, in source order.
    pub panics: Vec<PanicSite>,
}

impl FnNode {
    /// `Type::name` for methods, `name` for free functions.
    pub fn display(&self) -> String {
        match &self.self_ty {
            Some(ty) => format!("{ty}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// One panic site: what panics and where.
#[derive(Debug, Clone)]
pub struct PanicSite {
    /// `.unwrap()`, `.expect()`, `panic!`, `unreachable!`, `todo!`,
    /// `unimplemented!`, or `slice-index`.
    pub what: &'static str,
    pub line: u32,
}

/// The stable-sorted workspace call graph.
#[derive(Debug, Clone, Default)]
pub struct Graph {
    /// Nodes sorted by id.
    pub nodes: Vec<FnNode>,
}

/// Build the call graph over every `Lib`-kind file in `files`. Input
/// order does not matter: files are processed in path order.
pub fn build(files: &[FileAnalysis]) -> Graph {
    let mut order: Vec<usize> = (0..files.len())
        .filter(|&i| {
            files[i].ctx.kind == crate::rules::FileKind::Lib
                && !files[i]
                    .ctx
                    .crate_dir
                    .as_deref()
                    .is_some_and(|c| GRAPH_EXCLUDED_CRATES.contains(&c))
        })
        .collect();
    order.sort_by(|&a, &b| files[a].path.cmp(&files[b].path));

    // Pass 1: collect nodes.
    let mut nodes: Vec<FnNode> = Vec::new();
    let mut id_counts: BTreeMap<String, usize> = BTreeMap::new();
    for &fi in &order {
        let fa = &files[fi];
        collect_fns(
            fa,
            fi,
            &fa.tree.root,
            &mut Vec::new(),
            None,
            &mut nodes,
            &mut id_counts,
        );
    }

    // Resolution tables over non-test nodes (test code is never a call
    // target of service code under `cfg(test)`).
    let mut by_type_method: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
    let mut method_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut free_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut known_types: BTreeSet<&str> = BTreeSet::new();
    for (idx, n) in nodes.iter().enumerate() {
        if n.is_test {
            continue;
        }
        match &n.self_ty {
            Some(ty) => {
                by_type_method.entry((ty, &n.name)).or_default().push(idx);
                method_by_name.entry(&n.name).or_default().push(idx);
                known_types.insert(ty);
            }
            None => free_by_name.entry(&n.name).or_default().push(idx),
        }
    }

    // Pass 2: scan bodies for calls and panic sites.
    let mut calls: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    let mut panics: Vec<Vec<PanicSite>> = vec![Vec::new(); nodes.len()];
    for idx in 0..nodes.len() {
        if nodes[idx].is_test {
            continue;
        }
        let Some((blo, bhi)) = nodes[idx].body else {
            continue;
        };
        let fa = &files[nodes[idx].file_idx];
        let toks = &fa.lexed.tokens;
        let (blo, bhi) = (blo.min(toks.len()), bhi.min(toks.len()));
        let hot_path = HOT_PATH_FILES.contains(&fa.path.as_str());
        let mut callees: BTreeSet<usize> = BTreeSet::new();
        let mut i = blo;
        while i < bhi {
            scan_token(
                &ScanCtx {
                    nodes: &nodes,
                    by_type_method: &by_type_method,
                    method_by_name: &method_by_name,
                    free_by_name: &free_by_name,
                    known_types: &known_types,
                    files,
                },
                idx,
                toks,
                blo,
                bhi,
                i,
                hot_path,
                &mut callees,
                &mut panics[idx],
            );
            i += 1;
        }
        let mut list: Vec<usize> = callees.into_iter().collect();
        list.sort_by(|&a, &b| nodes[a].id.cmp(&nodes[b].id));
        calls[idx] = list;
    }
    for (idx, (c, p)) in calls.into_iter().zip(panics).enumerate() {
        nodes[idx].calls = c;
        nodes[idx].panics = p;
    }

    // Final order: by id. Remap the adjacency through the permutation.
    let mut perm: Vec<usize> = (0..nodes.len()).collect();
    perm.sort_by(|&a, &b| nodes[a].id.cmp(&nodes[b].id));
    let mut inverse = vec![0usize; nodes.len()];
    for (new, &old) in perm.iter().enumerate() {
        inverse[old] = new;
    }
    let mut sorted: Vec<FnNode> = Vec::with_capacity(nodes.len());
    for &old in &perm {
        let mut n = nodes[old].clone();
        n.calls = n.calls.iter().map(|&c| inverse[c]).collect();
        n.calls.sort_unstable();
        sorted.push(n);
    }
    Graph { nodes: sorted }
}

/// DFS item collection: record every `fn`, threading the module path
/// and the enclosing impl/trait self type.
fn collect_fns(
    fa: &FileAnalysis,
    file_idx: usize,
    ids: &[usize],
    nesting: &mut Vec<String>,
    self_ty: Option<&str>,
    nodes: &mut Vec<FnNode>,
    id_counts: &mut BTreeMap<String, usize>,
) {
    for &id in ids {
        let Some(it) = fa.tree.items.get(id) else {
            continue;
        };
        match it.kind {
            ItemKind::Fn => {
                let mut base = fa.path.clone();
                for seg in nesting.iter() {
                    base.push_str("::");
                    base.push_str(seg);
                }
                if let Some(ty) = self_ty {
                    base.push_str("::");
                    base.push_str(ty);
                }
                base.push_str("::");
                base.push_str(&it.name);
                let n = id_counts.entry(base.clone()).or_insert(0);
                *n += 1;
                let id_str = if *n == 1 { base } else { format!("{base}#{n}") };
                nodes.push(FnNode {
                    id: id_str,
                    file: fa.path.clone(),
                    file_idx,
                    name: it.name.clone(),
                    self_ty: self_ty.map(str::to_string),
                    line: it.line,
                    is_test: it.is_test,
                    body: it.body,
                    calls: Vec::new(),
                    panics: Vec::new(),
                });
            }
            ItemKind::Mod => {
                nesting.push(it.name.clone());
                collect_fns(
                    fa,
                    file_idx,
                    &it.children,
                    nesting,
                    self_ty,
                    nodes,
                    id_counts,
                );
                nesting.pop();
            }
            ItemKind::Impl | ItemKind::Trait => {
                let ty = if it.name.is_empty() {
                    None
                } else {
                    Some(it.name.as_str())
                };
                collect_fns(fa, file_idx, &it.children, nesting, ty, nodes, id_counts);
            }
            _ => {}
        }
    }
}

struct ScanCtx<'a> {
    nodes: &'a [FnNode],
    by_type_method: &'a BTreeMap<(&'a str, &'a str), Vec<usize>>,
    method_by_name: &'a BTreeMap<&'a str, Vec<usize>>,
    free_by_name: &'a BTreeMap<&'a str, Vec<usize>>,
    known_types: &'a BTreeSet<&'a str>,
    files: &'a [FileAnalysis],
}

/// Examine the token at `i` inside `caller`'s body for a call edge or a
/// panic site.
#[allow(clippy::too_many_arguments)]
fn scan_token(
    ctx: &ScanCtx<'_>,
    caller: usize,
    toks: &[Token],
    blo: usize,
    bhi: usize,
    i: usize,
    hot_path: bool,
    callees: &mut BTreeSet<usize>,
    panics: &mut Vec<PanicSite>,
) {
    // Slice indexing in the hot path: `expr[..]` — an opener whose
    // previous token ends an expression. (`#[attr]`, `[T; N]` types,
    // and array literals all have non-expression predecessors.)
    if hot_path && toks[i].is_punct('[') && i > blo {
        let prev = &toks[i - 1];
        let indexes_expr = match &prev.kind {
            TokenKind::Ident(name) => !EXPR_KEYWORDS.contains(&name.as_str()),
            TokenKind::Punct(')') | TokenKind::Punct(']') => true,
            _ => false,
        };
        if indexes_expr {
            panics.push(PanicSite {
                what: "slice-index",
                line: toks[i].line,
            });
        }
    }

    let Some(name) = toks[i].ident() else {
        return;
    };

    // Panic macros: `panic!(..)` and friends.
    if toks.get(i + 1).is_some_and(|t| t.is_punct('!')) && PANIC_MACROS.contains(&name) {
        let what = match name {
            "panic" => "panic!",
            "unreachable" => "unreachable!",
            "todo" => "todo!",
            _ => "unimplemented!",
        };
        panics.push(PanicSite {
            what,
            line: toks[i].line,
        });
        return;
    }

    // Call position: the name is followed by `(`, optionally via a
    // turbofish `::<..>`.
    let after = skip_turbofish(toks, i + 1, bhi);
    if !toks.get(after).is_some_and(|t| t.is_punct('(')) {
        return;
    }

    let prev_dot = i > blo && toks[i - 1].is_punct('.');
    if prev_dot {
        // `.unwrap()` / `.expect()` are panic sites, not edges.
        if name == "unwrap" || name == "expect" {
            panics.push(PanicSite {
                what: if name == "unwrap" {
                    ".unwrap()"
                } else {
                    ".expect()"
                },
                line: toks[i].line,
            });
            return;
        }
        // Method call: conservatively link every non-test workspace
        // method with this name.
        if let Some(cands) = ctx.method_by_name.get(name) {
            callees.extend(cands.iter().copied());
        }
        return;
    }

    let prev_path = i >= blo + 2 && toks[i - 1].is_punct(':') && toks[i - 2].is_punct(':');
    if prev_path {
        // Qualified call `Qual::name(..)`: resolve through the
        // qualifier. `<T as Trait>::f(..)` has `>` before `::` and gets
        // no edge (resolving it needs full type information).
        let Some(qual) = (i >= blo + 3).then(|| toks[i - 3].ident()).flatten() else {
            return;
        };
        let fa = &ctx.files[ctx.nodes[caller].file_idx];
        let ty = if qual == "Self" {
            match &ctx.nodes[caller].self_ty {
                Some(t) => t.clone(),
                None => return,
            }
        } else {
            // Map a `use` alias to the real type name it binds.
            fa.tree
                .uses
                .iter()
                .find(|u| u.alias == qual && u.alias != "*")
                .and_then(|u| u.path.last())
                .cloned()
                .unwrap_or_else(|| qual.to_string())
        };
        if !ctx.known_types.contains(ty.as_str()) {
            return; // std or external: outside the graph.
        }
        if let Some(cands) = ctx.by_type_method.get(&(ty.as_str(), name)) {
            callees.extend(cands.iter().copied());
        }
        return;
    }

    // Bare call `name(..)`: a free function. Prefer same-file, then
    // same-crate definitions; fall back to every match (conservative).
    if EXPR_KEYWORDS.contains(&name) {
        return;
    }
    let Some(cands) = ctx.free_by_name.get(name) else {
        return;
    };
    let caller_file = &ctx.nodes[caller].file;
    let caller_crate = crate_of(caller_file);
    let same_file: Vec<usize> = cands
        .iter()
        .copied()
        .filter(|&c| &ctx.nodes[c].file == caller_file)
        .collect();
    let picked = if !same_file.is_empty() {
        same_file
    } else {
        let same_crate: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&c| crate_of(&ctx.nodes[c].file) == caller_crate)
            .collect();
        if !same_crate.is_empty() {
            same_crate
        } else {
            cands.clone()
        }
    };
    callees.extend(picked);
}

/// `crates/<dir>/...` → `<dir>`; anything else → "".
fn crate_of(path: &str) -> &str {
    let mut parts = path.split('/');
    if parts.next() == Some("crates") {
        parts.next().unwrap_or("")
    } else {
        ""
    }
}

/// If `toks[j..]` starts a turbofish `::<..>`, return the index one
/// past its closing `>`; otherwise return `j` unchanged.
fn skip_turbofish(toks: &[Token], j: usize, hi: usize) -> usize {
    if !(toks.get(j).is_some_and(|t| t.is_punct(':'))
        && toks.get(j + 1).is_some_and(|t| t.is_punct(':'))
        && toks.get(j + 2).is_some_and(|t| t.is_punct('<')))
    {
        return j;
    }
    let mut depth = 0i64;
    let mut k = j + 2;
    while k < hi {
        if toks[k].is_punct('<') {
            depth += 1;
        } else if toks[k].is_punct('>') {
            // `->` inside fn-pointer types is not a closer.
            if !(k > 0 && toks[k - 1].is_punct('-')) {
                depth -= 1;
                if depth <= 0 {
                    return k + 1;
                }
            }
        }
        k += 1;
    }
    j
}

/// The service entry points (DESIGN §7): every `Pipeline::run*`,
/// `OnlineIdentifier::{ingest*, snapshot*, merge, compact}`, and every experiment
/// runner the `EXPERIMENTS` registry in `crates/bench/src/experiments.rs`
/// references. Returns node indices, in node (id) order.
pub fn entry_roots(g: &Graph, files: &[FileAnalysis]) -> Vec<usize> {
    // Names referenced inside the EXPERIMENTS const.
    let mut experiment_fns: BTreeSet<&str> = BTreeSet::new();
    for fa in files {
        if fa.path != "crates/bench/src/experiments.rs" {
            continue;
        }
        for &id in &fa.tree.walk() {
            let it = &fa.tree.items[id];
            if it.kind == ItemKind::Const && it.name == "EXPERIMENTS" {
                for t in fa
                    .lexed
                    .tokens
                    .iter()
                    .take(it.tok_hi.min(fa.lexed.tokens.len()))
                    .skip(it.tok_lo)
                {
                    if let Some(n) = t.ident() {
                        experiment_fns.insert(n);
                    }
                }
            }
        }
    }

    let mut roots = Vec::new();
    for (idx, n) in g.nodes.iter().enumerate() {
        if n.is_test {
            continue;
        }
        let is_root = match n.self_ty.as_deref() {
            Some("Pipeline") => n.file.starts_with("crates/core/") && n.name.starts_with("run"),
            Some("OnlineIdentifier") => {
                n.file.starts_with("crates/core/")
                    && (n.name.starts_with("ingest")
                        || n.name.starts_with("snapshot")
                        || n.name == "merge"
                        || n.name == "compact")
            }
            Some(_) => false,
            None => {
                n.file == "crates/bench/src/experiments.rs"
                    && experiment_fns.contains(n.name.as_str())
            }
        };
        if is_root {
            roots.push(idx);
        }
    }
    roots
}

/// The `panic-reachable` rule: one diagnostic per entry root from which
/// any panic site is transitively reachable, anchored at the root's
/// `fn` line so the justification pragma lives at the root.
pub fn panic_reachable(g: &Graph, files: &[FileAnalysis]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for root in entry_roots(g, files) {
        // BFS in adjacency (id) order; parents give a shortest chain.
        let mut parent: BTreeMap<usize, usize> = BTreeMap::new();
        let mut seen: BTreeSet<usize> = BTreeSet::new();
        let mut queue: VecDeque<usize> = VecDeque::new();
        seen.insert(root);
        queue.push_back(root);
        let mut bfs_order = Vec::new();
        while let Some(u) = queue.pop_front() {
            bfs_order.push(u);
            for &v in &g.nodes[u].calls {
                if seen.insert(v) {
                    parent.insert(v, u);
                    queue.push_back(v);
                }
            }
        }
        let mut total = 0usize;
        let mut nearest: Option<usize> = None;
        for &u in &bfs_order {
            let n = &g.nodes[u];
            if !n.panics.is_empty() {
                total += n.panics.len();
                nearest.get_or_insert(u);
            }
        }
        let Some(site_node) = nearest else {
            continue;
        };
        let site = &g.nodes[site_node].panics[0];
        let mut chain = vec![g.nodes[site_node].display()];
        let mut cur = site_node;
        while cur != root {
            let Some(&p) = parent.get(&cur) else {
                break;
            };
            chain.push(g.nodes[p].display());
            cur = p;
        }
        chain.reverse();
        let rootn = &g.nodes[root];
        out.push(Diagnostic {
            file: rootn.file.clone(),
            line: rootn.line,
            rule: "panic-reachable",
            message: format!(
                "{} panic site(s) reachable from entry point {}: nearest is {} at {}:{} via {}; remove the panics or justify at this root",
                total,
                rootn.display(),
                site.what,
                g.nodes[site_node].file,
                site.line,
                chain.join(" -> "),
            ),
        });
    }
    out
}

/// Render the graph as stable JSON (`sno-lint --graph-json`): nodes
/// sorted by id, adjacency by callee id, one node per line so dumps
/// diff cleanly.
pub fn render_json(g: &Graph) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"version\": \"sno-lint-graph-v1\",\n");
    out.push_str(&format!("  \"node_count\": {},\n", g.nodes.len()));
    out.push_str("  \"nodes\": [");
    for (i, n) in g.nodes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {");
        out.push_str(&format!("\"id\": \"{}\", ", escape_json(&n.id)));
        out.push_str(&format!("\"file\": \"{}\", ", escape_json(&n.file)));
        out.push_str(&format!("\"line\": {}, ", n.line));
        out.push_str(&format!("\"test\": {}, ", n.is_test));
        out.push_str("\"calls\": [");
        for (k, &c) in n.calls.iter().enumerate() {
            if k > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\"", escape_json(&g.nodes[c].id)));
        }
        out.push_str("], \"panics\": [");
        for (k, p) in n.panics.iter().enumerate() {
            if k > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}@{}\"", escape_json(p.what), p.line));
        }
        out.push_str("]}");
    }
    if !g.nodes.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}
