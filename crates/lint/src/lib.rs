//! `sno-lint`: the in-tree determinism & hermeticity lint pass.
//!
//! The workspace promises byte-identical pipelines at any thread count
//! and seed-replayable fault campaigns (README "Determinism", DESIGN
//! §7). Those promises rest on invariants `rustc` and clippy cannot
//! see: no wall-clock reads in analysis code, no ambient entropy, no
//! unordered iteration in the deterministic crates, self-documenting
//! RNG substream labels, no panicking shortcuts in library code, no
//! panic reachable from a service entry point, and path-only
//! dependencies so a clean checkout builds offline. This crate checks
//! all of them mechanically, FoundationDB-style: the simulation gate is
//! only trustworthy while the code stays inside the deterministic
//! subset, so the subset is enforced, not hoped for.
//!
//! Everything is hand-rolled and dependency-free — a lexer
//! ([`lexer`]), an item parser ([`parse`]), a workspace call graph
//! ([`graph`]), a rule engine ([`rules`]), a manifest checker
//! ([`manifest`]), and per-line allow pragmas with mandatory
//! justifications ([`pragma`]):
//!
//! ```text
//! // sno-lint: allow(unwrap-in-lib): length checked two lines up
//! // sno-lint: allow(unwrap-in-lib, panic-reachable): invariant held by caller
//! ```
//!
//! Run it as `repro --lint [--json]`, the `sno-lint` binary, or
//! programmatically:
//!
//! ```
//! use sno_lint::rules::lint_source;
//! let diags = lint_source(
//!     "crates/core/src/demo.rs",
//!     "fn f(v: &[u8]) -> u8 { *v.first().unwrap() }",
//! );
//! assert_eq!(diags.len(), 1);
//! assert_eq!(diags[0].rule, "unwrap-in-lib");
//! ```

pub mod diag;
pub mod graph;
pub mod lexer;
pub mod manifest;
pub mod parse;
pub mod pragma;
pub mod rules;
pub mod walk;

use std::collections::BTreeMap;
use std::io;
use std::path::Path;

pub use diag::Diagnostic;

/// The outcome of linting a workspace tree.
#[derive(Debug)]
pub struct LintReport {
    /// All surviving diagnostics, sorted by `(file, line, rule)`.
    pub diagnostics: Vec<Diagnostic>,
    /// Per-rule count of diagnostics a justified pragma suppressed.
    pub suppressed: BTreeMap<String, usize>,
    /// How many `.rs` files were scanned.
    pub sources_scanned: usize,
    /// How many `Cargo.toml` manifests were scanned.
    pub manifests_scanned: usize,
}

impl LintReport {
    /// Whether the tree is clean.
    pub fn passed(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Text rendering: one line per diagnostic plus a summary line.
    pub fn render_text(&self) -> String {
        let mut out = diag::render_text(&self.diagnostics);
        out.push_str(&format!(
            "sno-lint: {} diagnostic(s) over {} sources and {} manifests\n",
            self.diagnostics.len(),
            self.sources_scanned,
            self.manifests_scanned,
        ));
        out
    }

    /// Per-rule diagnostic counts over the full stable rule set, so two
    /// reports always have the same keys and diff cleanly.
    pub fn rule_counts(&self) -> BTreeMap<String, usize> {
        let mut counts: BTreeMap<String, usize> = all_rules()
            .into_iter()
            .map(|r| (r.to_string(), 0))
            .collect();
        for d in &self.diagnostics {
            *counts.entry(d.rule.to_string()).or_insert(0) += 1;
        }
        counts
    }

    /// Per-rule suppression counts over the full stable rule set.
    pub fn suppressed_counts(&self) -> BTreeMap<String, usize> {
        let mut counts: BTreeMap<String, usize> = all_rules()
            .into_iter()
            .map(|r| (r.to_string(), 0))
            .collect();
        for (rule, n) in &self.suppressed {
            *counts.entry(rule.clone()).or_insert(0) += n;
        }
        counts
    }

    /// JSON rendering, stable-sorted so reports are diffable. Includes
    /// the per-rule diagnostic and pragma-suppression counts the CI
    /// baseline gate compares.
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"count\": {},\n", self.diagnostics.len()));
        out.push_str(&render_count_map("rule_counts", &self.rule_counts()));
        out.push_str(&render_count_map("suppressed", &self.suppressed_counts()));
        out.push_str("  \"diagnostics\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            out.push_str(&format!("\"file\": \"{}\", ", diag::escape_json(&d.file)));
            out.push_str(&format!("\"line\": {}, ", d.line));
            out.push_str(&format!("\"rule\": \"{}\", ", diag::escape_json(d.rule)));
            out.push_str(&format!(
                "\"message\": \"{}\"",
                diag::escape_json(&d.message)
            ));
            out.push('}');
        }
        if !self.diagnostics.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

/// Every rule id that can appear in a report: source rules, the
/// manifest rule, and the two pragma meta-rules.
fn all_rules() -> Vec<&'static str> {
    let mut rules = rules::known_rules();
    rules.push("bad-pragma");
    rules.push("unused-pragma");
    rules.sort_unstable();
    rules
}

fn render_count_map(key: &str, counts: &BTreeMap<String, usize>) -> String {
    let mut out = format!("  \"{key}\": {{");
    for (i, (rule, n)) in counts.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\n    \"{}\": {}", diag::escape_json(rule), n));
    }
    out.push_str("\n  },\n");
    out
}

/// Lint every Rust source and manifest under `root`.
pub fn lint_workspace(root: &Path) -> io::Result<LintReport> {
    let files = walk::discover(root)?;
    let mut sources: Vec<(String, String)> = Vec::with_capacity(files.sources.len());
    for rel in &files.sources {
        let text = std::fs::read_to_string(root.join(rel))?;
        sources.push((path_key(rel), text));
    }
    let ws = rules::lint_files(&sources);
    let mut diagnostics = ws.diagnostics;
    for rel in &files.manifests {
        let text = std::fs::read_to_string(root.join(rel))?;
        diagnostics.extend(manifest::lint_manifest(&path_key(rel), &text));
    }
    diag::sort_stable(&mut diagnostics);
    Ok(LintReport {
        diagnostics,
        suppressed: ws.suppressed,
        sources_scanned: files.sources.len(),
        manifests_scanned: files.manifests.len(),
    })
}

/// Build the workspace call graph under `root` and render it as stable
/// JSON (`sno-lint --graph-json`).
pub fn graph_workspace_json(root: &Path) -> io::Result<String> {
    let files = walk::discover(root)?;
    let mut analyses = Vec::with_capacity(files.sources.len());
    for rel in &files.sources {
        let text = std::fs::read_to_string(root.join(rel))?;
        analyses.push(rules::analyze(&path_key(rel), &text));
    }
    Ok(graph::render_json(&graph::build(&analyses)))
}

/// Extract the `"<section>": { "rule": count, .. }` map from a report
/// JSON produced by [`LintReport::render_json`] (also the committed
/// baseline format). Tolerant of whitespace; returns an empty map when
/// the section is missing.
pub fn parse_count_section(json: &str, section: &str) -> BTreeMap<String, usize> {
    let mut out = BTreeMap::new();
    let needle = format!("\"{section}\"");
    let Some(at) = json.find(&needle) else {
        return out;
    };
    let rest = &json[at + needle.len()..];
    let Some(open) = rest.find('{') else {
        return out;
    };
    let Some(close) = rest[open..].find('}') else {
        return out;
    };
    let body = &rest[open + 1..open + close];
    for entry in body.split(',') {
        let mut halves = entry.splitn(2, ':');
        let (Some(k), Some(v)) = (halves.next(), halves.next()) else {
            continue;
        };
        let k = k.trim().trim_matches('"');
        if k.is_empty() {
            continue;
        }
        if let Ok(n) = v.trim().parse::<usize>() {
            out.insert(k.to_string(), n);
        }
    }
    out
}

/// Compare a current report against a committed baseline. Returns the
/// human-readable delta lines (one per changed rule) and whether any
/// count **increased** — the condition the CI gate fails on.
pub fn baseline_delta(current_json: &str, baseline_json: &str) -> (Vec<String>, bool) {
    let mut lines = Vec::new();
    let mut regressed = false;
    for section in ["rule_counts", "suppressed"] {
        let cur = parse_count_section(current_json, section);
        let base = parse_count_section(baseline_json, section);
        let mut rules: Vec<&String> = cur.keys().chain(base.keys()).collect();
        rules.sort();
        rules.dedup();
        for rule in rules {
            let c = cur.get(rule).copied().unwrap_or(0);
            let b = base.get(rule).copied().unwrap_or(0);
            if c != b {
                let label = if section == "suppressed" {
                    "suppressed"
                } else {
                    "diagnostics"
                };
                lines.push(format!(
                    "{rule} ({label}): baseline {b} -> current {c} ({}{})",
                    if c > b { "+" } else { "" },
                    c as i64 - b as i64
                ));
                if c > b {
                    regressed = true;
                }
            }
        }
    }
    (lines, regressed)
}

/// Normalise a relative path to `/`-separated form for diagnostics.
fn path_key(rel: &Path) -> String {
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}
