//! `sno-lint`: the in-tree determinism & hermeticity lint pass.
//!
//! The workspace promises byte-identical pipelines at any thread count
//! and seed-replayable fault campaigns (README "Determinism", DESIGN
//! §7). Those promises rest on invariants `rustc` and clippy cannot
//! see: no wall-clock reads in analysis code, no ambient entropy, no
//! unordered iteration in the deterministic crates, self-documenting
//! RNG substream labels, no panicking shortcuts in library code, and
//! path-only dependencies so a clean checkout builds offline. This
//! crate checks all of them mechanically, FoundationDB-style: the
//! simulation gate is only trustworthy while the code stays inside the
//! deterministic subset, so the subset is enforced, not hoped for.
//!
//! Everything is hand-rolled and dependency-free — a lexer
//! ([`lexer`]), a rule engine ([`rules`]), a manifest checker
//! ([`manifest`]), and per-line allow pragmas with mandatory
//! justifications ([`pragma`]):
//!
//! ```text
//! // sno-lint: allow(unwrap-in-lib): length checked two lines up
//! ```
//!
//! Run it as `repro --lint [--json]`, the `sno-lint` binary, or
//! programmatically:
//!
//! ```
//! use sno_lint::rules::lint_source;
//! let diags = lint_source(
//!     "crates/core/src/demo.rs",
//!     "fn f(v: &[u8]) -> u8 { *v.first().unwrap() }",
//! );
//! assert_eq!(diags.len(), 1);
//! assert_eq!(diags[0].rule, "unwrap-in-lib");
//! ```

pub mod diag;
pub mod lexer;
pub mod manifest;
pub mod pragma;
pub mod rules;
pub mod walk;

use std::io;
use std::path::Path;

pub use diag::Diagnostic;

/// The outcome of linting a workspace tree.
#[derive(Debug)]
pub struct LintReport {
    /// All surviving diagnostics, sorted by `(file, line, rule)`.
    pub diagnostics: Vec<Diagnostic>,
    /// How many `.rs` files were scanned.
    pub sources_scanned: usize,
    /// How many `Cargo.toml` manifests were scanned.
    pub manifests_scanned: usize,
}

impl LintReport {
    /// Whether the tree is clean.
    pub fn passed(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Text rendering: one line per diagnostic plus a summary line.
    pub fn render_text(&self) -> String {
        let mut out = diag::render_text(&self.diagnostics);
        out.push_str(&format!(
            "sno-lint: {} diagnostic(s) over {} sources and {} manifests\n",
            self.diagnostics.len(),
            self.sources_scanned,
            self.manifests_scanned,
        ));
        out
    }

    /// JSON rendering, stable-sorted so reports are diffable.
    pub fn render_json(&self) -> String {
        diag::render_json(&self.diagnostics)
    }
}

/// Lint every Rust source and manifest under `root`.
pub fn lint_workspace(root: &Path) -> io::Result<LintReport> {
    let files = walk::discover(root)?;
    let mut diagnostics = Vec::new();
    for rel in &files.sources {
        let text = std::fs::read_to_string(root.join(rel))?;
        diagnostics.extend(rules::lint_source(&path_key(rel), &text));
    }
    for rel in &files.manifests {
        let text = std::fs::read_to_string(root.join(rel))?;
        diagnostics.extend(manifest::lint_manifest(&path_key(rel), &text));
    }
    diag::sort_stable(&mut diagnostics);
    Ok(LintReport {
        diagnostics,
        sources_scanned: files.sources.len(),
        manifests_scanned: files.manifests.len(),
    })
}

/// Normalise a relative path to `/`-separated form for diagnostics.
fn path_key(rel: &Path) -> String {
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}
