//! The `hermetic-manifest` rule: every dependency in every `Cargo.toml`
//! must resolve inside the workspace.
//!
//! The build environment has no route to crates.io (README, "Hermetic
//! builds"), so a `version`, `git`, or `registry` dependency is a build
//! break waiting for a clean checkout. Accepted forms are exactly the
//! two the workspace uses: `foo = { path = ".." }` (the workspace root
//! declares every member this way) and `foo.workspace = true` /
//! `foo = { workspace = true }` (members inherit those path entries).
//!
//! The parser is a minimal line-oriented TOML subset — section headers,
//! `key = value`, inline tables — which covers every manifest in this
//! repository; anything it cannot read is reported rather than skipped,
//! so new syntax fails loud instead of sliding past the gate.

use crate::diag::Diagnostic;

/// Rule identifier shared with the engine.
pub const RULE: &str = "hermetic-manifest";

/// Section headers whose entries are dependency declarations.
const DEP_SECTIONS: [&str; 4] = [
    "dependencies",
    "dev-dependencies",
    "build-dependencies",
    "workspace.dependencies",
];

/// Lint one manifest. `file` is the path reported in diagnostics.
pub fn lint_manifest(file: &str, text: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut in_dep_section = false;
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx as u32 + 1;
        let line = strip_toml_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix('[') {
            let header = header.trim_end_matches(']').trim();
            in_dep_section = is_dep_section(header);
            continue;
        }
        if !in_dep_section {
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            out.push(diag(
                file,
                line_no,
                format!("unparseable dependency line `{line}`"),
            ));
            continue;
        };
        let (name, value) = (key.trim(), value.trim());
        if let Some(msg) = check_dependency(name, value) {
            out.push(diag(file, line_no, msg));
        }
    }
    out
}

/// Whether `header` (the text inside `[..]`) declares dependencies.
/// Covers plain sections, `workspace.dependencies`, and
/// target-qualified ones like `target.'cfg(unix)'.dependencies`.
fn is_dep_section(header: &str) -> bool {
    DEP_SECTIONS.contains(&header)
        || (header.starts_with("target.") && header.ends_with("dependencies"))
}

/// `None` when the dependency is hermetic, else the violation message.
fn check_dependency(name: &str, value: &str) -> Option<String> {
    // `foo.workspace = true` spells the key as a dotted path.
    if name.ends_with(".workspace") {
        return None;
    }
    if value.starts_with('"') || value.starts_with('\'') {
        return Some(format!(
            "`{name} = {value}` is a registry dependency; use a path dependency \
             (`{name} = {{ path = \"..\" }}`) or `{name}.workspace = true`"
        ));
    }
    if let Some(body) = value.strip_prefix('{') {
        let body = body.trim_end_matches('}');
        let keys: Vec<&str> = body
            .split(',')
            .filter_map(|kv| kv.split_once('=').map(|(k, _)| k.trim()))
            .collect();
        for banned in ["version", "git", "registry", "branch", "rev", "tag"] {
            if keys.contains(&banned) {
                return Some(format!(
                    "`{name}` declares `{banned} = ..`, which needs the network; \
                     only `path` (plus `features`/`optional`/`default-features`) \
                     and `workspace = true` are hermetic"
                ));
            }
        }
        if keys.contains(&"path") || keys.contains(&"workspace") {
            return None;
        }
        return Some(format!(
            "`{name}` has neither `path` nor `workspace = true`; it cannot \
             resolve offline"
        ));
    }
    Some(format!(
        "dependency `{name}` has unrecognised value `{value}`; expected a path \
         dependency or `workspace = true`"
    ))
}

/// Remove a trailing `#` comment, respecting quoted strings.
fn strip_toml_comment(line: &str) -> &str {
    let mut in_str: Option<char> = None;
    for (i, c) in line.char_indices() {
        match (in_str, c) {
            (None, '#') => return &line[..i],
            (None, '"' | '\'') => in_str = Some(c),
            (Some(q), c) if c == q => in_str = None,
            _ => {}
        }
    }
    line
}

fn diag(file: &str, line: u32, message: String) -> Diagnostic {
    Diagnostic {
        file: file.to_string(),
        line,
        rule: RULE,
        message,
    }
}
