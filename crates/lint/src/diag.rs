//! Diagnostics: what a rule reports and how it renders.
//!
//! Both renderers are deterministic: diagnostics are sorted by
//! `(file, line, rule)` before display, so two runs over the same tree
//! produce byte-identical text and JSON — reports are diffable across
//! machines and commits.

/// One finding at a `file:line` span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Path relative to the workspace root, `/`-separated.
    pub file: String,
    /// 1-based line the finding anchors to.
    pub line: u32,
    /// Stable rule identifier, e.g. `unwrap-in-lib`.
    pub rule: &'static str,
    /// Human-readable explanation, one line.
    pub message: String,
}

impl Diagnostic {
    /// The stable ordering key: `(file, line, rule)`.
    fn key(&self) -> (&str, u32, &str) {
        (&self.file, self.line, self.rule)
    }

    /// `file:line: [rule] message`, the text renderer's line format.
    pub fn render_text(&self) -> String {
        format!(
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Sort diagnostics into the canonical `(file, line, rule)` order.
pub fn sort_stable(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| a.key().cmp(&b.key()));
}

/// Render a sorted diagnostic list as text, one finding per line.
pub fn render_text(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&d.render_text());
        out.push('\n');
    }
    out
}

/// Render a sorted diagnostic list as a single JSON object:
/// `{"count": N, "diagnostics": [{"file","line","rule","message"}, ..]}`.
///
/// Hand-rolled like the rest of the workspace's JSON (see
/// `sno_check::bench`): no external dependencies, stable field order.
pub fn render_json(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"count\": {},\n", diags.len()));
    out.push_str("  \"diagnostics\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {");
        out.push_str(&format!("\"file\": \"{}\", ", escape_json(&d.file)));
        out.push_str(&format!("\"line\": {}, ", d.line));
        out.push_str(&format!("\"rule\": \"{}\", ", escape_json(d.rule)));
        out.push_str(&format!("\"message\": \"{}\"", escape_json(&d.message)));
        out.push('}');
    }
    if !diags.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Escape a string for embedding in a JSON string literal.
pub(crate) fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}
