//! The `sno-lint` command-line front end.
//!
//! ```text
//! sno-lint                         # lint the workspace rooted at the cwd
//! sno-lint --json                  # machine-readable report, stable-sorted
//! sno-lint --graph-json            # the workspace call graph, stable JSON
//! sno-lint --baseline <file.json>  # diff per-rule counts vs a baseline
//! sno-lint path/to/ws              # lint a different root
//! ```
//!
//! `--baseline` compares the current per-rule diagnostic and
//! pragma-suppression counts against a committed report (see
//! `tests/corpora/lint_baseline.json`), prints the delta, and fails on
//! any increase — the ratchet CI turns (ci.sh `lint` stage).
//!
//! Exit status: 0 when clean, 1 when any diagnostic survives or the
//! baseline regressed, 2 on usage or I/O errors. CI runs the rule pass
//! through `repro --lint`, which prints the replay command on failure.

use std::path::PathBuf;

fn main() {
    let mut json = false;
    let mut graph_json = false;
    let mut baseline: Option<PathBuf> = None;
    let mut expect_baseline = false;
    let mut root = PathBuf::from(".");
    for arg in std::env::args().skip(1) {
        if expect_baseline {
            baseline = Some(PathBuf::from(&arg));
            expect_baseline = false;
            continue;
        }
        match arg.as_str() {
            "--json" => json = true,
            "--graph-json" => graph_json = true,
            "--baseline" => expect_baseline = true,
            "--help" | "-h" => {
                println!("usage: sno-lint [--json] [--graph-json] [--baseline <file>] [root]");
                return;
            }
            other if !other.starts_with('-') => root = PathBuf::from(other),
            other => {
                eprintln!("sno-lint: unknown flag {other} (try --help)");
                std::process::exit(2);
            }
        }
    }
    if expect_baseline {
        eprintln!("sno-lint: --baseline needs a file argument");
        std::process::exit(2);
    }

    if graph_json {
        match sno_lint::graph_workspace_json(&root) {
            Ok(json) => {
                print!("{json}");
                return;
            }
            Err(e) => {
                eprintln!("sno-lint: cannot scan {}: {e}", root.display());
                std::process::exit(2);
            }
        }
    }

    let report = match sno_lint::lint_workspace(&root) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("sno-lint: cannot scan {}: {e}", root.display());
            std::process::exit(2);
        }
    };
    if json {
        print!("{}", report.render_json());
    } else {
        print!("{}", report.render_text());
    }

    let mut failed = !report.passed();
    if let Some(baseline_path) = baseline {
        let baseline_json = match std::fs::read_to_string(&baseline_path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!(
                    "sno-lint: cannot read baseline {}: {e}",
                    baseline_path.display()
                );
                std::process::exit(2);
            }
        };
        let (delta, regressed) = sno_lint::baseline_delta(&report.render_json(), &baseline_json);
        if delta.is_empty() {
            eprintln!(
                "sno-lint: per-rule counts match {}",
                baseline_path.display()
            );
        } else {
            for line in &delta {
                eprintln!("sno-lint: baseline delta: {line}");
            }
        }
        if regressed {
            eprintln!(
                "sno-lint: per-rule counts increased over {}; fix the new findings or re-bless the baseline",
                baseline_path.display()
            );
            failed = true;
        }
    }
    std::process::exit(i32::from(failed));
}
