//! The `sno-lint` command-line front end.
//!
//! ```text
//! sno-lint              # lint the workspace rooted at the cwd
//! sno-lint --json       # machine-readable report, stable-sorted
//! sno-lint path/to/ws   # lint a different root
//! ```
//!
//! Exit status: 0 when clean, 1 when any diagnostic survives, 2 on
//! usage or I/O errors. CI runs this through `repro --lint` (see
//! ci.sh), which prints the replay command on failure.

use std::path::PathBuf;

fn main() {
    let mut json = false;
    let mut root = PathBuf::from(".");
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--help" | "-h" => {
                println!("usage: sno-lint [--json] [root]");
                return;
            }
            other if !other.starts_with('-') => root = PathBuf::from(other),
            other => {
                eprintln!("sno-lint: unknown flag {other} (try --help)");
                std::process::exit(2);
            }
        }
    }
    let report = match sno_lint::lint_workspace(&root) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("sno-lint: cannot scan {}: {e}", root.display());
            std::process::exit(2);
        }
    };
    if json {
        print!("{}", report.render_json());
    } else {
        print!("{}", report.render_text());
    }
    std::process::exit(i32::from(!report.passed()));
}
