//! The rule engine: token-pattern rules over one source file, pragma
//! application, and the `#[cfg(test)]` region mask.
//!
//! Each rule protects one invariant the repo's determinism story rests
//! on (README "Determinism", DESIGN §7). Rules match token patterns —
//! never raw text — so strings, comments, and doc examples can mention
//! `SystemTime::now` freely, and `unwrap_or_else` never trips the
//! `unwrap` matcher.

use crate::diag::Diagnostic;
use crate::lexer::{lex, Token, TokenKind};
use crate::pragma;

/// The source-level rules, with one-line summaries (the manifest rule
/// lives in [`crate::manifest`]). Order here is documentation order.
pub const SOURCE_RULES: [(&str, &str); 5] = [
    (
        "wall-clock",
        "no SystemTime::now/Instant::now outside bench code: analysis must be a pure function of its inputs",
    ),
    (
        "ambient-rng",
        "no thread_rng/from_entropy/OsRng-style entropy: all randomness flows from seeded sno_types::Rng substreams",
    ),
    (
        "unordered-iter",
        "no HashMap/HashSet in deterministic crates: iteration order would leak into output; use BTreeMap/BTreeSet or sorted Vecs",
    ),
    (
        "unlabelled-substream",
        "substream labels must be self-documenting: no magic-number labels, substream_named takes a string literal",
    ),
    (
        "unwrap-in-lib",
        "no .unwrap()/.expect() in library code: return Result or justify the invariant with a pragma",
    ),
];

/// Crates (by `crates/<dir>` name) whose output must be byte-identical
/// across runs and thread counts; `unordered-iter` applies here.
pub const DETERMINISTIC_CRATES: [&str; 8] = [
    "types", "synth", "core", "atlas", "netsim", "stats", "orbit", "bgp",
];

/// Identifiers that reach for ambient entropy.
const AMBIENT_RNG_IDENTS: [&str; 6] = [
    "thread_rng",
    "from_entropy",
    "OsRng",
    "ThreadRng",
    "getrandom",
    "RandomState",
];

/// Every rule id a pragma may name.
pub fn known_rules() -> Vec<&'static str> {
    let mut rules: Vec<&'static str> = SOURCE_RULES.iter().map(|(id, _)| *id).collect();
    rules.push(crate::manifest::RULE);
    rules
}

/// What part of the tree a file belongs to, which decides rule scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// `src/` of a crate or the root package (bins included).
    Lib,
    /// An integration-test tree (`tests/` at root or under a crate).
    Test,
    /// A bench target (`benches/`).
    Bench,
    /// An example (`examples/`).
    Example,
}

/// A classified file path.
#[derive(Debug, Clone)]
pub struct FileCtx {
    /// `crates/<dir>` name, `None` for the root package.
    pub crate_dir: Option<String>,
    pub kind: FileKind,
}

/// Classify a workspace-relative, `/`-separated path.
pub fn classify(path: &str) -> FileCtx {
    let parts: Vec<&str> = path.split('/').collect();
    let (crate_dir, rest) = if parts.first() == Some(&"crates") && parts.len() > 2 {
        (parts.get(1).map(|s| s.to_string()), &parts[2..])
    } else {
        (None, &parts[..])
    };
    let kind = match rest.first().copied() {
        Some("tests") => FileKind::Test,
        Some("benches") => FileKind::Bench,
        Some("examples") => FileKind::Example,
        _ => FileKind::Lib,
    };
    FileCtx { crate_dir, kind }
}

/// Lint one source file, stable-sorted by `(file, line, rule)`. `path`
/// is the workspace-relative path used both for diagnostics and for
/// rule scoping.
pub fn lint_source(path: &str, src: &str) -> Vec<Diagnostic> {
    let lexed = lex(src);
    let ctx = classify(path);
    let in_test_region = test_region_mask(&lexed.tokens);
    let (pragmas, bad_pragmas) = pragma::extract(&lexed.comments);

    let mut raw = Vec::new();
    rule_wall_clock(path, &ctx, &lexed.tokens, &in_test_region, &mut raw);
    rule_ambient_rng(path, &lexed.tokens, &mut raw);
    rule_unordered_iter(path, &ctx, &lexed.tokens, &mut raw);
    rule_unlabelled_substream(path, &ctx, &lexed.tokens, &in_test_region, &mut raw);
    rule_unwrap_in_lib(path, &ctx, &lexed.tokens, &in_test_region, &mut raw);

    let mut out = apply_pragmas(path, raw, &pragmas, &bad_pragmas);
    crate::diag::sort_stable(&mut out);
    out
}

/// Suppress diagnostics covered by a pragma on their line; report
/// malformed, unknown-rule, and unused pragmas.
fn apply_pragmas(
    path: &str,
    raw: Vec<Diagnostic>,
    pragmas: &[pragma::Pragma],
    bad: &[pragma::BadPragma],
) -> Vec<Diagnostic> {
    let known = known_rules();
    let mut used = vec![false; pragmas.len()];
    let mut out = Vec::new();
    for d in raw {
        let suppressed = pragmas.iter().enumerate().any(|(i, p)| {
            let hit = p.target_line == d.line && p.rule == d.rule;
            if hit {
                used[i] = true;
            }
            hit
        });
        if !suppressed {
            out.push(d);
        }
    }
    for b in bad {
        out.push(diag(path, b.line, "bad-pragma", b.message.clone()));
    }
    for (i, p) in pragmas.iter().enumerate() {
        if !known.contains(&p.rule.as_str()) {
            out.push(diag(
                path,
                p.line,
                "bad-pragma",
                format!("allow({}) names an unknown rule", p.rule),
            ));
        } else if !used[i] {
            out.push(diag(
                path,
                p.line,
                "unused-pragma",
                format!(
                    "allow({}) suppresses nothing on line {}; remove it",
                    p.rule, p.target_line
                ),
            ));
        }
    }
    out
}

/// Mark every token inside a `#[test]`- or `#[cfg(test)]`-gated item.
/// Test-only code answers to the test suites, not the determinism
/// rules, so most rules skip these regions.
fn test_region_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            let attr_end = matching_bracket(tokens, i + 1);
            if attr_is_test(&tokens[i + 2..attr_end]) {
                // Skip any further attributes, then the whole item.
                let mut j = attr_end + 1;
                while tokens.get(j).is_some_and(|t| t.is_punct('#'))
                    && tokens.get(j + 1).is_some_and(|t| t.is_punct('['))
                {
                    j = matching_bracket(tokens, j + 1) + 1;
                }
                let item_end = item_end(tokens, j);
                for m in mask.iter_mut().take(item_end + 1).skip(i) {
                    *m = true;
                }
                i = item_end + 1;
                continue;
            }
            i = attr_end + 1;
            continue;
        }
        i += 1;
    }
    mask
}

/// Index of the `]` matching the `[` at `open` (or the last token if
/// the file is truncated mid-attribute).
fn matching_bracket(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
    }
    tokens.len().saturating_sub(1)
}

/// Whether attribute tokens (the part inside `#[..]`) gate on test:
/// `test`, `cfg(test)`, `cfg(all(test, ..))` — but not `cfg(not(test))`.
fn attr_is_test(attr: &[Token]) -> bool {
    let mut stack: Vec<String> = Vec::new();
    let mut prev_ident: Option<&str> = None;
    for t in attr {
        match &t.kind {
            TokenKind::Ident(name) => {
                if name == "test" && !stack.iter().any(|s| s == "not") {
                    return true;
                }
                prev_ident = Some(name);
            }
            TokenKind::Punct('(') => {
                stack.push(prev_ident.unwrap_or_default().to_string());
                prev_ident = None;
            }
            TokenKind::Punct(')') => {
                stack.pop();
                prev_ident = None;
            }
            _ => prev_ident = None,
        }
    }
    false
}

/// Index where the item starting at `start` ends: the `;` of a
/// semicolon-terminated item or the `}` closing its outermost brace.
fn item_end(tokens: &[Token], start: usize) -> usize {
    let (mut brace, mut bracket, mut paren) = (0i32, 0i32, 0i32);
    for (j, t) in tokens.iter().enumerate().skip(start) {
        match t.kind {
            TokenKind::Punct('{') => brace += 1,
            TokenKind::Punct('}') => {
                brace -= 1;
                if brace <= 0 {
                    return j;
                }
            }
            TokenKind::Punct('[') => bracket += 1,
            TokenKind::Punct(']') => bracket -= 1,
            TokenKind::Punct('(') => paren += 1,
            TokenKind::Punct(')') => paren -= 1,
            TokenKind::Punct(';') if brace == 0 && bracket == 0 && paren == 0 => return j,
            _ => {}
        }
    }
    tokens.len().saturating_sub(1)
}

/// `tokens[i]` is the method name of a `.name(..)` call.
fn is_method_call(tokens: &[Token], i: usize, name: &str) -> bool {
    tokens[i].is_ident(name)
        && i > 0
        && tokens[i - 1].is_punct('.')
        && tokens.get(i + 1).is_some_and(|t| t.is_punct('('))
}

/// `wall-clock`: `SystemTime::now` / `Instant::now` reads ambient time,
/// which can never appear in deterministic analysis code. Bench code
/// (`crates/bench`, `benches/` targets) times things by design; tests
/// are exempt like every region the determinism contract doesn't cover.
fn rule_wall_clock(
    path: &str,
    ctx: &FileCtx,
    tokens: &[Token],
    in_test: &[bool],
    out: &mut Vec<Diagnostic>,
) {
    if ctx.crate_dir.as_deref() == Some("bench")
        || matches!(ctx.kind, FileKind::Bench | FileKind::Test)
    {
        return;
    }
    for i in 0..tokens.len() {
        if in_test[i] {
            continue;
        }
        let TokenKind::Ident(name) = &tokens[i].kind else {
            continue;
        };
        if (name == "SystemTime" || name == "Instant")
            && tokens.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && tokens.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && tokens.get(i + 3).is_some_and(|t| t.is_ident("now"))
        {
            out.push(diag(
                path,
                tokens[i].line,
                "wall-clock",
                format!("{name}::now() reads the wall clock; derive time from the simulation's time axis"),
            ));
        }
    }
}

/// `ambient-rng`: entropy sources make a run irreproducible, so they
/// are banned everywhere — tests included, since a test that cannot
/// replay from a seed cannot be debugged.
fn rule_ambient_rng(path: &str, tokens: &[Token], out: &mut Vec<Diagnostic>) {
    for t in tokens {
        let TokenKind::Ident(name) = &t.kind else {
            continue;
        };
        if AMBIENT_RNG_IDENTS.contains(&name.as_str()) {
            out.push(diag(
                path,
                t.line,
                "ambient-rng",
                format!("{name} draws ambient entropy; use a labelled sno_types::Rng substream"),
            ));
        }
    }
}

/// `unordered-iter`: `HashMap`/`HashSet` iteration order depends on the
/// hasher's random state, so in the deterministic crates it would leak
/// nondeterminism straight into generated corpora and reports.
fn rule_unordered_iter(path: &str, ctx: &FileCtx, tokens: &[Token], out: &mut Vec<Diagnostic>) {
    let Some(crate_dir) = ctx.crate_dir.as_deref() else {
        return;
    };
    if !DETERMINISTIC_CRATES.contains(&crate_dir) {
        return;
    }
    for t in tokens {
        let TokenKind::Ident(name) = &t.kind else {
            continue;
        };
        if name == "HashMap" || name == "HashSet" {
            out.push(diag(
                path,
                t.line,
                "unordered-iter",
                format!(
                    "{name} has unordered iteration; use BTreeMap/BTreeSet or a sorted Vec in deterministic crates"
                ),
            ));
        }
    }
}

/// `unlabelled-substream`: a numeric-literal substream label is a magic
/// number nobody can grep for. Labels must be a string literal
/// (`substream_named("mlab")`) or derived from data
/// (`substream(u64::from(probe.id.0))`, `substream_shard(i)`).
fn rule_unlabelled_substream(
    path: &str,
    ctx: &FileCtx,
    tokens: &[Token],
    in_test: &[bool],
    out: &mut Vec<Diagnostic>,
) {
    if ctx.kind == FileKind::Test {
        return;
    }
    for i in 0..tokens.len() {
        if in_test[i] {
            continue;
        }
        if is_method_call(tokens, i, "substream_named") {
            if !matches!(tokens.get(i + 2).map(|t| &t.kind), Some(TokenKind::Str(_))) {
                out.push(diag(
                    path,
                    tokens[i].line,
                    "unlabelled-substream",
                    "substream_named must take a string-literal label".to_string(),
                ));
            }
            continue;
        }
        if is_method_call(tokens, i, "substream") || is_method_call(tokens, i, "substream_chain") {
            // First argument token, past any `&`, `[`, or `mut`.
            let mut j = i + 2;
            while tokens
                .get(j)
                .is_some_and(|t| t.is_punct('&') || t.is_punct('[') || t.is_ident("mut"))
            {
                j += 1;
            }
            if matches!(
                tokens.get(j).map(|t| &t.kind),
                Some(TokenKind::Int(_) | TokenKind::Float(_))
            ) {
                out.push(diag(
                    path,
                    tokens[i].line,
                    "unlabelled-substream",
                    "magic-number substream label; use substream_named(\"..\") or derive the label from data".to_string(),
                ));
            }
        }
    }
}

/// `unwrap-in-lib`: a panic in library code turns a recoverable input
/// problem into an abort. Tests, benches, and examples may unwrap.
fn rule_unwrap_in_lib(
    path: &str,
    ctx: &FileCtx,
    tokens: &[Token],
    in_test: &[bool],
    out: &mut Vec<Diagnostic>,
) {
    if ctx.kind != FileKind::Lib {
        return;
    }
    for i in 0..tokens.len() {
        if in_test[i] {
            continue;
        }
        for name in ["unwrap", "expect"] {
            if is_method_call(tokens, i, name) {
                out.push(diag(
                    path,
                    tokens[i].line,
                    "unwrap-in-lib",
                    format!(".{name}() in library code; return Result or justify with a pragma"),
                ));
            }
        }
    }
}

fn diag(file: &str, line: u32, rule: &'static str, message: String) -> Diagnostic {
    Diagnostic {
        file: file.to_string(),
        line,
        rule,
        message,
    }
}
