//! The rule engine: token-pattern and flow-aware rules, pragma
//! application, and the item-tree test mask.
//!
//! Each rule protects one invariant the repo's determinism story rests
//! on (README "Determinism", DESIGN §7). Rules match token patterns —
//! never raw text — so strings, comments, and doc examples can mention
//! `SystemTime::now` freely, and `unwrap_or_else` never trips the
//! `unwrap` matcher. Since PR 9 the single-file rules run over the item
//! tree recovered by [`crate::parse`] (test attribution follows real
//! item nesting), and the workspace-level `panic-reachable` rule runs
//! over the call graph in [`crate::graph`].

use std::collections::BTreeMap;

use crate::diag::Diagnostic;
use crate::graph;
use crate::lexer::{lex, Lexed, Token, TokenKind};
use crate::parse::{self, ItemKind, ItemTree};
use crate::pragma;

/// The source-level rules, with one-line summaries (the manifest rule
/// lives in [`crate::manifest`]). Order here is documentation order.
pub const SOURCE_RULES: [(&str, &str); 8] = [
    (
        "wall-clock",
        "no SystemTime::now/Instant::now outside bench code: analysis must be a pure function of its inputs",
    ),
    (
        "ambient-rng",
        "no thread_rng/from_entropy/OsRng-style entropy: all randomness flows from seeded sno_types::Rng substreams",
    ),
    (
        "unordered-iter",
        "no HashMap/HashSet in deterministic crates: iteration order would leak into output; use BTreeMap/BTreeSet or sorted Vecs",
    ),
    (
        "unlabelled-substream",
        "substream labels must be self-documenting: no magic-number labels, substream_named takes a string literal",
    ),
    (
        "unwrap-in-lib",
        "no .unwrap()/.expect() in library code: return Result or justify the invariant with a pragma",
    ),
    (
        "panic-reachable",
        "no panic site transitively reachable from a pipeline/online/experiment entry point unless justified at the root",
    ),
    (
        "rng-escape",
        "no Rng threaded across shard boundaries: a fn taking both an Rng and a shard/chunk index must take a per-shard substream instead",
    ),
    (
        "float-fold-order",
        "no f64 +=/sum() in par_fold_chunks/shard_reduce merge callbacks unless shard-order merging is justified; prefer chunk::accumulate",
    ),
];

/// Crates (by `crates/<dir>` name) whose output must be byte-identical
/// across runs and thread counts; `unordered-iter` and
/// `float-fold-order` apply here.
pub const DETERMINISTIC_CRATES: [&str; 8] = [
    "types", "synth", "core", "atlas", "netsim", "stats", "orbit", "bgp",
];

/// Identifiers that reach for ambient entropy.
const AMBIENT_RNG_IDENTS: [&str; 6] = [
    "thread_rng",
    "from_entropy",
    "OsRng",
    "ThreadRng",
    "getrandom",
    "RandomState",
];

/// Parameter names that carry a shard or chunk *index* (not a length or
/// granularity — `chunk_len` is a delivery knob, `shard` is an
/// identity).
const SHARD_INDEX_PARAMS: [&str; 6] = [
    "shard",
    "shard_idx",
    "shard_index",
    "chunk",
    "chunk_idx",
    "chunk_index",
];

/// Parallel helpers whose **last closure argument** merges per-shard
/// partials on the calling thread (`float-fold-order` watches these).
const MERGE_CALLBACK_FNS: [&str; 2] = ["par_fold_chunks", "shard_reduce"];

/// Every rule id a pragma may name.
pub fn known_rules() -> Vec<&'static str> {
    let mut rules: Vec<&'static str> = SOURCE_RULES.iter().map(|(id, _)| *id).collect();
    rules.push(crate::manifest::RULE);
    rules
}

/// What part of the tree a file belongs to, which decides rule scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// `src/` of a crate or the root package (bins included).
    Lib,
    /// An integration-test tree (`tests/` at root or under a crate).
    Test,
    /// A bench target (`benches/`).
    Bench,
    /// An example (`examples/`).
    Example,
}

/// A classified file path.
#[derive(Debug, Clone)]
pub struct FileCtx {
    /// `crates/<dir>` name, `None` for the root package.
    pub crate_dir: Option<String>,
    pub kind: FileKind,
}

/// Classify a workspace-relative, `/`-separated path.
pub fn classify(path: &str) -> FileCtx {
    let parts: Vec<&str> = path.split('/').collect();
    let (crate_dir, rest) = if parts.first() == Some(&"crates") && parts.len() > 2 {
        (parts.get(1).map(|s| s.to_string()), &parts[2..])
    } else {
        (None, &parts[..])
    };
    let kind = match rest.first().copied() {
        Some("tests") => FileKind::Test,
        Some("benches") => FileKind::Bench,
        Some("examples") => FileKind::Example,
        _ => FileKind::Lib,
    };
    FileCtx { crate_dir, kind }
}

/// One source file, lexed and item-parsed, ready for rules and the
/// call graph.
#[derive(Debug)]
pub struct FileAnalysis {
    /// Workspace-relative `/`-separated path.
    pub path: String,
    pub ctx: FileCtx,
    pub lexed: Lexed,
    pub tree: ItemTree,
}

/// Lex and parse one file.
pub fn analyze(path: &str, src: &str) -> FileAnalysis {
    let lexed = lex(src);
    let tree = parse::parse(&lexed);
    FileAnalysis {
        path: path.to_string(),
        ctx: classify(path),
        lexed,
        tree,
    }
}

/// The outcome of linting a set of files together.
#[derive(Debug, Default)]
pub struct WorkspaceLint {
    /// Surviving diagnostics, stable-sorted by `(file, line, rule)`.
    pub diagnostics: Vec<Diagnostic>,
    /// Per-rule count of diagnostics suppressed by a justified pragma —
    /// the ledger the CI baseline gate ratchets (a tree with zero
    /// diagnostics can still grow sloppier by accumulating allows).
    pub suppressed: BTreeMap<String, usize>,
}

/// Lint one source file, stable-sorted by `(file, line, rule)`. `path`
/// is the workspace-relative path used both for diagnostics and for
/// rule scoping. Flow-aware rules see only this file — for cross-file
/// reachability, lint the whole set through [`lint_files`].
pub fn lint_source(path: &str, src: &str) -> Vec<Diagnostic> {
    lint_files(&[(path.to_string(), src.to_string())]).diagnostics
}

/// Lint a set of files as one workspace: per-file token rules, the
/// cross-file call-graph rules, then pragma application per file.
pub fn lint_files(files: &[(String, String)]) -> WorkspaceLint {
    let analyses: Vec<FileAnalysis> = files.iter().map(|(p, s)| analyze(p, s)).collect();
    let g = graph::build(&analyses);
    let mut graph_diags = graph::panic_reachable(&g, &analyses);

    let mut out = WorkspaceLint::default();
    for fa in &analyses {
        let in_test = fa.tree.test_mask(fa.lexed.tokens.len());
        let mut raw = Vec::new();
        rule_wall_clock(&fa.path, &fa.ctx, &fa.lexed.tokens, &in_test, &mut raw);
        rule_ambient_rng(&fa.path, &fa.lexed.tokens, &mut raw);
        rule_unordered_iter(&fa.path, &fa.ctx, &fa.lexed.tokens, &mut raw);
        rule_unlabelled_substream(&fa.path, &fa.ctx, &fa.lexed.tokens, &in_test, &mut raw);
        rule_unwrap_in_lib(&fa.path, &fa.ctx, &fa.lexed.tokens, &in_test, &mut raw);
        rule_rng_escape(fa, &mut raw);
        rule_float_fold_order(fa, &in_test, &mut raw);
        let mut rest = Vec::new();
        for d in graph_diags.drain(..) {
            if d.file == fa.path {
                raw.push(d);
            } else {
                rest.push(d);
            }
        }
        graph_diags = rest;
        let (pragmas, bad_pragmas) = pragma::extract(&fa.lexed.comments);
        let kept = apply_pragmas(&fa.path, raw, &pragmas, &bad_pragmas, &mut out.suppressed);
        out.diagnostics.extend(kept);
    }
    // Diagnostics for files outside the analyzed set cannot exist (the
    // graph only anchors at nodes of analyzed files), but never drop
    // them silently if the invariant breaks.
    out.diagnostics.extend(graph_diags);
    crate::diag::sort_stable(&mut out.diagnostics);
    out
}

/// Suppress diagnostics covered by a pragma on their line; report
/// malformed, unknown-rule, and per-listed-rule unused pragmas. Each
/// suppression is tallied into `suppressed` by rule.
fn apply_pragmas(
    path: &str,
    raw: Vec<Diagnostic>,
    pragmas: &[pragma::Pragma],
    bad: &[pragma::BadPragma],
    suppressed: &mut BTreeMap<String, usize>,
) -> Vec<Diagnostic> {
    let known = known_rules();
    let mut used: Vec<Vec<bool>> = pragmas.iter().map(|p| vec![false; p.rules.len()]).collect();
    let mut out = Vec::new();
    for d in raw {
        let mut hit = false;
        for (i, p) in pragmas.iter().enumerate() {
            if p.target_line != d.line {
                continue;
            }
            for (r, rule) in p.rules.iter().enumerate() {
                if rule == d.rule {
                    used[i][r] = true;
                    hit = true;
                }
            }
        }
        if hit {
            *suppressed.entry(d.rule.to_string()).or_insert(0) += 1;
        } else {
            out.push(d);
        }
    }
    for b in bad {
        out.push(diag(path, b.line, "bad-pragma", b.message.clone()));
    }
    for (i, p) in pragmas.iter().enumerate() {
        for (r, rule) in p.rules.iter().enumerate() {
            if !known.contains(&rule.as_str()) {
                out.push(diag(
                    path,
                    p.line,
                    "bad-pragma",
                    format!("allow({rule}) names an unknown rule"),
                ));
            } else if !used[i][r] {
                out.push(diag(
                    path,
                    p.line,
                    "unused-pragma",
                    format!(
                        "allow({rule}) suppresses nothing on line {}; remove it",
                        p.target_line
                    ),
                ));
            }
        }
    }
    out
}

/// `tokens[i]` is the method name of a `.name(..)` call.
fn is_method_call(tokens: &[Token], i: usize, name: &str) -> bool {
    tokens[i].is_ident(name)
        && i > 0
        && tokens[i - 1].is_punct('.')
        && tokens.get(i + 1).is_some_and(|t| t.is_punct('('))
}

/// `wall-clock`: `SystemTime::now` / `Instant::now` reads ambient time,
/// which can never appear in deterministic analysis code. Bench code
/// (`crates/bench`, `benches/` targets) times things by design; tests
/// are exempt like every region the determinism contract doesn't cover.
fn rule_wall_clock(
    path: &str,
    ctx: &FileCtx,
    tokens: &[Token],
    in_test: &[bool],
    out: &mut Vec<Diagnostic>,
) {
    if ctx.crate_dir.as_deref() == Some("bench")
        || matches!(ctx.kind, FileKind::Bench | FileKind::Test)
    {
        return;
    }
    for i in 0..tokens.len() {
        if in_test[i] {
            continue;
        }
        let TokenKind::Ident(name) = &tokens[i].kind else {
            continue;
        };
        if (name == "SystemTime" || name == "Instant")
            && tokens.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && tokens.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && tokens.get(i + 3).is_some_and(|t| t.is_ident("now"))
        {
            out.push(diag(
                path,
                tokens[i].line,
                "wall-clock",
                format!("{name}::now() reads the wall clock; derive time from the simulation's time axis"),
            ));
        }
    }
}

/// `ambient-rng`: entropy sources make a run irreproducible, so they
/// are banned everywhere — tests included, since a test that cannot
/// replay from a seed cannot be debugged.
fn rule_ambient_rng(path: &str, tokens: &[Token], out: &mut Vec<Diagnostic>) {
    for t in tokens {
        let TokenKind::Ident(name) = &t.kind else {
            continue;
        };
        if AMBIENT_RNG_IDENTS.contains(&name.as_str()) {
            out.push(diag(
                path,
                t.line,
                "ambient-rng",
                format!("{name} draws ambient entropy; use a labelled sno_types::Rng substream"),
            ));
        }
    }
}

/// `unordered-iter`: `HashMap`/`HashSet` iteration order depends on the
/// hasher's random state, so in the deterministic crates it would leak
/// nondeterminism straight into generated corpora and reports.
fn rule_unordered_iter(path: &str, ctx: &FileCtx, tokens: &[Token], out: &mut Vec<Diagnostic>) {
    let Some(crate_dir) = ctx.crate_dir.as_deref() else {
        return;
    };
    if !DETERMINISTIC_CRATES.contains(&crate_dir) {
        return;
    }
    for t in tokens {
        let TokenKind::Ident(name) = &t.kind else {
            continue;
        };
        if name == "HashMap" || name == "HashSet" {
            out.push(diag(
                path,
                t.line,
                "unordered-iter",
                format!(
                    "{name} has unordered iteration; use BTreeMap/BTreeSet or a sorted Vec in deterministic crates"
                ),
            ));
        }
    }
}

/// `unlabelled-substream`: a numeric-literal substream label is a magic
/// number nobody can grep for. Labels must be a string literal
/// (`substream_named("mlab")`) or derived from data
/// (`substream(u64::from(probe.id.0))`, `substream_shard(i)`).
fn rule_unlabelled_substream(
    path: &str,
    ctx: &FileCtx,
    tokens: &[Token],
    in_test: &[bool],
    out: &mut Vec<Diagnostic>,
) {
    if ctx.kind == FileKind::Test {
        return;
    }
    for i in 0..tokens.len() {
        if in_test[i] {
            continue;
        }
        if is_method_call(tokens, i, "substream_named") {
            if !matches!(tokens.get(i + 2).map(|t| &t.kind), Some(TokenKind::Str(_))) {
                out.push(diag(
                    path,
                    tokens[i].line,
                    "unlabelled-substream",
                    "substream_named must take a string-literal label".to_string(),
                ));
            }
            continue;
        }
        if is_method_call(tokens, i, "substream") || is_method_call(tokens, i, "substream_chain") {
            // First argument token, past any `&`, `[`, or `mut`.
            let mut j = i + 2;
            while tokens
                .get(j)
                .is_some_and(|t| t.is_punct('&') || t.is_punct('[') || t.is_ident("mut"))
            {
                j += 1;
            }
            if matches!(
                tokens.get(j).map(|t| &t.kind),
                Some(TokenKind::Int(_) | TokenKind::Float(_))
            ) {
                out.push(diag(
                    path,
                    tokens[i].line,
                    "unlabelled-substream",
                    "magic-number substream label; use substream_named(\"..\") or derive the label from data".to_string(),
                ));
            }
        }
    }
}

/// `unwrap-in-lib`: a panic in library code turns a recoverable input
/// problem into an abort. Tests, benches, and examples may unwrap.
fn rule_unwrap_in_lib(
    path: &str,
    ctx: &FileCtx,
    tokens: &[Token],
    in_test: &[bool],
    out: &mut Vec<Diagnostic>,
) {
    if ctx.kind != FileKind::Lib {
        return;
    }
    for i in 0..tokens.len() {
        if in_test[i] {
            continue;
        }
        for name in ["unwrap", "expect"] {
            if is_method_call(tokens, i, name) {
                out.push(diag(
                    path,
                    tokens[i].line,
                    "unwrap-in-lib",
                    format!(".{name}() in library code; return Result or justify with a pragma"),
                ));
            }
        }
    }
}

/// `rng-escape`: a function that takes both an `Rng` (by `&mut` or by
/// value) and a shard/chunk **index** is threading one RNG stream
/// across shard boundaries — the stream's state then depends on shard
/// execution order, which is exactly what the substream discipline
/// (PR 2/PR 5) exists to prevent. The caller should derive a per-shard
/// substream (`rng.substream_shard(shard)`) and pass that instead, at
/// which point the shard index parameter disappears from the callee.
fn rule_rng_escape(fa: &FileAnalysis, out: &mut Vec<Diagnostic>) {
    if fa.ctx.kind != FileKind::Lib {
        return;
    }
    let toks = &fa.lexed.tokens;
    for id in fa.tree.walk() {
        let it = &fa.tree.items[id];
        if it.kind != ItemKind::Fn || it.is_test {
            continue;
        }
        let sig_hi = it.body.map_or(it.tok_hi, |(blo, _)| blo).min(toks.len());
        let sig = &toks[it.tok_lo.min(sig_hi)..sig_hi];
        let Some(params) = param_list(sig) else {
            continue;
        };
        let mut has_rng = false;
        let mut shard_param: Option<&str> = None;
        for (name, ty) in &params {
            if ty.iter().any(|t| t.is_ident("Rng")) {
                has_rng = true;
            }
            if SHARD_INDEX_PARAMS.contains(&name.as_str()) || name.ends_with("_shard") {
                shard_param = Some(name);
            }
        }
        if has_rng {
            if let Some(sp) = shard_param {
                out.push(diag(
                    &fa.path,
                    it.line,
                    "rng-escape",
                    format!(
                        "fn {} takes an Rng alongside shard index `{sp}`; derive a per-shard substream (rng.substream_shard({sp})) at the call site instead",
                        it.name
                    ),
                ));
            }
        }
    }
}

/// The `(name, type tokens)` of each parameter in a fn signature, or
/// `None` when no parameter list is found. Parses `a: T, mut b: U` at
/// paren depth 1; patterns more complex than `(mut)? name` yield the
/// last identifier before the `:`.
fn param_list(sig: &[Token]) -> Option<Vec<(String, Vec<Token>)>> {
    let open = sig.iter().position(|t| t.is_punct('('))?;
    let mut depth = 0i64;
    let mut close = open;
    for (j, t) in sig.iter().enumerate().skip(open) {
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                close = j;
                break;
            }
        }
    }
    if close == open {
        return None;
    }
    let mut params = Vec::new();
    let inner = &sig[open + 1..close];
    // Split on commas at depth 0 relative to the parameter list.
    let (mut p, mut b, mut a) = (0i64, 0i64, 0i64);
    let mut start = 0usize;
    let mut cuts = Vec::new();
    for (j, t) in inner.iter().enumerate() {
        match &t.kind {
            TokenKind::Punct('(') => p += 1,
            TokenKind::Punct(')') => p -= 1,
            TokenKind::Punct('[') => b += 1,
            TokenKind::Punct(']') => b -= 1,
            TokenKind::Punct('<') => a += 1,
            TokenKind::Punct('>') if !(j > 0 && inner[j - 1].is_punct('-')) => a -= 1,
            TokenKind::Punct(',') if p == 0 && b == 0 && a <= 0 => {
                cuts.push((start, j));
                start = j + 1;
            }
            _ => {}
        }
    }
    cuts.push((start, inner.len()));
    for (lo, hi) in cuts {
        let part = &inner[lo.min(hi)..hi];
        let Some(colon) = part.iter().position(|t| t.is_punct(':')) else {
            continue; // `self`, `&mut self` — no type annotation.
        };
        let name = part[..colon]
            .iter()
            .rev()
            .find_map(|t| t.ident())
            .unwrap_or_default()
            .to_string();
        params.push((name, part[colon + 1..].to_vec()));
    }
    Some(params)
}

/// `float-fold-order`: floating-point addition is not associative, so
/// an f64 `+=`/`.sum()` in the *merge* callback of a parallel helper is
/// only deterministic if partials arrive in shard order. The blessed
/// helpers (`chunk::accumulate`, and the helpers' own in-order fold
/// loops) guarantee that; a hand-rolled merge must either move to
/// `accumulate` or justify that its fold runs in shard order.
fn rule_float_fold_order(fa: &FileAnalysis, in_test: &[bool], out: &mut Vec<Diagnostic>) {
    if fa.ctx.kind != FileKind::Lib {
        return;
    }
    let Some(crate_dir) = fa.ctx.crate_dir.as_deref() else {
        return;
    };
    if !DETERMINISTIC_CRATES.contains(&crate_dir) {
        return;
    }
    let toks = &fa.lexed.tokens;
    for i in 0..toks.len() {
        if in_test.get(i).copied().unwrap_or(false) {
            continue;
        }
        let Some(name) = toks[i].ident() else {
            continue;
        };
        if !MERGE_CALLBACK_FNS.contains(&name) {
            continue;
        }
        // Skip the helper's own definition (`fn par_fold_chunks(..)`).
        if i > 0 && toks[i - 1].is_ident("fn") {
            continue;
        }
        if !toks.get(i + 1).is_some_and(|t| t.is_punct('(')) {
            continue;
        }
        let open = i + 1;
        let close = matching_paren(toks, open);
        let closures = closure_args(toks, open, close);
        let Some(&(line, blo, bhi)) = closures.last() else {
            continue;
        };
        if closures.len() < 2 {
            continue; // no separate map + merge: not the pattern.
        }
        let body = &toks[blo.min(bhi)..bhi.min(toks.len())];
        let accumulates = body
            .windows(2)
            .any(|w| w[0].is_punct('+') && w[1].is_punct('=') && w[0].hi == w[1].lo)
            || (blo..bhi.min(toks.len())).any(|j| is_method_call(toks, j, "sum"));
        if !accumulates {
            continue;
        }
        let float_evidence = toks[open..close.min(toks.len())].iter().any(|t| {
            matches!(&t.kind, TokenKind::Float(_)) || t.is_ident("f64") || t.is_ident("f32")
        });
        if float_evidence {
            out.push(diag(
                &fa.path,
                line,
                "float-fold-order",
                format!(
                    "float accumulation in the {name} merge callback is order-sensitive; merge in shard order via chunk::accumulate or justify",
                ),
            ));
        }
    }
}

/// Index of the `)` matching the `(` at `open` (or `tokens.len()` when
/// unterminated).
fn matching_paren(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0i64;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
    }
    tokens.len()
}

/// The closure arguments of a call: `(start_line, body_lo, body_hi)`
/// for each `|..| ..` at argument level between `open` and `close`.
fn closure_args(tokens: &[Token], open: usize, close: usize) -> Vec<(u32, usize, usize)> {
    let mut out = Vec::new();
    let (mut p, mut b, mut br) = (0i64, 0i64, 0i64);
    let mut j = open + 1;
    let close = close.min(tokens.len());
    while j < close {
        let t = &tokens[j];
        match &t.kind {
            TokenKind::Punct('(') => p += 1,
            TokenKind::Punct(')') => p -= 1,
            TokenKind::Punct('[') => b += 1,
            TokenKind::Punct(']') => b -= 1,
            TokenKind::Punct('{') => br += 1,
            TokenKind::Punct('}') => br -= 1,
            TokenKind::Punct('|') if p == 0 && b == 0 && br == 0 => {
                let starts_closure =
                    j == open + 1 || tokens[j - 1].is_punct(',') || tokens[j - 1].is_ident("move");
                if starts_closure {
                    let line = t.line;
                    // Find the closing `|` of the parameter list.
                    let (mut pp, mut pb) = (0i64, 0i64);
                    let mut k = j + 1;
                    while k < close {
                        match &tokens[k].kind {
                            TokenKind::Punct('(') => pp += 1,
                            TokenKind::Punct(')') => pp -= 1,
                            TokenKind::Punct('[') => pb += 1,
                            TokenKind::Punct(']') => pb -= 1,
                            TokenKind::Punct('|') if pp == 0 && pb == 0 => break,
                            _ => {}
                        }
                        k += 1;
                    }
                    let body_lo = k + 1;
                    // Body: a block to its matching brace, else to the
                    // `,` at argument level or the call's `)`.
                    let body_hi = if tokens.get(body_lo).is_some_and(|t| t.is_punct('{')) {
                        let mut d = 0i64;
                        let mut m = body_lo;
                        while m < close {
                            if tokens[m].is_punct('{') {
                                d += 1;
                            } else if tokens[m].is_punct('}') {
                                d -= 1;
                                if d == 0 {
                                    break;
                                }
                            }
                            m += 1;
                        }
                        (m + 1).min(close)
                    } else {
                        let (mut dp, mut db, mut dbr) = (0i64, 0i64, 0i64);
                        let mut m = body_lo;
                        while m < close {
                            match &tokens[m].kind {
                                TokenKind::Punct('(') => dp += 1,
                                TokenKind::Punct(')') => dp -= 1,
                                TokenKind::Punct('[') => db += 1,
                                TokenKind::Punct(']') => db -= 1,
                                TokenKind::Punct('{') => dbr += 1,
                                TokenKind::Punct('}') => dbr -= 1,
                                TokenKind::Punct(',') if dp == 0 && db == 0 && dbr == 0 => break,
                                _ => {}
                            }
                            m += 1;
                        }
                        m
                    };
                    out.push((line, body_lo, body_hi));
                    j = body_hi;
                    continue;
                }
            }
            _ => {}
        }
        j += 1;
    }
    out
}

fn diag(file: &str, line: u32, rule: &'static str, message: String) -> Diagnostic {
    Diagnostic {
        file: file.to_string(),
        line,
        rule,
        message,
    }
}
