//! Per-line allow pragmas.
//!
//! Syntax, in a plain `//` comment (doc comments don't carry pragmas):
//!
//! ```text
//! // sno-lint: allow(<rule>): <justification>
//! ```
//!
//! A pragma that is the only thing on its line suppresses matching
//! diagnostics on the **next** line; a trailing pragma suppresses its
//! **own** line. The justification is mandatory — an allow without a
//! reason is itself a diagnostic (`bad-pragma`), as is an allow naming
//! an unknown rule, so suppressions stay auditable. Unused pragmas are
//! reported too (`unused-pragma`): when the code a pragma excused is
//! fixed, the pragma must go.

use crate::lexer::Comment;

/// The marker that introduces a pragma inside a `//` comment.
pub const MARKER: &str = "sno-lint:";

/// A parsed allow pragma.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pragma {
    /// Line the pragma comment sits on.
    pub line: u32,
    /// Line whose diagnostics it suppresses.
    pub target_line: u32,
    /// The rule it suppresses.
    pub rule: String,
    /// Why the violation is acceptable (never empty).
    pub justification: String,
}

/// A malformed pragma, reported as a `bad-pragma` diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BadPragma {
    pub line: u32,
    pub message: String,
}

/// Scan `comments` for pragmas. Returns well-formed pragmas and the
/// malformed ones separately; comments without the marker are ignored.
pub fn extract(comments: &[Comment]) -> (Vec<Pragma>, Vec<BadPragma>) {
    let mut pragmas = Vec::new();
    let mut bad = Vec::new();
    for c in comments {
        let Some(body) = pragma_body(&c.text) else {
            continue;
        };
        match parse_body(body) {
            Ok((rule, justification)) => pragmas.push(Pragma {
                line: c.line,
                target_line: if c.own_line { c.line + 1 } else { c.line },
                rule,
                justification,
            }),
            Err(message) => bad.push(BadPragma {
                line: c.line,
                message,
            }),
        }
    }
    (pragmas, bad)
}

/// The text after `sno-lint:` if `text` is a plain `//` comment
/// carrying the marker; `None` for doc comments, block comments, and
/// ordinary prose.
fn pragma_body(text: &str) -> Option<&str> {
    let rest = text.strip_prefix("//")?;
    // `///` and `//!` are documentation; a pragma there would render
    // into rustdoc output, so they are not recognised.
    if rest.starts_with('/') || rest.starts_with('!') {
        return None;
    }
    rest.trim_start().strip_prefix(MARKER)
}

/// Parse `allow(<rule>): <justification>` after the marker.
fn parse_body(body: &str) -> Result<(String, String), String> {
    let body = body.trim();
    let Some(rest) = body.strip_prefix("allow(") else {
        return Err(format!(
            "pragma must read `{MARKER} allow(<rule>): <justification>`, got `{MARKER} {body}`"
        ));
    };
    let Some(close) = rest.find(')') else {
        return Err("pragma is missing the closing `)` after the rule name".to_string());
    };
    let rule = rest[..close].trim();
    if rule.is_empty() {
        return Err("pragma names no rule inside allow(..)".to_string());
    }
    let after = rest[close + 1..].trim_start();
    let Some(justification) = after.strip_prefix(':') else {
        return Err(format!(
            "allow({rule}) needs `: <justification>` — say why the violation is acceptable"
        ));
    };
    let justification = justification.trim();
    if justification.is_empty() {
        return Err(format!(
            "allow({rule}) has an empty justification — say why the violation is acceptable"
        ));
    }
    Ok((rule.to_string(), justification.to_string()))
}
