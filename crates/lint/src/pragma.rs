//! Per-line allow pragmas.
//!
//! Syntax, in a plain `//` comment (doc comments don't carry pragmas):
//!
//! ```text
//! // sno-lint: allow(<rule>): <justification>
//! // sno-lint: allow(<rule-a>, <rule-b>): <justification>
//! ```
//!
//! A pragma that is the only thing on its line suppresses matching
//! diagnostics on the **next** line; a trailing pragma suppresses its
//! **own** line. A pragma may name several comma-separated rules when
//! one line trips more than one rule — each listed rule is tracked
//! independently, so a rule that suppresses nothing is still reported
//! as `unused-pragma` even when its siblings fire. The justification is
//! mandatory — an allow without a reason is itself a diagnostic
//! (`bad-pragma`), as is an allow naming an unknown rule, so
//! suppressions stay auditable. When the code a pragma excused is
//! fixed, the pragma must go.

use crate::lexer::Comment;

/// The marker that introduces a pragma inside a `//` comment.
pub const MARKER: &str = "sno-lint:";

/// A parsed allow pragma.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pragma {
    /// Line the pragma comment sits on.
    pub line: u32,
    /// Line whose diagnostics it suppresses.
    pub target_line: u32,
    /// The rules it suppresses (one or more, in written order).
    pub rules: Vec<String>,
    /// Why the violation is acceptable (never empty).
    pub justification: String,
}

/// A malformed pragma, reported as a `bad-pragma` diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BadPragma {
    pub line: u32,
    pub message: String,
}

/// Scan `comments` for pragmas. Returns well-formed pragmas and the
/// malformed ones separately; comments without the marker are ignored.
pub fn extract(comments: &[Comment]) -> (Vec<Pragma>, Vec<BadPragma>) {
    let mut pragmas = Vec::new();
    let mut bad = Vec::new();
    for c in comments {
        let Some(body) = pragma_body(&c.text) else {
            continue;
        };
        match parse_body(body) {
            Ok((rules, justification)) => pragmas.push(Pragma {
                line: c.line,
                target_line: if c.own_line { c.line + 1 } else { c.line },
                rules,
                justification,
            }),
            Err(message) => bad.push(BadPragma {
                line: c.line,
                message,
            }),
        }
    }
    (pragmas, bad)
}

/// The text after `sno-lint:` if `text` is a plain `//` comment
/// carrying the marker; `None` for doc comments, block comments, and
/// ordinary prose.
fn pragma_body(text: &str) -> Option<&str> {
    let rest = text.strip_prefix("//")?;
    // `///` and `//!` are documentation; a pragma there would render
    // into rustdoc output, so they are not recognised.
    if rest.starts_with('/') || rest.starts_with('!') {
        return None;
    }
    rest.trim_start().strip_prefix(MARKER)
}

/// Parse `allow(<rule>[, <rule> ..]): <justification>` after the marker.
fn parse_body(body: &str) -> Result<(Vec<String>, String), String> {
    let body = body.trim();
    let Some(rest) = body.strip_prefix("allow(") else {
        return Err(format!(
            "pragma must read `{MARKER} allow(<rule>[, <rule>]): <justification>`, got `{MARKER} {body}`"
        ));
    };
    let Some(close) = rest.find(')') else {
        return Err("pragma is missing the closing `)` after the rule list".to_string());
    };
    let list = rest[..close].trim();
    if list.is_empty() {
        return Err("pragma names no rule inside allow(..)".to_string());
    }
    let mut rules = Vec::new();
    for part in list.split(',') {
        let rule = part.trim();
        if rule.is_empty() {
            return Err(format!("allow({list}) has an empty entry in its rule list"));
        }
        rules.push(rule.to_string());
    }
    let after = rest[close + 1..].trim_start();
    let Some(justification) = after.strip_prefix(':') else {
        return Err(format!(
            "allow({list}) needs `: <justification>` — say why the violation is acceptable"
        ));
    };
    let justification = justification.trim();
    if justification.is_empty() {
        return Err(format!(
            "allow({list}) has an empty justification — say why the violation is acceptable"
        ));
    }
    Ok((rules, justification.to_string()))
}
