//! Selftests for the lint pass: every rule fires on a bad fixture and
//! stays silent on a good one, pragma semantics are exact, and the
//! lexer survives the corners of Rust's literal syntax. A final test
//! lints the real workspace and requires it clean — the same gate CI
//! runs through `repro --lint`.

use sno_check::prelude::*;
use sno_lint::lexer::{lex, TokenKind};
use sno_lint::manifest::lint_manifest;
use sno_lint::parse::{self, ItemKind};
use sno_lint::rules::{analyze, lint_source};
use sno_lint::{graph, pragma, Diagnostic};

/// Rules fired by `lint_source`, in report order.
fn rules_of(diags: &[Diagnostic]) -> Vec<&'static str> {
    diags.iter().map(|d| d.rule).collect()
}

// ---------------------------------------------------------------------
// Lexer edge cases
// ---------------------------------------------------------------------

#[test]
fn lexer_raw_strings_with_hashes() {
    let lexed = lex(r####"let s = r##"quote "# inside"##;"####);
    let strs: Vec<_> = lexed
        .tokens
        .iter()
        .filter(|t| matches!(t.kind, TokenKind::Str(_)))
        .collect();
    assert_eq!(
        strs.len(),
        1,
        "one raw string token, got {:?}",
        lexed.tokens
    );
    // Nothing inside the raw string may surface as an identifier.
    assert!(!lexed.tokens.iter().any(|t| t.is_ident("quote")));
    assert!(!lexed.tokens.iter().any(|t| t.is_ident("inside")));
}

#[test]
fn lexer_byte_and_raw_byte_strings() {
    let lexed = lex(r###"let a = b"bytes"; let b = br#"raw bytes"#; let c = b'x';"###);
    let strs = lexed
        .tokens
        .iter()
        .filter(|t| matches!(t.kind, TokenKind::Str(_)))
        .count();
    let chars = lexed
        .tokens
        .iter()
        .filter(|t| matches!(t.kind, TokenKind::Char(_)))
        .count();
    assert_eq!(strs, 2);
    assert_eq!(chars, 1);
}

#[test]
fn lexer_nested_block_comments() {
    let lexed = lex("/* outer /* inner */ still comment */ fn after() {}");
    assert!(lexed.tokens.iter().any(|t| t.is_ident("after")));
    assert!(!lexed.tokens.iter().any(|t| t.is_ident("inner")));
    assert!(!lexed.tokens.iter().any(|t| t.is_ident("still")));
    assert_eq!(lexed.comments.len(), 1);
    assert!(lexed.comments[0].text.contains("inner"));
}

#[test]
fn lexer_lifetimes_vs_char_literals() {
    let lexed =
        lex(r"fn f<'a>(x: &'a u8) { let c = 'x'; let nl = '\n'; let s: &'static str = ...; }");
    let lifetimes: Vec<String> = lexed
        .tokens
        .iter()
        .filter_map(|t| match &t.kind {
            TokenKind::Lifetime(n) => Some(n.clone()),
            _ => None,
        })
        .collect();
    let chars = lexed
        .tokens
        .iter()
        .filter(|t| matches!(t.kind, TokenKind::Char(_)))
        .count();
    assert_eq!(lifetimes, ["a", "a", "static"]);
    assert_eq!(chars, 2, "'x' and '\\n' are chars, not lifetimes");
}

#[test]
fn lexer_numbers_and_method_calls_on_ints() {
    // `1.max(2)` must not lex `1.` as a float, and `0..n` must keep the
    // range dots out of the number.
    let lexed = lex("let a = 1.max(2); for i in 0..n {} let f = 1.5e3;");
    let ints: Vec<String> = lexed
        .tokens
        .iter()
        .filter_map(|t| match &t.kind {
            TokenKind::Int(s) => Some(s.clone()),
            _ => None,
        })
        .collect();
    let floats: Vec<String> = lexed
        .tokens
        .iter()
        .filter_map(|t| match &t.kind {
            TokenKind::Float(s) => Some(s.clone()),
            _ => None,
        })
        .collect();
    assert_eq!(ints, ["1", "2", "0"]);
    assert_eq!(floats, ["1.5e3"]);
    assert!(lexed.tokens.iter().any(|t| t.is_ident("max")));
}

#[test]
fn lexer_tracks_lines_and_never_panics_on_unterminated() {
    let lexed = lex("fn a() {}\nfn b() {}\n");
    let b = lexed.tokens.iter().find(|t| t.is_ident("b")).unwrap();
    assert_eq!(b.line, 2);
    // Unterminated literals and comments swallow the rest of the file.
    for src in ["let s = \"open", "let c = '", "/* open", "let r = r#\"open"] {
        let lexed = lex(src);
        assert!(!lexed.tokens.iter().any(|t| t.is_ident("open")));
    }
}

#[test]
fn lexer_raw_identifiers_are_single_tokens() {
    // `r#type` is one identifier whose span covers the whole `r#type`
    // spelling; the `#` must never surface as punctuation between an
    // `r` ident and a keyword.
    let lexed = lex("struct r#type { r#fn: u8 } fn r#match() {}");
    for name in ["type", "fn", "match"] {
        // The bare `fn` keyword also lexes as an ident named "fn", so
        // pick out the raw spelling by its span: `r#name` is two bytes
        // longer than `name`.
        let raw: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.is_ident(name) && t.hi - t.lo == name.len() + 2)
            .collect();
        assert_eq!(raw.len(), 1, "r#{name} should lex as one ident");
    }
    // No `#` survives as punctuation: both hashes belong to raw idents.
    assert!(!lexed.tokens.iter().any(|t| t.is_punct('#')));
    // `r#"…"#` with a quote after the hashes is still a raw string.
    let lexed = lex(r###"let s = r#"not an ident"#;"###);
    assert!(!lexed.tokens.iter().any(|t| t.is_ident("not")));
    assert_eq!(
        lexed
            .tokens
            .iter()
            .filter(|t| matches!(t.kind, TokenKind::Str(_)))
            .count(),
        1
    );
}

#[test]
fn lexer_skips_leading_shebang_only() {
    let lexed = lex("#!/usr/bin/env sno\nfn main() {}\n");
    assert!(lexed.tokens.iter().any(|t| t.is_ident("main")));
    assert!(!lexed.tokens.iter().any(|t| t.is_ident("env")));
    assert_eq!(lexed.tokens[0].line, 2, "tokens start after the shebang");
    // An inner attribute `#![…]` is not a shebang and must still lex.
    let attr = lex("#![allow(dead_code)]\nfn f() {}\n");
    assert!(attr.tokens.iter().any(|t| t.is_ident("allow")));
    // Rules see code after a shebang as usual.
    let src = "#!/usr/bin/env sno\nfn f() { let t = Instant::now(); }\n";
    assert_eq!(rules_of(&lint_source("src/main.rs", src)), ["wall-clock"]);
}

#[test]
fn pragma_inside_string_is_not_a_pragma() {
    let src = r#"fn f() { let s = "// sno-lint: allow(wall-clock): nope"; }"#;
    let lexed = lex(src);
    assert!(lexed.comments.is_empty(), "string mistaken for a comment");
    let (pragmas, bad) = pragma::extract(&lexed.comments);
    assert!(pragmas.is_empty() && bad.is_empty());
}

#[test]
fn banned_idents_inside_strings_and_comments_do_not_fire() {
    let src = concat!(
        "// SystemTime::now() is what we ban\n",
        "/* thread_rng too */\n",
        "fn f() -> &'static str { \"Instant::now() HashMap thread_rng\" }\n",
    );
    assert_eq!(lint_source("crates/core/src/demo.rs", src), []);
}

// ---------------------------------------------------------------------
// Rule fixtures: each fires on bad, stays silent on good
// ---------------------------------------------------------------------

#[test]
fn rule_wall_clock_fires_and_scopes() {
    let bad = "fn f() { let t = std::time::Instant::now(); }";
    assert_eq!(
        rules_of(&lint_source("crates/core/src/x.rs", bad)),
        ["wall-clock"]
    );
    let bad2 = "fn f() { let t = SystemTime::now(); }";
    assert_eq!(rules_of(&lint_source("src/main.rs", bad2)), ["wall-clock"]);
    // Bench code times things by design; tests answer to the suites.
    assert_eq!(lint_source("crates/bench/src/x.rs", bad), []);
    assert_eq!(lint_source("crates/core/benches/x.rs", bad), []);
    assert_eq!(lint_source("crates/core/tests/x.rs", bad), []);
    // `Instant` without `::now` is fine (e.g. taking one as an argument).
    assert_eq!(
        lint_source("crates/core/src/x.rs", "fn f(t: Instant) {}"),
        []
    );
}

#[test]
fn rule_ambient_rng_fires_everywhere() {
    for src in [
        "fn f() { let mut r = thread_rng(); }",
        "fn f() { let r = Rng::from_entropy(); }",
        "fn f() { let r = OsRng; }",
    ] {
        assert_eq!(
            rules_of(&lint_source("crates/apps/src/x.rs", src)),
            ["ambient-rng"]
        );
        // Tests included: an unseeded test cannot be replayed.
        assert_eq!(
            rules_of(&lint_source("crates/apps/tests/x.rs", src)),
            ["ambient-rng"]
        );
    }
    let good = "fn f() { let mut r = Rng::new(42).substream_named(\"demo\"); }";
    assert_eq!(lint_source("crates/apps/src/x.rs", good), []);
}

#[test]
fn rule_unordered_iter_fires_in_deterministic_crates_only() {
    let bad = "use std::collections::HashMap; fn f() { let m: HashMap<u32, u32> = ...; }";
    let diags = lint_source("crates/core/src/x.rs", bad);
    assert!(rules_of(&diags).iter().all(|r| *r == "unordered-iter"));
    assert!(!diags.is_empty());
    // The incremental modules added on top of the streaming layer are
    // covered from day one: their state must merge deterministically.
    for path in [
        "crates/core/src/online.rs",
        "crates/stats/src/sketch.rs",
        "crates/bgp/src/x.rs",
    ] {
        let diags = lint_source(path, bad);
        assert!(!diags.is_empty(), "{path} must be covered");
        assert!(rules_of(&diags).iter().all(|r| *r == "unordered-iter"));
    }
    // Non-deterministic crates and the root package may use hashing.
    assert_eq!(lint_source("crates/check/src/x.rs", bad), []);
    assert_eq!(lint_source("src/lib.rs", bad), []);
    let good = "use std::collections::BTreeMap; fn f() { let m: BTreeMap<u32, u32> = ...; }";
    assert_eq!(lint_source("crates/core/src/x.rs", good), []);
}

#[test]
fn rule_unlabelled_substream_fires_on_magic_numbers() {
    let bad_named = "fn f(r: &Rng) { let s = r.substream_named(label); }";
    assert_eq!(
        rules_of(&lint_source("crates/synth/src/x.rs", bad_named)),
        ["unlabelled-substream"]
    );
    let bad_magic = "fn f(r: &Rng) { let s = r.substream(7); }";
    assert_eq!(
        rules_of(&lint_source("crates/synth/src/x.rs", bad_magic)),
        ["unlabelled-substream"]
    );
    let bad_chain = "fn f(r: &Rng) { let s = r.substream_chain(&[3, 1]); }";
    assert_eq!(
        rules_of(&lint_source("crates/synth/src/x.rs", bad_chain)),
        ["unlabelled-substream"]
    );
    // String-literal labels and data-derived indices are the two
    // sanctioned spellings.
    let good = concat!(
        "fn f(r: &Rng, id: ProbeId, i: u64) {\n",
        "    let a = r.substream_named(\"mlab\");\n",
        "    let b = r.substream(u64::from(id.0));\n",
        "    let c = r.substream_chain(&[u64::from(id.0), i]);\n",
        "}\n",
    );
    assert_eq!(lint_source("crates/synth/src/x.rs", good), []);
    // Tests may use ad-hoc numeric streams.
    assert_eq!(lint_source("crates/synth/tests/x.rs", bad_magic), []);
}

#[test]
fn rule_unwrap_in_lib_fires_and_exempts() {
    let bad = "fn f(v: &[u8]) -> u8 { *v.first().unwrap() }";
    assert_eq!(
        rules_of(&lint_source("crates/stats/src/x.rs", bad)),
        ["unwrap-in-lib"]
    );
    let bad2 = "fn f(v: &[u8]) -> u8 { *v.first().expect(\"nonempty\") }";
    assert_eq!(
        rules_of(&lint_source("crates/stats/src/x.rs", bad2)),
        ["unwrap-in-lib"]
    );
    // Tests, benches, and examples may unwrap.
    for path in [
        "crates/stats/tests/x.rs",
        "crates/stats/benches/x.rs",
        "crates/stats/examples/x.rs",
        "tests/integration.rs",
    ] {
        assert_eq!(lint_source(path, bad), [], "{path} should be exempt");
    }
    // Whole-ident matching: `unwrap_or_else` is not `unwrap`.
    let good = "fn f(v: &[u8]) -> u8 { v.first().copied().unwrap_or_else(|| 0) }";
    assert_eq!(lint_source("crates/stats/src/x.rs", good), []);
}

#[test]
fn cfg_test_regions_are_exempt_but_not_cfg_not_test() {
    let masked = concat!(
        "pub fn f() {}\n",
        "#[cfg(test)]\n",
        "mod tests {\n",
        "    #[test]\n",
        "    fn t() { let x = Some(1).unwrap(); let t = Instant::now(); }\n",
        "}\n",
    );
    assert_eq!(lint_source("crates/core/src/x.rs", masked), []);
    let not_masked = concat!(
        "#[cfg(not(test))]\n",
        "pub fn f() { let x = Some(1).unwrap(); }\n",
    );
    assert_eq!(
        rules_of(&lint_source("crates/core/src/x.rs", not_masked)),
        ["unwrap-in-lib"]
    );
}

#[test]
fn rule_hermetic_manifest_fires_on_non_path_deps() {
    let bad = concat!(
        "[package]\nname = \"demo\"\n",
        "[dependencies]\n",
        "serde = \"1.0\"\n",
        "rand = { version = \"0.8\" }\n",
        "left-pad = { git = \"https://example.com/left-pad\" }\n",
    );
    let diags = lint_manifest("crates/demo/Cargo.toml", bad);
    assert_eq!(rules_of(&diags), ["hermetic-manifest"; 3]);
    let good = concat!(
        "[package]\nname = \"demo\"\n",
        "[dependencies]\n",
        "sno-types = { path = \"../types\" }\n",
        "sno-stats.workspace = true\n",
        "sno-core = { workspace = true }\n",
        "[dev-dependencies]\n",
        "sno-check.workspace = true\n",
    );
    assert_eq!(lint_manifest("crates/demo/Cargo.toml", good), []);
    // Non-dependency sections are not the rule's business.
    let unrelated = "[package]\nname = \"demo\"\nversion = \"0.1.0\"\n";
    assert_eq!(lint_manifest("Cargo.toml", unrelated), []);
}

// ---------------------------------------------------------------------
// Pragma semantics
// ---------------------------------------------------------------------

#[test]
fn own_line_pragma_suppresses_next_line() {
    let src = concat!(
        "fn f(v: &[u8]) -> u8 {\n",
        "    // sno-lint: allow(unwrap-in-lib): caller guarantees nonempty\n",
        "    *v.first().unwrap()\n",
        "}\n",
    );
    assert_eq!(lint_source("crates/core/src/x.rs", src), []);
}

#[test]
fn trailing_pragma_suppresses_own_line() {
    let src = concat!(
        "fn f(v: &[u8]) -> u8 {\n",
        "    *v.first().unwrap() // sno-lint: allow(unwrap-in-lib): checked above\n",
        "}\n",
    );
    assert_eq!(lint_source("crates/core/src/x.rs", src), []);
}

#[test]
fn pragma_does_not_reach_past_its_target_line() {
    let src = concat!(
        "fn f(v: &[u8]) -> u8 {\n",
        "    // sno-lint: allow(unwrap-in-lib): only excuses line 3\n",
        "    let a = *v.first().unwrap();\n",
        "    a + *v.last().unwrap()\n",
        "}\n",
    );
    let diags = lint_source("crates/core/src/x.rs", src);
    assert_eq!(rules_of(&diags), ["unwrap-in-lib"]);
    assert_eq!(diags[0].line, 4);
}

#[test]
fn pragma_missing_justification_is_bad() {
    for pragma_line in [
        "// sno-lint: allow(unwrap-in-lib)\n",
        "// sno-lint: allow(unwrap-in-lib):\n",
        "// sno-lint: allow(unwrap-in-lib):   \n",
        "// sno-lint: allow(): no rule\n",
        "// sno-lint: deny(unwrap-in-lib): wrong verb\n",
    ] {
        let src =
            format!("fn f(v: &[u8]) -> u8 {{\n    {pragma_line}    *v.first().unwrap()\n}}\n");
        let diags = lint_source("crates/core/src/x.rs", &src);
        assert!(
            diags.iter().any(|d| d.rule == "bad-pragma"),
            "{pragma_line:?} produced {diags:?}"
        );
        // A malformed pragma suppresses nothing.
        assert!(diags.iter().any(|d| d.rule == "unwrap-in-lib"));
    }
}

#[test]
fn pragma_naming_unknown_rule_is_bad() {
    let src = concat!(
        "// sno-lint: allow(no-such-rule): justified at length\n",
        "fn f() {}\n",
    );
    let diags = lint_source("crates/core/src/x.rs", src);
    assert_eq!(rules_of(&diags), ["bad-pragma"]);
    assert!(diags[0].message.contains("no-such-rule"));
}

#[test]
fn unused_pragma_is_reported() {
    let src = concat!(
        "// sno-lint: allow(unwrap-in-lib): nothing to excuse here\n",
        "fn f() {}\n",
    );
    let diags = lint_source("crates/core/src/x.rs", src);
    assert_eq!(rules_of(&diags), ["unused-pragma"]);
}

#[test]
fn doc_comments_do_not_carry_pragmas() {
    // A pragma spelled in a doc comment would render into rustdoc, so
    // it is inert: it neither suppresses nor reports.
    let src = concat!(
        "/// sno-lint: allow(unwrap-in-lib): not a real pragma\n",
        "fn f(v: &[u8]) -> u8 { *v.first().unwrap() }\n",
    );
    assert_eq!(
        rules_of(&lint_source("crates/core/src/x.rs", src)),
        ["unwrap-in-lib"]
    );
}

#[test]
fn multi_rule_pragma_suppresses_each_listed_rule() {
    let src = concat!(
        "fn f(v: &[u8]) -> u8 {\n",
        "    // sno-lint: allow(unwrap-in-lib, wall-clock): fixture exercising both rules at once\n",
        "    let _t = Instant::now(); *v.first().unwrap()\n",
        "}\n",
    );
    assert_eq!(lint_source("crates/core/src/x.rs", src), []);
}

#[test]
fn multi_rule_pragma_tracks_unused_rules_independently() {
    // Only the unwrap fires: the wall-clock half of the pragma is dead
    // weight and must be reported as such, without disturbing the half
    // that did suppress something.
    let src = concat!(
        "fn f(v: &[u8]) -> u8 {\n",
        "    // sno-lint: allow(unwrap-in-lib, wall-clock): only the unwrap fires\n",
        "    *v.first().unwrap()\n",
        "}\n",
    );
    let diags = lint_source("crates/core/src/x.rs", src);
    assert_eq!(rules_of(&diags), ["unused-pragma"]);
    assert!(diags[0].message.contains("allow(wall-clock)"));
    assert!(!diags[0].message.contains("unwrap-in-lib"));
}

#[test]
fn multi_rule_pragma_with_unknown_member_still_suppresses_known() {
    let src = concat!(
        "fn f(v: &[u8]) -> u8 {\n",
        "    // sno-lint: allow(unwrap-in-lib, no-such-rule): half right\n",
        "    *v.first().unwrap()\n",
        "}\n",
    );
    let diags = lint_source("crates/core/src/x.rs", src);
    assert_eq!(rules_of(&diags), ["bad-pragma"]);
    assert!(diags[0].message.contains("no-such-rule"));
}

// ---------------------------------------------------------------------
// Item parser (PR 9)
// ---------------------------------------------------------------------

#[test]
fn parser_indexes_items_with_nesting_and_test_attribution() {
    let src = concat!(
        "pub fn top() {}\n",
        "mod inner {\n",
        "    struct Widget;\n",
        "    impl Widget {\n",
        "        pub(crate) fn method(&self) {}\n",
        "    }\n",
        "}\n",
        "#[cfg(test)]\n",
        "mod tests {\n",
        "    #[test]\n",
        "    fn t() {}\n",
        "}\n",
    );
    let lexed = lex(src);
    let tree = parse::parse(&lexed);
    let find = |name: &str| {
        tree.walk()
            .into_iter()
            .map(|id| &tree.items[id])
            .find(|it| it.name == name)
            .unwrap_or_else(|| panic!("item {name} not indexed"))
    };
    let top = find("top");
    assert_eq!(top.kind, ItemKind::Fn);
    assert!(top.is_pub && !top.is_test);
    assert_eq!(top.line, 1);
    let method = find("method");
    assert_eq!(method.kind, ItemKind::Fn);
    assert!(method.is_pub && !method.is_test, "pub(crate) counts as pub");
    assert_eq!(find("Widget").kind, ItemKind::Struct);
    assert!(find("tests").is_test, "#[cfg(test)] mod is a test region");
    assert!(find("t").is_test, "items inherit the enclosing test region");
}

/// Alphabet for parser property tests: enough to spell `fn`, `mod`,
/// `impl`, attributes, braces, and string/comment introducers, so
/// generated soup regularly forms partial items.
const PARSER_ALPHABET: &str = "fn modimpluse tcfg#[]{}();!\"'/*r\n";

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The parser is total and its spans partition the file: walking
    /// the item tree yields well-nested spans that tile `0..len` with
    /// no gap and no overlap, whatever soup comes in.
    #[test]
    fn parser_spans_partition_every_byte(src in prop::string::string(PARSER_ALPHABET, 0..120)) {
        let lexed = lex(&src);
        let tree = parse::parse(&lexed);
        let parts = parse::span_partition(&tree, src.len());
        let parts = parts.expect("item spans must be consistent");
        let mut at = 0usize;
        for &(lo, hi, _inside) in &parts {
            prop_assert_eq!(lo, at, "gap or overlap at byte {}", at);
            prop_assert!(hi >= lo);
            at = hi;
        }
        prop_assert_eq!(at, src.len(), "partition must reach the end");
    }

    /// Full-file analysis (lex + parse + every rule) is total on soup
    /// from the parser alphabet too, wherever the file sits.
    #[test]
    fn analyze_never_panics(
        src in prop::string::string(PARSER_ALPHABET, 0..120),
        pick in 0..3usize,
    ) {
        let path = ["crates/core/src/x.rs", "crates/bench/src/experiments.rs", "src/main.rs"][pick];
        let _ = lint_source(path, &src);
    }
}

// ---------------------------------------------------------------------
// Call graph (PR 9)
// ---------------------------------------------------------------------

/// Fixture files for graph tests, analysed in the order given.
fn graph_fixture(order: &[usize]) -> String {
    let files = [
        ("crates/core/src/a.rs", "pub fn alpha() { beta(); }\n"),
        (
            "crates/core/src/b.rs",
            "pub fn beta() { gamma(); }\npub fn gamma() {}\n",
        ),
        (
            "crates/synth/src/c.rs",
            "pub struct Gen;\nimpl Gen {\n    pub fn emit(&self) { beta(); }\n}\n",
        ),
    ];
    let analysed: Vec<_> = order
        .iter()
        .map(|&i| analyze(files[i].0, files[i].1))
        .collect();
    graph::render_json(&graph::build(&analysed))
}

#[test]
fn graph_json_is_deterministic_and_file_order_independent() {
    let canonical = graph_fixture(&[0, 1, 2]);
    assert_eq!(canonical, graph_fixture(&[0, 1, 2]), "two runs differ");
    assert_eq!(canonical, graph_fixture(&[2, 1, 0]), "reversal leaks in");
    assert_eq!(canonical, graph_fixture(&[1, 2, 0]), "rotation leaks in");
    assert!(canonical.contains("\"version\": \"sno-lint-graph-v1\""));
    assert!(canonical.contains("crates/core/src/a.rs::alpha"));
    // The method call resolves by name: Gen::emit -> beta.
    assert!(canonical.contains("Gen"));
}

#[test]
fn workspace_graph_json_is_byte_identical_across_runs() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..");
    let a = sno_lint::graph_workspace_json(&root).expect("graph scan");
    let b = sno_lint::graph_workspace_json(&root).expect("graph scan");
    assert_eq!(a, b);
    assert!(a.contains("\"version\": \"sno-lint-graph-v1\""));
    assert!(a.contains("Pipeline"), "service entry types must appear");
}

// ---------------------------------------------------------------------
// Flow-aware rules (PR 9): each fires on bad, stays silent on good
// ---------------------------------------------------------------------

#[test]
fn rule_panic_reachable_fires_at_the_root() {
    let bad = concat!(
        "pub struct Pipeline;\n",
        "impl Pipeline {\n",
        "    pub fn run(&self) { helper(); }\n",
        "}\n",
        "fn helper() { inner(); }\n",
        "fn inner() { panic!(\"boom\"); }\n",
    );
    let diags = lint_source("crates/core/src/probe.rs", bad);
    assert_eq!(rules_of(&diags), ["panic-reachable"]);
    assert_eq!(diags[0].line, 3, "anchored at the entry point's fn line");
    assert!(diags[0]
        .message
        .contains("Pipeline::run -> helper -> inner"));
    assert!(diags[0].message.contains("panic!"));
}

#[test]
fn rule_panic_reachable_ignores_unreachable_panics() {
    // The panic exists but no entry point can reach it; `helper` has no
    // callers among the roots.
    let good = concat!(
        "pub struct Pipeline;\n",
        "impl Pipeline {\n",
        "    pub fn run(&self) {}\n",
        "}\n",
        "fn orphan() { panic!(\"never reached from a root\"); }\n",
    );
    assert_eq!(lint_source("crates/core/src/probe.rs", good), []);
}

#[test]
fn rule_panic_reachable_justified_at_the_root() {
    let src = concat!(
        "pub struct Pipeline;\n",
        "impl Pipeline {\n",
        "    // sno-lint: allow(panic-reachable): fixture invariant is validated upstream\n",
        "    pub fn run(&self) { inner(); }\n",
        "}\n",
        "fn inner() { panic!(\"boom\"); }\n",
    );
    assert_eq!(lint_source("crates/core/src/probe.rs", src), []);
}

#[test]
fn rule_rng_escape_fires_on_shard_index_params() {
    let bad = "pub fn jitter(rng: &mut Rng, shard: usize) -> u64 { rng.next_u64() }";
    let diags = lint_source("crates/synth/src/x.rs", bad);
    assert_eq!(rules_of(&diags), ["rng-escape"]);
    assert!(diags[0].message.contains("substream_shard(shard)"));
    // Suffix form and reversed parameter order both count.
    let bad2 = "fn fill(mlab_shard: usize, r: Rng) {}";
    assert_eq!(
        rules_of(&lint_source("crates/synth/src/x.rs", bad2)),
        ["rng-escape"]
    );
    // A chunk *length* is a delivery knob, not an identity; and a shard
    // index without an Rng is the normal sharded-map shape.
    for good in [
        "pub fn gen(rng: &mut Rng, chunk_len: usize) {}",
        "pub fn slice(shard: usize, len: usize) {}",
        "pub fn derive(rng: &Rng) -> Rng { rng.substream_named(\"x\") }",
    ] {
        assert_eq!(lint_source("crates/synth/src/x.rs", good), [], "{good}");
    }
    // Tests may wire fixtures however they like.
    assert_eq!(lint_source("crates/synth/tests/x.rs", bad), []);
}

#[test]
fn rule_float_fold_order_fires_on_merge_callbacks() {
    let bad = concat!(
        "pub fn collect(stream: Stream, threads: usize) -> f64 {\n",
        "    par_fold_chunks(stream, threads, 0.0,\n",
        "        |chunk| chunk.len() as f64,\n",
        "        |mut acc, part| { acc += part; acc })\n",
        "}\n",
    );
    let diags = lint_source("crates/core/src/x.rs", bad);
    assert_eq!(rules_of(&diags), ["float-fold-order"]);
    assert_eq!(diags[0].line, 4, "anchored at the merge closure");
    // `.sum()` in the merge counts too.
    let bad_sum = concat!(
        "pub fn total(n: usize, t: usize) -> f64 {\n",
        "    shard_reduce(n, t, |i| i as f64, 0.0, |acc: f64, p| [acc, p].iter().sum())\n",
        "}\n",
    );
    assert_eq!(
        rules_of(&lint_source("crates/core/src/x.rs", bad_sum)),
        ["float-fold-order"]
    );
    // The blessed shape merges through an in-order accumulator.
    let good = concat!(
        "pub fn collect(stream: Stream, threads: usize) -> Stats {\n",
        "    par_fold_chunks(stream, threads, Stats::default(),\n",
        "        |chunk| Stats::of(chunk),\n",
        "        |mut acc, part| { acc.merge(part); acc })\n",
        "}\n",
    );
    assert_eq!(lint_source("crates/core/src/x.rs", good), []);
    // A single closure is a plain fold, not a map + merge pair.
    let single = "pub fn f(s: S, t: usize) -> f64 { par_fold_chunks(s, t, 0.0, |acc: f64| acc) }";
    assert_eq!(lint_source("crates/core/src/x.rs", single), []);
    // Dev-tool crates may fold floats however they like.
    assert_eq!(lint_source("crates/check/src/x.rs", bad), []);
}

// ---------------------------------------------------------------------
// Report plumbing
// ---------------------------------------------------------------------

#[test]
fn diagnostics_sort_stably_and_render_json() {
    let src = concat!(
        "fn f(v: &[u8]) -> u8 { let t = Instant::now(); *v.first().unwrap() }\n",
        "fn g() { let r = thread_rng(); }\n",
    );
    let diags = lint_source("crates/core/src/x.rs", src);
    // Same file: line-major, then rule name; line 1 has two rules.
    assert_eq!(
        rules_of(&diags),
        ["unwrap-in-lib", "wall-clock", "ambient-rng"]
    );
    assert_eq!(diags[0].line, 1);
    assert_eq!(diags[2].line, 2);
    let json = sno_lint::diag::render_json(&diags);
    assert!(json.contains("\"count\": 3"));
    assert!(json.contains("\"rule\": \"wall-clock\""));
    assert!(json.contains("\"file\": \"crates/core/src/x.rs\""));
}

#[test]
fn baseline_delta_ratchets_upward_only() {
    let base = concat!(
        "{\n",
        "  \"rule_counts\": {\"wall-clock\": 1, \"unwrap-in-lib\": 2},\n",
        "  \"suppressed\": {\"panic-reachable\": 3}\n",
        "}\n",
    );
    // Any count increase — diagnostics or justified suppressions — is a
    // regression; the ratchet only turns one way.
    let worse = concat!(
        "{\n",
        "  \"rule_counts\": {\"wall-clock\": 2, \"unwrap-in-lib\": 2},\n",
        "  \"suppressed\": {\"panic-reachable\": 3}\n",
        "}\n",
    );
    let (delta, regressed) = sno_lint::baseline_delta(worse, base);
    assert!(regressed);
    assert!(delta
        .iter()
        .any(|l| l.contains("wall-clock") && l.contains("+1")));
    let more_suppressed = concat!(
        "{\n",
        "  \"rule_counts\": {\"wall-clock\": 1, \"unwrap-in-lib\": 2},\n",
        "  \"suppressed\": {\"panic-reachable\": 4}\n",
        "}\n",
    );
    let (_, regressed) = sno_lint::baseline_delta(more_suppressed, base);
    assert!(
        regressed,
        "new justified suppressions also turn the ratchet"
    );
    // Shrinking a count prints the delta but passes.
    let better = concat!(
        "{\n",
        "  \"rule_counts\": {\"wall-clock\": 0, \"unwrap-in-lib\": 2},\n",
        "  \"suppressed\": {\"panic-reachable\": 3}\n",
        "}\n",
    );
    let (delta, regressed) = sno_lint::baseline_delta(better, base);
    assert!(!regressed);
    assert_eq!(delta.len(), 1);
    // Identical reports produce no delta at all.
    let (delta, regressed) = sno_lint::baseline_delta(base, base);
    assert!(delta.is_empty() && !regressed);
    // A rule unknown to the baseline counts from zero.
    let new_rule = concat!(
        "{\n",
        "  \"rule_counts\": {\"wall-clock\": 1, \"unwrap-in-lib\": 2, \"brand-new\": 1},\n",
        "  \"suppressed\": {\"panic-reachable\": 3}\n",
        "}\n",
    );
    let (_, regressed) = sno_lint::baseline_delta(new_rule, base);
    assert!(regressed);
}

#[test]
fn workspace_is_lint_clean() {
    // The same gate CI runs through `repro --lint`: the real tree must
    // carry zero unjustified diagnostics.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..");
    let report = sno_lint::lint_workspace(&root).expect("workspace scan");
    assert!(
        report.passed(),
        "workspace has lint diagnostics:\n{}",
        report.render_text()
    );
    assert!(report.sources_scanned > 50, "walk found too few sources");
    assert!(
        report.manifests_scanned > 10,
        "walk found too few manifests"
    );
}

// ---------------------------------------------------------------------
// Property tests (sno-check harness)
// ---------------------------------------------------------------------

/// Characters that exercise every lexer mode: quotes, escapes, raw
/// string hashes, comment introducers, braces, and newlines.
const LEXER_ALPHABET: &str = "ab r#\"'\\/*!.x0\n(){}[];:";

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The lexer is total: any byte soup lexes without panicking, and
    /// every token line stays within the input's line count.
    #[test]
    fn lexer_never_panics(src in prop::string::string(LEXER_ALPHABET, 0..80)) {
        let lexed = lex(&src);
        let lines = src.lines().count().max(1) as u32;
        prop_assert!(lexed.tokens.iter().all(|t| t.line >= 1 && t.line <= lines));
        prop_assert!(lexed.comments.iter().all(|c| c.line >= 1 && c.line <= lines));
    }

    /// The whole per-file pass is total too, wherever the file sits.
    #[test]
    fn lint_source_never_panics(
        src in prop::string::string(LEXER_ALPHABET, 0..80),
        pick in 0..4usize,
    ) {
        let path = ["crates/core/src/x.rs", "crates/core/tests/x.rs", "src/main.rs", "crates/bench/src/x.rs"][pick];
        let _ = lint_source(path, &src);
    }

    /// Lexing is source-faithful for identifiers: an ident written as
    /// plain code always comes back as one token (flat-map builds the
    /// source from a generated name length).
    #[test]
    fn idents_round_trip(
        name in (1..12usize).prop_flat_map(|n| prop::string::string("abcdefgh_", n..n + 1)),
    ) {
        let src = format!("fn {} () {{}}", name.value);
        let lexed = lex(&src);
        prop_assert!(lexed.tokens.iter().any(|t| t.is_ident(&name.value)));
    }
}
