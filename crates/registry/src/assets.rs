//! Physical and commercial assets per operator: GEO slot longitudes,
//! gateway/egress geography, consumer service plans, and DNS resolver
//! placement.

use sno_geo::{GeoPoint, STARLINK_POPS};
use sno_types::Operator;
use std::sync::OnceLock;

/// Orbital slot longitudes (degrees east) of an operator's GEO fleet.
/// Empty for non-GEO operators. Static tables: path construction calls
/// this once per session, so it must not allocate.
pub fn geo_slots_of(op: Operator) -> &'static [f64] {
    match op {
        // LEO / MEO operators park nothing on the Clarke belt.
        Operator::Starlink | Operator::Oneweb | Operator::O3b => &[],
        Operator::Viasat => &[-115.0, -70.0],
        Operator::Hughes => &[-107.0, -63.0],
        Operator::Eutelsat => &[9.0, 36.0],
        Operator::Avanti => &[33.5],
        Operator::Ses => &[19.2, -47.0],
        Operator::Telalaska => &[-139.0],
        Operator::Intelsat => &[-58.0, 66.0],
        Operator::Kacific => &[150.0],
        Operator::Thaicom => &[78.5, 119.5],
        Operator::HellasSat => &[39.0],
        // Maritime operators lease Inmarsat-style global beams.
        Operator::Marlink | Operator::Kvh => &[-98.0, 25.0, 143.5],
        // Everyone else: a single regional slot near their home market.
        _ => {
            let p = crate::profile::profile_of(op);
            match p.country {
                "US" | "CA" | "MX" => &[-101.0],
                "BR" => &[-61.0],
                "GB" | "FR" | "GR" | "NO" | "LU" | "RU" => &[13.0],
                "AU" | "PG" | "SG" | "ID" | "TH" | "IN" => &[108.0],
                _ => &[-101.0],
            }
        }
    }
}

/// Internet egress points (PoP-equivalents) of an operator — where its
/// subscriber traffic enters the public internet. Geographic spread here
/// is what the paper's BGP analysis infers from peering jurisdictions.
/// Static tables (Starlink's is projected from [`STARLINK_POPS`] once):
/// path construction calls this once per session, so it must not
/// allocate.
pub fn egress_of(op: Operator) -> &'static [GeoPoint] {
    match op {
        // Starlink: one egress per PoP — the best-provisioned footprint.
        Operator::Starlink => {
            static POINTS: OnceLock<Vec<GeoPoint>> = OnceLock::new();
            POINTS.get_or_init(|| STARLINK_POPS.iter().map(|p| p.point).collect())
        }
        // OneWeb: only two US-based transit providers in the study
        // window — all traffic egresses in the US, which is exactly why
        // its median latency (154 ms) dwarfs Starlink's (56 ms).
        Operator::Oneweb => &[
            GeoPoint {
                lat: 39.0,
                lon: -77.5,
            }, // Ashburn
            GeoPoint {
                lat: 41.9,
                lon: -87.6,
            }, // Chicago
        ],
        // O3b/SES: well-connected teleports on three continents.
        Operator::O3b | Operator::Ses => &[
            GeoPoint {
                lat: 49.7,
                lon: 6.3,
            }, // Betzdorf (LU)
            GeoPoint {
                lat: 39.0,
                lon: -77.5,
            }, // Ashburn
            GeoPoint {
                lat: 1.35,
                lon: 103.8,
            }, // Singapore
        ],
        Operator::Viasat => &[
            GeoPoint {
                lat: 33.1,
                lon: -117.1,
            }, // Carlsbad
            GeoPoint {
                lat: 39.0,
                lon: -77.5,
            }, // Ashburn
            GeoPoint {
                lat: -23.5,
                lon: -46.6,
            }, // São Paulo
        ],
        Operator::Hughes => &[
            GeoPoint {
                lat: 39.2,
                lon: -77.3,
            }, // Germantown
            GeoPoint {
                lat: 34.0,
                lon: -118.2,
            }, // Los Angeles
        ],
        Operator::Telalaska => &[GeoPoint {
            lat: 61.2,
            lon: -149.9,
        }], // Anchorage
        Operator::Eutelsat => &[GeoPoint {
            lat: 48.9,
            lon: 2.3,
        }], // Paris
        Operator::Avanti => &[GeoPoint {
            lat: 51.5,
            lon: -0.1,
        }], // London
        Operator::HellasSat => &[GeoPoint {
            lat: 38.0,
            lon: 23.7,
        }], // Athens
        Operator::Kacific => &[GeoPoint {
            lat: -33.9,
            lon: 151.2,
        }], // Sydney
        // Maritime fleets land at a handful of teleports.
        Operator::Marlink => &[
            GeoPoint {
                lat: 59.9,
                lon: 10.7,
            }, // Oslo
            GeoPoint {
                lat: 40.0,
                lon: -75.0,
            }, // US East
        ],
        Operator::Kvh => &[GeoPoint {
            lat: 41.5,
            lon: -71.3,
        }], // Rhode Island
        // Everyone else: one teleport near the home market.
        _ => {
            let p = crate::profile::profile_of(op);
            match p.country {
                "US" => &[GeoPoint {
                    lat: 39.0,
                    lon: -98.0,
                }],
                "CA" => &[GeoPoint {
                    lat: 45.4,
                    lon: -75.7,
                }],
                "MX" => &[GeoPoint {
                    lat: 19.4,
                    lon: -99.1,
                }],
                "BR" => &[GeoPoint {
                    lat: -23.5,
                    lon: -46.6,
                }],
                "GB" => &[GeoPoint {
                    lat: 51.5,
                    lon: -0.1,
                }],
                "FR" => &[GeoPoint {
                    lat: 48.9,
                    lon: 2.3,
                }],
                "GR" => &[GeoPoint {
                    lat: 38.0,
                    lon: 23.7,
                }],
                "NO" => &[GeoPoint {
                    lat: 59.9,
                    lon: 10.7,
                }],
                "LU" => &[GeoPoint {
                    lat: 49.6,
                    lon: 6.1,
                }],
                "RU" => &[GeoPoint {
                    lat: 55.8,
                    lon: 37.6,
                }],
                "AU" => &[GeoPoint {
                    lat: -33.9,
                    lon: 151.2,
                }],
                "PG" => &[GeoPoint {
                    lat: -9.4,
                    lon: 147.2,
                }],
                "SG" => &[GeoPoint {
                    lat: 1.35,
                    lon: 103.8,
                }],
                "ID" => &[GeoPoint {
                    lat: -6.2,
                    lon: 106.8,
                }],
                "TH" => &[GeoPoint {
                    lat: 13.8,
                    lon: 100.5,
                }],
                "IN" => &[GeoPoint {
                    lat: 19.1,
                    lon: 72.9,
                }],
                _ => &[GeoPoint {
                    lat: 39.0,
                    lon: -98.0,
                }],
            }
        }
    }
}

/// Gateway (teleport) sites: where the satellite downlink lands. For
/// LEO these are distributed near the egress PoPs; for GEO they are the
/// teleports themselves.
pub fn gateways_of(op: Operator) -> &'static [GeoPoint] {
    egress_of(op)
}

/// A consumer service plan: the speed range subscribers actually see.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServicePlan {
    /// Download range, Mbps.
    pub down_lo: f64,
    pub down_hi: f64,
    /// Upload range, Mbps.
    pub up_lo: f64,
    pub up_hi: f64,
    /// Advertised download speed, Mbps (Figure 9's HughesNet gap: 25
    /// advertised, ≤3 delivered).
    pub advertised_down: f64,
}

/// The service plan subscribers of `op` are on.
pub fn service_plan_of(op: Operator) -> ServicePlan {
    match op {
        Operator::Starlink => ServicePlan {
            down_lo: 70.0,
            down_hi: 170.0,
            up_lo: 6.0,
            up_hi: 21.0,
            advertised_down: 100.0,
        },
        Operator::Viasat => ServicePlan {
            down_lo: 10.0,
            down_hi: 40.0,
            up_lo: 2.0,
            up_hi: 3.5,
            advertised_down: 25.0,
        },
        Operator::Hughes => ServicePlan {
            down_lo: 1.0,
            down_hi: 3.0,
            up_lo: 2.0,
            up_hi: 3.0,
            advertised_down: 25.0,
        },
        Operator::Oneweb => ServicePlan {
            down_lo: 30.0,
            down_hi: 80.0,
            up_lo: 5.0,
            up_hi: 12.0,
            advertised_down: 75.0,
        },
        Operator::O3b => ServicePlan {
            down_lo: 40.0,
            down_hi: 120.0,
            up_lo: 10.0,
            up_hi: 30.0,
            advertised_down: 100.0,
        },
        // Generic GEO broadband.
        _ => ServicePlan {
            down_lo: 5.0,
            down_hi: 20.0,
            up_lo: 1.0,
            up_hi: 3.0,
            advertised_down: 25.0,
        },
    }
}

/// Where an operator's default DNS resolver lives relative to the
/// satellite hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResolverPlacement {
    /// At the PoP, on the internet side of the satellite link (Starlink
    /// hands out Cloudflare).
    AtPop,
    /// The operator's own resolver, reached across the satellite link's
    /// full RTT.
    OperatorRun,
}

/// Resolver placement per operator (verified by the paper via
/// `test.nextdns.io`).
pub fn resolver_placement_of(op: Operator) -> ResolverPlacement {
    match op {
        Operator::Starlink => ResolverPlacement::AtPop,
        _ => ResolverPlacement::OperatorRun,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leo_and_meo_have_no_geo_slots() {
        assert!(geo_slots_of(Operator::Starlink).is_empty());
        assert!(geo_slots_of(Operator::Oneweb).is_empty());
        assert!(geo_slots_of(Operator::O3b).is_empty());
    }

    #[test]
    fn every_geo_operator_has_a_slot() {
        use sno_types::{AccessKind, OrbitClass};
        for p in crate::profile::PROFILES {
            let geoish = matches!(
                p.access,
                AccessKind::Satellite(OrbitClass::Geo) | AccessKind::MeoGeo
            );
            if geoish {
                assert!(!geo_slots_of(p.operator).is_empty(), "{}", p.operator);
            }
        }
    }

    #[test]
    fn slots_are_valid_longitudes() {
        for op in Operator::ALL {
            for &lon in geo_slots_of(op) {
                assert!((-180.0..=180.0).contains(&lon), "{op}: {lon}");
            }
        }
    }

    #[test]
    fn starlink_has_the_widest_egress_footprint() {
        let starlink = egress_of(Operator::Starlink).len();
        for op in Operator::ALL {
            if op != Operator::Starlink {
                assert!(
                    egress_of(op).len() < starlink,
                    "{op} should have fewer egress points than Starlink"
                );
            }
        }
        assert_eq!(
            egress_of(Operator::Oneweb).len(),
            2,
            "paper: two US providers"
        );
    }

    #[test]
    fn plans_match_figure9() {
        let s = service_plan_of(Operator::Starlink);
        assert!(s.down_lo >= 70.0 && s.down_hi >= 150.0);
        let h = service_plan_of(Operator::Hughes);
        assert!(h.down_hi <= 3.0, "HughesNet never exceeds 3 Mbps");
        assert!(h.advertised_down >= 25.0, "...but advertises 25");
        let v = service_plan_of(Operator::Viasat);
        assert!(v.down_lo >= 10.0 && v.down_hi <= 40.0);
    }

    #[test]
    fn only_starlink_resolves_at_the_pop() {
        assert_eq!(
            resolver_placement_of(Operator::Starlink),
            ResolverPlacement::AtPop
        );
        assert_eq!(
            resolver_placement_of(Operator::Viasat),
            ResolverPlacement::OperatorRun
        );
        assert_eq!(
            resolver_placement_of(Operator::Hughes),
            ResolverPlacement::OperatorRun
        );
    }
}
