//! Facades over the public registries the identification pipeline uses.
//!
//! Each submodule mimics the *interface and imperfections* of a real
//! source:
//!
//! * [`asdb`] returns every AS filed under "Satellite Communication" —
//!   including operators that are not consumer SNOs at all (cable TV,
//!   rural wireline, fleet tracking, teleports), and *excluding* Starlink
//!   and Viasat, which the real ASdb missed;
//! * [`hebgp`] is a name search over all known ASes, the fallback that
//!   recovers the missing operators;
//! * [`ipinfo`] returns organisation / website / prefix details per ASN;
//! * [`peeringdb`] carries the notes field that exposes AS27277 as
//!   Starlink's corporate network.

use crate::prefixes::allocation_for;
use crate::profile::{profile_of, PROFILES};
use sno_types::{Asn, Operator, Prefix24};

/// An AS that ASdb files under satellite but that manual curation must
/// reject (step 2 of Figure 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Distractor {
    pub asn: u32,
    pub org: &'static str,
    /// Why it is not a consumer SNO.
    pub actual_business: &'static str,
}

/// Distractor ASes, patterned on the examples the paper names (Cable
/// Axion, Filer Mutual Telephone, Teletrac, United Teleports) plus more
/// of each category.
pub const DISTRACTORS: &[Distractor] = &[
    Distractor {
        asn: 398101,
        org: "Cable Axion Digitel",
        actual_business: "cable TV operator",
    },
    Distractor {
        asn: 398102,
        org: "Filer Mutual Telephone",
        actual_business: "residential broadband",
    },
    Distractor {
        asn: 398103,
        org: "Teletrac Navman",
        actual_business: "fleet navigation services",
    },
    Distractor {
        asn: 398104,
        org: "United Teleports Inc",
        actual_business: "teleport operator",
    },
    Distractor {
        asn: 398105,
        org: "Prairie Hills Cable",
        actual_business: "cable TV operator",
    },
    Distractor {
        asn: 398106,
        org: "Bighorn Rural Telephone",
        actual_business: "residential broadband",
    },
    Distractor {
        asn: 398107,
        org: "OrbitTrack Asset Services",
        actual_business: "fleet navigation services",
    },
    Distractor {
        asn: 398108,
        org: "Gateway Earth Teleport",
        actual_business: "teleport operator",
    },
    Distractor {
        asn: 398109,
        org: "Lakeshore Cablevision",
        actual_business: "cable TV operator",
    },
    Distractor {
        asn: 398110,
        org: "Mesa Valley Telephone Co-op",
        actual_business: "residential broadband",
    },
];

/// ASdb-style category database.
pub mod asdb {
    use super::*;

    /// One ASdb row.
    #[derive(Debug, Clone)]
    pub struct AsdbEntry {
        pub asn: Asn,
        pub org: String,
        /// ASdb category path.
        pub category: &'static str,
    }

    /// Every AS filed under "Computer and Information Technology →
    /// Satellite Communication". Incomplete: Starlink's and Viasat's
    /// ASNs are absent (they must be recovered via [`super::hebgp`]).
    pub fn satellite_ases() -> Vec<AsdbEntry> {
        let mut out = Vec::new();
        for p in PROFILES {
            if !p.in_asdb {
                continue;
            }
            for &asn in p.asns {
                out.push(AsdbEntry {
                    asn: Asn(asn),
                    org: p.org.to_string(),
                    category: "Satellite Communication",
                });
            }
        }
        for d in DISTRACTORS {
            out.push(AsdbEntry {
                asn: Asn(d.asn),
                org: d.org.to_string(),
                category: "Satellite Communication",
            });
        }
        out
    }
}

/// Hurricane-Electric-style BGP toolkit: search ASes by name.
pub mod hebgp {
    use super::*;

    /// ASNs whose organisation name contains `query`
    /// (case-insensitive). Covers *all* operators, including those ASdb
    /// misses.
    pub fn search(query: &str) -> Vec<Asn> {
        let q = query.to_ascii_lowercase();
        let mut out = Vec::new();
        for p in PROFILES {
            let hay = format!(
                "{} {}",
                p.org.to_ascii_lowercase(),
                p.operator.name().to_ascii_lowercase()
            );
            if hay.contains(&q) {
                out.extend(p.asns.iter().map(|&a| Asn(a)));
            }
        }
        for d in DISTRACTORS {
            if d.org.to_ascii_lowercase().contains(&q) {
                out.push(Asn(d.asn));
            }
        }
        out
    }
}

/// IPInfo-style ASN details.
pub mod ipinfo {
    use super::*;

    /// IPInfo-style record for an ASN.
    #[derive(Debug, Clone)]
    pub struct AsnDetails {
        pub asn: Asn,
        pub org: String,
        pub website: &'static str,
        pub country: &'static str,
        /// Announced `/24` prefixes.
        pub prefixes: Vec<Prefix24>,
    }

    /// Details for `asn`, if it belongs to a known operator or
    /// distractor.
    pub fn lookup(asn: Asn) -> Option<AsnDetails> {
        if let Some(p) = PROFILES.iter().find(|p| p.asns.contains(&asn.0)) {
            let prefixes = allocation_for(p.operator)
                .into_iter()
                .filter(|(a, _)| *a == asn)
                .flat_map(|(_, specs)| specs.into_iter().map(|s| s.prefix))
                .collect();
            return Some(AsnDetails {
                asn,
                org: p.org.to_string(),
                website: p.website,
                country: p.country,
                prefixes,
            });
        }
        DISTRACTORS
            .iter()
            .find(|d| d.asn == asn.0)
            .map(|d| AsnDetails {
                asn,
                org: d.org.to_string(),
                website: "example.invalid",
                country: "US",
                prefixes: Vec::new(),
            })
    }
}

/// PeeringDB-style notes.
pub mod peeringdb {
    use super::*;

    /// Free-text notes attached to an ASN's PeeringDB page. The note on
    /// AS14593 is how the paper learned that AS27277 carries Starlink's
    /// corporate (terrestrial) traffic.
    pub fn notes(asn: Asn) -> Option<&'static str> {
        match asn.0 {
            14593 => Some(
                "AS14593 serves Starlink customer terminals. Corporate and \
                 office networks are announced via AS27277.",
            ),
            27277 => Some("Starlink corporate network (terrestrial)."),
            _ => None,
        }
    }
}

/// Is this AS a genuine consumer/enterprise SNO (true) or one of the
/// lookalikes manual curation rejects (false)? `None` if unknown.
pub fn is_genuine_sno(asn: Asn) -> Option<bool> {
    if PROFILES.iter().any(|p| p.asns.contains(&asn.0)) {
        return Some(true);
    }
    if DISTRACTORS.iter().any(|d| d.asn == asn.0) {
        return Some(false);
    }
    None
}

/// The operator an SNO ASN belongs to (convenience re-export).
pub fn operator_of(asn: Asn) -> Option<Operator> {
    crate::profile::operator_of_asn(asn)
}

/// Access-kind lookup used by the manual curation stage.
pub fn access_of(op: Operator) -> sno_types::AccessKind {
    profile_of(op).access
}

#[cfg(test)]
mod tests {
    use super::*;
    use sno_types::{AccessKind, OrbitClass};

    #[test]
    fn asdb_misses_starlink_and_viasat() {
        let entries = asdb::satellite_ases();
        assert!(!entries.iter().any(|e| e.asn == Asn(14593)));
        assert!(!entries.iter().any(|e| e.asn == Asn(13955)));
        // But has HughesNet and the distractors.
        assert!(entries.iter().any(|e| e.asn == Asn(28613)));
        assert!(entries.iter().any(|e| e.org.contains("Cable Axion")));
    }

    #[test]
    fn asdb_entry_count() {
        // 67 SNO ASNs − 2 Starlink − 10 Viasat = 55, plus 10 distractors.
        assert_eq!(asdb::satellite_ases().len(), 65);
    }

    #[test]
    fn hebgp_recovers_missing_operators() {
        let starlink = hebgp::search("starlink");
        assert!(starlink.contains(&Asn(14593)));
        assert!(starlink.contains(&Asn(27277)));
        let viasat = hebgp::search("viasat");
        assert_eq!(viasat.len(), 10);
    }

    #[test]
    fn hebgp_search_is_case_insensitive() {
        assert_eq!(hebgp::search("STARLINK"), hebgp::search("starlink"));
        assert!(hebgp::search("no such operator xyz").is_empty());
    }

    #[test]
    fn ipinfo_has_details_and_prefixes() {
        let d = ipinfo::lookup(Asn(14593)).unwrap();
        assert_eq!(d.website, "starlink.com");
        assert!(!d.prefixes.is_empty());
        assert!(ipinfo::lookup(Asn(999_999)).is_none());
        // Distractors resolve but announce nothing interesting.
        let cable = ipinfo::lookup(Asn(398101)).unwrap();
        assert!(cable.prefixes.is_empty());
    }

    #[test]
    fn peeringdb_exposes_corporate_asn() {
        assert!(peeringdb::notes(Asn(14593)).unwrap().contains("27277"));
        assert!(peeringdb::notes(Asn(27277)).unwrap().contains("corporate"));
        assert!(peeringdb::notes(Asn(28613)).is_none());
    }

    #[test]
    fn genuine_vs_distractor() {
        assert_eq!(is_genuine_sno(Asn(14593)), Some(true));
        assert_eq!(is_genuine_sno(Asn(398101)), Some(false));
        assert_eq!(is_genuine_sno(Asn(3356)), None);
    }

    #[test]
    fn access_lookup() {
        assert_eq!(
            access_of(Operator::Starlink),
            AccessKind::Satellite(OrbitClass::Leo)
        );
        assert_eq!(access_of(Operator::Ses), AccessKind::MeoGeo);
    }
}
