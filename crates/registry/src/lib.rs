//! The knowledge base: everything the paper's identification pipeline
//! consults that is *not* a measurement.
//!
//! * [`profile`] — the curated ground truth of Table 3: 41 satellite
//!   network operators, their 67 ASNs, access technology, PEP usage and
//!   M-Lab presence (Table 1 target volumes);
//! * [`sources`] — facades over the public registries the pipeline
//!   queries: an ASdb-style category database (which is *incomplete*:
//!   Starlink and Viasat are missing, exactly as the paper found), a
//!   Hurricane-Electric-style name search, IPInfo-style ASN details and
//!   PeeringDB-style notes (AS27277 = "Starlink corporate");
//! * [`prefixes`] — the per-ASN `/24` allocation plan, including the
//!   hybrid-backup and corporate prefixes that make naive ASN filtering
//!   wrong (the whole reason the paper needs steps 3–3b);
//! * [`assets`] — physical/operational assets per operator: GEO slots,
//!   gateway teleports, service plans, resolver placement.

pub mod assets;
pub mod prefixes;
pub mod profile;
pub mod sources;

pub use assets::{gateways_of, geo_slots_of, service_plan_of, ServicePlan};
pub use prefixes::{allocation_for, PrefixSpec};
pub use profile::{profile_of, SnoProfile, PROFILES};
pub use sources::{asdb, hebgp, ipinfo, peeringdb};
