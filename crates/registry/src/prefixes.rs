//! Per-ASN `/24` allocation plans.
//!
//! Each operator ASN announces a set of `/24` prefixes; each prefix has
//! a ground-truth link kind (pure satellite, hybrid
//! terrestrial-with-satellite-backup, or corporate terrestrial), a
//! sampling weight, and a home region for its subscribers. This is the
//! hidden truth the identification pipeline has to recover from latency
//! profiles alone:
//!
//! * Starlink's AS27277 prefixes are **terrestrial** (corporate offices)
//!   — the Figure 2 outlier;
//! * SES's AS201554 looks nothing like the expected MEO+GEO mix (we give
//!   it corporate terrestrial lines), while AS12684 carries the genuine
//!   bimodal MEO+GEO subscriber base;
//! * TelAlaska's AS10538 mixes GEO satellite villages with its own
//!   wireline customers *inside one ASN*;
//! * Viasat's `75.105.63.0/24` is pure GEO but suffers occasional
//!   low-latency outliers (it gets discarded by the strict filter, the
//!   paper's motivation for relaxing it), and `45.232.115.0/24` –
//!   `45.232.117.0/24` are hybrid satellite-backup lines with three
//!   latency clusters;
//! * low-volume GEO operators scatter their few tests across many
//!   prefixes, so no prefix reaches the strict filter's 10-test minimum
//!   — they are only recovered by the relaxed filter.

use sno_geo::GeoPoint;
use sno_types::{Asn, LinkKind, Operator, OrbitClass, Prefix24};

/// One announced `/24` with its ground truth.
#[derive(Debug, Clone, Copy)]
pub struct PrefixSpec {
    /// The prefix.
    pub prefix: Prefix24,
    /// What subscriber lines in this prefix actually ride on.
    pub kind: LinkKind,
    /// Sampling weight among the operator's prefixes.
    pub weight: f64,
    /// Where this prefix's subscribers cluster.
    pub home: GeoPoint,
    /// Geographic scatter of subscribers around `home`, km (maritime
    /// fleets scatter over thousands of km).
    pub scatter_km: f64,
    /// Fraction of speed tests in a *pure* prefix that are nonetheless
    /// low-latency outliers (VPNs, misattributed lines). This is what
    /// sinks `75.105.63.0/24` in the strict filter.
    pub outlier_fraction: f64,
}

const GEO_SAT: LinkKind = LinkKind::Satellite(OrbitClass::Geo);
const LEO_SAT: LinkKind = LinkKind::Satellite(OrbitClass::Leo);
const MEO_SAT: LinkKind = LinkKind::Satellite(OrbitClass::Meo);

fn spec(
    prefix: Prefix24,
    kind: LinkKind,
    weight: f64,
    home: GeoPoint,
    scatter_km: f64,
) -> PrefixSpec {
    PrefixSpec {
        prefix,
        kind,
        weight,
        home,
        scatter_km,
        outlier_fraction: 0.0,
    }
}

/// Default prefix `j` of the ASN at flattened Table-3 position `k`:
/// `61.k.j.0/24`. The 61/8 block never collides with private space or
/// with the explicitly-assigned Viasat prefixes.
fn default_prefix(k: u8, j: u8) -> Prefix24 {
    Prefix24::new(61, k, j)
}

/// Flattened position of `asn` in the Table-3 ASN list.
fn asn_position(asn: Asn) -> u8 {
    let mut k = 0u8;
    for p in crate::profile::PROFILES {
        for &a in p.asns {
            if a == asn.0 {
                return k;
            }
            k += 1;
        }
    }
    panic!("{asn} is not a Table-3 ASN");
}

// Home regions.
const US_WEST: GeoPoint = GeoPoint {
    lat: 45.0,
    lon: -120.0,
};
const US_CENTRAL: GeoPoint = GeoPoint {
    lat: 39.0,
    lon: -98.0,
};
const US_EAST: GeoPoint = GeoPoint {
    lat: 40.0,
    lon: -78.0,
};
const EUROPE: GeoPoint = GeoPoint {
    lat: 49.0,
    lon: 8.0,
};
const OCEANIA: GeoPoint = GeoPoint {
    lat: -34.0,
    lon: 151.0,
};
const SOUTH_AMERICA: GeoPoint = GeoPoint {
    lat: -20.0,
    lon: -55.0,
};
const ALASKA: GeoPoint = GeoPoint {
    lat: 62.0,
    lon: -153.0,
};
const ATLANTIC: GeoPoint = GeoPoint {
    lat: 30.0,
    lon: -40.0,
};
const INDIAN_OCEAN: GeoPoint = GeoPoint {
    lat: -10.0,
    lon: 75.0,
};
const PACIFIC_ISLANDS: GeoPoint = GeoPoint {
    lat: -15.0,
    lon: 170.0,
};
const EQUATORIAL: GeoPoint = GeoPoint {
    lat: -3.0,
    lon: 115.0,
};
const CANADA_NORTH: GeoPoint = GeoPoint {
    lat: 63.0,
    lon: -95.0,
};

/// The allocation plan for one operator: its ASNs and their prefixes.
pub fn allocation_for(op: Operator) -> Vec<(Asn, Vec<PrefixSpec>)> {
    let profile = crate::profile::profile_of(op);
    match op {
        Operator::Starlink => {
            // AS14593: subscriber prefixes across the service regions.
            let customers = Asn(14593);
            let k = asn_position(customers);
            let homes = [
                (US_WEST, 0.14),
                (US_CENTRAL, 0.16),
                (US_EAST, 0.14),
                (EUROPE, 0.22),
                (OCEANIA, 0.10),
                (SOUTH_AMERICA, 0.06),
                (
                    GeoPoint {
                        lat: 47.0,
                        lon: -70.0,
                    },
                    0.08,
                ), // Canada
                (
                    GeoPoint {
                        lat: 14.6,
                        lon: 121.0,
                    },
                    0.04,
                ), // Philippines
                (
                    GeoPoint {
                        lat: 36.0,
                        lon: 138.0,
                    },
                    0.06,
                ), // Japan region
            ];
            let mut subs = Vec::new();
            for (j, &(home, w)) in homes.iter().enumerate() {
                // Two prefixes per region.
                for s in 0..2u8 {
                    subs.push(spec(
                        default_prefix(k, j as u8 * 2 + s),
                        LEO_SAT,
                        w / 2.0,
                        home,
                        600.0,
                    ));
                }
            }
            // AS27277: corporate offices on terrestrial fibre.
            let corporate = Asn(27277);
            let kc = asn_position(corporate);
            // Corporate traffic is a sliver of the operator's volume.
            let corp = vec![
                spec(
                    default_prefix(kc, 0),
                    LinkKind::Terrestrial,
                    0.015,
                    US_WEST,
                    100.0,
                ),
                spec(
                    default_prefix(kc, 1),
                    LinkKind::Terrestrial,
                    0.010,
                    US_EAST,
                    100.0,
                ),
            ];
            vec![(customers, subs), (corporate, corp)]
        }
        Operator::Oneweb => {
            let asn = Asn(800);
            let k = asn_position(asn);
            vec![(
                asn,
                vec![
                    spec(default_prefix(k, 0), LEO_SAT, 0.4, US_CENTRAL, 900.0),
                    spec(default_prefix(k, 1), LEO_SAT, 0.25, CANADA_NORTH, 900.0),
                    spec(default_prefix(k, 2), LEO_SAT, 0.2, EUROPE, 900.0),
                    spec(default_prefix(k, 3), LEO_SAT, 0.15, ALASKA, 500.0),
                ],
            )]
        }
        Operator::O3b => {
            let asn = Asn(60725);
            let k = asn_position(asn);
            vec![(
                asn,
                vec![
                    spec(default_prefix(k, 0), MEO_SAT, 0.5, EQUATORIAL, 1_500.0),
                    spec(default_prefix(k, 1), MEO_SAT, 0.3, PACIFIC_ISLANDS, 1_500.0),
                    spec(
                        default_prefix(k, 2),
                        MEO_SAT,
                        0.2,
                        GeoPoint { lat: 5.0, lon: 0.0 },
                        1_200.0,
                    ),
                ],
            )]
        }
        Operator::Ses => {
            // AS12684: the genuine hybrid MEO+GEO subscriber base.
            let hybrid = Asn(12684);
            let kh = asn_position(hybrid);
            let hybrid_specs = vec![
                spec(default_prefix(kh, 0), MEO_SAT, 0.22, EQUATORIAL, 1_200.0),
                spec(
                    default_prefix(kh, 1),
                    MEO_SAT,
                    0.18,
                    PACIFIC_ISLANDS,
                    1_200.0,
                ),
                spec(default_prefix(kh, 2), GEO_SAT, 0.22, EUROPE, 800.0),
                spec(default_prefix(kh, 3), GEO_SAT, 0.20, US_EAST, 800.0),
                spec(default_prefix(kh, 4), GEO_SAT, 0.18, SOUTH_AMERICA, 900.0),
            ];
            // AS201554: expected MEO+GEO, actually corporate lines — the
            // Figure 2 anomaly the KDE stage must reject.
            let anomaly = Asn(201554);
            let ka = asn_position(anomaly);
            let anomaly_specs = vec![
                spec(
                    default_prefix(ka, 0),
                    LinkKind::Terrestrial,
                    0.30,
                    EUROPE,
                    200.0,
                ),
                spec(
                    default_prefix(ka, 1),
                    LinkKind::Terrestrial,
                    0.14,
                    US_EAST,
                    200.0,
                ),
            ];
            vec![(hybrid, hybrid_specs), (anomaly, anomaly_specs)]
        }
        Operator::Telalaska => {
            // One ASN mixing GEO villages and wireline customers.
            let asn = Asn(10538);
            let k = asn_position(asn);
            vec![(
                asn,
                vec![
                    spec(default_prefix(k, 0), GEO_SAT, 0.22, ALASKA, 400.0),
                    spec(default_prefix(k, 1), GEO_SAT, 0.22, ALASKA, 400.0),
                    spec(default_prefix(k, 2), GEO_SAT, 0.21, ALASKA, 400.0),
                    spec(
                        default_prefix(k, 3),
                        LinkKind::Terrestrial,
                        0.20,
                        ALASKA,
                        150.0,
                    ),
                    spec(
                        default_prefix(k, 4),
                        LinkKind::Terrestrial,
                        0.15,
                        ALASKA,
                        150.0,
                    ),
                ],
            )]
        }
        Operator::Viasat => {
            // Main consumer ASN with the prefixes the paper dissects.
            let main = Asn(13955);
            let mut main_specs = Vec::new();
            // Pure-GEO prefix with sporadic low-latency outliers:
            // discarded by the strict filter "due to few outliers".
            main_specs.push(PrefixSpec {
                prefix: Prefix24::new(75, 105, 63),
                kind: GEO_SAT,
                weight: 0.11,
                home: US_CENTRAL,
                scatter_km: 900.0,
                outlier_fraction: 0.12,
            });
            // Hybrid satellite-backup prefixes (South American wireline
            // with GEO fallback): three latency clusters.
            for (i, c) in [115u8, 116, 117].iter().enumerate() {
                main_specs.push(spec(
                    Prefix24::new(45, 232, *c),
                    LinkKind::HybridBackup(OrbitClass::Geo),
                    0.08 + 0.01 * i as f64,
                    SOUTH_AMERICA,
                    600.0,
                ));
            }
            // Clean consumer prefixes that survive the strict filter.
            let k = asn_position(main);
            for j in 0..7u8 {
                let home = match j % 3 {
                    0 => US_WEST,
                    1 => US_CENTRAL,
                    _ => US_EAST,
                };
                main_specs.push(spec(default_prefix(k, j), GEO_SAT, 0.1, home, 800.0));
            }
            let mut out = vec![(main, main_specs)];
            // Secondary ASNs: small pure-GEO pools (a sliver of the
            // subscriber base each).
            for &a in &profile.asns[1..] {
                let ks = asn_position(Asn(a));
                out.push((
                    Asn(a),
                    vec![spec(
                        default_prefix(ks, 0),
                        GEO_SAT,
                        0.02,
                        US_CENTRAL,
                        900.0,
                    )],
                ));
            }
            out
        }
        Operator::Hughes => {
            let main = Asn(28613);
            let k = asn_position(main);
            let mut main_specs = vec![
                spec(default_prefix(k, 0), GEO_SAT, 0.28, US_EAST, 800.0),
                spec(default_prefix(k, 1), GEO_SAT, 0.27, US_CENTRAL, 800.0),
                spec(default_prefix(k, 2), GEO_SAT, 0.26, US_WEST, 800.0),
                // One hybrid-backup pool ("Broadband Backup" product).
                spec(
                    default_prefix(k, 3),
                    LinkKind::HybridBackup(OrbitClass::Geo),
                    0.19,
                    US_EAST,
                    500.0,
                ),
            ];
            main_specs[3].outlier_fraction = 0.0;
            let mut out = vec![(main, main_specs)];
            for &a in &profile.asns[1..] {
                let ks = asn_position(Asn(a));
                out.push((
                    Asn(a),
                    vec![spec(
                        default_prefix(ks, 0),
                        GEO_SAT,
                        0.03,
                        SOUTH_AMERICA,
                        1_000.0,
                    )],
                ));
            }
            out
        }
        Operator::Marlink => {
            // Maritime: fleets scattered across oceans; the first three
            // ASNs carry enough traffic to pass the strict filter.
            let mut out = Vec::new();
            for (i, &a) in profile.asns.iter().enumerate() {
                let k = asn_position(Asn(a));
                let (home, weight) = match i {
                    0 => (ATLANTIC, 0.4),
                    1 => (INDIAN_OCEAN, 0.25),
                    2 => (EUROPE, 0.15),
                    _ => (ATLANTIC, 0.05),
                };
                out.push((
                    Asn(a),
                    vec![spec(default_prefix(k, 0), GEO_SAT, weight, home, 3_000.0)],
                ));
            }
            out
        }
        Operator::Kvh => {
            let mut out = Vec::new();
            for (i, &a) in profile.asns.iter().enumerate() {
                let k = asn_position(Asn(a));
                let home = if i == 0 { ATLANTIC } else { INDIAN_OCEAN };
                out.push((
                    Asn(a),
                    vec![
                        spec(default_prefix(k, 0), GEO_SAT, 0.35, home, 3_000.0),
                        spec(
                            default_prefix(k, 1),
                            GEO_SAT,
                            0.15,
                            PACIFIC_ISLANDS,
                            3_000.0,
                        ),
                    ],
                ));
            }
            out
        }
        // Every other operator: low-volume GEO traffic scattered across
        // many prefixes (and with a sprinkle of low-latency outliers),
        // so no prefix passes the strict filter — only the relaxed
        // filter recovers these operators.
        _ => {
            let per_asn = 64usize;
            profile
                .asns
                .iter()
                .map(|&a| {
                    let k = asn_position(Asn(a));
                    let home = match profile.country {
                        "US" => US_CENTRAL,
                        "CA" => CANADA_NORTH,
                        "GB" | "FR" | "GR" | "NO" | "LU" | "RU" => EUROPE,
                        "AU" | "PG" | "SG" => PACIFIC_ISLANDS,
                        "MX" | "BR" => SOUTH_AMERICA,
                        "IN" | "TH" | "ID" => EQUATORIAL,
                        _ => US_CENTRAL,
                    };
                    let specs = (0..per_asn)
                        .map(|j| {
                            let mut s = spec(
                                default_prefix(k, j as u8),
                                GEO_SAT,
                                1.0 / per_asn as f64,
                                home,
                                1_200.0,
                            );
                            s.outlier_fraction = 0.05;
                            s
                        })
                        .collect();
                    (Asn(a), specs)
                })
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn every_operator_has_an_allocation() {
        for op in Operator::ALL {
            let alloc = allocation_for(op);
            assert!(!alloc.is_empty(), "{op}");
            for (asn, specs) in &alloc {
                assert!(!specs.is_empty(), "{op} {asn}");
                let total: f64 = specs.iter().map(|s| s.weight).sum();
                assert!(total > 0.0, "{op} {asn} zero weight");
            }
        }
    }

    #[test]
    fn all_prefixes_globally_unique() {
        let mut seen = BTreeSet::new();
        for op in Operator::ALL {
            for (_, specs) in allocation_for(op) {
                for s in specs {
                    assert!(seen.insert(s.prefix), "duplicate prefix {}", s.prefix);
                }
            }
        }
    }

    #[test]
    fn starlink_corporate_is_terrestrial() {
        let alloc = allocation_for(Operator::Starlink);
        let (_, corp) = alloc
            .iter()
            .find(|(asn, _)| *asn == Asn(27277))
            .expect("corporate ASN present");
        assert!(corp.iter().all(|s| s.kind == LinkKind::Terrestrial));
        let (_, subs) = alloc.iter().find(|(asn, _)| *asn == Asn(14593)).unwrap();
        assert!(subs
            .iter()
            .all(|s| s.kind == LinkKind::Satellite(OrbitClass::Leo)));
    }

    #[test]
    fn ses_asns_differ_in_kind() {
        let alloc = allocation_for(Operator::Ses);
        let (_, genuine) = alloc.iter().find(|(a, _)| *a == Asn(12684)).unwrap();
        let kinds: BTreeSet<_> = genuine.iter().map(|s| format!("{:?}", s.kind)).collect();
        assert_eq!(kinds.len(), 2, "12684 must mix MEO and GEO");
        let (_, anomaly) = alloc.iter().find(|(a, _)| *a == Asn(201554)).unwrap();
        assert!(anomaly.iter().all(|s| s.kind == LinkKind::Terrestrial));
    }

    #[test]
    fn telalaska_mixes_within_one_asn() {
        let alloc = allocation_for(Operator::Telalaska);
        let (_, specs) = &alloc[0];
        assert!(specs.iter().any(|s| s.kind == LinkKind::Terrestrial));
        assert!(specs
            .iter()
            .any(|s| s.kind == LinkKind::Satellite(OrbitClass::Geo)));
    }

    #[test]
    fn viasat_has_the_papers_prefixes() {
        let alloc = allocation_for(Operator::Viasat);
        let (_, main) = alloc.iter().find(|(a, _)| *a == Asn(13955)).unwrap();
        let outlier = main
            .iter()
            .find(|s| s.prefix == Prefix24::new(75, 105, 63))
            .expect("75.105.63.0/24 present");
        assert!(outlier.outlier_fraction > 0.0);
        assert_eq!(outlier.kind, LinkKind::Satellite(OrbitClass::Geo));
        for c in [115u8, 116, 117] {
            let h = main
                .iter()
                .find(|s| s.prefix == Prefix24::new(45, 232, c))
                .unwrap_or_else(|| panic!("45.232.{c}.0/24 present"));
            assert_eq!(h.kind, LinkKind::HybridBackup(OrbitClass::Geo));
        }
    }

    #[test]
    fn low_volume_operators_scatter_prefixes() {
        let alloc = allocation_for(Operator::Kacific);
        let (_, specs) = &alloc[0];
        assert!(specs.len() >= 8, "Kacific should scatter across prefixes");
    }

    #[test]
    fn maritime_operators_scatter_widely() {
        for op in [Operator::Marlink, Operator::Kvh] {
            for (_, specs) in allocation_for(op) {
                assert!(specs.iter().all(|s| s.scatter_km >= 2_000.0), "{op}");
            }
        }
    }
}
